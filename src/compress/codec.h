#ifndef COLMR_COMPRESS_CODEC_H_
#define COLMR_COMPRESS_CODEC_H_

#include <string>

#include "common/buffer.h"
#include "common/slice.h"
#include "common/status.h"

namespace colmr {

/// Identifies a compression scheme in file headers. Values are stable
/// on-disk identifiers; do not renumber.
enum class CodecType : uint8_t {
  kNone = 0,
  /// Byte-aligned LZ77 with an 8 KB window. Fast decompression, moderate
  /// ratio — this library's stand-in for LZO (paper Section 3.3).
  kLzf = 1,
  /// LZSS with a 64 KB window plus canonical-Huffman-coded literals.
  /// Better ratio, markedly slower decompression — the ZLIB stand-in.
  kZlite = 2,
};

/// A block compressor. Implementations are stateless and thread-compatible;
/// a single instance may be shared across readers.
class Codec {
 public:
  virtual ~Codec() = default;

  virtual CodecType type() const = 0;
  virtual std::string name() const = 0;

  /// Appends the compressed representation of input to *output. The
  /// representation is self-delimiting (it records the raw size), so
  /// Decompress needs no out-of-band length.
  virtual Status Compress(Slice input, Buffer* output) const = 0;

  /// Appends the decompressed bytes to *output. Returns Corruption if the
  /// input is not a valid compressed block.
  virtual Status Decompress(Slice input, Buffer* output) const = 0;
};

/// Returns the process-wide instance for the given type, or nullptr for an
/// unknown type. kNone returns a pass-through codec.
const Codec* GetCodec(CodecType type);

/// Parses "none" / "lzf" / "zlite" (the names used in schema files and
/// bench flags).
Status CodecTypeFromName(const std::string& name, CodecType* type);

}  // namespace colmr

#endif  // COLMR_COMPRESS_CODEC_H_
