#ifndef COLMR_COMPRESS_DICTIONARY_H_
#define COLMR_COMPRESS_DICTIONARY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/buffer.h"
#include "common/slice.h"
#include "common/status.h"

namespace colmr {

/// Lightweight string dictionary for the dictionary-compressed skip list
/// (DCSL) column layout (paper Section 5.3). Map keys in real datasets are
/// drawn from a small universe, so each block of map values stores one
/// dictionary of its keys and replaces every key with a varint id.
///
/// Ids are assigned densely in first-seen order. Lookup by id is an O(1)
/// vector index — the property that makes DCSL decompression so much
/// cheaper than block codecs: a single map value can be decoded without
/// touching the rest of the block.
class StringDictionary {
 public:
  StringDictionary() = default;

  /// Returns the id for s, inserting it if unseen.
  uint32_t Intern(Slice s);

  /// Returns the id for s, or -1 if absent (lookup without insertion).
  int64_t Find(Slice s) const;

  /// Returns the string for an id; id must be < size().
  const std::string& Lookup(uint32_t id) const { return entries_[id]; }

  /// Bulk id resolution for the batch decode path: validates all n ids,
  /// then writes a pointer to each entry. One range check per id, no
  /// per-call branching in the caller's assembly loop.
  Status LookupBulk(const uint64_t* ids, size_t n,
                    const std::string** out) const;

  size_t size() const { return entries_.size(); }

  /// Appends the serialized dictionary: varint count, then
  /// length-prefixed entries in id order.
  void Serialize(Buffer* out) const;

  /// Parses a dictionary serialized by Serialize, consuming from *input.
  Status Deserialize(Slice* input);

  /// Serialized footprint in bytes (for space accounting in benches).
  size_t SerializedSize() const;

 private:
  std::vector<std::string> entries_;
  std::unordered_map<std::string, uint32_t> index_;
};

}  // namespace colmr

#endif  // COLMR_COMPRESS_DICTIONARY_H_
