#include "compress/codec.h"

#include "common/coding.h"
#include "compress/lzf.h"
#include "compress/zlite.h"

namespace colmr {

namespace {

/// Pass-through codec so callers can treat "no compression" uniformly.
class NoneCodec final : public Codec {
 public:
  CodecType type() const override { return CodecType::kNone; }
  std::string name() const override { return "none"; }

  Status Compress(Slice input, Buffer* output) const override {
    PutVarint64(output, input.size());
    output->Append(input);
    return Status::OK();
  }

  Status Decompress(Slice input, Buffer* output) const override {
    uint64_t raw_size;
    COLMR_RETURN_IF_ERROR(GetVarint64(&input, &raw_size));
    if (input.size() != raw_size) {
      return Status::Corruption("none codec: size mismatch");
    }
    output->Append(input);
    return Status::OK();
  }
};

}  // namespace

const Codec* GetCodec(CodecType type) {
  // Leaked singletons: codecs are stateless and live for the process
  // (trivially-destructible-global rule).
  static const NoneCodec* none = new NoneCodec();
  static const LzfCodec* lzf = new LzfCodec();
  static const ZliteCodec* zlite = new ZliteCodec();
  switch (type) {
    case CodecType::kNone:
      return none;
    case CodecType::kLzf:
      return lzf;
    case CodecType::kZlite:
      return zlite;
  }
  return nullptr;
}

Status CodecTypeFromName(const std::string& name, CodecType* type) {
  if (name == "none") {
    *type = CodecType::kNone;
  } else if (name == "lzf" || name == "lzo") {
    *type = CodecType::kLzf;
  } else if (name == "zlite" || name == "zlib") {
    *type = CodecType::kZlite;
  } else {
    return Status::InvalidArgument("unknown codec: " + name);
  }
  return Status::OK();
}

}  // namespace colmr
