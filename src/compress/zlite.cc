#include "compress/zlite.h"

#include <algorithm>
#include <cstring>
#include <queue>
#include <vector>

#include "common/coding.h"

namespace colmr {

// Layout: varint raw_size, varint op_count, 128 bytes of literal code
// lengths (256 nibbles), then a bitstream of ops:
//   flag bit 0 -> Huffman-coded literal
//   flag bit 1 -> match: length - kMinMatch in 5 bits, or 31 followed by
//                 16 raw bits; then distance - 1 in 16 bits.
namespace {

constexpr size_t kWindowSize = 65536;
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxMatch = 8192;
constexpr int kMaxCodeLen = 15;
constexpr int kHashBits = 15;
constexpr int kMaxChainDepth = 32;

inline uint32_t Hash4(const uint8_t* p) {
  uint32_t v;
  memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

class BitWriter {
 public:
  explicit BitWriter(Buffer* out) : out_(out) {}

  void Write(uint32_t bits, int count) {
    acc_ |= static_cast<uint64_t>(bits) << filled_;
    filled_ += count;
    while (filled_ >= 8) {
      out_->PushBack(static_cast<char>(acc_ & 0xff));
      acc_ >>= 8;
      filled_ -= 8;
    }
  }

  void Flush() {
    if (filled_ > 0) {
      out_->PushBack(static_cast<char>(acc_ & 0xff));
      acc_ = 0;
      filled_ = 0;
    }
  }

 private:
  Buffer* out_;
  uint64_t acc_ = 0;
  int filled_ = 0;
};

class BitReader {
 public:
  explicit BitReader(Slice input) : input_(input) {}

  // Returns false on underrun.
  bool Read(int count, uint32_t* bits) {
    while (filled_ < count) {
      if (input_.empty()) return false;
      acc_ |= static_cast<uint64_t>(static_cast<uint8_t>(input_[0]))
              << filled_;
      input_.RemovePrefix(1);
      filled_ += 8;
    }
    *bits = static_cast<uint32_t>(acc_ & ((1ull << count) - 1));
    acc_ >>= count;
    filled_ -= count;
    return true;
  }

  bool ReadBit(uint32_t* bit) { return Read(1, bit); }

 private:
  Slice input_;
  uint64_t acc_ = 0;
  int filled_ = 0;
};

// Computes Huffman code lengths (<= kMaxCodeLen) for 256 symbols from
// frequencies. Symbols with zero frequency get length 0.
void BuildCodeLengths(std::vector<uint64_t> freqs, int* lengths) {
  struct Node {
    uint64_t freq;
    int index;  // < 256: leaf symbol; otherwise internal node id.
  };
  for (;;) {
    std::fill(lengths, lengths + 256, 0);
    int nonzero = 0;
    int last = -1;
    for (int i = 0; i < 256; ++i) {
      if (freqs[i] > 0) {
        ++nonzero;
        last = i;
      }
    }
    if (nonzero == 0) return;
    if (nonzero == 1) {
      lengths[last] = 1;
      return;
    }

    auto cmp = [](const Node& a, const Node& b) { return a.freq > b.freq; };
    std::priority_queue<Node, std::vector<Node>, decltype(cmp)> heap(cmp);
    std::vector<std::pair<int, int>> children;  // internal node -> children
    for (int i = 0; i < 256; ++i) {
      if (freqs[i] > 0) heap.push({freqs[i], i});
    }
    while (heap.size() > 1) {
      Node a = heap.top();
      heap.pop();
      Node b = heap.top();
      heap.pop();
      const int id = 256 + static_cast<int>(children.size());
      children.push_back({a.index, b.index});
      heap.push({a.freq + b.freq, id});
    }
    // Depth-first assignment of depths.
    std::vector<std::pair<int, int>> stack = {{heap.top().index, 0}};
    int max_depth = 0;
    while (!stack.empty()) {
      auto [idx, depth] = stack.back();
      stack.pop_back();
      if (idx < 256) {
        lengths[idx] = depth == 0 ? 1 : depth;
        max_depth = std::max(max_depth, lengths[idx]);
      } else {
        stack.push_back({children[idx - 256].first, depth + 1});
        stack.push_back({children[idx - 256].second, depth + 1});
      }
    }
    if (max_depth <= kMaxCodeLen) return;
    // Flatten frequencies and retry; converges quickly because the length
    // of the deepest code shrinks as the distribution flattens.
    for (auto& f : freqs) {
      if (f > 0) f = f / 2 + 1;
    }
  }
}

// Canonical code assignment: shorter codes first, ties by symbol value.
// codes[i] holds the code bits for symbol i, LSB-first as consumed by
// BitWriter/BitReader below (we reverse the canonical MSB-first code).
void AssignCodes(const int* lengths, uint32_t* codes) {
  std::vector<int> order;
  for (int i = 0; i < 256; ++i) {
    if (lengths[i] > 0) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (lengths[a] != lengths[b]) return lengths[a] < lengths[b];
    return a < b;
  });
  uint32_t code = 0;
  int prev_len = 0;
  for (int sym : order) {
    code <<= (lengths[sym] - prev_len);
    prev_len = lengths[sym];
    // Reverse bits so that writing LSB-first preserves prefix-freeness.
    uint32_t rev = 0;
    for (int b = 0; b < lengths[sym]; ++b) {
      rev |= ((code >> b) & 1u) << (lengths[sym] - 1 - b);
    }
    codes[sym] = rev;
    ++code;
  }
}

// Decoder table: for canonical decoding we walk bit-by-bit maintaining the
// candidate code value, using first-code/first-symbol arrays per length.
struct HuffDecoder {
  uint32_t first_code[kMaxCodeLen + 1] = {0};
  int first_symbol_index[kMaxCodeLen + 1] = {0};
  uint32_t count[kMaxCodeLen + 1] = {0};
  std::vector<int> symbols;  // symbols sorted by (length, value)

  void Build(const int* lengths) {
    symbols.clear();
    std::fill(count, count + kMaxCodeLen + 1, 0u);
    for (int i = 0; i < 256; ++i) {
      if (lengths[i] > 0) ++count[lengths[i]];
    }
    for (int len = 1; len <= kMaxCodeLen; ++len) {
      for (int i = 0; i < 256; ++i) {
        if (lengths[i] == len) symbols.push_back(i);
      }
    }
    uint32_t code = 0;
    int index = 0;
    for (int len = 1; len <= kMaxCodeLen; ++len) {
      code <<= 1;
      first_code[len] = code;
      first_symbol_index[len] = index;
      code += count[len];
      index += count[len];
    }
  }

  // Reads one symbol; returns -1 on malformed input.
  int Decode(BitReader* reader) const {
    uint32_t code = 0;
    for (int len = 1; len <= kMaxCodeLen; ++len) {
      uint32_t bit;
      if (!reader->ReadBit(&bit)) return -1;
      code = (code << 1) | bit;
      if (code >= first_code[len] && code - first_code[len] < count[len]) {
        return symbols[first_symbol_index[len] + (code - first_code[len])];
      }
    }
    return -1;
  }
};

struct Op {
  bool is_match;
  uint8_t literal;
  uint32_t length;    // match length
  uint32_t distance;  // match distance (1-based)
};

}  // namespace

Status ZliteCodec::Compress(Slice input, Buffer* output) const {
  const uint8_t* const base = reinterpret_cast<const uint8_t*>(input.data());
  const size_t n = input.size();
  PutVarint64(output, n);

  // LZSS parse with hash chains.
  std::vector<Op> ops;
  ops.reserve(n / 4 + 16);
  std::vector<int64_t> head(size_t{1} << kHashBits, -1);
  std::vector<int64_t> chain(n, -1);
  const size_t match_limit = n >= 4 ? n - 4 : 0;

  size_t pos = 0;
  while (pos < n) {
    size_t best_len = 0;
    size_t best_dist = 0;
    if (pos < match_limit) {
      const uint32_t h = Hash4(base + pos);
      int64_t cand = head[h];
      int depth = 0;
      const size_t max_len = std::min(n - pos, kMaxMatch);
      while (cand >= 0 && depth++ < kMaxChainDepth &&
             pos - static_cast<size_t>(cand) <= kWindowSize) {
        const uint8_t* p = base + cand;
        const uint8_t* q = base + pos;
        size_t len = 0;
        while (len < max_len && p[len] == q[len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_dist = pos - static_cast<size_t>(cand);
          if (len >= max_len) break;
        }
        cand = chain[cand];
      }
      chain[pos] = head[h];
      head[h] = static_cast<int64_t>(pos);
    }

    if (best_len >= kMinMatch) {
      ops.push_back({true, 0, static_cast<uint32_t>(best_len),
                     static_cast<uint32_t>(best_dist)});
      // Insert positions covered by the match into the chains.
      const size_t end = pos + best_len;
      for (pos += 1; pos < end; ++pos) {
        if (pos < match_limit) {
          const uint32_t h = Hash4(base + pos);
          chain[pos] = head[h];
          head[h] = static_cast<int64_t>(pos);
        }
      }
    } else {
      ops.push_back({false, base[pos], 0, 0});
      ++pos;
    }
  }

  PutVarint64(output, ops.size());

  // Literal Huffman code.
  std::vector<uint64_t> freqs(256, 0);
  for (const Op& op : ops) {
    if (!op.is_match) ++freqs[op.literal];
  }
  int lengths[256];
  BuildCodeLengths(freqs, lengths);
  uint32_t codes[256] = {0};
  AssignCodes(lengths, codes);

  // 256 nibbles of code lengths.
  for (int i = 0; i < 256; i += 2) {
    output->PushBack(static_cast<char>((lengths[i] & 0xf) |
                                       ((lengths[i + 1] & 0xf) << 4)));
  }

  BitWriter writer(output);
  for (const Op& op : ops) {
    if (op.is_match) {
      writer.Write(1, 1);
      const uint32_t len_code = op.length - kMinMatch;
      if (len_code < 31) {
        writer.Write(len_code, 5);
      } else {
        writer.Write(31, 5);
        writer.Write(len_code, 16);
      }
      writer.Write(op.distance - 1, 16);
    } else {
      writer.Write(0, 1);
      writer.Write(codes[op.literal], lengths[op.literal]);
    }
  }
  writer.Flush();
  return Status::OK();
}

Status ZliteCodec::Decompress(Slice input, Buffer* output) const {
  uint64_t raw_size, op_count;
  COLMR_RETURN_IF_ERROR(GetVarint64(&input, &raw_size));
  COLMR_RETURN_IF_ERROR(GetVarint64(&input, &op_count));
  if (input.size() < 128) return Status::Corruption("zlite: header");

  int lengths[256];
  for (int i = 0; i < 256; i += 2) {
    const uint8_t b = static_cast<uint8_t>(input[i / 2]);
    lengths[i] = b & 0xf;
    lengths[i + 1] = b >> 4;
  }
  input.RemovePrefix(128);

  HuffDecoder decoder;
  decoder.Build(lengths);

  const size_t out_start = output->size();
  // Clamp the hint: raw_size is untrusted until decoding completes.
  output->Reserve(out_start + std::min<uint64_t>(raw_size, 1 << 20));
  BitReader reader(input);
  for (uint64_t i = 0; i < op_count; ++i) {
    uint32_t flag;
    if (!reader.ReadBit(&flag)) return Status::Corruption("zlite: truncated");
    if (flag) {
      uint32_t len_code;
      if (!reader.Read(5, &len_code)) {
        return Status::Corruption("zlite: truncated length");
      }
      if (len_code == 31) {
        if (!reader.Read(16, &len_code)) {
          return Status::Corruption("zlite: truncated long length");
        }
      }
      uint32_t dist;
      if (!reader.Read(16, &dist)) {
        return Status::Corruption("zlite: truncated distance");
      }
      const size_t length = len_code + kMinMatch;
      const size_t distance = dist + 1;
      const size_t produced = output->size() - out_start;
      if (distance > produced) return Status::Corruption("zlite: distance");
      const size_t src = output->size() - distance;
      for (size_t k = 0; k < length; ++k) {
        output->PushBack(output->data()[src + k]);
      }
    } else {
      const int sym = decoder.Decode(&reader);
      if (sym < 0) return Status::Corruption("zlite: bad literal code");
      output->PushBack(static_cast<char>(sym));
    }
  }
  if (output->size() - out_start != raw_size) {
    return Status::Corruption("zlite: size mismatch");
  }
  return Status::OK();
}

}  // namespace colmr
