#include "compress/dictionary.h"

#include "common/coding.h"

namespace colmr {

uint32_t StringDictionary::Intern(Slice s) {
  auto it = index_.find(std::string(s.data(), s.size()));
  if (it != index_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(entries_.size());
  entries_.emplace_back(s.data(), s.size());
  index_.emplace(entries_.back(), id);
  return id;
}

int64_t StringDictionary::Find(Slice s) const {
  auto it = index_.find(std::string(s.data(), s.size()));
  return it == index_.end() ? -1 : static_cast<int64_t>(it->second);
}

Status StringDictionary::LookupBulk(const uint64_t* ids, size_t n,
                                    const std::string** out) const {
  const size_t limit = entries_.size();
  for (size_t i = 0; i < n; ++i) {
    if (ids[i] >= limit) {
      return Status::Corruption("dictionary id out of range");
    }
    out[i] = &entries_[ids[i]];
  }
  return Status::OK();
}

void StringDictionary::Serialize(Buffer* out) const {
  PutVarint64(out, entries_.size());
  for (const std::string& e : entries_) {
    PutLengthPrefixed(out, e);
  }
}

Status StringDictionary::Deserialize(Slice* input) {
  entries_.clear();
  index_.clear();
  uint64_t count;
  COLMR_RETURN_IF_ERROR(GetVarint64(input, &count));
  if (count > input->size()) {
    return Status::Corruption("dictionary count exceeds remaining input");
  }
  entries_.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Slice entry;
    COLMR_RETURN_IF_ERROR(GetLengthPrefixed(input, &entry));
    entries_.emplace_back(entry.data(), entry.size());
    index_.emplace(entries_.back(), static_cast<uint32_t>(i));
  }
  return Status::OK();
}

size_t StringDictionary::SerializedSize() const {
  size_t total = VarintLength(entries_.size());
  for (const std::string& e : entries_) {
    total += VarintLength(e.size()) + e.size();
  }
  return total;
}

}  // namespace colmr
