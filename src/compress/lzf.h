#ifndef COLMR_COMPRESS_LZF_H_
#define COLMR_COMPRESS_LZF_H_

#include "compress/codec.h"

namespace colmr {

/// Byte-aligned LZ77 codec (LZF family). Tokens are either literal runs
/// (1..32 bytes) or back-references with distances up to 8 KB and lengths
/// up to 264 bytes, so decompression is a branch-light memcpy loop. Serves
/// as the repository's LZO substitute: same ratio/CPU trade-off class.
class LzfCodec final : public Codec {
 public:
  CodecType type() const override { return CodecType::kLzf; }
  std::string name() const override { return "lzf"; }
  Status Compress(Slice input, Buffer* output) const override;
  Status Decompress(Slice input, Buffer* output) const override;
};

}  // namespace colmr

#endif  // COLMR_COMPRESS_LZF_H_
