#include "compress/lzf.h"

#include <cstring>
#include <vector>

#include "common/coding.h"

namespace colmr {

// Compressed layout: varint raw_size, then a token stream.
//   Control byte c:
//     c < 0x20            -> literal run of (c + 1) bytes follows.
//     c >= 0x20           -> back-reference. len3 = c >> 5 (1..7).
//                            If len3 == 7 an extra byte extends the length.
//                            Match length = len3 + 2 (3..264).
//                            Distance = (((c & 0x1f) << 8) | next_byte) + 1.
namespace {

constexpr size_t kWindowSize = 8192;       // Max back-reference distance.
constexpr size_t kMaxLiteralRun = 32;      // 5-bit literal run length.
constexpr size_t kMinMatch = 3;
constexpr size_t kMaxMatch = 264;          // 7 + 255 + 2.
constexpr size_t kHashBits = 14;

inline uint32_t HashTriple(const uint8_t* p) {
  uint32_t v;
  memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void FlushLiterals(const uint8_t* start, size_t count, Buffer* out) {
  while (count > 0) {
    const size_t run = count < kMaxLiteralRun ? count : kMaxLiteralRun;
    out->PushBack(static_cast<char>(run - 1));
    out->Append(reinterpret_cast<const char*>(start), run);
    start += run;
    count -= run;
  }
}

}  // namespace

Status LzfCodec::Compress(Slice input, Buffer* output) const {
  PutVarint64(output, input.size());
  const uint8_t* const base = reinterpret_cast<const uint8_t*>(input.data());
  const size_t n = input.size();
  if (n == 0) return Status::OK();

  std::vector<int64_t> table(size_t{1} << kHashBits, -1);
  size_t pos = 0;
  size_t literal_start = 0;
  // Stop matching 4 bytes before the end: HashTriple reads 4 bytes.
  const size_t match_limit = n >= 4 ? n - 4 : 0;

  while (pos < match_limit) {
    const uint32_t h = HashTriple(base + pos);
    const int64_t candidate = table[h];
    table[h] = static_cast<int64_t>(pos);

    size_t match_len = 0;
    if (candidate >= 0 && pos - static_cast<size_t>(candidate) <= kWindowSize &&
        static_cast<size_t>(candidate) < pos) {
      const uint8_t* p = base + candidate;
      const uint8_t* q = base + pos;
      const size_t max_len = (n - pos) < kMaxMatch ? (n - pos) : kMaxMatch;
      while (match_len < max_len && p[match_len] == q[match_len]) ++match_len;
    }

    if (match_len >= kMinMatch) {
      FlushLiterals(base + literal_start, pos - literal_start, output);
      const size_t distance = pos - static_cast<size_t>(candidate) - 1;
      const size_t len3 = match_len - 2;  // 1..262
      if (len3 < 7) {
        output->PushBack(
            static_cast<char>((len3 << 5) | (distance >> 8)));
      } else {
        output->PushBack(static_cast<char>((7u << 5) | (distance >> 8)));
        output->PushBack(static_cast<char>(len3 - 7));
      }
      output->PushBack(static_cast<char>(distance & 0xff));
      // Seed the hash table inside the match so later data can refer back
      // into it; stride 2 keeps compression fast on long runs.
      const size_t end = pos + match_len;
      for (pos += 1; pos < end && pos < match_limit; pos += 2) {
        table[HashTriple(base + pos)] = static_cast<int64_t>(pos);
      }
      pos = end;
      literal_start = pos;
    } else {
      ++pos;
    }
  }
  FlushLiterals(base + literal_start, n - literal_start, output);
  return Status::OK();
}

Status LzfCodec::Decompress(Slice input, Buffer* output) const {
  uint64_t raw_size;
  COLMR_RETURN_IF_ERROR(GetVarint64(&input, &raw_size));
  const size_t out_start = output->size();
  // Clamp the hint: raw_size is untrusted until decoding completes.
  output->Reserve(out_start + std::min<uint64_t>(raw_size, 1 << 20));

  while (!input.empty()) {
    const uint8_t ctrl = static_cast<uint8_t>(input[0]);
    input.RemovePrefix(1);
    if (ctrl < 0x20) {
      const size_t run = ctrl + 1;
      if (input.size() < run) return Status::Corruption("lzf: literal run");
      output->Append(input.data(), run);
      input.RemovePrefix(run);
    } else {
      size_t len = ctrl >> 5;
      if (len == 7) {
        if (input.empty()) return Status::Corruption("lzf: length byte");
        len += static_cast<uint8_t>(input[0]);
        input.RemovePrefix(1);
      }
      len += 2;
      if (input.empty()) return Status::Corruption("lzf: distance byte");
      const size_t distance =
          ((static_cast<size_t>(ctrl & 0x1f) << 8) |
           static_cast<uint8_t>(input[0])) +
          1;
      input.RemovePrefix(1);
      const size_t produced = output->size() - out_start;
      if (distance > produced) return Status::Corruption("lzf: bad distance");
      // Overlapping copies are the mechanism for run-length encoding, so
      // copy byte-by-byte from the sliding window.
      size_t src = output->size() - distance;
      for (size_t i = 0; i < len; ++i) {
        output->PushBack(output->data()[src + i]);
      }
    }
  }
  if (output->size() - out_start != raw_size) {
    return Status::Corruption("lzf: size mismatch");
  }
  return Status::OK();
}

}  // namespace colmr
