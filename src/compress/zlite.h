#ifndef COLMR_COMPRESS_ZLITE_H_
#define COLMR_COMPRESS_ZLITE_H_

#include "compress/codec.h"

namespace colmr {

/// Deflate-class codec: LZSS over a 64 KB window with hash-chain match
/// search, literals entropy-coded with a per-block canonical Huffman code,
/// bit-packed output. Achieves noticeably better ratios than LzfCodec but
/// pays for it with bit-level decoding — the repository's ZLIB substitute
/// for the compression experiments (paper Sections 3.3, 5.3, 6.3).
class ZliteCodec final : public Codec {
 public:
  CodecType type() const override { return CodecType::kZlite; }
  std::string name() const override { return "zlite"; }
  Status Compress(Slice input, Buffer* output) const override;
  Status Decompress(Slice input, Buffer* output) const override;
};

}  // namespace colmr

#endif  // COLMR_COMPRESS_ZLITE_H_
