#include "serde/predicate.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <set>
#include <utility>

#include "common/slice.h"

namespace colmr {

namespace {

using Op = Predicate::Op;

/// Kinds that compare with each other. Numeric kinds are promoted
/// (int32/int64 compare exactly; double forces IEEE double comparison);
/// string and bytes compare as unsigned byte sequences.
enum class CmpClass { kNumeric, kStringy, kBool, kOther };

CmpClass ClassOf(TypeKind kind) {
  switch (kind) {
    case TypeKind::kInt32:
    case TypeKind::kInt64:
    case TypeKind::kDouble:
      return CmpClass::kNumeric;
    case TypeKind::kString:
    case TypeKind::kBytes:
      return CmpClass::kStringy;
    case TypeKind::kBool:
      return CmpClass::kBool;
    default:
      return CmpClass::kOther;
  }
}

template <typename T>
Tri ApplyOp(Op op, T a, T b) {
  bool r = false;
  switch (op) {
    case Op::kEq: r = a == b; break;
    case Op::kNe: r = a != b; break;
    case Op::kLt: r = a < b; break;
    case Op::kLe: r = a <= b; break;
    case Op::kGt: r = a > b; break;
    case Op::kGe: r = a >= b; break;
    default: return Tri::kNull;
  }
  return r ? Tri::kTrue : Tri::kFalse;
}

double NumericAsDouble(const Value& v) {
  return v.kind() == TypeKind::kDouble
             ? v.double_value()
             : static_cast<double>(v.int64_value());
}

/// Comparison of two non-null values. Incomparable classes evaluate to
/// NULL (validation rejects them up front; this keeps evaluation total).
/// Doubles follow IEEE semantics: any ordered comparison with NaN is
/// false, NaN != x is true — the kernels use the same machine compares,
/// so the row path and the batch path cannot disagree.
Tri EvalCmpValues(Op op, const Value& a, const Value& b) {
  const CmpClass ca = ClassOf(a.kind());
  if (ca != ClassOf(b.kind()) || ca == CmpClass::kOther) return Tri::kNull;
  switch (ca) {
    case CmpClass::kNumeric:
      if (a.kind() == TypeKind::kDouble || b.kind() == TypeKind::kDouble) {
        return ApplyOp(op, NumericAsDouble(a), NumericAsDouble(b));
      }
      return ApplyOp(op, a.int64_value(), b.int64_value());
    case CmpClass::kStringy:
      return ApplyOp(op, Slice(a.string_value()).Compare(b.string_value()), 0);
    case CmpClass::kBool:
      return ApplyOp(op, a.bool_value() ? 1 : 0, b.bool_value() ? 1 : 0);
    default:
      return Tri::kNull;
  }
}

/// Strict less-than in the stats/refutation order; incomparable = false
/// (never refutes).
bool Less(const Value& a, const Value& b) {
  return EvalCmpValues(Op::kLt, a, b) == Tri::kTrue;
}

const char* OpText(Op op) {
  switch (op) {
    case Op::kEq: return "=";
    case Op::kNe: return "!=";
    case Op::kLt: return "<";
    case Op::kLe: return "<=";
    case Op::kGt: return ">";
    case Op::kGe: return ">=";
    default: return "?";
  }
}

std::string LiteralText(const Value& v) {
  switch (v.kind()) {
    case TypeKind::kString:
    case TypeKind::kBytes: {
      std::string out = "'";
      for (char c : v.string_value()) {
        if (c == '\'' || c == '\\') out.push_back('\\');
        out.push_back(c);
      }
      out.push_back('\'');
      return out;
    }
    default:
      return v.ToString();
  }
}

void CollectColumns(const Predicate& p, std::set<std::string>* out) {
  if (p.op == Op::kAnd || p.op == Op::kOr) {
    for (const Predicate& child : p.children) CollectColumns(child, out);
  } else {
    out->insert(p.column);
  }
}

}  // namespace

Predicate Predicate::Cmp(Op op, std::string column, Value literal) {
  Predicate p;
  p.op = op;
  p.column = std::move(column);
  p.literal = std::move(literal);
  return p;
}

Predicate Predicate::IsNull(std::string column) {
  Predicate p;
  p.op = Op::kIsNull;
  p.column = std::move(column);
  return p;
}

Predicate Predicate::IsNotNull(std::string column) {
  Predicate p;
  p.op = Op::kIsNotNull;
  p.column = std::move(column);
  return p;
}

Predicate Predicate::And(std::vector<Predicate> children) {
  Predicate p;
  p.op = Op::kAnd;
  p.children = std::move(children);
  return p;
}

Predicate Predicate::Or(std::vector<Predicate> children) {
  Predicate p;
  p.op = Op::kOr;
  p.children = std::move(children);
  return p;
}

std::string Predicate::ToString() const {
  switch (op) {
    case Op::kAnd:
    case Op::kOr: {
      std::string out;
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += op == Op::kAnd ? " AND " : " OR ";
        // AND binds tighter than OR, so only an OR child under AND needs
        // parentheses for the text to round-trip.
        const bool parens = op == Op::kAnd && children[i].op == Op::kOr;
        if (parens) out.push_back('(');
        out += children[i].ToString();
        if (parens) out.push_back(')');
      }
      return out;
    }
    case Op::kIsNull:
      return column + " IS NULL";
    case Op::kIsNotNull:
      return column + " IS NOT NULL";
    default:
      return column + " " + OpText(op) + " " + LiteralText(literal);
  }
}

std::vector<std::string> PredicateColumns(const Predicate& predicate) {
  std::set<std::string> names;
  CollectColumns(predicate, &names);
  return std::vector<std::string>(names.begin(), names.end());
}

Status ValidatePredicate(const Predicate& predicate, const Schema& schema,
                         bool tolerate_missing) {
  if (predicate.op == Op::kAnd || predicate.op == Op::kOr) {
    for (const Predicate& child : predicate.children) {
      COLMR_RETURN_IF_ERROR(
          ValidatePredicate(child, schema, tolerate_missing));
    }
    return Status::OK();
  }
  if (schema.kind() != TypeKind::kRecord) {
    return Status::InvalidArgument("predicate: schema is not a record");
  }
  const int index = schema.FieldIndex(predicate.column);
  if (index < 0) {
    if (tolerate_missing) return Status::OK();  // evaluates as NULL
    return Status::InvalidArgument("predicate: unknown column " +
                                   predicate.column);
  }
  if (predicate.op == Op::kIsNull || predicate.op == Op::kIsNotNull) {
    return Status::OK();
  }
  const Schema& column = *schema.fields()[index].type;
  if (!column.is_primitive()) {
    return Status::InvalidArgument(
        "predicate: comparison on non-primitive column " + predicate.column);
  }
  if (predicate.literal.is_null()) {
    return Status::InvalidArgument(
        "predicate: comparison literal is null (use IS NULL)");
  }
  // A null-typed column never satisfies a comparison but is legal to
  // test against any literal; other kinds must be class-compatible.
  if (column.kind() != TypeKind::kNull) {
    const CmpClass cc = ClassOf(column.kind());
    if (cc == CmpClass::kOther || cc != ClassOf(predicate.literal.kind())) {
      return Status::InvalidArgument(
          "predicate: literal type does not compare with column " +
          predicate.column);
    }
  }
  return Status::OK();
}

Tri EvalPredicateRow(const Predicate& predicate, Record& record,
                     Status* status) {
  switch (predicate.op) {
    case Op::kAnd: {
      Tri acc = Tri::kTrue;
      for (const Predicate& child : predicate.children) {
        const Tri t = EvalPredicateRow(child, record, status);
        if (!status->ok()) return Tri::kNull;
        if (t == Tri::kFalse) return Tri::kFalse;
        if (t == Tri::kNull) acc = Tri::kNull;
      }
      return acc;
    }
    case Op::kOr: {
      Tri acc = Tri::kFalse;
      for (const Predicate& child : predicate.children) {
        const Tri t = EvalPredicateRow(child, record, status);
        if (!status->ok()) return Tri::kNull;
        if (t == Tri::kTrue) return Tri::kTrue;
        if (t == Tri::kNull) acc = Tri::kNull;
      }
      return acc;
    }
    default: {
      const Value* v = nullptr;
      const Status s = record.Get(predicate.column, &v);
      if (!s.ok()) {
        *status = s;
        return Tri::kNull;
      }
      if (predicate.op == Op::kIsNull) {
        return v->is_null() ? Tri::kTrue : Tri::kFalse;
      }
      if (predicate.op == Op::kIsNotNull) {
        return v->is_null() ? Tri::kFalse : Tri::kTrue;
      }
      if (v->is_null() || predicate.literal.is_null()) return Tri::kNull;
      return EvalCmpValues(predicate.op, *v, predicate.literal);
    }
  }
}

// ---- Zone-map refutation ----

namespace {

bool CanMatchLeaf(const Predicate& p, const ColumnStats* s) {
  if (s == nullptr) return true;  // unknown column: never refute
  if (p.op == Op::kIsNull) return s->nulls > 0;
  if (p.op == Op::kIsNotNull) return s->values > s->nulls;
  // Comparisons need at least one non-null value to ever be true.
  if (s->values <= s->nulls) return false;
  const Value& lit = p.literal;
  if (lit.is_null()) return false;
  if (lit.kind() == TypeKind::kDouble && std::isnan(lit.double_value())) {
    // IEEE: x != NaN holds for every x; every other comparison never does.
    return p.op == Op::kNe;
  }
  switch (p.op) {
    case Op::kEq:
      if (s->has_min && Less(lit, s->min)) return false;
      if (s->has_max && Less(s->max, lit)) return false;
      return true;
    case Op::kNe:
      // Refuted only when min == max == lit, i.e. every value equals the
      // literal exactly (NaN-bearing ranges carry no min/max, and typed
      // columns carry no nulls, so the bounds are over all rows).
      return !(s->has_min && s->has_max && !Less(s->min, lit) &&
               !Less(lit, s->min) && !Less(s->max, lit) &&
               !Less(lit, s->max));
    case Op::kLt:
      return !s->has_min || Less(s->min, lit);
    case Op::kLe:
      return !s->has_min || !Less(lit, s->min);
    case Op::kGt:
      return !s->has_max || Less(lit, s->max);
    case Op::kGe:
      return !s->has_max || !Less(s->max, lit);
    default:
      return true;
  }
}

}  // namespace

bool PredicateCanMatch(
    const Predicate& predicate,
    const std::function<const ColumnStats*(const std::string&)>& stats) {
  switch (predicate.op) {
    case Op::kAnd:
      // If any conjunct is unsatisfiable over the range, so is the AND.
      for (const Predicate& child : predicate.children) {
        if (!PredicateCanMatch(child, stats)) return false;
      }
      return true;
    case Op::kOr: {
      if (predicate.children.empty()) return false;
      for (const Predicate& child : predicate.children) {
        if (PredicateCanMatch(child, stats)) return true;
      }
      return false;
    }
    default:
      return CanMatchLeaf(predicate, stats(predicate.column));
  }
}

bool PrimitiveLess(const Value& a, const Value& b) { return Less(a, b); }

// ---- Vectorized evaluation ----

namespace {

/// One comparison loop with the operator switch hoisted out, so each case
/// body is a tight branch-light loop the compiler can vectorize.
template <typename GetFn, typename T>
void CmpLoop(Op op, uint64_t rows, const GetFn& get, T lit, uint8_t* t) {
  switch (op) {
    case Op::kEq:
      for (uint64_t i = 0; i < rows; ++i) t[i] = get(i) == lit;
      break;
    case Op::kNe:
      for (uint64_t i = 0; i < rows; ++i) t[i] = get(i) != lit;
      break;
    case Op::kLt:
      for (uint64_t i = 0; i < rows; ++i) t[i] = get(i) < lit;
      break;
    case Op::kLe:
      for (uint64_t i = 0; i < rows; ++i) t[i] = get(i) <= lit;
      break;
    case Op::kGt:
      for (uint64_t i = 0; i < rows; ++i) t[i] = get(i) > lit;
      break;
    case Op::kGe:
      for (uint64_t i = 0; i < rows; ++i) t[i] = get(i) >= lit;
      break;
    default:
      break;
  }
}

}  // namespace

BatchPredicateEvaluator::Mask* BatchPredicateEvaluator::AcquireMask() {
  if (pool_used_ == pool_.size()) {
    pool_.push_back(std::make_unique<Mask>());
  }
  return pool_[pool_used_++].get();
}

void BatchPredicateEvaluator::ReleaseMask() { --pool_used_; }

void BatchPredicateEvaluator::EvalLeaf(const Predicate& p,
                                       const ColumnBatch* batch,
                                       uint64_t rows, Mask* out) {
  out->t.assign(rows, 0);
  out->n.assign(rows, 0);
  const bool null_test = p.op == Op::kIsNull || p.op == Op::kIsNotNull;
  if (batch == nullptr || batch->kind() == TypeKind::kNull) {
    // Absent column or null-typed column: every row's value is null.
    if (p.op == Op::kIsNull) {
      out->t.assign(rows, 1);
    } else if (!null_test) {
      out->n.assign(rows, 1);
    }
    return;
  }
  if (null_test) {
    // Typed and boxed lanes hold no nulls: the value encoding cannot
    // produce one for a non-null column type.
    if (p.op == Op::kIsNotNull) out->t.assign(rows, 1);
    return;
  }
  const Value& lit = p.literal;
  uint8_t* t = out->t.data();
  if (lit.is_null() || batch->is_boxed()) {
    out->n.assign(rows, 1);
    return;
  }
  switch (batch->kind()) {
    case TypeKind::kBool:
      if (ClassOf(lit.kind()) != CmpClass::kBool) break;
      CmpLoop(
          p.op, rows, [batch](uint64_t i) { return batch->BoolAt(i) ? 1 : 0; },
          lit.bool_value() ? 1 : 0, t);
      return;
    case TypeKind::kInt32:
    case TypeKind::kInt64:
      if (ClassOf(lit.kind()) != CmpClass::kNumeric) break;
      if (lit.kind() == TypeKind::kDouble) {
        CmpLoop(
            p.op, rows,
            [batch](uint64_t i) {
              return static_cast<double>(batch->IntAt(i));
            },
            lit.double_value(), t);
      } else {
        CmpLoop(
            p.op, rows, [batch](uint64_t i) { return batch->IntAt(i); },
            lit.int64_value(), t);
      }
      return;
    case TypeKind::kDouble:
      if (ClassOf(lit.kind()) != CmpClass::kNumeric) break;
      CmpLoop(
          p.op, rows, [batch](uint64_t i) { return batch->DoubleAt(i); },
          NumericAsDouble(lit), t);
      return;
    case TypeKind::kString:
    case TypeKind::kBytes: {
      if (ClassOf(lit.kind()) != CmpClass::kStringy) break;
      const Slice lit_slice(lit.string_value());
      CmpLoop(
          p.op, rows,
          [batch, lit_slice](uint64_t i) {
            return batch->StringAt(i).Compare(lit_slice);
          },
          0, t);
      return;
    }
    default:
      break;
  }
  // Incomparable column/literal classes: NULL, as in the row path.
  out->n.assign(rows, 1);
}

void BatchPredicateEvaluator::EvalNode(const Predicate& p, const LaneFn& lane,
                                       uint64_t rows, Mask* out) {
  if (p.op != Op::kAnd && p.op != Op::kOr) {
    EvalLeaf(p, lane(p.column), rows, out);
    return;
  }
  if (p.children.empty()) {
    out->t.assign(rows, p.op == Op::kAnd ? 1 : 0);
    out->n.assign(rows, 0);
    return;
  }
  EvalNode(p.children.front(), lane, rows, out);
  if (p.children.size() == 1) return;
  Mask* rhs = AcquireMask();
  for (size_t c = 1; c < p.children.size(); ++c) {
    EvalNode(p.children[c], lane, rows, rhs);
    uint8_t* ta = out->t.data();
    uint8_t* na = out->n.data();
    const uint8_t* tb = rhs->t.data();
    const uint8_t* nb = rhs->n.data();
    if (p.op == Op::kAnd) {
      // Kleene AND: true iff both true, false if either false, else null.
      for (uint64_t i = 0; i < rows; ++i) {
        const uint8_t fa = (ta[i] | na[i]) ^ 1;
        const uint8_t fb = (tb[i] | nb[i]) ^ 1;
        const uint8_t t = ta[i] & tb[i];
        ta[i] = t;
        na[i] = (t | fa | fb) ^ 1;
      }
    } else {
      // Kleene OR: true if either true, false iff both false, else null.
      for (uint64_t i = 0; i < rows; ++i) {
        const uint8_t fa = (ta[i] | na[i]) ^ 1;
        const uint8_t fb = (tb[i] | nb[i]) ^ 1;
        const uint8_t t = ta[i] | tb[i];
        ta[i] = t;
        na[i] = (t | (fa & fb)) ^ 1;
      }
    }
  }
  ReleaseMask();
}

void BatchPredicateEvaluator::Eval(const Predicate& predicate,
                                   const LaneFn& lane, uint64_t rows,
                                   std::vector<uint32_t>* selection) {
  selection->clear();
  if (rows == 0) return;
  Mask* mask = AcquireMask();
  EvalNode(predicate, lane, rows, mask);
  const uint8_t* t = mask->t.data();
  for (uint64_t i = 0; i < rows; ++i) {
    if (t[i]) selection->push_back(static_cast<uint32_t>(i));
  }
  ReleaseMask();
}

// ---- Parser ----

namespace {

class PredicateParser {
 public:
  explicit PredicateParser(const std::string& text) : text_(text) {}

  Status Parse(Predicate* out) {
    COLMR_RETURN_IF_ERROR(ParseOr(out));
    SkipWs();
    if (pos_ != text_.size()) {
      return Err("unexpected input after expression");
    }
    return Status::OK();
  }

 private:
  Status Err(const std::string& message) const {
    return Status::InvalidArgument("where: " + message + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  static bool IdentStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  }
  static bool IdentChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  }

  /// Case-insensitively consumes `word` as a whole keyword.
  bool ConsumeKeyword(const char* word) {
    SkipWs();
    size_t p = pos_;
    for (const char* w = word; *w != '\0'; ++w, ++p) {
      if (p >= text_.size() ||
          std::toupper(static_cast<unsigned char>(text_[p])) != *w) {
        return false;
      }
    }
    if (p < text_.size() && IdentChar(text_[p])) return false;
    pos_ = p;
    return true;
  }

  Status ParseOr(Predicate* out) {
    std::vector<Predicate> terms(1);
    COLMR_RETURN_IF_ERROR(ParseAnd(&terms.back()));
    while (ConsumeKeyword("OR")) {
      terms.emplace_back();
      COLMR_RETURN_IF_ERROR(ParseAnd(&terms.back()));
    }
    *out = terms.size() == 1 ? std::move(terms.front())
                             : Predicate::Or(std::move(terms));
    return Status::OK();
  }

  Status ParseAnd(Predicate* out) {
    std::vector<Predicate> terms(1);
    COLMR_RETURN_IF_ERROR(ParseFactor(&terms.back()));
    while (ConsumeKeyword("AND")) {
      terms.emplace_back();
      COLMR_RETURN_IF_ERROR(ParseFactor(&terms.back()));
    }
    *out = terms.size() == 1 ? std::move(terms.front())
                             : Predicate::And(std::move(terms));
    return Status::OK();
  }

  Status ParseFactor(Predicate* out) {
    if (Consume('(')) {
      COLMR_RETURN_IF_ERROR(ParseOr(out));
      if (!Consume(')')) return Err("expected ')'");
      return Status::OK();
    }
    std::string column;
    COLMR_RETURN_IF_ERROR(ParseIdent(&column));
    if (ConsumeKeyword("IS")) {
      const bool negated = ConsumeKeyword("NOT");
      if (!ConsumeKeyword("NULL")) return Err("expected NULL after IS");
      *out = negated ? Predicate::IsNotNull(std::move(column))
                     : Predicate::IsNull(std::move(column));
      return Status::OK();
    }
    Op op;
    COLMR_RETURN_IF_ERROR(ParseOp(&op));
    Value literal;
    COLMR_RETURN_IF_ERROR(ParseLiteral(&literal));
    *out = Predicate::Cmp(op, std::move(column), std::move(literal));
    return Status::OK();
  }

  Status ParseIdent(std::string* out) {
    SkipWs();
    if (pos_ >= text_.size() || !IdentStart(text_[pos_])) {
      return Err("expected column name");
    }
    const size_t start = pos_;
    while (pos_ < text_.size() && IdentChar(text_[pos_])) ++pos_;
    out->assign(text_, start, pos_ - start);
    return Status::OK();
  }

  Status ParseOp(Op* out) {
    SkipWs();
    const auto starts = [&](const char* s) {
      return text_.compare(pos_, std::char_traits<char>::length(s), s) == 0;
    };
    if (starts("==")) { *out = Op::kEq; pos_ += 2; return Status::OK(); }
    if (starts("!=") || starts("<>")) {
      *out = Op::kNe;
      pos_ += 2;
      return Status::OK();
    }
    if (starts("<=")) { *out = Op::kLe; pos_ += 2; return Status::OK(); }
    if (starts(">=")) { *out = Op::kGe; pos_ += 2; return Status::OK(); }
    if (starts("=")) { *out = Op::kEq; pos_ += 1; return Status::OK(); }
    if (starts("<")) { *out = Op::kLt; pos_ += 1; return Status::OK(); }
    if (starts(">")) { *out = Op::kGt; pos_ += 1; return Status::OK(); }
    return Err("expected comparison operator");
  }

  Status ParseLiteral(Value* out) {
    SkipWs();
    if (pos_ >= text_.size()) return Err("expected literal");
    const char first = text_[pos_];
    if (first == '\'' || first == '"') {
      const char quote = first;
      ++pos_;
      std::string s;
      while (pos_ < text_.size() && text_[pos_] != quote) {
        char c = text_[pos_++];
        if (c == '\\' && pos_ < text_.size()) c = text_[pos_++];
        s.push_back(c);
      }
      if (pos_ >= text_.size()) return Err("unterminated string literal");
      ++pos_;  // closing quote
      *out = Value::String(std::move(s));
      return Status::OK();
    }
    if (ConsumeKeyword("TRUE")) {
      *out = Value::Bool(true);
      return Status::OK();
    }
    if (ConsumeKeyword("FALSE")) {
      *out = Value::Bool(false);
      return Status::OK();
    }
    // Number: [+-]? digits, optionally with '.'/exponent -> double.
    const size_t start = pos_;
    if (first == '+' || first == '-') ++pos_;
    bool is_double = false;
    bool any_digit = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        any_digit = true;
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E') {
        is_double = true;
        ++pos_;
        if (pos_ < text_.size() &&
            (text_[pos_] == '+' || text_[pos_] == '-') &&
            (c == 'e' || c == 'E')) {
          ++pos_;
        }
      } else {
        break;
      }
    }
    if (!any_digit) return Err("expected literal");
    const std::string token = text_.substr(start, pos_ - start);
    errno = 0;
    char* end = nullptr;
    if (is_double) {
      const double d = std::strtod(token.c_str(), &end);
      if (end != token.c_str() + token.size() || errno == ERANGE) {
        return Err("bad numeric literal '" + token + "'");
      }
      *out = Value::Double(d);
    } else {
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (end != token.c_str() + token.size() || errno == ERANGE) {
        return Err("bad integer literal '" + token + "'");
      }
      *out = Value::Int64(v);
    }
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Status ParsePredicate(const std::string& text, Predicate* out) {
  return PredicateParser(text).Parse(out);
}

}  // namespace colmr
