#ifndef COLMR_SERDE_BOXED_H_
#define COLMR_SERDE_BOXED_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "serde/schema.h"

namespace colmr {

/// "Java-style" deserialization path used to reproduce the paper's
/// Appendix B.1 experiment (Fig. 8). Every decoded value becomes a
/// separately heap-allocated polymorphic object, map entries live in a
/// node-based std::map, and access goes through virtual dispatch — the
/// same allocation-per-value and pointer-chasing behaviour that makes
/// Hadoop's deserialization CPU-bound. The native path (serde/encoding.h
/// or raw buffer casts) is the C++ comparison point.
struct BoxedValue {
  virtual ~BoxedValue() = default;
  /// Folds the value into an accumulator so benchmarks can prove the
  /// decoded data was actually touched.
  virtual uint64_t Checksum() const = 0;
};

struct BoxedNull final : BoxedValue {
  uint64_t Checksum() const override { return 0; }
};

struct BoxedBool final : BoxedValue {
  bool value = false;
  uint64_t Checksum() const override { return value ? 1 : 0; }
};

struct BoxedInt final : BoxedValue {
  int32_t value = 0;
  uint64_t Checksum() const override { return static_cast<uint64_t>(value); }
};

struct BoxedLong final : BoxedValue {
  int64_t value = 0;
  uint64_t Checksum() const override { return static_cast<uint64_t>(value); }
};

struct BoxedDouble final : BoxedValue {
  double value = 0;
  uint64_t Checksum() const override {
    return static_cast<uint64_t>(value * 1000.0);
  }
};

struct BoxedString final : BoxedValue {
  std::string value;
  uint64_t Checksum() const override {
    return value.empty() ? 0 : static_cast<uint8_t>(value[0]) + value.size();
  }
};

struct BoxedMap final : BoxedValue {
  std::map<std::string, std::unique_ptr<BoxedValue>> entries;
  uint64_t Checksum() const override {
    uint64_t sum = 0;
    for (const auto& [k, v] : entries) sum += k.size() + v->Checksum();
    return sum;
  }
};

struct BoxedArray final : BoxedValue {
  std::vector<std::unique_ptr<BoxedValue>> elements;
  uint64_t Checksum() const override {
    uint64_t sum = 0;
    for (const auto& e : elements) sum += e->Checksum();
    return sum;
  }
};

struct BoxedRecord final : BoxedValue {
  std::vector<std::unique_ptr<BoxedValue>> fields;
  uint64_t Checksum() const override {
    uint64_t sum = 0;
    for (const auto& f : fields) sum += f->Checksum();
    return sum;
  }
};

/// Decodes one value from the standard wire format (serde/encoding.h) into
/// a freshly allocated boxed object tree, consuming bytes from *input.
Status DecodeBoxed(const Schema& schema, Slice* input,
                   std::unique_ptr<BoxedValue>* out);

}  // namespace colmr

#endif  // COLMR_SERDE_BOXED_H_
