#include "serde/encoding.h"

#include <algorithm>
#include <cstring>

#include "common/coding.h"
#include "common/hash.h"
#include "obs/metrics.h"

namespace colmr {

namespace {

// serde.* counters are process-global: encode/decode run inside format
// readers and the shuffle, far from any per-job context.  The public
// entry points count one event per top-level value and delegate to the
// *Rec workers below, so container recursion costs no extra atomics and
// the hot path stays one relaxed add per value.
Counter* SerdeCounter(const char* name) {
  return MetricsRegistry::Default().counter(name);
}

Status EncodeValueRec(const Schema& schema, const Value& value, Buffer* dst);
Status DecodeValueRec(const Schema& schema, Slice* input, Value* out);
Status SkipValueRec(const Schema& schema, Slice* input);
void EncodeTaggedValueRec(const Value& value, Buffer* dst);
Status DecodeTaggedValueRec(Slice* input, Value* out);

Status EncodeValueRec(const Schema& schema, const Value& value, Buffer* dst) {
  if (schema.kind() != value.kind()) {
    // Allow int32 values in int64 columns (widening), nothing else.
    if (!(schema.kind() == TypeKind::kInt64 &&
          value.kind() == TypeKind::kInt32)) {
      return Status::InvalidArgument("encode: value kind does not match schema");
    }
  }
  switch (schema.kind()) {
    case TypeKind::kNull:
      return Status::OK();
    case TypeKind::kBool:
      dst->PushBack(value.bool_value() ? 1 : 0);
      return Status::OK();
    case TypeKind::kInt32:
      PutZigZag32(dst, value.int32_value());
      return Status::OK();
    case TypeKind::kInt64:
      PutZigZag64(dst, value.int64_value());
      return Status::OK();
    case TypeKind::kDouble:
      PutDouble(dst, value.double_value());
      return Status::OK();
    case TypeKind::kString:
    case TypeKind::kBytes:
      PutLengthPrefixed(dst, value.string_value());
      return Status::OK();
    case TypeKind::kArray: {
      const auto& elems = value.elements();
      PutVarint64(dst, elems.size());
      for (const Value& e : elems) {
        COLMR_RETURN_IF_ERROR(EncodeValueRec(*schema.element(), e, dst));
      }
      return Status::OK();
    }
    case TypeKind::kMap: {
      const auto& entries = value.map_entries();
      PutVarint64(dst, entries.size());
      for (const auto& [k, v] : entries) {
        PutLengthPrefixed(dst, k);
        COLMR_RETURN_IF_ERROR(EncodeValueRec(*schema.element(), v, dst));
      }
      return Status::OK();
    }
    case TypeKind::kRecord: {
      const auto& fields = schema.fields();
      const auto& values = value.elements();
      if (fields.size() != values.size()) {
        return Status::InvalidArgument("encode: record arity mismatch");
      }
      for (size_t i = 0; i < fields.size(); ++i) {
        COLMR_RETURN_IF_ERROR(EncodeValueRec(*fields[i].type, values[i], dst));
      }
      return Status::OK();
    }
  }
  return Status::InvalidArgument("encode: unknown kind");
}

Status DecodeValueRec(const Schema& schema, Slice* input, Value* out) {
  switch (schema.kind()) {
    case TypeKind::kNull:
      *out = Value::Null();
      return Status::OK();
    case TypeKind::kBool: {
      if (input->empty()) return Status::Corruption("decode: bool");
      *out = Value::Bool((*input)[0] != 0);
      input->RemovePrefix(1);
      return Status::OK();
    }
    case TypeKind::kInt32: {
      int32_t v;
      COLMR_RETURN_IF_ERROR(GetZigZag32(input, &v));
      *out = Value::Int32(v);
      return Status::OK();
    }
    case TypeKind::kInt64: {
      int64_t v;
      COLMR_RETURN_IF_ERROR(GetZigZag64(input, &v));
      *out = Value::Int64(v);
      return Status::OK();
    }
    case TypeKind::kDouble: {
      double v;
      COLMR_RETURN_IF_ERROR(GetDouble(input, &v));
      *out = Value::Double(v);
      return Status::OK();
    }
    case TypeKind::kString:
    case TypeKind::kBytes: {
      Slice s;
      COLMR_RETURN_IF_ERROR(GetLengthPrefixed(input, &s));
      std::string owned(s.data(), s.size());
      *out = schema.kind() == TypeKind::kString
                 ? Value::String(std::move(owned))
                 : Value::Bytes(std::move(owned));
      return Status::OK();
    }
    case TypeKind::kArray: {
      uint64_t count;
      COLMR_RETURN_IF_ERROR(GetVarint64(input, &count));
      COLMR_RETURN_IF_ERROR(CheckContainerCount(count, input->size()));
      std::vector<Value> elems;
      elems.reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        Value v;
        COLMR_RETURN_IF_ERROR(DecodeValueRec(*schema.element(), input, &v));
        elems.push_back(std::move(v));
      }
      *out = Value::Array(std::move(elems));
      return Status::OK();
    }
    case TypeKind::kMap: {
      uint64_t count;
      COLMR_RETURN_IF_ERROR(GetVarint64(input, &count));
      COLMR_RETURN_IF_ERROR(CheckContainerCount(count, input->size()));
      Value::MapEntries entries;
      entries.reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        Slice key;
        COLMR_RETURN_IF_ERROR(GetLengthPrefixed(input, &key));
        Value v;
        COLMR_RETURN_IF_ERROR(DecodeValueRec(*schema.element(), input, &v));
        entries.emplace_back(std::string(key.data(), key.size()),
                             std::move(v));
      }
      *out = Value::Map(std::move(entries));
      return Status::OK();
    }
    case TypeKind::kRecord: {
      std::vector<Value> values;
      values.reserve(schema.fields().size());
      for (const auto& field : schema.fields()) {
        Value v;
        COLMR_RETURN_IF_ERROR(DecodeValueRec(*field.type, input, &v));
        values.push_back(std::move(v));
      }
      *out = Value::Record(std::move(values));
      return Status::OK();
    }
  }
  return Status::Corruption("decode: unknown kind");
}

Status SkipValueRec(const Schema& schema, Slice* input) {
  switch (schema.kind()) {
    case TypeKind::kNull:
      return Status::OK();
    case TypeKind::kBool:
      if (input->empty()) return Status::Corruption("skip: bool");
      input->RemovePrefix(1);
      return Status::OK();
    case TypeKind::kInt32:
    case TypeKind::kInt64: {
      uint64_t v;
      return GetVarint64(input, &v);
    }
    case TypeKind::kDouble: {
      if (input->size() < 8) return Status::Corruption("skip: double");
      input->RemovePrefix(8);
      return Status::OK();
    }
    case TypeKind::kString:
    case TypeKind::kBytes: {
      Slice s;
      return GetLengthPrefixed(input, &s);
    }
    case TypeKind::kArray: {
      uint64_t count;
      COLMR_RETURN_IF_ERROR(GetVarint64(input, &count));
      COLMR_RETURN_IF_ERROR(CheckContainerCount(count, input->size()));
      for (uint64_t i = 0; i < count; ++i) {
        COLMR_RETURN_IF_ERROR(SkipValueRec(*schema.element(), input));
      }
      return Status::OK();
    }
    case TypeKind::kMap: {
      uint64_t count;
      COLMR_RETURN_IF_ERROR(GetVarint64(input, &count));
      COLMR_RETURN_IF_ERROR(CheckContainerCount(count, input->size()));
      for (uint64_t i = 0; i < count; ++i) {
        Slice key;
        COLMR_RETURN_IF_ERROR(GetLengthPrefixed(input, &key));
        COLMR_RETURN_IF_ERROR(SkipValueRec(*schema.element(), input));
      }
      return Status::OK();
    }
    case TypeKind::kRecord: {
      for (const auto& field : schema.fields()) {
        COLMR_RETURN_IF_ERROR(SkipValueRec(*field.type, input));
      }
      return Status::OK();
    }
  }
  return Status::Corruption("skip: unknown kind");
}

void EncodeTaggedValueRec(const Value& value, Buffer* dst) {
  dst->PushBack(static_cast<char>(value.kind()));
  switch (value.kind()) {
    case TypeKind::kNull:
      break;
    case TypeKind::kBool:
      dst->PushBack(value.bool_value() ? 1 : 0);
      break;
    case TypeKind::kInt32:
      PutZigZag32(dst, value.int32_value());
      break;
    case TypeKind::kInt64:
      PutZigZag64(dst, value.int64_value());
      break;
    case TypeKind::kDouble:
      PutDouble(dst, value.double_value());
      break;
    case TypeKind::kString:
    case TypeKind::kBytes:
      PutLengthPrefixed(dst, value.string_value());
      break;
    case TypeKind::kArray:
    case TypeKind::kRecord: {
      const auto& elems = value.elements();
      PutVarint64(dst, elems.size());
      for (const Value& e : elems) EncodeTaggedValueRec(e, dst);
      break;
    }
    case TypeKind::kMap: {
      const auto& entries = value.map_entries();
      PutVarint64(dst, entries.size());
      for (const auto& [k, v] : entries) {
        PutLengthPrefixed(dst, k);
        EncodeTaggedValueRec(v, dst);
      }
      break;
    }
  }
}

Status DecodeTaggedValueRec(Slice* input, Value* out) {
  if (input->empty()) return Status::Corruption("tagged: empty");
  const TypeKind kind = static_cast<TypeKind>((*input)[0]);
  input->RemovePrefix(1);
  switch (kind) {
    case TypeKind::kNull:
      *out = Value::Null();
      return Status::OK();
    case TypeKind::kBool: {
      if (input->empty()) return Status::Corruption("tagged: bool");
      *out = Value::Bool((*input)[0] != 0);
      input->RemovePrefix(1);
      return Status::OK();
    }
    case TypeKind::kInt32: {
      int32_t v;
      COLMR_RETURN_IF_ERROR(GetZigZag32(input, &v));
      *out = Value::Int32(v);
      return Status::OK();
    }
    case TypeKind::kInt64: {
      int64_t v;
      COLMR_RETURN_IF_ERROR(GetZigZag64(input, &v));
      *out = Value::Int64(v);
      return Status::OK();
    }
    case TypeKind::kDouble: {
      double v;
      COLMR_RETURN_IF_ERROR(GetDouble(input, &v));
      *out = Value::Double(v);
      return Status::OK();
    }
    case TypeKind::kString:
    case TypeKind::kBytes: {
      Slice s;
      COLMR_RETURN_IF_ERROR(GetLengthPrefixed(input, &s));
      std::string owned(s.data(), s.size());
      *out = kind == TypeKind::kString ? Value::String(std::move(owned))
                                       : Value::Bytes(std::move(owned));
      return Status::OK();
    }
    case TypeKind::kArray:
    case TypeKind::kRecord: {
      uint64_t count;
      COLMR_RETURN_IF_ERROR(GetVarint64(input, &count));
      COLMR_RETURN_IF_ERROR(CheckContainerCount(count, input->size()));
      std::vector<Value> elems;
      elems.reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        Value v;
        COLMR_RETURN_IF_ERROR(DecodeTaggedValueRec(input, &v));
        elems.push_back(std::move(v));
      }
      *out = kind == TypeKind::kArray ? Value::Array(std::move(elems))
                                      : Value::Record(std::move(elems));
      return Status::OK();
    }
    case TypeKind::kMap: {
      uint64_t count;
      COLMR_RETURN_IF_ERROR(GetVarint64(input, &count));
      COLMR_RETURN_IF_ERROR(CheckContainerCount(count, input->size()));
      Value::MapEntries entries;
      entries.reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        Slice key;
        COLMR_RETURN_IF_ERROR(GetLengthPrefixed(input, &key));
        Value v;
        COLMR_RETURN_IF_ERROR(DecodeTaggedValueRec(input, &v));
        entries.emplace_back(std::string(key.data(), key.size()),
                             std::move(v));
      }
      *out = Value::Map(std::move(entries));
      return Status::OK();
    }
  }
  return Status::Corruption("tagged: unknown kind");
}

}  // namespace

Status EncodeValue(const Schema& schema, const Value& value, Buffer* dst) {
  static Counter* values = SerdeCounter("serde.encode.values");
  values->Increment();
  return EncodeValueRec(schema, value, dst);
}

Status DecodeValue(const Schema& schema, Slice* input, Value* out) {
  static Counter* values = SerdeCounter("serde.decode.values");
  values->Increment();
  return DecodeValueRec(schema, input, out);
}

Status SkipValue(const Schema& schema, Slice* input) {
  static Counter* values = SerdeCounter("serde.skip.values");
  values->Increment();
  return SkipValueRec(schema, input);
}

Status DecodeColumnBatch(const Schema& schema, Slice* input, size_t n,
                         bool copy_strings, ColumnBatch* out,
                         size_t* decoded) {
  static Counter* batches = SerdeCounter("serde.batch.decoded");
  static Counter* rows = SerdeCounter("serde.batch.rows");
  static Counter* fallback = SerdeCounter("serde.batch.fallback_values");
  batches->Increment();
  *decoded = 0;
  switch (schema.kind()) {
    case TypeKind::kNull: {
      for (size_t i = 0; i < n; ++i) out->AppendNull();
      *decoded = n;
      break;
    }
    case TypeKind::kBool: {
      const size_t take = n < input->size() ? n : input->size();
      const char* p = input->data();
      for (size_t i = 0; i < take; ++i) out->AppendBool(p[i] != 0);
      input->RemovePrefix(take);
      *decoded = take;
      if (take < n) return Status::Corruption("decode: bool");
      break;
    }
    case TypeKind::kInt32:
    case TypeKind::kInt64: {
      const bool narrow = schema.kind() == TypeKind::kInt32;
      uint64_t raw[512];
      int64_t vals[512];
      while (*decoded < n) {
        const size_t want = std::min<size_t>(n - *decoded, 512);
        const Slice chunk_start = *input;
        size_t got = 0;
        Status s = DecodeVarint64Batch(input, want, raw, &got);
        size_t usable = got;
        if (s.ok() && narrow) {
          // Scalar parity: GetZigZag32 rejects raw varints wider than 32
          // bits before zigzag decoding.
          for (size_t i = 0; i < got; ++i) {
            if (raw[i] > UINT32_MAX) {
              s = Status::Corruption("varint32 overflow");
              usable = i;
              // Rewind to the offending value: replay the good prefix.
              *input = chunk_start;
              uint64_t scratch = 0;
              for (size_t j = 0; j < i; ++j) GetVarint64(input, &scratch);
              break;
            }
          }
        }
        for (size_t i = 0; i < usable; ++i) {
          vals[i] = narrow ? static_cast<int64_t>(ZigZagDecode32(
                                 static_cast<uint32_t>(raw[i])))
                           : ZigZagDecode64(raw[i]);
        }
        out->AppendInts(vals, usable);
        *decoded += usable;
        if (!s.ok()) return s;
      }
      break;
    }
    case TypeKind::kDouble: {
      uint64_t raw[512];
      double vals[512];
      while (*decoded < n) {
        const size_t want = std::min<size_t>(n - *decoded, 512);
        size_t got = 0;
        Status s = DecodeFixed64Batch(input, want, raw, &got);
        for (size_t i = 0; i < got; ++i) {
          memcpy(&vals[i], &raw[i], 8);
        }
        out->AppendDoubles(vals, got);
        *decoded += got;
        if (!s.ok()) return s;
      }
      break;
    }
    case TypeKind::kString:
    case TypeKind::kBytes: {
      while (*decoded < n) {
        const Slice save = *input;
        Slice s;
        Status st = GetLengthPrefixed(input, &s);
        if (!st.ok()) {
          *input = save;
          return st;
        }
        out->AppendString(s, copy_strings);
        ++*decoded;
      }
      break;
    }
    case TypeKind::kArray:
    case TypeKind::kMap:
    case TypeKind::kRecord: {
      while (*decoded < n) {
        const Slice save = *input;
        Value v;
        Status st = DecodeValue(schema, input, &v);
        if (!st.ok()) {
          *input = save;
          return st;
        }
        out->AppendBoxed(std::move(v));
        fallback->Increment();
        ++*decoded;
      }
      break;
    }
  }
  rows->Increment(*decoded);
  return Status::OK();
}

size_t EncodedSize(const Schema& schema, const Value& value) {
  // Scratch encode for sizing only: bypasses the serde.encode counter.
  Buffer tmp;
  EncodeValueRec(schema, value, &tmp);
  return tmp.size();
}

void EncodeTaggedValue(const Value& value, Buffer* dst) {
  static Counter* values = SerdeCounter("serde.shuffle.values_encoded");
  values->Increment();
  EncodeTaggedValueRec(value, dst);
}

Status DecodeTaggedValue(Slice* input, Value* out) {
  static Counter* values = SerdeCounter("serde.shuffle.values_decoded");
  values->Increment();
  return DecodeTaggedValueRec(input, out);
}

size_t TaggedEncodedSize(const Value& value) {
  size_t size = 1;  // the kind tag
  switch (value.kind()) {
    case TypeKind::kNull:
      break;
    case TypeKind::kBool:
      size += 1;
      break;
    case TypeKind::kInt32:
      size += VarintLength(ZigZagEncode32(value.int32_value()));
      break;
    case TypeKind::kInt64:
      size += VarintLength(ZigZagEncode64(value.int64_value()));
      break;
    case TypeKind::kDouble:
      size += 8;
      break;
    case TypeKind::kString:
    case TypeKind::kBytes: {
      const size_t n = value.string_value().size();
      size += VarintLength(n) + n;
      break;
    }
    case TypeKind::kArray:
    case TypeKind::kRecord: {
      const auto& elems = value.elements();
      size += VarintLength(elems.size());
      for (const Value& e : elems) size += TaggedEncodedSize(e);
      break;
    }
    case TypeKind::kMap: {
      const auto& entries = value.map_entries();
      size += VarintLength(entries.size());
      for (const auto& [k, v] : entries) {
        size += VarintLength(k.size()) + k.size() + TaggedEncodedSize(v);
      }
      break;
    }
  }
  return size;
}

namespace {

/// Streams the LEB128 bytes of v into the hasher — byte-for-byte what
/// PutVarint64 appends.
void HashVarint(Fnv1a64* h, uint64_t v) {
  while (v >= 0x80) {
    h->Update(static_cast<uint8_t>(v | 0x80));
    v >>= 7;
  }
  h->Update(static_cast<uint8_t>(v));
}

void HashTaggedValueRec(const Value& value, Fnv1a64* h) {
  h->Update(static_cast<uint8_t>(value.kind()));
  switch (value.kind()) {
    case TypeKind::kNull:
      break;
    case TypeKind::kBool:
      h->Update(static_cast<uint8_t>(value.bool_value() ? 1 : 0));
      break;
    case TypeKind::kInt32:
      HashVarint(h, ZigZagEncode32(value.int32_value()));
      break;
    case TypeKind::kInt64:
      HashVarint(h, ZigZagEncode64(value.int64_value()));
      break;
    case TypeKind::kDouble: {
      // The 8 little-endian bytes PutDouble writes, independent of host
      // endianness.
      const double d = value.double_value();
      uint64_t bits = 0;
      std::memcpy(&bits, &d, 8);
      for (int i = 0; i < 8; ++i) {
        h->Update(static_cast<uint8_t>(bits >> (8 * i)));
      }
      break;
    }
    case TypeKind::kString:
    case TypeKind::kBytes: {
      const std::string& s = value.string_value();
      HashVarint(h, s.size());
      h->Update(s.data(), s.size());
      break;
    }
    case TypeKind::kArray:
    case TypeKind::kRecord: {
      const auto& elems = value.elements();
      HashVarint(h, elems.size());
      for (const Value& e : elems) HashTaggedValueRec(e, h);
      break;
    }
    case TypeKind::kMap: {
      const auto& entries = value.map_entries();
      HashVarint(h, entries.size());
      for (const auto& [k, v] : entries) {
        HashVarint(h, k.size());
        h->Update(k.data(), k.size());
        HashTaggedValueRec(v, h);
      }
      break;
    }
  }
}

}  // namespace

uint64_t HashTaggedValue(const Value& value, uint64_t seed) {
  Fnv1a64 h(seed);
  HashTaggedValueRec(value, &h);
  return h.Digest();
}

}  // namespace colmr
