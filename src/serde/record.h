#ifndef COLMR_SERDE_RECORD_H_
#define COLMR_SERDE_RECORD_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "serde/schema.h"
#include "serde/value.h"

namespace colmr {

/// The record abstraction map functions are written against (paper
/// Appendix A). A map function receives a Record& and pulls the fields it
/// needs with Get(name); whether fields were materialized eagerly or
/// lazily is invisible to the function — exactly the property that lets
/// EagerRecord and cif::LazyRecord share user code.
class Record {
 public:
  virtual ~Record() = default;

  /// The record's (top-level) schema.
  virtual const Schema& schema() const = 0;

  /// Fetches the value of the named top-level field. The returned pointer
  /// is valid until the next call to Get or until the reader advances to
  /// the next record. Returns NotFound for unknown fields and NotFound for
  /// fields outside the configured projection.
  virtual Status Get(std::string_view name, const Value** value) = 0;

  /// Convenience wrapper for code (tests, examples) that knows the field
  /// exists; terminates the process on error.
  const Value& GetOrDie(std::string_view name);
};

/// A record whose fields are all materialized up front — the default
/// record construction strategy (paper Section 5.1, EagerRecord).
class EagerRecord final : public Record {
 public:
  EagerRecord(Schema::Ptr schema, Value record_value);

  const Schema& schema() const override { return *schema_; }
  Status Get(std::string_view name, const Value** value) override;

  /// Direct access to the underlying record value.
  const Value& value() const { return value_; }
  Value* mutable_value() { return &value_; }

 private:
  Schema::Ptr schema_;
  Value value_;
};

}  // namespace colmr

#endif  // COLMR_SERDE_RECORD_H_
