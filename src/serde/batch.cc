#include "serde/batch.h"

#include <cstring>

namespace colmr {

char* BatchArena::Allocate(size_t n) {
  bytes_allocated_ += n;
  if (!chunks_.empty() && used_ + n <= chunks_[current_].capacity) {
    char* out = chunks_[current_].data.get() + used_;
    used_ += n;
    return out;
  }
  // Advance to the next retained chunk that fits, or append a new one.
  size_t next = chunks_.empty() ? 0 : current_ + 1;
  while (next < chunks_.size() && chunks_[next].capacity < n) ++next;
  if (next == chunks_.size()) {
    Chunk chunk;
    chunk.capacity = n > kChunkSize ? n : kChunkSize;
    chunk.data = std::make_unique<char[]>(chunk.capacity);
    chunks_.push_back(std::move(chunk));
  }
  current_ = next;
  used_ = n;
  return chunks_[current_].data.get();
}

void ColumnBatch::Reset(TypeKind kind) {
  kind_ = kind;
  size_ = 0;
  bools_.clear();
  ints_.clear();
  doubles_.clear();
  strings_.clear();
  boxed_.clear();
  nulls_.clear();
  arena_.Clear();
  keepalive_.clear();
}

void ColumnBatch::AppendString(Slice s, bool copy) {
  if (copy && !s.empty()) {
    char* dst = arena_.Allocate(s.size());
    memcpy(dst, s.data(), s.size());
    s = Slice(dst, s.size());
  }
  strings_.push_back(s);
  ++size_;
}

void ColumnBatch::MaterializeInto(size_t row, Value* out) const {
  if (IsNull(row)) {
    out->AssignNull();
    return;
  }
  switch (kind_) {
    case TypeKind::kNull:
      out->AssignNull();
      return;
    case TypeKind::kBool:
      out->AssignBool(bools_[row] != 0);
      return;
    case TypeKind::kInt32:
      out->AssignInt32(static_cast<int32_t>(ints_[row]));
      return;
    case TypeKind::kInt64:
      out->AssignInt64(ints_[row]);
      return;
    case TypeKind::kDouble:
      out->AssignDouble(doubles_[row]);
      return;
    case TypeKind::kString:
    case TypeKind::kBytes:
      out->AssignString(kind_, strings_[row].ToStringView());
      return;
    case TypeKind::kArray:
    case TypeKind::kMap:
    case TypeKind::kRecord:
      *out = boxed_[row];  // deep copy; batch consumers prefer BoxedAt
      return;
  }
  out->AssignNull();
}

}  // namespace colmr
