#ifndef COLMR_SERDE_BATCH_H_
#define COLMR_SERDE_BATCH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/slice.h"
#include "serde/schema.h"
#include "serde/value.h"

namespace colmr {

/// Bump allocator backing the string heap of a ColumnBatch. Allocations
/// live until Clear(); Clear() keeps the chunks, so a reader that refills
/// the same batch every NextBatch() reaches a steady state with zero
/// allocator traffic (the Hadoop object-reuse contract, applied to bytes).
class BatchArena {
 public:
  BatchArena() = default;
  BatchArena(const BatchArena&) = delete;
  BatchArena& operator=(const BatchArena&) = delete;
  BatchArena(BatchArena&&) = default;
  BatchArena& operator=(BatchArena&&) = default;

  /// Returns n writable bytes; never fails (aborts on OOM like new[]).
  char* Allocate(size_t n);

  /// Invalidates every outstanding allocation but keeps the chunk memory.
  void Clear() {
    current_ = 0;
    used_ = 0;
  }

  /// Bytes handed out since the last Clear (for footprint accounting).
  size_t bytes_allocated() const { return bytes_allocated_; }

 private:
  static constexpr size_t kChunkSize = 64 * 1024;

  struct Chunk {
    std::unique_ptr<char[]> data;
    size_t capacity = 0;
  };

  std::vector<Chunk> chunks_;
  size_t current_ = 0;  // chunk being bump-allocated (when chunks_ nonempty)
  size_t used_ = 0;     // bytes used in chunks_[current_]
  size_t bytes_allocated_ = 0;
};

/// A batch of decoded values of one column, stored columnar: one typed
/// contiguous lane per primitive kind, a Slice lane (arena- or
/// cache-backed) for strings/bytes, a null bitmap, and a boxed Value lane
/// as the fallback for array/map/record values. All rows of a batch share
/// the column's TypeKind, so row index == lane index.
///
/// Lifetime: the contents of a batch — including every Slice returned by
/// StringAt and every Value* returned by BoxedAt — are invalidated by the
/// next Reset()/NextBatch() on the producing reader, mirroring Hadoop's
/// record-reuse contract. Zero-copy string slices may point into cached
/// file blocks; AddKeepalive pins those blocks for the batch's lifetime.
class ColumnBatch {
 public:
  ColumnBatch() = default;
  ColumnBatch(const ColumnBatch&) = delete;
  ColumnBatch& operator=(const ColumnBatch&) = delete;
  ColumnBatch(ColumnBatch&&) = default;
  ColumnBatch& operator=(ColumnBatch&&) = default;

  /// Clears the batch for refilling with values of `kind`. Keeps lane and
  /// arena capacity.
  void Reset(TypeKind kind);

  TypeKind kind() const { return kind_; }
  size_t size() const { return size_; }

  /// True when values of this batch's kind live in the boxed Value lane
  /// (array/map/record) rather than a typed lane.
  bool is_boxed() const {
    return kind_ == TypeKind::kArray || kind_ == TypeKind::kMap ||
           kind_ == TypeKind::kRecord;
  }

  // ---- Appenders (producer side) ----
  void AppendNull() {
    SetNullBit(size_);
    ++size_;
  }
  void AppendBool(bool v) {
    bools_.push_back(v ? 1 : 0);
    ++size_;
  }
  void AppendInt(int64_t v) {
    ints_.push_back(v);
    ++size_;
  }
  void AppendDouble(double v) {
    doubles_.push_back(v);
    ++size_;
  }
  /// copy=true duplicates the bytes into the arena; copy=false stores the
  /// slice as-is (caller guarantees the backing bytes outlive the batch,
  /// e.g. via AddKeepalive).
  void AppendString(Slice s, bool copy);
  void AppendBoxed(Value v) {
    boxed_.push_back(std::move(v));
    ++size_;
  }

  /// Bulk appenders used by the decode kernels.
  void AppendInts(const int64_t* v, size_t n) {
    ints_.insert(ints_.end(), v, v + n);
    size_ += n;
  }
  void AppendDoubles(const double* v, size_t n) {
    doubles_.insert(doubles_.end(), v, v + n);
    size_ += n;
  }

  /// Pins backing storage (a cached file block) for zero-copy strings.
  /// Deduplicates against the most recent pin, the common refill pattern.
  void AddKeepalive(std::shared_ptr<const std::string> pin) {
    if (pin == nullptr) return;
    if (!keepalive_.empty() && keepalive_.back() == pin) return;
    keepalive_.push_back(std::move(pin));
  }

  // ---- Accessors (consumer side) ----
  bool IsNull(size_t row) const {
    return (row >> 3) < nulls_.size() &&
           (nulls_[row >> 3] & (1u << (row & 7))) != 0;
  }
  bool BoolAt(size_t row) const { return bools_[row] != 0; }
  int64_t IntAt(size_t row) const { return ints_[row]; }
  double DoubleAt(size_t row) const { return doubles_[row]; }
  Slice StringAt(size_t row) const { return strings_[row]; }
  const Value* BoxedAt(size_t row) const { return &boxed_[row]; }

  /// Rebuilds the row'th value as a Value, reusing out's existing storage
  /// (string capacity survives across rows). Matches DecodeValue output
  /// element-for-element.
  void MaterializeInto(size_t row, Value* out) const;

  BatchArena* arena() { return &arena_; }

 private:
  void SetNullBit(size_t row) {
    const size_t byte = row >> 3;
    if (byte >= nulls_.size()) nulls_.resize(byte + 1, 0);
    nulls_[byte] |= static_cast<uint8_t>(1u << (row & 7));
  }

  TypeKind kind_ = TypeKind::kNull;
  size_t size_ = 0;
  std::vector<uint8_t> bools_;
  std::vector<int64_t> ints_;  // int32 and int64 lanes share int64 storage
  std::vector<double> doubles_;
  std::vector<Slice> strings_;  // into arena_ or a keepalive pin
  std::vector<Value> boxed_;    // array/map/record fallback lane
  std::vector<uint8_t> nulls_;  // bitmap, bit set = null
  BatchArena arena_;
  std::vector<std::shared_ptr<const std::string>> keepalive_;
};

/// A batch of rows across the projected columns of one reader — what the
/// record reader exposes to the map loop.
struct RowBatch {
  uint64_t rows = 0;
  std::vector<ColumnBatch> columns;
};

}  // namespace colmr

#endif  // COLMR_SERDE_BATCH_H_
