#ifndef COLMR_SERDE_PREDICATE_H_
#define COLMR_SERDE_PREDICATE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "serde/batch.h"
#include "serde/record.h"
#include "serde/schema.h"
#include "serde/value.h"

namespace colmr {

// Predicate pushdown (DESIGN.md §13). A Predicate is a small filter tree —
// column-vs-literal comparisons, IS [NOT] NULL tests, and AND/OR — that a
// job attaches to JobConfig. The same tree is evaluated three ways, all
// with identical (three-valued, SQL-style) semantics:
//
//   1. against per-rowgroup / per-file column statistics (zone maps), to
//      refute whole splits and rowgroups without touching their bytes;
//   2. row-at-a-time through Record::Get, for the scalar and lazy paths;
//   3. column-at-a-time over ColumnBatch lanes into a selection vector,
//      for the vectorized map loop.
//
// NULL follows Kleene logic: a comparison with a null operand is NULL,
// AND/OR propagate NULL, and a row passes the filter only when the tree
// evaluates to TRUE. Floating-point comparisons are IEEE: every ordered
// comparison with a NaN operand is false (and != is true), identically in
// all three evaluators.

/// Three-valued logic result.
enum class Tri : uint8_t { kFalse = 0, kTrue = 1, kNull = 2 };

struct Predicate {
  enum class Op : uint8_t {
    kEq,
    kNe,
    kLt,
    kLe,
    kGt,
    kGe,
    kIsNull,
    kIsNotNull,
    kAnd,
    kOr,
  };

  Op op = Op::kAnd;
  /// Leaf ops only: the top-level column the test applies to.
  std::string column;
  /// Comparison leaves only: the literal compared against. Numeric
  /// literals compare with any numeric column (int32/int64/double are
  /// promoted); string literals with string/bytes columns.
  Value literal;
  /// kAnd/kOr only.
  std::vector<Predicate> children;

  static Predicate Cmp(Op op, std::string column, Value literal);
  static Predicate IsNull(std::string column);
  static Predicate IsNotNull(std::string column);
  static Predicate And(std::vector<Predicate> children);
  static Predicate Or(std::vector<Predicate> children);

  /// Round-trippable text form (the CLI --where grammar).
  std::string ToString() const;
};

/// Parses the --where grammar (README):
///   expr   := term (OR term)*
///   term   := factor (AND factor)*
///   factor := '(' expr ')' | column IS [NOT] NULL | column cmp literal
///   cmp    := = | == | != | <> | < | <= | > | >=
///   literal:= integer | float | 'string' | "string" | true | false
/// Keywords are case-insensitive; string escapes: \' \" \\.
Status ParsePredicate(const std::string& text, Predicate* out);

/// Checks the tree is well-formed against a record schema: comparison
/// columns must be primitive and kind-compatible with their literal, and
/// every referenced column must exist unless tolerate_missing (schema
/// evolution: a missing column evaluates as NULL).
Status ValidatePredicate(const Predicate& predicate, const Schema& schema,
                         bool tolerate_missing);

/// The distinct top-level columns the tree references, sorted.
std::vector<std::string> PredicateColumns(const Predicate& predicate);

/// Evaluates one record through Record::Get. On a Get error, *status is
/// set and kNull returned; callers must check *status. Rows reach the map
/// function only on kTrue.
Tri EvalPredicateRow(const Predicate& predicate, Record& record,
                     Status* status);

// ---- Zone-map refutation ----

/// Min/max/null-count/value-count of one column over some row range (a
/// rowgroup or a whole file). values counts rows (nulls included); min and
/// max, when flagged, bound every non-null value in the range. For string
/// columns the bounds may be truncated prefixes — min is then still a
/// lower bound and max an upper bound (the stored max is bumped past the
/// prefix), so refutation stays conservative. A range containing NaN
/// doubles carries no min/max at all.
struct ColumnStats {
  uint64_t values = 0;
  uint64_t nulls = 0;
  bool has_min = false;
  bool has_max = false;
  Value min;
  Value max;
};

/// Conservative satisfiability test: false only when NO row of the range
/// can make the predicate true (the range may then be pruned). `stats`
/// returns the column's ColumnStats for the range, or nullptr when
/// unknown — unknown columns never refute.
bool PredicateCanMatch(
    const Predicate& predicate,
    const std::function<const ColumnStats*(const std::string&)>& stats);

// ---- Vectorized evaluation ----

/// Evaluates a predicate column-at-a-time over ColumnBatch lanes and
/// collects the row indices that evaluate TRUE, ascending, into
/// *selection. `lane` maps a column name to its batch (nullptr = the
/// column is absent and evaluates as NULL). Reused across batches; the
/// mask pool reaches a steady state with no allocation.
class BatchPredicateEvaluator {
 public:
  using LaneFn = std::function<const ColumnBatch*(const std::string&)>;

  void Eval(const Predicate& predicate, const LaneFn& lane, uint64_t rows,
            std::vector<uint32_t>* selection);

 private:
  /// Parallel byte masks: t[i] = row i is definitely true, n[i] = NULL.
  /// Neither set = definitely false.
  struct Mask {
    std::vector<uint8_t> t;
    std::vector<uint8_t> n;
  };

  void EvalNode(const Predicate& p, const LaneFn& lane, uint64_t rows,
                Mask* out);
  void EvalLeaf(const Predicate& p, const ColumnBatch* batch, uint64_t rows,
                Mask* out);

  Mask* AcquireMask();
  void ReleaseMask();

  // unique_ptr elements: recursion holds Mask* across pool growth.
  std::vector<std::unique_ptr<Mask>> pool_;
  size_t pool_used_ = 0;
};

/// Shared ordering for stats accumulation: strict less-than over
/// comparable primitive values (numeric kinds promoted, strings/bytes
/// compared as unsigned bytes). Both operands must be non-null and
/// mutually comparable; NaN must not be passed.
bool PrimitiveLess(const Value& a, const Value& b);

}  // namespace colmr

#endif  // COLMR_SERDE_PREDICATE_H_
