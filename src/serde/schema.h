#ifndef COLMR_SERDE_SCHEMA_H_
#define COLMR_SERDE_SCHEMA_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace colmr {

/// Type tags for schema nodes and runtime values.
enum class TypeKind : uint8_t {
  kNull = 0,
  kBool,
  kInt32,
  kInt64,
  kDouble,
  kString,
  kBytes,
  kArray,   // array<T>
  kMap,     // map<T> — keys are always strings, as in the paper's datasets
  kRecord,  // record { name: T, ... }
};

/// Immutable type descriptor, shared via shared_ptr. Models the complex
/// types the paper targets (Fig. 2): primitives, arrays, string-keyed maps,
/// and nested records. Schemas are written to CIF split-directories and to
/// SequenceFile/RCFile headers in the text form produced by ToString() and
/// parsed back by Parse().
class Schema {
 public:
  using Ptr = std::shared_ptr<const Schema>;

  struct Field {
    std::string name;
    Ptr type;
  };

  // Factory functions; primitives are shared singletons.
  static Ptr Null();
  static Ptr Bool();
  static Ptr Int32();
  static Ptr Int64();
  static Ptr Double();
  static Ptr String();
  static Ptr Bytes();
  static Ptr Array(Ptr element);
  static Ptr Map(Ptr value);
  static Ptr Record(std::string name, std::vector<Field> fields);

  /// Parses the compact text syntax, e.g.
  ///   record URLInfo { url: string, fetchTime: long, inlink: array<string>,
  ///                    metadata: map<string>, content: bytes }
  /// Primitive names: null, bool, int, long, double, string, bytes.
  static Status Parse(const std::string& text, Ptr* schema);

  TypeKind kind() const { return kind_; }
  bool is_primitive() const {
    return kind_ != TypeKind::kArray && kind_ != TypeKind::kMap &&
           kind_ != TypeKind::kRecord;
  }

  /// Element type of an array, or value type of a map.
  const Ptr& element() const { return element_; }

  /// Record accessors.
  const std::string& record_name() const { return name_; }
  const std::vector<Field>& fields() const { return fields_; }
  /// Index of the named field, or -1.
  int FieldIndex(const std::string& name) const;

  /// Canonical text form; Parse(ToString()) reproduces the schema.
  std::string ToString() const;

  /// Structural equality (record names included).
  bool Equals(const Schema& other) const;

  /// Returns a record schema with `field` appended — the cheap
  /// "add a column" operation CIF supports (paper Section 4.3).
  static Ptr WithField(const Ptr& record, Field field);

 private:
  friend struct SchemaBuilder;

  explicit Schema(TypeKind kind) : kind_(kind) {}

  TypeKind kind_;
  Ptr element_;                 // array/map
  std::string name_;            // record
  std::vector<Field> fields_;   // record
};

}  // namespace colmr

#endif  // COLMR_SERDE_SCHEMA_H_
