#include "serde/schema.h"

#include <cctype>

namespace colmr {

// Schema's constructor is private; the factories construct through this
// file-local friend-free helper that forwards to operator new.
struct SchemaBuilder {
  static Schema::Ptr Make(TypeKind kind) {
    return Schema::Ptr(new Schema(kind));
  }
  static Schema* MakeRaw(TypeKind kind) { return new Schema(kind); }
};

Schema::Ptr Schema::Null() {
  static const Ptr* s = new Ptr(SchemaBuilder::Make(TypeKind::kNull));
  return *s;
}
Schema::Ptr Schema::Bool() {
  static const Ptr* s = new Ptr(SchemaBuilder::Make(TypeKind::kBool));
  return *s;
}
Schema::Ptr Schema::Int32() {
  static const Ptr* s = new Ptr(SchemaBuilder::Make(TypeKind::kInt32));
  return *s;
}
Schema::Ptr Schema::Int64() {
  static const Ptr* s = new Ptr(SchemaBuilder::Make(TypeKind::kInt64));
  return *s;
}
Schema::Ptr Schema::Double() {
  static const Ptr* s = new Ptr(SchemaBuilder::Make(TypeKind::kDouble));
  return *s;
}
Schema::Ptr Schema::String() {
  static const Ptr* s = new Ptr(SchemaBuilder::Make(TypeKind::kString));
  return *s;
}
Schema::Ptr Schema::Bytes() {
  static const Ptr* s = new Ptr(SchemaBuilder::Make(TypeKind::kBytes));
  return *s;
}

Schema::Ptr Schema::Array(Ptr element) {
  Schema* s = SchemaBuilder::MakeRaw(TypeKind::kArray);
  s->element_ = std::move(element);
  return Ptr(s);
}

Schema::Ptr Schema::Map(Ptr value) {
  Schema* s = SchemaBuilder::MakeRaw(TypeKind::kMap);
  s->element_ = std::move(value);
  return Ptr(s);
}

Schema::Ptr Schema::Record(std::string name, std::vector<Field> fields) {
  Schema* s = SchemaBuilder::MakeRaw(TypeKind::kRecord);
  s->name_ = std::move(name);
  s->fields_ = std::move(fields);
  return Ptr(s);
}

Schema::Ptr Schema::WithField(const Ptr& record, Field field) {
  std::vector<Field> fields = record->fields();
  fields.push_back(std::move(field));
  return Record(record->record_name(), std::move(fields));
}

int Schema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::string Schema::ToString() const {
  switch (kind_) {
    case TypeKind::kNull:
      return "null";
    case TypeKind::kBool:
      return "bool";
    case TypeKind::kInt32:
      return "int";
    case TypeKind::kInt64:
      return "long";
    case TypeKind::kDouble:
      return "double";
    case TypeKind::kString:
      return "string";
    case TypeKind::kBytes:
      return "bytes";
    case TypeKind::kArray:
      return "array<" + element_->ToString() + ">";
    case TypeKind::kMap:
      return "map<" + element_->ToString() + ">";
    case TypeKind::kRecord: {
      std::string out = "record";
      if (!name_.empty()) out += " " + name_;
      out += " { ";
      for (size_t i = 0; i < fields_.size(); ++i) {
        if (i > 0) out += ", ";
        out += fields_[i].name + ": " + fields_[i].type->ToString();
      }
      out += " }";
      return out;
    }
  }
  return "?";
}

bool Schema::Equals(const Schema& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case TypeKind::kArray:
    case TypeKind::kMap:
      return element_->Equals(*other.element_);
    case TypeKind::kRecord: {
      if (name_ != other.name_ || fields_.size() != other.fields_.size()) {
        return false;
      }
      for (size_t i = 0; i < fields_.size(); ++i) {
        if (fields_[i].name != other.fields_[i].name ||
            !fields_[i].type->Equals(*other.fields_[i].type)) {
          return false;
        }
      }
      return true;
    }
    default:
      return true;
  }
}

namespace {

// Recursive-descent parser for the text schema syntax.
class SchemaParser {
 public:
  explicit SchemaParser(const std::string& text) : text_(text) {}

  Status Parse(Schema::Ptr* out) {
    COLMR_RETURN_IF_ERROR(ParseType(out));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("schema: trailing characters at " +
                                     std::to_string(pos_));
    }
    return Status::OK();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string ReadIdent() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    return text_.substr(start, pos_ - start);
  }

  Status ParseType(Schema::Ptr* out) {
    const std::string ident = ReadIdent();
    if (ident == "null") {
      *out = Schema::Null();
    } else if (ident == "bool" || ident == "boolean") {
      *out = Schema::Bool();
    } else if (ident == "int") {
      *out = Schema::Int32();
    } else if (ident == "long" || ident == "time") {
      *out = Schema::Int64();
    } else if (ident == "double" || ident == "float") {
      *out = Schema::Double();
    } else if (ident == "string") {
      *out = Schema::String();
    } else if (ident == "bytes") {
      *out = Schema::Bytes();
    } else if (ident == "array" || ident == "map") {
      if (!Consume('<')) {
        return Status::InvalidArgument("schema: expected '<' after " + ident);
      }
      Schema::Ptr element;
      COLMR_RETURN_IF_ERROR(ParseType(&element));
      // Allow map<string,string> by treating a first "string" key type as
      // noise: maps are always string-keyed.
      if (ident == "map" && Consume(',')) {
        COLMR_RETURN_IF_ERROR(ParseType(&element));
      }
      if (!Consume('>')) {
        return Status::InvalidArgument("schema: expected '>' after " + ident);
      }
      *out = (ident == "array") ? Schema::Array(std::move(element))
                                : Schema::Map(std::move(element));
    } else if (ident == "record") {
      SkipSpace();
      std::string name;
      if (pos_ < text_.size() && text_[pos_] != '{') name = ReadIdent();
      if (!Consume('{')) {
        return Status::InvalidArgument("schema: expected '{' in record");
      }
      std::vector<Schema::Field> fields;
      SkipSpace();
      if (!Consume('}')) {
        for (;;) {
          std::string field_name = ReadIdent();
          if (field_name.empty()) {
            return Status::InvalidArgument("schema: expected field name");
          }
          if (!Consume(':')) {
            return Status::InvalidArgument("schema: expected ':' after " +
                                           field_name);
          }
          Schema::Ptr type;
          COLMR_RETURN_IF_ERROR(ParseType(&type));
          fields.push_back({std::move(field_name), std::move(type)});
          if (Consume('}')) break;
          if (!Consume(',')) {
            return Status::InvalidArgument("schema: expected ',' or '}'");
          }
        }
      }
      for (size_t i = 0; i < fields.size(); ++i) {
        for (size_t j = i + 1; j < fields.size(); ++j) {
          if (fields[i].name == fields[j].name) {
            return Status::InvalidArgument("schema: duplicate field " +
                                           fields[i].name);
          }
        }
      }
      *out = Schema::Record(std::move(name), std::move(fields));
    } else {
      return Status::InvalidArgument("schema: unknown type '" + ident + "'");
    }
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Status Schema::Parse(const std::string& text, Ptr* schema) {
  return SchemaParser(text).Parse(schema);
}

}  // namespace colmr
