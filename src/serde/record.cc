#include "serde/record.h"

#include <cstdio>
#include <cstdlib>

namespace colmr {

const Value& Record::GetOrDie(std::string_view name) {
  const Value* value = nullptr;
  Status s = Get(name, &value);
  if (!s.ok()) {
    std::fprintf(stderr, "Record::GetOrDie(%.*s): %s\n",
                 static_cast<int>(name.size()), name.data(),
                 s.ToString().c_str());
    std::abort();
  }
  return *value;
}

EagerRecord::EagerRecord(Schema::Ptr schema, Value record_value)
    : schema_(std::move(schema)), value_(std::move(record_value)) {}

Status EagerRecord::Get(std::string_view name, const Value** value) {
  const int index = schema_->FieldIndex(std::string(name));
  if (index < 0) {
    return Status::NotFound("no such field: " + std::string(name));
  }
  if (static_cast<size_t>(index) >= value_.elements().size()) {
    return Status::NotFound("field not materialized: " + std::string(name));
  }
  *value = &value_.elements()[index];
  return Status::OK();
}

}  // namespace colmr
