#ifndef COLMR_SERDE_VALUE_H_
#define COLMR_SERDE_VALUE_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "serde/schema.h"

namespace colmr {

/// A dynamically-typed runtime value conforming to some Schema — the
/// generic record abstraction of the Avro framework the paper assumes
/// (Appendix A). Arrays and record fields are stored as value vectors;
/// maps as key/value pair vectors in insertion order.
class Value {
 public:
  using MapEntries = std::vector<std::pair<std::string, Value>>;

  /// Default-constructed Value is null.
  Value() : kind_(TypeKind::kNull) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(TypeKind::kBool, v); }
  static Value Int32(int32_t v) {
    return Value(TypeKind::kInt32, static_cast<int64_t>(v));
  }
  static Value Int64(int64_t v) { return Value(TypeKind::kInt64, v); }
  static Value Double(double v) { return Value(TypeKind::kDouble, v); }
  static Value String(std::string v) {
    return Value(TypeKind::kString, std::move(v));
  }
  static Value Bytes(std::string v) {
    return Value(TypeKind::kBytes, std::move(v));
  }
  static Value Array(std::vector<Value> elems) {
    return Value(TypeKind::kArray, std::move(elems));
  }
  static Value Record(std::vector<Value> fields) {
    return Value(TypeKind::kRecord, std::move(fields));
  }
  static Value Map(MapEntries entries) {
    Value v;
    v.kind_ = TypeKind::kMap;
    v.data_ = std::move(entries);
    return v;
  }

  // In-place mutators used by the batch scan path: unlike the factory
  // functions, AssignString reuses the heap buffer a string-kind Value
  // already owns, so re-materializing a reused Value row after row is
  // allocation-free in the steady state.
  void AssignNull() {
    kind_ = TypeKind::kNull;
    data_ = std::monostate{};
  }
  void AssignBool(bool v) {
    kind_ = TypeKind::kBool;
    data_ = v;
  }
  void AssignInt32(int32_t v) {
    kind_ = TypeKind::kInt32;
    data_ = static_cast<int64_t>(v);
  }
  void AssignInt64(int64_t v) {
    kind_ = TypeKind::kInt64;
    data_ = v;
  }
  void AssignDouble(double v) {
    kind_ = TypeKind::kDouble;
    data_ = v;
  }
  /// kind must be kString or kBytes.
  void AssignString(TypeKind kind, std::string_view s) {
    assert(kind == TypeKind::kString || kind == TypeKind::kBytes);
    if (auto* held = std::get_if<std::string>(&data_)) {
      held->assign(s.data(), s.size());
    } else {
      data_ = std::string(s);
    }
    kind_ = kind;
  }

  TypeKind kind() const { return kind_; }
  bool is_null() const { return kind_ == TypeKind::kNull; }

  bool bool_value() const {
    assert(kind_ == TypeKind::kBool);
    return std::get<bool>(data_);
  }
  int32_t int32_value() const {
    assert(kind_ == TypeKind::kInt32);
    return static_cast<int32_t>(std::get<int64_t>(data_));
  }
  int64_t int64_value() const {
    assert(kind_ == TypeKind::kInt32 || kind_ == TypeKind::kInt64);
    return std::get<int64_t>(data_);
  }
  double double_value() const {
    assert(kind_ == TypeKind::kDouble);
    return std::get<double>(data_);
  }
  const std::string& string_value() const {
    assert(kind_ == TypeKind::kString || kind_ == TypeKind::kBytes);
    return std::get<std::string>(data_);
  }
  const std::string& bytes_value() const { return string_value(); }

  /// Array elements or record fields.
  const std::vector<Value>& elements() const {
    assert(kind_ == TypeKind::kArray || kind_ == TypeKind::kRecord);
    return std::get<std::vector<Value>>(data_);
  }
  std::vector<Value>* mutable_elements() {
    return &std::get<std::vector<Value>>(data_);
  }

  const MapEntries& map_entries() const {
    assert(kind_ == TypeKind::kMap);
    return std::get<MapEntries>(data_);
  }

  /// Linear lookup of a map key; returns nullptr if absent. (Maps in this
  /// workload are small — 10-ish entries — so linear scan beats hashing.)
  const Value* FindMapEntry(std::string_view key) const;

  /// Total ordering across values of the same schema, used for shuffle
  /// sort keys. Orders first by kind, then by content.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Human-readable rendering, also used by the TXT storage format
  /// (strings escaped; containers in JSON-like syntax).
  std::string ToString() const;

  /// Rough in-memory footprint in bytes; used by Fig. 8-style accounting.
  size_t MemoryFootprint() const;

 private:
  template <typename T>
  Value(TypeKind kind, T&& v) : kind_(kind), data_(std::forward<T>(v)) {}

  TypeKind kind_;
  std::variant<std::monostate, bool, int64_t, double, std::string,
               std::vector<Value>, MapEntries>
      data_;
};

}  // namespace colmr

#endif  // COLMR_SERDE_VALUE_H_
