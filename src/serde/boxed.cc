#include "serde/boxed.h"

#include "common/coding.h"
#include "serde/encoding.h"

namespace colmr {

Status DecodeBoxed(const Schema& schema, Slice* input,
                   std::unique_ptr<BoxedValue>* out) {
  switch (schema.kind()) {
    case TypeKind::kNull: {
      *out = std::make_unique<BoxedNull>();
      return Status::OK();
    }
    case TypeKind::kBool: {
      if (input->empty()) return Status::Corruption("boxed: bool");
      auto boxed = std::make_unique<BoxedBool>();
      boxed->value = (*input)[0] != 0;
      input->RemovePrefix(1);
      *out = std::move(boxed);
      return Status::OK();
    }
    case TypeKind::kInt32: {
      auto boxed = std::make_unique<BoxedInt>();
      COLMR_RETURN_IF_ERROR(GetZigZag32(input, &boxed->value));
      *out = std::move(boxed);
      return Status::OK();
    }
    case TypeKind::kInt64: {
      auto boxed = std::make_unique<BoxedLong>();
      COLMR_RETURN_IF_ERROR(GetZigZag64(input, &boxed->value));
      *out = std::move(boxed);
      return Status::OK();
    }
    case TypeKind::kDouble: {
      auto boxed = std::make_unique<BoxedDouble>();
      COLMR_RETURN_IF_ERROR(GetDouble(input, &boxed->value));
      *out = std::move(boxed);
      return Status::OK();
    }
    case TypeKind::kString:
    case TypeKind::kBytes: {
      Slice s;
      COLMR_RETURN_IF_ERROR(GetLengthPrefixed(input, &s));
      auto boxed = std::make_unique<BoxedString>();
      boxed->value.assign(s.data(), s.size());
      *out = std::move(boxed);
      return Status::OK();
    }
    case TypeKind::kArray: {
      uint64_t count;
      COLMR_RETURN_IF_ERROR(GetVarint64(input, &count));
      COLMR_RETURN_IF_ERROR(CheckContainerCount(count, input->size()));
      auto boxed = std::make_unique<BoxedArray>();
      boxed->elements.reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        std::unique_ptr<BoxedValue> element;
        COLMR_RETURN_IF_ERROR(DecodeBoxed(*schema.element(), input, &element));
        boxed->elements.push_back(std::move(element));
      }
      *out = std::move(boxed);
      return Status::OK();
    }
    case TypeKind::kMap: {
      uint64_t count;
      COLMR_RETURN_IF_ERROR(GetVarint64(input, &count));
      COLMR_RETURN_IF_ERROR(CheckContainerCount(count, input->size()));
      auto boxed = std::make_unique<BoxedMap>();
      for (uint64_t i = 0; i < count; ++i) {
        Slice key;
        COLMR_RETURN_IF_ERROR(GetLengthPrefixed(input, &key));
        std::unique_ptr<BoxedValue> value;
        COLMR_RETURN_IF_ERROR(DecodeBoxed(*schema.element(), input, &value));
        boxed->entries.emplace(std::string(key.data(), key.size()),
                               std::move(value));
      }
      *out = std::move(boxed);
      return Status::OK();
    }
    case TypeKind::kRecord: {
      auto boxed = std::make_unique<BoxedRecord>();
      boxed->fields.reserve(schema.fields().size());
      for (const auto& field : schema.fields()) {
        std::unique_ptr<BoxedValue> value;
        COLMR_RETURN_IF_ERROR(DecodeBoxed(*field.type, input, &value));
        boxed->fields.push_back(std::move(value));
      }
      *out = std::move(boxed);
      return Status::OK();
    }
    default:
      return Status::NotSupported("boxed decode: unsupported kind");
  }
}

}  // namespace colmr
