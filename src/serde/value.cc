#include "serde/value.h"

#include <algorithm>

namespace colmr {

const Value* Value::FindMapEntry(std::string_view key) const {
  for (const auto& [k, v] : map_entries()) {
    if (k == key) return &v;
  }
  return nullptr;
}

int Value::Compare(const Value& other) const {
  if (kind_ != other.kind_) {
    return kind_ < other.kind_ ? -1 : 1;
  }
  switch (kind_) {
    case TypeKind::kNull:
      return 0;
    case TypeKind::kBool: {
      const bool a = bool_value(), b = other.bool_value();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case TypeKind::kInt32:
    case TypeKind::kInt64: {
      const int64_t a = int64_value(), b = other.int64_value();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case TypeKind::kDouble: {
      const double a = double_value(), b = other.double_value();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case TypeKind::kString:
    case TypeKind::kBytes:
      return string_value().compare(other.string_value());
    case TypeKind::kArray:
    case TypeKind::kRecord: {
      const auto& a = elements();
      const auto& b = other.elements();
      const size_t n = std::min(a.size(), b.size());
      for (size_t i = 0; i < n; ++i) {
        const int c = a[i].Compare(b[i]);
        if (c != 0) return c;
      }
      return a.size() == b.size() ? 0 : (a.size() < b.size() ? -1 : 1);
    }
    case TypeKind::kMap: {
      const auto& a = map_entries();
      const auto& b = other.map_entries();
      const size_t n = std::min(a.size(), b.size());
      for (size_t i = 0; i < n; ++i) {
        const int kc = a[i].first.compare(b[i].first);
        if (kc != 0) return kc;
        const int vc = a[i].second.Compare(b[i].second);
        if (vc != 0) return vc;
      }
      return a.size() == b.size() ? 0 : (a.size() < b.size() ? -1 : 1);
    }
  }
  return 0;
}

namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace

std::string Value::ToString() const {
  std::string out;
  switch (kind_) {
    case TypeKind::kNull:
      out = "null";
      break;
    case TypeKind::kBool:
      out = bool_value() ? "true" : "false";
      break;
    case TypeKind::kInt32:
    case TypeKind::kInt64:
      out = std::to_string(int64_value());
      break;
    case TypeKind::kDouble:
      out = std::to_string(double_value());
      break;
    case TypeKind::kString:
    case TypeKind::kBytes:
      AppendEscaped(string_value(), &out);
      break;
    case TypeKind::kArray:
    case TypeKind::kRecord: {
      out = "[";
      const auto& elems = elements();
      for (size_t i = 0; i < elems.size(); ++i) {
        if (i > 0) out += ",";
        out += elems[i].ToString();
      }
      out += "]";
      break;
    }
    case TypeKind::kMap: {
      out = "{";
      const auto& entries = map_entries();
      for (size_t i = 0; i < entries.size(); ++i) {
        if (i > 0) out += ",";
        AppendEscaped(entries[i].first, &out);
        out += ":";
        out += entries[i].second.ToString();
      }
      out += "}";
      break;
    }
  }
  return out;
}

size_t Value::MemoryFootprint() const {
  size_t total = sizeof(Value);
  switch (kind_) {
    case TypeKind::kString:
    case TypeKind::kBytes:
      total += string_value().capacity();
      break;
    case TypeKind::kArray:
    case TypeKind::kRecord:
      for (const Value& v : elements()) total += v.MemoryFootprint();
      break;
    case TypeKind::kMap:
      for (const auto& [k, v] : map_entries()) {
        total += k.capacity() + v.MemoryFootprint();
      }
      break;
    default:
      break;
  }
  return total;
}

}  // namespace colmr
