#ifndef COLMR_SERDE_ENCODING_H_
#define COLMR_SERDE_ENCODING_H_

#include "common/buffer.h"
#include "common/slice.h"
#include "common/status.h"
#include "serde/batch.h"
#include "serde/schema.h"
#include "serde/value.h"

namespace colmr {

// Avro-style binary wire format:
//   bool    -> 1 byte (0/1)
//   int     -> zigzag varint
//   long    -> zigzag varint
//   double  -> 8-byte little-endian IEEE 754
//   string  -> varint length + bytes
//   bytes   -> varint length + bytes
//   array   -> varint count + encoded elements
//   map     -> varint count + (varint key length + key + encoded value)*
//   record  -> fields encoded in schema order, no framing
//   null    -> nothing

/// Appends the binary encoding of value to dst. value must conform to
/// schema (kind mismatch returns InvalidArgument).
Status EncodeValue(const Schema& schema, const Value& value, Buffer* dst);

/// Decodes one value, consuming its bytes from *input.
Status DecodeValue(const Schema& schema, Slice* input, Value* out);

/// Advances *input past one encoded value without materializing it.
/// This is what skipping a record costs when a column file has no skip
/// list (paper Section 5.2): cheaper than DecodeValue (no allocation),
/// but still O(encoded size).
Status SkipValue(const Schema& schema, Slice* input);

/// Number of bytes the encoding of value occupies.
size_t EncodedSize(const Schema& schema, const Value& value);

/// Batch decode (DESIGN.md §10): appends up to n values of `schema` to
/// *out (which the caller has Reset to the matching kind), consuming their
/// bytes from *input. Primitive kinds go to the typed lanes via the bulk
/// kernels in common/coding.h; array/map/record values fall back to
/// DecodeValue into the boxed lane. Strings are stored as slices into
/// *input when copy_strings is false (the caller then guarantees the
/// backing bytes outlive the batch) and copied into the batch arena when
/// true.
///
/// On success *decoded == n. On failure the cursor is restored to the
/// first byte of the failing value, *decoded holds the values appended
/// before it, and the status message matches what the scalar DecodeValue
/// would have returned for that value — so callers can apply the same
/// truncation-versus-corruption retry logic to either path.
Status DecodeColumnBatch(const Schema& schema, Slice* input, size_t n,
                         bool copy_strings, ColumnBatch* out,
                         size_t* decoded);

/// Decoder hardening: a container count read from untrusted bytes is
/// rejected unless it is plausible for the bytes that remain (at most
/// one element per remaining byte, with a floor for containers of
/// zero-byte elements). Keeps fuzzed counts from driving allocations.
inline Status CheckContainerCount(uint64_t count, size_t remaining_bytes) {
  constexpr uint64_t kZeroByteElementFloor = 4096;
  if (count > remaining_bytes && count > kZeroByteElementFloor) {
    return Status::Corruption("container count exceeds remaining input");
  }
  return Status::OK();
}

// Schema-less, self-describing encoding (1 tag byte per value). Used where
// no schema is in scope: intermediate map-output key/value pairs in the
// shuffle, and spill files.

/// Appends the tagged encoding of value to dst. Works for every kind.
void EncodeTaggedValue(const Value& value, Buffer* dst);

/// Decodes one tagged value, consuming from *input.
Status DecodeTaggedValue(Slice* input, Value* out);

/// Size in bytes of the tagged encoding. A pure size walk — no scratch
/// encode, no allocation — so the shuffle can account bytes per pair for
/// free.
size_t TaggedEncodedSize(const Value& value);

/// Platform-stable hash of a value: FNV-1a (seeded; see common/hash.h)
/// streamed over exactly the bytes EncodeTaggedValue would produce, with
/// the splitmix64 finalizer — but computed without materializing the
/// encoding, so hashing a shuffle key allocates nothing. Equal values
/// (Value::Compare == 0) of the same kind hash equal on every platform;
/// this is the stable HashPartitioner contract (DESIGN.md §12), and the
/// pinned-vector test in shuffle_spill_test.cc makes any change to it a
/// deliberate format break.
uint64_t HashTaggedValue(const Value& value, uint64_t seed);

}  // namespace colmr

#endif  // COLMR_SERDE_ENCODING_H_
