#include "hdfs/block_cache.h"

#include "obs/metrics.h"

namespace colmr {

BlockCache::BlockCache(uint64_t capacity_bytes, MetricsRegistry* metrics)
    : capacity_bytes_(capacity_bytes),
      shard_capacity_(capacity_bytes / kNumShards) {
  MetricsRegistry& registry =
      metrics != nullptr ? *metrics : MetricsRegistry::Default();
  m_hits_ = registry.counter("hdfs.cache.hits");
  m_misses_ = registry.counter("hdfs.cache.misses");
  m_evictions_ = registry.counter("hdfs.cache.evictions");
  m_hit_bytes_ = registry.counter("hdfs.cache.hit_bytes");
  m_insert_bytes_ = registry.counter("hdfs.cache.insert_bytes");
}

std::shared_ptr<const std::string> BlockCache::Lookup(uint64_t block_id,
                                                      uint64_t generation) {
  Shard& shard = ShardFor(block_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(Key{block_id, generation});
  if (it == shard.index.end()) {
    m_misses_->Increment();
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  m_hits_->Increment();
  m_hit_bytes_->Increment(it->second->data->size());
  return it->second->data;
}

bool BlockCache::Contains(uint64_t block_id, uint64_t generation) const {
  const Shard& shard = ShardFor(block_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.index.count(Key{block_id, generation}) > 0;
}

void BlockCache::Insert(uint64_t block_id, uint64_t generation,
                        std::shared_ptr<const std::string> data) {
  if (data == nullptr) return;
  const uint64_t charge = data->size();
  if (charge > shard_capacity_) return;  // would evict the whole shard
  Shard& shard = ShardFor(block_id);
  const Key key{block_id, generation};
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Same (id, generation) always means the same bytes; just refresh
    // recency.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{key, std::move(data)});
  shard.index.emplace(key, shard.lru.begin());
  shard.bytes += charge;
  m_insert_bytes_->Increment(charge);
  EvictToFitLocked(shard);
}

void BlockCache::EvictToFitLocked(Shard& shard) {
  while (shard.bytes > shard_capacity_ && !shard.lru.empty()) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.data->size();
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    m_evictions_->Increment();
  }
}

void BlockCache::Erase(uint64_t block_id) {
  Shard& shard = ShardFor(block_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  for (auto it = shard.lru.begin(); it != shard.lru.end();) {
    if (it->key.block_id == block_id) {
      shard.bytes -= it->data->size();
      shard.index.erase(it->key);
      it = shard.lru.erase(it);
    } else {
      ++it;
    }
  }
}

void BlockCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
  }
}

uint64_t BlockCache::SizeBytes() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.bytes;
  }
  return total;
}

}  // namespace colmr
