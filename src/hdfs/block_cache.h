#ifndef COLMR_HDFS_BLOCK_CACHE_H_
#define COLMR_HDFS_BLOCK_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

namespace colmr {

class Counter;
class MetricsRegistry;

/// Sharded, byte-charged LRU cache of verified HDFS block contents — the
/// simulator's analogue of the datanode/OS page cache that a real Hadoop
/// scan hits on a re-read. An entry means "these exact bytes passed their
/// CRC check": FileReader inserts a block only after checksum
/// verification succeeds, and a hit is served without re-verification,
/// replica selection, or fault draws (a memory hit has no disk/network
/// cost, so nothing is charged to IoStats).
///
/// Keying is (block id, generation). The namenode bumps a block's
/// generation whenever the mapping from id to trustworthy bytes may have
/// changed (CorruptReplica, ReReplicate of that block) and additionally
/// erases the id, so a reader holding an older snapshot can never be
/// served bytes cached under a different notion of the block. Delete
/// erases the ids; LoadImage clears the whole cache (image block ids can
/// collide with previous ones).
///
/// Thread-safety: all methods are safe to call concurrently; each shard
/// has its own mutex, and entries are immutable shared_ptrs, so a hit
/// pins the bytes without copying them.
class BlockCache {
 public:
  /// capacity_bytes is the total charge budget across shards (each shard
  /// gets an equal slice). metrics == nullptr falls back to
  /// MetricsRegistry::Default(); handles are resolved once here.
  explicit BlockCache(uint64_t capacity_bytes,
                      MetricsRegistry* metrics = nullptr);

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  uint64_t capacity_bytes() const { return capacity_bytes_; }

  /// Returns the cached bytes for (block_id, generation), or nullptr.
  /// Bumps hdfs.cache.{hits,misses,hit_bytes} and the entry's LRU
  /// position.
  std::shared_ptr<const std::string> Lookup(uint64_t block_id,
                                            uint64_t generation);

  /// Presence probe for prefetch planning: no metric bump, no LRU touch.
  bool Contains(uint64_t block_id, uint64_t generation) const;

  /// Caches verified block bytes under (block_id, generation), charging
  /// data->size() bytes and evicting LRU entries of the shard to fit. An
  /// entry larger than the per-shard budget is not admitted. Re-inserting
  /// an existing key refreshes its LRU position.
  void Insert(uint64_t block_id, uint64_t generation,
              std::shared_ptr<const std::string> data);

  /// Drops every generation of a block id (namenode invalidation hook).
  void Erase(uint64_t block_id);

  /// Drops everything (LoadImage invalidation hook).
  void Clear();

  /// Current total charged bytes (sums shard sizes; approximate under
  /// concurrent mutation).
  uint64_t SizeBytes() const;

 private:
  struct Key {
    uint64_t block_id;
    uint64_t generation;
    bool operator==(const Key& o) const {
      return block_id == o.block_id && generation == o.generation;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      // splitmix64-style mix; generation rarely exceeds a few bits.
      uint64_t x = k.block_id * 0x9e3779b97f4a7c15ull + k.generation;
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ull;
      x ^= x >> 27;
      return static_cast<size_t>(x);
    }
  };
  struct Entry {
    Key key;
    std::shared_ptr<const std::string> data;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index;
    uint64_t bytes = 0;
  };

  static constexpr int kNumShards = 8;

  Shard& ShardFor(uint64_t block_id) {
    return shards_[block_id % kNumShards];
  }
  const Shard& ShardFor(uint64_t block_id) const {
    return shards_[block_id % kNumShards];
  }
  /// Evicts from the back of shard's LRU until it fits its budget.
  /// Caller holds shard.mu.
  void EvictToFitLocked(Shard& shard);

  uint64_t capacity_bytes_;
  uint64_t shard_capacity_;
  Shard shards_[kNumShards];

  Counter* m_hits_;
  Counter* m_misses_;
  Counter* m_evictions_;
  Counter* m_hit_bytes_;
  Counter* m_insert_bytes_;
};

}  // namespace colmr

#endif  // COLMR_HDFS_BLOCK_CACHE_H_
