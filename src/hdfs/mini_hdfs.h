#ifndef COLMR_HDFS_MINI_HDFS_H_
#define COLMR_HDFS_MINI_HDFS_H_

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/buffer.h"
#include "common/slice.h"
#include "common/status.h"
#include "hdfs/cluster.h"
#include "hdfs/fault_injector.h"
#include "hdfs/placement.h"

namespace colmr {

class FileWriter;
class FileReader;
class BlockCache;
class ThreadPool;

/// One replicated block of a file. Data is stored once in the process;
/// `replicas` is the placement metadata that drives locality accounting
/// and scheduling. `crc` is the CRC-32 of the block contents, recorded by
/// the namenode at seal time and verified per replica on read.
/// `generation` versions the id for the shared block cache: the namenode
/// bumps it whenever the id's trustworthy bytes may have changed
/// (CorruptReplica, ReReplicate), so cache entries keyed by
/// (id, generation) from before the event can never serve a reader
/// opened after it. Runtime-only; not persisted in images.
struct BlockInfo {
  uint64_t id = 0;
  uint64_t size = 0;
  uint32_t crc = 0;
  uint64_t generation = 0;
  std::vector<NodeId> replicas;
};

class Counter;
class Histogram;
class MetricsRegistry;
class TraceCollector;

/// Where a read is executing, for locality accounting. node == kAnyNode
/// means "no placement": every byte counts as local. fault_salt
/// identifies the task attempt issuing reads, so a re-executed task draws
/// a fresh (but still deterministic) fault schedule.
///
/// metrics/trace are optional observability sinks (DESIGN.md §8): a null
/// metrics falls back to MetricsRegistry::Default(); a null trace
/// disables span emission. New fields are appended so existing aggregate
/// initializations keep their meaning.
struct ReadContext {
  NodeId node = kAnyNode;
  IoStats* stats = nullptr;  // optional sink; may be null
  uint64_t fault_salt = 0;
  MetricsRegistry* metrics = nullptr;  // null -> MetricsRegistry::Default()
  TraceCollector* trace = nullptr;     // null -> tracing off
  /// Readahead window for sequential buffered reads: once a stream looks
  /// sequential, BufferedReader widens its fills to this many bytes.
  /// 0 disables (fills stay at io.file.buffer.size).
  uint64_t readahead_bytes = 0;
  /// Upcoming HDFS blocks to warm into the block cache ahead of a
  /// sequential scan. 0 disables. Effective only when the filesystem has
  /// a block cache attached and prefetch_pool is set.
  int prefetch_depth = 0;
  /// Pool the warm tasks run on. Must not be the map-task pool (its FIFO
  /// queue would order prefetch after every queued task); the engine
  /// creates a small dedicated pool per run. Not owned.
  ThreadPool* prefetch_pool = nullptr;
  /// Cooperative cancellation (DESIGN.§11): when set and it becomes true,
  /// in-flight reads stop early with IoError — including mid-stall on an
  /// injected slow node, so a superseded speculative attempt never holds
  /// the job's wall clock hostage for latency nobody will use. Not owned;
  /// must outlive every reader opened with this context.
  const std::atomic<bool>* cancel = nullptr;
};

/// Where a write is executing, for fault injection and stall accounting.
/// node == kAnyNode means "no placement": node-keyed write faults
/// (slow_write_nodes, write_death_nodes) never hit, but transient
/// write_error_p draws still apply. fault_salt identifies the task attempt
/// issuing the write, so a re-executed attempt draws a fresh deterministic
/// fault schedule (see the FaultInjector draw-keying contract).
struct WriteContext {
  NodeId node = kAnyNode;
  IoStats* stats = nullptr;  // optional sink; may be null
  uint64_t fault_salt = 0;
  MetricsRegistry* metrics = nullptr;  // null -> MetricsRegistry::Default()
};

/// In-process HDFS: a namenode namespace of append-only files split into
/// replicated blocks, with pluggable block placement. Blocks live in
/// memory; the "cluster" exists as placement metadata plus the cost model,
/// which is all the paper's techniques interact with.
///
/// Failure model (DESIGN.md §7): every sealed block carries a CRC-32;
/// FileReader verifies it per replica and fails over across replicas on
/// injected transient errors or checksum mismatches, reporting corrupt
/// replicas back to the namenode (MarkReplicaBad). Replicas marked bad
/// count as missing for UnderReplicatedBlockCount and are repaired by
/// ReReplicate; a block with no live good replica reads as DataLoss.
/// Faults are injected deterministically via SetFaultConfig.
///
/// Thread-safety contract (the parallel JobRunner depends on it): namenode
/// metadata is guarded by a shared_mutex — any number of concurrent
/// readers (Open, FileReader::Read, GetBlockLocations, ListDir,
/// CommonReplicaNodes, Exists, ...) may run alongside each other, while
/// mutations (Create, Delete, KillNode, ReReplicate, LoadImage, and block
/// seals from FileWriter) take the lock exclusively. Block data is
/// immutable once its file's writer is Close()d and FileReader snapshots
/// block metadata plus shared ownership of the data at Open, so Delete,
/// KillNode, and LoadImage are safe while readers of the file are in
/// flight: in-flight readers keep serving their snapshot, and later reads
/// observe liveness changes (dead nodes, bad replicas) per call.
class MiniHdfs {
 public:
  /// Takes ownership of the placement policy (HDFS's
  /// dfs.block.replicator.classname configuration point).
  MiniHdfs(ClusterConfig config,
           std::unique_ptr<BlockPlacementPolicy> placement);
  ~MiniHdfs();

  MiniHdfs(const MiniHdfs&) = delete;
  MiniHdfs& operator=(const MiniHdfs&) = delete;

  /// Convenience: default config + default placement.
  static std::unique_ptr<MiniHdfs> CreateDefault();

  const ClusterConfig& config() const { return config_; }

  /// Creates a new file for appending. Fails if the path exists.
  Status Create(const std::string& path, std::unique_ptr<FileWriter>* writer);

  /// Create with an execution context: the writer consults the installed
  /// fault schedule (snapshotted at Create) on every block seal and
  /// charges stalls/faults to context.stats.
  Status Create(const std::string& path, const WriteContext& context,
                std::unique_ptr<FileWriter>* writer);

  /// Opens an existing file for positioned reads in the given context.
  /// The reader snapshots the file's block metadata and takes shared
  /// ownership of the block data, so it stays valid (and keeps serving)
  /// across a concurrent Delete or LoadImage.
  Status Open(const std::string& path, const ReadContext& context,
              std::unique_ptr<FileReader>* reader) const;

  bool Exists(const std::string& path) const;
  Status GetFileSize(const std::string& path, uint64_t* size) const;
  Status Delete(const std::string& path);

  /// Namenode-atomic rename. `from` may name a file (exact-path move) or
  /// a directory (every file under `from/` moves under `to/`, preserving
  /// relative paths, all-or-nothing under one exclusive namespace lock).
  /// Fails with AlreadyExists — mutating nothing — when any destination
  /// path exists; NotFound when `from` names neither a file nor a
  /// non-empty directory. Pure metadata move: block ids, data, and
  /// generations are untouched, so block-cache entries stay valid and
  /// in-flight readers of the old paths keep serving their snapshots.
  /// This is the primitive the OutputCommitter's commit steps build on —
  /// its atomicity is what makes task/job commit crash-safe.
  Status Rename(const std::string& from, const std::string& to);

  /// Deletes `path` (when it is a file) and every file under `path/`.
  /// Idempotent: returns OK when nothing exists — abort paths may run
  /// twice or race a completed commit without failing.
  Status DeleteRecursive(const std::string& path);

  /// Immediate children (files and subdirectories) of a directory path,
  /// sorted, without the parent prefix.
  Status ListDir(const std::string& path,
                 std::vector<std::string>* children) const;

  /// Block placement metadata of a file, for locality-aware scheduling.
  /// Replicas marked bad are excluded: the scheduler must not treat a
  /// corrupt copy as local data.
  Status GetBlockLocations(const std::string& path,
                           std::vector<BlockInfo>* blocks) const;

  /// Nodes holding a good local replica of every block of every listed
  /// file — the candidate nodes on which a split over those files is fully
  /// local. Empty when no such node exists (the Fig. 3a situation).
  std::vector<NodeId> CommonReplicaNodes(
      const std::vector<std::string>& paths) const;

  /// Total bytes stored (pre-replication), for space-usage reporting.
  uint64_t TotalStoredBytes() const;

  // ---- Block cache ----

  /// Attaches a shared cache of verified block bytes; readers opened
  /// after this call read through it (DESIGN.md §9). Passing nullptr
  /// detaches. The namenode invalidates entries on Delete /
  /// CorruptReplica / ReReplicate and clears the cache on LoadImage.
  void SetBlockCache(std::shared_ptr<BlockCache> cache);

  /// Attaches a new cache of `capacity_bytes` if none is attached yet
  /// (metric handles resolve from `metrics`, nullptr -> process default);
  /// returns the attached cache either way. Lets repeated jobs over one
  /// filesystem share a warm cache without coordinating ownership.
  std::shared_ptr<BlockCache> EnsureBlockCache(uint64_t capacity_bytes,
                                               MetricsRegistry* metrics);

  std::shared_ptr<BlockCache> block_cache() const;

  // ---- Fault injection ----

  /// Installs a deterministic fault schedule consulted by readers opened
  /// after this call (FileReader snapshots the config at Open).
  void SetFaultConfig(const FaultConfig& config);
  FaultConfig fault_config() const;

  /// Registers permanent corruption (a bit-flip) of one replica of one
  /// block: reads served by `replicas[replica_ordinal]` of block
  /// `block_index` return flipped bytes, which the per-replica CRC check
  /// catches. Other replicas are untouched. Reports the corrupted node
  /// through *node when non-null.
  Status CorruptReplica(const std::string& path, size_t block_index,
                        size_t replica_ordinal, NodeId* node = nullptr);

  /// Reports a replica as bad (checksum mismatch observed by a client).
  /// The replica stops serving reads, counts as missing for
  /// UnderReplicatedBlockCount, and is replaced by ReReplicate. Called by
  /// FileReader on CRC mismatch; public for tests and tools. Const
  /// because replica health is client-observed state layered over the
  /// immutable placement snapshot readers hold.
  Status MarkReplicaBad(uint64_t block_id, NodeId node) const;

  /// Total replicas ever reported bad (for tools and tests).
  uint64_t bad_replica_marks() const;

  // ---- Datanode failure and recovery (the paper's Section 4.3 future
  // work: "re-replication after failures") ----

  /// Marks a datanode dead: its replicas vanish from every block. Blocks
  /// whose last replica dies are lost: reads return DataLoss and
  /// ReReplicate reports them instead of resurrecting the data.
  Status KillNode(NodeId node);

  bool IsNodeDead(NodeId node) const;
  /// Snapshot of the dead-node set (copied under the namespace lock).
  std::set<NodeId> dead_nodes() const;

  /// Number of blocks currently holding fewer than `replication` live
  /// good replicas (replicas marked bad count as missing).
  uint64_t UnderReplicatedBlockCount() const;

  /// Number of blocks with no live good replica at all — their data is
  /// unrecoverable.
  uint64_t LostBlockCount() const;

  /// Restores full replication by dropping replicas marked bad and asking
  /// the placement policy for a replacement node per missing replica.
  /// Under ColumnPlacementPolicy the files of each split-directory move to
  /// the same fresh nodes, so co-location survives the failure. Blocks
  /// with no surviving good replica cannot be re-replicated — they are
  /// left as-is and reported via a DataLoss status (the repairable blocks
  /// are still repaired).
  Status ReReplicate();

  // ---- Image persistence ----

  /// Serializes the entire filesystem (cluster config, namespace, block
  /// placement, block contents, dead-node set, corrupt/bad replica marks)
  /// to one local file, so the command-line tools can operate on datasets
  /// across process runs.
  Status SaveImage(const std::string& local_path) const;

  /// Replaces this filesystem's state with a previously saved image.
  /// The placement policy is kept (it only matters for future writes).
  Status LoadImage(const std::string& local_path);

 private:
  friend class FileWriter;
  friend class FileReader;

  struct FileMeta {
    std::vector<BlockInfo> blocks;
    uint64_t size = 0;
  };

  /// (block id, node): identifies one replica of one block.
  using ReplicaKey = std::pair<uint64_t, NodeId>;

  /// One replica a reader may fetch a block from, in failover order.
  struct ReplicaCandidate {
    NodeId node = kAnyNode;
    bool corrupted = false;
  };

  /// Live, good replicas of a block in deterministic failover order:
  /// `prefer` (the reading node) first when it holds one, then ascending
  /// node id. Dead nodes and replicas marked bad are excluded; corruption
  /// flags are attached. Takes the namespace lock (shared).
  std::vector<ReplicaCandidate> ReadCandidates(
      const BlockInfo& snapshot, NodeId prefer) const;

  /// Drops entries of corrupted_/bad_replicas_ for a replica that no
  /// longer exists. Caller holds the lock exclusively.
  void ForgetReplicaLocked(uint64_t block_id, NodeId node);

  ClusterConfig config_;
  std::unique_ptr<BlockPlacementPolicy> placement_;

  /// Guards every field below. config_ and placement_ are fixed after
  /// construction (LoadImage excepted) and read without the lock.
  mutable std::shared_mutex mu_;
  std::map<std::string, FileMeta> files_;
  /// Block contents, shared with reader snapshots so a Delete/LoadImage
  /// cannot pull data out from under an in-flight read.
  std::map<uint64_t, std::shared_ptr<const std::string>> block_data_;
  std::set<NodeId> dead_nodes_;
  /// Shared cache of verified block bytes (DESIGN.md §9); may be null.
  /// The pointer is guarded by mu_; the cache itself is internally
  /// synchronized, so invalidation hooks may call it under mu_ (the
  /// cache never calls back into the namenode).
  std::shared_ptr<BlockCache> block_cache_;
  FaultConfig fault_config_;
  /// Replicas with registered permanent corruption (bit-flip on serve).
  std::set<ReplicaKey> corrupted_;
  /// Replicas reported bad by clients. Mutable: marking is a client-side
  /// health observation that must work through the const read path.
  mutable std::set<ReplicaKey> bad_replicas_;
  mutable uint64_t bad_replica_marks_ = 0;
  uint64_t next_block_id_ = 1;
};

/// Append-only writer (HDFS files cannot be modified in place — the
/// constraint that forces CIF skip-list construction to double-buffer,
/// paper Appendix B.3). Close() must be called; it seals the file.
///
/// Failure model (DESIGN.md §11): the writer snapshots the installed
/// fault schedule at Create and consults it on every block seal (from
/// Append once a block's worth of bytes is pending, and from Close for
/// the tail). A failed seal makes the writer sticky-bad: further Appends
/// are dropped, Close returns the first error, and the file keeps only
/// the blocks sealed before the fault — exactly the torn state an
/// atomic-commit protocol must make invisible.
class FileWriter {
 public:
  ~FileWriter();

  FileWriter(const FileWriter&) = delete;
  FileWriter& operator=(const FileWriter&) = delete;

  void Append(Slice data);
  uint64_t BytesWritten() const { return bytes_written_; }
  Status Close();

  /// First seal error, or OK. Callers that Append in a loop can poll this
  /// to stop early instead of discovering the fault at Close.
  const Status& status() const { return status_; }

 private:
  friend class MiniHdfs;
  FileWriter(MiniHdfs* fs, std::string path, WriteContext context,
             FaultInjector faults);

  void SealBlock();

  MiniHdfs* fs_;
  std::string path_;
  WriteContext context_;
  FaultInjector faults_;
  /// Write-draw key of block 0 of this path (PathKey); block i draws at
  /// key base + i.
  uint64_t path_key_ = 0;
  /// Running fault-draw counter (see the FaultInjector keying contract).
  uint64_t fault_draws_ = 0;
  Status status_;        // sticky first failure
  std::string pending_;  // bytes not yet sealed into a block
  uint64_t bytes_written_ = 0;
  int next_block_index_ = 0;
  bool closed_ = false;
  Counter* m_write_faults_ = nullptr;
};

/// Positioned reader with local/remote byte accounting and per-replica
/// checksummed reads. Each Read selects a replica per block (the reading
/// node first, then ascending node id), verifies the block CRC the first
/// time a (block, replica) pair serves this reader, and on an injected
/// transient error or checksum mismatch fails over to the next live
/// replica — charging the failover to IoStats and, for mismatches,
/// reporting the bad replica to the namenode. A read returns DataLoss
/// only when no live good replica remains.
///
/// The reader owns a snapshot of the file's block metadata and data taken
/// at Open, so it remains valid across concurrent Delete/LoadImage. Many
/// FileReaders may read the same (sealed) file concurrently; one
/// FileReader must not be shared across threads, because its IoStats sink
/// and verification cache are used without synchronization — the engine
/// gives every task attempt its own reader and stats, merged at join.
class FileReader {
 public:
  uint64_t size() const { return size_; }

  /// The context's stats sink (may be null). BufferedReader uses this to
  /// charge seeks.
  IoStats* stats() const { return context_.stats; }

  /// Charges one positioned seek to the hdfs.seek.count metric.
  /// BufferedReader calls this alongside stats()->seeks.
  void CountSeek() const;

  /// The trace collector this reader emits hdfs.read spans to (null when
  /// tracing is off). Downstream layers (CIF) reuse it for their spans.
  TraceCollector* trace() const { return context_.trace; }

  /// Readahead window requested by the opener (ReadContext), consulted by
  /// BufferedReader when widening sequential fills.
  uint64_t readahead_bytes() const { return context_.readahead_bytes; }

  /// True when this reader can warm upcoming blocks asynchronously: a
  /// cache is attached and the opener supplied a prefetch pool + depth.
  bool prefetch_enabled() const {
    return cache_ != nullptr && context_.prefetch_pool != nullptr &&
           context_.prefetch_depth > 0;
  }

  /// Reads up to n bytes at offset into *out (replacing its contents).
  /// Short reads happen only at end-of-file.
  Status Read(uint64_t offset, size_t n, std::string* out) const;

  /// Zero-copy read: when the block containing `offset` is in the cache,
  /// sets *view to the bytes [offset, min(offset + max_len, block end))
  /// and *pin to shared ownership keeping them alive, and returns true.
  /// The view never crosses a block boundary. Counts as a cache hit;
  /// charges nothing to IoStats (a memory hit has no simulated I/O cost).
  bool TryReadView(uint64_t offset, uint64_t max_len, Slice* view,
                   std::shared_ptr<const std::string>* pin) const;

  /// Schedules asynchronous warming of up to ReadContext::prefetch_depth
  /// uncached blocks, starting at the block containing `offset`, onto the
  /// prefetch pool. Each warm task verifies the stored bytes against the
  /// namenode CRC before inserting. Blocks this reader already issued a
  /// warm task for are skipped (the prefetch horizon only moves forward).
  /// No-op unless prefetch_enabled().
  void Prefetch(uint64_t offset) const;

 private:
  friend class MiniHdfs;

  /// Snapshot of one block: metadata plus shared ownership of its data.
  struct BlockRef {
    BlockInfo info;
    std::shared_ptr<const std::string> data;
  };

  FileReader(const MiniHdfs* fs, std::string path,
             std::vector<BlockRef> blocks, uint64_t size, ReadContext context,
             FaultInjector faults, std::shared_ptr<BlockCache> cache);

  /// Index of the block containing file offset `offset` plus that block's
  /// start offset; blocks_.size() when past EOF.
  size_t BlockIndexOf(uint64_t offset, uint64_t* block_start) const;

  /// Serves [from, to) of one block (offsets block-relative), appending to
  /// *out, with replica selection, checksum verification, and failover.
  Status ReadBlock(const BlockRef& block, uint64_t from, uint64_t to,
                   std::string* out) const;

  const MiniHdfs* fs_;
  std::string path_;
  std::vector<BlockRef> blocks_;
  ReadContext context_;
  uint64_t size_;
  FaultInjector faults_;
  /// Cache snapshot taken at Open (null = filesystem has none attached).
  std::shared_ptr<BlockCache> cache_;
  /// First block index not yet considered by Prefetch; advances
  /// monotonically so repeated sequential fills don't re-issue tasks.
  mutable size_t prefetch_next_block_ = 0;
  /// Running fault-draw counter: makes successive attempts draw fresh
  /// outcomes while staying a pure function of this reader's history.
  mutable uint64_t fault_draws_ = 0;
  /// (block, node) pairs whose CRC this reader has already verified.
  mutable std::set<std::pair<uint64_t, NodeId>> verified_;

  /// Metric handles resolved once at Open (registry lookups take a
  /// mutex; increments are relaxed atomics — the hot-path contract of
  /// DESIGN.md §8).
  Counter* m_read_ops_;
  Counter* m_local_bytes_;
  Counter* m_remote_bytes_;
  Counter* m_failover_reads_;
  Counter* m_checksum_failures_;
  Counter* m_seeks_;
  Histogram* m_read_bytes_;
  /// cif.prefetch.* — named for the columnar scan path that drives
  /// prefetching (the knobs flow in from CIF scans via ReadContext).
  Counter* m_prefetch_issued_;
  Counter* m_prefetch_blocks_;
  Counter* m_prefetch_bytes_;
  Counter* m_prefetch_dropped_;
};

}  // namespace colmr

#endif  // COLMR_HDFS_MINI_HDFS_H_
