#ifndef COLMR_HDFS_MINI_HDFS_H_
#define COLMR_HDFS_MINI_HDFS_H_

#include <map>
#include <memory>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/slice.h"
#include "common/status.h"
#include "hdfs/cluster.h"
#include "hdfs/placement.h"

namespace colmr {

class FileWriter;
class FileReader;

/// One replicated block of a file. Data is stored once in the process;
/// `replicas` is the placement metadata that drives locality accounting
/// and scheduling.
struct BlockInfo {
  uint64_t id = 0;
  uint64_t size = 0;
  std::vector<NodeId> replicas;
};

/// Where a read is executing, for locality accounting. node == kAnyNode
/// means "no placement": every byte counts as local.
struct ReadContext {
  NodeId node = kAnyNode;
  IoStats* stats = nullptr;  // optional sink; may be null
};

/// In-process HDFS: a namenode namespace of append-only files split into
/// replicated blocks, with pluggable block placement. Blocks live in
/// memory; the "cluster" exists as placement metadata plus the cost model,
/// which is all the paper's techniques interact with.
///
/// Thread-safety contract (the parallel JobRunner depends on it): namenode
/// metadata is guarded by a shared_mutex — any number of concurrent
/// readers (Open, FileReader::Read, GetBlockLocations, ListDir,
/// CommonReplicaNodes, Exists, ...) may run alongside each other, while
/// mutations (Create, Delete, KillNode, ReReplicate, LoadImage, and block
/// seals from FileWriter) take the lock exclusively. Block data is
/// immutable once its file's writer is Close()d, so sealed files can be
/// read from many threads without copying. Callers must still not Delete
/// a file, kill nodes, or load an image while readers of that file are in
/// flight — the same external-coordination rule real HDFS imposes.
class MiniHdfs {
 public:
  /// Takes ownership of the placement policy (HDFS's
  /// dfs.block.replicator.classname configuration point).
  MiniHdfs(ClusterConfig config,
           std::unique_ptr<BlockPlacementPolicy> placement);
  ~MiniHdfs();

  MiniHdfs(const MiniHdfs&) = delete;
  MiniHdfs& operator=(const MiniHdfs&) = delete;

  /// Convenience: default config + default placement.
  static std::unique_ptr<MiniHdfs> CreateDefault();

  const ClusterConfig& config() const { return config_; }

  /// Creates a new file for appending. Fails if the path exists.
  Status Create(const std::string& path, std::unique_ptr<FileWriter>* writer);

  /// Opens an existing file for positioned reads in the given context.
  Status Open(const std::string& path, const ReadContext& context,
              std::unique_ptr<FileReader>* reader) const;

  bool Exists(const std::string& path) const;
  Status GetFileSize(const std::string& path, uint64_t* size) const;
  Status Delete(const std::string& path);

  /// Immediate children (files and subdirectories) of a directory path,
  /// sorted, without the parent prefix.
  Status ListDir(const std::string& path,
                 std::vector<std::string>* children) const;

  /// Block placement metadata of a file, for locality-aware scheduling.
  Status GetBlockLocations(const std::string& path,
                           std::vector<BlockInfo>* blocks) const;

  /// Nodes holding a local replica of every block of every listed file —
  /// the candidate nodes on which a split over those files is fully local.
  /// Empty when no such node exists (the Fig. 3a situation).
  std::vector<NodeId> CommonReplicaNodes(
      const std::vector<std::string>& paths) const;

  /// Total bytes stored (pre-replication), for space-usage reporting.
  uint64_t TotalStoredBytes() const;

  // ---- Datanode failure and recovery (the paper's Section 4.3 future
  // work: "re-replication after failures") ----

  /// Marks a datanode dead: its replicas vanish from every block. Blocks
  /// whose last replica dies keep their (simulated) data but report as
  /// lost until re-replicated from... nowhere — with 3-way replication
  /// that requires three simultaneous failures.
  Status KillNode(NodeId node);

  bool IsNodeDead(NodeId node) const;
  /// Snapshot of the dead-node set (copied under the namespace lock).
  std::set<NodeId> dead_nodes() const;

  /// Number of blocks currently holding fewer than `replication` live
  /// replicas.
  uint64_t UnderReplicatedBlockCount() const;

  /// Restores full replication by asking the placement policy for a
  /// replacement node per missing replica. Under ColumnPlacementPolicy
  /// the files of each split-directory move to the same fresh nodes, so
  /// co-location survives the failure.
  Status ReReplicate();

  // ---- Image persistence ----

  /// Serializes the entire filesystem (cluster config, namespace, block
  /// placement, block contents, dead-node set) to one local file, so the
  /// command-line tools can operate on datasets across process runs.
  Status SaveImage(const std::string& local_path) const;

  /// Replaces this filesystem's state with a previously saved image.
  /// The placement policy is kept (it only matters for future writes).
  Status LoadImage(const std::string& local_path);

 private:
  friend class FileWriter;
  friend class FileReader;

  struct FileMeta {
    std::vector<BlockInfo> blocks;
    uint64_t size = 0;
  };

  ClusterConfig config_;
  std::unique_ptr<BlockPlacementPolicy> placement_;

  /// Guards every field below. config_ and placement_ are fixed after
  /// construction (LoadImage excepted) and read without the lock.
  mutable std::shared_mutex mu_;
  std::map<std::string, FileMeta> files_;
  std::map<uint64_t, std::string> block_data_;
  std::set<NodeId> dead_nodes_;
  uint64_t next_block_id_ = 1;
};

/// Append-only writer (HDFS files cannot be modified in place — the
/// constraint that forces CIF skip-list construction to double-buffer,
/// paper Appendix B.3). Close() must be called; it seals the file.
class FileWriter {
 public:
  ~FileWriter();

  FileWriter(const FileWriter&) = delete;
  FileWriter& operator=(const FileWriter&) = delete;

  void Append(Slice data);
  uint64_t BytesWritten() const { return bytes_written_; }
  Status Close();

 private:
  friend class MiniHdfs;
  FileWriter(MiniHdfs* fs, std::string path);

  void SealBlock();

  MiniHdfs* fs_;
  std::string path_;
  std::string pending_;  // bytes not yet sealed into a block
  uint64_t bytes_written_ = 0;
  int next_block_index_ = 0;
  bool closed_ = false;
};

/// Positioned reader with local/remote byte accounting. Each Read charges
/// the context's IoStats per block according to whether context.node holds
/// a replica of that block. Many FileReaders may read the same (sealed)
/// file concurrently; one FileReader must not be shared across threads,
/// because its IoStats sink is charged without synchronization — the
/// engine gives every task its own reader and stats, merged at join.
class FileReader {
 public:
  uint64_t size() const { return size_; }

  /// The context's stats sink (may be null). BufferedReader uses this to
  /// charge seeks.
  IoStats* stats() const { return context_.stats; }

  /// Reads up to n bytes at offset into *out (replacing its contents).
  /// Short reads happen only at end-of-file.
  Status Read(uint64_t offset, size_t n, std::string* out) const;

 private:
  friend class MiniHdfs;
  FileReader(const MiniHdfs* fs, const MiniHdfs::FileMeta* meta,
             ReadContext context);

  const MiniHdfs* fs_;
  const MiniHdfs::FileMeta* meta_;
  ReadContext context_;
  uint64_t size_;
};

}  // namespace colmr

#endif  // COLMR_HDFS_MINI_HDFS_H_
