#include "hdfs/cost_model.h"

#include <algorithm>
#include <queue>
#include <vector>

namespace colmr {

double CostModel::TaskSeconds(const TaskCost& cost) const {
  const double local_seconds =
      static_cast<double>(cost.io.local_bytes) /
      (config_.disk_bandwidth_mbps * 1e6);
  const double remote_seconds =
      static_cast<double>(cost.io.remote_bytes) /
      (config_.network_bandwidth_mbps * 1e6);
  const double seek_seconds =
      static_cast<double>(cost.io.seeks) * config_.seek_latency_ms / 1e3;
  // stall_seconds carries injected slow-datanode latency (fault model);
  // zero when fault injection is off.
  return cost.cpu_seconds + local_seconds + remote_seconds + seek_seconds +
         cost.io.stall_seconds;
}

double CostModel::MapPhaseSeconds(
    const std::vector<double>& task_seconds) const {
  const int slots = std::max(1, config_.TotalMapSlots());
  // LPT packing onto identical machines: sort descending, always assign to
  // the least-loaded slot. With tasks ≫ slots this converges to
  // sum/slots, which is exactly the paper's "total map task time divided
  // by the number of map slots".
  std::vector<double> sorted = task_seconds;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  std::priority_queue<double, std::vector<double>, std::greater<double>>
      slot_loads;
  for (int i = 0; i < slots; ++i) slot_loads.push(0.0);
  double makespan = 0;
  for (double t : sorted) {
    double load = slot_loads.top();
    slot_loads.pop();
    load += t;
    makespan = std::max(makespan, load);
    slot_loads.push(load);
  }
  return makespan;
}

}  // namespace colmr
