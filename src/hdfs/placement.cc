#include "hdfs/placement.h"

#include <algorithm>
#include <cctype>

#include "obs/metrics.h"

namespace colmr {

namespace {

// Placement decisions always go to the process-wide registry: policies
// are owned by the namenode, which predates any per-job context.
Counter* PlacementCounter(const char* name) {
  return MetricsRegistry::Default().counter(name);
}

}  // namespace

std::vector<NodeId> DefaultPlacementPolicy::ChooseTargets(
    const std::string& /*path*/, int /*block_index*/, int num_nodes,
    int replication) {
  static Counter* placed = PlacementCounter("hdfs.placement.default_blocks");
  placed->Increment();
  const int r = std::min(replication, num_nodes);
  std::vector<NodeId> targets;
  targets.reserve(r);
  while (static_cast<int>(targets.size()) < r) {
    const NodeId node = static_cast<NodeId>(rng_.Uniform(num_nodes));
    if (std::find(targets.begin(), targets.end(), node) == targets.end()) {
      targets.push_back(node);
    }
  }
  return targets;
}

namespace {

bool Eligible(NodeId node, const std::vector<NodeId>& current,
              const std::set<NodeId>& dead) {
  return dead.count(node) == 0 &&
         std::find(current.begin(), current.end(), node) == current.end();
}

}  // namespace

NodeId BlockPlacementPolicy::ChooseReplacement(
    const std::string& /*path*/, const std::vector<NodeId>& current,
    int num_nodes, const std::set<NodeId>& dead) {
  for (NodeId node = 0; node < num_nodes; ++node) {
    if (Eligible(node, current, dead)) return node;
  }
  return kAnyNode;
}

NodeId DefaultPlacementPolicy::ChooseReplacement(
    const std::string& /*path*/, const std::vector<NodeId>& current,
    int num_nodes, const std::set<NodeId>& dead) {
  // Random eligible node, like the default policy's initial placement.
  int eligible = 0;
  for (NodeId node = 0; node < num_nodes; ++node) {
    if (Eligible(node, current, dead)) ++eligible;
  }
  if (eligible == 0) return kAnyNode;
  uint64_t pick = rng_.Uniform(eligible);
  for (NodeId node = 0; node < num_nodes; ++node) {
    if (Eligible(node, current, dead) && pick-- == 0) return node;
  }
  return kAnyNode;
}

std::string SplitDirectoryOf(const std::string& path) {
  // Path shape: /a/b/sN/file — the parent component must be "s<digits>".
  const size_t last_slash = path.rfind('/');
  if (last_slash == std::string::npos || last_slash == 0) return "";
  const size_t parent_slash = path.rfind('/', last_slash - 1);
  if (parent_slash == std::string::npos) return "";
  const std::string parent =
      path.substr(parent_slash + 1, last_slash - parent_slash - 1);
  if (parent.size() < 2 || parent[0] != 's') return "";
  for (size_t i = 1; i < parent.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(parent[i]))) return "";
  }
  return path.substr(0, last_slash);
}

NodeId ColumnPlacementPolicy::ChooseReplacement(
    const std::string& path, const std::vector<NodeId>& current,
    int num_nodes, const std::set<NodeId>& dead) {
  const std::string split_dir = SplitDirectoryOf(path);
  auto it = split_dir_targets_.find(split_dir);
  if (split_dir.empty() || it == split_dir_targets_.end()) {
    return fallback_.ChooseReplacement(path, current, num_nodes, dead);
  }
  static Counter* repairs =
      PlacementCounter("hdfs.placement.colocated_repairs");
  repairs->Increment();
  // Repair the directory's cached target set once: drop dead nodes, then
  // top it back up. Every under-replicated block of the directory is
  // steered to the same fresh nodes, so co-location survives the failure.
  std::vector<NodeId>& targets = it->second;
  const size_t want = targets.size();
  targets.erase(std::remove_if(targets.begin(), targets.end(),
                               [&](NodeId n) { return dead.count(n) > 0; }),
                targets.end());
  while (targets.size() < want) {
    const NodeId fresh =
        fallback_.ChooseReplacement(path, targets, num_nodes, dead);
    if (fresh == kAnyNode) break;
    targets.push_back(fresh);
  }
  for (NodeId t : targets) {
    if (Eligible(t, current, dead)) return t;
  }
  return fallback_.ChooseReplacement(path, current, num_nodes, dead);
}

std::vector<NodeId> ColumnPlacementPolicy::ChooseTargets(
    const std::string& path, int block_index, int num_nodes,
    int replication) {
  const std::string split_dir = SplitDirectoryOf(path);
  if (split_dir.empty()) {
    return fallback_.ChooseTargets(path, block_index, num_nodes, replication);
  }
  static Counter* colocated =
      PlacementCounter("hdfs.placement.colocated_blocks");
  colocated->Increment();
  auto it = split_dir_targets_.find(split_dir);
  if (it == split_dir_targets_.end()) {
    // First block of the split-directory: load-balance with the default
    // policy, then pin every subsequent block to the same replica set
    // (paper Section 4.3: co-location at split-directory granularity).
    it = split_dir_targets_
             .emplace(split_dir, fallback_.ChooseTargets(path, block_index,
                                                         num_nodes,
                                                         replication))
             .first;
  }
  return it->second;
}

}  // namespace colmr
