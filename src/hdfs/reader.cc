#include "hdfs/reader.h"

#include <algorithm>

namespace colmr {

BufferedReader::BufferedReader(std::unique_ptr<FileReader> file,
                               uint64_t buffer_size)
    : file_(std::move(file)),
      buffer_size_(buffer_size == 0 ? 128 * 1024 : buffer_size),
      position_(0),
      buffer_start_(0) {}

void BufferedReader::CompactToCursor() {
  if (pin_ != nullptr) {
    const uint64_t end = buffer_start_ + view_.size();
    if (position_ >= end) {
      buffer_.clear();
    } else {
      // Keep the un-consumed tail of the view: a value can straddle the
      // cached block's end, so the bytes must survive the switch back to
      // owned mode.
      buffer_.assign(view_.data() + (position_ - buffer_start_),
                     end - position_);
    }
    pin_.reset();
    view_ = Slice();
    buffer_start_ = position_;
    return;
  }
  if (position_ >= buffer_start_ + buffer_.size()) {
    buffer_.clear();
    buffer_start_ = position_;
  } else if (position_ > buffer_start_) {
    buffer_.erase(0, position_ - buffer_start_);
    buffer_start_ = position_;
  }
}

void BufferedReader::MaybePrefetch() {
  // Two fills without an out-of-window reposition establish a sequential
  // pattern; from then on keep the warm horizon ahead of the window.
  if (sequential_fills_ < 2) return;
  file_->Prefetch(buffer_start_ + window_size());
}

Status BufferedReader::Fill(size_t min_bytes) {
  // Compact: drop bytes before the cursor.
  CompactToCursor();
  const uint64_t fetch_from = buffer_start_ + buffer_.size();
  if (fetch_from >= file_->size()) return Status::OK();
  uint64_t want = std::max<uint64_t>(buffer_size_,
                                     min_bytes > buffer_.size()
                                         ? min_bytes - buffer_.size()
                                         : 0);
  // Sequential readahead: widen the fill once the pattern is established,
  // trading buffered bytes for fewer positioned reads.
  const uint64_t readahead = file_->readahead_bytes();
  if (readahead > want && sequential_fills_ >= 1) want = readahead;
  if (buffer_.empty()) {
    // Zero-copy fast path: serve the window straight out of a cached
    // block. Only adopted when it satisfies this fill in one piece; a
    // range crossing the block boundary falls through to the copying
    // read below (which can span blocks).
    const uint64_t needed =
        std::min<uint64_t>(min_bytes, file_->size() - fetch_from);
    Slice view;
    std::shared_ptr<const std::string> pin;
    if (file_->TryReadView(fetch_from, want, &view, &pin) &&
        view.size() >= needed) {
      pin_ = std::move(pin);
      view_ = view;
      if (!ever_read_) {
        ever_read_ = true;
        if (file_->stats() != nullptr) file_->stats()->seeks += 1;
        file_->CountSeek();
      }
      ++sequential_fills_;
      MaybePrefetch();
      return Status::OK();
    }
  }
  std::string chunk;
  COLMR_RETURN_IF_ERROR(file_->Read(fetch_from, want, &chunk));
  if (!ever_read_) {
    // Initial positioning of the stream counts as one seek.
    ever_read_ = true;
    if (file_->stats() != nullptr) file_->stats()->seeks += 1;
    file_->CountSeek();
  }
  buffer_.append(chunk);
  ++sequential_fills_;
  MaybePrefetch();
  return Status::OK();
}

Status BufferedReader::Peek(size_t n, Slice* out) {
  const uint64_t window_end = buffer_start_ + window_size();
  const size_t have = window_end > position_ ? window_end - position_ : 0;
  if (have < n) {
    COLMR_RETURN_IF_ERROR(Fill(n));
  }
  const size_t offset = position_ - buffer_start_;
  *out = Slice(window_data() + offset, window_size() - offset);
  return Status::OK();
}

void BufferedReader::Consume(size_t n) { position_ += n; }

Status BufferedReader::Seek(uint64_t offset) {
  if (offset >= buffer_start_ && offset <= buffer_start_ + window_size()) {
    position_ = offset;
    return Status::OK();
  }
  // Out-of-window reposition: charge a seek and discard the buffer.
  // Bytes already prefetched stay charged — that waste is the point of
  // modelling reads at io.file.buffer.size granularity.
  pin_.reset();
  view_ = Slice();
  buffer_.clear();
  buffer_start_ = offset;
  position_ = offset;
  sequential_fills_ = 0;
  if (ever_read_) {
    if (file_->stats() != nullptr) file_->stats()->seeks += 1;
    file_->CountSeek();
  }
  return Status::OK();
}

Status BufferedReader::Skip(uint64_t n) {
  const uint64_t target = std::min(position_ + n, file_->size());
  const uint64_t buffered_end = buffer_start_ + window_size();
  if (target <= buffered_end) {
    position_ = target;
    return Status::OK();
  }
  // Short forward skips are cheaper to read through than to reposition
  // (what real buffered streams do): the skipped bytes are still fetched
  // and charged, but no seek is incurred. Only skips landing well beyond
  // the next prefetch window become a true seek that saves I/O.
  if (target - buffered_end <= 2 * buffer_size_) {
    pin_.reset();
    view_ = Slice();
    if (buffered_end > buffer_start_ + buffer_.size()) {
      // The window was a pinned view; the owned buffer is stale.
      buffer_.clear();
      buffer_start_ = buffered_end;
    }
    uint64_t fetch_from = buffered_end;
    while (fetch_from < target && fetch_from < file_->size()) {
      std::string chunk;
      COLMR_RETURN_IF_ERROR(file_->Read(fetch_from, buffer_size_, &chunk));
      if (chunk.empty()) break;
      fetch_from += chunk.size();
      buffer_ = std::move(chunk);
      buffer_start_ = fetch_from - buffer_.size();
    }
    position_ = target;
    return Status::OK();
  }
  return Seek(target);
}

Status BufferedReader::ReadVarint64(uint64_t* value) {
  Slice view;
  COLMR_RETURN_IF_ERROR(Peek(10, &view));
  const char* start = view.data();
  COLMR_RETURN_IF_ERROR(GetVarint64(&view, value));
  Consume(view.data() - start);
  return Status::OK();
}

Status BufferedReader::ReadFixed32(uint32_t* value) {
  Slice view;
  COLMR_RETURN_IF_ERROR(Peek(4, &view));
  Slice cursor = view;
  COLMR_RETURN_IF_ERROR(GetFixed32(&cursor, value));
  Consume(4);
  return Status::OK();
}

Status BufferedReader::ReadBytes(size_t n, std::string* out) {
  out->clear();
  if (n > Remaining()) {
    return Status::Corruption("truncated read: want " + std::to_string(n) +
                              " bytes, file has " + std::to_string(Remaining()));
  }
  Slice view;
  COLMR_RETURN_IF_ERROR(Peek(n, &view));
  if (view.size() < n) return Status::Corruption("short read");
  out->assign(view.data(), n);
  Consume(n);
  return Status::OK();
}

}  // namespace colmr
