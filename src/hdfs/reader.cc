#include "hdfs/reader.h"

#include <algorithm>

namespace colmr {

BufferedReader::BufferedReader(std::unique_ptr<FileReader> file,
                               uint64_t buffer_size)
    : file_(std::move(file)),
      buffer_size_(buffer_size == 0 ? 128 * 1024 : buffer_size),
      position_(0),
      buffer_start_(0) {}

Status BufferedReader::Fill(size_t min_bytes) {
  // Compact: drop bytes before the cursor.
  if (position_ >= buffer_start_ + buffer_.size()) {
    buffer_.clear();
    buffer_start_ = position_;
  } else if (position_ > buffer_start_) {
    buffer_.erase(0, position_ - buffer_start_);
    buffer_start_ = position_;
  }
  const uint64_t fetch_from = buffer_start_ + buffer_.size();
  if (fetch_from >= file_->size()) return Status::OK();
  uint64_t want = std::max<uint64_t>(buffer_size_,
                                     min_bytes > buffer_.size()
                                         ? min_bytes - buffer_.size()
                                         : 0);
  std::string chunk;
  COLMR_RETURN_IF_ERROR(file_->Read(fetch_from, want, &chunk));
  if (!ever_read_) {
    // Initial positioning of the stream counts as one seek.
    ever_read_ = true;
    if (file_->stats() != nullptr) file_->stats()->seeks += 1;
    file_->CountSeek();
  }
  buffer_.append(chunk);
  return Status::OK();
}

Status BufferedReader::Peek(size_t n, Slice* out) {
  const size_t have = buffer_start_ + buffer_.size() > position_
                          ? buffer_start_ + buffer_.size() - position_
                          : 0;
  if (have < n) {
    COLMR_RETURN_IF_ERROR(Fill(n));
  }
  const size_t offset = position_ - buffer_start_;
  *out = Slice(buffer_.data() + offset, buffer_.size() - offset);
  return Status::OK();
}

void BufferedReader::Consume(size_t n) { position_ += n; }

Status BufferedReader::Seek(uint64_t offset) {
  if (offset >= buffer_start_ && offset <= buffer_start_ + buffer_.size()) {
    position_ = offset;
    return Status::OK();
  }
  // Out-of-window reposition: charge a seek and discard the buffer.
  // Bytes already prefetched stay charged — that waste is the point of
  // modelling reads at io.file.buffer.size granularity.
  buffer_.clear();
  buffer_start_ = offset;
  position_ = offset;
  if (ever_read_) {
    if (file_->stats() != nullptr) file_->stats()->seeks += 1;
    file_->CountSeek();
  }
  return Status::OK();
}

Status BufferedReader::Skip(uint64_t n) {
  const uint64_t target = std::min(position_ + n, file_->size());
  const uint64_t buffered_end = buffer_start_ + buffer_.size();
  if (target <= buffered_end) {
    position_ = target;
    return Status::OK();
  }
  // Short forward skips are cheaper to read through than to reposition
  // (what real buffered streams do): the skipped bytes are still fetched
  // and charged, but no seek is incurred. Only skips landing well beyond
  // the next prefetch window become a true seek that saves I/O.
  if (target - buffered_end <= 2 * buffer_size_) {
    uint64_t fetch_from = buffered_end;
    while (fetch_from < target && fetch_from < file_->size()) {
      std::string chunk;
      COLMR_RETURN_IF_ERROR(file_->Read(fetch_from, buffer_size_, &chunk));
      if (chunk.empty()) break;
      fetch_from += chunk.size();
      buffer_ = std::move(chunk);
      buffer_start_ = fetch_from - buffer_.size();
    }
    position_ = target;
    return Status::OK();
  }
  return Seek(target);
}

Status BufferedReader::ReadVarint64(uint64_t* value) {
  Slice view;
  COLMR_RETURN_IF_ERROR(Peek(10, &view));
  const char* start = view.data();
  COLMR_RETURN_IF_ERROR(GetVarint64(&view, value));
  Consume(view.data() - start);
  return Status::OK();
}

Status BufferedReader::ReadFixed32(uint32_t* value) {
  Slice view;
  COLMR_RETURN_IF_ERROR(Peek(4, &view));
  Slice cursor = view;
  COLMR_RETURN_IF_ERROR(GetFixed32(&cursor, value));
  Consume(4);
  return Status::OK();
}

Status BufferedReader::ReadBytes(size_t n, std::string* out) {
  out->clear();
  n = std::min<uint64_t>(n, Remaining());
  Slice view;
  COLMR_RETURN_IF_ERROR(Peek(n, &view));
  if (view.size() < n) return Status::Corruption("short read");
  out->assign(view.data(), n);
  Consume(n);
  return Status::OK();
}

}  // namespace colmr
