#ifndef COLMR_HDFS_READER_H_
#define COLMR_HDFS_READER_H_

#include <memory>
#include <string>

#include "common/coding.h"
#include "common/slice.h"
#include "common/status.h"
#include "hdfs/mini_hdfs.h"

namespace colmr {

/// Sequential reader over an HDFS file that fetches in io.file.buffer.size
/// chunks, exactly like Hadoop's buffered streams. All format readers pull
/// their bytes through this class, so the IoStats they accumulate include
/// prefetch amplification: a 2 KB column chunk still costs a full buffer
/// fetch. This is the mechanism behind the paper's observation that RCFile
/// reads 20x more bytes than CIF when projecting one column (Section 6.2).
///
/// Cache integration (DESIGN.md §9): when the underlying FileReader has a
/// block cache attached, fills landing inside a cached block are served
/// as a pinned zero-copy view of the cached bytes instead of a copy into
/// the owned buffer. Two knobs ride in through the FileReader's
/// ReadContext: `readahead_bytes` widens sequential fills beyond the
/// buffer size, and `prefetch_depth` schedules asynchronous warming of
/// upcoming blocks once the access pattern looks sequential (two fills
/// without an out-of-window reposition).
class BufferedReader {
 public:
  /// buffer_size == 0 uses the filesystem's configured io_buffer_size.
  BufferedReader(std::unique_ptr<FileReader> file, uint64_t buffer_size);

  BufferedReader(const BufferedReader&) = delete;
  BufferedReader& operator=(const BufferedReader&) = delete;

  uint64_t size() const { return file_->size(); }
  uint64_t position() const { return position_; }
  bool AtEnd() const { return position_ >= file_->size(); }
  uint64_t Remaining() const { return file_->size() - position_; }

  /// Makes at least min(n, Remaining()) bytes available ahead of the
  /// cursor and returns a view of everything buffered (possibly more than
  /// n). The view is invalidated by any other call.
  Status Peek(size_t n, Slice* out);

  /// Advances the cursor by n buffered bytes. n must not exceed the length
  /// of the last Peek result.
  void Consume(size_t n);

  /// The shared pin keeping the current zero-copy window (a cached block)
  /// alive, or nullptr when the window is the reader-owned buffer. A
  /// caller that retains the returned pointer extends the lifetime of the
  /// last Peek's slices past future reader operations — the mechanism the
  /// batch scan uses to hand out strings without copying them (DESIGN.md
  /// §10).
  std::shared_ptr<const std::string> PinnedWindow() const { return pin_; }

  /// Repositions the cursor. Jumping outside the buffered range counts a
  /// seek and discards the buffer (prefetched bytes stay charged).
  Status Seek(uint64_t offset);

  /// Skips n bytes forward: consumes from the buffer when possible,
  /// otherwise seeks — skipping more than the buffered window is how skip
  /// lists turn into real I/O savings.
  Status Skip(uint64_t n);

  // Convenience decoders over Peek/Consume.
  Status ReadVarint64(uint64_t* value);
  Status ReadFixed32(uint32_t* value);
  /// Reads exactly n bytes into *out (replaced). A request extending past
  /// end-of-file is Corruption — callers pass lengths decoded from file
  /// headers, so a short read means the file is truncated, and silently
  /// clamping would mask that as success.
  Status ReadBytes(size_t n, std::string* out);

 private:
  Status Fill(size_t min_bytes);
  /// Collapses the current window (owned or pinned) so it starts at the
  /// cursor, switching back to owned mode and keeping un-consumed bytes.
  void CompactToCursor();
  /// Issues async warming of blocks past the window once the access
  /// pattern is sequential.
  void MaybePrefetch();

  // Window accessors: the buffered bytes span
  // [buffer_start_, buffer_start_ + window_size()), backed either by the
  // owned buffer_ or by a pinned cache block (zero-copy).
  const char* window_data() const {
    return pin_ != nullptr ? view_.data() : buffer_.data();
  }
  size_t window_size() const {
    return pin_ != nullptr ? view_.size() : buffer_.size();
  }

  std::unique_ptr<FileReader> file_;
  uint64_t buffer_size_;
  uint64_t position_;       // logical cursor in the file
  uint64_t buffer_start_;   // file offset of window_data()[0]
  std::string buffer_;      // owned-mode storage
  /// Pinned-mode state: pin_ keeps the cached block alive while view_
  /// points into it. pin_ == nullptr means owned mode.
  std::shared_ptr<const std::string> pin_;
  Slice view_;
  bool ever_read_ = false;
  /// Consecutive forward fills without an out-of-window reposition; >= 2
  /// marks the stream sequential for readahead/prefetch purposes.
  uint64_t sequential_fills_ = 0;
};

}  // namespace colmr

#endif  // COLMR_HDFS_READER_H_
