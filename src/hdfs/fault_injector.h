#ifndef COLMR_HDFS_FAULT_INJECTOR_H_
#define COLMR_HDFS_FAULT_INJECTOR_H_

#include <cstdint>
#include <set>
#include <string>

#include "hdfs/cluster.h"

namespace colmr {

/// Deterministic fault schedule for the simulated datanodes. Configured on
/// MiniHdfs (SetFaultConfig) and consulted by FileReader on every replica
/// read attempt, by FileWriter on every block seal, and by the
/// OutputCommitter on every commit. All probabilistic faults are driven by
/// a counter-mode hash of draw coordinates, never by a shared RNG: whether
/// a given attempt fails is a pure function of what the task is doing, so
/// fault schedules reproduce exactly across runs and are independent of
/// thread interleaving.
///
/// Draw-keying contract (the determinism guarantee depends on it):
///  - every draw hashes (seed, key, node, salt, draw) through splitmix64;
///  - READ draws key on the HDFS block id; the salt is the task attempt's
///    ReadContext::fault_salt (the engine uses split_index * 131 + attempt
///    for map attempts), and `draw` is the reader's private running
///    counter, incremented per consulted attempt — a reader's schedule is
///    a pure function of its own read history;
///  - WRITE draws key on hash(path) + block_index, offset into a disjoint
///    domain (kWriteDomain) so a write draw can never alias a read draw of
///    the same numeric block id; the salt is WriteContext::fault_salt (the
///    engine keys reduce-output attempts with the high bit set:
///    0x8000000000000000 | (partition * 131 + attempt)), and `draw` is the
///    writer's private counter;
///  - COMMIT draws key on hash(task id) (task commit) or a fixed job key
///    (job commit), in the kCommitDomain, salted per attempt.
/// Re-executed attempts therefore draw fresh outcomes (new salt), while
/// the same attempt replayed anywhere — any thread count, any
/// interleaving — draws the same outcomes in the same order.
///
/// Fault taxonomy (see DESIGN.md §7 and §11):
///  - transient replica read errors (`read_error_p`, per replica attempt):
///    the client fails over to the next replica within the same read;
///  - per-node flakiness (`flaky_nodes` + `flaky_read_error_p`): elevated
///    transient-error probability when a specific datanode serves;
///  - broken execution nodes (`broken_nodes`): every read issued by a task
///    running on such a node fails — the "bad local disk controller"
///    failure Hadoop's tracker blacklisting exists for;
///  - slow datanodes (`slow_nodes` + `slow_read_latency_ms`): reads
///    succeed but stall for real wall-clock time, charged to
///    IoStats::stall_seconds and visible in JobReport::wall_seconds;
///  - transient write errors (`write_error_p`, per sealed block): the
///    pipeline ack fails, the writer goes sticky-bad, and the task retries
///    the whole attempt (HDFS writers cannot resume a torn pipeline);
///  - slow write nodes (`slow_write_nodes` + `slow_write_latency_ms`):
///    seals succeed but stall, same accounting as slow reads;
///  - write-death nodes (`write_death_nodes`): the node dies (KillNode)
///    the moment a writer executing on it seals its first block — the
///    "datanode crashes mid-write" case the commit protocol exists for;
///  - commit faults (`task_commit_error_p`, `job_commit_error_p`): the
///    committer's rename step fails before mutating the namespace.
/// Permanent replica corruption (bit-flips caught by block CRCs) is not
/// probabilistic; it is registered per replica via MiniHdfs::CorruptReplica.
struct FaultConfig {
  uint64_t seed = 1;

  /// Probability that any single replica read attempt fails transiently.
  double read_error_p = 0;

  /// Datanodes whose serves fail with `flaky_read_error_p` instead of
  /// `read_error_p`.
  std::set<NodeId> flaky_nodes;
  double flaky_read_error_p = 0;

  /// Execution nodes whose tasks cannot read at all: every read issued
  /// from a ReadContext on one of these nodes fails with IoError, whatever
  /// replica would serve it.
  std::set<NodeId> broken_nodes;

  /// Datanodes that serve correctly but slowly; each read they serve
  /// stalls this long for real and charges IoStats::stall_seconds.
  std::set<NodeId> slow_nodes;
  double slow_read_latency_ms = 0;

  // ---- Write-path faults (DESIGN.md §11) ----
  /// Probability that sealing any single block fails transiently. The
  /// writer becomes permanently failed (append-only files cannot repair a
  /// torn pipeline); recovery is a fresh attempt under a fresh salt.
  double write_error_p = 0;

  /// Nodes whose block seals succeed but stall for this long (real sleep,
  /// charged to IoStats::stall_seconds like slow reads).
  std::set<NodeId> slow_write_nodes;
  double slow_write_latency_ms = 0;

  /// Nodes that die (MiniHdfs::KillNode) when a writer executing on them
  /// seals its first block. The write fails; retries must land elsewhere.
  std::set<NodeId> write_death_nodes;

  /// Probability that one task-commit rename attempt fails (before any
  /// namespace mutation), and that the job-commit promotion fails.
  double task_commit_error_p = 0;
  double job_commit_error_p = 0;

  bool active() const {
    return read_error_p > 0 || !flaky_nodes.empty() ||
           !broken_nodes.empty() || !slow_nodes.empty() || write_active();
  }

  bool write_active() const {
    return write_error_p > 0 || !slow_write_nodes.empty() ||
           !write_death_nodes.empty() || task_commit_error_p > 0 ||
           job_commit_error_p > 0;
  }
};

class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(FaultConfig config) : config_(std::move(config)) {}

  const FaultConfig& config() const { return config_; }
  bool active() const { return config_.active(); }

  /// True when the read attempt of `block` against replica `node` should
  /// fail transiently. `salt` identifies the task attempt issuing the read
  /// (so re-executed tasks draw a fresh schedule) and `draw` is the
  /// caller's running draw counter.
  bool ReadAttemptFails(uint64_t block, NodeId node, uint64_t salt,
                        uint64_t draw) const {
    double p = config_.read_error_p;
    if (config_.flaky_nodes.count(node) > 0) p = config_.flaky_read_error_p;
    if (p <= 0) return false;
    return UnitDraw(block, node, salt, draw) < p;
  }

  /// True when the execution node itself cannot read (broken-node fault).
  bool ExecutionNodeBroken(NodeId node) const {
    return node != kAnyNode && config_.broken_nodes.count(node) > 0;
  }

  /// Injected latency for one read served by `node`, in seconds.
  double ServeStallSeconds(NodeId node) const {
    if (config_.slow_read_latency_ms <= 0 ||
        config_.slow_nodes.count(node) == 0) {
      return 0;
    }
    return config_.slow_read_latency_ms / 1e3;
  }

  /// True when sealing write-keyed block `wkey` (hash(path) + block index)
  /// from a writer on `node` should fail transiently.
  bool WriteAttemptFails(uint64_t wkey, NodeId node, uint64_t salt,
                         uint64_t draw) const {
    if (config_.write_error_p <= 0) return false;
    return UnitDraw(wkey ^ kWriteDomain, node, salt, draw) <
           config_.write_error_p;
  }

  /// True when `node` is scheduled to die on its first block seal.
  bool WriterNodeDies(NodeId node) const {
    return node != kAnyNode && config_.write_death_nodes.count(node) > 0;
  }

  /// Injected latency for one block seal executed on `node`, in seconds.
  double WriteStallSeconds(NodeId node) const {
    if (config_.slow_write_latency_ms <= 0 ||
        config_.slow_write_nodes.count(node) == 0) {
      return 0;
    }
    return config_.slow_write_latency_ms / 1e3;
  }

  /// True when one task-commit rename attempt keyed by `task_key`
  /// (hash of the task id) should fail.
  bool TaskCommitFails(uint64_t task_key, uint64_t salt, uint64_t draw) const {
    if (config_.task_commit_error_p <= 0) return false;
    return UnitDraw(task_key ^ kCommitDomain, kAnyNode, salt, draw) <
           config_.task_commit_error_p;
  }

  /// True when the job-commit promotion should fail.
  bool JobCommitFails(uint64_t salt, uint64_t draw) const {
    if (config_.job_commit_error_p <= 0) return false;
    return UnitDraw(kJobCommitKey ^ kCommitDomain, kAnyNode, salt, draw) <
           config_.job_commit_error_p;
  }

  /// Stable 64-bit key for a file path, used to key write draws.
  static uint64_t PathKey(const std::string& path) {
    // FNV-1a, then the splitmix64 finalizer for diffusion.
    uint64_t h = 0xcbf29ce484222325ull;
    for (char c : path) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ull;
    }
    return Mix(h);
  }

 private:
  /// Domain-separation constants: write and commit draws can never alias
  /// read draws, whatever numeric keys collide.
  static constexpr uint64_t kWriteDomain = 0x77f17ed0a1b2c3d4ull;
  static constexpr uint64_t kCommitDomain = 0xc011ec7ed0c05157ull;
  static constexpr uint64_t kJobCommitKey = 0x10bc0337ull;

  /// splitmix64 finalizer — a strong deterministic mix of the draw
  /// coordinates into [0, 1).
  static uint64_t Mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  double UnitDraw(uint64_t block, NodeId node, uint64_t salt,
                  uint64_t draw) const {
    uint64_t h = Mix(config_.seed ^ Mix(block));
    h = Mix(h ^ Mix(static_cast<uint64_t>(node) + 0x51ed2701ull));
    h = Mix(h ^ Mix(salt * 0x100000001b3ull + draw));
    return static_cast<double>(h >> 11) * 0x1.0p-53;
  }

  FaultConfig config_;
};

}  // namespace colmr

#endif  // COLMR_HDFS_FAULT_INJECTOR_H_
