#ifndef COLMR_HDFS_FAULT_INJECTOR_H_
#define COLMR_HDFS_FAULT_INJECTOR_H_

#include <cstdint>
#include <set>

#include "hdfs/cluster.h"

namespace colmr {

/// Deterministic fault schedule for the simulated datanodes. Configured on
/// MiniHdfs (SetFaultConfig) and consulted by FileReader on every replica
/// read attempt. All probabilistic faults are driven by a counter-mode
/// hash of (seed, block, replica node, task salt, draw index), never by a
/// shared RNG: whether a given attempt fails is a pure function of what
/// the task is doing, so fault schedules reproduce exactly across runs and
/// are independent of thread interleaving.
///
/// Fault taxonomy (see DESIGN.md §7):
///  - transient replica read errors (`read_error_p`, per replica attempt):
///    the client fails over to the next replica within the same read;
///  - per-node flakiness (`flaky_nodes` + `flaky_read_error_p`): elevated
///    transient-error probability when a specific datanode serves;
///  - broken execution nodes (`broken_nodes`): every read issued by a task
///    running on such a node fails — the "bad local disk controller"
///    failure Hadoop's tracker blacklisting exists for;
///  - slow datanodes (`slow_nodes` + `slow_read_latency_ms`): reads
///    succeed but charge extra latency through the cost model.
/// Permanent replica corruption (bit-flips caught by block CRCs) is not
/// probabilistic; it is registered per replica via MiniHdfs::CorruptReplica.
struct FaultConfig {
  uint64_t seed = 1;

  /// Probability that any single replica read attempt fails transiently.
  double read_error_p = 0;

  /// Datanodes whose serves fail with `flaky_read_error_p` instead of
  /// `read_error_p`.
  std::set<NodeId> flaky_nodes;
  double flaky_read_error_p = 0;

  /// Execution nodes whose tasks cannot read at all: every read issued
  /// from a ReadContext on one of these nodes fails with IoError, whatever
  /// replica would serve it.
  std::set<NodeId> broken_nodes;

  /// Datanodes that serve correctly but slowly; each read they serve
  /// charges this much extra latency into IoStats::stall_seconds.
  std::set<NodeId> slow_nodes;
  double slow_read_latency_ms = 0;

  bool active() const {
    return read_error_p > 0 || !flaky_nodes.empty() ||
           !broken_nodes.empty() || !slow_nodes.empty();
  }
};

class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(FaultConfig config) : config_(std::move(config)) {}

  const FaultConfig& config() const { return config_; }
  bool active() const { return config_.active(); }

  /// True when the read attempt of `block` against replica `node` should
  /// fail transiently. `salt` identifies the task attempt issuing the read
  /// (so re-executed tasks draw a fresh schedule) and `draw` is the
  /// caller's running draw counter.
  bool ReadAttemptFails(uint64_t block, NodeId node, uint64_t salt,
                        uint64_t draw) const {
    double p = config_.read_error_p;
    if (config_.flaky_nodes.count(node) > 0) p = config_.flaky_read_error_p;
    if (p <= 0) return false;
    return UnitDraw(block, node, salt, draw) < p;
  }

  /// True when the execution node itself cannot read (broken-node fault).
  bool ExecutionNodeBroken(NodeId node) const {
    return node != kAnyNode && config_.broken_nodes.count(node) > 0;
  }

  /// Injected latency for one read served by `node`, in seconds.
  double ServeStallSeconds(NodeId node) const {
    if (config_.slow_read_latency_ms <= 0 ||
        config_.slow_nodes.count(node) == 0) {
      return 0;
    }
    return config_.slow_read_latency_ms / 1e3;
  }

 private:
  /// splitmix64 finalizer — a strong deterministic mix of the draw
  /// coordinates into [0, 1).
  static uint64_t Mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  double UnitDraw(uint64_t block, NodeId node, uint64_t salt,
                  uint64_t draw) const {
    uint64_t h = Mix(config_.seed ^ Mix(block));
    h = Mix(h ^ Mix(static_cast<uint64_t>(node) + 0x51ed2701ull));
    h = Mix(h ^ Mix(salt * 0x100000001b3ull + draw));
    return static_cast<double>(h >> 11) * 0x1.0p-53;
  }

  FaultConfig config_;
};

}  // namespace colmr

#endif  // COLMR_HDFS_FAULT_INJECTOR_H_
