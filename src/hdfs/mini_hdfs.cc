#include "hdfs/mini_hdfs.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <set>
#include <shared_mutex>

#include "common/coding.h"

namespace colmr {

MiniHdfs::MiniHdfs(ClusterConfig config,
                   std::unique_ptr<BlockPlacementPolicy> placement)
    : config_(config), placement_(std::move(placement)) {}

MiniHdfs::~MiniHdfs() = default;

std::unique_ptr<MiniHdfs> MiniHdfs::CreateDefault() {
  return std::make_unique<MiniHdfs>(
      ClusterConfig(), std::make_unique<DefaultPlacementPolicy>());
}

Status MiniHdfs::Create(const std::string& path,
                        std::unique_ptr<FileWriter>* writer) {
  if (path.empty() || path[0] != '/') {
    return Status::InvalidArgument("path must be absolute: " + path);
  }
  std::unique_lock lock(mu_);
  if (files_.count(path) > 0) {
    return Status::AlreadyExists(path);
  }
  files_.emplace(path, FileMeta{});
  writer->reset(new FileWriter(this, path));
  return Status::OK();
}

Status MiniHdfs::Open(const std::string& path, const ReadContext& context,
                      std::unique_ptr<FileReader>* reader) const {
  std::shared_lock lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound(path);
  // The FileMeta pointer stays valid across the unlock: map nodes are
  // stable, and the contract forbids Delete/LoadImage while open.
  reader->reset(new FileReader(this, &it->second, context));
  return Status::OK();
}

bool MiniHdfs::Exists(const std::string& path) const {
  std::shared_lock lock(mu_);
  return files_.count(path) > 0;
}

bool MiniHdfs::IsNodeDead(NodeId node) const {
  std::shared_lock lock(mu_);
  return dead_nodes_.count(node) > 0;
}

std::set<NodeId> MiniHdfs::dead_nodes() const {
  std::shared_lock lock(mu_);
  return dead_nodes_;
}

Status MiniHdfs::GetFileSize(const std::string& path, uint64_t* size) const {
  std::shared_lock lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound(path);
  *size = it->second.size;
  return Status::OK();
}

Status MiniHdfs::Delete(const std::string& path) {
  std::unique_lock lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound(path);
  for (const BlockInfo& block : it->second.blocks) {
    block_data_.erase(block.id);
  }
  files_.erase(it);
  return Status::OK();
}

Status MiniHdfs::ListDir(const std::string& path,
                         std::vector<std::string>* children) const {
  children->clear();
  std::string prefix = path;
  if (prefix.empty() || prefix.back() != '/') prefix += '/';
  std::shared_lock lock(mu_);
  std::set<std::string> unique_children;
  for (const auto& [file_path, meta] : files_) {
    if (file_path.size() > prefix.size() &&
        file_path.compare(0, prefix.size(), prefix) == 0) {
      const std::string rest = file_path.substr(prefix.size());
      const size_t slash = rest.find('/');
      unique_children.insert(slash == std::string::npos ? rest
                                                        : rest.substr(0, slash));
    }
  }
  children->assign(unique_children.begin(), unique_children.end());
  if (children->empty()) {
    return Status::NotFound("empty or missing directory: " + path);
  }
  return Status::OK();
}

Status MiniHdfs::GetBlockLocations(const std::string& path,
                                   std::vector<BlockInfo>* blocks) const {
  std::shared_lock lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound(path);
  *blocks = it->second.blocks;
  return Status::OK();
}

std::vector<NodeId> MiniHdfs::CommonReplicaNodes(
    const std::vector<std::string>& paths) const {
  std::shared_lock lock(mu_);
  std::set<NodeId> common;
  bool first = true;
  for (const std::string& path : paths) {
    auto it = files_.find(path);
    if (it == files_.end()) return {};
    for (const BlockInfo& block : it->second.blocks) {
      std::set<NodeId> holders(block.replicas.begin(), block.replicas.end());
      if (first) {
        common = holders;
        first = false;
      } else {
        std::set<NodeId> next;
        std::set_intersection(common.begin(), common.end(), holders.begin(),
                              holders.end(),
                              std::inserter(next, next.begin()));
        common = std::move(next);
      }
      if (common.empty()) return {};
    }
  }
  return std::vector<NodeId>(common.begin(), common.end());
}

Status MiniHdfs::KillNode(NodeId node) {
  if (node < 0 || node >= config_.num_nodes) {
    return Status::InvalidArgument("no such node");
  }
  std::unique_lock lock(mu_);
  if (!dead_nodes_.insert(node).second) {
    return Status::AlreadyExists("node already dead");
  }
  for (auto& [path, meta] : files_) {
    for (BlockInfo& block : meta.blocks) {
      block.replicas.erase(
          std::remove(block.replicas.begin(), block.replicas.end(), node),
          block.replicas.end());
    }
  }
  return Status::OK();
}

uint64_t MiniHdfs::UnderReplicatedBlockCount() const {
  std::shared_lock lock(mu_);
  const size_t target = static_cast<size_t>(
      std::min(config_.replication,
               config_.num_nodes - static_cast<int>(dead_nodes_.size())));
  uint64_t count = 0;
  for (const auto& [path, meta] : files_) {
    for (const BlockInfo& block : meta.blocks) {
      if (block.replicas.size() < target) ++count;
    }
  }
  return count;
}

Status MiniHdfs::ReReplicate() {
  std::unique_lock lock(mu_);
  const size_t target = static_cast<size_t>(
      std::min(config_.replication,
               config_.num_nodes - static_cast<int>(dead_nodes_.size())));
  for (auto& [path, meta] : files_) {
    for (BlockInfo& block : meta.blocks) {
      while (block.replicas.size() < target) {
        const NodeId fresh = placement_->ChooseReplacement(
            path, block.replicas, config_.num_nodes, dead_nodes_);
        if (fresh == kAnyNode) {
          return Status::IoError("no eligible node for re-replication");
        }
        block.replicas.push_back(fresh);
      }
    }
  }
  return Status::OK();
}

uint64_t MiniHdfs::TotalStoredBytes() const {
  std::shared_lock lock(mu_);
  uint64_t total = 0;
  for (const auto& [path, meta] : files_) total += meta.size;
  return total;
}

namespace {
constexpr char kImageMagic[4] = {'C', 'H', 'F', 'S'};
}  // namespace

Status MiniHdfs::SaveImage(const std::string& local_path) const {
  std::shared_lock lock(mu_);
  Buffer image;
  image.Append(Slice(kImageMagic, 4));
  PutVarint64(&image, static_cast<uint64_t>(config_.num_nodes));
  PutVarint64(&image, static_cast<uint64_t>(config_.replication));
  PutVarint64(&image, config_.block_size);
  PutVarint64(&image, config_.io_buffer_size);
  PutVarint64(&image, next_block_id_);
  PutVarint64(&image, dead_nodes_.size());
  for (NodeId node : dead_nodes_) {
    PutVarint64(&image, static_cast<uint64_t>(node));
  }
  PutVarint64(&image, files_.size());
  for (const auto& [path, meta] : files_) {
    PutLengthPrefixed(&image, path);
    PutVarint64(&image, meta.blocks.size());
    for (const BlockInfo& block : meta.blocks) {
      PutVarint64(&image, block.id);
      PutVarint64(&image, block.replicas.size());
      for (NodeId node : block.replicas) {
        PutVarint64(&image, static_cast<uint64_t>(node));
      }
      PutLengthPrefixed(&image, block_data_.at(block.id));
    }
  }

  std::ofstream out(local_path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IoError("cannot open image file: " + local_path);
  }
  out.write(image.data(), static_cast<std::streamsize>(image.size()));
  out.close();
  if (!out.good()) return Status::IoError("short write: " + local_path);
  return Status::OK();
}

Status MiniHdfs::LoadImage(const std::string& local_path) {
  std::ifstream in(local_path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IoError("cannot open image file: " + local_path);
  }
  std::string raw((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  Slice cursor(raw);
  if (cursor.size() < 4 || memcmp(cursor.data(), kImageMagic, 4) != 0) {
    return Status::Corruption("not a colmr filesystem image");
  }
  cursor.RemovePrefix(4);

  std::unique_lock lock(mu_);
  MiniHdfs loaded(config_, nullptr);
  uint64_t v;
  COLMR_RETURN_IF_ERROR(GetVarint64(&cursor, &v));
  loaded.config_.num_nodes = static_cast<int>(v);
  COLMR_RETURN_IF_ERROR(GetVarint64(&cursor, &v));
  loaded.config_.replication = static_cast<int>(v);
  COLMR_RETURN_IF_ERROR(GetVarint64(&cursor, &loaded.config_.block_size));
  COLMR_RETURN_IF_ERROR(GetVarint64(&cursor, &loaded.config_.io_buffer_size));
  COLMR_RETURN_IF_ERROR(GetVarint64(&cursor, &loaded.next_block_id_));
  uint64_t dead_count;
  COLMR_RETURN_IF_ERROR(GetVarint64(&cursor, &dead_count));
  for (uint64_t i = 0; i < dead_count; ++i) {
    COLMR_RETURN_IF_ERROR(GetVarint64(&cursor, &v));
    loaded.dead_nodes_.insert(static_cast<NodeId>(v));
  }
  uint64_t file_count;
  COLMR_RETURN_IF_ERROR(GetVarint64(&cursor, &file_count));
  for (uint64_t f = 0; f < file_count; ++f) {
    Slice path;
    COLMR_RETURN_IF_ERROR(GetLengthPrefixed(&cursor, &path));
    FileMeta meta;
    uint64_t block_count;
    COLMR_RETURN_IF_ERROR(GetVarint64(&cursor, &block_count));
    for (uint64_t b = 0; b < block_count; ++b) {
      BlockInfo block;
      COLMR_RETURN_IF_ERROR(GetVarint64(&cursor, &block.id));
      uint64_t replica_count;
      COLMR_RETURN_IF_ERROR(GetVarint64(&cursor, &replica_count));
      for (uint64_t r = 0; r < replica_count; ++r) {
        COLMR_RETURN_IF_ERROR(GetVarint64(&cursor, &v));
        block.replicas.push_back(static_cast<NodeId>(v));
      }
      Slice data;
      COLMR_RETURN_IF_ERROR(GetLengthPrefixed(&cursor, &data));
      block.size = data.size();
      meta.size += data.size();
      loaded.block_data_[block.id] = data.ToString();
      meta.blocks.push_back(std::move(block));
    }
    loaded.files_.emplace(path.ToString(), std::move(meta));
  }
  if (!cursor.empty()) return Status::Corruption("trailing bytes in image");

  // Adopt the loaded state, keeping our placement policy for new writes.
  config_ = loaded.config_;
  files_ = std::move(loaded.files_);
  block_data_ = std::move(loaded.block_data_);
  dead_nodes_ = std::move(loaded.dead_nodes_);
  next_block_id_ = loaded.next_block_id_;
  return Status::OK();
}

// ---- FileWriter ----

FileWriter::FileWriter(MiniHdfs* fs, std::string path)
    : fs_(fs), path_(std::move(path)) {}

FileWriter::~FileWriter() {
  if (!closed_) Close();
}

void FileWriter::Append(Slice data) {
  pending_.append(data.data(), data.size());
  bytes_written_ += data.size();
  while (pending_.size() >= fs_->config_.block_size) {
    SealBlock();
  }
}

void FileWriter::SealBlock() {
  const uint64_t block_size = fs_->config_.block_size;
  const size_t take = std::min<size_t>(pending_.size(), block_size);
  std::unique_lock lock(fs_->mu_);
  BlockInfo block;
  block.id = fs_->next_block_id_++;
  block.size = take;
  block.replicas = fs_->placement_->ChooseTargets(
      path_, next_block_index_++, fs_->config_.num_nodes,
      fs_->config_.replication);
  fs_->block_data_[block.id] = pending_.substr(0, take);
  pending_.erase(0, take);

  auto& meta = fs_->files_[path_];
  meta.blocks.push_back(std::move(block));
  meta.size += take;
}

Status FileWriter::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  while (!pending_.empty()) SealBlock();
  return Status::OK();
}

// ---- FileReader ----

FileReader::FileReader(const MiniHdfs* fs, const MiniHdfs::FileMeta* meta,
                       ReadContext context)
    : fs_(fs), meta_(meta), context_(context), size_(meta->size) {}

Status FileReader::Read(uint64_t offset, size_t n, std::string* out) const {
  out->clear();
  if (offset >= size_) return Status::OK();
  n = std::min<uint64_t>(n, size_ - offset);
  out->reserve(n);

  if (context_.stats != nullptr) {
    context_.stats->reads += 1;
  }

  // Walk blocks covering [offset, offset + n). The shared lock pins the
  // block map against concurrent writers sealing blocks of other files;
  // this file's own blocks are immutable (it was sealed before opening).
  std::shared_lock lock(fs_->mu_);
  uint64_t block_start = 0;
  for (const BlockInfo& block : meta_->blocks) {
    const uint64_t block_end = block_start + block.size;
    if (block_end > offset && block_start < offset + n) {
      const uint64_t from = std::max(offset, block_start);
      const uint64_t to = std::min(offset + n, block_end);
      const std::string& data = fs_->block_data_.at(block.id);
      out->append(data, from - block_start, to - from);
      if (context_.stats != nullptr) {
        const bool is_local =
            context_.node == kAnyNode ||
            std::find(block.replicas.begin(), block.replicas.end(),
                      context_.node) != block.replicas.end();
        if (is_local) {
          context_.stats->local_bytes += to - from;
        } else {
          context_.stats->remote_bytes += to - from;
        }
      }
    }
    block_start = block_end;
    if (block_start >= offset + n) break;
  }
  return Status::OK();
}

}  // namespace colmr
