#include "hdfs/mini_hdfs.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <thread>

#include "common/coding.h"
#include "common/crc32.h"
#include "common/thread_pool.h"
#include "hdfs/block_cache.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace colmr {

MiniHdfs::MiniHdfs(ClusterConfig config,
                   std::unique_ptr<BlockPlacementPolicy> placement)
    : config_(config), placement_(std::move(placement)) {}

MiniHdfs::~MiniHdfs() = default;

std::unique_ptr<MiniHdfs> MiniHdfs::CreateDefault() {
  return std::make_unique<MiniHdfs>(
      ClusterConfig(), std::make_unique<DefaultPlacementPolicy>());
}

Status MiniHdfs::Create(const std::string& path,
                        std::unique_ptr<FileWriter>* writer) {
  return Create(path, WriteContext{}, writer);
}

Status MiniHdfs::Create(const std::string& path, const WriteContext& context,
                        std::unique_ptr<FileWriter>* writer) {
  if (path.empty() || path[0] != '/') {
    return Status::InvalidArgument("path must be absolute: " + path);
  }
  std::unique_lock lock(mu_);
  if (files_.count(path) > 0) {
    return Status::AlreadyExists(path);
  }
  files_.emplace(path, FileMeta{});
  writer->reset(
      new FileWriter(this, path, context, FaultInjector(fault_config_)));
  return Status::OK();
}

Status MiniHdfs::Rename(const std::string& from, const std::string& to) {
  if (from.empty() || from[0] != '/' || to.empty() || to[0] != '/') {
    return Status::InvalidArgument("rename paths must be absolute");
  }
  std::string from_prefix = from;
  if (from_prefix.back() != '/') from_prefix += '/';
  std::string to_prefix = to;
  if (to_prefix.back() != '/') to_prefix += '/';
  if (from == to ||
      to_prefix.compare(0, from_prefix.size(), from_prefix) == 0) {
    return Status::InvalidArgument("cannot rename " + from +
                                   " into itself: " + to);
  }
  std::unique_lock lock(mu_);
  // Exact-file move.
  auto it = files_.find(from);
  if (it != files_.end()) {
    if (files_.count(to) > 0) return Status::AlreadyExists(to);
    FileMeta meta = std::move(it->second);
    files_.erase(it);
    files_.emplace(to, std::move(meta));
    return Status::OK();
  }
  // Directory move: every file under from/ moves under to/, preserving
  // relative paths. All-or-nothing: destinations are checked before any
  // entry moves, so a collision mutates nothing.
  std::vector<std::pair<std::string, std::string>> moves;
  for (const auto& [file_path, meta] : files_) {
    if (file_path.size() > from_prefix.size() &&
        file_path.compare(0, from_prefix.size(), from_prefix) == 0) {
      moves.emplace_back(file_path,
                         to_prefix + file_path.substr(from_prefix.size()));
    }
  }
  if (moves.empty()) return Status::NotFound(from);
  for (const auto& [src, dst] : moves) {
    if (files_.count(dst) > 0) return Status::AlreadyExists(dst);
  }
  for (const auto& [src, dst] : moves) {
    FileMeta meta = std::move(files_.at(src));
    files_.erase(src);
    files_.emplace(dst, std::move(meta));
  }
  return Status::OK();
}

Status MiniHdfs::DeleteRecursive(const std::string& path) {
  if (path.empty() || path[0] != '/') {
    return Status::InvalidArgument("path must be absolute: " + path);
  }
  std::string prefix = path;
  if (prefix.back() != '/') prefix += '/';
  std::unique_lock lock(mu_);
  std::vector<std::string> victims;
  for (const auto& [file_path, meta] : files_) {
    if (file_path == path ||
        (file_path.size() > prefix.size() &&
         file_path.compare(0, prefix.size(), prefix) == 0)) {
      victims.push_back(file_path);
    }
  }
  for (const std::string& victim : victims) {
    auto it = files_.find(victim);
    for (const BlockInfo& block : it->second.blocks) {
      block_data_.erase(block.id);  // readers keep their snapshot
      if (block_cache_ != nullptr) block_cache_->Erase(block.id);
      for (NodeId node : block.replicas) ForgetReplicaLocked(block.id, node);
    }
    files_.erase(it);
  }
  // Idempotent by design: abort paths may run after a crash already
  // removed everything, or twice — both must succeed.
  return Status::OK();
}

Status MiniHdfs::Open(const std::string& path, const ReadContext& context,
                      std::unique_ptr<FileReader>* reader) const {
  std::shared_lock lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound(path);
  // Snapshot block metadata and take shared ownership of the data: the
  // reader stays valid across a concurrent Delete/LoadImage, serving the
  // bytes the file had when it was opened.
  std::vector<FileReader::BlockRef> blocks;
  blocks.reserve(it->second.blocks.size());
  for (const BlockInfo& block : it->second.blocks) {
    blocks.push_back(FileReader::BlockRef{block, block_data_.at(block.id)});
  }
  reader->reset(new FileReader(this, path, std::move(blocks), it->second.size,
                               context, FaultInjector(fault_config_),
                               block_cache_));
  return Status::OK();
}

// ---- Block cache ----

void MiniHdfs::SetBlockCache(std::shared_ptr<BlockCache> cache) {
  std::unique_lock lock(mu_);
  block_cache_ = std::move(cache);
}

std::shared_ptr<BlockCache> MiniHdfs::EnsureBlockCache(
    uint64_t capacity_bytes, MetricsRegistry* metrics) {
  std::unique_lock lock(mu_);
  if (block_cache_ == nullptr) {
    block_cache_ = std::make_shared<BlockCache>(capacity_bytes, metrics);
  }
  return block_cache_;
}

std::shared_ptr<BlockCache> MiniHdfs::block_cache() const {
  std::shared_lock lock(mu_);
  return block_cache_;
}

bool MiniHdfs::Exists(const std::string& path) const {
  std::shared_lock lock(mu_);
  return files_.count(path) > 0;
}

bool MiniHdfs::IsNodeDead(NodeId node) const {
  std::shared_lock lock(mu_);
  return dead_nodes_.count(node) > 0;
}

std::set<NodeId> MiniHdfs::dead_nodes() const {
  std::shared_lock lock(mu_);
  return dead_nodes_;
}

Status MiniHdfs::GetFileSize(const std::string& path, uint64_t* size) const {
  std::shared_lock lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound(path);
  *size = it->second.size;
  return Status::OK();
}

Status MiniHdfs::Delete(const std::string& path) {
  std::unique_lock lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound(path);
  for (const BlockInfo& block : it->second.blocks) {
    block_data_.erase(block.id);  // readers keep their shared_ptr snapshot
    if (block_cache_ != nullptr) block_cache_->Erase(block.id);
    for (NodeId node : block.replicas) ForgetReplicaLocked(block.id, node);
  }
  files_.erase(it);
  return Status::OK();
}

Status MiniHdfs::ListDir(const std::string& path,
                         std::vector<std::string>* children) const {
  children->clear();
  std::string prefix = path;
  if (prefix.empty() || prefix.back() != '/') prefix += '/';
  std::shared_lock lock(mu_);
  std::set<std::string> unique_children;
  for (const auto& [file_path, meta] : files_) {
    if (file_path.size() > prefix.size() &&
        file_path.compare(0, prefix.size(), prefix) == 0) {
      const std::string rest = file_path.substr(prefix.size());
      const size_t slash = rest.find('/');
      unique_children.insert(slash == std::string::npos ? rest
                                                        : rest.substr(0, slash));
    }
  }
  children->assign(unique_children.begin(), unique_children.end());
  if (children->empty()) {
    return Status::NotFound("empty or missing directory: " + path);
  }
  return Status::OK();
}

Status MiniHdfs::GetBlockLocations(const std::string& path,
                                   std::vector<BlockInfo>* blocks) const {
  std::shared_lock lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound(path);
  *blocks = it->second.blocks;
  // A replica marked bad must not look like local data to the scheduler.
  for (BlockInfo& block : *blocks) {
    block.replicas.erase(
        std::remove_if(block.replicas.begin(), block.replicas.end(),
                       [&](NodeId node) {
                         return bad_replicas_.count({block.id, node}) > 0;
                       }),
        block.replicas.end());
  }
  return Status::OK();
}

std::vector<NodeId> MiniHdfs::CommonReplicaNodes(
    const std::vector<std::string>& paths) const {
  std::shared_lock lock(mu_);
  std::set<NodeId> common;
  bool first = true;
  for (const std::string& path : paths) {
    auto it = files_.find(path);
    if (it == files_.end()) return {};
    for (const BlockInfo& block : it->second.blocks) {
      std::set<NodeId> holders;
      for (NodeId node : block.replicas) {
        if (bad_replicas_.count({block.id, node}) == 0) holders.insert(node);
      }
      if (first) {
        common = holders;
        first = false;
      } else {
        std::set<NodeId> next;
        std::set_intersection(common.begin(), common.end(), holders.begin(),
                              holders.end(),
                              std::inserter(next, next.begin()));
        common = std::move(next);
      }
      if (common.empty()) return {};
    }
  }
  return std::vector<NodeId>(common.begin(), common.end());
}

// ---- Fault injection ----

void MiniHdfs::SetFaultConfig(const FaultConfig& config) {
  std::unique_lock lock(mu_);
  fault_config_ = config;
}

FaultConfig MiniHdfs::fault_config() const {
  std::shared_lock lock(mu_);
  return fault_config_;
}

Status MiniHdfs::CorruptReplica(const std::string& path, size_t block_index,
                                size_t replica_ordinal, NodeId* node) {
  std::unique_lock lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound(path);
  if (block_index >= it->second.blocks.size()) {
    return Status::InvalidArgument("block index out of range");
  }
  BlockInfo& block = it->second.blocks[block_index];
  if (replica_ordinal >= block.replicas.size()) {
    return Status::InvalidArgument("replica ordinal out of range");
  }
  const NodeId target = block.replicas[replica_ordinal];
  corrupted_.insert({block.id, target});
  // The id's trustworthy-bytes mapping changed: readers opened from now
  // on must re-verify through the replica path, never hit older cache
  // entries (and their own inserts must not collide with them).
  ++block.generation;
  if (block_cache_ != nullptr) block_cache_->Erase(block.id);
  if (node != nullptr) *node = target;
  return Status::OK();
}

Status MiniHdfs::MarkReplicaBad(uint64_t block_id, NodeId node) const {
  std::unique_lock lock(mu_);
  if (block_data_.count(block_id) == 0) {
    return Status::NotFound("no such block");
  }
  if (bad_replicas_.insert({block_id, node}).second) {
    ++bad_replica_marks_;
  }
  return Status::OK();
}

uint64_t MiniHdfs::bad_replica_marks() const {
  std::shared_lock lock(mu_);
  return bad_replica_marks_;
}

void MiniHdfs::ForgetReplicaLocked(uint64_t block_id, NodeId node) {
  corrupted_.erase({block_id, node});
  bad_replicas_.erase({block_id, node});
}

std::vector<MiniHdfs::ReplicaCandidate> MiniHdfs::ReadCandidates(
    const BlockInfo& snapshot, NodeId prefer) const {
  std::shared_lock lock(mu_);
  std::vector<ReplicaCandidate> candidates;
  candidates.reserve(snapshot.replicas.size());
  std::vector<NodeId> nodes = snapshot.replicas;
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  // Local replica first (that choice is what the locality accounting and
  // the paper's co-location experiment measure), then ascending node id
  // for a deterministic failover order.
  auto prefer_it = std::find(nodes.begin(), nodes.end(), prefer);
  if (prefer_it != nodes.end()) {
    std::rotate(nodes.begin(), prefer_it, prefer_it + 1);
  }
  for (NodeId node : nodes) {
    if (dead_nodes_.count(node) > 0) continue;
    if (bad_replicas_.count({snapshot.id, node}) > 0) continue;
    candidates.push_back(
        ReplicaCandidate{node, corrupted_.count({snapshot.id, node}) > 0});
  }
  return candidates;
}

// ---- Datanode failure and recovery ----

Status MiniHdfs::KillNode(NodeId node) {
  if (node < 0 || node >= config_.num_nodes) {
    return Status::InvalidArgument("no such node");
  }
  std::unique_lock lock(mu_);
  if (!dead_nodes_.insert(node).second) {
    return Status::AlreadyExists("node already dead");
  }
  for (auto& [path, meta] : files_) {
    for (BlockInfo& block : meta.blocks) {
      auto held = std::find(block.replicas.begin(), block.replicas.end(), node);
      if (held == block.replicas.end()) continue;
      block.replicas.erase(
          std::remove(block.replicas.begin(), block.replicas.end(), node),
          block.replicas.end());
      ForgetReplicaLocked(block.id, node);
    }
  }
  return Status::OK();
}

namespace {

/// Live replicas of a block not marked bad. Caller holds the lock.
size_t GoodReplicaCount(const BlockInfo& block,
                        const std::set<std::pair<uint64_t, NodeId>>& bad) {
  size_t good = 0;
  for (NodeId node : block.replicas) {
    if (bad.count({block.id, node}) == 0) ++good;
  }
  return good;
}

}  // namespace

uint64_t MiniHdfs::UnderReplicatedBlockCount() const {
  std::shared_lock lock(mu_);
  const size_t target = static_cast<size_t>(
      std::min(config_.replication,
               config_.num_nodes - static_cast<int>(dead_nodes_.size())));
  uint64_t count = 0;
  for (const auto& [path, meta] : files_) {
    for (const BlockInfo& block : meta.blocks) {
      if (GoodReplicaCount(block, bad_replicas_) < target) ++count;
    }
  }
  return count;
}

uint64_t MiniHdfs::LostBlockCount() const {
  std::shared_lock lock(mu_);
  uint64_t count = 0;
  for (const auto& [path, meta] : files_) {
    for (const BlockInfo& block : meta.blocks) {
      if (GoodReplicaCount(block, bad_replicas_) == 0) ++count;
    }
  }
  return count;
}

Status MiniHdfs::ReReplicate() {
  std::unique_lock lock(mu_);
  const size_t target = static_cast<size_t>(
      std::min(config_.replication,
               config_.num_nodes - static_cast<int>(dead_nodes_.size())));
  uint64_t lost = 0;
  for (auto& [path, meta] : files_) {
    for (BlockInfo& block : meta.blocks) {
      // Drop replicas reported bad: re-replication copies from a good
      // replica, and the bad copy's slot is what gets refilled.
      bool changed = false;
      block.replicas.erase(
          std::remove_if(block.replicas.begin(), block.replicas.end(),
                         [&](NodeId node) {
                           if (bad_replicas_.count({block.id, node}) == 0) {
                             return false;
                           }
                           ForgetReplicaLocked(block.id, node);
                           changed = true;
                           return true;
                         }),
          block.replicas.end());
      if (block.replicas.empty()) {
        // No good copy to replicate from — the data is gone. Never
        // resurrect it from the simulator's in-memory bytes.
        ++lost;
        continue;
      }
      while (block.replicas.size() < target) {
        const NodeId fresh = placement_->ChooseReplacement(
            path, block.replicas, config_.num_nodes, dead_nodes_);
        if (fresh == kAnyNode) {
          return Status::IoError("no eligible node for re-replication");
        }
        // The fresh copy is written from a verified-good replica; stale
        // health marks for this (block, node) pair no longer apply.
        ForgetReplicaLocked(block.id, fresh);
        block.replicas.push_back(fresh);
        changed = true;
      }
      if (changed) {
        // Conservative cache invalidation: the replica set moved, so
        // start a fresh generation and drop cached bytes keyed to the
        // old one.
        ++block.generation;
        if (block_cache_ != nullptr) block_cache_->Erase(block.id);
      }
    }
  }
  if (lost > 0) {
    return Status::DataLoss("blocks with no surviving good replica: " +
                            std::to_string(lost));
  }
  return Status::OK();
}

uint64_t MiniHdfs::TotalStoredBytes() const {
  std::shared_lock lock(mu_);
  uint64_t total = 0;
  for (const auto& [path, meta] : files_) total += meta.size;
  return total;
}

namespace {
constexpr char kImageMagic[4] = {'C', 'H', 'F', 'S'};
}  // namespace

Status MiniHdfs::SaveImage(const std::string& local_path) const {
  std::shared_lock lock(mu_);
  Buffer image;
  image.Append(Slice(kImageMagic, 4));
  PutVarint64(&image, static_cast<uint64_t>(config_.num_nodes));
  PutVarint64(&image, static_cast<uint64_t>(config_.replication));
  PutVarint64(&image, config_.block_size);
  PutVarint64(&image, config_.io_buffer_size);
  PutVarint64(&image, next_block_id_);
  PutVarint64(&image, dead_nodes_.size());
  for (NodeId node : dead_nodes_) {
    PutVarint64(&image, static_cast<uint64_t>(node));
  }
  PutVarint64(&image, files_.size());
  for (const auto& [path, meta] : files_) {
    PutLengthPrefixed(&image, path);
    PutVarint64(&image, meta.blocks.size());
    for (const BlockInfo& block : meta.blocks) {
      PutVarint64(&image, block.id);
      PutVarint64(&image, block.replicas.size());
      for (NodeId node : block.replicas) {
        PutVarint64(&image, static_cast<uint64_t>(node));
      }
      PutLengthPrefixed(&image, *block_data_.at(block.id));
    }
  }
  // Replica-health sections. Appended after the original layout so images
  // written by older builds (which end at the files section) still load.
  PutVarint64(&image, corrupted_.size());
  for (const auto& [block_id, node] : corrupted_) {
    PutVarint64(&image, block_id);
    PutVarint64(&image, static_cast<uint64_t>(node));
  }
  PutVarint64(&image, bad_replicas_.size());
  for (const auto& [block_id, node] : bad_replicas_) {
    PutVarint64(&image, block_id);
    PutVarint64(&image, static_cast<uint64_t>(node));
  }

  std::ofstream out(local_path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IoError("cannot open image file: " + local_path);
  }
  out.write(image.data(), static_cast<std::streamsize>(image.size()));
  out.close();
  if (!out.good()) return Status::IoError("short write: " + local_path);
  return Status::OK();
}

Status MiniHdfs::LoadImage(const std::string& local_path) {
  std::ifstream in(local_path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IoError("cannot open image file: " + local_path);
  }
  std::string raw((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  Slice cursor(raw);
  if (cursor.size() < 4 || memcmp(cursor.data(), kImageMagic, 4) != 0) {
    return Status::Corruption("not a colmr filesystem image");
  }
  cursor.RemovePrefix(4);

  std::unique_lock lock(mu_);
  MiniHdfs loaded(config_, nullptr);
  uint64_t v;
  COLMR_RETURN_IF_ERROR(GetVarint64(&cursor, &v));
  loaded.config_.num_nodes = static_cast<int>(v);
  COLMR_RETURN_IF_ERROR(GetVarint64(&cursor, &v));
  loaded.config_.replication = static_cast<int>(v);
  COLMR_RETURN_IF_ERROR(GetVarint64(&cursor, &loaded.config_.block_size));
  COLMR_RETURN_IF_ERROR(GetVarint64(&cursor, &loaded.config_.io_buffer_size));
  COLMR_RETURN_IF_ERROR(GetVarint64(&cursor, &loaded.next_block_id_));
  uint64_t dead_count;
  COLMR_RETURN_IF_ERROR(GetVarint64(&cursor, &dead_count));
  for (uint64_t i = 0; i < dead_count; ++i) {
    COLMR_RETURN_IF_ERROR(GetVarint64(&cursor, &v));
    loaded.dead_nodes_.insert(static_cast<NodeId>(v));
  }
  uint64_t file_count;
  COLMR_RETURN_IF_ERROR(GetVarint64(&cursor, &file_count));
  for (uint64_t f = 0; f < file_count; ++f) {
    Slice path;
    COLMR_RETURN_IF_ERROR(GetLengthPrefixed(&cursor, &path));
    FileMeta meta;
    uint64_t block_count;
    COLMR_RETURN_IF_ERROR(GetVarint64(&cursor, &block_count));
    for (uint64_t b = 0; b < block_count; ++b) {
      BlockInfo block;
      COLMR_RETURN_IF_ERROR(GetVarint64(&cursor, &block.id));
      uint64_t replica_count;
      COLMR_RETURN_IF_ERROR(GetVarint64(&cursor, &replica_count));
      for (uint64_t r = 0; r < replica_count; ++r) {
        COLMR_RETURN_IF_ERROR(GetVarint64(&cursor, &v));
        block.replicas.push_back(static_cast<NodeId>(v));
      }
      Slice data;
      COLMR_RETURN_IF_ERROR(GetLengthPrefixed(&cursor, &data));
      block.size = data.size();
      // Images don't carry checksums; the namenode-recorded CRC is
      // recomputed from the stored (uncorrupted) bytes.
      block.crc = Crc32(data);
      meta.size += data.size();
      loaded.block_data_[block.id] =
          std::make_shared<const std::string>(data.ToString());
      meta.blocks.push_back(std::move(block));
    }
    loaded.files_.emplace(path.ToString(), std::move(meta));
  }
  // Optional replica-health sections (absent in images from older builds).
  if (!cursor.empty()) {
    uint64_t corrupt_count;
    COLMR_RETURN_IF_ERROR(GetVarint64(&cursor, &corrupt_count));
    for (uint64_t i = 0; i < corrupt_count; ++i) {
      uint64_t block_id;
      COLMR_RETURN_IF_ERROR(GetVarint64(&cursor, &block_id));
      COLMR_RETURN_IF_ERROR(GetVarint64(&cursor, &v));
      loaded.corrupted_.insert({block_id, static_cast<NodeId>(v)});
    }
    uint64_t bad_count;
    COLMR_RETURN_IF_ERROR(GetVarint64(&cursor, &bad_count));
    for (uint64_t i = 0; i < bad_count; ++i) {
      uint64_t block_id;
      COLMR_RETURN_IF_ERROR(GetVarint64(&cursor, &block_id));
      COLMR_RETURN_IF_ERROR(GetVarint64(&cursor, &v));
      loaded.bad_replicas_.insert({block_id, static_cast<NodeId>(v)});
    }
    loaded.bad_replica_marks_ = bad_count;
  }
  if (!cursor.empty()) return Status::Corruption("trailing bytes in image");

  // Adopt the loaded state, keeping our placement policy (future writes)
  // and fault config (runtime-only, never persisted). The block cache
  // stays attached but is emptied: image block ids can collide with ids
  // this namespace already issued, and generations are not persisted.
  if (block_cache_ != nullptr) block_cache_->Clear();
  config_ = loaded.config_;
  files_ = std::move(loaded.files_);
  block_data_ = std::move(loaded.block_data_);
  dead_nodes_ = std::move(loaded.dead_nodes_);
  corrupted_ = std::move(loaded.corrupted_);
  bad_replicas_ = std::move(loaded.bad_replicas_);
  bad_replica_marks_ = loaded.bad_replica_marks_;
  next_block_id_ = loaded.next_block_id_;
  return Status::OK();
}

// ---- FileWriter ----

FileWriter::FileWriter(MiniHdfs* fs, std::string path, WriteContext context,
                       FaultInjector faults)
    : fs_(fs),
      path_(std::move(path)),
      context_(context),
      faults_(std::move(faults)),
      path_key_(FaultInjector::PathKey(path_)) {
  MetricsRegistry& metrics = context_.metrics != nullptr
                                 ? *context_.metrics
                                 : MetricsRegistry::Default();
  m_write_faults_ = metrics.counter("hdfs.write.faults");
}

FileWriter::~FileWriter() {
  if (!closed_) Close();
}

void FileWriter::Append(Slice data) {
  if (!status_.ok()) return;  // sticky-bad: the pipeline is torn
  pending_.append(data.data(), data.size());
  bytes_written_ += data.size();
  while (status_.ok() && pending_.size() >= fs_->config_.block_size) {
    SealBlock();
  }
}

void FileWriter::SealBlock() {
  // Fault consultation happens before the namespace lock is taken:
  // KillNode acquires it itself, and the sleep must not serialize the
  // namenode. Draw coordinates follow the header contract — write domain,
  // keyed by (hash(path) + block index, node, salt, draw).
  if (faults_.config().write_active() || context_.node != kAnyNode) {
    if (faults_.WriterNodeDies(context_.node)) {
      // The datanode dies the moment this writer's pipeline touches it.
      // AlreadyExists (already dead) is fine — a dead node still cannot
      // complete the seal.
      fs_->KillNode(context_.node);
      status_ = Status::IoError("node " + std::to_string(context_.node) +
                                " died mid-write of " + path_ + " (injected)");
      m_write_faults_->Increment();
      if (context_.stats != nullptr) context_.stats->write_faults += 1;
      pending_.clear();
      return;
    }
    if (context_.node != kAnyNode && fs_->IsNodeDead(context_.node)) {
      status_ = Status::IoError("node " + std::to_string(context_.node) +
                                " is dead; cannot write " + path_);
      m_write_faults_->Increment();
      if (context_.stats != nullptr) context_.stats->write_faults += 1;
      pending_.clear();
      return;
    }
    if (faults_.WriteAttemptFails(
            path_key_ + static_cast<uint64_t>(next_block_index_),
            context_.node, context_.fault_salt, fault_draws_++)) {
      status_ = Status::IoError("injected transient write fault sealing block " +
                                std::to_string(next_block_index_) + " of " +
                                path_);
      m_write_faults_->Increment();
      if (context_.stats != nullptr) context_.stats->write_faults += 1;
      pending_.clear();
      return;
    }
    const double stall = faults_.WriteStallSeconds(context_.node);
    if (stall > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(stall));
      if (context_.stats != nullptr) context_.stats->stall_seconds += stall;
    }
  }
  const uint64_t block_size = fs_->config_.block_size;
  const size_t take = std::min<size_t>(pending_.size(), block_size);
  std::unique_lock lock(fs_->mu_);
  BlockInfo block;
  block.id = fs_->next_block_id_++;
  block.size = take;
  block.crc = Crc32(Slice(pending_.data(), take));
  block.replicas = fs_->placement_->ChooseTargets(
      path_, next_block_index_++, fs_->config_.num_nodes,
      fs_->config_.replication);
  fs_->block_data_[block.id] =
      std::make_shared<const std::string>(pending_.substr(0, take));
  pending_.erase(0, take);

  auto& meta = fs_->files_[path_];
  meta.blocks.push_back(std::move(block));
  meta.size += take;
}

Status FileWriter::Close() {
  if (closed_) return status_;
  closed_ = true;
  while (status_.ok() && !pending_.empty()) SealBlock();
  return status_;
}

// ---- FileReader ----

FileReader::FileReader(const MiniHdfs* fs, std::string path,
                       std::vector<BlockRef> blocks, uint64_t size,
                       ReadContext context, FaultInjector faults,
                       std::shared_ptr<BlockCache> cache)
    : fs_(fs),
      path_(std::move(path)),
      blocks_(std::move(blocks)),
      context_(context),
      size_(size),
      faults_(std::move(faults)),
      cache_(std::move(cache)) {
  MetricsRegistry& metrics =
      context_.metrics != nullptr ? *context_.metrics : MetricsRegistry::Default();
  m_read_ops_ = metrics.counter("hdfs.read.ops");
  m_local_bytes_ = metrics.counter("hdfs.read.local_bytes");
  m_remote_bytes_ = metrics.counter("hdfs.read.remote_bytes");
  m_failover_reads_ = metrics.counter("hdfs.read.failover");
  m_checksum_failures_ = metrics.counter("hdfs.read.checksum_failures");
  m_seeks_ = metrics.counter("hdfs.seek.count");
  m_read_bytes_ = metrics.histogram("hdfs.read.bytes");
  m_prefetch_issued_ = metrics.counter("cif.prefetch.issued");
  m_prefetch_blocks_ = metrics.counter("cif.prefetch.blocks");
  m_prefetch_bytes_ = metrics.counter("cif.prefetch.bytes");
  m_prefetch_dropped_ = metrics.counter("cif.prefetch.dropped");
  metrics.counter("hdfs.open.count")->Increment();
}

void FileReader::CountSeek() const { m_seeks_->Increment(); }

namespace {

/// CRC-32 of a block as served by one replica: the stored bytes, with one
/// bit flipped when the replica is registered corrupt. Computed by
/// chaining over slices so the corrupt case needs no block-sized copy.
uint32_t ServedCrc(const std::string& data, bool corrupted) {
  if (!corrupted || data.empty()) return Crc32(Slice(data));
  const size_t flip = data.size() / 2;
  const char flipped = static_cast<char>(data[flip] ^ 0x01);
  uint32_t crc = Crc32Extend(0, Slice(data.data(), flip));
  crc = Crc32Extend(crc, Slice(&flipped, 1));
  return Crc32Extend(crc, Slice(data.data() + flip + 1,
                                data.size() - flip - 1));
}

}  // namespace

Status FileReader::ReadBlock(const BlockRef& block, uint64_t from, uint64_t to,
                             std::string* out) const {
  if (context_.cancel != nullptr &&
      context_.cancel->load(std::memory_order_relaxed)) {
    return Status::IoError("read canceled by the issuing task");
  }
  if (faults_.ExecutionNodeBroken(context_.node)) {
    return Status::IoError("node " + std::to_string(context_.node) +
                           " cannot read (broken-node fault)");
  }
  // Read-through cache: a hit serves already-verified bytes with no
  // replica selection, fault draws, or re-verification, and charges
  // nothing to IoStats — a memory hit has no simulated disk/network cost.
  // Entries only ever hold bytes that passed the CRC check below under
  // the same (id, generation), so a registered-corrupt replica can never
  // be behind a hit (CorruptReplica bumps the generation and erases).
  if (cache_ != nullptr) {
    if (std::shared_ptr<const std::string> cached =
            cache_->Lookup(block.info.id, block.info.generation)) {
      out->append(*cached, from, to - from);
      return Status::OK();
    }
  }
  const std::vector<MiniHdfs::ReplicaCandidate> candidates =
      fs_->ReadCandidates(block.info, context_.node);
  size_t transient_failures = 0;
  for (const MiniHdfs::ReplicaCandidate& candidate : candidates) {
    // Injected transient error: charge the failover (plus a reconnect
    // seek) and move on to the next replica.
    if (faults_.active() &&
        faults_.ReadAttemptFails(block.info.id, candidate.node,
                                 context_.fault_salt, fault_draws_++)) {
      ++transient_failures;
      if (context_.stats != nullptr) {
        context_.stats->failover_reads += 1;
        context_.stats->seeks += 1;
      }
      m_failover_reads_->Increment();
      m_seeks_->Increment();
      continue;
    }
    // Verify the block checksum the first time this replica serves this
    // reader. A mismatch permanently reports the replica to the namenode.
    if (verified_.count({block.info.id, candidate.node}) == 0) {
      if (ServedCrc(*block.data, candidate.corrupted) != block.info.crc) {
        if (context_.stats != nullptr) {
          context_.stats->checksum_failures += 1;
          context_.stats->failover_reads += 1;
          context_.stats->seeks += 1;
        }
        m_checksum_failures_->Increment();
        m_failover_reads_->Increment();
        m_seeks_->Increment();
        fs_->MarkReplicaBad(block.info.id, candidate.node);
        continue;
      }
      verified_.insert({block.info.id, candidate.node});
    }
    // The serve below comes from the pristine stored bytes (a corrupt
    // replica never reaches this point — its flipped CRC fails above), so
    // they are safe to share through the cache under this generation.
    if (cache_ != nullptr) {
      cache_->Insert(block.info.id, block.info.generation, block.data);
    }
    out->append(*block.data, from, to - from);
    // Local-first candidate order means the local replica serves
    // whenever it is live and good, so fault-free accounting matches
    // the pre-failover definition ("local iff the reading node holds a
    // replica") byte for byte.
    const bool is_local =
        context_.node == kAnyNode || candidate.node == context_.node;
    (is_local ? m_local_bytes_ : m_remote_bytes_)->Increment(to - from);
    // Slow-node stall: sleep for real so the injected latency shows up in
    // measured wall time (and straggler defenses have something to race),
    // and charge it to stats so the cost model sees it too. The sleep is
    // sliced so a canceled reader (a superseded speculative attempt) bails
    // out mid-stall instead of serving latency nobody will use; only the
    // portion actually slept is charged.
    double stall = faults_.ServeStallSeconds(candidate.node);
    bool canceled = false;
    if (stall > 0) {
      constexpr double kSliceSeconds = 1e-3;
      double remaining = stall;
      while (remaining > 0) {
        if (context_.cancel != nullptr &&
            context_.cancel->load(std::memory_order_relaxed)) {
          canceled = true;
          break;
        }
        const double slice = remaining < kSliceSeconds ? remaining
                                                       : kSliceSeconds;
        std::this_thread::sleep_for(std::chrono::duration<double>(slice));
        remaining -= slice;
      }
      stall -= remaining;
    }
    if (context_.stats != nullptr) {
      if (is_local) {
        context_.stats->local_bytes += to - from;
      } else {
        context_.stats->remote_bytes += to - from;
      }
      context_.stats->stall_seconds += stall;
    }
    if (canceled) {
      return Status::IoError("read canceled by the issuing task mid-stall");
    }
    return Status::OK();
  }
  if (transient_failures > 0) {
    // Some replica may still be good — the failure is retryable at the
    // task level, so it must not be reported as data loss.
    return Status::IoError("all replicas of block " +
                           std::to_string(block.info.id) + " of " + path_ +
                           " failed transiently");
  }
  return Status::DataLoss("no live good replica of block " +
                          std::to_string(block.info.id) + " of " + path_);
}

Status FileReader::Read(uint64_t offset, size_t n, std::string* out) const {
  out->clear();
  if (offset >= size_) return Status::OK();
  n = std::min<uint64_t>(n, size_ - offset);
  out->reserve(n);

  if (context_.stats != nullptr) {
    context_.stats->reads += 1;
  }
  m_read_ops_->Increment();
  m_read_bytes_->Observe(n);
  ScopedSpan span(context_.trace, "hdfs.read", "hdfs");
  if (span.active()) {
    span.AddArg("path", path_);
    span.AddArg("offset", offset);
    span.AddArg("bytes", static_cast<uint64_t>(n));
  }

  uint64_t block_start = 0;
  for (const BlockRef& block : blocks_) {
    const uint64_t block_end = block_start + block.info.size;
    if (block_end > offset && block_start < offset + n) {
      const uint64_t from = std::max(offset, block_start);
      const uint64_t to = std::min(offset + n, block_end);
      COLMR_RETURN_IF_ERROR(
          ReadBlock(block, from - block_start, to - block_start, out));
    }
    block_start = block_end;
    if (block_start >= offset + n) break;
  }
  return Status::OK();
}

size_t FileReader::BlockIndexOf(uint64_t offset, uint64_t* block_start) const {
  uint64_t start = 0;
  for (size_t i = 0; i < blocks_.size(); ++i) {
    const uint64_t end = start + blocks_[i].info.size;
    if (offset < end) {
      *block_start = start;
      return i;
    }
    start = end;
  }
  *block_start = start;
  return blocks_.size();
}

bool FileReader::TryReadView(uint64_t offset, uint64_t max_len, Slice* view,
                             std::shared_ptr<const std::string>* pin) const {
  if (cache_ == nullptr || offset >= size_ || max_len == 0) return false;
  uint64_t block_start = 0;
  const size_t index = BlockIndexOf(offset, &block_start);
  if (index >= blocks_.size()) return false;
  const BlockRef& block = blocks_[index];
  std::shared_ptr<const std::string> cached =
      cache_->Lookup(block.info.id, block.info.generation);
  if (cached == nullptr) return false;
  const uint64_t in_block = offset - block_start;
  const uint64_t len = std::min(max_len, block.info.size - in_block);
  m_read_ops_->Increment();
  m_read_bytes_->Observe(len);
  *view = Slice(cached->data() + in_block, len);
  *pin = std::move(cached);
  return true;
}

void FileReader::Prefetch(uint64_t offset) const {
  if (!prefetch_enabled() || offset >= size_) return;
  uint64_t block_start = 0;
  size_t index = BlockIndexOf(offset, &block_start);
  index = std::max(index, prefetch_next_block_);
  const size_t limit = std::min(
      blocks_.size(), index + static_cast<size_t>(context_.prefetch_depth));
  int scheduled = 0;
  for (; index < limit; ++index) {
    const BlockRef& block = blocks_[index];
    if (cache_->Contains(block.info.id, block.info.generation)) continue;
    // Warm only blocks a foreground read could serve verified: some
    // live, good, uncorrupted replica must exist — otherwise inserting
    // the pristine stored bytes would resurrect data every replica has
    // lost (the PR-2 invariant ReReplicate also preserves).
    const std::vector<MiniHdfs::ReplicaCandidate> candidates =
        fs_->ReadCandidates(block.info, context_.node);
    bool servable = false;
    for (const MiniHdfs::ReplicaCandidate& candidate : candidates) {
      if (!candidate.corrupted) {
        servable = true;
        break;
      }
    }
    if (!servable) {
      m_prefetch_dropped_->Increment();
      continue;
    }
    // The warm task is self-contained (cache + data + expected CRC +
    // counters): it never touches this reader or the namenode, so it may
    // outlive both the reader and the map task that issued it.
    std::shared_ptr<BlockCache> cache = cache_;
    std::shared_ptr<const std::string> data = block.data;
    const uint64_t id = block.info.id;
    const uint64_t generation = block.info.generation;
    const uint32_t crc = block.info.crc;
    Counter* warmed_bytes = m_prefetch_bytes_;
    Counter* dropped = m_prefetch_dropped_;
    context_.prefetch_pool->Submit(
        [cache, data, id, generation, crc, warmed_bytes, dropped] {
          // Same gate as the foreground path: only verified bytes enter
          // the cache.
          if (Crc32(Slice(*data)) != crc) {
            dropped->Increment();
            return;
          }
          cache->Insert(id, generation, data);
          warmed_bytes->Increment(data->size());
        });
    m_prefetch_blocks_->Increment();
    ++scheduled;
  }
  prefetch_next_block_ = std::max(prefetch_next_block_, index);
  if (scheduled > 0) m_prefetch_issued_->Increment();
}

}  // namespace colmr
