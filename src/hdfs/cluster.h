#ifndef COLMR_HDFS_CLUSTER_H_
#define COLMR_HDFS_CLUSTER_H_

#include <cstdint>

namespace colmr {

/// Node identity within the simulated cluster. kAnyNode marks a read
/// context with no placement (e.g. unit tests); such reads count as local.
using NodeId = int;
constexpr NodeId kAnyNode = -1;

/// Shape and cost parameters of the simulated cluster. Defaults mirror the
/// paper's testbed (Section 6.1: 40 worker nodes, 6 map slots and 1 reduce
/// slot per node, Hadoop 0.21 with 3-way replication), with the HDFS block
/// size scaled down so laptop-sized datasets still span many blocks.
struct ClusterConfig {
  int num_nodes = 40;
  int replication = 3;
  int map_slots_per_node = 6;
  int reduce_slots_per_node = 1;

  /// HDFS block size. Paper: 64 MB; scaled default keeps the
  /// blocks-per-dataset ratio realistic for ~100 MB test datasets.
  uint64_t block_size = 4ull << 20;

  /// io.file.buffer.size — granularity of every read against a datanode.
  /// The paper configures 128 KB; this is what creates RCFile's read
  /// amplification when projecting narrow columns.
  uint64_t io_buffer_size = 128 * 1024;

  // ---- I/O cost model (per map slot) ----
  /// Sequential bandwidth of one local SATA disk as seen by one task.
  double disk_bandwidth_mbps = 90.0;
  /// Per-task share of the 1 GbE link for remote (non-local) block reads
  /// (~125 MB/s wire rate divided across the node's 6 map slots).
  double network_bandwidth_mbps = 20.0;
  /// Cost of a disk seek (buffer refill at a non-contiguous offset).
  double seek_latency_ms = 8.0;

  int TotalMapSlots() const { return num_nodes * map_slots_per_node; }
};

/// Byte-level accounting of one task's (or one reader's) traffic against
/// the simulated datanodes. local/remote is decided per block by whether
/// the reading node holds a replica — the quantity the paper's co-location
/// experiment (Section 6.4) manipulates.
struct IoStats {
  uint64_t local_bytes = 0;
  uint64_t remote_bytes = 0;
  uint64_t seeks = 0;
  uint64_t reads = 0;

  // ---- Failure-path accounting (fault injection and recovery) ----
  /// Replica-read attempts that failed (injected transient error or
  /// checksum mismatch) and were retried against another replica.
  uint64_t failover_reads = 0;
  /// Replica reads whose block CRC did not match the namenode's checksum.
  uint64_t checksum_failures = 0;
  /// Injected datanode latency (slow-node faults, read or write side),
  /// charged by the cost model on top of bandwidth and seek terms. The
  /// stall is also slept for real, so it shows up consistently in
  /// JobReport::wall_seconds.
  double stall_seconds = 0;
  /// Block seals that failed under an injected write fault (transient
  /// pipeline error or node death mid-write).
  uint64_t write_faults = 0;

  uint64_t TotalBytes() const { return local_bytes + remote_bytes; }

  void Add(const IoStats& other) {
    local_bytes += other.local_bytes;
    remote_bytes += other.remote_bytes;
    seeks += other.seeks;
    reads += other.reads;
    failover_reads += other.failover_reads;
    checksum_failures += other.checksum_failures;
    stall_seconds += other.stall_seconds;
    write_faults += other.write_faults;
  }
};

}  // namespace colmr

#endif  // COLMR_HDFS_CLUSTER_H_
