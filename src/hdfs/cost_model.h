#ifndef COLMR_HDFS_COST_MODEL_H_
#define COLMR_HDFS_COST_MODEL_H_

#include <vector>

#include "hdfs/cluster.h"

namespace colmr {

/// Resource usage of one task: CPU time actually measured while the task
/// ran, plus the exact I/O it issued against the simulated datanodes.
struct TaskCost {
  double cpu_seconds = 0;
  IoStats io;
};

/// Converts a task's measured CPU and counted I/O into simulated seconds
/// on the paper's cluster. The model is deliberately simple — no
/// CPU/I/O overlap — because the paper's comparisons are dominated by
/// either bytes moved (I/O-bound formats) or deserialization CPU
/// (CPU-bound formats), and a non-overlapping sum preserves both orderings
/// and the crossovers between them.
class CostModel {
 public:
  explicit CostModel(const ClusterConfig& config) : config_(config) {}

  /// Simulated wall-clock seconds for one task.
  double TaskSeconds(const TaskCost& cost) const;

  /// Simulated seconds for the whole map phase: tasks are packed onto
  /// the cluster's map slots wave by wave (longest-processing-time first),
  /// matching how the paper computes per-node map time.
  double MapPhaseSeconds(const std::vector<double>& task_seconds) const;

  const ClusterConfig& config() const { return config_; }

 private:
  ClusterConfig config_;
};

}  // namespace colmr

#endif  // COLMR_HDFS_COST_MODEL_H_
