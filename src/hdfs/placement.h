#ifndef COLMR_HDFS_PLACEMENT_H_
#define COLMR_HDFS_PLACEMENT_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "hdfs/cluster.h"

namespace colmr {

/// Chooses which datanodes receive the replicas of a new block — the HDFS
/// extensibility point (dfs.block.replicator.classname) the paper's
/// ColumnPlacementPolicy plugs into (Section 4.2).
class BlockPlacementPolicy {
 public:
  virtual ~BlockPlacementPolicy() = default;

  /// Returns `replication` distinct node ids for a new block of `path`.
  /// `block_index` is the ordinal of the block within its file.
  virtual std::vector<NodeId> ChooseTargets(const std::string& path,
                                            int block_index, int num_nodes,
                                            int replication) = 0;

  /// Chooses a node to host a new replica of an under-replicated block
  /// (re-replication after a datanode failure — flagged as future work in
  /// the paper and implemented here). `current` holds the surviving
  /// replicas; the result must avoid them and every node in `dead`.
  /// Returns kAnyNode when no eligible node exists.
  virtual NodeId ChooseReplacement(const std::string& path,
                                   const std::vector<NodeId>& current,
                                   int num_nodes,
                                   const std::set<NodeId>& dead);
};

/// HDFS default policy: each block independently gets a random replica
/// set, so the column files of a split end up scattered (paper Fig. 3a).
class DefaultPlacementPolicy : public BlockPlacementPolicy {
 public:
  explicit DefaultPlacementPolicy(uint64_t seed = 42) : rng_(seed) {}

  std::vector<NodeId> ChooseTargets(const std::string& path, int block_index,
                                    int num_nodes, int replication) override;

  NodeId ChooseReplacement(const std::string& path,
                           const std::vector<NodeId>& current, int num_nodes,
                           const std::set<NodeId>& dead) override;

 private:
  Random rng_;
};

/// Extracts the split-directory prefix of a path if it follows the CIF
/// naming convention (".../s<digits>/<file>"), else returns "".
std::string SplitDirectoryOf(const std::string& path);

/// The paper's CPP: all files inside one split-directory share the replica
/// set chosen (by the default policy) for the first block written there,
/// so a map task scheduled on any replica node reads every column locally
/// (Fig. 3b). Paths outside the naming convention fall back to the default
/// policy.
class ColumnPlacementPolicy final : public BlockPlacementPolicy {
 public:
  explicit ColumnPlacementPolicy(uint64_t seed = 42) : fallback_(seed) {}

  std::vector<NodeId> ChooseTargets(const std::string& path, int block_index,
                                    int num_nodes, int replication) override;

  /// Re-replicates all files of a split-directory onto the SAME fresh
  /// node, so co-location survives datanode failures: the cached target
  /// set of the directory is repaired once and every block follows it.
  NodeId ChooseReplacement(const std::string& path,
                           const std::vector<NodeId>& current, int num_nodes,
                           const std::set<NodeId>& dead) override;

 private:
  DefaultPlacementPolicy fallback_;
  std::map<std::string, std::vector<NodeId>> split_dir_targets_;
};

}  // namespace colmr

#endif  // COLMR_HDFS_PLACEMENT_H_
