#ifndef COLMR_WORKLOAD_WEBLOG_H_
#define COLMR_WORKLOAD_WEBLOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "serde/schema.h"
#include "serde/value.h"

namespace colmr {

/// Web-application access-log schema for the consumer-bank scenario in the
/// paper's introduction (90-day log retention reports):
///   record LogEntry { ip: string, ts: long, app: string, url: string,
///                     status: int, bytes: int, referrer: string,
///                     agent: string, params: map<string> }
Schema::Ptr WeblogSchema();

/// Streams access-log records across `num_apps` web applications with
/// Zipf-skewed URL popularity and a small agent-string universe.
class WeblogGenerator {
 public:
  WeblogGenerator(uint64_t seed, int num_apps = 4);

  Value Next();

 private:
  Random rng_;
  Zipf url_picker_;
  int num_apps_;
  std::vector<std::string> urls_;
  std::vector<std::string> agents_;
  int64_t ts_;
};

}  // namespace colmr

#endif  // COLMR_WORKLOAD_WEBLOG_H_
