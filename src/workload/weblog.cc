#include "workload/weblog.h"

namespace colmr {

Schema::Ptr WeblogSchema() {
  return Schema::Record("LogEntry",
                        {{"ip", Schema::String()},
                         {"ts", Schema::Int64()},
                         {"app", Schema::String()},
                         {"url", Schema::String()},
                         {"status", Schema::Int32()},
                         {"bytes", Schema::Int32()},
                         {"referrer", Schema::String()},
                         {"agent", Schema::String()},
                         {"params", Schema::Map(Schema::String())}});
}

namespace {
constexpr int kNumUrls = 500;
}  // namespace

WeblogGenerator::WeblogGenerator(uint64_t seed, int num_apps)
    : rng_(seed),
      url_picker_(kNumUrls, 0.9, seed ^ 0x10C),
      num_apps_(num_apps),
      ts_(1293840000) {
  Random setup(seed ^ 0x715);
  urls_.reserve(kNumUrls);
  for (int i = 0; i < kNumUrls; ++i) {
    urls_.push_back("/" + setup.NextWord(4 + setup.Uniform(6)) + "/" +
                    setup.NextWord(4 + setup.Uniform(8)));
  }
  agents_ = {"Mozilla/5.0 (Windows NT 6.1)", "Mozilla/5.0 (Macintosh)",
             "Mozilla/4.0 (compatible; MSIE 8.0)", "curl/7.21",
             "Java/1.6.0_23"};
}

Value WeblogGenerator::Next() {
  std::string ip = std::to_string(10 + rng_.Uniform(200)) + "." +
                   std::to_string(rng_.Uniform(256)) + "." +
                   std::to_string(rng_.Uniform(256)) + "." +
                   std::to_string(rng_.Uniform(256));
  const int status_roll = static_cast<int>(rng_.Uniform(100));
  const int32_t status = status_roll < 90 ? 200
                         : status_roll < 95 ? 404
                         : status_roll < 98 ? 302
                                            : 500;
  Value::MapEntries params;
  const int n_params = static_cast<int>(rng_.Uniform(4));
  for (int i = 0; i < n_params; ++i) {
    params.emplace_back(rng_.NextWord(4),
                        Value::String(rng_.NextWord(6)));
  }
  return Value::Record({
      Value::String(std::move(ip)),
      Value::Int64(ts_ += static_cast<int64_t>(rng_.Uniform(3))),
      Value::String("app" + std::to_string(rng_.Uniform(num_apps_))),
      Value::String(urls_[url_picker_.Next()]),
      Value::Int32(status),
      Value::Int32(static_cast<int32_t>(rng_.UniformRange(200, 50000))),
      Value::String(urls_[url_picker_.Next()]),
      Value::String(agents_[rng_.Uniform(agents_.size())]),
      Value::Map(std::move(params)),
  });
}

}  // namespace colmr
