#ifndef COLMR_WORKLOAD_CRAWL_H_
#define COLMR_WORKLOAD_CRAWL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "serde/schema.h"
#include "serde/value.h"

namespace colmr {

/// The URLInfo schema of the paper's intranet crawl (Fig. 2):
///   record URLInfo { url: string, srcUrl: string, fetchTime: long,
///                    inlink: array<string>, metadata: map<string>,
///                    annotations: map<string>, content: bytes }
Schema::Ptr CrawlSchema();

/// Substring the Section 6.3 job filters on.
inline constexpr char kCrawlFilterPattern[] = "ibm.com/jp";
/// Metadata map key whose distinct values the job collects.
inline constexpr char kContentTypeKey[] = "content-type";

struct CrawlGeneratorOptions {
  /// Fraction of URLs containing kCrawlFilterPattern (paper: ~6%).
  double jp_selectivity = 0.06;
  /// Content column size range (bytes). The paper's content column holds
  /// "several KB of data for each record" and dominates the row size.
  uint32_t min_content_bytes = 2000;
  uint32_t max_content_bytes = 5000;
  /// Entries in the metadata / annotations maps.
  int metadata_entries = 10;
  /// Words per metadata value (longer values make the map column heavier,
  /// like real HTTP response headers with multi-token values).
  int metadata_value_words = 1;
  int annotation_entries = 5;
  int max_inlinks = 5;
};

/// Deterministic stand-in for the paper's Nutch crawl: page-like content
/// built from a Zipf-skewed vocabulary (so codecs see realistic
/// compressible text), HTTP-response-style metadata maps with keys drawn
/// from a small universe (dictionary-friendly, as the paper observes), and
/// a controllable fraction of `ibm.com/jp` URLs.
class CrawlGenerator {
 public:
  CrawlGenerator(uint64_t seed, const CrawlGeneratorOptions& options);

  Value Next();

 private:
  std::string NextUrl(bool jp);
  std::string NextContent();

  Random rng_;
  Zipf word_picker_;
  CrawlGeneratorOptions options_;
  std::vector<std::string> vocabulary_;
  std::vector<std::string> content_types_;
  int64_t fetch_time_;
};

}  // namespace colmr

#endif  // COLMR_WORKLOAD_CRAWL_H_
