#ifndef COLMR_WORKLOAD_SYNTHETIC_H_
#define COLMR_WORKLOAD_SYNTHETIC_H_

#include <cstdint>

#include "common/random.h"
#include "serde/schema.h"
#include "serde/value.h"

namespace colmr {

// Generators for the paper's synthetic datasets. All are deterministic in
// their seed so experiments and tests are reproducible.

/// Schema of the Section 6.2 microbenchmark dataset: 6 strings, 6 ints,
/// and one map column.
Schema::Ptr MicrobenchSchema();

/// Streams microbenchmark records: strings of length 20–40 over readable
/// ASCII, ints uniform in [1, 10000], and a 10-entry map with 4-char keys
/// and int values — the exact recipe of Section 6.2.
class MicrobenchGenerator {
 public:
  /// hit_fraction: fraction of records whose first string column starts
  /// with kMicrobenchMatchPrefix, for the selectivity sweeps (Fig. 10).
  /// 0 disables the marker entirely.
  explicit MicrobenchGenerator(uint64_t seed, double hit_fraction = 0.0);

  Value Next();

 private:
  Random rng_;
  double hit_fraction_;
};

/// Prefix carried by "hit" records' first string column.
inline constexpr char kMicrobenchMatchPrefix[] = "match-";

/// Schema of the predicate-pushdown benchmark dataset: a monotonically
/// increasing int64 `seq` plus string/int payload columns (str0-2,
/// int0-2). Because `seq` is sorted, its zone maps are tight and a
/// `seq < cutoff` predicate prunes almost exactly (1 - selectivity) of
/// the rowgroups — the clustered-column case the pushdown sweep measures.
Schema::Ptr ZonedSchema();

/// Streams zoned records: seq counts 0, 1, 2, ...; payload strings of
/// length 20-40 and ints uniform in [1, 10000], as in the microbenchmark.
class ZonedGenerator {
 public:
  explicit ZonedGenerator(uint64_t seed);

  Value Next();

 private:
  Random rng_;
  int64_t seq_ = 0;
};

/// Schema with `num_columns` string columns (c0, c1, ...), for the
/// record-width experiment (Fig. 11 / Appendix B.5).
Schema::Ptr WideSchema(int num_columns);

/// Streams wide records: each column a random 30-char string.
class WideGenerator {
 public:
  WideGenerator(uint64_t seed, int num_columns);

  Value Next();

 private:
  Random rng_;
  int num_columns_;
};

}  // namespace colmr

#endif  // COLMR_WORKLOAD_SYNTHETIC_H_
