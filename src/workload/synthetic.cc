#include "workload/synthetic.h"

namespace colmr {

Schema::Ptr MicrobenchSchema() {
  std::vector<Schema::Field> fields;
  for (int i = 0; i < 6; ++i) {
    fields.push_back({"str" + std::to_string(i), Schema::String()});
  }
  for (int i = 0; i < 6; ++i) {
    fields.push_back({"int" + std::to_string(i), Schema::Int32()});
  }
  fields.push_back({"map0", Schema::Map(Schema::Int32())});
  return Schema::Record("Micro", std::move(fields));
}

MicrobenchGenerator::MicrobenchGenerator(uint64_t seed, double hit_fraction)
    : rng_(seed), hit_fraction_(hit_fraction) {}

Value MicrobenchGenerator::Next() {
  std::vector<Value> values;
  values.reserve(13);
  for (int i = 0; i < 6; ++i) {
    std::string s = rng_.NextString(20, 40);
    if (i == 0 && hit_fraction_ > 0 && rng_.NextDouble() < hit_fraction_) {
      s = kMicrobenchMatchPrefix + s;
    }
    values.push_back(Value::String(std::move(s)));
  }
  for (int i = 0; i < 6; ++i) {
    values.push_back(
        Value::Int32(static_cast<int32_t>(rng_.UniformRange(1, 10000))));
  }
  Value::MapEntries entries;
  entries.reserve(10);
  for (int i = 0; i < 10; ++i) {
    entries.emplace_back(
        rng_.NextWord(4),
        Value::Int32(static_cast<int32_t>(rng_.UniformRange(1, 10000))));
  }
  values.push_back(Value::Map(std::move(entries)));
  return Value::Record(std::move(values));
}

Schema::Ptr ZonedSchema() {
  std::vector<Schema::Field> fields;
  fields.push_back({"seq", Schema::Int64()});
  for (int i = 0; i < 3; ++i) {
    fields.push_back({"str" + std::to_string(i), Schema::String()});
  }
  for (int i = 0; i < 3; ++i) {
    fields.push_back({"int" + std::to_string(i), Schema::Int32()});
  }
  return Schema::Record("Zoned", std::move(fields));
}

ZonedGenerator::ZonedGenerator(uint64_t seed) : rng_(seed) {}

Value ZonedGenerator::Next() {
  std::vector<Value> values;
  values.reserve(7);
  values.push_back(Value::Int64(seq_++));
  for (int i = 0; i < 3; ++i) {
    values.push_back(Value::String(rng_.NextString(20, 40)));
  }
  for (int i = 0; i < 3; ++i) {
    values.push_back(
        Value::Int32(static_cast<int32_t>(rng_.UniformRange(1, 10000))));
  }
  return Value::Record(std::move(values));
}

Schema::Ptr WideSchema(int num_columns) {
  std::vector<Schema::Field> fields;
  fields.reserve(num_columns);
  for (int i = 0; i < num_columns; ++i) {
    fields.push_back({"c" + std::to_string(i), Schema::String()});
  }
  return Schema::Record("Wide", std::move(fields));
}

WideGenerator::WideGenerator(uint64_t seed, int num_columns)
    : rng_(seed), num_columns_(num_columns) {}

Value WideGenerator::Next() {
  std::vector<Value> values;
  values.reserve(num_columns_);
  for (int i = 0; i < num_columns_; ++i) {
    values.push_back(Value::String(rng_.NextString(30, 30)));
  }
  return Value::Record(std::move(values));
}

}  // namespace colmr
