#include "workload/crawl.h"

namespace colmr {

Schema::Ptr CrawlSchema() {
  return Schema::Record(
      "URLInfo",
      {{"url", Schema::String()},
       {"srcUrl", Schema::String()},
       {"fetchTime", Schema::Int64()},
       {"inlink", Schema::Array(Schema::String())},
       {"metadata", Schema::Map(Schema::String())},
       {"annotations", Schema::Map(Schema::String())},
       {"content", Schema::Bytes()}});
}

namespace {

constexpr int kVocabularySize = 4096;

const char* const kMetadataKeys[] = {
    "content-type",   "content-length", "server",     "charset",
    "language",       "encoding",       "location",   "last-modified",
    "cache-control",  "etag",           "expires",    "connection",
};
constexpr int kNumMetadataKeys = 12;

const char* const kAnnotationKeys[] = {
    "title", "topic", "rank", "spam-score", "dup-group", "geo", "mime-class",
};
constexpr int kNumAnnotationKeys = 7;

}  // namespace

CrawlGenerator::CrawlGenerator(uint64_t seed,
                               const CrawlGeneratorOptions& options)
    : rng_(seed),
      word_picker_(kVocabularySize, 0.8, seed ^ 0xC0FFEE),
      options_(options),
      fetch_time_(1293840000) {  // 2011-01-01, the paper's load date
  vocabulary_.reserve(kVocabularySize);
  Random vocab_rng(seed ^ 0xBEEF);
  for (int i = 0; i < kVocabularySize; ++i) {
    vocabulary_.push_back(vocab_rng.NextWord(3 + vocab_rng.Uniform(8)));
  }
  content_types_ = {"text/html",      "text/plain",      "application/pdf",
                    "text/xml",       "application/json", "image/png",
                    "application/xhtml+xml"};
}

std::string CrawlGenerator::NextUrl(bool jp) {
  std::string url = "http://";
  if (jp) {
    url += "www.ibm.com/jp/";
  } else {
    url += vocabulary_[rng_.Uniform(kVocabularySize)] + ".com/";
  }
  const int segments = 1 + static_cast<int>(rng_.Uniform(3));
  for (int i = 0; i < segments; ++i) {
    url += vocabulary_[rng_.Uniform(kVocabularySize)];
    url += '/';
  }
  url += vocabulary_[rng_.Uniform(kVocabularySize)] + ".html";
  return url;
}

std::string CrawlGenerator::NextContent() {
  const uint32_t target = static_cast<uint32_t>(rng_.UniformRange(
      options_.min_content_bytes, options_.max_content_bytes));
  std::string content;
  content.reserve(target + 16);
  // Zipf-skewed words: repeated tokens give the codecs page-like
  // compressibility (HTML tags, common words).
  while (content.size() < target) {
    content += "<p>";
    content += vocabulary_[word_picker_.Next()];
    content += ' ';
    content += vocabulary_[word_picker_.Next()];
    content += "</p>";
  }
  return content;
}

Value CrawlGenerator::Next() {
  const bool jp = rng_.NextDouble() < options_.jp_selectivity;
  std::string url = NextUrl(jp);

  std::vector<Value> inlinks;
  const int n_inlinks = static_cast<int>(
      rng_.Uniform(static_cast<uint64_t>(options_.max_inlinks) + 1));
  inlinks.reserve(n_inlinks);
  for (int i = 0; i < n_inlinks; ++i) {
    inlinks.push_back(Value::String(NextUrl(false)));
  }

  Value::MapEntries metadata;
  metadata.reserve(options_.metadata_entries);
  metadata.emplace_back(
      kContentTypeKey,
      Value::String(content_types_[rng_.Uniform(content_types_.size())]));
  for (int i = 1; i < options_.metadata_entries; ++i) {
    std::string value = vocabulary_[word_picker_.Next()];
    for (int w = 1; w < options_.metadata_value_words; ++w) {
      value += ' ';
      value += vocabulary_[word_picker_.Next()];
    }
    metadata.emplace_back(kMetadataKeys[(i) % kNumMetadataKeys],
                          Value::String(std::move(value)));
  }

  Value::MapEntries annotations;
  annotations.reserve(options_.annotation_entries);
  for (int i = 0; i < options_.annotation_entries; ++i) {
    annotations.emplace_back(kAnnotationKeys[i % kNumAnnotationKeys],
                             Value::String(vocabulary_[word_picker_.Next()]));
  }

  return Value::Record({
      Value::String(std::move(url)),
      Value::String(NextUrl(false)),
      Value::Int64(fetch_time_++),
      Value::Array(std::move(inlinks)),
      Value::Map(std::move(metadata)),
      Value::Map(std::move(annotations)),
      Value::Bytes(NextContent()),
  });
}

}  // namespace colmr
