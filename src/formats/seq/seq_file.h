#ifndef COLMR_FORMATS_SEQ_SEQ_FILE_H_
#define COLMR_FORMATS_SEQ_SEQ_FILE_H_

#include <memory>
#include <string>

#include "compress/codec.h"
#include "hdfs/reader.h"
#include "mapreduce/output_format.h"
#include "serde/schema.h"
#include "serde/value.h"

namespace colmr {

// SequenceFile: the standard Hadoop binary row format (the paper's SEQ
// baseline). Layout:
//   header:  magic "SEQ6", length-prefixed schema text, compression mode
//            byte, codec byte, 16-byte sync marker
//   stream:  records / blocks, with a sync escape (0xFFFFFFFF + the sync
//            marker) injected at least every sync_interval bytes so byte-
//            range splits can find a record boundary.
//   record (none/record modes):  varint key_len (0: NullWritable keys),
//            varint value_len, value bytes (record mode: codec-compressed)
//   block (block mode):          sync escape, varint record count, varint
//            compressed payload length, payload = codec(concatenated
//            varint-length-prefixed values)

/// How record values are compressed, mirroring Hadoop's three
/// SequenceFile.CompressionTypes (paper Section 6.3's SEQ variants).
enum class SeqCompression : uint8_t {
  kNone = 0,
  kRecord = 1,
  kBlock = 2,
};

struct SeqWriterOptions {
  SeqCompression compression = SeqCompression::kNone;
  CodecType codec = CodecType::kLzf;
  /// Raw bytes accumulated before a block is flushed (block mode).
  uint64_t block_size = 256 * 1024;
  /// Bytes between sync escapes (none/record modes).
  uint64_t sync_interval = 4096;
};

/// Writes a SEQ dataset directory: `_schema` plus one `part-00000` file.
class SeqWriter final : public DatasetWriter {
 public:
  static Status Open(MiniHdfs* fs, const std::string& path,
                     Schema::Ptr schema, const SeqWriterOptions& options,
                     std::unique_ptr<SeqWriter>* writer);

  Status WriteRecord(const Value& record) override;
  Status Close() override;
  uint64_t record_count() const override { return records_; }

 private:
  SeqWriter(Schema::Ptr schema, SeqWriterOptions options,
            std::unique_ptr<FileWriter> file, std::string sync);

  void WriteSyncEscape();
  Status FlushBlock();

  Schema::Ptr schema_;
  SeqWriterOptions options_;
  std::unique_ptr<FileWriter> file_;
  std::string sync_;
  uint64_t records_ = 0;
  uint64_t bytes_since_sync_ = 0;
  // Block mode accumulation.
  Buffer block_payload_;
  uint64_t block_records_ = 0;
};

/// Scans the records of one SEQ file byte range. Ownership rule (as in
/// Hadoop): a split owns the sync regions whose sync escape starts in
/// [offset, offset + length).
class SeqScanner {
 public:
  static Status Open(MiniHdfs* fs, const std::string& file,
                     const ReadContext& context, uint64_t offset,
                     uint64_t length, std::unique_ptr<SeqScanner>* scanner);

  /// Advances to the next record; false at end of range or error.
  bool Next();
  /// The current decoded record value (valid after Next() == true).
  const Value& value() const { return value_; }
  Status status() const { return status_; }
  const Schema::Ptr& schema() const { return schema_; }

 private:
  SeqScanner() = default;

  Status Init(uint64_t offset, uint64_t length);
  Status ScanToSync(uint64_t from);
  /// Reads one record at the cursor; sets done_ when the range is over.
  Status Advance();

  std::unique_ptr<BufferedReader> input_;
  Schema::Ptr schema_;
  SeqCompression compression_ = SeqCompression::kNone;
  const Codec* codec_ = nullptr;
  std::string sync_;
  uint64_t end_ = 0;
  bool done_ = false;
  Value value_;
  Status status_;
  // Block mode: decompressed payload being iterated.
  Buffer block_;
  Slice block_cursor_;
};

}  // namespace colmr

#endif  // COLMR_FORMATS_SEQ_SEQ_FILE_H_
