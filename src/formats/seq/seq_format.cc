#include "formats/seq/seq_format.h"

#include "mapreduce/job.h"

namespace colmr {

namespace {

class SeqRecordReader final : public RecordReader {
 public:
  explicit SeqRecordReader(std::unique_ptr<SeqScanner> scanner)
      : scanner_(std::move(scanner)),
        record_(scanner_->schema(), Value::Null()) {}

  bool Next() override {
    if (!scanner_->Next()) return false;
    record_ = EagerRecord(scanner_->schema(), scanner_->value());
    return true;
  }

  Record& record() override { return record_; }
  Status status() const override { return scanner_->status(); }

 private:
  std::unique_ptr<SeqScanner> scanner_;
  EagerRecord record_;
};

}  // namespace

Status SeqInputFormat::GetSplits(MiniHdfs* fs, const JobConfig& config,
                                 const ReadContext& /*context*/,
                                 std::vector<InputSplit>* splits) {
  // Planning only touches namenode metadata; no data blocks are read.
  return ComputeFileSplits(fs, config.input_paths, config.split_size, splits);
}

Status SeqInputFormat::CreateRecordReader(
    MiniHdfs* fs, const JobConfig& config, const InputSplit& split,
    const ReadContext& context, std::unique_ptr<RecordReader>* reader) {
  (void)config;
  std::unique_ptr<SeqScanner> scanner;
  COLMR_RETURN_IF_ERROR(SeqScanner::Open(fs, split.paths.at(0), context,
                                         split.offset, split.length,
                                         &scanner));
  reader->reset(new SeqRecordReader(std::move(scanner)));
  return Status::OK();
}

}  // namespace colmr
