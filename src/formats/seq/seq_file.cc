#include "formats/seq/seq_file.h"

#include <cstring>

#include "common/coding.h"
#include "common/hash.h"
#include "common/random.h"
#include "formats/text/text_format.h"
#include "serde/encoding.h"

namespace colmr {

namespace {

constexpr char kMagic[4] = {'S', 'E', 'Q', '6'};
constexpr size_t kSyncSize = 16;
constexpr uint32_t kSyncEscape = 0xFFFFFFFFu;

/// Domain seed for sync-marker derivation. The marker is a pure function
/// of (this constant, the dataset path) through the specified FNV-1a +
/// splitmix64 hash — NOT std::hash, whose implementation-defined result
/// made files written on one platform mismatch goldens from another.
/// SeqTest.SyncMarkerBytesArePinned pins the derived bytes.
constexpr uint64_t kSeqSyncSeed = 0x5345513653594e43ull;  // "SEQ6SYNC"

std::string MakeSyncMarker(uint64_t seed) {
  Random rng(seed);
  std::string sync(kSyncSize, '\0');
  for (size_t i = 0; i < kSyncSize; ++i) {
    // Avoid 0xFF so the escape word cannot occur inside the marker.
    sync[i] = static_cast<char>(rng.Uniform(255));
  }
  return sync;
}

}  // namespace

SeqWriter::SeqWriter(Schema::Ptr schema, SeqWriterOptions options,
                     std::unique_ptr<FileWriter> file, std::string sync)
    : schema_(std::move(schema)),
      options_(options),
      file_(std::move(file)),
      sync_(std::move(sync)) {}

Status SeqWriter::Open(MiniHdfs* fs, const std::string& path,
                       Schema::Ptr schema, const SeqWriterOptions& options,
                       std::unique_ptr<SeqWriter>* writer) {
  if (options.compression != SeqCompression::kNone &&
      GetCodec(options.codec) == nullptr) {
    return Status::InvalidArgument("seq: unknown codec");
  }
  COLMR_RETURN_IF_ERROR(WriteDatasetSchema(fs, path, *schema));
  std::unique_ptr<FileWriter> file;
  COLMR_RETURN_IF_ERROR(fs->Create(path + "/part-00000", &file));

  std::string sync = MakeSyncMarker(HashBytes(path, kSeqSyncSeed));
  Buffer header;
  header.Append(Slice(kMagic, 4));
  PutLengthPrefixed(&header, schema->ToString());
  header.PushBack(static_cast<char>(options.compression));
  header.PushBack(static_cast<char>(options.codec));
  header.Append(sync);
  file->Append(header.AsSlice());

  writer->reset(
      new SeqWriter(std::move(schema), options, std::move(file), sync));
  return Status::OK();
}

void SeqWriter::WriteSyncEscape() {
  Buffer escape;
  PutFixed32(&escape, kSyncEscape);
  escape.Append(sync_);
  file_->Append(escape.AsSlice());
  bytes_since_sync_ = 0;
}

Status SeqWriter::WriteRecord(const Value& record) {
  Buffer encoded;
  COLMR_RETURN_IF_ERROR(EncodeValue(*schema_, record, &encoded));
  ++records_;

  if (options_.compression == SeqCompression::kBlock) {
    PutVarint64(&block_payload_, encoded.size());
    block_payload_.Append(encoded.AsSlice());
    ++block_records_;
    if (block_payload_.size() >= options_.block_size) {
      return FlushBlock();
    }
    return Status::OK();
  }

  Buffer value_bytes;
  if (options_.compression == SeqCompression::kRecord) {
    COLMR_RETURN_IF_ERROR(
        GetCodec(options_.codec)->Compress(encoded.AsSlice(), &value_bytes));
  } else {
    value_bytes = std::move(encoded);
  }

  if (bytes_since_sync_ >= options_.sync_interval) {
    WriteSyncEscape();
  }
  Buffer frame;
  PutVarint64(&frame, 0);  // NullWritable key
  PutVarint64(&frame, value_bytes.size());
  frame.Append(value_bytes.AsSlice());
  file_->Append(frame.AsSlice());
  bytes_since_sync_ += frame.size();
  return Status::OK();
}

Status SeqWriter::FlushBlock() {
  if (block_records_ == 0) return Status::OK();
  WriteSyncEscape();
  Buffer compressed;
  COLMR_RETURN_IF_ERROR(GetCodec(options_.codec)
                            ->Compress(block_payload_.AsSlice(), &compressed));
  Buffer frame;
  PutVarint64(&frame, block_records_);
  PutVarint64(&frame, compressed.size());
  file_->Append(frame.AsSlice());
  file_->Append(compressed.AsSlice());
  block_payload_.Clear();
  block_records_ = 0;
  return Status::OK();
}

Status SeqWriter::Close() {
  if (options_.compression == SeqCompression::kBlock) {
    COLMR_RETURN_IF_ERROR(FlushBlock());
  }
  return file_->Close();
}

// ---- SeqScanner ----

Status SeqScanner::Open(MiniHdfs* fs, const std::string& file,
                        const ReadContext& context, uint64_t offset,
                        uint64_t length,
                        std::unique_ptr<SeqScanner>* scanner) {
  std::unique_ptr<FileReader> raw;
  COLMR_RETURN_IF_ERROR(fs->Open(file, context, &raw));
  auto buffered = std::make_unique<BufferedReader>(
      std::move(raw), fs->config().io_buffer_size);
  std::unique_ptr<SeqScanner> result(new SeqScanner());
  result->input_ = std::move(buffered);
  COLMR_RETURN_IF_ERROR(result->Init(offset, length));
  *scanner = std::move(result);
  return Status::OK();
}

Status SeqScanner::Init(uint64_t offset, uint64_t length) {
  end_ = offset + length;
  // Header.
  Slice view;
  COLMR_RETURN_IF_ERROR(input_->Peek(4, &view));
  if (view.size() < 4 || memcmp(view.data(), kMagic, 4) != 0) {
    return Status::Corruption("seq: bad magic");
  }
  input_->Consume(4);
  uint64_t schema_len;
  COLMR_RETURN_IF_ERROR(input_->ReadVarint64(&schema_len));
  std::string schema_text;
  COLMR_RETURN_IF_ERROR(input_->ReadBytes(schema_len, &schema_text));
  COLMR_RETURN_IF_ERROR(Schema::Parse(schema_text, &schema_));
  std::string mode_bytes;
  COLMR_RETURN_IF_ERROR(input_->ReadBytes(2, &mode_bytes));
  compression_ = static_cast<SeqCompression>(mode_bytes[0]);
  codec_ = GetCodec(static_cast<CodecType>(mode_bytes[1]));
  if (codec_ == nullptr) return Status::Corruption("seq: unknown codec");
  COLMR_RETURN_IF_ERROR(input_->ReadBytes(kSyncSize, &sync_));
  if (sync_.size() != kSyncSize) return Status::Corruption("seq: short header");

  const uint64_t header_end = input_->position();
  if (offset > header_end) {
    COLMR_RETURN_IF_ERROR(ScanToSync(offset));
  }
  // Block mode positions at its first sync even for the first split.
  return Status::OK();
}

Status SeqScanner::ScanToSync(uint64_t from) {
  COLMR_RETURN_IF_ERROR(input_->Seek(from));
  // Search for the 20-byte escape+sync pattern; keep a 19-byte overlap
  // across Peek windows so matches spanning a boundary are found.
  std::string pattern;
  {
    Buffer b;
    PutFixed32(&b, kSyncEscape);
    b.Append(sync_);
    pattern = b.TakeString();
  }
  for (;;) {
    Slice view;
    COLMR_RETURN_IF_ERROR(input_->Peek(4096, &view));
    if (view.size() < pattern.size()) {
      done_ = true;  // no further sync: nothing owned by this split
      return Status::OK();
    }
    for (size_t i = 0; i + pattern.size() <= view.size(); ++i) {
      if (memcmp(view.data() + i, pattern.data(), pattern.size()) == 0) {
        const uint64_t sync_pos = input_->position() + i;
        if (sync_pos >= end_) {
          done_ = true;  // first sync at/after our end: owned by next split
          return Status::OK();
        }
        // Position at the escape itself; Advance() consumes and validates
        // it (and, in block mode, reads the block that follows).
        input_->Consume(i);
        return Status::OK();
      }
    }
    input_->Consume(view.size() - pattern.size() + 1);
  }
}

bool SeqScanner::Next() {
  if (done_ || !status_.ok()) return false;
  status_ = Advance();
  if (!status_.ok()) return false;
  return !done_;
}

Status SeqScanner::Advance() {
  // Block mode: drain the current decompressed block first.
  if (compression_ == SeqCompression::kBlock && !block_cursor_.empty()) {
    Slice record_bytes;
    COLMR_RETURN_IF_ERROR(GetLengthPrefixed(&block_cursor_, &record_bytes));
    return DecodeValue(*schema_, &record_bytes, &value_);
  }

  for (;;) {
    if (input_->AtEnd()) {
      done_ = true;
      return Status::OK();
    }
    // Sync escape?
    Slice view;
    COLMR_RETURN_IF_ERROR(input_->Peek(4, &view));
    uint32_t word = 0;
    if (view.size() >= 4) memcpy(&word, view.data(), 4);
    if (view.size() >= 4 && word == kSyncEscape) {
      const uint64_t sync_pos = input_->position();
      if (sync_pos >= end_) {
        done_ = true;  // region beyond our range: next split's records
        return Status::OK();
      }
      COLMR_RETURN_IF_ERROR(input_->Peek(4 + kSyncSize, &view));
      if (view.size() < 4 + kSyncSize ||
          memcmp(view.data() + 4, sync_.data(), kSyncSize) != 0) {
        return Status::Corruption("seq: bad sync marker");
      }
      input_->Consume(4 + kSyncSize);
      if (compression_ == SeqCompression::kBlock) {
        uint64_t n_records, compressed_len;
        COLMR_RETURN_IF_ERROR(input_->ReadVarint64(&n_records));
        COLMR_RETURN_IF_ERROR(input_->ReadVarint64(&compressed_len));
        Slice compressed;
        COLMR_RETURN_IF_ERROR(input_->Peek(compressed_len, &compressed));
        if (compressed.size() < compressed_len) {
          return Status::Corruption("seq: truncated block");
        }
        block_.Clear();
        COLMR_RETURN_IF_ERROR(
            codec_->Decompress(compressed.Prefix(compressed_len), &block_));
        input_->Consume(compressed_len);
        block_cursor_ = block_.AsSlice();
        Slice record_bytes;
        COLMR_RETURN_IF_ERROR(
            GetLengthPrefixed(&block_cursor_, &record_bytes));
        return DecodeValue(*schema_, &record_bytes, &value_);
      }
      continue;  // none/record mode: fall through to the record after sync
    }

    if (compression_ == SeqCompression::kBlock) {
      return Status::Corruption("seq: expected sync before block");
    }

    // Plain / record-compressed record.
    uint64_t key_len, value_len;
    COLMR_RETURN_IF_ERROR(input_->ReadVarint64(&key_len));
    if (key_len != 0) return Status::Corruption("seq: non-null key");
    COLMR_RETURN_IF_ERROR(input_->ReadVarint64(&value_len));
    Slice value_bytes;
    COLMR_RETURN_IF_ERROR(input_->Peek(value_len, &value_bytes));
    if (value_bytes.size() < value_len) {
      return Status::Corruption("seq: truncated record");
    }
    value_bytes = value_bytes.Prefix(value_len);
    if (compression_ == SeqCompression::kRecord) {
      Buffer raw;
      COLMR_RETURN_IF_ERROR(codec_->Decompress(value_bytes, &raw));
      input_->Consume(value_len);
      Slice raw_slice = raw.AsSlice();
      return DecodeValue(*schema_, &raw_slice, &value_);
    }
    Status s = DecodeValue(*schema_, &value_bytes, &value_);
    input_->Consume(value_len);
    return s;
  }
}

}  // namespace colmr
