#ifndef COLMR_FORMATS_SEQ_SEQ_FORMAT_H_
#define COLMR_FORMATS_SEQ_SEQ_FORMAT_H_

#include <memory>

#include "formats/seq/seq_file.h"
#include "mapreduce/input_format.h"

namespace colmr {

/// InputFormat over SEQ dataset directories (the paper's
/// SequenceFileInputFormat). Splits are byte ranges snapped to sync
/// markers by SeqScanner.
class SeqInputFormat final : public InputFormat {
 public:
  std::string name() const override { return "seq"; }
  using InputFormat::GetSplits;
  Status GetSplits(MiniHdfs* fs, const JobConfig& config,
                   const ReadContext& context,
                   std::vector<InputSplit>* splits) override;
  Status CreateRecordReader(MiniHdfs* fs, const JobConfig& config,
                            const InputSplit& split,
                            const ReadContext& context,
                            std::unique_ptr<RecordReader>* reader) override;
};

}  // namespace colmr

#endif  // COLMR_FORMATS_SEQ_SEQ_FORMAT_H_
