#include "formats/detect.h"

#include <cctype>

#include "cif/cif.h"
#include "formats/rcfile/rcfile_format.h"
#include "formats/seq/seq_format.h"
#include "formats/text/text_format.h"

namespace colmr {

Status DetectInputFormat(MiniHdfs* fs, const std::string& dataset_path,
                         std::shared_ptr<InputFormat>* format,
                         std::string* format_name) {
  std::vector<std::string> children;
  COLMR_RETURN_IF_ERROR(fs->ListDir(dataset_path, &children));

  // CIF datasets are directories of s<digits> split-directories.
  for (const std::string& child : children) {
    if (child.size() >= 2 && child[0] == 's' &&
        std::isdigit(static_cast<unsigned char>(child[1])) &&
        fs->Exists(dataset_path + "/" + child + "/_schema")) {
      *format = std::make_shared<ColumnInputFormat>();
      if (format_name != nullptr) *format_name = "cif";
      return Status::OK();
    }
  }

  // Row formats: sniff the first data file's magic.
  for (const std::string& child : children) {
    if (!child.empty() && child[0] == '_') continue;
    const std::string file = dataset_path + "/" + child;
    if (!fs->Exists(file)) continue;
    std::unique_ptr<FileReader> reader;
    COLMR_RETURN_IF_ERROR(fs->Open(file, ReadContext{}, &reader));
    std::string magic;
    COLMR_RETURN_IF_ERROR(reader->Read(0, 4, &magic));
    if (magic == "SEQ6") {
      *format = std::make_shared<SeqInputFormat>();
      if (format_name != nullptr) *format_name = "seq";
    } else if (magic == "RCF1") {
      *format = std::make_shared<RcFileInputFormat>();
      if (format_name != nullptr) *format_name = "rcfile";
    } else {
      *format = std::make_shared<TextInputFormat>();
      if (format_name != nullptr) *format_name = "txt";
    }
    return Status::OK();
  }
  return Status::NotFound("no data files under " + dataset_path);
}

}  // namespace colmr
