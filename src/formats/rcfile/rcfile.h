#ifndef COLMR_FORMATS_RCFILE_RCFILE_H_
#define COLMR_FORMATS_RCFILE_RCFILE_H_

#include <memory>
#include <string>
#include <vector>

#include "compress/codec.h"
#include "hdfs/reader.h"
#include "mapreduce/output_format.h"
#include "serde/schema.h"
#include "serde/value.h"

namespace colmr {

// RCFile (He et al., ICDE 2011) — the PAX-style baseline the paper
// compares CIF against (Section 4.1). Every HDFS block is packed with
// row-groups; within a row-group the data region is laid out column by
// column:
//   header:     magic "RCF1", length-prefixed schema text, codec byte,
//               16-byte sync marker
//   row-group:  sync escape (0xFFFFFFFF + sync), metadata region, data
//               region
//   metadata:   varint row count, varint column count, per column
//               {varint stored length, varint raw length}, then per column
//               the varint encoded lengths of each of its values
//   data:       column 0 bytes, column 1 bytes, ... (each optionally
//               codec-compressed as one unit)
//
// A projected scan must still interpret every row-group's metadata and —
// because reads happen at io.file.buffer.size granularity — fetches far
// more than the projected column bytes. Both overheads are the ones the
// paper measures in Figures 7, 9 and 11.

struct RcFileWriterOptions {
  /// Raw bytes accumulated before a row-group is flushed. Paper default
  /// 4 MB (Section 6.2); Fig. 9 sweeps 1/4/16 MB.
  uint64_t row_group_size = 4ull << 20;
  CodecType codec = CodecType::kNone;
};

/// Writes an RCFile dataset directory: `_schema` + `part-00000`.
class RcFileWriter final : public DatasetWriter {
 public:
  static Status Open(MiniHdfs* fs, const std::string& path,
                     Schema::Ptr schema, const RcFileWriterOptions& options,
                     std::unique_ptr<RcFileWriter>* writer);

  Status WriteRecord(const Value& record) override;
  Status Close() override;
  uint64_t record_count() const override { return records_; }

 private:
  RcFileWriter(Schema::Ptr schema, RcFileWriterOptions options,
               std::unique_ptr<FileWriter> file, std::string sync);

  Status FlushRowGroup();

  Schema::Ptr schema_;
  RcFileWriterOptions options_;
  std::unique_ptr<FileWriter> file_;
  std::string sync_;
  uint64_t records_ = 0;

  std::vector<Buffer> column_data_;
  std::vector<std::vector<uint32_t>> value_lengths_;
  uint64_t group_rows_ = 0;
  uint64_t group_raw_bytes_ = 0;
};

/// Scans one RCFile byte range, materializing only the projected columns
/// (others are Null in the produced record). Row-groups are owned by the
/// split whose range contains their sync escape.
class RcFileScanner {
 public:
  /// projection: indices of columns to materialize; empty = all.
  static Status Open(MiniHdfs* fs, const std::string& file,
                     const ReadContext& context, uint64_t offset,
                     uint64_t length, std::vector<int> projection,
                     std::unique_ptr<RcFileScanner>* scanner);

  bool Next();
  const Value& record_value() const { return value_; }
  Status status() const { return status_; }
  const Schema::Ptr& schema() const { return schema_; }

 private:
  RcFileScanner() = default;

  Status Init(uint64_t offset, uint64_t length);
  Status ScanToSync(uint64_t from);
  Status ReadRowGroup();
  Status Advance();

  std::unique_ptr<BufferedReader> input_;
  Schema::Ptr schema_;
  const Codec* codec_ = nullptr;
  std::string sync_;
  uint64_t end_ = 0;
  bool done_ = false;
  std::vector<int> projection_;  // sorted column indices
  Status status_;
  Value value_;

  // Current row-group state.
  uint64_t group_rows_ = 0;
  uint64_t group_row_cursor_ = 0;
  std::vector<Buffer> column_bytes_;   // decompressed, projected only
  std::vector<Slice> column_cursors_;  // per projected column
};

}  // namespace colmr

#endif  // COLMR_FORMATS_RCFILE_RCFILE_H_
