#include "formats/rcfile/rcfile.h"

#include <algorithm>
#include <cstring>

#include "common/coding.h"
#include "common/hash.h"
#include "common/random.h"
#include "formats/text/text_format.h"
#include "serde/encoding.h"

namespace colmr {

namespace {

constexpr char kMagic[4] = {'R', 'C', 'F', '1'};
constexpr size_t kSyncSize = 16;
constexpr uint32_t kSyncEscape = 0xFFFFFFFFu;

/// Domain seed for sync-marker derivation: a specified hash of the path
/// (common/hash.h), not std::hash — the marker bytes must be identical on
/// every platform/stdlib. RcFileTest.SyncMarkerBytesArePinned pins them.
constexpr uint64_t kRcSyncSeed = 0x5243463153594e43ull;  // "RCF1SYNC"

std::string MakeSyncMarker(uint64_t seed) {
  Random rng(seed);
  std::string sync(kSyncSize, '\0');
  for (size_t i = 0; i < kSyncSize; ++i) {
    sync[i] = static_cast<char>(rng.Uniform(255));
  }
  return sync;
}

}  // namespace

RcFileWriter::RcFileWriter(Schema::Ptr schema, RcFileWriterOptions options,
                           std::unique_ptr<FileWriter> file, std::string sync)
    : schema_(std::move(schema)),
      options_(options),
      file_(std::move(file)),
      sync_(std::move(sync)),
      column_data_(schema_->fields().size()),
      value_lengths_(schema_->fields().size()) {}

Status RcFileWriter::Open(MiniHdfs* fs, const std::string& path,
                          Schema::Ptr schema,
                          const RcFileWriterOptions& options,
                          std::unique_ptr<RcFileWriter>* writer) {
  if (schema->kind() != TypeKind::kRecord) {
    return Status::InvalidArgument("rcfile: schema must be a record");
  }
  if (GetCodec(options.codec) == nullptr) {
    return Status::InvalidArgument("rcfile: unknown codec");
  }
  COLMR_RETURN_IF_ERROR(WriteDatasetSchema(fs, path, *schema));
  std::unique_ptr<FileWriter> file;
  COLMR_RETURN_IF_ERROR(fs->Create(path + "/part-00000", &file));

  std::string sync = MakeSyncMarker(HashBytes(path, kRcSyncSeed));
  Buffer header;
  header.Append(Slice(kMagic, 4));
  PutLengthPrefixed(&header, schema->ToString());
  header.PushBack(static_cast<char>(options.codec));
  header.Append(sync);
  file->Append(header.AsSlice());

  writer->reset(
      new RcFileWriter(std::move(schema), options, std::move(file), sync));
  return Status::OK();
}

Status RcFileWriter::WriteRecord(const Value& record) {
  const auto& fields = schema_->fields();
  const auto& values = record.elements();
  if (values.size() != fields.size()) {
    return Status::InvalidArgument("rcfile: record arity mismatch");
  }
  for (size_t c = 0; c < fields.size(); ++c) {
    const size_t before = column_data_[c].size();
    COLMR_RETURN_IF_ERROR(
        EncodeValue(*fields[c].type, values[c], &column_data_[c]));
    const size_t len = column_data_[c].size() - before;
    value_lengths_[c].push_back(static_cast<uint32_t>(len));
    group_raw_bytes_ += len;
  }
  ++group_rows_;
  ++records_;
  if (group_raw_bytes_ >= options_.row_group_size) {
    return FlushRowGroup();
  }
  return Status::OK();
}

Status RcFileWriter::FlushRowGroup() {
  if (group_rows_ == 0) return Status::OK();
  const size_t n_cols = column_data_.size();
  const Codec* codec = GetCodec(options_.codec);

  // Compress each column region as one unit.
  std::vector<uint64_t> raw_lengths(n_cols);
  std::vector<Buffer> stored(n_cols);
  for (size_t c = 0; c < n_cols; ++c) {
    raw_lengths[c] = column_data_[c].size();
    if (options_.codec == CodecType::kNone) {
      stored[c] = std::move(column_data_[c]);
    } else {
      COLMR_RETURN_IF_ERROR(
          codec->Compress(column_data_[c].AsSlice(), &stored[c]));
    }
  }

  Buffer out;
  PutFixed32(&out, kSyncEscape);
  out.Append(sync_);
  // Metadata region.
  PutVarint64(&out, group_rows_);
  PutVarint64(&out, n_cols);
  for (size_t c = 0; c < n_cols; ++c) {
    PutVarint64(&out, stored[c].size());
    PutVarint64(&out, raw_lengths[c]);
  }
  for (size_t c = 0; c < n_cols; ++c) {
    for (uint32_t len : value_lengths_[c]) {
      PutVarint64(&out, len);
    }
  }
  // Data region.
  for (size_t c = 0; c < n_cols; ++c) {
    out.Append(stored[c].AsSlice());
  }
  file_->Append(out.AsSlice());

  for (size_t c = 0; c < n_cols; ++c) {
    column_data_[c].Clear();
    value_lengths_[c].clear();
  }
  group_rows_ = 0;
  group_raw_bytes_ = 0;
  return Status::OK();
}

Status RcFileWriter::Close() {
  COLMR_RETURN_IF_ERROR(FlushRowGroup());
  return file_->Close();
}

// ---- RcFileScanner ----

Status RcFileScanner::Open(MiniHdfs* fs, const std::string& file,
                           const ReadContext& context, uint64_t offset,
                           uint64_t length, std::vector<int> projection,
                           std::unique_ptr<RcFileScanner>* scanner) {
  std::unique_ptr<FileReader> raw;
  COLMR_RETURN_IF_ERROR(fs->Open(file, context, &raw));
  auto buffered = std::make_unique<BufferedReader>(
      std::move(raw), fs->config().io_buffer_size);
  std::unique_ptr<RcFileScanner> result(new RcFileScanner());
  result->input_ = std::move(buffered);
  std::sort(projection.begin(), projection.end());
  result->projection_ = std::move(projection);
  COLMR_RETURN_IF_ERROR(result->Init(offset, length));
  *scanner = std::move(result);
  return Status::OK();
}

Status RcFileScanner::Init(uint64_t offset, uint64_t length) {
  end_ = offset + length;
  Slice view;
  COLMR_RETURN_IF_ERROR(input_->Peek(4, &view));
  if (view.size() < 4 || memcmp(view.data(), kMagic, 4) != 0) {
    return Status::Corruption("rcfile: bad magic");
  }
  input_->Consume(4);
  uint64_t schema_len;
  COLMR_RETURN_IF_ERROR(input_->ReadVarint64(&schema_len));
  std::string schema_text;
  COLMR_RETURN_IF_ERROR(input_->ReadBytes(schema_len, &schema_text));
  COLMR_RETURN_IF_ERROR(Schema::Parse(schema_text, &schema_));
  std::string codec_byte;
  COLMR_RETURN_IF_ERROR(input_->ReadBytes(1, &codec_byte));
  codec_ = GetCodec(static_cast<CodecType>(codec_byte[0]));
  if (codec_ == nullptr) return Status::Corruption("rcfile: unknown codec");
  COLMR_RETURN_IF_ERROR(input_->ReadBytes(kSyncSize, &sync_));

  if (projection_.empty()) {
    for (size_t c = 0; c < schema_->fields().size(); ++c) {
      projection_.push_back(static_cast<int>(c));
    }
  }
  for (int c : projection_) {
    if (c < 0 || c >= static_cast<int>(schema_->fields().size())) {
      return Status::InvalidArgument("rcfile: projected column out of range");
    }
  }

  if (offset > input_->position()) {
    COLMR_RETURN_IF_ERROR(ScanToSync(offset));
  }
  return Status::OK();
}

Status RcFileScanner::ScanToSync(uint64_t from) {
  COLMR_RETURN_IF_ERROR(input_->Seek(from));
  std::string pattern;
  {
    Buffer b;
    PutFixed32(&b, kSyncEscape);
    b.Append(sync_);
    pattern = b.TakeString();
  }
  for (;;) {
    Slice view;
    COLMR_RETURN_IF_ERROR(input_->Peek(4096, &view));
    if (view.size() < pattern.size()) {
      done_ = true;
      return Status::OK();
    }
    for (size_t i = 0; i + pattern.size() <= view.size(); ++i) {
      if (memcmp(view.data() + i, pattern.data(), pattern.size()) == 0) {
        const uint64_t sync_pos = input_->position() + i;
        if (sync_pos >= end_) {
          done_ = true;
          return Status::OK();
        }
        // Position at the escape itself; ReadRowGroup consumes it.
        input_->Consume(i);
        return Status::OK();
      }
    }
    input_->Consume(view.size() - pattern.size() + 1);
  }
}

Status RcFileScanner::ReadRowGroup() {
  // At the sync escape of a row-group (or EOF / next split's group).
  if (input_->AtEnd()) {
    done_ = true;
    return Status::OK();
  }
  const uint64_t sync_pos = input_->position();
  if (sync_pos >= end_) {
    done_ = true;
    return Status::OK();
  }
  Slice view;
  COLMR_RETURN_IF_ERROR(input_->Peek(4 + kSyncSize, &view));
  uint32_t word = 0;
  if (view.size() >= 4) memcpy(&word, view.data(), 4);
  if (view.size() < 4 + kSyncSize || word != kSyncEscape ||
      memcmp(view.data() + 4, sync_.data(), kSyncSize) != 0) {
    return Status::Corruption("rcfile: expected row-group sync");
  }
  input_->Consume(4 + kSyncSize);

  // Metadata region — interpreted for every row-group regardless of the
  // projection (the per-group CPU overhead the paper calls out).
  uint64_t n_rows, n_cols;
  COLMR_RETURN_IF_ERROR(input_->ReadVarint64(&n_rows));
  COLMR_RETURN_IF_ERROR(input_->ReadVarint64(&n_cols));
  if (n_cols != schema_->fields().size()) {
    return Status::Corruption("rcfile: column count mismatch");
  }
  std::vector<uint64_t> stored_len(n_cols), raw_len(n_cols);
  for (size_t c = 0; c < n_cols; ++c) {
    COLMR_RETURN_IF_ERROR(input_->ReadVarint64(&stored_len[c]));
    COLMR_RETURN_IF_ERROR(input_->ReadVarint64(&raw_len[c]));
  }
  for (size_t c = 0; c < n_cols; ++c) {
    for (uint64_t r = 0; r < n_rows; ++r) {
      uint64_t len;
      COLMR_RETURN_IF_ERROR(input_->ReadVarint64(&len));
    }
  }

  // Data region: fetch only the projected columns, seeking over the rest.
  const uint64_t data_start = input_->position();
  std::vector<uint64_t> column_offsets(n_cols + 1);
  column_offsets[0] = data_start;
  for (size_t c = 0; c < n_cols; ++c) {
    column_offsets[c + 1] = column_offsets[c] + stored_len[c];
  }

  column_bytes_.assign(projection_.size(), Buffer());
  column_cursors_.assign(projection_.size(), Slice());
  for (size_t p = 0; p < projection_.size(); ++p) {
    const int c = projection_[p];
    COLMR_RETURN_IF_ERROR(input_->Seek(column_offsets[c]));
    Slice stored;
    COLMR_RETURN_IF_ERROR(input_->Peek(stored_len[c], &stored));
    if (stored.size() < stored_len[c]) {
      return Status::Corruption("rcfile: truncated column region");
    }
    stored = stored.Prefix(stored_len[c]);
    if (codec_->type() == CodecType::kNone) {
      column_bytes_[p].Append(stored);
    } else {
      COLMR_RETURN_IF_ERROR(codec_->Decompress(stored, &column_bytes_[p]));
    }
    input_->Consume(stored_len[c]);
  }
  for (size_t p = 0; p < projection_.size(); ++p) {
    column_cursors_[p] = column_bytes_[p].AsSlice();
  }
  // Leave the stream at the start of the next row-group.
  COLMR_RETURN_IF_ERROR(input_->Seek(column_offsets[n_cols]));

  group_rows_ = n_rows;
  group_row_cursor_ = 0;
  return Status::OK();
}

Status RcFileScanner::Advance() {
  while (group_row_cursor_ >= group_rows_) {
    COLMR_RETURN_IF_ERROR(ReadRowGroup());
    if (done_) return Status::OK();
  }
  std::vector<Value> values(schema_->fields().size());
  for (size_t p = 0; p < projection_.size(); ++p) {
    const int c = projection_[p];
    COLMR_RETURN_IF_ERROR(DecodeValue(*schema_->fields()[c].type,
                                      &column_cursors_[p], &values[c]));
  }
  value_ = Value::Record(std::move(values));
  ++group_row_cursor_;
  return Status::OK();
}

bool RcFileScanner::Next() {
  if (done_ || !status_.ok()) return false;
  status_ = Advance();
  return status_.ok() && !done_;
}

}  // namespace colmr
