#ifndef COLMR_FORMATS_RCFILE_RCFILE_FORMAT_H_
#define COLMR_FORMATS_RCFILE_RCFILE_FORMAT_H_

#include <memory>

#include "formats/rcfile/rcfile.h"
#include "mapreduce/input_format.h"

namespace colmr {

/// InputFormat over RCFile dataset directories. Honors
/// JobConfig::projection (column names), which RCFile can use for I/O
/// elimination within row-groups — the partial pushdown the paper
/// contrasts with CIF's whole-file elimination.
class RcFileInputFormat final : public InputFormat {
 public:
  std::string name() const override { return "rcfile"; }
  using InputFormat::GetSplits;
  Status GetSplits(MiniHdfs* fs, const JobConfig& config,
                   const ReadContext& context,
                   std::vector<InputSplit>* splits) override;
  Status CreateRecordReader(MiniHdfs* fs, const JobConfig& config,
                            const InputSplit& split,
                            const ReadContext& context,
                            std::unique_ptr<RecordReader>* reader) override;
};

}  // namespace colmr

#endif  // COLMR_FORMATS_RCFILE_RCFILE_FORMAT_H_
