#include "formats/rcfile/rcfile_format.h"

#include "formats/text/text_format.h"
#include "mapreduce/job.h"

namespace colmr {

namespace {

class RcFileRecordReader final : public RecordReader {
 public:
  explicit RcFileRecordReader(std::unique_ptr<RcFileScanner> scanner)
      : scanner_(std::move(scanner)),
        record_(scanner_->schema(), Value::Null()) {}

  bool Next() override {
    if (!scanner_->Next()) return false;
    record_ = EagerRecord(scanner_->schema(), scanner_->record_value());
    return true;
  }

  Record& record() override { return record_; }
  Status status() const override { return scanner_->status(); }

 private:
  std::unique_ptr<RcFileScanner> scanner_;
  EagerRecord record_;
};

}  // namespace

Status RcFileInputFormat::GetSplits(MiniHdfs* fs, const JobConfig& config,
                                    const ReadContext& /*context*/,
                                    std::vector<InputSplit>* splits) {
  // Planning only touches namenode metadata; no data blocks are read.
  return ComputeFileSplits(fs, config.input_paths, config.split_size, splits);
}

Status RcFileInputFormat::CreateRecordReader(
    MiniHdfs* fs, const JobConfig& config, const InputSplit& split,
    const ReadContext& context, std::unique_ptr<RecordReader>* reader) {
  const std::string& file = split.paths.at(0);
  const std::string dir = file.substr(0, file.rfind('/'));
  Schema::Ptr schema;
  COLMR_RETURN_IF_ERROR(ReadDatasetSchema(fs, dir, &schema, context));

  std::vector<int> projection;
  for (const std::string& name : config.projection) {
    const int index = schema->FieldIndex(name);
    if (index < 0) {
      return Status::InvalidArgument("rcfile: unknown projected column " +
                                     name);
    }
    projection.push_back(index);
  }

  std::unique_ptr<RcFileScanner> scanner;
  COLMR_RETURN_IF_ERROR(RcFileScanner::Open(fs, file, context, split.offset,
                                            split.length,
                                            std::move(projection), &scanner));
  reader->reset(new RcFileRecordReader(std::move(scanner)));
  return Status::OK();
}

}  // namespace colmr
