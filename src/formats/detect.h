#ifndef COLMR_FORMATS_DETECT_H_
#define COLMR_FORMATS_DETECT_H_

#include <memory>
#include <string>

#include "hdfs/mini_hdfs.h"
#include "mapreduce/input_format.h"

namespace colmr {

/// Infers the storage format of a dataset directory and returns a matching
/// InputFormat: CIF when the directory holds split-directories (s0, …),
/// otherwise SEQ / RCFile by the part file's magic bytes, otherwise TXT.
/// `format_name` (optional) receives "cif" / "seq" / "rcfile" / "txt".
Status DetectInputFormat(MiniHdfs* fs, const std::string& dataset_path,
                         std::shared_ptr<InputFormat>* format,
                         std::string* format_name);

}  // namespace colmr

#endif  // COLMR_FORMATS_DETECT_H_
