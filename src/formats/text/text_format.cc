#include "formats/text/text_format.h"

#include <cctype>
#include <cstdlib>
#include <cstring>

#include "mapreduce/job.h"

namespace colmr {

std::string FormatTextRecord(const Schema& schema, const Value& record) {
  std::string line;
  const auto& values = record.elements();
  for (size_t i = 0; i < schema.fields().size() && i < values.size(); ++i) {
    if (i > 0) line += '\t';
    // Value::ToString escapes tabs and newlines inside strings, so the
    // field and record delimiters stay unambiguous.
    line += values[i].ToString();
  }
  return line;
}

namespace {

/// Recursive-descent parser for the Value::ToString grammar.
class TextValueParser {
 public:
  explicit TextValueParser(Slice input) : input_(input) {}

  Status ParseValue(const Schema& schema, Value* out) {
    switch (schema.kind()) {
      case TypeKind::kNull:
        COLMR_RETURN_IF_ERROR(ExpectLiteral("null"));
        *out = Value::Null();
        return Status::OK();
      case TypeKind::kBool: {
        if (TryLiteral("true")) {
          *out = Value::Bool(true);
        } else if (TryLiteral("false")) {
          *out = Value::Bool(false);
        } else {
          return Status::Corruption("txt: expected bool");
        }
        return Status::OK();
      }
      case TypeKind::kInt32:
      case TypeKind::kInt64: {
        int64_t v = 0;
        COLMR_RETURN_IF_ERROR(ParseInteger(&v));
        *out = schema.kind() == TypeKind::kInt32
                   ? Value::Int32(static_cast<int32_t>(v))
                   : Value::Int64(v);
        return Status::OK();
      }
      case TypeKind::kDouble: {
        // Collect the numeric token, then convert.
        size_t len = 0;
        while (len < input_.size() &&
               (std::isdigit(static_cast<unsigned char>(input_[len])) ||
                input_[len] == '-' || input_[len] == '+' ||
                input_[len] == '.' || input_[len] == 'e' ||
                input_[len] == 'E')) {
          ++len;
        }
        if (len == 0) return Status::Corruption("txt: expected double");
        const std::string token(input_.data(), len);
        input_.RemovePrefix(len);
        *out = Value::Double(std::strtod(token.c_str(), nullptr));
        return Status::OK();
      }
      case TypeKind::kString:
      case TypeKind::kBytes: {
        std::string s;
        COLMR_RETURN_IF_ERROR(ParseQuoted(&s));
        *out = schema.kind() == TypeKind::kString
                   ? Value::String(std::move(s))
                   : Value::Bytes(std::move(s));
        return Status::OK();
      }
      case TypeKind::kArray:
      case TypeKind::kRecord: {
        COLMR_RETURN_IF_ERROR(ExpectChar('['));
        std::vector<Value> elems;
        if (!TryChar(']')) {
          size_t field_index = 0;
          for (;;) {
            const Schema& element_schema =
                schema.kind() == TypeKind::kArray
                    ? *schema.element()
                    : *schema.fields()[field_index].type;
            Value v;
            COLMR_RETURN_IF_ERROR(ParseValue(element_schema, &v));
            elems.push_back(std::move(v));
            ++field_index;
            if (TryChar(']')) break;
            COLMR_RETURN_IF_ERROR(ExpectChar(','));
          }
        }
        *out = schema.kind() == TypeKind::kArray
                   ? Value::Array(std::move(elems))
                   : Value::Record(std::move(elems));
        return Status::OK();
      }
      case TypeKind::kMap: {
        COLMR_RETURN_IF_ERROR(ExpectChar('{'));
        Value::MapEntries entries;
        if (!TryChar('}')) {
          for (;;) {
            std::string key;
            COLMR_RETURN_IF_ERROR(ParseQuoted(&key));
            COLMR_RETURN_IF_ERROR(ExpectChar(':'));
            Value v;
            COLMR_RETURN_IF_ERROR(ParseValue(*schema.element(), &v));
            entries.emplace_back(std::move(key), std::move(v));
            if (TryChar('}')) break;
            COLMR_RETURN_IF_ERROR(ExpectChar(','));
          }
        }
        *out = Value::Map(std::move(entries));
        return Status::OK();
      }
    }
    return Status::Corruption("txt: unknown kind");
  }

  Status ExpectChar(char c) {
    if (input_.empty() || input_[0] != c) {
      return Status::Corruption(std::string("txt: expected '") + c + "'");
    }
    input_.RemovePrefix(1);
    return Status::OK();
  }

  bool TryChar(char c) {
    if (!input_.empty() && input_[0] == c) {
      input_.RemovePrefix(1);
      return true;
    }
    return false;
  }

  bool AtEnd() const { return input_.empty(); }

 private:
  bool TryLiteral(const char* lit) {
    const size_t len = strlen(lit);
    if (input_.size() >= len && memcmp(input_.data(), lit, len) == 0) {
      input_.RemovePrefix(len);
      return true;
    }
    return false;
  }

  Status ExpectLiteral(const char* lit) {
    if (!TryLiteral(lit)) {
      return Status::Corruption(std::string("txt: expected ") + lit);
    }
    return Status::OK();
  }

  Status ParseInteger(int64_t* out) {
    bool negative = false;
    size_t i = 0;
    if (i < input_.size() && input_[i] == '-') {
      negative = true;
      ++i;
    }
    int64_t v = 0;
    size_t digits = 0;
    while (i < input_.size() &&
           std::isdigit(static_cast<unsigned char>(input_[i]))) {
      v = v * 10 + (input_[i] - '0');
      ++i;
      ++digits;
    }
    if (digits == 0) return Status::Corruption("txt: expected integer");
    input_.RemovePrefix(i);
    *out = negative ? -v : v;
    return Status::OK();
  }

  Status ParseQuoted(std::string* out) {
    COLMR_RETURN_IF_ERROR(ExpectChar('"'));
    out->clear();
    while (!input_.empty()) {
      char c = input_[0];
      input_.RemovePrefix(1);
      if (c == '"') return Status::OK();
      if (c == '\\') {
        if (input_.empty()) break;
        char esc = input_[0];
        input_.RemovePrefix(1);
        switch (esc) {
          case 'n':
            out->push_back('\n');
            break;
          case 't':
            out->push_back('\t');
            break;
          default:
            out->push_back(esc);
        }
      } else {
        out->push_back(c);
      }
    }
    return Status::Corruption("txt: unterminated string");
  }

  Slice input_;
};

}  // namespace

Status ParseTextRecord(const Schema& schema, Slice line, Value* record) {
  TextValueParser parser(line);
  std::vector<Value> values;
  values.reserve(schema.fields().size());
  for (size_t i = 0; i < schema.fields().size(); ++i) {
    if (i > 0) COLMR_RETURN_IF_ERROR(parser.ExpectChar('\t'));
    Value v;
    COLMR_RETURN_IF_ERROR(parser.ParseValue(*schema.fields()[i].type, &v));
    values.push_back(std::move(v));
  }
  if (!parser.AtEnd()) return Status::Corruption("txt: trailing field data");
  *record = Value::Record(std::move(values));
  return Status::OK();
}

Status WriteDatasetSchema(MiniHdfs* fs, const std::string& dataset_dir,
                          const Schema& schema) {
  std::unique_ptr<FileWriter> writer;
  COLMR_RETURN_IF_ERROR(fs->Create(dataset_dir + "/_schema", &writer));
  writer->Append(schema.ToString());
  return writer->Close();
}

Status ReadDatasetSchema(MiniHdfs* fs, const std::string& dataset_dir,
                         Schema::Ptr* schema, const ReadContext& context) {
  std::unique_ptr<FileReader> reader;
  COLMR_RETURN_IF_ERROR(
      fs->Open(dataset_dir + "/_schema", context, &reader));
  std::string text;
  COLMR_RETURN_IF_ERROR(reader->Read(0, reader->size(), &text));
  return Schema::Parse(text, schema);
}

Status TextWriter::Open(MiniHdfs* fs, const std::string& path,
                        Schema::Ptr schema,
                        std::unique_ptr<TextWriter>* writer) {
  COLMR_RETURN_IF_ERROR(WriteDatasetSchema(fs, path, *schema));
  std::unique_ptr<FileWriter> file;
  COLMR_RETURN_IF_ERROR(fs->Create(path + "/part-00000", &file));
  writer->reset(new TextWriter(std::move(schema), std::move(file)));
  return Status::OK();
}

Status TextWriter::WriteRecord(const Value& record) {
  std::string line = FormatTextRecord(*schema_, record);
  line += '\n';
  file_->Append(line);
  ++records_;
  return Status::OK();
}

Status TextWriter::Close() { return file_->Close(); }

namespace {

/// Reads byte-range splits of a TXT part file, snapping to line
/// boundaries as Hadoop's LineRecordReader does: a split owns the records
/// that *start* within (offset, offset + length].
class TextRecordReader final : public RecordReader {
 public:
  TextRecordReader(Schema::Ptr schema, std::unique_ptr<BufferedReader> input,
                   uint64_t offset, uint64_t length)
      : schema_(std::move(schema)),
        input_(std::move(input)),
        end_(offset + length),
        record_(schema_, Value::Null()) {
    if (offset == 0) {
      status_ = input_->Seek(0);
    } else {
      // Skip the partial line owned by the previous split.
      status_ = input_->Seek(offset);
      if (status_.ok()) {
        std::string discard;
        status_ = ReadLine(&discard);
      }
    }
  }

  bool Next() override {
    if (!status_.ok()) return false;
    if (input_->position() > end_ || input_->AtEnd()) return false;
    std::string line;
    status_ = ReadLine(&line);
    if (!status_.ok()) return false;
    Value value;
    status_ = ParseTextRecord(*schema_, line, &value);
    if (!status_.ok()) return false;
    record_ = EagerRecord(schema_, std::move(value));
    return true;
  }

  Record& record() override { return record_; }
  Status status() const override { return status_; }

 private:
  Status ReadLine(std::string* line) {
    line->clear();
    for (;;) {
      Slice view;
      COLMR_RETURN_IF_ERROR(input_->Peek(1, &view));
      if (view.empty()) return Status::OK();  // EOF ends the last line
      for (size_t i = 0; i < view.size(); ++i) {
        if (view[i] == '\n') {
          line->append(view.data(), i);
          input_->Consume(i + 1);
          return Status::OK();
        }
      }
      line->append(view.data(), view.size());
      input_->Consume(view.size());
    }
  }

  Schema::Ptr schema_;
  std::unique_ptr<BufferedReader> input_;
  uint64_t end_;
  EagerRecord record_;
  Status status_;
};

}  // namespace

Status TextInputFormat::GetSplits(MiniHdfs* fs, const JobConfig& config,
                                  const ReadContext& /*context*/,
                                  std::vector<InputSplit>* splits) {
  // Planning only touches namenode metadata; no data blocks are read.
  return ComputeFileSplits(fs, config.input_paths, config.split_size, splits);
}

Status TextInputFormat::CreateRecordReader(
    MiniHdfs* fs, const JobConfig& config, const InputSplit& split,
    const ReadContext& context, std::unique_ptr<RecordReader>* reader) {
  (void)config;
  // The dataset directory is the parent of the part file.
  const std::string& file = split.paths.at(0);
  const std::string dir = file.substr(0, file.rfind('/'));
  Schema::Ptr schema;
  COLMR_RETURN_IF_ERROR(ReadDatasetSchema(fs, dir, &schema, context));
  std::unique_ptr<FileReader> raw;
  COLMR_RETURN_IF_ERROR(fs->Open(file, context, &raw));
  auto buffered = std::make_unique<BufferedReader>(
      std::move(raw), fs->config().io_buffer_size);
  reader->reset(new TextRecordReader(std::move(schema), std::move(buffered),
                                     split.offset, split.length));
  return Status::OK();
}

}  // namespace colmr
