#ifndef COLMR_FORMATS_TEXT_TEXT_FORMAT_H_
#define COLMR_FORMATS_TEXT_TEXT_FORMAT_H_

#include <memory>
#include <string>
#include <vector>

#include "hdfs/reader.h"
#include "mapreduce/input_format.h"
#include "mapreduce/output_format.h"
#include "serde/record.h"

namespace colmr {

// The "naive" baseline of the paper's experiments: records as delimited
// text lines that must be re-parsed on every scan. A dataset is a
// directory holding a `_schema` file and one or more `part-*` files of
// '\t'-separated fields, one record per line. Strings are quoted and
// escaped; arrays/maps/records use a JSON-like syntax (Value::ToString).

/// Renders one record as a text line (no trailing newline).
std::string FormatTextRecord(const Schema& schema, const Value& record);

/// Parses a text line back into a record conforming to schema. This parse
/// is the CPU cost that makes TXT 3x slower than SEQ (paper Section 6.2).
Status ParseTextRecord(const Schema& schema, Slice line, Value* record);

/// Writes a TXT dataset directory.
class TextWriter final : public DatasetWriter {
 public:
  /// Creates `<path>/_schema` and `<path>/part-00000`.
  static Status Open(MiniHdfs* fs, const std::string& path,
                     Schema::Ptr schema, std::unique_ptr<TextWriter>* writer);

  Status WriteRecord(const Value& record) override;
  Status Close() override;
  uint64_t record_count() const override { return records_; }

 private:
  TextWriter(Schema::Ptr schema, std::unique_ptr<FileWriter> file)
      : schema_(std::move(schema)), file_(std::move(file)) {}

  Schema::Ptr schema_;
  std::unique_ptr<FileWriter> file_;
  uint64_t records_ = 0;
};

/// InputFormat over TXT dataset directories. Splits are byte ranges
/// snapped to line boundaries, exactly like Hadoop's TextInputFormat.
class TextInputFormat final : public InputFormat {
 public:
  std::string name() const override { return "txt"; }
  using InputFormat::GetSplits;
  Status GetSplits(MiniHdfs* fs, const JobConfig& config,
                   const ReadContext& context,
                   std::vector<InputSplit>* splits) override;
  Status CreateRecordReader(MiniHdfs* fs, const JobConfig& config,
                            const InputSplit& split,
                            const ReadContext& context,
                            std::unique_ptr<RecordReader>* reader) override;
};

/// Reads the `_schema` file of a dataset directory, accounting the I/O to
/// `context` (metrics/trace/locality of the task or planner reading it).
Status ReadDatasetSchema(MiniHdfs* fs, const std::string& dataset_dir,
                         Schema::Ptr* schema,
                         const ReadContext& context = {});

/// Writes `<dataset_dir>/_schema`.
Status WriteDatasetSchema(MiniHdfs* fs, const std::string& dataset_dir,
                          const Schema& schema);

}  // namespace colmr

#endif  // COLMR_FORMATS_TEXT_TEXT_FORMAT_H_
