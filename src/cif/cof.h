#ifndef COLMR_CIF_COF_H_
#define COLMR_CIF_COF_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cif/column_writer.h"
#include "cif/options.h"
#include "hdfs/mini_hdfs.h"
#include "mapreduce/output_format.h"

namespace colmr {

/// ColumnOutputFormat (paper Section 4.2, Fig. 4): loads a dataset into a
/// directory of split-directories `s0, s1, …`, each holding one column
/// file per top-level field plus a `_schema` file. Split-directories roll
/// over every CofOptions::split_target_bytes of raw data, and their file
/// names follow the `s<digits>` convention the ColumnPlacementPolicy keys
/// on — writing through a MiniHdfs configured with CPP therefore
/// co-locates each split-directory's columns automatically.
class CofWriter final : public DatasetWriter {
 public:
  static Status Open(MiniHdfs* fs, const std::string& base_dir,
                     Schema::Ptr schema, const CofOptions& options,
                     std::unique_ptr<CofWriter>* writer);

  Status WriteRecord(const Value& record) override;
  Status Close() override;
  uint64_t record_count() const override { return records_; }

  /// Split-directories written (after Close()).
  int split_count() const { return split_index_; }

 private:
  CofWriter(MiniHdfs* fs, std::string base_dir, Schema::Ptr schema,
            CofOptions options);

  Status OpenSplit();
  Status CloseSplit();
  uint64_t SplitRawBytes() const;

  MiniHdfs* fs_;
  std::string base_dir_;
  Schema::Ptr schema_;
  CofOptions options_;
  uint64_t records_ = 0;
  int split_index_ = 0;
  bool split_open_ = false;
  std::vector<std::unique_ptr<ColumnFileWriter>> columns_;
};

/// Path of the index-th split-directory under base_dir ("<base>/s<index>").
std::string SplitDirName(const std::string& base_dir, int index);

/// Appends a derived column to every split-directory of an existing CIF
/// dataset — the cheap "adding a column" operation that RCFile cannot do
/// without rewriting the dataset (paper Section 4.3). `compute` maps each
/// existing record (all original columns materialized) to the new
/// column's value.
Status AddColumn(MiniHdfs* fs, const std::string& base_dir,
                 const std::string& column_name, Schema::Ptr column_type,
                 const ColumnOptions& column_options,
                 const std::function<Value(const Value& record)>& compute);

}  // namespace colmr

#endif  // COLMR_CIF_COF_H_
