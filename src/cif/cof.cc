#include "cif/cof.h"

#include "cif/column_format.h"
#include "cif/column_reader.h"
#include "formats/text/text_format.h"

namespace colmr {

CofWriter::CofWriter(MiniHdfs* fs, std::string base_dir, Schema::Ptr schema,
                     CofOptions options)
    : fs_(fs),
      base_dir_(std::move(base_dir)),
      schema_(std::move(schema)),
      options_(std::move(options)) {}

Status CofWriter::Open(MiniHdfs* fs, const std::string& base_dir,
                       Schema::Ptr schema, const CofOptions& options,
                       std::unique_ptr<CofWriter>* writer) {
  if (schema->kind() != TypeKind::kRecord) {
    return Status::InvalidArgument("cof: schema must be a record");
  }
  for (const auto& field : schema->fields()) {
    const ColumnOptions& col = options.ForColumn(field.name);
    if (col.layout == ColumnLayout::kDictSkipList &&
        field.type->kind() != TypeKind::kMap) {
      return Status::InvalidArgument("cof: DCSL on non-map column " +
                                     field.name);
    }
  }
  writer->reset(new CofWriter(fs, base_dir, std::move(schema), options));
  return Status::OK();
}

std::string SplitDirName(const std::string& base_dir, int index) {
  return base_dir + "/s" + std::to_string(index);
}

Status CofWriter::OpenSplit() {
  const std::string dir = SplitDirName(base_dir_, split_index_);
  COLMR_RETURN_IF_ERROR(WriteDatasetSchema(fs_, dir, *schema_));
  columns_.clear();
  for (const auto& field : schema_->fields()) {
    std::unique_ptr<ColumnFileWriter> column;
    COLMR_RETURN_IF_ERROR(ColumnFileWriter::Create(
        fs_, dir + "/" + field.name + ".col", field.type,
        options_.ForColumn(field.name), &column));
    columns_.push_back(std::move(column));
  }
  split_open_ = true;
  return Status::OK();
}

Status CofWriter::CloseSplit() {
  for (auto& column : columns_) {
    COLMR_RETURN_IF_ERROR(column->Close());
  }
  columns_.clear();
  split_open_ = false;
  ++split_index_;
  return Status::OK();
}

uint64_t CofWriter::SplitRawBytes() const {
  uint64_t total = 0;
  for (const auto& column : columns_) total += column->raw_bytes();
  return total;
}

Status CofWriter::WriteRecord(const Value& record) {
  if (!split_open_) {
    COLMR_RETURN_IF_ERROR(OpenSplit());
  }
  const auto& values = record.elements();
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument("cof: record arity mismatch");
  }
  for (size_t c = 0; c < columns_.size(); ++c) {
    COLMR_RETURN_IF_ERROR(columns_[c]->Append(values[c]));
  }
  ++records_;
  if (SplitRawBytes() >= options_.split_target_bytes) {
    return CloseSplit();
  }
  return Status::OK();
}

Status CofWriter::Close() {
  if (split_open_) {
    COLMR_RETURN_IF_ERROR(CloseSplit());
  }
  return Status::OK();
}

Status AddColumn(MiniHdfs* fs, const std::string& base_dir,
                 const std::string& column_name, Schema::Ptr column_type,
                 const ColumnOptions& column_options,
                 const std::function<Value(const Value& record)>& compute) {
  std::vector<std::string> children;
  COLMR_RETURN_IF_ERROR(fs->ListDir(base_dir, &children));
  bool any = false;
  for (const std::string& child : children) {
    if (child.empty() || child[0] != 's') continue;
    const std::string split_dir = base_dir + "/" + child;
    Schema::Ptr schema;
    COLMR_RETURN_IF_ERROR(ReadDatasetSchema(fs, split_dir, &schema));
    if (schema->FieldIndex(column_name) >= 0) {
      return Status::AlreadyExists("cof: column exists: " + column_name);
    }

    // Read all existing columns of this split-directory.
    std::vector<std::unique_ptr<ColumnFileReader>> readers;
    for (const auto& field : schema->fields()) {
      std::unique_ptr<ColumnFileReader> reader;
      COLMR_RETURN_IF_ERROR(ColumnFileReader::Open(
          fs, split_dir + "/" + field.name + ".col", ReadContext{}, &reader));
      readers.push_back(std::move(reader));
    }
    const uint64_t rows = readers.empty() ? 0 : readers[0]->row_count();

    // Write just the one new file — no existing file is touched; this is
    // the whole point of the per-column-file layout.
    std::unique_ptr<ColumnFileWriter> writer;
    COLMR_RETURN_IF_ERROR(
        ColumnFileWriter::Create(fs, split_dir + "/" + column_name + ".col",
                                 column_type, column_options, &writer));
    for (uint64_t r = 0; r < rows; ++r) {
      std::vector<Value> values(readers.size());
      for (size_t c = 0; c < readers.size(); ++c) {
        COLMR_RETURN_IF_ERROR(readers[c]->ReadValue(&values[c]));
      }
      COLMR_RETURN_IF_ERROR(
          writer->Append(compute(Value::Record(std::move(values)))));
    }
    COLMR_RETURN_IF_ERROR(writer->Close());

    // Replace the split's schema with the widened one.
    Schema::Ptr widened =
        Schema::WithField(schema, {column_name, column_type});
    COLMR_RETURN_IF_ERROR(fs->Delete(split_dir + "/" + kCifSchemaFileName));
    COLMR_RETURN_IF_ERROR(WriteDatasetSchema(fs, split_dir, *widened));
    any = true;
  }
  if (!any) return Status::NotFound("cof: no split-directories in " + base_dir);
  return Status::OK();
}

}  // namespace colmr
