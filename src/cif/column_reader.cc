#include "cif/column_reader.h"

#include <algorithm>
#include <cstring>

#include "cif/column_format.h"
#include "common/coding.h"
#include "obs/metrics.h"
#include "serde/encoding.h"

namespace colmr {

namespace {

/// Runs `decode` over a peeked window, growing the window while the
/// failure could be truncation. On success consumes the decoded bytes.
template <typename DecodeFn>
Status DecodeWithRetry(BufferedReader* input, DecodeFn decode) {
  size_t window = 4096;
  for (;;) {
    Slice view;
    COLMR_RETURN_IF_ERROR(input->Peek(window, &view));
    Slice cursor = view;
    Status s = decode(&cursor);
    if (s.ok()) {
      input->Consume(cursor.data() - view.data());
      return Status::OK();
    }
    if (!s.IsCorruption() || view.size() >= input->Remaining()) {
      return s;
    }
    window *= 2;
  }
}

}  // namespace

Status DecodeValueFromReader(const Schema& schema, BufferedReader* input,
                             Value* out) {
  return DecodeWithRetry(input, [&](Slice* cursor) {
    return DecodeValue(schema, cursor, out);
  });
}

Status SkipValueFromReader(const Schema& schema, BufferedReader* input) {
  return DecodeWithRetry(input, [&](Slice* cursor) {
    return SkipValue(schema, cursor);
  });
}

Status ColumnFileReader::Open(MiniHdfs* fs, const std::string& path,
                              const ReadContext& context,
                              std::unique_ptr<ColumnFileReader>* reader) {
  std::unique_ptr<FileReader> raw;
  COLMR_RETURN_IF_ERROR(fs->Open(path, context, &raw));
  std::unique_ptr<ColumnFileReader> result(new ColumnFileReader());
  result->input_ = std::make_unique<BufferedReader>(
      std::move(raw), fs->config().io_buffer_size);
  MetricsRegistry& metrics = context.metrics != nullptr
                                 ? *context.metrics
                                 : MetricsRegistry::Default();
  result->m_values_read_ = metrics.counter("cif.scan.values_read");
  result->m_values_skipped_ = metrics.counter("cif.scan.values_skipped");
  result->m_rows_skipped_ = metrics.counter("cif.scan.rows_skipped");
  result->m_rowgroups_skipped_ = metrics.counter("cif.scan.rowgroups_skipped");
  result->m_skipped_bytes_ = metrics.counter("cif.scan.skipped_bytes");
  result->m_blocks_skipped_ = metrics.counter("cif.scan.blocks_skipped");
  result->m_blocks_decompressed_ =
      metrics.counter("cif.scan.blocks_decompressed");
  result->m_decompressed_bytes_ =
      metrics.counter("cif.scan.decompressed_bytes");
  COLMR_RETURN_IF_ERROR(result->ParseHeader());
  *reader = std::move(result);
  return Status::OK();
}

Status ColumnFileReader::ParseHeader() {
  Slice view;
  COLMR_RETURN_IF_ERROR(input_->Peek(5, &view));
  if (view.size() < 5 || memcmp(view.data(), kCifColumnMagic, 4) != 0) {
    return Status::Corruption("cif column: bad magic");
  }
  layout_ = static_cast<ColumnLayout>(view[4]);
  input_->Consume(5);
  COLMR_RETURN_IF_ERROR(input_->ReadVarint64(&row_count_));
  uint64_t type_len;
  COLMR_RETURN_IF_ERROR(input_->ReadVarint64(&type_len));
  std::string type_text;
  COLMR_RETURN_IF_ERROR(input_->ReadBytes(type_len, &type_text));
  COLMR_RETURN_IF_ERROR(Schema::Parse(type_text, &type_));
  if (layout_ == ColumnLayout::kCompressedBlocks) {
    std::string codec_byte;
    COLMR_RETURN_IF_ERROR(input_->ReadBytes(1, &codec_byte));
    codec_ = GetCodec(static_cast<CodecType>(codec_byte[0]));
    if (codec_ == nullptr) return Status::Corruption("cif column: codec");
    uint64_t block_size;
    COLMR_RETURN_IF_ERROR(input_->ReadVarint64(&block_size));
  }
  if (layout_ == ColumnLayout::kDictSkipList &&
      type_->kind() != TypeKind::kMap) {
    return Status::Corruption("cif column: DCSL requires map type");
  }
  return Status::OK();
}

Status ColumnFileReader::ConsumeBoundary() {
  if (boundary_done_ || current_row_ % kCifSkip0 != 0 ||
      current_row_ >= row_count_) {
    return Status::OK();
  }
  if (layout_ == ColumnLayout::kDictSkipList &&
      current_row_ % kCifDictInterval == 0) {
    uint32_t dict_len;
    COLMR_RETURN_IF_ERROR(input_->ReadFixed32(&dict_len));
    Slice dict_bytes;
    COLMR_RETURN_IF_ERROR(input_->Peek(dict_len, &dict_bytes));
    if (dict_bytes.size() < dict_len) {
      return Status::Corruption("cif column: truncated dictionary");
    }
    Slice cursor = dict_bytes.Prefix(dict_len);
    COLMR_RETURN_IF_ERROR(dict_.Deserialize(&cursor));
    input_->Consume(dict_len);
  }
  uint32_t entry;
  if (current_row_ % kCifSkip2 == 0) {
    COLMR_RETURN_IF_ERROR(input_->ReadFixed32(&entry));
    skip1000_ = entry;
  }
  if (current_row_ % kCifSkip1 == 0) {
    COLMR_RETURN_IF_ERROR(input_->ReadFixed32(&entry));
    skip100_ = entry;
  }
  COLMR_RETURN_IF_ERROR(input_->ReadFixed32(&entry));
  skip10_ = entry;
  boundary_done_ = true;
  return Status::OK();
}

Status ColumnFileReader::LoadBlock() {
  uint64_t n_records, compressed_len;
  COLMR_RETURN_IF_ERROR(input_->ReadVarint64(&n_records));
  COLMR_RETURN_IF_ERROR(input_->ReadVarint64(&compressed_len));
  Slice compressed;
  COLMR_RETURN_IF_ERROR(input_->Peek(compressed_len, &compressed));
  if (compressed.size() < compressed_len) {
    return Status::Corruption("cif column: truncated block");
  }
  block_.Clear();
  COLMR_RETURN_IF_ERROR(
      codec_->Decompress(compressed.Prefix(compressed_len), &block_));
  input_->Consume(compressed_len);
  block_cursor_ = block_.AsSlice();
  block_rows_left_ = n_records;
  block_loaded_ = true;
  m_blocks_decompressed_->Increment();
  m_decompressed_bytes_->Increment(block_cursor_.size());
  return Status::OK();
}

Status ColumnFileReader::ReadDcslValue(Value* out) {
  return DecodeWithRetry(input_.get(), [&](Slice* cursor) -> Status {
    uint64_t count;
    COLMR_RETURN_IF_ERROR(GetVarint64(cursor, &count));
    COLMR_RETURN_IF_ERROR(CheckContainerCount(count, cursor->size()));
    Value::MapEntries entries;
    entries.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t id;
      COLMR_RETURN_IF_ERROR(GetVarint64(cursor, &id));
      if (id >= dict_.size()) {
        return Status::Corruption("cif column: dictionary id out of range");
      }
      Value v;
      COLMR_RETURN_IF_ERROR(DecodeValue(*type_->element(), cursor, &v));
      entries.emplace_back(dict_.Lookup(static_cast<uint32_t>(id)),
                           std::move(v));
    }
    *out = Value::Map(std::move(entries));
    return Status::OK();
  });
}

Status ColumnFileReader::SkipOneValue() {
  switch (layout_) {
    case ColumnLayout::kDictSkipList:
      return DecodeWithRetry(input_.get(), [&](Slice* cursor) -> Status {
        uint64_t count;
        COLMR_RETURN_IF_ERROR(GetVarint64(cursor, &count));
        for (uint64_t i = 0; i < count; ++i) {
          uint64_t id;
          COLMR_RETURN_IF_ERROR(GetVarint64(cursor, &id));
          COLMR_RETURN_IF_ERROR(SkipValue(*type_->element(), cursor));
        }
        return Status::OK();
      });
    default:
      return SkipValueFromReader(*type_, input_.get());
  }
}

Status ColumnFileReader::ReadValue(Value* out) {
  if (current_row_ >= row_count_) {
    return Status::OutOfRange("cif column: past end");
  }
  switch (layout_) {
    case ColumnLayout::kPlain:
      COLMR_RETURN_IF_ERROR(DecodeValueFromReader(*type_, input_.get(), out));
      break;
    case ColumnLayout::kSkipList:
      COLMR_RETURN_IF_ERROR(ConsumeBoundary());
      COLMR_RETURN_IF_ERROR(DecodeValueFromReader(*type_, input_.get(), out));
      break;
    case ColumnLayout::kDictSkipList:
      COLMR_RETURN_IF_ERROR(ConsumeBoundary());
      COLMR_RETURN_IF_ERROR(ReadDcslValue(out));
      break;
    case ColumnLayout::kCompressedBlocks: {
      if (!block_loaded_) {
        COLMR_RETURN_IF_ERROR(LoadBlock());
      }
      COLMR_RETURN_IF_ERROR(DecodeValue(*type_, &block_cursor_, out));
      if (--block_rows_left_ == 0) block_loaded_ = false;
      break;
    }
  }
  ++current_row_;
  if (current_row_ % kCifSkip0 == 0) boundary_done_ = false;
  m_values_read_->Increment();
  return Status::OK();
}

Status ColumnFileReader::SkipRows(uint64_t n) {
  n = std::min(n, row_count_ - current_row_);
  m_rows_skipped_->Increment(n);
  if (layout_ == ColumnLayout::kCompressedBlocks) {
    while (n > 0) {
      if (block_loaded_) {
        // Drain or finish the current (already decompressed) block.
        const uint64_t take = std::min(n, block_rows_left_);
        for (uint64_t i = 0; i < take; ++i) {
          COLMR_RETURN_IF_ERROR(SkipValue(*type_, &block_cursor_));
        }
        m_values_skipped_->Increment(take);
        block_rows_left_ -= take;
        if (block_rows_left_ == 0) block_loaded_ = false;
        current_row_ += take;
        n -= take;
        continue;
      }
      // At a block header: skip whole blocks without decompressing —
      // the lazy-decompression payoff of the block layout.
      uint64_t n_records, compressed_len;
      COLMR_RETURN_IF_ERROR(input_->ReadVarint64(&n_records));
      COLMR_RETURN_IF_ERROR(input_->ReadVarint64(&compressed_len));
      if (n >= n_records) {
        COLMR_RETURN_IF_ERROR(input_->Skip(compressed_len));
        m_blocks_skipped_->Increment();
        m_skipped_bytes_->Increment(compressed_len);
        current_row_ += n_records;
        n -= n_records;
      } else {
        // Partial skip: the block must be decompressed to find value
        // boundaries.
        Slice compressed;
        COLMR_RETURN_IF_ERROR(input_->Peek(compressed_len, &compressed));
        if (compressed.size() < compressed_len) {
          return Status::Corruption("cif column: truncated block");
        }
        block_.Clear();
        COLMR_RETURN_IF_ERROR(
            codec_->Decompress(compressed.Prefix(compressed_len), &block_));
        input_->Consume(compressed_len);
        block_cursor_ = block_.AsSlice();
        block_rows_left_ = n_records;
        block_loaded_ = true;
        m_blocks_decompressed_->Increment();
        m_decompressed_bytes_->Increment(block_cursor_.size());
      }
    }
    return Status::OK();
  }

  const bool has_skip_list = layout_ == ColumnLayout::kSkipList ||
                             layout_ == ColumnLayout::kDictSkipList;
  while (n > 0) {
    if (has_skip_list && current_row_ % kCifSkip0 == 0 && !boundary_done_ &&
        current_row_ < row_count_) {
      COLMR_RETURN_IF_ERROR(ConsumeBoundary());
      if (n >= kCifSkip2 && current_row_ % kCifSkip2 == 0 &&
          current_row_ + kCifSkip2 <= row_count_) {
        COLMR_RETURN_IF_ERROR(input_->Skip(skip1000_));
        m_rowgroups_skipped_->Increment(kCifSkip2 / kCifSkip0);
        m_skipped_bytes_->Increment(skip1000_);
        current_row_ += kCifSkip2;
        n -= kCifSkip2;
        boundary_done_ = false;
        continue;
      }
      if (n >= kCifSkip1 && current_row_ % kCifSkip1 == 0 &&
          current_row_ + kCifSkip1 <= row_count_) {
        COLMR_RETURN_IF_ERROR(input_->Skip(skip100_));
        m_rowgroups_skipped_->Increment(kCifSkip1 / kCifSkip0);
        m_skipped_bytes_->Increment(skip100_);
        current_row_ += kCifSkip1;
        n -= kCifSkip1;
        boundary_done_ = false;
        continue;
      }
      if (n >= kCifSkip0 && current_row_ + kCifSkip0 <= row_count_) {
        COLMR_RETURN_IF_ERROR(input_->Skip(skip10_));
        m_rowgroups_skipped_->Increment(1);
        m_skipped_bytes_->Increment(skip10_);
        current_row_ += kCifSkip0;
        n -= kCifSkip0;
        boundary_done_ = false;
        continue;
      }
    }
    // Value-by-value: decode lengths but do not materialize (this is all
    // a plain column can do — "each record is skipped individually,
    // resulting in no deserialization or I/O savings").
    if (has_skip_list) {
      COLMR_RETURN_IF_ERROR(ConsumeBoundary());
    }
    COLMR_RETURN_IF_ERROR(SkipOneValue());
    m_values_skipped_->Increment();
    ++current_row_;
    if (current_row_ % kCifSkip0 == 0) boundary_done_ = false;
    --n;
  }
  return Status::OK();
}

}  // namespace colmr
