#include "cif/column_reader.h"

#include <algorithm>
#include <cstring>

#include "cif/column_format.h"
#include "common/coding.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serde/encoding.h"

namespace colmr {

namespace {

/// Runs `decode` over a peeked window, growing the window while the
/// failure could be truncation. On success consumes the decoded bytes.
template <typename DecodeFn>
Status DecodeWithRetry(BufferedReader* input, DecodeFn decode) {
  size_t window = 4096;
  for (;;) {
    Slice view;
    COLMR_RETURN_IF_ERROR(input->Peek(window, &view));
    Slice cursor = view;
    Status s = decode(&cursor);
    if (s.ok()) {
      input->Consume(cursor.data() - view.data());
      return Status::OK();
    }
    if (!s.IsCorruption() || view.size() >= input->Remaining()) {
      return s;
    }
    window *= 2;
  }
}

}  // namespace

Status DecodeValueFromReader(const Schema& schema, BufferedReader* input,
                             Value* out) {
  return DecodeWithRetry(input, [&](Slice* cursor) {
    return DecodeValue(schema, cursor, out);
  });
}

Status SkipValueFromReader(const Schema& schema, BufferedReader* input) {
  return DecodeWithRetry(input, [&](Slice* cursor) {
    return SkipValue(schema, cursor);
  });
}

Status ColumnFileReader::Open(MiniHdfs* fs, const std::string& path,
                              const ReadContext& context,
                              std::unique_ptr<ColumnFileReader>* reader) {
  std::unique_ptr<FileReader> raw;
  COLMR_RETURN_IF_ERROR(fs->Open(path, context, &raw));
  std::unique_ptr<ColumnFileReader> result(new ColumnFileReader());
  result->input_ = std::make_unique<BufferedReader>(
      std::move(raw), fs->config().io_buffer_size);
  MetricsRegistry& metrics = context.metrics != nullptr
                                 ? *context.metrics
                                 : MetricsRegistry::Default();
  result->m_values_read_ = metrics.counter("cif.scan.values_read");
  result->m_values_skipped_ = metrics.counter("cif.scan.values_skipped");
  result->m_rows_skipped_ = metrics.counter("cif.scan.rows_skipped");
  result->m_rowgroups_skipped_ = metrics.counter("cif.scan.rowgroups_skipped");
  result->m_skipped_bytes_ = metrics.counter("cif.scan.skipped_bytes");
  result->m_blocks_skipped_ = metrics.counter("cif.scan.blocks_skipped");
  result->m_blocks_decompressed_ =
      metrics.counter("cif.scan.blocks_decompressed");
  result->m_decompressed_bytes_ =
      metrics.counter("cif.scan.decompressed_bytes");
  result->trace_ = context.trace;
  COLMR_RETURN_IF_ERROR(result->ParseHeader());
  *reader = std::move(result);
  return Status::OK();
}

Status ColumnFileReader::ParseHeader() {
  Slice view;
  COLMR_RETURN_IF_ERROR(input_->Peek(5, &view));
  if (view.size() < 5 || memcmp(view.data(), kCifColumnMagic, 4) != 0) {
    return Status::Corruption("cif column: bad magic");
  }
  layout_ = static_cast<ColumnLayout>(view[4]);
  input_->Consume(5);
  COLMR_RETURN_IF_ERROR(input_->ReadVarint64(&row_count_));
  uint64_t type_len;
  COLMR_RETURN_IF_ERROR(input_->ReadVarint64(&type_len));
  std::string type_text;
  COLMR_RETURN_IF_ERROR(input_->ReadBytes(type_len, &type_text));
  COLMR_RETURN_IF_ERROR(Schema::Parse(type_text, &type_));
  if (layout_ == ColumnLayout::kCompressedBlocks) {
    std::string codec_byte;
    COLMR_RETURN_IF_ERROR(input_->ReadBytes(1, &codec_byte));
    codec_ = GetCodec(static_cast<CodecType>(codec_byte[0]));
    if (codec_ == nullptr) return Status::Corruption("cif column: codec");
    uint64_t block_size;
    COLMR_RETURN_IF_ERROR(input_->ReadVarint64(&block_size));
  }
  if (layout_ == ColumnLayout::kDictSkipList &&
      type_->kind() != TypeKind::kMap) {
    return Status::Corruption("cif column: DCSL requires map type");
  }
  return Status::OK();
}

Status ColumnFileReader::ConsumeBoundary() {
  if (boundary_done_ || current_row_ % kCifSkip0 != 0 ||
      current_row_ >= row_count_) {
    return Status::OK();
  }
  if (layout_ == ColumnLayout::kDictSkipList &&
      current_row_ % kCifDictInterval == 0) {
    uint32_t dict_len;
    COLMR_RETURN_IF_ERROR(input_->ReadFixed32(&dict_len));
    Slice dict_bytes;
    COLMR_RETURN_IF_ERROR(input_->Peek(dict_len, &dict_bytes));
    if (dict_bytes.size() < dict_len) {
      return Status::Corruption("cif column: truncated dictionary");
    }
    Slice cursor = dict_bytes.Prefix(dict_len);
    COLMR_RETURN_IF_ERROR(dict_.Deserialize(&cursor));
    input_->Consume(dict_len);
  }
  uint32_t entry;
  if (current_row_ % kCifSkip2 == 0) {
    COLMR_RETURN_IF_ERROR(input_->ReadFixed32(&entry));
    skip1000_ = entry;
  }
  if (current_row_ % kCifSkip1 == 0) {
    COLMR_RETURN_IF_ERROR(input_->ReadFixed32(&entry));
    skip100_ = entry;
  }
  COLMR_RETURN_IF_ERROR(input_->ReadFixed32(&entry));
  skip10_ = entry;
  boundary_done_ = true;
  return Status::OK();
}

Status ColumnFileReader::LoadBlock() {
  uint64_t n_records, compressed_len;
  COLMR_RETURN_IF_ERROR(input_->ReadVarint64(&n_records));
  COLMR_RETURN_IF_ERROR(input_->ReadVarint64(&compressed_len));
  Slice compressed;
  COLMR_RETURN_IF_ERROR(input_->Peek(compressed_len, &compressed));
  if (compressed.size() < compressed_len) {
    return Status::Corruption("cif column: truncated block");
  }
  block_.Clear();
  COLMR_RETURN_IF_ERROR(
      codec_->Decompress(compressed.Prefix(compressed_len), &block_));
  input_->Consume(compressed_len);
  block_cursor_ = block_.AsSlice();
  block_rows_left_ = n_records;
  block_loaded_ = true;
  m_blocks_decompressed_->Increment();
  m_decompressed_bytes_->Increment(block_cursor_.size());
  return Status::OK();
}

Status ColumnFileReader::ReadDcslValue(Value* out) {
  return DecodeWithRetry(input_.get(), [&](Slice* cursor) -> Status {
    uint64_t count;
    COLMR_RETURN_IF_ERROR(GetVarint64(cursor, &count));
    COLMR_RETURN_IF_ERROR(CheckContainerCount(count, cursor->size()));
    Value::MapEntries entries;
    entries.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t id;
      COLMR_RETURN_IF_ERROR(GetVarint64(cursor, &id));
      if (id >= dict_.size()) {
        return Status::Corruption("cif column: dictionary id out of range");
      }
      Value v;
      COLMR_RETURN_IF_ERROR(DecodeValue(*type_->element(), cursor, &v));
      entries.emplace_back(dict_.Lookup(static_cast<uint32_t>(id)),
                           std::move(v));
    }
    *out = Value::Map(std::move(entries));
    return Status::OK();
  });
}

Status ColumnFileReader::SkipOneValue() {
  switch (layout_) {
    case ColumnLayout::kDictSkipList:
      return DecodeWithRetry(input_.get(), [&](Slice* cursor) -> Status {
        uint64_t count;
        COLMR_RETURN_IF_ERROR(GetVarint64(cursor, &count));
        for (uint64_t i = 0; i < count; ++i) {
          uint64_t id;
          COLMR_RETURN_IF_ERROR(GetVarint64(cursor, &id));
          COLMR_RETURN_IF_ERROR(SkipValue(*type_->element(), cursor));
        }
        return Status::OK();
      });
    default:
      return SkipValueFromReader(*type_, input_.get());
  }
}

Status ColumnFileReader::ReadValue(Value* out) {
  if (current_row_ >= row_count_) {
    return Status::OutOfRange("cif column: past end");
  }
  switch (layout_) {
    case ColumnLayout::kPlain:
      COLMR_RETURN_IF_ERROR(DecodeValueFromReader(*type_, input_.get(), out));
      break;
    case ColumnLayout::kSkipList:
      COLMR_RETURN_IF_ERROR(ConsumeBoundary());
      COLMR_RETURN_IF_ERROR(DecodeValueFromReader(*type_, input_.get(), out));
      break;
    case ColumnLayout::kDictSkipList:
      COLMR_RETURN_IF_ERROR(ConsumeBoundary());
      COLMR_RETURN_IF_ERROR(ReadDcslValue(out));
      break;
    case ColumnLayout::kCompressedBlocks: {
      if (!block_loaded_) {
        COLMR_RETURN_IF_ERROR(LoadBlock());
      }
      COLMR_RETURN_IF_ERROR(DecodeValue(*type_, &block_cursor_, out));
      if (--block_rows_left_ == 0) block_loaded_ = false;
      break;
    }
  }
  ++current_row_;
  if (current_row_ % kCifSkip0 == 0) boundary_done_ = false;
  m_values_read_->Increment();
  return Status::OK();
}

Status ColumnFileReader::DecodeSegmentBatch(uint64_t count,
                                            ColumnBatch* batch) {
  uint64_t left = count;
  size_t window = 4096;
  while (left > 0) {
    Slice view;
    COLMR_RETURN_IF_ERROR(input_->Peek(window, &view));
    Slice cursor = view;
    // A pinned window is an immutable cache block the batch can keep
    // alive, so strings decode as zero-copy slices into it; the owned
    // buffer is recycled by the next fill, so strings must be copied out.
    std::shared_ptr<const std::string> pin = input_->PinnedWindow();
    size_t got = 0;
    Status s = DecodeColumnBatch(*type_, &cursor, left,
                                 /*copy_strings=*/pin == nullptr, batch, &got);
    if (got > 0 && pin != nullptr) batch->AddKeepalive(std::move(pin));
    const size_t consumed = cursor.data() - view.data();
    const size_t view_left = view.size() - consumed;
    input_->Consume(consumed);
    current_row_ += got;
    left -= got;
    m_values_read_->Increment(got);
    if (s.ok()) continue;
    // Same truncation-vs-corruption test as DecodeWithRetry: grow the
    // window while the failure could be a value straddling its edge. The
    // failing value saw view_left bytes; only if that already covered
    // everything left in the file is the error real.
    if (!s.IsCorruption() || view_left >= input_->Remaining()) {
      return s;
    }
    if (got == 0) window *= 2;
  }
  return Status::OK();
}

Status ColumnFileReader::DecodeDcslSegmentBatch(uint64_t count,
                                                ColumnBatch* batch) {
  uint64_t left = count;
  size_t window = 4096;
  while (left > 0) {
    Slice view;
    COLMR_RETURN_IF_ERROR(input_->Peek(window, &view));
    Slice cursor = view;
    size_t got = 0;
    Status s;
    while (got < left) {
      const Slice value_start = cursor;
      uint64_t n_entries = 0;
      s = GetVarint64(&cursor, &n_entries);
      if (s.ok()) s = CheckContainerCount(n_entries, cursor.size());
      Value::MapEntries entries;
      if (s.ok()) {
        dcsl_ids_.clear();
        entries.reserve(n_entries);
        for (uint64_t i = 0; i < n_entries && s.ok(); ++i) {
          uint64_t id = 0;
          s = GetVarint64(&cursor, &id);
          if (s.ok() && id >= dict_.size()) {
            s = Status::Corruption("cif column: dictionary id out of range");
          }
          if (!s.ok()) break;
          dcsl_ids_.push_back(id);
          Value v;
          s = DecodeValue(*type_->element(), &cursor, &v);
          if (!s.ok()) break;
          entries.emplace_back(std::string(), std::move(v));
        }
      }
      if (s.ok()) {
        // Bulk id resolution: one pass over the collected ids.
        dcsl_keys_.resize(dcsl_ids_.size());
        s = dict_.LookupBulk(dcsl_ids_.data(), dcsl_ids_.size(),
                             dcsl_keys_.data());
        if (s.ok()) {
          for (size_t i = 0; i < entries.size(); ++i) {
            entries[i].first = *dcsl_keys_[i];
          }
        }
      }
      if (!s.ok()) {
        cursor = value_start;
        break;
      }
      batch->AppendBoxed(Value::Map(std::move(entries)));
      ++got;
    }
    const size_t consumed = cursor.data() - view.data();
    const size_t view_left = view.size() - consumed;
    input_->Consume(consumed);
    current_row_ += got;
    left -= got;
    m_values_read_->Increment(got);
    if (s.ok()) continue;
    if (!s.IsCorruption() || view_left >= input_->Remaining()) {
      return s;
    }
    if (got == 0) window *= 2;
  }
  return Status::OK();
}

Status ColumnFileReader::NextBatch(uint64_t n, ColumnBatch* batch) {
  batch->Reset(type_->kind());
  uint64_t take = std::min(n, row_count_ - current_row_);
  ScopedSpan span(trace_, "cif_next_batch", "cif");
  if (span.active()) span.AddArg("rows", take);
  switch (layout_) {
    case ColumnLayout::kPlain:
      return DecodeSegmentBatch(take, batch);
    case ColumnLayout::kSkipList:
    case ColumnLayout::kDictSkipList: {
      while (take > 0) {
        COLMR_RETURN_IF_ERROR(ConsumeBoundary());
        const uint64_t to_boundary = kCifSkip0 - current_row_ % kCifSkip0;
        const uint64_t seg = std::min(take, to_boundary);
        if (layout_ == ColumnLayout::kSkipList) {
          COLMR_RETURN_IF_ERROR(DecodeSegmentBatch(seg, batch));
        } else {
          COLMR_RETURN_IF_ERROR(DecodeDcslSegmentBatch(seg, batch));
        }
        take -= seg;
        if (current_row_ % kCifSkip0 == 0) boundary_done_ = false;
      }
      return Status::OK();
    }
    case ColumnLayout::kCompressedBlocks: {
      while (take > 0) {
        if (!block_loaded_) {
          COLMR_RETURN_IF_ERROR(LoadBlock());
        }
        const uint64_t seg = std::min(take, block_rows_left_);
        size_t got = 0;
        // The block is fully resident and decompressed, so any decode
        // failure is real corruption, never truncation — no retry.
        Status s = DecodeColumnBatch(*type_, &block_cursor_, seg,
                                     /*copy_strings=*/true, batch, &got);
        current_row_ += got;
        block_rows_left_ -= got;
        take -= got;
        m_values_read_->Increment(got);
        if (block_rows_left_ == 0) block_loaded_ = false;
        COLMR_RETURN_IF_ERROR(s);
      }
      return Status::OK();
    }
  }
  return Status::Corruption("cif column: unknown layout");
}

Status ColumnFileReader::SkipRows(uint64_t n) {
  n = std::min(n, row_count_ - current_row_);
  m_rows_skipped_->Increment(n);
  if (layout_ == ColumnLayout::kCompressedBlocks) {
    while (n > 0) {
      if (block_loaded_) {
        // Drain or finish the current (already decompressed) block.
        const uint64_t take = std::min(n, block_rows_left_);
        for (uint64_t i = 0; i < take; ++i) {
          COLMR_RETURN_IF_ERROR(SkipValue(*type_, &block_cursor_));
        }
        m_values_skipped_->Increment(take);
        block_rows_left_ -= take;
        if (block_rows_left_ == 0) block_loaded_ = false;
        current_row_ += take;
        n -= take;
        continue;
      }
      // At a block header: skip whole blocks without decompressing —
      // the lazy-decompression payoff of the block layout.
      uint64_t n_records, compressed_len;
      COLMR_RETURN_IF_ERROR(input_->ReadVarint64(&n_records));
      COLMR_RETURN_IF_ERROR(input_->ReadVarint64(&compressed_len));
      if (n >= n_records) {
        COLMR_RETURN_IF_ERROR(input_->Skip(compressed_len));
        m_blocks_skipped_->Increment();
        m_skipped_bytes_->Increment(compressed_len);
        current_row_ += n_records;
        n -= n_records;
      } else {
        // Partial skip: the block must be decompressed to find value
        // boundaries.
        Slice compressed;
        COLMR_RETURN_IF_ERROR(input_->Peek(compressed_len, &compressed));
        if (compressed.size() < compressed_len) {
          return Status::Corruption("cif column: truncated block");
        }
        block_.Clear();
        COLMR_RETURN_IF_ERROR(
            codec_->Decompress(compressed.Prefix(compressed_len), &block_));
        input_->Consume(compressed_len);
        block_cursor_ = block_.AsSlice();
        block_rows_left_ = n_records;
        block_loaded_ = true;
        m_blocks_decompressed_->Increment();
        m_decompressed_bytes_->Increment(block_cursor_.size());
      }
    }
    return Status::OK();
  }

  const bool has_skip_list = layout_ == ColumnLayout::kSkipList ||
                             layout_ == ColumnLayout::kDictSkipList;
  while (n > 0) {
    if (has_skip_list && current_row_ % kCifSkip0 == 0 && !boundary_done_ &&
        current_row_ < row_count_) {
      COLMR_RETURN_IF_ERROR(ConsumeBoundary());
      if (n >= kCifSkip2 && current_row_ % kCifSkip2 == 0 &&
          current_row_ + kCifSkip2 <= row_count_) {
        COLMR_RETURN_IF_ERROR(input_->Skip(skip1000_));
        m_rowgroups_skipped_->Increment(kCifSkip2 / kCifSkip0);
        m_skipped_bytes_->Increment(skip1000_);
        current_row_ += kCifSkip2;
        n -= kCifSkip2;
        boundary_done_ = false;
        continue;
      }
      if (n >= kCifSkip1 && current_row_ % kCifSkip1 == 0 &&
          current_row_ + kCifSkip1 <= row_count_) {
        COLMR_RETURN_IF_ERROR(input_->Skip(skip100_));
        m_rowgroups_skipped_->Increment(kCifSkip1 / kCifSkip0);
        m_skipped_bytes_->Increment(skip100_);
        current_row_ += kCifSkip1;
        n -= kCifSkip1;
        boundary_done_ = false;
        continue;
      }
      if (n >= kCifSkip0 && current_row_ + kCifSkip0 <= row_count_) {
        COLMR_RETURN_IF_ERROR(input_->Skip(skip10_));
        m_rowgroups_skipped_->Increment(1);
        m_skipped_bytes_->Increment(skip10_);
        current_row_ += kCifSkip0;
        n -= kCifSkip0;
        boundary_done_ = false;
        continue;
      }
    }
    // Value-by-value: decode lengths but do not materialize (this is all
    // a plain column can do — "each record is skipped individually,
    // resulting in no deserialization or I/O savings").
    if (has_skip_list) {
      COLMR_RETURN_IF_ERROR(ConsumeBoundary());
    }
    COLMR_RETURN_IF_ERROR(SkipOneValue());
    m_values_skipped_->Increment();
    ++current_row_;
    if (current_row_ % kCifSkip0 == 0) boundary_done_ = false;
    --n;
  }
  return Status::OK();
}

}  // namespace colmr
