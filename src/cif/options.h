#ifndef COLMR_CIF_OPTIONS_H_
#define COLMR_CIF_OPTIONS_H_

#include <cstdint>
#include <map>
#include <string>

#include "compress/codec.h"

namespace colmr {

/// On-disk layout of one column file — the per-column design choices of
/// paper Section 5: plain, skip list (Fig. 6), compressed blocks, or
/// dictionary-compressed skip list (DCSL). Values are stable on-disk tags.
enum class ColumnLayout : uint8_t {
  /// Concatenated serialized values. Skipping a record decodes (without
  /// materializing) its bytes.
  kPlain = 0,
  /// Values interleaved with skip blocks holding byte offsets for 10/100/
  /// 1000-record jumps, so LazyRecord can skip without touching bytes.
  kSkipList = 1,
  /// Values grouped into codec-compressed blocks with
  /// {record count, size} headers; unaccessed blocks are skipped without
  /// decompression (lazy decompression, Section 5.3).
  kCompressedBlocks = 2,
  /// Skip-list layout for map columns in which keys are dictionary-coded
  /// per 1000-record group: single values decode without decompressing
  /// any block (DCSL, Section 5.3).
  kDictSkipList = 3,
};

/// Per-column storage configuration.
struct ColumnOptions {
  ColumnLayout layout = ColumnLayout::kPlain;
  /// Codec for kCompressedBlocks.
  CodecType codec = CodecType::kLzf;
  /// Raw bytes per compressed block (kCompressedBlocks). Set at load time;
  /// trades compression ratio against decompression granularity.
  uint64_t block_size = 64 * 1024;
};

/// Configuration of a COF load: split-directory sizing plus column
/// layouts.
struct CofOptions {
  /// Raw (encoded) bytes per split-directory before a new one is started.
  /// The paper sizes split-directories at c HDFS blocks for c columns;
  /// scaled down here alongside the block size.
  uint64_t split_target_bytes = 8ull << 20;

  /// Layout applied to columns with no override.
  ColumnOptions default_column;

  /// Per-column overrides, keyed by field name — e.g. Table 1's layouts
  /// apply DCSL to the metadata map only.
  std::map<std::string, ColumnOptions> column_overrides;

  const ColumnOptions& ForColumn(const std::string& name) const {
    auto it = column_overrides.find(name);
    return it == column_overrides.end() ? default_column : it->second;
  }
};

}  // namespace colmr

#endif  // COLMR_CIF_OPTIONS_H_
