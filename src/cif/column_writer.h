#ifndef COLMR_CIF_COLUMN_WRITER_H_
#define COLMR_CIF_COLUMN_WRITER_H_

#include <memory>
#include <string>
#include <vector>

#include "cif/column_stats.h"
#include "cif/options.h"
#include "common/buffer.h"
#include "compress/dictionary.h"
#include "hdfs/mini_hdfs.h"
#include "serde/schema.h"
#include "serde/value.h"

namespace colmr {

// Column file layout (shared by all four ColumnLayouts):
//   header:  magic "COL1", layout byte, varint row count, length-prefixed
//            column type text, layout parameters
//   body:    per layout, see options.h
//
// Skip-list body (Fig. 6): before every 10th row a skip block of fixed32
// entries — skip1000 (rows ≡ 0 mod 1000), skip100 (mod 100), skip10 —
// each measuring the bytes from the first value after the block to the
// skip block at the corresponding later row (or to end-of-file when fewer
// rows remain). DCSL additionally places a dictionary block
// (fixed32 length + serialized StringDictionary) before the skip block at
// every 1000th row; map keys in that group are varint dictionary ids.

/// Writes one column file. Because HDFS files are append-only, the writer
/// double-buffers the encoded values and emits the file at Close() once
/// every skip offset is known — the load-time cost the paper quantifies
/// in Appendix B.3.
class ColumnFileWriter {
 public:
  static Status Create(MiniHdfs* fs, const std::string& path, Schema::Ptr type,
                       const ColumnOptions& options,
                       std::unique_ptr<ColumnFileWriter>* writer);

  ColumnFileWriter(const ColumnFileWriter&) = delete;
  ColumnFileWriter& operator=(const ColumnFileWriter&) = delete;

  /// Appends one value (must conform to the column type).
  Status Append(const Value& value);

  /// Assembles and writes the file. Must be called exactly once.
  Status Close();

  uint64_t row_count() const { return sizes_.size(); }
  /// Raw encoded bytes buffered so far (pre-compression), used by COF to
  /// decide when to roll to the next split-directory.
  uint64_t raw_bytes() const { return values_.size(); }

 private:
  ColumnFileWriter(std::unique_ptr<FileWriter> file, Schema::Ptr type,
                   const ColumnOptions& options);

  Status CloseSkipList(Buffer* body) const;
  Status CloseCompressedBlocks(Buffer* body) const;

  std::unique_ptr<FileWriter> file_;
  Schema::Ptr type_;
  ColumnOptions options_;

  Buffer values_;               // concatenated encoded values
  std::vector<uint32_t> sizes_; // per-value encoded size
  // DCSL state: one dictionary per 1000-row group, built incrementally.
  std::vector<StringDictionary> dicts_;
  // Zone-map accumulation (DESIGN.md §13), serialized as the footer.
  ColumnStatsCollector stats_;
};

}  // namespace colmr

#endif  // COLMR_CIF_COLUMN_WRITER_H_
