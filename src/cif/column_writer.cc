#include "cif/column_writer.h"

#include "cif/column_format.h"
#include "common/coding.h"
#include "serde/encoding.h"

namespace colmr {

ColumnFileWriter::ColumnFileWriter(std::unique_ptr<FileWriter> file,
                                   Schema::Ptr type,
                                   const ColumnOptions& options)
    : file_(std::move(file)), type_(std::move(type)), options_(options) {}

Status ColumnFileWriter::Create(MiniHdfs* fs, const std::string& path,
                                Schema::Ptr type, const ColumnOptions& options,
                                std::unique_ptr<ColumnFileWriter>* writer) {
  if (options.layout == ColumnLayout::kDictSkipList &&
      type->kind() != TypeKind::kMap) {
    return Status::InvalidArgument(
        "cif: dictionary-compressed skip lists require a map column");
  }
  if (options.layout == ColumnLayout::kCompressedBlocks &&
      GetCodec(options.codec) == nullptr) {
    return Status::InvalidArgument("cif: unknown codec");
  }
  std::unique_ptr<FileWriter> file;
  COLMR_RETURN_IF_ERROR(fs->Create(path, &file));
  writer->reset(new ColumnFileWriter(std::move(file), std::move(type), options));
  return Status::OK();
}

Status ColumnFileWriter::Append(const Value& value) {
  const size_t before = values_.size();
  if (options_.layout == ColumnLayout::kDictSkipList) {
    // Dict-encode: per 1000-row group, keys become varint ids.
    const uint64_t group = row_count() / kCifDictInterval;
    if (group == dicts_.size()) dicts_.emplace_back();
    StringDictionary& dict = dicts_[group];
    if (value.kind() != TypeKind::kMap) {
      return Status::InvalidArgument("cif: DCSL value must be a map");
    }
    const auto& entries = value.map_entries();
    PutVarint64(&values_, entries.size());
    for (const auto& [key, v] : entries) {
      PutVarint64(&values_, dict.Intern(key));
      COLMR_RETURN_IF_ERROR(EncodeValue(*type_->element(), v, &values_));
    }
  } else {
    COLMR_RETURN_IF_ERROR(EncodeValue(*type_, value, &values_));
  }
  sizes_.push_back(static_cast<uint32_t>(values_.size() - before));
  stats_.Observe(value);
  return Status::OK();
}

namespace {

/// Number of fixed32 skip entries in the skip block at row r.
int SkipEntryCount(uint64_t r) {
  return 1 + (r % kCifSkip1 == 0 ? 1 : 0) + (r % kCifSkip2 == 0 ? 1 : 0);
}

}  // namespace

Status ColumnFileWriter::CloseSkipList(Buffer* body) const {
  const bool has_dict = options_.layout == ColumnLayout::kDictSkipList;
  const uint64_t n = sizes_.size();

  // Serialize the dictionaries once so their sizes are known.
  std::vector<std::string> dict_bytes;
  if (has_dict) {
    dict_bytes.reserve(dicts_.size());
    for (const StringDictionary& dict : dicts_) {
      Buffer b;
      dict.Serialize(&b);
      dict_bytes.push_back(b.TakeString());
    }
  }

  // Pass 1: compute the body offset of every boundary structure and every
  // value (this is why skip-list loading double-buffers: HDFS appends
  // cannot be patched after the fact).
  std::vector<uint64_t> block_pos((n + kCifSkip0 - 1) / kCifSkip0, 0);
  std::vector<uint64_t> value_pos(n, 0);
  uint64_t offset = 0;
  for (uint64_t r = 0; r < n; ++r) {
    if (r % kCifSkip0 == 0) {
      block_pos[r / kCifSkip0] = offset;
      if (has_dict && r % kCifDictInterval == 0) {
        offset += 4 + dict_bytes[r / kCifDictInterval].size();
      }
      offset += 4 * SkipEntryCount(r);
    }
    value_pos[r] = offset;
    offset += sizes_[r];
  }
  const uint64_t body_end = offset;
  auto target = [&](uint64_t row) {
    return row < n ? block_pos[row / kCifSkip0] : body_end;
  };

  // Pass 2: emit.
  Slice all_values = values_.AsSlice();
  size_t value_offset = 0;
  for (uint64_t r = 0; r < n; ++r) {
    if (r % kCifSkip0 == 0) {
      if (has_dict && r % kCifDictInterval == 0) {
        const std::string& d = dict_bytes[r / kCifDictInterval];
        PutFixed32(body, static_cast<uint32_t>(d.size()));
        body->Append(d);
      }
      const uint64_t vstart = value_pos[r];
      if (r % kCifSkip2 == 0) {
        PutFixed32(body, static_cast<uint32_t>(target(r + kCifSkip2) - vstart));
      }
      if (r % kCifSkip1 == 0) {
        PutFixed32(body, static_cast<uint32_t>(target(r + kCifSkip1) - vstart));
      }
      PutFixed32(body, static_cast<uint32_t>(target(r + kCifSkip0) - vstart));
    }
    body->Append(all_values.SubSlice(value_offset, sizes_[r]));
    value_offset += sizes_[r];
  }
  return Status::OK();
}

Status ColumnFileWriter::CloseCompressedBlocks(Buffer* body) const {
  const Codec* codec = GetCodec(options_.codec);
  Slice all_values = values_.AsSlice();
  size_t value_offset = 0;
  size_t r = 0;
  const size_t n = sizes_.size();
  while (r < n) {
    // Greedily fill one block up to block_size raw bytes (at least one
    // value per block).
    size_t block_rows = 0;
    size_t block_bytes = 0;
    while (r + block_rows < n &&
           (block_rows == 0 || block_bytes < options_.block_size)) {
      block_bytes += sizes_[r + block_rows];
      ++block_rows;
    }
    Buffer compressed;
    COLMR_RETURN_IF_ERROR(codec->Compress(
        all_values.SubSlice(value_offset, block_bytes), &compressed));
    PutVarint64(body, block_rows);
    PutVarint64(body, compressed.size());
    body->Append(compressed.AsSlice());
    value_offset += block_bytes;
    r += block_rows;
  }
  return Status::OK();
}

Status ColumnFileWriter::Close() {
  Buffer header;
  header.Append(Slice(kCifColumnMagic, 4));
  header.PushBack(static_cast<char>(options_.layout));
  PutVarint64(&header, row_count());
  PutLengthPrefixed(&header, type_->ToString());
  if (options_.layout == ColumnLayout::kCompressedBlocks) {
    header.PushBack(static_cast<char>(options_.codec));
    PutVarint64(&header, options_.block_size);
  }
  file_->Append(header.AsSlice());

  Buffer body;
  switch (options_.layout) {
    case ColumnLayout::kPlain:
      file_->Append(values_.AsSlice());
      body.Clear();
      break;
    case ColumnLayout::kSkipList:
    case ColumnLayout::kDictSkipList:
      COLMR_RETURN_IF_ERROR(CloseSkipList(&body));
      break;
    case ColumnLayout::kCompressedBlocks:
      COLMR_RETURN_IF_ERROR(CloseCompressedBlocks(&body));
      break;
  }
  file_->Append(body.AsSlice());
  // Zone-map footer, after the body. Readers stop at row_count, and every
  // skip-list target clamps to body end, so the trailing bytes are
  // invisible to scans; only ReadColumnStats looks at them.
  Buffer footer;
  stats_.AppendFooter(&footer);
  file_->Append(footer.AsSlice());
  return file_->Close();
}

}  // namespace colmr
