#ifndef COLMR_CIF_COLUMN_READER_H_
#define COLMR_CIF_COLUMN_READER_H_

#include <memory>
#include <string>

#include "cif/options.h"
#include "common/buffer.h"
#include "compress/dictionary.h"
#include "hdfs/reader.h"
#include "serde/batch.h"
#include "serde/schema.h"
#include "serde/value.h"

namespace colmr {

/// Decodes one value of `schema` at the reader's cursor, growing the peek
/// window until the value fits. Consumes exactly the value's bytes.
Status DecodeValueFromReader(const Schema& schema, BufferedReader* input,
                             Value* out);

/// Advances the reader past one encoded value without materializing it.
Status SkipValueFromReader(const Schema& schema, BufferedReader* input);

/// Reads one CIF column file, in any of the four layouts. The reader is a
/// cursor over rows: ReadValue() materializes the value at the current row
/// and advances; SkipRows(n) advances without materializing — through skip
/// blocks, whole compressed blocks, or value-by-value byte skipping,
/// depending on the layout. This is the skip() primitive LazyRecord calls
/// as skip(curPos - lastPos) (paper Section 5.2).
class ColumnFileReader {
 public:
  static Status Open(MiniHdfs* fs, const std::string& path,
                     const ReadContext& context,
                     std::unique_ptr<ColumnFileReader>* reader);

  ColumnFileReader(const ColumnFileReader&) = delete;
  ColumnFileReader& operator=(const ColumnFileReader&) = delete;

  /// Materializes the value at the current row and advances one row.
  Status ReadValue(Value* out);

  /// Batch read (DESIGN.md §10): resets *batch and fills it with the next
  /// min(n, remaining) rows, advancing the cursor past them. Plain and
  /// skip-list layouts decode straight out of the buffered window — when
  /// the window is a pinned cache block, strings are zero-copy slices
  /// into it, kept alive by the batch. Returns OK with an empty batch at
  /// end of column. On error, the batch holds the rows decoded before the
  /// failing value (the cursor rests on it) and the status matches what
  /// the scalar ReadValue would have returned at that row.
  Status NextBatch(uint64_t n, ColumnBatch* batch);

  /// Advances n rows (clamped to the end) without materializing values.
  Status SkipRows(uint64_t n);

  uint64_t row_count() const { return row_count_; }
  uint64_t current_row() const { return current_row_; }
  const Schema::Ptr& type() const { return type_; }
  ColumnLayout layout() const { return layout_; }

 private:
  ColumnFileReader() = default;

  Status ParseHeader();
  /// Skip-list layouts: parses the boundary structure (dictionary block +
  /// skip entries) when the cursor sits on one.
  Status ConsumeBoundary();
  /// Block layout: reads the next block header and decompresses it.
  Status LoadBlock();
  Status ReadDcslValue(Value* out);
  Status SkipOneValue();
  /// Batch helpers: windowed decode of `count` rows into *batch for the
  /// uncompressed layouts (plain segment / skip-list segment / DCSL
  /// segment respectively).
  Status DecodeSegmentBatch(uint64_t count, ColumnBatch* batch);
  Status DecodeDcslSegmentBatch(uint64_t count, ColumnBatch* batch);

  std::unique_ptr<BufferedReader> input_;
  Schema::Ptr type_;
  ColumnLayout layout_ = ColumnLayout::kPlain;
  uint64_t row_count_ = 0;
  uint64_t current_row_ = 0;

  // Skip-list state.
  bool boundary_done_ = false;
  uint64_t skip10_ = 0;
  uint64_t skip100_ = 0;
  uint64_t skip1000_ = 0;
  StringDictionary dict_;  // DCSL: dictionary of the current 1000-row group

  // Compressed-block state.
  const Codec* codec_ = nullptr;
  bool block_loaded_ = false;
  Buffer block_;
  Slice block_cursor_;
  uint64_t block_rows_left_ = 0;

  // Batch-path scratch (DCSL): reused across maps so the steady state
  // allocates nothing.
  std::vector<uint64_t> dcsl_ids_;
  std::vector<const std::string*> dcsl_keys_;

  // Span sink for NextBatch (nullptr = tracing off).
  TraceCollector* trace_ = nullptr;

  // Metric handles resolved once at Open from the ReadContext registry
  // (cif.scan.* — the Figure 10 "row groups skipped / bytes not read"
  // counters live here).
  Counter* m_values_read_ = nullptr;
  Counter* m_values_skipped_ = nullptr;
  Counter* m_rows_skipped_ = nullptr;
  Counter* m_rowgroups_skipped_ = nullptr;
  Counter* m_skipped_bytes_ = nullptr;
  Counter* m_blocks_skipped_ = nullptr;
  Counter* m_blocks_decompressed_ = nullptr;
  Counter* m_decompressed_bytes_ = nullptr;
};

}  // namespace colmr

#endif  // COLMR_CIF_COLUMN_READER_H_
