#include "cif/lazy_record.h"

#include "obs/metrics.h"

namespace colmr {

LazyRecord::LazyRecord(Schema::Ptr schema,
                       std::vector<ColumnFileReader*> columns,
                       Counter* field_reads)
    : schema_(std::move(schema)), field_reads_(field_reads) {
  columns_.resize(columns.size());
  for (size_t i = 0; i < columns.size(); ++i) {
    columns_[i].reader = columns[i];
  }
}

Status LazyRecord::Get(std::string_view name, const Value** value) {
  const int index = schema_->FieldIndex(std::string(name));
  if (index < 0) {
    return Status::NotFound("no such field: " + std::string(name));
  }
  ColumnState& column = columns_[index];
  if (column.reader == nullptr) {
    return Status::NotFound("field not in projection: " + std::string(name));
  }
  if (column.cached_row != cur_pos_) {
    const bool in_window = win_rows_ > 0 && cur_pos_ >= win_start_ &&
                           cur_pos_ < win_start_ + win_rows_;
    const bool resident = in_window && cur_pos_ >= column.batch_start &&
                          cur_pos_ < column.batch_start + column.batch.size();
    if (in_window && !resident) {
      // First touch of this column inside the batch window: skip to
      // curPos, then decode ahead to the window's end in one call.
      const uint64_t last_pos = column.reader->current_row();
      if (last_pos > cur_pos_) {
        return Status::InvalidArgument("lazy record: column past cur_pos");
      }
      COLMR_RETURN_IF_ERROR(column.reader->SkipRows(cur_pos_ - last_pos));
      COLMR_RETURN_IF_ERROR(column.reader->NextBatch(
          win_start_ + win_rows_ - cur_pos_, &column.batch));
      column.batch_start = cur_pos_;
    }
    if (in_window) {
      const size_t offset = static_cast<size_t>(cur_pos_ - column.batch_start);
      if (column.batch.is_boxed()) {
        column.cached_ptr = column.batch.BoxedAt(offset);
      } else {
        column.batch.MaterializeInto(offset, &column.cached);
        column.cached_ptr = &column.cached;
      }
    } else {
      // lastPos (reader->current_row()) lags curPos by however many
      // records the map function never touched; skip them in one jump.
      const uint64_t last_pos = column.reader->current_row();
      if (last_pos > cur_pos_) {
        return Status::InvalidArgument("lazy record: column past cur_pos");
      }
      COLMR_RETURN_IF_ERROR(column.reader->SkipRows(cur_pos_ - last_pos));
      COLMR_RETURN_IF_ERROR(column.reader->ReadValue(&column.cached));
      column.cached_ptr = &column.cached;
    }
    column.cached_row = cur_pos_;
    if (field_reads_ != nullptr) field_reads_->Increment();
  }
  *value = column.cached_ptr;
  return Status::OK();
}

}  // namespace colmr
