#include "cif/lazy_record.h"

#include "obs/metrics.h"

namespace colmr {

LazyRecord::LazyRecord(Schema::Ptr schema,
                       std::vector<ColumnFileReader*> columns,
                       Counter* field_reads)
    : schema_(std::move(schema)), field_reads_(field_reads) {
  columns_.resize(columns.size());
  for (size_t i = 0; i < columns.size(); ++i) {
    columns_[i].reader = columns[i];
  }
}

Status LazyRecord::Get(std::string_view name, const Value** value) {
  const int index = schema_->FieldIndex(std::string(name));
  if (index < 0) {
    return Status::NotFound("no such field: " + std::string(name));
  }
  ColumnState& column = columns_[index];
  if (column.reader == nullptr) {
    return Status::NotFound("field not in projection: " + std::string(name));
  }
  if (column.cached_row != cur_pos_) {
    // lastPos (reader->current_row()) lags curPos by however many records
    // the map function never touched; skip them in one jump.
    const uint64_t last_pos = column.reader->current_row();
    if (last_pos > cur_pos_) {
      return Status::InvalidArgument("lazy record: column past cur_pos");
    }
    COLMR_RETURN_IF_ERROR(column.reader->SkipRows(cur_pos_ - last_pos));
    COLMR_RETURN_IF_ERROR(column.reader->ReadValue(&column.cached));
    column.cached_row = cur_pos_;
    if (field_reads_ != nullptr) field_reads_->Increment();
  }
  *value = &column.cached;
  return Status::OK();
}

}  // namespace colmr
