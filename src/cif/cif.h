#ifndef COLMR_CIF_CIF_H_
#define COLMR_CIF_CIF_H_

#include <memory>
#include <string>
#include <vector>

#include "mapreduce/input_format.h"

namespace colmr {

struct JobConfig;

/// ColumnInputFormat (paper Section 4.2): each split-directory written by
/// CofWriter becomes one split whose paths are exactly the column files of
/// the projected fields, so unprojected columns are never opened — CIF's
/// whole-file I/O elimination. Split locations are the nodes holding every
/// projected file locally (all replicas under CPP, usually none under the
/// default placement policy — the Section 6.4 contrast).
///
/// Configure the projection with JobConfig::projection (the paper's
/// ColumnInputFormat.setColumns) and the record construction strategy with
/// JobConfig::lazy_records (EagerRecord vs LazyRecord).
class ColumnInputFormat final : public InputFormat {
 public:
  std::string name() const override { return "cif"; }
  using InputFormat::GetSplits;
  Status GetSplits(MiniHdfs* fs, const JobConfig& config,
                   const ReadContext& context,
                   std::vector<InputSplit>* splits) override;
  Status CreateRecordReader(MiniHdfs* fs, const JobConfig& config,
                            const InputSplit& split,
                            const ReadContext& context,
                            std::unique_ptr<RecordReader>* reader) override;
};

}  // namespace colmr

#endif  // COLMR_CIF_CIF_H_
