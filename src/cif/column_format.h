#ifndef COLMR_CIF_COLUMN_FORMAT_H_
#define COLMR_CIF_COLUMN_FORMAT_H_

#include <cstdint>

namespace colmr {

// Shared on-disk constants of the CIF column file format.

inline constexpr char kCifColumnMagic[4] = {'C', 'O', 'L', '1'};

/// Skip-list intervals (paper Section 5.2: "N is typically configured for
/// 10, 100, and 1000 record skips").
inline constexpr uint64_t kCifSkip0 = 10;
inline constexpr uint64_t kCifSkip1 = 100;
inline constexpr uint64_t kCifSkip2 = 1000;

/// Rows covered by one DCSL dictionary block (aligned with kCifSkip2 so
/// dictionary blocks sit on skip1000 boundaries).
inline constexpr uint64_t kCifDictInterval = 1000;

/// Conventional file names inside a split-directory.
inline constexpr char kCifSchemaFileName[] = "_schema";

// Zone-map stats footer (DESIGN.md §13), appended after the column body
// as [payload][fixed32 payload length][magic]. Files written before the
// footer existed lack the magic and simply report no stats.

inline constexpr char kCifStatsMagic[4] = {'C', 'S', 'T', '1'};
inline constexpr uint64_t kCifStatsVersion = 1;

/// Rows per stats rowgroup — aligned with kCifSkip2 so a pruned rowgroup
/// is exactly one skip1000 jump.
inline constexpr uint64_t kCifStatsRowGroup = kCifSkip2;

/// String min/max bounds stored in the footer are truncated to at most
/// this many bytes (plus one for the bumped max byte).
inline constexpr uint64_t kCifStatsStringPrefix = 64;

}  // namespace colmr

#endif  // COLMR_CIF_COLUMN_FORMAT_H_
