#ifndef COLMR_CIF_COLUMN_FORMAT_H_
#define COLMR_CIF_COLUMN_FORMAT_H_

#include <cstdint>

namespace colmr {

// Shared on-disk constants of the CIF column file format.

inline constexpr char kCifColumnMagic[4] = {'C', 'O', 'L', '1'};

/// Skip-list intervals (paper Section 5.2: "N is typically configured for
/// 10, 100, and 1000 record skips").
inline constexpr uint64_t kCifSkip0 = 10;
inline constexpr uint64_t kCifSkip1 = 100;
inline constexpr uint64_t kCifSkip2 = 1000;

/// Rows covered by one DCSL dictionary block (aligned with kCifSkip2 so
/// dictionary blocks sit on skip1000 boundaries).
inline constexpr uint64_t kCifDictInterval = 1000;

/// Conventional file names inside a split-directory.
inline constexpr char kCifSchemaFileName[] = "_schema";

}  // namespace colmr

#endif  // COLMR_CIF_COLUMN_FORMAT_H_
