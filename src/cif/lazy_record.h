#ifndef COLMR_CIF_LAZY_RECORD_H_
#define COLMR_CIF_LAZY_RECORD_H_

#include <memory>
#include <vector>

#include "cif/column_reader.h"
#include "serde/record.h"

namespace colmr {

/// Lazy record construction (paper Section 5.1, Fig. 5). The reader holds
/// one split-level position, curPos, advanced by the RecordReader on every
/// Next(); each column file keeps its own lastPos (the ColumnFileReader's
/// current row). Nothing is read or deserialized until the map function
/// calls Get(): the column then skips curPos - lastPos rows — through its
/// skip list if it has one — and deserializes exactly one value.
class LazyRecord final : public Record {
 public:
  /// Column readers are owned by the caller (the CIF RecordReader) and
  /// must outlive the LazyRecord; index i corresponds to schema field i,
  /// nullptr for fields outside the projection. field_reads, when given,
  /// counts Get() calls that materialize a column value
  /// (cif.lazy.field_reads).
  LazyRecord(Schema::Ptr schema, std::vector<ColumnFileReader*> columns,
             Counter* field_reads = nullptr);

  const Schema& schema() const override { return *schema_; }
  Status Get(std::string_view name, const Value** value) override;

  /// Advances the split-level position. Does no I/O.
  void AdvanceTo(uint64_t row) { cur_pos_ = row; }
  uint64_t cur_pos() const { return cur_pos_; }

  /// Declares the resident row window [start, start + rows) of the
  /// enclosing batch (DESIGN.md §10). While a window is set, the first
  /// Get() of a column inside it decodes that column in bulk to the
  /// window's end — laziness stays column-granular (untouched columns
  /// still skip), but a touched column pays one NextBatch instead of one
  /// ReadValue per row. rows == 0 restores pure per-row laziness.
  void SetBatchWindow(uint64_t start, uint64_t rows) {
    win_start_ = start;
    win_rows_ = rows;
  }

 private:
  struct ColumnState {
    ColumnFileReader* reader = nullptr;
    Value cached;
    uint64_t cached_row = UINT64_MAX;
    /// Points at `cached` or into `batch`; what Get() hands out.
    const Value* cached_ptr = nullptr;
    /// Rows [batch_start, batch_start + batch.size()) decoded ahead.
    ColumnBatch batch;
    uint64_t batch_start = 0;
  };

  Schema::Ptr schema_;
  std::vector<ColumnState> columns_;
  uint64_t cur_pos_ = 0;
  uint64_t win_start_ = 0;
  uint64_t win_rows_ = 0;
  Counter* field_reads_ = nullptr;
};

}  // namespace colmr

#endif  // COLMR_CIF_LAZY_RECORD_H_
