#include "cif/loader.h"

#include "mapreduce/job.h"

namespace colmr {

Status MaterializeRecord(Record* record, Value* out) {
  const Schema& schema = record->schema();
  std::vector<Value> values;
  values.reserve(schema.fields().size());
  for (const auto& field : schema.fields()) {
    const Value* value = nullptr;
    Status s = record->Get(field.name, &value);
    if (s.ok()) {
      values.push_back(*value);
    } else if (s.IsNotFound()) {
      values.push_back(Value::Null());
    } else {
      return s;
    }
  }
  *out = Value::Record(std::move(values));
  return Status::OK();
}

Status CopyDataset(MiniHdfs* fs, InputFormat* input_format,
                   const std::vector<std::string>& input_paths,
                   DatasetWriter* out) {
  JobConfig config;
  config.input_paths = input_paths;
  std::vector<InputSplit> splits;
  COLMR_RETURN_IF_ERROR(input_format->GetSplits(fs, config, &splits));
  for (const InputSplit& split : splits) {
    std::unique_ptr<RecordReader> reader;
    COLMR_RETURN_IF_ERROR(input_format->CreateRecordReader(
        fs, config, split, ReadContext{}, &reader));
    while (reader->Next()) {
      Value record;
      COLMR_RETURN_IF_ERROR(MaterializeRecord(&reader->record(), &record));
      COLMR_RETURN_IF_ERROR(out->WriteRecord(record));
    }
    COLMR_RETURN_IF_ERROR(reader->status());
  }
  return Status::OK();
}

}  // namespace colmr
