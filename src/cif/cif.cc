#include "cif/cif.h"

#include <algorithm>

#include "cif/column_format.h"
#include "cif/column_reader.h"
#include "cif/column_stats.h"
#include "cif/lazy_record.h"
#include "formats/text/text_format.h"
#include "mapreduce/job.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serde/predicate.h"

namespace colmr {

namespace {

/// Resolves the projected field list: configured names, or all fields.
/// When tolerate_missing is set, projected names the schema lacks go to
/// *missing (schema evolution: split-directories written before an
/// AddColumn) instead of failing.
Status ResolveProjection(const Schema& schema,
                         const std::vector<std::string>& names,
                         bool tolerate_missing, std::vector<int>* indices,
                         std::vector<std::string>* missing) {
  indices->clear();
  if (missing != nullptr) missing->clear();
  if (names.empty()) {
    for (size_t i = 0; i < schema.fields().size(); ++i) {
      indices->push_back(static_cast<int>(i));
    }
    return Status::OK();
  }
  for (const std::string& name : names) {
    const int index = schema.FieldIndex(name);
    if (index < 0) {
      if (tolerate_missing) {
        if (missing != nullptr) missing->push_back(name);
        continue;
      }
      return Status::InvalidArgument("cif: unknown projected column " + name);
    }
    indices->push_back(index);
  }
  std::sort(indices->begin(), indices->end());
  return Status::OK();
}

/// The columns a reader must open: the projection plus, when the job has a
/// predicate, every column the predicate references. Predicate columns are
/// read whether or not pushdown is on — the engine needs their values to
/// evaluate the filter row-wise, so filtered output stays byte-identical
/// across the pushdown knob. Predicate columns the schema lacks go to
/// *missing (ValidatePredicate has already vetted the tolerance) and
/// evaluate as NULL.
Status ResolveReadSet(const Schema& schema, const JobConfig& config,
                      std::vector<int>* indices,
                      std::vector<std::string>* missing) {
  COLMR_RETURN_IF_ERROR(ResolveProjection(schema, config.projection,
                                          config.null_for_missing_columns,
                                          indices, missing));
  if (config.predicate == nullptr) return Status::OK();
  for (const std::string& name : PredicateColumns(*config.predicate)) {
    const int index = schema.FieldIndex(name);
    if (index < 0) {
      if (missing != nullptr &&
          std::find(missing->begin(), missing->end(), name) ==
              missing->end()) {
        missing->push_back(name);
      }
      continue;
    }
    if (std::find(indices->begin(), indices->end(), index) ==
        indices->end()) {
      indices->push_back(index);
    }
  }
  std::sort(indices->begin(), indices->end());
  return Status::OK();
}

/// File-level refutation for split pruning: merges the zone-map footers of
/// the predicate's columns in `dir` and asks whether any row can match.
/// Also reports the split's row/rowgroup counts (from the footers) for the
/// prune counters. Columns without a readable footer never refute.
bool SplitRefuted(MiniHdfs* fs, const std::string& dir, const Schema& schema,
                  const Predicate& predicate, const ReadContext& context,
                  uint64_t* rows, uint64_t* groups) {
  std::vector<std::pair<std::string, ColumnFileStats>> stats;
  for (const std::string& name : PredicateColumns(predicate)) {
    if (schema.FieldIndex(name) < 0) continue;
    ColumnFileStats file_stats;
    bool present = false;
    if (!ReadColumnStats(fs, dir + "/" + name + ".col", context, &file_stats,
                         &present)
             .ok() ||
        !present) {
      continue;
    }
    *rows = file_stats.file.values;  // one value appended per row
    *groups = file_stats.groups.size();
    stats.emplace_back(name, std::move(file_stats));
  }
  const auto lookup = [&](const std::string& name) -> const ColumnStats* {
    for (const auto& [n, s] : stats) {
      if (n == name) return &s.file;
    }
    return nullptr;
  };
  return !PredicateCanMatch(predicate, lookup);
}

/// Delegating record that answers Get() for evolved-away columns with
/// Null, forwarding everything else to the split's real record.
class NullPaddingRecord final : public Record {
 public:
  NullPaddingRecord(Record* inner, std::vector<std::string> missing)
      : inner_(inner), missing_(std::move(missing)) {}

  const Schema& schema() const override { return inner_->schema(); }

  Status Get(std::string_view name, const Value** value) override {
    for (const std::string& m : missing_) {
      if (m == name) {
        *value = &null_;
        return Status::OK();
      }
    }
    return inner_->Get(name, value);
  }

 private:
  Record* inner_;
  std::vector<std::string> missing_;
  Value null_;
};

/// Record view over one row of the resident RowBatch (eager batch path).
/// Get() materializes only the fields the map function touches, serving
/// boxed values (array/map/record) by pointer straight out of the batch
/// lane. Unprojected fields answer Null with OK, exactly like the scalar
/// EagerRecord whose value vector defaults untouched slots to Null.
class BatchRecord final : public Record {
 public:
  BatchRecord(Schema::Ptr schema, const std::vector<int>& projection,
              RowBatch* batch)
      : schema_(std::move(schema)), batch_(batch) {
    field_to_column_.assign(schema_->fields().size(), -1);
    for (size_t p = 0; p < projection.size(); ++p) {
      field_to_column_[projection[p]] = static_cast<int>(p);
    }
    lanes_.resize(projection.size());
  }

  void SetRow(uint64_t row) { row_ = row; }

  const Schema& schema() const override { return *schema_; }

  Status Get(std::string_view name, const Value** value) override {
    const int index = schema_->FieldIndex(std::string(name));
    if (index < 0) {
      return Status::NotFound("no such field: " + std::string(name));
    }
    const int column = field_to_column_[index];
    if (column < 0) {
      *value = &null_;
      return Status::OK();
    }
    const ColumnBatch& batch = batch_->columns[column];
    if (batch.is_boxed()) {
      *value = batch.BoxedAt(row_);
      return Status::OK();
    }
    Lane& lane = lanes_[column];
    if (lane.row != row_) {
      batch.MaterializeInto(row_, &lane.scratch);
      lane.row = row_;
    }
    *value = &lane.scratch;
    return Status::OK();
  }

  /// Invalidates the per-row scratch cache; called when the batch refills.
  void InvalidateCache() {
    for (Lane& lane : lanes_) lane.row = UINT64_MAX;
  }

 private:
  struct Lane {
    Value scratch;
    uint64_t row = UINT64_MAX;
  };

  Schema::Ptr schema_;
  RowBatch* batch_;
  std::vector<int> field_to_column_;  // field index -> projection position
  std::vector<Lane> lanes_;
  uint64_t row_ = 0;
  Value null_;
};

class CifRecordReader final : public RecordReader {
 public:
  CifRecordReader(Schema::Ptr schema, std::vector<int> projection,
                  std::vector<std::unique_ptr<ColumnFileReader>> columns,
                  bool lazy, std::vector<std::string> missing_columns,
                  MetricsRegistry* metrics, TraceCollector* trace,
                  std::shared_ptr<const Predicate> predicate, bool pushdown,
                  std::vector<ColumnFileStats> stats,
                  std::vector<uint8_t> stats_present)
      : schema_(schema),
        projection_(std::move(projection)),
        columns_(std::move(columns)),
        lazy_(lazy),
        eager_record_(schema_, Value::Null()),
        trace_(trace),
        predicate_(std::move(predicate)),
        pushdown_(pushdown && predicate_ != nullptr) {
    m_records_ = metrics->counter(lazy ? "cif.records.lazy"
                                       : "cif.records.eager");
    row_count_ = columns_.empty() ? 0 : columns_.front()->row_count();
    for (const auto& column : columns_) {
      if (column->row_count() != row_count_) {
        status_ = Status::Corruption(
            "cif: column files disagree on row count");
      }
    }
    if (pushdown_) {
      m_prune_rowgroups_ = metrics->counter("cif.prune.rowgroups");
      m_prune_rows_ = metrics->counter("cif.prune.rows");
      for (size_t p = 0; p < projection_.size(); ++p) {
        lane_of_field_.emplace_back(schema_->fields()[projection_[p]].name,
                                    static_cast<int>(p));
      }
      BuildPruneMap(stats, stats_present);
    }
    std::vector<ColumnFileReader*> by_field(schema_->fields().size(), nullptr);
    for (size_t p = 0; p < projection_.size(); ++p) {
      by_field[projection_[p]] = columns_[p].get();
    }
    lazy_record_ = std::make_unique<LazyRecord>(
        schema_, std::move(by_field),
        metrics->counter("cif.lazy.field_reads"));
    row_batch_.columns.resize(projection_.size());
    column_status_.resize(projection_.size());
    batch_record_ =
        std::make_unique<BatchRecord>(schema_, projection_, &row_batch_);
    if (!missing_columns.empty()) {
      eager_padded_ = std::make_unique<NullPaddingRecord>(&eager_record_,
                                                          missing_columns);
      batch_padded_ = std::make_unique<NullPaddingRecord>(batch_record_.get(),
                                                          missing_columns);
      lazy_padded_ = std::make_unique<NullPaddingRecord>(
          lazy_record_.get(), std::move(missing_columns));
    }
  }

  uint64_t FillBatch(uint64_t max_rows) override {
    selection_valid_ = false;
    if (!status_.ok() || max_rows == 0) return 0;
    if (!pending_batch_error_.ok()) {
      // A column failed mid-way through the previous batch: its good
      // prefix has been served, so the error surfaces now.
      status_ = pending_batch_error_;
      return 0;
    }
    uint64_t next_row = static_cast<uint64_t>(row_ + 1);
    if (pushdown_) {
      const uint64_t target = NextUnprunedRow(next_row);
      if (target != next_row) {
        status_ = SkipPruned(next_row, target);
        if (!status_.ok()) return 0;
        next_row = target;
        row_ = static_cast<int64_t>(next_row) - 1;
      }
    }
    if (next_row >= row_count_) return 0;
    // Clamp the batch to the contiguous unpruned run so it never spans
    // into a pruned rowgroup.
    const uint64_t run_end = pushdown_ ? UnprunedRunEnd(next_row) : row_count_;
    const uint64_t k = std::min(max_rows, run_end - next_row);
    batch_start_row_ = next_row;
    if (lazy_) {
      // Laziness survives batching: nothing is decoded here. Columns the
      // map function touches decode ahead to the window end on first Get.
      lazy_record_->SetBatchWindow(next_row, k);
      row_ += k;
      m_records_->Increment(k);
      return k;
    }
    // Eager: bulk-decode every projected column. On error a column stops
    // early; serve the common prefix and surface the error that the
    // scalar path would have hit first (lowest row, then column order).
    uint64_t served = k;
    for (size_t p = 0; p < projection_.size(); ++p) {
      column_status_[p] = columns_[p]->NextBatch(k, &row_batch_.columns[p]);
      const uint64_t got = row_batch_.columns[p].size();
      if (got < served) served = got;
    }
    Status pending;
    for (size_t p = 0; p < projection_.size() && pending.ok(); ++p) {
      if (!column_status_[p].ok() && row_batch_.columns[p].size() == served) {
        pending = column_status_[p];
      }
    }
    row_batch_.rows = served;
    batch_record_->InvalidateCache();
    if (!pending.ok() && served == 0) {
      status_ = pending;
      return 0;
    }
    pending_batch_error_ = pending;
    row_ += served;
    m_records_->Increment(served);
    if (pushdown_ && served > 0) {
      // Vectorized filter: select the surviving rows now so the engine
      // maps only them. The lazy path skips this (no lanes are resident)
      // and lets the engine filter row-wise instead.
      const auto lane = [this](const std::string& name) -> const ColumnBatch* {
        for (const auto& [field, p] : lane_of_field_) {
          if (field == name) return &row_batch_.columns[p];
        }
        return nullptr;
      };
      evaluator_.Eval(*predicate_, lane, served, &selection_);
      selection_valid_ = true;
    }
    return served;
  }

  Record& RecordAt(uint64_t i) override {
    if (lazy_) {
      lazy_record_->AdvanceTo(batch_start_row_ + i);
      return lazy_padded_ ? static_cast<Record&>(*lazy_padded_)
                          : *lazy_record_;
    }
    batch_record_->SetRow(i);
    return batch_padded_ ? static_cast<Record&>(*batch_padded_)
                         : *batch_record_;
  }

  bool Next() override {
    if (!status_.ok()) return false;
    uint64_t next_row = static_cast<uint64_t>(row_ + 1);
    if (pushdown_) {
      const uint64_t target = NextUnprunedRow(next_row);
      if (target != next_row) {
        status_ = SkipPruned(next_row, target);
        if (!status_.ok()) return false;
        next_row = target;
      }
    }
    if (next_row >= row_count_) return false;
    row_ = static_cast<int64_t>(next_row);
    m_records_->Increment();
    if (lazy_) {
      lazy_record_->AdvanceTo(static_cast<uint64_t>(row_));
      return true;
    }
    // Eager: materialize every projected column now.
    std::vector<Value> values(schema_->fields().size());
    for (size_t p = 0; p < projection_.size(); ++p) {
      status_ = columns_[p]->ReadValue(&values[projection_[p]]);
      if (!status_.ok()) return false;
    }
    eager_record_ = EagerRecord(schema_, Value::Record(std::move(values)));
    return true;
  }

  Record& record() override {
    if (lazy_) {
      return lazy_padded_ ? static_cast<Record&>(*lazy_padded_)
                          : *lazy_record_;
    }
    return eager_padded_ ? static_cast<Record&>(*eager_padded_)
                         : eager_record_;
  }

  Status status() const override { return status_; }

  const std::vector<uint32_t>* selection() const override {
    return selection_valid_ ? &selection_ : nullptr;
  }

 private:
  /// Marks the rowgroups whose zone maps refute the predicate. `stats` is
  /// aligned with projection_; a column's stats only participate when
  /// present and when their geometry matches this split (same rows per
  /// group, a group for every kCifStatsRowGroup rows).
  void BuildPruneMap(const std::vector<ColumnFileStats>& stats,
                     const std::vector<uint8_t>& stats_present) {
    const uint64_t n_groups =
        (row_count_ + kCifStatsRowGroup - 1) / kCifStatsRowGroup;
    pruned_.assign(n_groups, 0);
    std::vector<std::pair<std::string, const ColumnFileStats*>> usable;
    for (size_t p = 0; p < stats.size() && p < projection_.size(); ++p) {
      if (stats_present.size() > p && stats_present[p] != 0 &&
          stats[p].rows_per_group == kCifStatsRowGroup &&
          stats[p].groups.size() == n_groups) {
        usable.emplace_back(schema_->fields()[projection_[p]].name,
                            &stats[p]);
      }
    }
    if (usable.empty()) return;
    for (uint64_t g = 0; g < n_groups; ++g) {
      const auto lookup =
          [&](const std::string& name) -> const ColumnStats* {
        for (const auto& [n, s] : usable) {
          if (n == name) return &s->groups[g];
        }
        return nullptr;
      };
      if (!PredicateCanMatch(*predicate_, lookup)) pruned_[g] = 1;
    }
  }

  /// First unpruned row at or after `row` (row_count_ when none remain).
  uint64_t NextUnprunedRow(uint64_t row) const {
    uint64_t g = row / kCifStatsRowGroup;
    while (g < pruned_.size() && pruned_[g] != 0) {
      ++g;
      row = g * kCifStatsRowGroup;
    }
    return std::min(row, row_count_);
  }

  /// End (exclusive) of the contiguous unpruned run containing `row`.
  uint64_t UnprunedRunEnd(uint64_t row) const {
    uint64_t g = row / kCifStatsRowGroup;
    while (g < pruned_.size() && pruned_[g] == 0) ++g;
    return std::min(g * kCifStatsRowGroup, row_count_);
  }

  /// Advances the scan from row `from` to `to` past pruned rowgroups.
  /// Eager readers skip every column file through the skip-list/block
  /// machinery; the lazy record skips per column on first touch, so only
  /// the row index moves here.
  Status SkipPruned(uint64_t from, uint64_t to) {
    if (to <= from) return Status::OK();
    if (!lazy_) {
      for (const auto& column : columns_) {
        COLMR_RETURN_IF_ERROR(column->SkipRows(to - from));
      }
    }
    m_prune_rowgroups_->Increment(
        (to - from + kCifStatsRowGroup - 1) / kCifStatsRowGroup);
    m_prune_rows_->Increment(to - from);
    TraceInstant(trace_, "cif_prune_rowgroups", "cif",
                 {{"from_row", TraceCollector::JsonValue(from)},
                  {"rows", TraceCollector::JsonValue(to - from)}});
    return Status::OK();
  }

  Schema::Ptr schema_;
  std::vector<int> projection_;
  std::vector<std::unique_ptr<ColumnFileReader>> columns_;
  bool lazy_;
  uint64_t row_count_ = 0;
  int64_t row_ = -1;
  EagerRecord eager_record_;
  TraceCollector* trace_ = nullptr;
  Counter* m_records_ = nullptr;
  std::unique_ptr<LazyRecord> lazy_record_;
  std::unique_ptr<NullPaddingRecord> eager_padded_;
  std::unique_ptr<NullPaddingRecord> lazy_padded_;
  Status status_;

  // Batch-path state (DESIGN.md §10).
  RowBatch row_batch_;
  std::unique_ptr<BatchRecord> batch_record_;
  std::unique_ptr<NullPaddingRecord> batch_padded_;
  std::vector<Status> column_status_;
  uint64_t batch_start_row_ = 0;
  Status pending_batch_error_;

  // Pushdown state (DESIGN.md §13).
  std::shared_ptr<const Predicate> predicate_;
  bool pushdown_ = false;
  std::vector<uint8_t> pruned_;  // per-rowgroup: 1 = refuted by zone maps
  std::vector<std::pair<std::string, int>> lane_of_field_;
  BatchPredicateEvaluator evaluator_;
  std::vector<uint32_t> selection_;
  bool selection_valid_ = false;
  Counter* m_prune_rowgroups_ = nullptr;
  Counter* m_prune_rows_ = nullptr;
};

}  // namespace

Status ColumnInputFormat::GetSplits(MiniHdfs* fs, const JobConfig& config,
                                    const ReadContext& context,
                                    std::vector<InputSplit>* splits) {
  splits->clear();
  const bool prune =
      config.predicate != nullptr && config.predicate_pushdown;
  // Splits refuted at plan time, with their rowgroup/row counts for the
  // prune counters. Counter increments are deferred: if every split is
  // refuted, one is re-added (the engine needs at least one split; its
  // reader then prunes all rowgroups and serves zero rows) and must not
  // be counted as pruned.
  struct Refuted {
    InputSplit split;
    uint64_t rowgroups = 0;
    uint64_t rows = 0;
  };
  std::vector<Refuted> refuted;
  for (const std::string& base : config.input_paths) {
    std::vector<std::string> children;
    COLMR_RETURN_IF_ERROR(fs->ListDir(base, &children));
    for (const std::string& child : children) {
      if (child.empty() || child[0] != 's') continue;
      const std::string dir = base + "/" + child;
      Schema::Ptr schema;
      COLMR_RETURN_IF_ERROR(ReadDatasetSchema(fs, dir, &schema, context));
      if (config.predicate != nullptr) {
        COLMR_RETURN_IF_ERROR(ValidatePredicate(
            *config.predicate, *schema, config.null_for_missing_columns));
      }
      std::vector<int> read_set;
      COLMR_RETURN_IF_ERROR(ResolveReadSet(*schema, config, &read_set,
                                           nullptr));

      InputSplit split;
      for (int c : read_set) {
        split.paths.push_back(dir + "/" + schema->fields()[c].name + ".col");
      }
      for (const std::string& path : split.paths) {
        uint64_t size = 0;
        COLMR_RETURN_IF_ERROR(fs->GetFileSize(path, &size));
        split.length += size;
      }
      split.locations = fs->CommonReplicaNodes(split.paths);
      if (prune) {
        uint64_t rows = 0;
        uint64_t groups = 0;
        if (SplitRefuted(fs, dir, *schema, *config.predicate, context, &rows,
                         &groups)) {
          refuted.push_back({std::move(split), groups, rows});
          continue;
        }
      }
      splits->push_back(std::move(split));
    }
  }
  if (splits->empty() && !refuted.empty()) {
    splits->push_back(std::move(refuted.front().split));
    refuted.erase(refuted.begin());
  }
  if (!refuted.empty()) {
    MetricsRegistry* metrics = context.metrics != nullptr
                                   ? context.metrics
                                   : &MetricsRegistry::Default();
    uint64_t groups = 0;
    uint64_t rows = 0;
    for (const Refuted& r : refuted) {
      groups += r.rowgroups;
      rows += r.rows;
    }
    metrics->counter("cif.prune.splits")->Increment(refuted.size());
    metrics->counter("cif.prune.rowgroups")->Increment(groups);
    metrics->counter("cif.prune.rows")->Increment(rows);
    TraceInstant(context.trace, "cif_prune_splits", "cif",
                 {{"splits", TraceCollector::JsonValue(
                                 static_cast<uint64_t>(refuted.size()))},
                  {"rowgroups", TraceCollector::JsonValue(groups)},
                  {"rows", TraceCollector::JsonValue(rows)}});
  }
  if (splits->empty()) {
    return Status::NotFound("cif: no split-directories found");
  }
  return Status::OK();
}

Status ColumnInputFormat::CreateRecordReader(
    MiniHdfs* fs, const JobConfig& config, const InputSplit& split,
    const ReadContext& context, std::unique_ptr<RecordReader>* reader) {
  if (split.paths.empty()) {
    return Status::InvalidArgument("cif: empty split");
  }
  const std::string& first = split.paths.front();
  const std::string dir = first.substr(0, first.rfind('/'));
  Schema::Ptr schema;
  COLMR_RETURN_IF_ERROR(ReadDatasetSchema(fs, dir, &schema, context));
  if (config.predicate != nullptr) {
    COLMR_RETURN_IF_ERROR(ValidatePredicate(*config.predicate, *schema,
                                            config.null_for_missing_columns));
  }
  std::vector<int> projection;
  std::vector<std::string> missing;
  COLMR_RETURN_IF_ERROR(ResolveReadSet(*schema, config, &projection,
                                       &missing));

  if (projection.empty() && !missing.empty()) {
    // Row counts come from the projected column files, so a split must
    // retain at least one projected column even under evolution tolerance.
    return Status::InvalidArgument(
        "cif: every projected column is missing from " + dir);
  }
  std::vector<std::unique_ptr<ColumnFileReader>> columns;
  for (int c : projection) {
    std::unique_ptr<ColumnFileReader> column;
    COLMR_RETURN_IF_ERROR(ColumnFileReader::Open(
        fs, dir + "/" + schema->fields()[c].name + ".col", context, &column));
    columns.push_back(std::move(column));
  }
  MetricsRegistry* metrics = context.metrics != nullptr
                                 ? context.metrics
                                 : &MetricsRegistry::Default();
  // Per-rowgroup zone maps of the predicate columns, aligned with the
  // read set; the reader refutes rowgroups against them before decoding.
  std::vector<ColumnFileStats> stats(projection.size());
  std::vector<uint8_t> stats_present(projection.size(), 0);
  if (config.predicate != nullptr && config.predicate_pushdown) {
    const std::vector<std::string> predicate_columns =
        PredicateColumns(*config.predicate);
    for (size_t p = 0; p < projection.size(); ++p) {
      const std::string& name = schema->fields()[projection[p]].name;
      if (std::find(predicate_columns.begin(), predicate_columns.end(),
                    name) == predicate_columns.end()) {
        continue;
      }
      bool present = false;
      COLMR_RETURN_IF_ERROR(ReadColumnStats(fs, dir + "/" + name + ".col",
                                            context, &stats[p], &present));
      stats_present[p] = present ? 1 : 0;
    }
  }
  reader->reset(new CifRecordReader(
      std::move(schema), std::move(projection), std::move(columns),
      config.lazy_records, std::move(missing), metrics, context.trace,
      config.predicate, config.predicate_pushdown, std::move(stats),
      std::move(stats_present)));
  return Status::OK();
}

}  // namespace colmr
