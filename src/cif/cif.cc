#include "cif/cif.h"

#include <algorithm>

#include "cif/column_reader.h"
#include "cif/lazy_record.h"
#include "formats/text/text_format.h"
#include "mapreduce/job.h"
#include "obs/metrics.h"

namespace colmr {

namespace {

/// Resolves the projected field list: configured names, or all fields.
/// When tolerate_missing is set, projected names the schema lacks go to
/// *missing (schema evolution: split-directories written before an
/// AddColumn) instead of failing.
Status ResolveProjection(const Schema& schema,
                         const std::vector<std::string>& names,
                         bool tolerate_missing, std::vector<int>* indices,
                         std::vector<std::string>* missing) {
  indices->clear();
  if (missing != nullptr) missing->clear();
  if (names.empty()) {
    for (size_t i = 0; i < schema.fields().size(); ++i) {
      indices->push_back(static_cast<int>(i));
    }
    return Status::OK();
  }
  for (const std::string& name : names) {
    const int index = schema.FieldIndex(name);
    if (index < 0) {
      if (tolerate_missing) {
        if (missing != nullptr) missing->push_back(name);
        continue;
      }
      return Status::InvalidArgument("cif: unknown projected column " + name);
    }
    indices->push_back(index);
  }
  std::sort(indices->begin(), indices->end());
  return Status::OK();
}

/// Delegating record that answers Get() for evolved-away columns with
/// Null, forwarding everything else to the split's real record.
class NullPaddingRecord final : public Record {
 public:
  NullPaddingRecord(Record* inner, std::vector<std::string> missing)
      : inner_(inner), missing_(std::move(missing)) {}

  const Schema& schema() const override { return inner_->schema(); }

  Status Get(std::string_view name, const Value** value) override {
    for (const std::string& m : missing_) {
      if (m == name) {
        *value = &null_;
        return Status::OK();
      }
    }
    return inner_->Get(name, value);
  }

 private:
  Record* inner_;
  std::vector<std::string> missing_;
  Value null_;
};

/// Record view over one row of the resident RowBatch (eager batch path).
/// Get() materializes only the fields the map function touches, serving
/// boxed values (array/map/record) by pointer straight out of the batch
/// lane. Unprojected fields answer Null with OK, exactly like the scalar
/// EagerRecord whose value vector defaults untouched slots to Null.
class BatchRecord final : public Record {
 public:
  BatchRecord(Schema::Ptr schema, const std::vector<int>& projection,
              RowBatch* batch)
      : schema_(std::move(schema)), batch_(batch) {
    field_to_column_.assign(schema_->fields().size(), -1);
    for (size_t p = 0; p < projection.size(); ++p) {
      field_to_column_[projection[p]] = static_cast<int>(p);
    }
    lanes_.resize(projection.size());
  }

  void SetRow(uint64_t row) { row_ = row; }

  const Schema& schema() const override { return *schema_; }

  Status Get(std::string_view name, const Value** value) override {
    const int index = schema_->FieldIndex(std::string(name));
    if (index < 0) {
      return Status::NotFound("no such field: " + std::string(name));
    }
    const int column = field_to_column_[index];
    if (column < 0) {
      *value = &null_;
      return Status::OK();
    }
    const ColumnBatch& batch = batch_->columns[column];
    if (batch.is_boxed()) {
      *value = batch.BoxedAt(row_);
      return Status::OK();
    }
    Lane& lane = lanes_[column];
    if (lane.row != row_) {
      batch.MaterializeInto(row_, &lane.scratch);
      lane.row = row_;
    }
    *value = &lane.scratch;
    return Status::OK();
  }

  /// Invalidates the per-row scratch cache; called when the batch refills.
  void InvalidateCache() {
    for (Lane& lane : lanes_) lane.row = UINT64_MAX;
  }

 private:
  struct Lane {
    Value scratch;
    uint64_t row = UINT64_MAX;
  };

  Schema::Ptr schema_;
  RowBatch* batch_;
  std::vector<int> field_to_column_;  // field index -> projection position
  std::vector<Lane> lanes_;
  uint64_t row_ = 0;
  Value null_;
};

class CifRecordReader final : public RecordReader {
 public:
  CifRecordReader(Schema::Ptr schema, std::vector<int> projection,
                  std::vector<std::unique_ptr<ColumnFileReader>> columns,
                  bool lazy, std::vector<std::string> missing_columns,
                  MetricsRegistry* metrics)
      : schema_(schema),
        projection_(std::move(projection)),
        columns_(std::move(columns)),
        lazy_(lazy),
        eager_record_(schema_, Value::Null()) {
    m_records_ = metrics->counter(lazy ? "cif.records.lazy"
                                       : "cif.records.eager");
    row_count_ = columns_.empty() ? 0 : columns_.front()->row_count();
    for (const auto& column : columns_) {
      if (column->row_count() != row_count_) {
        status_ = Status::Corruption(
            "cif: column files disagree on row count");
      }
    }
    std::vector<ColumnFileReader*> by_field(schema_->fields().size(), nullptr);
    for (size_t p = 0; p < projection_.size(); ++p) {
      by_field[projection_[p]] = columns_[p].get();
    }
    lazy_record_ = std::make_unique<LazyRecord>(
        schema_, std::move(by_field),
        metrics->counter("cif.lazy.field_reads"));
    row_batch_.columns.resize(projection_.size());
    column_status_.resize(projection_.size());
    batch_record_ =
        std::make_unique<BatchRecord>(schema_, projection_, &row_batch_);
    if (!missing_columns.empty()) {
      eager_padded_ = std::make_unique<NullPaddingRecord>(&eager_record_,
                                                          missing_columns);
      batch_padded_ = std::make_unique<NullPaddingRecord>(batch_record_.get(),
                                                          missing_columns);
      lazy_padded_ = std::make_unique<NullPaddingRecord>(
          lazy_record_.get(), std::move(missing_columns));
    }
  }

  uint64_t FillBatch(uint64_t max_rows) override {
    if (!status_.ok() || max_rows == 0) return 0;
    if (!pending_batch_error_.ok()) {
      // A column failed mid-way through the previous batch: its good
      // prefix has been served, so the error surfaces now.
      status_ = pending_batch_error_;
      return 0;
    }
    const uint64_t next_row = static_cast<uint64_t>(row_ + 1);
    if (next_row >= row_count_) return 0;
    const uint64_t k = std::min(max_rows, row_count_ - next_row);
    batch_start_row_ = next_row;
    if (lazy_) {
      // Laziness survives batching: nothing is decoded here. Columns the
      // map function touches decode ahead to the window end on first Get.
      lazy_record_->SetBatchWindow(next_row, k);
      row_ += k;
      m_records_->Increment(k);
      return k;
    }
    // Eager: bulk-decode every projected column. On error a column stops
    // early; serve the common prefix and surface the error that the
    // scalar path would have hit first (lowest row, then column order).
    uint64_t served = k;
    for (size_t p = 0; p < projection_.size(); ++p) {
      column_status_[p] = columns_[p]->NextBatch(k, &row_batch_.columns[p]);
      const uint64_t got = row_batch_.columns[p].size();
      if (got < served) served = got;
    }
    Status pending;
    for (size_t p = 0; p < projection_.size() && pending.ok(); ++p) {
      if (!column_status_[p].ok() && row_batch_.columns[p].size() == served) {
        pending = column_status_[p];
      }
    }
    row_batch_.rows = served;
    batch_record_->InvalidateCache();
    if (!pending.ok() && served == 0) {
      status_ = pending;
      return 0;
    }
    pending_batch_error_ = pending;
    row_ += served;
    m_records_->Increment(served);
    return served;
  }

  Record& RecordAt(uint64_t i) override {
    if (lazy_) {
      lazy_record_->AdvanceTo(batch_start_row_ + i);
      return lazy_padded_ ? static_cast<Record&>(*lazy_padded_)
                          : *lazy_record_;
    }
    batch_record_->SetRow(i);
    return batch_padded_ ? static_cast<Record&>(*batch_padded_)
                         : *batch_record_;
  }

  bool Next() override {
    if (!status_.ok()) return false;
    if (row_ + 1 >= static_cast<int64_t>(row_count_)) return false;
    ++row_;
    m_records_->Increment();
    if (lazy_) {
      lazy_record_->AdvanceTo(static_cast<uint64_t>(row_));
      return true;
    }
    // Eager: materialize every projected column now.
    std::vector<Value> values(schema_->fields().size());
    for (size_t p = 0; p < projection_.size(); ++p) {
      status_ = columns_[p]->ReadValue(&values[projection_[p]]);
      if (!status_.ok()) return false;
    }
    eager_record_ = EagerRecord(schema_, Value::Record(std::move(values)));
    return true;
  }

  Record& record() override {
    if (lazy_) {
      return lazy_padded_ ? static_cast<Record&>(*lazy_padded_)
                          : *lazy_record_;
    }
    return eager_padded_ ? static_cast<Record&>(*eager_padded_)
                         : eager_record_;
  }

  Status status() const override { return status_; }

 private:
  Schema::Ptr schema_;
  std::vector<int> projection_;
  std::vector<std::unique_ptr<ColumnFileReader>> columns_;
  bool lazy_;
  uint64_t row_count_ = 0;
  int64_t row_ = -1;
  EagerRecord eager_record_;
  Counter* m_records_ = nullptr;
  std::unique_ptr<LazyRecord> lazy_record_;
  std::unique_ptr<NullPaddingRecord> eager_padded_;
  std::unique_ptr<NullPaddingRecord> lazy_padded_;
  Status status_;

  // Batch-path state (DESIGN.md §10).
  RowBatch row_batch_;
  std::unique_ptr<BatchRecord> batch_record_;
  std::unique_ptr<NullPaddingRecord> batch_padded_;
  std::vector<Status> column_status_;
  uint64_t batch_start_row_ = 0;
  Status pending_batch_error_;
};

}  // namespace

Status ColumnInputFormat::GetSplits(MiniHdfs* fs, const JobConfig& config,
                                    const ReadContext& context,
                                    std::vector<InputSplit>* splits) {
  splits->clear();
  for (const std::string& base : config.input_paths) {
    std::vector<std::string> children;
    COLMR_RETURN_IF_ERROR(fs->ListDir(base, &children));
    for (const std::string& child : children) {
      if (child.empty() || child[0] != 's') continue;
      const std::string dir = base + "/" + child;
      Schema::Ptr schema;
      COLMR_RETURN_IF_ERROR(ReadDatasetSchema(fs, dir, &schema, context));
      std::vector<int> projection;
      COLMR_RETURN_IF_ERROR(ResolveProjection(
          *schema, config.projection, config.null_for_missing_columns,
          &projection, nullptr));

      InputSplit split;
      for (int c : projection) {
        split.paths.push_back(dir + "/" + schema->fields()[c].name + ".col");
      }
      for (const std::string& path : split.paths) {
        uint64_t size = 0;
        COLMR_RETURN_IF_ERROR(fs->GetFileSize(path, &size));
        split.length += size;
      }
      split.locations = fs->CommonReplicaNodes(split.paths);
      splits->push_back(std::move(split));
    }
  }
  if (splits->empty()) {
    return Status::NotFound("cif: no split-directories found");
  }
  return Status::OK();
}

Status ColumnInputFormat::CreateRecordReader(
    MiniHdfs* fs, const JobConfig& config, const InputSplit& split,
    const ReadContext& context, std::unique_ptr<RecordReader>* reader) {
  if (split.paths.empty()) {
    return Status::InvalidArgument("cif: empty split");
  }
  const std::string& first = split.paths.front();
  const std::string dir = first.substr(0, first.rfind('/'));
  Schema::Ptr schema;
  COLMR_RETURN_IF_ERROR(ReadDatasetSchema(fs, dir, &schema, context));
  std::vector<int> projection;
  std::vector<std::string> missing;
  COLMR_RETURN_IF_ERROR(ResolveProjection(*schema, config.projection,
                                          config.null_for_missing_columns,
                                          &projection, &missing));

  if (projection.empty() && !missing.empty()) {
    // Row counts come from the projected column files, so a split must
    // retain at least one projected column even under evolution tolerance.
    return Status::InvalidArgument(
        "cif: every projected column is missing from " + dir);
  }
  std::vector<std::unique_ptr<ColumnFileReader>> columns;
  for (int c : projection) {
    std::unique_ptr<ColumnFileReader> column;
    COLMR_RETURN_IF_ERROR(ColumnFileReader::Open(
        fs, dir + "/" + schema->fields()[c].name + ".col", context, &column));
    columns.push_back(std::move(column));
  }
  MetricsRegistry* metrics = context.metrics != nullptr
                                 ? context.metrics
                                 : &MetricsRegistry::Default();
  reader->reset(new CifRecordReader(std::move(schema), std::move(projection),
                                    std::move(columns), config.lazy_records,
                                    std::move(missing), metrics));
  return Status::OK();
}

}  // namespace colmr
