#ifndef COLMR_CIF_COLUMN_STATS_H_
#define COLMR_CIF_COLUMN_STATS_H_

#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/status.h"
#include "hdfs/mini_hdfs.h"
#include "serde/predicate.h"
#include "serde/value.h"

namespace colmr {

// Zone-map statistics footer of a CIF column file (DESIGN.md §13).
//
// Layout, appended after the column body:
//   payload:  varint version (1)
//             varint rows_per_group (kCifStatsRowGroup)
//             varint n_groups
//             per group: varint values, varint nulls, flags byte
//                        (bit0 = has_min, bit1 = has_max),
//                        [tagged min], [tagged max]
//   trailer:  fixed32 payload length, magic "CST1"
//
// Min/max use the self-describing tagged encoding so the footer can be
// read without the column schema. The footer is versioned and strictly
// advisory: files written before it existed — or whose trailer fails any
// check — simply report no stats, and scans over them never prune.

/// Per-rowgroup accumulator the column writer feeds one value at a time.
/// Bool/int/double/string/bytes columns get min/max; containers and
/// null-typed columns carry counts only. A NaN double drops min/max for
/// its whole group (and therefore the file), and long strings are
/// truncated to a bounded prefix at serialization time, keeping min a
/// lower bound (plain prefix) and max an upper bound (prefix with the
/// last byte bumped; all-0xFF prefixes drop the max instead).
class ColumnStatsCollector {
 public:
  /// Accounts one appended value to the current rowgroup.
  void Observe(const Value& value);

  /// Serializes the footer (payload + trailer) for the rows seen so far.
  void AppendFooter(Buffer* dst) const;

 private:
  struct Group {
    ColumnStats stats;
    bool tracked = true;   // min/max meaningful (no NaN, primitive kind)
    bool has_any = false;  // saw at least one non-null value
  };

  std::vector<Group> groups_;
  uint64_t rows_ = 0;
};

/// Parsed footer of one column file. `file` is the merge of `groups`:
/// counts are summed, and a file-level bound exists only when every group
/// with non-null values carries the corresponding bound.
struct ColumnFileStats {
  uint64_t rows_per_group = 0;
  std::vector<ColumnStats> groups;
  ColumnStats file;
};

/// Reads the stats footer of the column file at `path` with a positioned
/// tail read (the sequential scan cursor is untouched). Stats are
/// advisory: every failure mode — missing footer, old file, unreadable
/// tail, corrupt or unknown-version payload — reports *present = false
/// with an OK status, so a scan can never fail because of its zone maps.
Status ReadColumnStats(MiniHdfs* fs, const std::string& path,
                       const ReadContext& context, ColumnFileStats* out,
                       bool* present);

}  // namespace colmr

#endif  // COLMR_CIF_COLUMN_STATS_H_
