#ifndef COLMR_CIF_LOADER_H_
#define COLMR_CIF_LOADER_H_

#include <string>
#include <vector>

#include "hdfs/mini_hdfs.h"
#include "mapreduce/input_format.h"
#include "mapreduce/output_format.h"

namespace colmr {

/// Copies every record of a dataset into a DatasetWriter — the load
/// utility of paper Appendix B.3 ("a parallel loader is used to load the
/// data using COF"). Pairing any InputFormat with any DatasetWriter
/// converts between all formats in the repository (TXT/SEQ/RCFile/CIF).
/// Does not Close() the writer; the caller owns that.
Status CopyDataset(MiniHdfs* fs, InputFormat* input_format,
                   const std::vector<std::string>& input_paths,
                   DatasetWriter* out);

/// Fully materializes a Record into a record Value (all schema fields, in
/// order). Fields outside the source's projection come back Null.
Status MaterializeRecord(Record* record, Value* out);

}  // namespace colmr

#endif  // COLMR_CIF_LOADER_H_
