#include "cif/column_stats.h"

#include <cmath>
#include <cstring>

#include "cif/column_format.h"
#include "common/coding.h"
#include "serde/encoding.h"

namespace colmr {

namespace {

bool IsStringy(TypeKind kind) {
  return kind == TypeKind::kString || kind == TypeKind::kBytes;
}

bool TrackableKind(TypeKind kind) {
  switch (kind) {
    case TypeKind::kBool:
    case TypeKind::kInt32:
    case TypeKind::kInt64:
    case TypeKind::kDouble:
    case TypeKind::kString:
    case TypeKind::kBytes:
      return true;
    default:
      return false;
  }
}

/// Bounds a string min for the footer: a plain prefix is still <= every
/// value it bounds.
Value TruncatedMin(const Value& min) {
  if (!IsStringy(min.kind()) ||
      min.string_value().size() <= kCifStatsStringPrefix) {
    return min;
  }
  return Value::String(min.string_value().substr(0, kCifStatsStringPrefix));
}

/// Bounds a string max: the prefix alone would under-bound, so the last
/// non-0xFF byte of the kept prefix is incremented and the rest dropped.
/// Returns false when no byte can be bumped (all-0xFF prefix) — the max
/// is then omitted entirely.
bool TruncatedMax(const Value& max, Value* out) {
  if (!IsStringy(max.kind()) ||
      max.string_value().size() <= kCifStatsStringPrefix) {
    *out = max;
    return true;
  }
  std::string prefix = max.string_value().substr(0, kCifStatsStringPrefix);
  for (size_t i = prefix.size(); i-- > 0;) {
    if (static_cast<unsigned char>(prefix[i]) != 0xFF) {
      prefix[i] = static_cast<char>(static_cast<unsigned char>(prefix[i]) + 1);
      prefix.resize(i + 1);
      *out = Value::String(std::move(prefix));
      return true;
    }
  }
  return false;
}

}  // namespace

void ColumnStatsCollector::Observe(const Value& value) {
  const uint64_t g = rows_ / kCifStatsRowGroup;
  ++rows_;
  if (g == groups_.size()) groups_.emplace_back();
  Group& group = groups_[g];
  ++group.stats.values;
  if (value.is_null()) {
    ++group.stats.nulls;
    return;
  }
  if (!TrackableKind(value.kind()) ||
      (value.kind() == TypeKind::kDouble &&
       std::isnan(value.double_value()))) {
    group.tracked = false;
    return;
  }
  if (!group.tracked) return;
  if (!group.has_any) {
    group.stats.min = value;
    group.stats.max = value;
    group.has_any = true;
    return;
  }
  if (PrimitiveLess(value, group.stats.min)) {
    group.stats.min = value;
  } else if (PrimitiveLess(group.stats.max, value)) {
    group.stats.max = value;
  }
}

void ColumnStatsCollector::AppendFooter(Buffer* dst) const {
  Buffer payload;
  PutVarint64(&payload, kCifStatsVersion);
  PutVarint64(&payload, kCifStatsRowGroup);
  PutVarint64(&payload, groups_.size());
  for (const Group& group : groups_) {
    PutVarint64(&payload, group.stats.values);
    PutVarint64(&payload, group.stats.nulls);
    bool has_min = group.tracked && group.has_any;
    bool has_max = has_min;
    Value min, max;
    if (has_min) {
      min = TruncatedMin(group.stats.min);
      has_max = TruncatedMax(group.stats.max, &max);
    }
    payload.PushBack(static_cast<char>((has_min ? 1 : 0) |
                                       (has_max ? 2 : 0)));
    if (has_min) EncodeTaggedValue(min, &payload);
    if (has_max) EncodeTaggedValue(max, &payload);
  }
  dst->Append(payload.AsSlice());
  PutFixed32(dst, static_cast<uint32_t>(payload.size()));
  dst->Append(Slice(kCifStatsMagic, 4));
}

namespace {

/// Parses a footer payload; any malformation fails the parse (the caller
/// then reports "no stats present").
Status ParseStatsPayload(Slice in, ColumnFileStats* out) {
  uint64_t version = 0;
  COLMR_RETURN_IF_ERROR(GetVarint64(&in, &version));
  if (version != kCifStatsVersion) {
    return Status::Corruption("cif stats: unknown footer version");
  }
  COLMR_RETURN_IF_ERROR(GetVarint64(&in, &out->rows_per_group));
  if (out->rows_per_group == 0) {
    return Status::Corruption("cif stats: zero rows_per_group");
  }
  uint64_t n_groups = 0;
  COLMR_RETURN_IF_ERROR(GetVarint64(&in, &n_groups));
  // Each group costs at least 3 payload bytes; rejects fuzzed counts.
  if (n_groups > in.size()) {
    return Status::Corruption("cif stats: group count exceeds payload");
  }
  out->groups.resize(n_groups);
  bool file_has_min = true;
  bool file_has_max = true;
  for (uint64_t g = 0; g < n_groups; ++g) {
    ColumnStats& stats = out->groups[g];
    COLMR_RETURN_IF_ERROR(GetVarint64(&in, &stats.values));
    COLMR_RETURN_IF_ERROR(GetVarint64(&in, &stats.nulls));
    if (stats.nulls > stats.values) {
      return Status::Corruption("cif stats: nulls exceed values");
    }
    if (in.empty()) return Status::Corruption("cif stats: truncated group");
    const uint8_t flags = static_cast<uint8_t>(in[0]);
    in.RemovePrefix(1);
    stats.has_min = (flags & 1) != 0;
    stats.has_max = (flags & 2) != 0;
    if (stats.has_min) {
      COLMR_RETURN_IF_ERROR(DecodeTaggedValue(&in, &stats.min));
    }
    if (stats.has_max) {
      COLMR_RETURN_IF_ERROR(DecodeTaggedValue(&in, &stats.max));
    }
    // Merge into the file-level aggregate. Groups with no non-null
    // values constrain nothing; any other group missing a bound makes
    // the file bound unknown.
    out->file.values += stats.values;
    out->file.nulls += stats.nulls;
    if (stats.values > stats.nulls) {
      if (!stats.has_min) {
        file_has_min = false;
      } else if (!out->file.has_min) {
        out->file.min = stats.min;
        out->file.has_min = true;
      } else if (PrimitiveLess(stats.min, out->file.min)) {
        out->file.min = stats.min;
      }
      if (!stats.has_max) {
        file_has_max = false;
      } else if (!out->file.has_max) {
        out->file.max = stats.max;
        out->file.has_max = true;
      } else if (PrimitiveLess(out->file.max, stats.max)) {
        out->file.max = stats.max;
      }
    }
  }
  out->file.has_min = out->file.has_min && file_has_min;
  out->file.has_max = out->file.has_max && file_has_max;
  if (!in.empty()) {
    return Status::Corruption("cif stats: trailing payload bytes");
  }
  return Status::OK();
}

}  // namespace

Status ReadColumnStats(MiniHdfs* fs, const std::string& path,
                       const ReadContext& context, ColumnFileStats* out,
                       bool* present) {
  *present = false;
  *out = ColumnFileStats();
  std::unique_ptr<FileReader> reader;
  if (!fs->Open(path, context, &reader).ok()) return Status::OK();
  const uint64_t size = reader->size();
  if (size < 8) return Status::OK();
  std::string trailer;
  if (!reader->Read(size - 8, 8, &trailer).ok()) return Status::OK();
  if (std::memcmp(trailer.data() + 4, kCifStatsMagic, 4) != 0) {
    return Status::OK();  // pre-stats file: no footer
  }
  Slice trailer_slice(trailer.data(), 4);
  uint32_t payload_len = 0;
  if (!GetFixed32(&trailer_slice, &payload_len).ok()) return Status::OK();
  if (payload_len > size - 8) return Status::OK();
  std::string payload;
  if (!reader->Read(size - 8 - payload_len, payload_len, &payload).ok()) {
    return Status::OK();
  }
  ColumnFileStats parsed;
  if (!ParseStatsPayload(Slice(payload), &parsed).ok()) return Status::OK();
  *out = std::move(parsed);
  *present = true;
  return Status::OK();
}

}  // namespace colmr
