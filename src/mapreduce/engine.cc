#include "mapreduce/engine.h"

#include <algorithm>
#include <functional>

#include "common/stopwatch.h"
#include "serde/encoding.h"

namespace colmr {

namespace {

/// Emitter that appends into a vector; used for both map and reduce output.
class VectorEmitter final : public Emitter {
 public:
  void Emit(Value key, Value value) override {
    pairs_.emplace_back(std::move(key), std::move(value));
  }
  std::vector<std::pair<Value, Value>>& pairs() { return pairs_; }

 private:
  std::vector<std::pair<Value, Value>> pairs_;
};

}  // namespace

NodeId JobRunner::ScheduleSplit(const InputSplit& split,
                                std::vector<int>* node_load, int total_splits,
                                bool* data_local) const {
  const int num_nodes = fs_->config().num_nodes;
  // A node is "busy" once it holds more than its balanced share of tasks.
  const int fair_share =
      (total_splits + num_nodes - 1) / std::max(1, num_nodes);

  NodeId best_local = kAnyNode;
  for (NodeId node : split.locations) {
    if (node < 0 || node >= num_nodes || fs_->IsNodeDead(node)) continue;
    if (best_local == kAnyNode || (*node_load)[node] < (*node_load)[best_local]) {
      best_local = node;
    }
  }
  if (best_local != kAnyNode && (*node_load)[best_local] < fair_share) {
    *data_local = true;
    return best_local;
  }
  // Fall back to the globally least-loaded live node (rack-locality is
  // not modelled): the task will read some or all of its data remotely.
  NodeId least = kAnyNode;
  for (NodeId node = 0; node < num_nodes; ++node) {
    if (fs_->IsNodeDead(node)) continue;
    if (least == kAnyNode || (*node_load)[node] < (*node_load)[least]) {
      least = node;
    }
  }
  *data_local = std::find(split.locations.begin(), split.locations.end(),
                          least) != split.locations.end();
  return least;
}

Status JobRunner::Run(const Job& job, JobReport* report) {
  *report = JobReport();
  if (!job.input_format) {
    return Status::InvalidArgument("job has no input format");
  }
  if (!job.mapper) {
    return Status::InvalidArgument("job has no mapper");
  }

  std::vector<InputSplit> splits;
  COLMR_RETURN_IF_ERROR(job.input_format->GetSplits(fs_, job.config, &splits));
  if (splits.empty()) {
    return Status::InvalidArgument("input produced no splits");
  }

  // ---- Map phase: execute every task, measuring CPU and counting I/O.
  std::vector<std::pair<Value, Value>> map_output;
  std::vector<int> node_load(fs_->config().num_nodes, 0);
  std::vector<double> task_times;
  task_times.reserve(splits.size());

  for (size_t i = 0; i < splits.size(); ++i) {
    TaskReport task;
    task.split_index = static_cast<int>(i);
    task.node = ScheduleSplit(splits[i], &node_load,
                              static_cast<int>(splits.size()),
                              &task.data_local);
    if (task.node != kAnyNode) node_load[task.node] += 1;

    ReadContext context{task.node, &task.io};
    std::unique_ptr<RecordReader> reader;
    COLMR_RETURN_IF_ERROR(job.input_format->CreateRecordReader(
        fs_, job.config, splits[i], context, &reader));

    VectorEmitter emitter;
    Stopwatch watch;
    while (reader->Next()) {
      job.mapper(reader->record(), &emitter);
      ++task.input_records;
    }
    // Map-side combine: sort this task's output, fold runs of equal keys
    // through the combiner, and ship the (usually much smaller) result.
    if (job.combiner && !emitter.pairs().empty()) {
      auto& pairs = emitter.pairs();
      std::stable_sort(pairs.begin(), pairs.end(),
                       [](const auto& a, const auto& b) {
                         return a.first.Compare(b.first) < 0;
                       });
      VectorEmitter combined;
      size_t i = 0;
      while (i < pairs.size()) {
        size_t j = i;
        std::vector<Value> values;
        while (j < pairs.size() &&
               pairs[j].first.Compare(pairs[i].first) == 0) {
          values.push_back(std::move(pairs[j].second));
          ++j;
        }
        job.combiner(pairs[i].first, values, &combined);
        i = j;
      }
      pairs = std::move(combined.pairs());
    }
    task.cpu_seconds = watch.ElapsedSeconds();
    COLMR_RETURN_IF_ERROR(reader->status());

    task.output_records = emitter.pairs().size();
    task.sim_seconds =
        cost_model_.TaskSeconds({task.cpu_seconds, task.io});
    task_times.push_back(task.sim_seconds);

    report->map_input_records += task.input_records;
    report->map_output_records += task.output_records;
    report->bytes_read_local += task.io.local_bytes;
    report->bytes_read_remote += task.io.remote_bytes;
    report->map_cpu_seconds += task.cpu_seconds;
    if (task.data_local) {
      report->data_local_tasks += 1;
    } else {
      report->remote_tasks += 1;
    }

    for (auto& pair : emitter.pairs()) {
      report->map_output_bytes +=
          TaggedEncodedSize(pair.first) + TaggedEncodedSize(pair.second);
      map_output.push_back(std::move(pair));
    }
    report->map_tasks.push_back(std::move(task));
  }
  report->map_phase_seconds = cost_model_.MapPhaseSeconds(task_times);
  double task_time_sum = 0;
  for (double t : task_times) task_time_sum += t;
  report->map_slot_seconds =
      task_time_sum / std::max(1, fs_->config().TotalMapSlots());

  // ---- Shuffle + reduce (skipped for map-only jobs).
  if (job.reducer) {
    const int num_reducers =
        job.config.num_reduce_tasks > 0
            ? job.config.num_reduce_tasks
            : fs_->config().num_nodes * fs_->config().reduce_slots_per_node;

    // Partition by key hash, then sort each partition (Hadoop's
    // sort-merge shuffle, collapsed to an in-memory sort).
    std::vector<std::vector<std::pair<Value, Value>>> partitions(num_reducers);
    std::hash<std::string> hasher;
    for (auto& pair : map_output) {
      const size_t p = hasher(pair.first.ToString()) % num_reducers;
      partitions[p].push_back(std::move(pair));
    }

    Stopwatch reduce_watch;
    double max_reducer_seconds = 0;
    for (auto& partition : partitions) {
      Stopwatch task_watch;
      std::stable_sort(partition.begin(), partition.end(),
                       [](const auto& a, const auto& b) {
                         return a.first.Compare(b.first) < 0;
                       });
      VectorEmitter emitter;
      size_t i = 0;
      while (i < partition.size()) {
        size_t j = i;
        std::vector<Value> values;
        while (j < partition.size() &&
               partition[j].first.Compare(partition[i].first) == 0) {
          values.push_back(partition[j].second);
          ++j;
        }
        job.reducer(partition[i].first, values, &emitter);
        i = j;
      }
      max_reducer_seconds =
          std::max(max_reducer_seconds, task_watch.ElapsedSeconds());
      for (auto& pair : emitter.pairs()) {
        report->output.push_back(std::move(pair));
      }
    }
    report->reduce_output_records = report->output.size();
    report->reduce_phase_seconds = max_reducer_seconds;

    // Shuffle: reducers pull their partitions in parallel over the
    // network; the phase lasts as long as the largest per-reducer pull.
    const double bytes_per_reducer =
        static_cast<double>(report->map_output_bytes) /
        std::max(1, num_reducers);
    report->shuffle_seconds =
        bytes_per_reducer / (fs_->config().network_bandwidth_mbps * 1e6);

    // Materialize the reduce output as text part files when requested.
    if (!job.config.output_path.empty()) {
      std::unique_ptr<FileWriter> writer;
      COLMR_RETURN_IF_ERROR(
          fs_->Create(job.config.output_path + "/part-r-00000", &writer));
      for (const auto& [key, value] : report->output) {
        std::string line = key.ToString() + "\t" + value.ToString() + "\n";
        writer->Append(line);
      }
      COLMR_RETURN_IF_ERROR(writer->Close());
    }
  } else {
    report->output = std::move(map_output);
  }

  report->total_seconds = report->map_phase_seconds +
                          report->shuffle_seconds +
                          report->reduce_phase_seconds;
  return Status::OK();
}

}  // namespace colmr
