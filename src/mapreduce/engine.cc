#include "mapreduce/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "mapreduce/committer.h"
#include "mapreduce/spill.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serde/encoding.h"
#include "serde/predicate.h"

namespace colmr {

namespace {

/// Emitter that appends into a vector; used for both map and reduce output.
class VectorEmitter final : public Emitter {
 public:
  void Emit(Value key, Value value) override {
    pairs_.emplace_back(std::move(key), std::move(value));
  }
  std::vector<std::pair<Value, Value>>& pairs() { return pairs_; }

 private:
  std::vector<std::pair<Value, Value>> pairs_;
};

/// Folds runs of equal keys in key-sorted `pairs` through `fn` (combiner or
/// reducer). The run's values vector is reused across runs and the output
/// reserved up front, so folding costs no per-run allocations beyond what
/// the Values themselves own.
void FoldSortedRuns(std::vector<std::pair<Value, Value>>* pairs,
                    const ReduceFn& fn, VectorEmitter* out) {
  out->pairs().reserve(pairs->size());
  std::vector<Value> values;
  size_t i = 0;
  while (i < pairs->size()) {
    size_t j = i;
    values.clear();
    while (j < pairs->size() &&
           (*pairs)[j].first.Compare((*pairs)[i].first) == 0) {
      values.push_back(std::move((*pairs)[j].second));
      ++j;
    }
    fn((*pairs)[i].first, values, out);
    i = j;
  }
}

/// Admission control faithful to the simulated cluster: at most
/// map_slots_per_node tasks execute concurrently on any node, whatever the
/// pool size. Counters are mutex-guarded; Acquire blocks until the task's
/// assigned node has a free slot (slots are only ever held by running
/// tasks, so waiters always make progress). Peaks are recorded for the
/// report — and for the tests that assert slot-faithfulness.
class SlotGate {
 public:
  SlotGate(int num_nodes, int slots_per_node)
      : slots_per_node_(std::max(1, slots_per_node)),
        active_(std::max(0, num_nodes), 0),
        peak_(std::max(0, num_nodes), 0) {}

  void Acquire(NodeId node) {
    if (node < 0 || node >= static_cast<NodeId>(active_.size())) return;
    std::unique_lock<std::mutex> lock(mu_);
    slot_freed_.wait(lock,
                     [&] { return active_[node] < slots_per_node_; });
    ++active_[node];
    peak_[node] = std::max(peak_[node], active_[node]);
  }

  void Release(NodeId node) {
    if (node < 0 || node >= static_cast<NodeId>(active_.size())) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_[node];
    }
    slot_freed_.notify_all();
  }

  std::vector<int> peaks() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_;
  }

 private:
  const int slots_per_node_;
  mutable std::mutex mu_;
  std::condition_variable slot_freed_;
  std::vector<int> active_;
  std::vector<int> peak_;
};

/// One reducer's output, produced on a pool thread and merged in partition
/// order afterwards.
struct ReduceTaskResult {
  std::vector<std::pair<Value, Value>> pairs;
  double cpu_seconds = 0;
  uint64_t input_records = 0;
  /// Run segments this reducer's final merge consumed (external shuffle).
  uint64_t segments_merged = 0;
  /// External shuffle: a spill-read failure in this partition's merge.
  Status status;
};

/// Per-job failure bookkeeping shared by concurrently retrying tasks: how
/// many attempts failed on each node, and which nodes crossed the
/// blacklist threshold (Hadoop's per-job tracker blacklist).
class RetryTracker {
 public:
  explicit RetryTracker(int blacklist_threshold)
      : threshold_(std::max(1, blacklist_threshold)) {}

  /// Returns true when this failure crossed the blacklist threshold (the
  /// node was just blacklisted).
  bool RecordFailure(NodeId node) {
    if (node == kAnyNode) return false;
    std::lock_guard<std::mutex> lock(mu_);
    if (++failures_[node] >= threshold_) {
      return blacklist_.insert(node).second;
    }
    return false;
  }

  bool IsBlacklisted(NodeId node) const {
    if (node == kAnyNode) return false;
    std::lock_guard<std::mutex> lock(mu_);
    return blacklist_.count(node) > 0;
  }

  std::vector<NodeId> blacklisted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return std::vector<NodeId>(blacklist_.begin(), blacklist_.end());
  }

 private:
  const int threshold_;
  mutable std::mutex mu_;
  std::map<NodeId, int> failures_;
  std::set<NodeId> blacklist_;
};

/// Node for a retry attempt: an untried live, unblacklisted replica
/// holder when one exists (the retry keeps its locality), else the
/// lowest-id untried live, unblacklisted node, else any live
/// unblacklisted node (attempts may outnumber nodes), else `fallback`.
NodeId PickRetryNode(const MiniHdfs& fs, const InputSplit& split,
                     const std::set<NodeId>& tried, const RetryTracker& retry,
                     NodeId fallback) {
  const int num_nodes = fs.config().num_nodes;
  for (NodeId node : split.locations) {
    if (node < 0 || node >= num_nodes) continue;
    if (fs.IsNodeDead(node) || retry.IsBlacklisted(node)) continue;
    if (tried.count(node) == 0) return node;
  }
  NodeId reusable = kAnyNode;
  for (NodeId node = 0; node < num_nodes; ++node) {
    if (fs.IsNodeDead(node) || retry.IsBlacklisted(node)) continue;
    if (tried.count(node) == 0) return node;
    if (reusable == kAnyNode) reusable = node;
  }
  return reusable != kAnyNode ? reusable : fallback;
}

bool SplitIsLocalTo(const InputSplit& split, NodeId node) {
  return std::find(split.locations.begin(), split.locations.end(), node) !=
         split.locations.end();
}

/// Fault-salt domain for reduce-output write attempts: the high bit keeps
/// them disjoint from map-attempt salts (split * 131 + attempt) — see the
/// draw-keying contract in fault_injector.h.
constexpr uint64_t kReduceWriteSaltDomain = 0x8000000000000000ull;
/// Fault-salt domains for spill-run writes (map side) and intermediate
/// merge-run writes: each gets its own high bits so write-fault draws
/// never collide across the three write paths of one job.
constexpr uint64_t kSpillWriteSaltDomain = 0x4000000000000000ull;
constexpr uint64_t kMergeWriteSaltDomain = 0xC000000000000000ull;

/// Shared state of one map task's attempts under speculative execution.
/// The mutex serializes "who records the task's result": exactly one of
/// the primary retry chain and the (at most one) backup attempt writes
/// results[i], whatever order they finish in. `done` doubles as the
/// supersede hint losing attempts poll to exit early.
struct TaskControl {
  std::mutex mu;
  /// A result (success or terminal failure) has been recorded.
  bool recorded = false;
  /// The monitor launched (and has not yet seen finish) a backup attempt.
  bool backup_launched = false;
  bool backup_inflight = false;
  /// The primary chain failed terminally while a backup was in flight;
  /// the backup's completion decides whether the failure stands.
  bool primary_failed = false;
  Status primary_status;
  /// Nodes any attempt of this task has executed on (backup placement
  /// avoids them).
  std::set<NodeId> tried;
  /// Wall-clock duration of the recorded result, for the monitor's
  /// completed-task median.
  double duration = 0;
  std::atomic<bool> done{false};
  /// Seconds on the phase clock when the primary chain started executing;
  /// < 0 until then (queued tasks are not stragglers).
  std::atomic<double> started_at{-1.0};
};

}  // namespace

/// Everything one map task hands back to the merge step. Each task owns
/// its TaskReport (and the IoStats inside it) exclusively while running;
/// nothing is written to shared sinks until the join. Exactly one of
/// `pairs` (in-memory shuffle) and `runs` (external shuffle) is used.
struct JobRunner::MapTaskResult {
  TaskReport task;
  std::vector<std::pair<Value, Value>> pairs;
  std::vector<SpillRun> runs;
  uint64_t spills = 0;
  uint64_t spilled_bytes = 0;
  uint64_t records_spilled = 0;
  uint64_t kv_bytes_spilled = 0;
  uint64_t peak_buffer_bytes = 0;
  Status status;
};

NodeId JobRunner::ScheduleSplit(const InputSplit& split,
                                std::vector<int>* node_load, int total_splits,
                                bool* data_local) const {
  const int num_nodes = fs_->config().num_nodes;
  // A node is "busy" once it holds more than its balanced share of tasks.
  const int fair_share =
      (total_splits + num_nodes - 1) / std::max(1, num_nodes);

  NodeId best_local = kAnyNode;
  for (NodeId node : split.locations) {
    if (node < 0 || node >= num_nodes || fs_->IsNodeDead(node)) continue;
    if (best_local == kAnyNode || (*node_load)[node] < (*node_load)[best_local]) {
      best_local = node;
    }
  }
  if (best_local != kAnyNode && (*node_load)[best_local] < fair_share) {
    *data_local = true;
    return best_local;
  }
  // Fall back to the globally least-loaded live node (rack-locality is
  // not modelled): the task will read some or all of its data remotely.
  NodeId least = kAnyNode;
  for (NodeId node = 0; node < num_nodes; ++node) {
    if (fs_->IsNodeDead(node)) continue;
    if (least == kAnyNode || (*node_load)[node] < (*node_load)[least]) {
      least = node;
    }
  }
  *data_local = std::find(split.locations.begin(), split.locations.end(),
                          least) != split.locations.end();
  return least;
}

Status JobRunner::Run(const Job& job, JobReport* report) {
  MetricsRegistry* metrics = job.config.metrics != nullptr
                                 ? job.config.metrics
                                 : &MetricsRegistry::Default();
  // Trace lifecycle: use the caller's collector when given; otherwise own
  // one for the duration of the run iff a trace_path asks for output.
  std::unique_ptr<TraceCollector> owned_trace;
  TraceCollector* trace = job.config.trace;
  if (trace == nullptr && !job.config.trace_path.empty()) {
    owned_trace = std::make_unique<TraceCollector>();
    trace = owned_trace.get();
  }

  Status status;
  {
    // Scope the root span so it closes before the collector is flushed.
    ScopedSpan job_span(trace, "job", "mr");
    status = RunImpl(job, report, metrics, trace);
    if (job_span.active() && !status.ok()) {
      job_span.AddArg("error", status.message());
    }
  }
  if (trace != nullptr && !job.config.trace_path.empty()) {
    Status write_status = trace->WriteFile(job.config.trace_path);
    if (status.ok()) status = write_status;
  }
  return status;
}

Status JobRunner::RunImpl(const Job& job, JobReport* report,
                          MetricsRegistry* metrics, TraceCollector* trace) {
  Stopwatch wall;
  *report = JobReport();
  if (!job.input_format) {
    return Status::InvalidArgument("job has no input format");
  }
  if (!job.mapper) {
    return Status::InvalidArgument("job has no mapper");
  }
  metrics->counter("mr.job.runs")->Increment();

  // Output guard + commit protocol (DESIGN.md §11): claim the output
  // directory before any task runs, and make sure a failed job leaves no
  // visible output — a crash, fault, or exhausted retry at any point
  // below rolls the directory back to empty.
  std::unique_ptr<OutputCommitter> committer;
  if (!job.config.output_path.empty()) {
    committer = std::make_unique<OutputCommitter>(fs_, job.config.output_path,
                                                  metrics, trace);
    COLMR_RETURN_IF_ERROR(committer->SetupJob());
  }
  Status status = ExecutePhases(job, report, metrics, trace, committer.get());
  if (!status.ok() && committer != nullptr) {
    committer->AbortJob();
    report->commit_aborts += 1;
  }
  report->wall_seconds = wall.ElapsedSeconds();
  return status;
}

Status JobRunner::ExecutePhases(const Job& job, JobReport* report,
                                MetricsRegistry* metrics,
                                TraceCollector* trace,
                                OutputCommitter* committer) {

  // ---- Block cache + prefetch (DESIGN.md §9): attach the shared cache
  // (idempotent, so repeated jobs share one warm cache) and stand up the
  // dedicated warm-task pool. Prefetch must NOT share the map-task pool:
  // its FIFO queue would order warm tasks after every queued map task,
  // by which time the scan they were meant to overlap has finished.
  if (job.config.cache_bytes > 0) {
    fs_->EnsureBlockCache(job.config.cache_bytes, metrics);
  }
  std::unique_ptr<ThreadPool> prefetch_pool;
  if (job.config.cache_bytes > 0 && job.config.prefetch_depth > 0) {
    prefetch_pool = std::make_unique<ThreadPool>(2);
  }

  // ---- External sort-merge shuffle setup (DESIGN.md §12). The reducer
  // count is fixed before any map task runs because the external path
  // partitions at emit time. Map-only jobs have no shuffle to externalize,
  // so sort_buffer_bytes is ignored for them.
  const int num_reducers =
      job.reducer ? (job.config.num_reduce_tasks > 0
                         ? job.config.num_reduce_tasks
                         : fs_->config().num_nodes *
                               fs_->config().reduce_slots_per_node)
                  : 0;
  const bool external_shuffle =
      job.config.sort_buffer_bytes > 0 && job.reducer != nullptr;
  if (external_shuffle && GetCodec(job.config.spill_codec) == nullptr) {
    return Status::InvalidArgument("unknown spill codec");
  }
  // Spill scratch: with a committer, runs live inside the task attempt's
  // _temporary scratch (CommitJob/AbortJob tear them down with it); a job
  // with no output path gets a private /_shuffle directory, removed on
  // every exit path by the guard below.
  std::string scratch_root;
  if (external_shuffle && committer == nullptr) {
    static std::atomic<uint64_t> scratch_seq{0};
    scratch_root = "/_shuffle/job-" + std::to_string(scratch_seq.fetch_add(1));
  }
  struct ScratchGuard {
    MiniHdfs* fs;
    std::string root;
    ~ScratchGuard() {
      if (!root.empty()) fs->DeleteRecursive(root);
    }
  } scratch_guard{fs_, scratch_root};
  auto spill_dir = [&](size_t split, int attempt) -> std::string {
    char task_id[32];
    std::snprintf(task_id, sizeof(task_id), "m_%05zu", split);
    if (committer != nullptr) {
      return committer->TaskAttemptDir(task_id, attempt);
    }
    return scratch_root + "/attempt_" + task_id + "_" +
           std::to_string(attempt);
  };

  Counter* m_tasks_launched = metrics->counter("mr.task.launched");
  Counter* m_task_retries = metrics->counter("mr.task.retries");
  Counter* m_nodes_blacklisted = metrics->counter("mr.node.blacklisted");
  Gauge* m_slots_active = metrics->gauge("mr.slots.active");
  Histogram* m_task_cpu_micros = metrics->histogram("mr.task.cpu_micros");
  Counter* m_spec_launched = metrics->counter("mr.speculative.launched");
  Counter* m_spec_won = metrics->counter("mr.speculative.won");
  Counter* m_spec_lost = metrics->counter("mr.speculative.lost");
  Counter* m_write_retries = metrics->counter("hdfs.write.retries");

  std::vector<InputSplit> splits;
  {
    ScopedSpan plan_span(trace, "plan.splits", "mr");
    ReadContext plan_context;
    plan_context.metrics = metrics;
    plan_context.trace = trace;
    plan_context.readahead_bytes = job.config.readahead_bytes;
    COLMR_RETURN_IF_ERROR(
        job.input_format->GetSplits(fs_, job.config, plan_context, &splits));
    if (plan_span.active()) {
      plan_span.AddArg("splits", static_cast<uint64_t>(splits.size()));
    }
  }
  if (splits.empty()) {
    return Status::InvalidArgument("input produced no splits");
  }

  // ---- Scheduling: assign every split to its node serially, in split
  // order, exactly as the serial engine did — the assignment (and with it
  // all locality accounting) is deterministic and independent of the
  // thread count tasks later execute with.
  std::vector<int> node_load(fs_->config().num_nodes, 0);
  std::vector<NodeId> assigned_node(splits.size(), kAnyNode);
  std::vector<char> assigned_local(splits.size(), 0);
  for (size_t i = 0; i < splits.size(); ++i) {
    bool data_local = false;
    assigned_node[i] = ScheduleSplit(splits[i], &node_load,
                                     static_cast<int>(splits.size()),
                                     &data_local);
    if (assigned_node[i] != kAnyNode) node_load[assigned_node[i]] += 1;
    assigned_local[i] = data_local ? 1 : 0;
  }

  const int total_slots = fs_->config().TotalMapSlots();
  int threads;
  if (job.config.parallelism == 1) {
    threads = 1;
  } else if (job.config.parallelism > 1) {
    // More threads than cluster slots cannot run: the gate would park them.
    threads = std::min(job.config.parallelism, std::max(1, total_slots));
  } else {
    threads = ThreadPool::DefaultThreads(total_slots);
  }
  report->worker_threads = threads;

  // ---- Map phase: execute every task, measuring per-thread CPU and
  // counting I/O into task-private sinks.
  SlotGate gate(fs_->config().num_nodes, fs_->config().map_slots_per_node);
  RetryTracker retry(job.config.node_blacklist_failures);
  std::vector<MapTaskResult> results(splits.size());

  // Speculation / deadline machinery. Controls exist even when both
  // features are off — the checks they feed are gated, so the fast path
  // only pays an untaken branch.
  const bool speculate =
      job.config.speculative_execution && job.config.parallelism != 1;
  std::vector<std::unique_ptr<TaskControl>> controls(splits.size());
  for (auto& control : controls) control = std::make_unique<TaskControl>();
  Stopwatch phase_clock;
  std::atomic<size_t> tasks_recorded{0};
  std::atomic<uint64_t> spec_launched{0}, spec_won{0}, spec_lost{0};

  // One execution of one map task on one node. Everything the attempt
  // produces lands in attempt-private state, so a failed attempt can be
  // discarded wholesale and retried. `superseded` (may be null) is the
  // early-exit hint: once another attempt of the same task has recorded
  // the result, this attempt stops reading and returns — its output is
  // discarded either way, and a losing straggler must not hold the job's
  // wall clock hostage.
  auto run_attempt = [&](size_t i, int attempt, NodeId node, bool data_local,
                         MapTaskResult* out,
                         const std::atomic<bool>* superseded) {
    TaskReport* task = &out->task;
    task->split_index = static_cast<int>(i);
    task->node = node;
    task->data_local = data_local;

    {
      ScopedSpan wait_span(trace, "slot_wait", "mr");
      gate.Acquire(node);
      if (wait_span.active()) wait_span.AddArg("node", node);
    }
    m_slots_active->Add(1);
    m_tasks_launched->Increment();
    // The map_task span lives on the executing thread, so the hdfs.read
    // spans its record reader emits nest inside it on the same track.
    ScopedSpan task_span(trace, "map_task", "mr");
    if (task_span.active()) {
      task_span.AddArg("split", static_cast<uint64_t>(i));
      task_span.AddArg("node", node);
      task_span.AddArg("attempt", attempt);
      task_span.AddArg("data_local", data_local);
    }
    // The salt keys this attempt's deterministic fault schedule: a retry
    // of the same split draws fresh outcomes, whatever thread runs it.
    ReadContext context{node, &task->io,
                        static_cast<uint64_t>(i) * 131 +
                            static_cast<uint64_t>(attempt),
                        metrics, trace};
    context.readahead_bytes = job.config.readahead_bytes;
    context.prefetch_depth = job.config.prefetch_depth;
    context.prefetch_pool = prefetch_pool.get();
    context.cancel = superseded;
    std::unique_ptr<RecordReader> reader;
    Status status = job.input_format->CreateRecordReader(
        fs_, job.config, splits[i], context, &reader);
    if (status.ok()) {
      // External shuffle: the task's emitter is a bounded sort buffer that
      // spills sorted runs into this attempt's private scratch. Spill
      // writes draw from their own fault-salt domain, so injected write
      // faults hit spills and output writes independently.
      std::unique_ptr<MapOutputBuffer> spill_buffer;
      if (external_shuffle) {
        MapOutputBuffer::Options opts;
        opts.fs = fs_;
        opts.scratch_dir = spill_dir(i, attempt);
        opts.write_context =
            WriteContext{node, &task->io,
                         kSpillWriteSaltDomain |
                             (static_cast<uint64_t>(i) * 131 +
                              static_cast<uint64_t>(attempt)),
                         metrics};
        opts.num_partitions = num_reducers;
        opts.sort_buffer_bytes = job.config.sort_buffer_bytes;
        opts.combiner = job.combiner ? &job.combiner : nullptr;
        opts.codec = job.config.spill_codec;
        opts.metrics = metrics;
        opts.trace = trace;
        spill_buffer = std::make_unique<MapOutputBuffer>(std::move(opts));
      }
      // Per-attempt wall-clock deadline (task_timeout_ms) and supersede
      // polling. Both checks are cheap but not free (a steady_clock read,
      // an atomic load), so the scalar loop polls every 64 records and
      // the batch loop once per batch. `interrupted` leaves the abort
      // reason in abort_status.
      const double timeout_seconds = job.config.task_timeout_ms > 0
                                         ? job.config.task_timeout_ms / 1e3
                                         : 0;
      const bool poll = timeout_seconds > 0 || superseded != nullptr ||
                        spill_buffer != nullptr;
      Stopwatch attempt_watch;
      Status abort_status;
      auto interrupted = [&]() -> bool {
        if (!poll) return false;
        if (superseded != nullptr &&
            superseded->load(std::memory_order_relaxed)) {
          abort_status = Status::IoError("attempt superseded: task " +
                                         std::to_string(i) +
                                         " already has a recorded result");
          return true;
        }
        if (spill_buffer != nullptr && !spill_buffer->status().ok()) {
          // A spill write failed; the buffer is sticky-bad and mapping on
          // would only drop output. Fail the attempt into the retry path.
          abort_status = spill_buffer->status();
          return true;
        }
        if (timeout_seconds > 0 &&
            attempt_watch.ElapsedSeconds() > timeout_seconds) {
          abort_status = Status::IoError(
              "task " + std::to_string(i) + " attempt " +
              std::to_string(attempt) + " exceeded task_timeout_ms=" +
              std::to_string(job.config.task_timeout_ms));
          return true;
        }
        return false;
      };
      VectorEmitter emitter;
      Emitter* map_out =
          spill_buffer != nullptr ? static_cast<Emitter*>(spill_buffer.get())
                                  : &emitter;
      ThreadCpuStopwatch watch;
      // Predicate filter (DESIGN.md §13): rows reach the mapper only when
      // the job predicate is TRUE. The format may have evaluated it
      // already (selection()); otherwise the engine filters row-wise
      // here, so output is identical with pushdown on or off.
      const Predicate* predicate = job.config.predicate.get();
      if (job.config.batch_rows <= 1) {
        // Scalar path, bit-for-bit the pre-batch engine.
        uint64_t tick = 0;
        while (reader->Next()) {
          if ((++tick & 63) == 0 && interrupted()) break;
          if (predicate != nullptr) {
            Status eval;
            const Tri pass = EvalPredicateRow(*predicate, reader->record(),
                                              &eval);
            if (!eval.ok()) {
              abort_status = eval;
              break;
            }
            if (pass != Tri::kTrue) continue;
          }
          job.mapper(reader->record(), map_out);
          ++task->input_records;
        }
      } else {
        uint64_t filled;
        while ((filled = reader->FillBatch(job.config.batch_rows)) > 0) {
          if (interrupted()) break;
          const std::vector<uint32_t>* selection = reader->selection();
          if (selection != nullptr) {
            for (const uint32_t r : *selection) {
              job.mapper(reader->RecordAt(r), map_out);
            }
            task->input_records += selection->size();
          } else if (predicate != nullptr) {
            Status eval;
            for (uint64_t r = 0; r < filled; ++r) {
              Record& record = reader->RecordAt(r);
              const Tri pass = EvalPredicateRow(*predicate, record, &eval);
              if (!eval.ok()) break;
              if (pass != Tri::kTrue) continue;
              job.mapper(record, map_out);
              ++task->input_records;
            }
            if (!eval.ok()) {
              abort_status = eval;
              break;
            }
          } else {
            for (uint64_t r = 0; r < filled; ++r) {
              job.mapper(reader->RecordAt(r), map_out);
            }
            task->input_records += filled;
          }
        }
      }
      // Map-side combine (in-memory path; the spill buffer combines at
      // spill time instead): sort this task's output, fold runs of equal
      // keys through the combiner, and ship the (usually much smaller)
      // result.
      if (abort_status.ok() && spill_buffer == nullptr && job.combiner &&
          !emitter.pairs().empty()) {
        auto& all = emitter.pairs();
        std::stable_sort(all.begin(), all.end(),
                         [](const auto& a, const auto& b) {
                           return a.first.Compare(b.first) < 0;
                         });
        VectorEmitter combined;
        FoldSortedRuns(&all, job.combiner, &combined);
        all = std::move(combined.pairs());
      }
      // External shuffle: spill the buffer's tail inside the CPU window —
      // the final sort is map work like the in-memory combine above.
      if (abort_status.ok() && spill_buffer != nullptr) {
        abort_status = spill_buffer->Finish();
      }
      task->cpu_seconds = watch.ElapsedSeconds();
      status = abort_status.ok() ? reader->status() : abort_status;
      if (spill_buffer != nullptr) {
        out->runs = spill_buffer->TakeRuns();
        out->spills = spill_buffer->spills();
        out->spilled_bytes = spill_buffer->spilled_bytes();
        out->records_spilled = spill_buffer->records_spilled();
        out->kv_bytes_spilled = spill_buffer->kv_bytes_spilled();
        out->peak_buffer_bytes = spill_buffer->peak_buffer_bytes();
        task->output_records = spill_buffer->records_spilled();
      } else {
        task->output_records = emitter.pairs().size();
        out->pairs = std::move(emitter.pairs());
      }
      if (task_span.active()) {
        task_span.AddArg("input_records", task->input_records);
        task_span.AddArg("output_records", task->output_records);
      }
      m_task_cpu_micros->Observe(
          static_cast<uint64_t>(task->cpu_seconds * 1e6));
    }
    task_span.End();
    m_slots_active->Add(-1);
    gate.Release(node);
    return status;
  };

  // One task end-to-end, as either the primary execution (the retry loop:
  // up to max_task_attempts, fresh node per retry, blacklist feedback) or
  // the single speculative backup attempt. Whichever execution finishes
  // first records the task's result under the control lock; the other
  // discovers ctrl.done, skips recording, and its output is discarded —
  // exactly one writer of results[i], ever.
  auto run_task = [&](size_t i, bool is_backup) {
    TaskControl& ctrl = *controls[i];
    const int max_attempts = std::max(1, job.config.max_task_attempts);
    const std::atomic<bool>* supersede_flag = speculate ? &ctrl.done : nullptr;

    if (is_backup) {
      // One attempt, on a node the primary has not tried (fall back to
      // reuse when the cluster is exhausted). The attempt index sits past
      // the primary's range so its fault-schedule salt never collides.
      std::set<NodeId> tried;
      {
        std::lock_guard<std::mutex> lock(ctrl.mu);
        tried = ctrl.tried;
      }
      const NodeId node =
          PickRetryNode(*fs_, splits[i], tried, retry, assigned_node[i]);
      MapTaskResult local;
      Status status = run_attempt(i, max_attempts, node,
                                  SplitIsLocalTo(splits[i], node), &local,
                                  supersede_flag);
      bool won = false;
      {
        std::lock_guard<std::mutex> lock(ctrl.mu);
        ctrl.backup_inflight = false;
        if (status.ok() && !ctrl.recorded) {
          ctrl.recorded = true;
          local.task.attempts = 1;
          local.task.sim_seconds = cost_model_.TaskSeconds(
              {local.task.cpu_seconds, local.task.io});
          local.status = Status::OK();
          results[i] = std::move(local);
          ctrl.done.store(true, std::memory_order_relaxed);
          tasks_recorded.fetch_add(1);
          won = true;
        } else if (!status.ok() && ctrl.primary_failed && !ctrl.recorded) {
          // The primary already failed terminally and deferred to us; the
          // backup failed too, so the task fails with the primary's error.
          ctrl.recorded = true;
          results[i].status = ctrl.primary_status;
          ctrl.done.store(true, std::memory_order_relaxed);
          tasks_recorded.fetch_add(1);
        }
      }
      if (won) {
        spec_won.fetch_add(1);
        m_spec_won->Increment();
      } else {
        spec_lost.fetch_add(1);
        m_spec_lost->Increment();
      }
      TraceInstant(trace, won ? "speculative_won" : "speculative_lost", "mr",
                   {{"split", TraceCollector::JsonValue(
                                  static_cast<uint64_t>(i))}});
      return;
    }

    // Primary execution. started_at is stamped here — not at submit time —
    // so a task still queued behind others is never mistaken for a
    // straggler by the monitor.
    ctrl.started_at.store(phase_clock.ElapsedSeconds(),
                          std::memory_order_relaxed);
    NodeId node = assigned_node[i];
    bool data_local = assigned_local[i] != 0;
    IoStats failed_io;
    double failed_cpu = 0;

    for (int attempt = 0; attempt < max_attempts; ++attempt) {
      if (ctrl.done.load(std::memory_order_relaxed)) return;  // backup won
      {
        // Move off the scheduled node when it has been blacklisted since
        // scheduling, and always onto a fresh node for a retry. The tried
        // set lives in ctrl so a backup can pick a disjoint node.
        std::lock_guard<std::mutex> lock(ctrl.mu);
        if (retry.IsBlacklisted(node) || ctrl.tried.count(node) > 0) {
          node = PickRetryNode(*fs_, splits[i], ctrl.tried, retry, node);
          data_local = SplitIsLocalTo(splits[i], node);
        }
        ctrl.tried.insert(node);
      }

      MapTaskResult local;
      Status status =
          run_attempt(i, attempt, node, data_local, &local, supersede_flag);

      // DataLoss is terminal: no replica anywhere can serve the bytes, so
      // burning the remaining attempts (or blaming the node) is wrong.
      if (status.ok() || status.IsDataLoss() || attempt + 1 >= max_attempts) {
        local.task.attempts = attempt + 1;
        // The task's cost includes what its failed attempts consumed.
        local.task.cpu_seconds += failed_cpu;
        local.task.io.Add(failed_io);
        std::lock_guard<std::mutex> lock(ctrl.mu);
        if (ctrl.recorded) return;  // the backup finished first
        if (!status.ok() && ctrl.backup_inflight) {
          // Terminal failure while a backup is still running: defer the
          // verdict — the backup may yet succeed.
          ctrl.primary_failed = true;
          ctrl.primary_status = std::move(status);
          return;
        }
        ctrl.recorded = true;
        ctrl.duration = phase_clock.ElapsedSeconds() -
                        ctrl.started_at.load(std::memory_order_relaxed);
        local.task.sim_seconds =
            cost_model_.TaskSeconds({local.task.cpu_seconds, local.task.io});
        local.status = std::move(status);
        results[i] = std::move(local);
        ctrl.done.store(true, std::memory_order_relaxed);
        tasks_recorded.fetch_add(1);
        return;
      }
      // Retryable failure — unless this attempt was aborted because the
      // backup already recorded the task, which is no node's fault and
      // needs no retry bookkeeping.
      if (ctrl.done.load(std::memory_order_relaxed)) return;
      m_task_retries->Increment();
      TraceInstant(trace, "task_retry", "mr",
                   {{"split", TraceCollector::JsonValue(
                                  static_cast<uint64_t>(i))},
                    {"node", TraceCollector::JsonValue(node)},
                    {"error", TraceCollector::JsonValue(status.message())}});
      if (retry.RecordFailure(node)) {
        m_nodes_blacklisted->Increment();
        TraceInstant(trace, "node_blacklisted", "mr",
                     {{"node", TraceCollector::JsonValue(node)}});
      }
      failed_cpu += local.task.cpu_seconds;
      failed_io.Add(local.task.io);
    }
  };

  std::unique_ptr<ThreadPool> pool;
  {
    ScopedSpan map_span(trace, "map_phase", "mr");
    if (map_span.active()) {
      map_span.AddArg("tasks", static_cast<uint64_t>(splits.size()));
      map_span.AddArg("threads", threads);
    }
    if (threads > 1) {
      pool = std::make_unique<ThreadPool>(threads);
      for (size_t i = 0; i < splits.size(); ++i) {
        pool->Submit([&run_task, i] { run_task(i, false); });
      }
      if (speculate) {
        // Straggler monitor (Hadoop semantics): once completed tasks give
        // a median duration, any running task lagging past
        // max(2 × median, 10 ms) gets ONE backup attempt on another node.
        // The driver thread plays the JobTracker here, polling while the
        // pool drains.
        while (tasks_recorded.load(std::memory_order_relaxed) <
               splits.size()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          std::vector<double> durations;
          for (auto& control : controls) {
            std::lock_guard<std::mutex> lock(control->mu);
            if (control->recorded) durations.push_back(control->duration);
          }
          if (durations.empty()) continue;
          std::nth_element(durations.begin(),
                           durations.begin() + durations.size() / 2,
                           durations.end());
          const double median = durations[durations.size() / 2];
          const double threshold = std::max(2 * median, 0.01);
          const double now = phase_clock.ElapsedSeconds();
          for (size_t i = 0; i < splits.size(); ++i) {
            TaskControl& ctrl = *controls[i];
            const double started =
                ctrl.started_at.load(std::memory_order_relaxed);
            if (started < 0 || ctrl.done.load(std::memory_order_relaxed) ||
                now - started <= threshold) {
              continue;
            }
            bool launch = false;
            {
              std::lock_guard<std::mutex> lock(ctrl.mu);
              if (!ctrl.recorded && !ctrl.backup_launched) {
                ctrl.backup_launched = true;
                ctrl.backup_inflight = true;
                launch = true;
              }
            }
            if (!launch) continue;
            spec_launched.fetch_add(1);
            m_spec_launched->Increment();
            TraceInstant(trace, "speculative_launch", "mr",
                         {{"split", TraceCollector::JsonValue(
                                        static_cast<uint64_t>(i))}});
            pool->Submit([&run_task, i] { run_task(i, true); });
          }
        }
      }
      pool->Wait();
    } else {
      for (size_t i = 0; i < splits.size(); ++i) {
        run_task(i, false);
        // Fail fast like the original serial loop (after the task's own
        // retries are exhausted); the merge below reports the failure.
        if (!results[i].status.ok()) break;
      }
    }
  }
  report->speculative_launched = spec_launched.load();
  report->speculative_won = spec_won.load();
  report->speculative_lost = spec_lost.load();

  // ---- Failure/recovery accounting: filled before the merge loop so a
  // failed job still reports what its recovery machinery did.
  for (const MapTaskResult& result : results) {
    if (result.task.attempts > 0) {
      report->task_retries += static_cast<uint64_t>(result.task.attempts - 1);
    }
    report->checksum_failures += result.task.io.checksum_failures;
    report->failover_reads += result.task.io.failover_reads;
    // Spill-write faults of every attempt, winning or not (the in-memory
    // map path writes nothing, so this is zero there); reduce-output
    // faults are added where those writes happen.
    report->write_faults += result.task.io.write_faults;
  }
  report->blacklisted_nodes = retry.blacklisted();
  report->peak_node_slots = gate.peaks();

  // ---- Join: merge per-task results into the report in split order, so
  // map output (and everything derived from it) is byte-identical to the
  // serial engine's.
  std::vector<std::pair<Value, Value>> map_output;
  // External shuffle: winning tasks' runs, in (split, spill) order — the
  // global sequence order the merge's tie-break reproduces stable sorting
  // with.
  std::vector<SpillRun> all_runs;
  std::vector<double> task_times;
  task_times.reserve(splits.size());
  for (MapTaskResult& result : results) {
    COLMR_RETURN_IF_ERROR(result.status);
    TaskReport& task = result.task;
    task_times.push_back(task.sim_seconds);

    report->map_input_records += task.input_records;
    report->map_output_records += task.output_records;
    report->bytes_read_local += task.io.local_bytes;
    report->bytes_read_remote += task.io.remote_bytes;
    report->map_cpu_seconds += task.cpu_seconds;
    if (task.data_local) {
      report->data_local_tasks += 1;
    } else {
      report->remote_tasks += 1;
    }

    if (external_shuffle) {
      // Post-spill-combine tagged bytes: the external analog of the
      // in-memory sum below (which also measures post-combine pairs).
      report->map_output_bytes += result.kv_bytes_spilled;
      report->spill_count += result.spills;
      report->spill_bytes += result.spilled_bytes;
      report->peak_spill_buffer_bytes = std::max(
          report->peak_spill_buffer_bytes, result.peak_buffer_bytes);
      for (SpillRun& run : result.runs) all_runs.push_back(std::move(run));
    } else {
      for (auto& pair : result.pairs) {
        report->map_output_bytes +=
            TaggedEncodedSize(pair.first) + TaggedEncodedSize(pair.second);
        map_output.push_back(std::move(pair));
      }
    }
    report->map_tasks.push_back(std::move(task));
  }
  report->map_phase_seconds = cost_model_.MapPhaseSeconds(task_times);
  double task_time_sum = 0;
  for (double t : task_times) task_time_sum += t;
  report->map_slot_seconds =
      task_time_sum / std::max(1, fs_->config().TotalMapSlots());
  metrics->counter("mr.map.input_records")
      ->Increment(report->map_input_records);
  metrics->counter("mr.map.output_records")
      ->Increment(report->map_output_records);

  // ---- Shuffle + reduce (skipped for map-only jobs).
  if (job.reducer) {
    std::vector<std::vector<std::pair<Value, Value>>> partitions;
    std::vector<SpillRun> final_runs;
    if (external_shuffle) {
      // ---- Intermediate merge passes (io.sort.factor): while more runs
      // exist than merge_factor, merge contiguous groups of merge_factor
      // runs into one run each. Contiguous grouping preserves the global
      // sequence order, so the final merge's tie-break semantics are
      // unchanged. A write fault during a merge retries the group with a
      // fresh salt and path, like any other write attempt.
      final_runs = std::move(all_runs);
      const size_t merge_factor =
          static_cast<size_t>(std::max(2, job.config.merge_factor));
      Counter* m_merge_passes = metrics->counter("mr.spill.merge_passes");
      Counter* m_merge_segments = metrics->counter("mr.spill.merge_segments");
      const int write_attempts = std::max(1, job.config.max_task_attempts);
      int pass = 0;
      while (final_runs.size() > merge_factor) {
        std::vector<SpillRun> next;
        for (size_t g = 0; g * merge_factor < final_runs.size(); ++g) {
          const size_t begin = g * merge_factor;
          const size_t end =
              std::min(final_runs.size(), begin + merge_factor);
          if (end - begin == 1) {
            next.push_back(std::move(final_runs[begin]));
            continue;
          }
          std::vector<const SpillRun*> group;
          for (size_t r = begin; r < end; ++r) group.push_back(&final_runs[r]);
          Status last;
          bool merged_ok = false;
          for (int attempt = 0; attempt < write_attempts && !merged_ok;
               ++attempt) {
            ScopedSpan merge_span(trace, "merge", "mr");
            if (merge_span.active()) {
              merge_span.AddArg("pass", pass);
              merge_span.AddArg("group", static_cast<uint64_t>(g));
              merge_span.AddArg("runs", static_cast<uint64_t>(group.size()));
              merge_span.AddArg("attempt", attempt);
            }
            const uint64_t salt =
                kMergeWriteSaltDomain |
                ((static_cast<uint64_t>(pass) * 8191 + g) * 131 +
                 static_cast<uint64_t>(attempt));
            WriteContext wctx{kAnyNode, nullptr, salt, metrics};
            ReadContext rctx;
            rctx.metrics = metrics;
            rctx.trace = trace;
            const std::string name = "merge-" + std::to_string(pass) + "-" +
                                     std::to_string(g);
            const std::string path =
                committer != nullptr
                    ? committer->TaskAttemptDir(name, attempt) + "/run"
                    : scratch_root + "/" + name + "-" +
                          std::to_string(attempt);
            SpillRun merged;
            uint64_t segments = 0;
            last = MergeSpillRuns(fs_, group, path, wctx, rctx,
                                  job.config.spill_codec, num_reducers,
                                  job.combiner ? &job.combiner : nullptr,
                                  &merged, &segments);
            if (last.ok()) {
              next.push_back(std::move(merged));
              report->merge_segments += segments;
              m_merge_segments->Increment(segments);
              merged_ok = true;
            } else {
              TraceInstant(trace, "merge_retry", "mr",
                           {{"pass", TraceCollector::JsonValue(pass)},
                            {"group", TraceCollector::JsonValue(
                                          static_cast<uint64_t>(g))},
                            {"error", TraceCollector::JsonValue(
                                          last.message())}});
            }
          }
          if (!merged_ok) return last;
        }
        final_runs = std::move(next);
        report->merge_passes += 1;
        m_merge_passes->Increment();
        ++pass;
      }
      // Bytes actually shuffled: what survives all map-side combining and
      // enters the reduce merge.
      for (const SpillRun& run : final_runs) {
        report->shuffle_bytes += run.TotalKvBytes();
      }
    } else {
      // Partition by the stable key hash, then sort each partition
      // (Hadoop's sort-merge shuffle, collapsed to an in-memory sort).
      // Partition contents keep map-output order, so the per-partition
      // stable sort is deterministic too.
      partitions.resize(static_cast<size_t>(num_reducers));
      ScopedSpan shuffle_span(trace, "shuffle", "mr");
      for (auto& pair : map_output) {
        const uint32_t p = ShufflePartition(
            pair.first, static_cast<uint32_t>(num_reducers));
        partitions[p].push_back(std::move(pair));
      }
      if (shuffle_span.active()) {
        shuffle_span.AddArg("partitions",
                            static_cast<uint64_t>(partitions.size()));
        shuffle_span.AddArg("bytes", report->map_output_bytes);
      }
      report->shuffle_bytes = report->map_output_bytes;
    }
    metrics->counter("mr.shuffle.bytes")->Increment(report->shuffle_bytes);

    std::vector<ReduceTaskResult> reduced(static_cast<size_t>(num_reducers));
    auto execute_reducer = [&](size_t p) {
      ScopedSpan reduce_span(trace, "reduce_task", "mr");
      if (reduce_span.active()) {
        reduce_span.AddArg("partition", static_cast<uint64_t>(p));
      }
      ThreadCpuStopwatch watch;
      VectorEmitter emitter;
      uint64_t input_records = 0;
      if (external_shuffle) {
        // Stream this partition through a heap merge over every final
        // run — the partition never materializes as a vector. Groups of
        // equal keys fold through the reducer as they drain off the heap;
        // the merge order equals the stable sort the in-memory path does,
        // so the reducer sees identical (key, [values]) calls.
        SpillMerger merger;
        for (size_t r = 0; r < final_runs.size(); ++r) {
          if (final_runs[r].segments[p].records == 0) continue;
          ReadContext rctx;
          rctx.metrics = metrics;
          rctx.trace = trace;
          std::unique_ptr<SpillSegmentCursor> cursor;
          Status open_status = SpillSegmentCursor::Open(
              fs_, final_runs[r], static_cast<int>(p), rctx, &cursor);
          if (!open_status.ok()) {
            reduced[p].status = open_status;
            return;
          }
          merger.Add(std::move(cursor), r);
          reduced[p].segments_merged += 1;
        }
        Value group_key;
        std::vector<Value> group_values;
        while (merger.Next()) {
          ++input_records;
          if (!group_values.empty() &&
              merger.key().Compare(group_key) != 0) {
            job.reducer(group_key, group_values, &emitter);
            group_values.clear();
          }
          if (group_values.empty()) group_key = merger.key();
          group_values.push_back(merger.value());
        }
        if (!merger.status().ok()) {
          reduced[p].status = merger.status();
          return;
        }
        if (!group_values.empty()) {
          job.reducer(group_key, group_values, &emitter);
        }
      } else {
        auto& partition = partitions[p];
        input_records = partition.size();
        std::stable_sort(partition.begin(), partition.end(),
                         [](const auto& a, const auto& b) {
                           return a.first.Compare(b.first) < 0;
                         });
        FoldSortedRuns(&partition, job.reducer, &emitter);
      }
      if (reduce_span.active()) {
        reduce_span.AddArg("input_records", input_records);
      }
      reduced[p].input_records = input_records;
      reduced[p].cpu_seconds = watch.ElapsedSeconds();
      reduced[p].pairs = std::move(emitter.pairs());
    };

    {
      ScopedSpan reduce_phase_span(trace, "reduce_phase", "mr");
      if (pool != nullptr) {
        for (size_t p = 0; p < reduced.size(); ++p) {
          pool->Submit([&execute_reducer, p] { execute_reducer(p); });
        }
        pool->Wait();
      } else {
        for (size_t p = 0; p < reduced.size(); ++p) execute_reducer(p);
      }
    }
    // Spill-read failures surface after the pool joins, lowest partition
    // first (matching the map phase's lowest-index-failure contract).
    for (const ReduceTaskResult& result : reduced) {
      COLMR_RETURN_IF_ERROR(result.status);
    }
    if (external_shuffle) {
      uint64_t final_segments = 0;
      for (const ReduceTaskResult& result : reduced) {
        final_segments += result.segments_merged;
      }
      report->merge_segments += final_segments;
      metrics->counter("mr.spill.merge_segments")->Increment(final_segments);
    }

    // Materialize the reduce output as text part files through the commit
    // protocol (DESIGN.md §11) — before the merge below moves the
    // partition vectors. Each partition is one output task: an attempt
    // writes part-r-NNNNN into its private _temporary attempt dir, then
    // commits with one atomic rename. A write or commit fault retries the
    // whole attempt on another node, feeding the same blacklist as map
    // retries; exhausting attempts fails the job (and RunImpl's AbortJob
    // leaves no visible output). Empty partitions still write their part
    // file, matching Hadoop's one-file-per-reducer layout.
    if (committer != nullptr) {
      const int write_attempts = std::max(1, job.config.max_task_attempts);
      const int num_nodes = fs_->config().num_nodes;
      for (size_t p = 0; p < reduced.size(); ++p) {
        char task_id[32];
        std::snprintf(task_id, sizeof(task_id), "r_%05zu", p);
        char part_name[32];
        std::snprintf(part_name, sizeof(part_name), "part-r-%05zu", p);
        std::set<NodeId> tried;
        Status last;
        bool committed = false;
        for (int attempt = 0; attempt < write_attempts && !committed;
             ++attempt) {
          // Deterministic node choice: round-robin from the partition
          // index over live, unblacklisted, untried nodes, reusing a
          // tried node only when the cluster is exhausted.
          NodeId node = static_cast<NodeId>(p % num_nodes);
          for (int off = 0; off < num_nodes; ++off) {
            const NodeId cand =
                static_cast<NodeId>((p + static_cast<size_t>(off)) %
                                    static_cast<size_t>(num_nodes));
            if (fs_->IsNodeDead(cand) || retry.IsBlacklisted(cand) ||
                tried.count(cand) > 0) {
              continue;
            }
            node = cand;
            break;
          }
          tried.insert(node);

          ScopedSpan output_span(trace, "output.write", "mr");
          if (output_span.active()) {
            output_span.AddArg("partition", static_cast<uint64_t>(p));
            output_span.AddArg("attempt", attempt);
            output_span.AddArg("node", node);
          }
          // Write-fault salt: the reduce-output domain bit keeps these
          // draws disjoint from map-read salts (see fault_injector.h).
          const uint64_t salt =
              kReduceWriteSaltDomain |
              (static_cast<uint64_t>(p) * 131 + static_cast<uint64_t>(attempt));
          IoStats io;
          WriteContext wctx{node, &io, salt, metrics};
          Status attempt_status = [&]() -> Status {
            std::unique_ptr<FileWriter> writer;
            COLMR_RETURN_IF_ERROR(
                fs_->Create(committer->TaskAttemptDir(task_id, attempt) + "/" +
                                part_name,
                            wctx, &writer));
            for (const auto& [key, value] : reduced[p].pairs) {
              writer->Append(key.ToString() + "\t" + value.ToString() + "\n");
              if (!writer->status().ok()) break;
            }
            return writer->Close();
          }();
          if (attempt_status.ok()) {
            bool won = false;
            attempt_status =
                committer->CommitTask(task_id, attempt, salt, &won);
            if (attempt_status.ok()) {
              committed = true;
              if (won) {
                report->tasks_committed += 1;
              } else {
                // Lost the commit rename race to a duplicate attempt; this
                // attempt's scratch must go.
                committer->AbortTask(task_id, attempt);
                report->commit_aborts += 1;
              }
            }
          }
          report->write_faults += io.write_faults;
          if (!attempt_status.ok()) {
            last = attempt_status;
            committer->AbortTask(task_id, attempt);
            report->commit_aborts += 1;
            if (retry.RecordFailure(node)) {
              m_nodes_blacklisted->Increment();
              TraceInstant(trace, "node_blacklisted", "mr",
                           {{"node", TraceCollector::JsonValue(node)}});
            }
            if (attempt + 1 < write_attempts) {
              report->write_retries += 1;
              m_write_retries->Increment();
            }
          }
        }
        if (!committed) return last;
      }
      COLMR_RETURN_IF_ERROR(committer->CommitJob(kReduceWriteSaltDomain));
    }

    // Merge emitted output in partition order — identical to running the
    // reducers one after another.
    Counter* m_reduce_input = metrics->counter("mr.reduce.input_records");
    double max_reducer_seconds = 0;
    report->reduce_input_records.reserve(reduced.size());
    for (ReduceTaskResult& result : reduced) {
      max_reducer_seconds = std::max(max_reducer_seconds, result.cpu_seconds);
      report->reduce_input_records.push_back(result.input_records);
      m_reduce_input->Increment(result.input_records);
      for (auto& pair : result.pairs) {
        report->output.push_back(std::move(pair));
      }
    }
    report->reduce_output_records = report->output.size();
    report->reduce_phase_seconds = max_reducer_seconds;

    // Shuffle: reducers pull their partitions in parallel over the
    // network; the phase lasts as long as the largest per-reducer pull.
    // Sized by the bytes actually shuffled (post all map-side combining),
    // which equals map_output_bytes on the in-memory path.
    const double bytes_per_reducer =
        static_cast<double>(report->shuffle_bytes) /
        std::max(1, num_reducers);
    report->shuffle_seconds =
        bytes_per_reducer / (fs_->config().network_bandwidth_mbps * 1e6);

  } else {
    report->output = std::move(map_output);
  }

  report->total_seconds = report->map_phase_seconds +
                          report->shuffle_seconds +
                          report->reduce_phase_seconds;
  return Status::OK();
}

}  // namespace colmr
