#include "mapreduce/input_format.h"

#include <algorithm>

namespace colmr {

Status ExpandInputPaths(MiniHdfs* fs, const std::vector<std::string>& paths,
                        std::vector<std::string>* files) {
  files->clear();
  for (const std::string& path : paths) {
    if (fs->Exists(path)) {
      files->push_back(path);
      continue;
    }
    std::vector<std::string> children;
    COLMR_RETURN_IF_ERROR(fs->ListDir(path, &children));
    std::vector<std::string> child_paths;
    child_paths.reserve(children.size());
    for (const std::string& child : children) {
      child_paths.push_back(path + "/" + child);
    }
    std::vector<std::string> expanded;
    COLMR_RETURN_IF_ERROR(ExpandInputPaths(fs, child_paths, &expanded));
    files->insert(files->end(), expanded.begin(), expanded.end());
  }
  std::sort(files->begin(), files->end());
  return Status::OK();
}

Status ComputeFileSplits(MiniHdfs* fs,
                         const std::vector<std::string>& input_paths,
                         uint64_t split_size,
                         std::vector<InputSplit>* splits) {
  splits->clear();
  if (split_size == 0) split_size = fs->config().block_size;
  std::vector<std::string> files;
  COLMR_RETURN_IF_ERROR(ExpandInputPaths(fs, input_paths, &files));
  for (const std::string& file : files) {
    // Hadoop convention: files whose basename starts with '_' (e.g. the
    // dataset's _schema) are metadata, not input.
    const size_t slash = file.rfind('/');
    if (slash != std::string::npos && slash + 1 < file.size() &&
        file[slash + 1] == '_') {
      continue;
    }
    std::vector<BlockInfo> blocks;
    COLMR_RETURN_IF_ERROR(fs->GetBlockLocations(file, &blocks));
    uint64_t file_size = 0;
    for (const BlockInfo& b : blocks) file_size += b.size;
    for (uint64_t offset = 0; offset < file_size; offset += split_size) {
      InputSplit split;
      split.paths = {file};
      split.offset = offset;
      split.length = std::min(split_size, file_size - offset);
      // Locations: replicas of the block containing the split start.
      uint64_t block_start = 0;
      for (const BlockInfo& b : blocks) {
        if (offset < block_start + b.size) {
          split.locations = b.replicas;
          break;
        }
        block_start += b.size;
      }
      splits->push_back(std::move(split));
    }
  }
  return Status::OK();
}

}  // namespace colmr
