#include "mapreduce/committer.h"

#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace colmr {

OutputCommitter::OutputCommitter(MiniHdfs* fs, std::string output_path,
                                 MetricsRegistry* metrics,
                                 TraceCollector* trace)
    : fs_(fs),
      output_path_(std::move(output_path)),
      faults_(fs->fault_config()),
      trace_(trace) {
  MetricsRegistry& registry =
      metrics != nullptr ? *metrics : MetricsRegistry::Default();
  m_task_commits_ = registry.counter("mr.commit.task");
  m_job_commits_ = registry.counter("mr.commit.job");
  m_aborts_ = registry.counter("mr.commit.aborts");
}

std::string OutputCommitter::TemporaryDir() const {
  return output_path_ + "/" + kTemporaryDir;
}

std::string OutputCommitter::CommittedDir(const std::string& task_id) const {
  return TemporaryDir() + "/committed_" + task_id;
}

std::string OutputCommitter::TaskAttemptDir(const std::string& task_id,
                                            int attempt) const {
  return TemporaryDir() + "/attempt_" + task_id + "_" +
         std::to_string(attempt);
}

Status OutputCommitter::SetupJob() const {
  // The guard catches both shapes an "existing output" takes in this
  // namespace: a file at the exact path, or any file underneath it.
  if (fs_->Exists(output_path_)) {
    return Status::InvalidArgument("output path already exists (a file): " +
                                   output_path_);
  }
  std::vector<std::string> children;
  if (fs_->ListDir(output_path_, &children).ok()) {
    return Status::InvalidArgument(
        "output path already exists (a non-empty directory): " +
        output_path_);
  }
  return Status::OK();
}

Status OutputCommitter::CommitTask(const std::string& task_id, int attempt,
                                   uint64_t salt, bool* won) {
  *won = false;
  ScopedSpan span(trace_, "task_commit", "mr");
  if (span.active()) {
    span.AddArg("task", task_id);
    span.AddArg("attempt", attempt);
  }
  // Commit fault: drawn before any namespace mutation, keyed per
  // (task, attempt) so a retry redraws. The attempt dir survives for the
  // caller to retry or abort.
  if (faults_.TaskCommitFails(FaultInjector::PathKey(task_id), salt,
                              static_cast<uint64_t>(attempt))) {
    return Status::IoError("injected task-commit fault for task " + task_id +
                           " attempt " + std::to_string(attempt));
  }
  const Status rename =
      fs_->Rename(TaskAttemptDir(task_id, attempt), CommittedDir(task_id));
  if (rename.IsAlreadyExists()) {
    // Another attempt of this task committed first — the rename-or-lose
    // race. Losing is a clean outcome, not an error.
    if (span.active()) span.AddArg("won", false);
    return Status::OK();
  }
  COLMR_RETURN_IF_ERROR(rename);
  *won = true;
  if (span.active()) span.AddArg("won", true);
  m_task_commits_->Increment();
  return Status::OK();
}

Status OutputCommitter::AbortTask(const std::string& task_id, int attempt) {
  m_aborts_->Increment();
  TraceInstant(trace_, "task_abort", "mr",
               {{"task", TraceCollector::JsonValue(task_id)},
                {"attempt", TraceCollector::JsonValue(attempt)}});
  return fs_->DeleteRecursive(TaskAttemptDir(task_id, attempt));
}

Status OutputCommitter::CommitJob(uint64_t salt) {
  ScopedSpan span(trace_, "job_commit", "mr");
  if (faults_.JobCommitFails(salt, fault_draws_++)) {
    return Status::IoError("injected job-commit fault for " + output_path_);
  }
  // Promote every committed task's files into the output directory. Each
  // promotion is one atomic directory rename; a crash between promotions
  // leaves the already-promoted parts alongside _temporary, which AbortJob
  // (or a re-run's SetupJob guard) cleans up — never a _SUCCESS-marked
  // partial.
  std::vector<std::string> children;
  const Status list = fs_->ListDir(TemporaryDir(), &children);
  if (list.ok()) {
    for (const std::string& child : children) {
      if (child.rfind("committed_", 0) != 0) continue;
      COLMR_RETURN_IF_ERROR(
          fs_->Rename(TemporaryDir() + "/" + child, output_path_));
    }
  }
  COLMR_RETURN_IF_ERROR(fs_->DeleteRecursive(TemporaryDir()));
  std::unique_ptr<FileWriter> marker;
  COLMR_RETURN_IF_ERROR(
      fs_->Create(output_path_ + "/" + kSuccessMarker, &marker));
  COLMR_RETURN_IF_ERROR(marker->Close());
  m_job_commits_->Increment();
  return Status::OK();
}

Status OutputCommitter::AbortJob() {
  m_aborts_->Increment();
  TraceInstant(trace_, "job_abort", "mr",
               {{"output", TraceCollector::JsonValue(output_path_)}});
  return fs_->DeleteRecursive(output_path_);
}

}  // namespace colmr
