#ifndef COLMR_MAPREDUCE_COMMITTER_H_
#define COLMR_MAPREDUCE_COMMITTER_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "hdfs/fault_injector.h"
#include "hdfs/mini_hdfs.h"

namespace colmr {

class Counter;
class MetricsRegistry;
class TraceCollector;

/// Atomic output commit for job output, Hadoop's FileOutputCommitter
/// protocol over MiniHdfs::Rename (DESIGN.md §11). The invariant it buys:
/// a crash, fault, retry, or duplicate speculative attempt at ANY instant
/// leaves the output directory either complete (every part promoted,
/// `_SUCCESS` present) or with no visible non-`_temporary` output — never
/// a torn mix.
///
/// Layout and state machine:
///
///   <out>/_temporary/attempt_<task>_<n>/   task attempt scratch (writing)
///   <out>/_temporary/committed_<task>/     exactly one winning attempt
///   <out>/part-*, <out>/_SUCCESS           job-committed, visible
///
///   SetupJob     -> fails InvalidArgument when <out> already exists
///   task writes  -> into its private attempt dir; a failed/slow/dead
///                   write tears only that dir
///   CommitTask   -> one namenode-atomic Rename(attempt_N, committed):
///                   the FIRST attempt of a task wins; every later
///                   committer of the same task loses the race
///                   (AlreadyExists -> *won = false) and must AbortTask —
///                   this is what makes duplicate speculative attempts
///                   safe
///   AbortTask    -> deletes the attempt dir (idempotent)
///   CommitJob    -> promotes every committed_<task>'s files into <out>,
///                   drops _temporary, writes _SUCCESS
///   AbortJob     -> deletes everything under <out> (idempotent)
///
/// Thread-safety: CommitTask/AbortTask may race freely across attempts
/// and tasks — the namenode's exclusive lock serializes the renames, and
/// per-task ids keep tasks independent. SetupJob/CommitJob/AbortJob are
/// job-scoped and called from the engine's driver thread.
///
/// Fault injection: the committer snapshots the filesystem's FaultInjector
/// at construction and draws task_commit_error_p / job_commit_error_p
/// outcomes before mutating anything, so an injected commit fault always
/// leaves the pre-commit state intact.
class OutputCommitter {
 public:
  OutputCommitter(MiniHdfs* fs, std::string output_path,
                  MetricsRegistry* metrics, TraceCollector* trace);

  static constexpr const char* kTemporaryDir = "_temporary";
  static constexpr const char* kSuccessMarker = "_SUCCESS";

  /// Validates the job can own the output directory: fails with
  /// InvalidArgument when output_path already exists as a file or a
  /// non-empty directory. Runs before any task.
  Status SetupJob() const;

  /// Scratch directory of one task attempt; the attempt creates its part
  /// files under it.
  std::string TaskAttemptDir(const std::string& task_id, int attempt) const;

  /// Atomically promotes attempt `attempt` of `task_id` to the task's
  /// committed output. *won = false (with OK status) when another attempt
  /// of the same task committed first — the caller lost the speculative
  /// race and must AbortTask its attempt. A non-OK status (injected
  /// commit fault, missing attempt dir) leaves the attempt dir in place
  /// for the caller to retry or abort.
  Status CommitTask(const std::string& task_id, int attempt, uint64_t salt,
                    bool* won);

  /// Deletes one attempt's scratch dir. Idempotent; safe after a lost
  /// race, a failed write, or a failed commit.
  Status AbortTask(const std::string& task_id, int attempt);

  /// Promotes every committed task's files into the output directory,
  /// removes _temporary, and writes the _SUCCESS marker. On any failure
  /// (injected job-commit fault, _SUCCESS write fault) the caller must
  /// AbortJob — partial promotion must not stay visible.
  Status CommitJob(uint64_t salt);

  /// Removes the entire output directory (promoted parts, _temporary,
  /// everything). Idempotent.
  Status AbortJob();

 private:
  std::string TemporaryDir() const;
  std::string CommittedDir(const std::string& task_id) const;

  MiniHdfs* fs_;
  std::string output_path_;
  FaultInjector faults_;
  TraceCollector* trace_;
  uint64_t fault_draws_ = 0;
  Counter* m_task_commits_;
  Counter* m_job_commits_;
  Counter* m_aborts_;
};

}  // namespace colmr

#endif  // COLMR_MAPREDUCE_COMMITTER_H_
