#ifndef COLMR_MAPREDUCE_JOB_H_
#define COLMR_MAPREDUCE_JOB_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "compress/codec.h"
#include "hdfs/cluster.h"
#include "mapreduce/input_format.h"
#include "serde/record.h"
#include "serde/value.h"

namespace colmr {

class MetricsRegistry;
class TraceCollector;
struct Predicate;

/// Per-job configuration, the moral equivalent of Hadoop's JobConf.
struct JobConfig {
  std::vector<std::string> input_paths;
  std::string output_path;

  /// Column projection pushed into the InputFormat
  /// (ColumnInputFormat.setColumns in the paper). Empty = all columns.
  /// Row formats ignore it — they must read everything regardless, which
  /// is precisely the asymmetry the experiments measure.
  std::vector<std::string> projection;

  /// CIF record construction strategy (paper Section 5.1): false =
  /// EagerRecord, true = LazyRecord.
  bool lazy_records = false;

  // ---- Predicate pushdown (DESIGN.md §13) ----
  /// Row filter applied before the mapper sees a record: only rows where
  /// the predicate is TRUE (three-valued logic; NULL filters out) are
  /// mapped. Null = no filter. Output is byte-identical whether the
  /// filter runs in the format (pushdown) or in the engine's map loop.
  std::shared_ptr<const Predicate> predicate;
  /// When true (default) and the format supports it, the predicate also
  /// prunes at plan and scan time: CIF drops splits and rowgroups whose
  /// zone maps refute it and evaluates survivors with vectorized
  /// selection kernels. False confines filtering to the engine's map
  /// loop — the comparison arm the benchmarks measure.
  bool predicate_pushdown = true;

  /// CIF schema-evolution tolerance: when true, a projected column that a
  /// split-directory predates (e.g. day partitions ingested before an
  /// AddColumn) materializes as Null instead of failing the job.
  bool null_for_missing_columns = false;

  /// Number of reduce tasks; 0 = one per reduce slot.
  int num_reduce_tasks = 0;

  /// Split size hint for row formats; 0 = HDFS block size.
  uint64_t split_size = 0;

  /// Rows the engine asks a record reader to make resident per
  /// FillBatch() call (DESIGN.md §10). 1 disables batching and drives the
  /// reader through the exact pre-batch Next()/record() path; values > 1
  /// let CIF decode columns in bulk (row formats degrade to one-row
  /// batches). Output is byte-identical across settings.
  uint64_t batch_rows = 1024;

  /// Worker threads for task execution. 0 (default) sizes the pool to
  /// min(hardware_concurrency, cluster map slots); 1 runs every task
  /// inline on the calling thread — bit-for-bit the old serial engine,
  /// kept for paper-figure reproducibility; N > 1 forces N threads.
  /// Output and every non-timing report field are identical across all
  /// settings: scheduling is decided in split order before dispatch and
  /// results are merged back in split/partition order.
  int parallelism = 0;

  /// Maximum executions of one map task before the job fails
  /// (mapreduce.map.maxattempts; Hadoop's default is likewise 4). Each
  /// retry runs on a different node when one is available.
  int max_task_attempts = 4;

  /// Failed attempts on a node before the job stops scheduling to it
  /// (the per-job tracker blacklist,
  /// mapreduce.job.maxtaskfailures.per.tracker).
  int node_blacklist_failures = 3;

  // ---- Straggler defense (DESIGN.md §11) ----
  /// Per-attempt wall-clock deadline in milliseconds (mapreduce.task
  /// .timeout, roughly). An attempt exceeding it fails with IoError and
  /// falls back into the retry/blacklist machinery on a fresh node.
  /// 0 (default) disables.
  int task_timeout_ms = 0;
  /// Hadoop-style speculative execution: once a running task's elapsed
  /// time lags well behind the completed-task median, launch one backup
  /// attempt of it on a different node; the first attempt to finish wins
  /// (for output writes, via the OutputCommitter's atomic rename-or-lose
  /// race) and the loser is discarded/aborted cleanly. Output is
  /// byte-identical with speculation on or off. Effective only with
  /// parallelism != 1 — the serial engine has no one to race.
  bool speculative_execution = false;

  // ---- Block cache and readahead (DESIGN.md §9) ----
  /// Capacity of the shared cache of verified block bytes the job's
  /// readers go through. 0 (default) = no cache: every read pays the
  /// full replica-selection + checksum path, as before this knob
  /// existed. The cache attaches to the filesystem and persists across
  /// jobs, so a second job over the same data starts warm.
  uint64_t cache_bytes = 0;
  /// Readahead window for sequential scans: once a stream looks
  /// sequential, buffered fills widen to this many bytes (0 = fills stay
  /// at io.file.buffer.size). Works with or without the cache.
  uint64_t readahead_bytes = 0;
  /// Upcoming HDFS blocks to warm into the cache asynchronously, per
  /// sequential stream. 0 = no prefetch. Requires cache_bytes > 0; warm
  /// tasks run on a small dedicated pool the engine owns for the run.
  int prefetch_depth = 0;

  // ---- External sort-merge shuffle (DESIGN.md §12) ----
  /// Map-side sort buffer in bytes of tagged key/value encoding — the
  /// io.sort.mb analog. 0 (default) keeps the in-memory shuffle: every
  /// map task's output is buffered whole and partitions materialize in
  /// memory. Any positive value switches to the external path: the task
  /// sorts and spills a run whenever the buffer fills, and each reduce
  /// partition streams through a heap merge over the runs. Output is
  /// byte-identical between the two paths.
  uint64_t sort_buffer_bytes = 0;
  /// Maximum runs merged in one pass (io.sort.factor analog). A task
  /// with more runs than this merges groups of merge_factor into
  /// intermediate runs until at most merge_factor remain. Minimum 2.
  int merge_factor = 10;
  /// Codec spill-run blocks are stored with (Hadoop's
  /// mapreduce.map.output.compress). Applies to spill files only; it
  /// never changes job output.
  CodecType spill_codec = CodecType::kNone;

  // ---- Observability hooks (DESIGN.md §8) ----
  /// Registry the job's hdfs/cif/mr counters go to. Null = the
  /// process-wide MetricsRegistry::Default(); pass a private registry to
  /// isolate one job's counts.
  MetricsRegistry* metrics = nullptr;
  /// Collector the job's spans go to. Null = no caller collector; spans
  /// are then emitted only if trace_path is set (the engine owns a
  /// collector for the duration of Run and writes it out at the end).
  TraceCollector* trace = nullptr;
  /// When non-empty, Run() writes the job's trace here as Chrome
  /// trace_event JSON (loadable at https://ui.perfetto.dev). Works with
  /// either an external or an engine-owned collector.
  std::string trace_path;
};

/// Receives the key/value pairs produced by map and reduce functions.
class Emitter {
 public:
  virtual ~Emitter() = default;
  virtual void Emit(Value key, Value value) = 0;
};

/// User map function: called once per input record.
using MapFn = std::function<void(Record& record, Emitter* out)>;

/// User reduce function: called once per distinct key with all its values.
using ReduceFn = std::function<void(const Value& key,
                                    const std::vector<Value>& values,
                                    Emitter* out)>;

/// A configured MapReduce job. reducer may be null (map-only job);
/// combiner may be null (no map-side aggregation).
struct Job {
  JobConfig config;
  std::shared_ptr<InputFormat> input_format;
  MapFn mapper;
  ReduceFn reducer;
  /// Map-side pre-aggregation, run over each map task's output before the
  /// shuffle (Hadoop's Combiner). Must be algebraically compatible with
  /// the reducer (same key/value types in and out).
  ReduceFn combiner;
};

/// Execution record of a single map task.
struct TaskReport {
  int split_index = 0;
  NodeId node = kAnyNode;
  bool data_local = false;   // all split files local to the node
  uint64_t input_records = 0;
  uint64_t output_records = 0;
  double cpu_seconds = 0;
  IoStats io;
  double sim_seconds = 0;    // per the cost model
  /// Executions this task took (1 = no retries). node/data_local describe
  /// the final attempt; io folds in the traffic of failed attempts too.
  int attempts = 1;
};

/// What Run() returns: everything Table 1 reports, plus detail.
struct JobReport {
  std::vector<TaskReport> map_tasks;

  uint64_t bytes_read_local = 0;
  uint64_t bytes_read_remote = 0;
  uint64_t BytesRead() const { return bytes_read_local + bytes_read_remote; }

  uint64_t map_input_records = 0;
  uint64_t map_output_records = 0;
  uint64_t map_output_bytes = 0;
  uint64_t reduce_output_records = 0;

  double map_cpu_seconds = 0;       // summed over tasks (per-thread CPU clock)
  /// Simulated cluster map-phase makespan (LPT packing onto slots).
  double map_phase_seconds = 0;
  /// The paper's "map time" metric (Section 6.3): total simulated task
  /// time divided by the cluster's map slots — per-slot average load.
  double map_slot_seconds = 0;
  double shuffle_seconds = 0;       // simulated
  double reduce_phase_seconds = 0;  // simulated
  double total_seconds = 0;         // simulated end-to-end

  /// Measured wall-clock duration of Run() itself — the quantity the
  /// parallel engine actually shrinks (total_seconds is simulated cluster
  /// time and is invariant to the local thread count).
  double wall_seconds = 0;
  /// Worker threads the engine executed with (1 = serial path).
  int worker_threads = 1;
  /// Peak number of concurrently *executing* map tasks per node, recorded
  /// by the slot gate; never exceeds config.map_slots_per_node.
  std::vector<int> peak_node_slots;

  int data_local_tasks = 0;
  int remote_tasks = 0;

  // ---- Failure and recovery (filled even when the job fails) ----
  /// Map task re-executions: sum over tasks of (attempts - 1).
  uint64_t task_retries = 0;
  /// Replica reads rejected by the block checksum, summed over attempts.
  uint64_t checksum_failures = 0;
  /// Replica read attempts that failed over to another replica.
  uint64_t failover_reads = 0;
  /// Nodes the job blacklisted (>= config.node_blacklist_failures failed
  /// attempts), ascending.
  std::vector<NodeId> blacklisted_nodes;

  /// Collected reduce output (key, value) pairs, when the job has a
  /// reducer; also written to config.output_path as text part files.
  std::vector<std::pair<Value, Value>> output;

  // ---- Reduce-side accounting (appended; existing fields above keep
  // ---- their layout and meaning) ----
  /// Bytes actually crossing the shuffle: the tagged-encoding size of
  /// every (key, value) pair entering the reduce merge, *after* all
  /// map-side combining. Equal to map_output_bytes when the shuffle is
  /// in-memory (combining happened before both are measured); on the
  /// external path merge-time combining can shrink it further, so
  /// shuffle_bytes <= map_output_bytes always holds.
  uint64_t shuffle_bytes = 0;
  /// Records entering each reduce partition, indexed by partition.
  std::vector<uint64_t> reduce_input_records;

  // ---- Crash-safe commit + straggler defense (appended) ----
  /// Speculative backup attempts launched / that finished first / that
  /// lost the race to the original attempt.
  uint64_t speculative_launched = 0;
  uint64_t speculative_won = 0;
  uint64_t speculative_lost = 0;
  /// Output tasks whose attempt won the commit rename.
  uint64_t tasks_committed = 0;
  /// Task/job abort actions taken by the committer (lost races, failed
  /// writes, failed jobs).
  uint64_t commit_aborts = 0;
  /// Block seals that failed under injected write faults, summed over
  /// output-write attempts.
  uint64_t write_faults = 0;
  /// Output-write attempt re-executions (write fault or commit fault,
  /// then retried on another node).
  uint64_t write_retries = 0;

  // ---- External sort-merge shuffle (appended; zero when
  // ---- sort_buffer_bytes == 0) ----
  /// Sorted runs spilled by map tasks (winning attempts only).
  uint64_t spill_count = 0;
  /// File bytes across those runs (framing and compression included).
  uint64_t spill_bytes = 0;
  /// Intermediate merge passes taken to respect merge_factor.
  uint64_t merge_passes = 0;
  /// Run segments consumed by merges: intermediate passes plus the final
  /// reduce-side merge.
  uint64_t merge_segments = 0;
  /// Largest tagged-byte occupancy any task's sort buffer reached — the
  /// bounded-memory evidence (at most sort_buffer_bytes + one record).
  uint64_t peak_spill_buffer_bytes = 0;
};

}  // namespace colmr

#endif  // COLMR_MAPREDUCE_JOB_H_
