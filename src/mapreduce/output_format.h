#ifndef COLMR_MAPREDUCE_OUTPUT_FORMAT_H_
#define COLMR_MAPREDUCE_OUTPUT_FORMAT_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "serde/schema.h"
#include "serde/value.h"

namespace colmr {

/// Sink half of the storage-format abstraction (Hadoop's OutputFormat /
/// RecordWriter). Each storage format provides one implementation; the
/// loader utilities copy datasets between formats by pairing any
/// RecordReader with any DatasetWriter.
class DatasetWriter {
 public:
  virtual ~DatasetWriter() = default;

  /// Appends one record (a Value of record kind conforming to the
  /// writer's schema).
  virtual Status WriteRecord(const Value& record) = 0;

  /// Flushes and seals the dataset. Must be called; no writes after.
  virtual Status Close() = 0;

  /// Records written so far.
  virtual uint64_t record_count() const = 0;
};

}  // namespace colmr

#endif  // COLMR_MAPREDUCE_OUTPUT_FORMAT_H_
