#ifndef COLMR_MAPREDUCE_INPUT_FORMAT_H_
#define COLMR_MAPREDUCE_INPUT_FORMAT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "hdfs/mini_hdfs.h"
#include "serde/record.h"

namespace colmr {

struct JobConfig;

/// A unit of map-task scheduling: a non-overlapping partition of the input
/// (paper Section 2). Row formats produce one split per byte range of a
/// file; CIF produces one split per split-directory (a set of column
/// files).
struct InputSplit {
  /// Files the split reads. Row formats: exactly one. CIF: one per
  /// projected column plus the schema file.
  std::vector<std::string> paths;
  /// Byte range within paths[0] for row formats ([0, file size) for CIF).
  uint64_t offset = 0;
  uint64_t length = 0;
  /// Nodes on which every path of the split is fully local. Used by the
  /// scheduler for locality-aware assignment; may be empty (Fig. 3a).
  std::vector<NodeId> locations;
};

/// Iterates the records of one split. The Next()/record() protocol mirrors
/// Hadoop's RecordReader: the Record reference stays valid until the next
/// call to Next().
class RecordReader {
 public:
  virtual ~RecordReader() = default;

  /// Advances to the next record. Returns false at end of split or on
  /// error; check status() to distinguish.
  virtual bool Next() = 0;

  /// The current record. Only valid after Next() returned true.
  virtual Record& record() = 0;

  /// OK unless iteration stopped due to an error.
  virtual Status status() const = 0;

  // ---- Batch protocol (DESIGN.md §10) ----
  // The engine drives readers batch-at-a-time when JobConfig::batch_rows
  // > 1: FillBatch makes up to max_rows records resident, RecordAt
  // addresses them. The base implementation adapts any scalar reader as a
  // one-row batch, so row formats participate without changes; CIF
  // overrides both to decode columns in bulk.

  /// Makes up to max_rows records resident and returns how many (0 = end
  /// of split or error; check status()). Invalidates the previous batch,
  /// including every Record obtained through RecordAt — the batched form
  /// of Hadoop's record-reuse contract.
  virtual uint64_t FillBatch(uint64_t max_rows) {
    (void)max_rows;
    return Next() ? 1 : 0;
  }

  /// The i'th resident record, i < the last FillBatch return value.
  virtual Record& RecordAt(uint64_t i) {
    (void)i;
    return record();
  }

  /// Selection over the current batch (DESIGN.md §13): when non-null, the
  /// reader has already evaluated the job predicate and the engine must
  /// map exactly the rows whose indices appear here (ascending, each <
  /// the last FillBatch return value), skipping the rest. Null (the
  /// default) means the reader made no selection and the engine filters
  /// rows itself. Valid until the next FillBatch call.
  virtual const std::vector<uint32_t>* selection() const { return nullptr; }
};

/// The central Hadoop extensibility point the paper builds on (Section 2):
/// generates splits for the scheduler and turns a split into typed records
/// for the map function.
class InputFormat {
 public:
  virtual ~InputFormat() = default;

  virtual std::string name() const = 0;

  /// Enumerates the splits of the job's input paths. The read context
  /// carries the metrics/trace sinks of the job doing the planning, so
  /// footer and schema reads account to the job rather than the process.
  virtual Status GetSplits(MiniHdfs* fs, const JobConfig& config,
                           const ReadContext& context,
                           std::vector<InputSplit>* splits) = 0;

  /// Convenience overload for context-free callers (tests, tools).
  /// Derived classes re-expose it with `using InputFormat::GetSplits`.
  Status GetSplits(MiniHdfs* fs, const JobConfig& config,
                   std::vector<InputSplit>* splits) {
    return GetSplits(fs, config, ReadContext{}, splits);
  }

  /// Opens a reader over one split in the given read context (the node the
  /// map task was scheduled on, plus its IoStats sink).
  virtual Status CreateRecordReader(
      MiniHdfs* fs, const JobConfig& config, const InputSplit& split,
      const ReadContext& context,
      std::unique_ptr<RecordReader>* reader) = 0;
};

/// Splits each input file into block-sized byte ranges whose locations are
/// the block's replica nodes — the generic splitter row formats share.
/// Ranges are later snapped to record boundaries by the format's reader
/// (sync markers, newline scan).
Status ComputeFileSplits(MiniHdfs* fs,
                         const std::vector<std::string>& input_paths,
                         uint64_t split_size,
                         std::vector<InputSplit>* splits);

/// Expands a path to the files beneath it: a file path yields itself; a
/// directory yields all (recursive) files under it, sorted.
Status ExpandInputPaths(MiniHdfs* fs, const std::vector<std::string>& paths,
                        std::vector<std::string>* files);

}  // namespace colmr

#endif  // COLMR_MAPREDUCE_INPUT_FORMAT_H_
