#ifndef COLMR_MAPREDUCE_ENGINE_H_
#define COLMR_MAPREDUCE_ENGINE_H_

#include <memory>

#include "common/status.h"
#include "hdfs/cost_model.h"
#include "hdfs/mini_hdfs.h"
#include "mapreduce/job.h"

namespace colmr {

/// Runs MapReduce jobs against a MiniHdfs. Tasks execute for real (the
/// map/reduce functions run and their CPU time is measured); cluster
/// effects — locality-aware slot scheduling, local vs remote reads, the
/// shuffle — are simulated through the cost model, producing the "map
/// time" and "total time" columns of the paper's Table 1.
class JobRunner {
 public:
  explicit JobRunner(MiniHdfs* fs) : fs_(fs), cost_model_(fs->config()) {}

  /// Executes the job; fills *report. Fails fast on the first task error.
  Status Run(const Job& job, JobReport* report);

 private:
  /// Picks the execution node for a split: the least-loaded node holding
  /// all of the split's files, unless it is overloaded relative to a
  /// balanced assignment, in which case the scheduler falls back to the
  /// globally least-loaded node and the task reads remotely — Hadoop's
  /// "Node 1 is busy" situation from the paper's Fig. 3 discussion.
  NodeId ScheduleSplit(const InputSplit& split, std::vector<int>* node_load,
                       int total_splits, bool* data_local) const;

  MiniHdfs* fs_;
  CostModel cost_model_;
};

}  // namespace colmr

#endif  // COLMR_MAPREDUCE_ENGINE_H_
