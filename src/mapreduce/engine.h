#ifndef COLMR_MAPREDUCE_ENGINE_H_
#define COLMR_MAPREDUCE_ENGINE_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "hdfs/cost_model.h"
#include "hdfs/mini_hdfs.h"
#include "mapreduce/committer.h"
#include "mapreduce/job.h"

namespace colmr {

/// Runs MapReduce jobs against a MiniHdfs. Tasks execute for real (the
/// map/reduce functions run and their per-thread CPU time is measured)
/// and, by default, concurrently: map tasks are dispatched onto a work
/// queue drained by min(hardware_concurrency, cluster map slots) threads,
/// gated so that no node ever runs more than map_slots_per_node tasks at
/// once, and reducers run one-per-partition on the same pool. Cluster
/// effects — locality-aware slot scheduling, local vs remote reads, the
/// shuffle — are still simulated through the cost model, producing the
/// "map time" and "total time" columns of the paper's Table 1.
///
/// Determinism: task→node assignment is computed serially in split order
/// before any task runs, and task/partition results are merged back in
/// that same order, so job output and all non-timing report fields are
/// byte-identical whatever JobConfig::parallelism is (1 = the original
/// serial engine, preserved for paper-figure runs). Under fault injection
/// the retry path may attribute I/O to different nodes across thread
/// counts, but the job *output* stays byte-identical: every map attempt
/// that completes read checksum-verified bytes.
///
/// Failure handling: a map attempt that fails with a retryable error is
/// re-executed, preferring a node not yet tried (replica holders first),
/// up to JobConfig::max_task_attempts. Nodes accumulating
/// node_blacklist_failures failed attempts are blacklisted for the rest
/// of the job. DataLoss is terminal — no node can serve the bytes.
/// Reducers run on in-memory map output (the shuffle is simulated);
/// reduce OUTPUT is written per partition through the OutputCommitter
/// (DESIGN.md §11): each write attempt lands in a private
/// _temporary/attempt dir, commits via a namenode-atomic rename, and the
/// job commit promotes every part and writes _SUCCESS — so a fault,
/// crash, or duplicate attempt at any instant leaves either complete
/// output or no visible output. Output-write attempts retry across nodes
/// under injected write faults, feeding the same blacklist.
///
/// Straggler defense: JobConfig::task_timeout_ms fails attempts that
/// exceed a wall-clock deadline back into the retry machinery, and
/// JobConfig::speculative_execution launches one backup attempt of any
/// map task lagging well behind the completed-task median — first result
/// recorded wins, the loser is discarded (Hadoop semantics). Output stays
/// byte-identical across every fault × speculation × parallelism
/// combination.
class JobRunner {
 public:
  explicit JobRunner(MiniHdfs* fs) : fs_(fs), cost_model_(fs->config()) {}

  /// Executes the job; fills *report. Fails on the first exhausted task in
  /// split order (the serial path stops there; the parallel path finishes
  /// in-flight tasks, then reports the lowest-index failure). The failure
  /// and recovery counters (task_retries, checksum_failures,
  /// failover_reads, blacklisted_nodes) are filled even when Run fails.
  ///
  /// Observability (DESIGN.md §8): counters go to JobConfig::metrics (or
  /// the default registry); when JobConfig::trace or trace_path is set
  /// the run emits nested job → phase → task → hdfs.read spans, written
  /// to trace_path as Chrome trace_event JSON on return.
  Status Run(const Job& job, JobReport* report);

 private:
  struct MapTaskResult;

  /// Run() minus trace lifecycle: Run wraps this in the root "job" span
  /// and flushes the collector to JobConfig::trace_path afterwards.
  /// RunImpl validates the job, runs the committer's SetupJob guard, and
  /// on any phase failure aborts the job output so nothing torn stays
  /// visible.
  Status RunImpl(const Job& job, JobReport* report, MetricsRegistry* metrics,
                 TraceCollector* trace);

  /// The phases themselves (plan, map, shuffle, reduce, output commit);
  /// factored out so RunImpl can wrap every early return in the
  /// abort-on-failure protocol. `committer` is null when the job has no
  /// output path.
  Status ExecutePhases(const Job& job, JobReport* report,
                       MetricsRegistry* metrics, TraceCollector* trace,
                       OutputCommitter* committer);

  /// Picks the execution node for a split: the least-loaded node holding
  /// all of the split's files, unless it is overloaded relative to a
  /// balanced assignment, in which case the scheduler falls back to the
  /// globally least-loaded node and the task reads remotely — Hadoop's
  /// "Node 1 is busy" situation from the paper's Fig. 3 discussion.
  NodeId ScheduleSplit(const InputSplit& split, std::vector<int>* node_load,
                       int total_splits, bool* data_local) const;

  MiniHdfs* fs_;
  CostModel cost_model_;
};

}  // namespace colmr

#endif  // COLMR_MAPREDUCE_ENGINE_H_
