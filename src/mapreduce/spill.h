#ifndef COLMR_MAPREDUCE_SPILL_H_
#define COLMR_MAPREDUCE_SPILL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/buffer.h"
#include "common/status.h"
#include "compress/codec.h"
#include "hdfs/mini_hdfs.h"
#include "mapreduce/job.h"
#include "serde/value.h"

namespace colmr {

class MetricsRegistry;
class Counter;
class TraceCollector;

// External sort-merge shuffle (DESIGN.md §12) — the bounded-memory spill
// path Hadoop calls the map-side sort (io.sort.mb / io.sort.factor). A map
// task accumulates output pairs up to JobConfig::sort_buffer_bytes, sorts
// the buffer by (partition, key), optionally folds it through the
// combiner, and writes one *run* file; the reduce side streams each
// partition through a heap-based k-way merge over every run instead of
// materializing the partition in memory.
//
// Run file byte layout (all integers varint/fixed little-endian per
// common/coding.h):
//
//   run      := segment*          one per partition, ascending partition
//                                 order; an empty partition occupies zero
//                                 bytes (its SpillSegment records that)
//   segment  := block*
//   block    := varint raw_len    bytes of `raw` before compression
//               varint stored_len bytes of `stored` as written
//               fixed32 crc       CRC-32 of `stored`
//               stored            codec(raw) when codec != kNone, else raw
//   raw      := record*
//   record   := varint key_len  | tagged key   (serde EncodeTaggedValue)
//               varint value_len | tagged value
//
// Blocks never span segments, so a reader of one partition touches only
// that partition's byte range. Segment offsets/lengths live in the
// in-memory SpillRun — runs are job-transient scratch, re-created from
// scratch by any re-run, so nothing needs to be recoverable from the file
// alone. Within a run each segment is key-sorted (ties keep buffer order);
// the merge layer restores the global stable order via sequence-numbered
// cursors (see SpillMerger).

/// Seed of the stable shuffle partitioner. Fixed; changing it reassigns
/// every key to a new partition and is an output-format break (the
/// pinned-vector test in shuffle_spill_test.cc will say so).
inline constexpr uint64_t kShufflePartitionSeed = 0x636f6c6d72736866ull;

/// The stable HashPartitioner contract: partition of a key is
/// HashTaggedValue(key, kShufflePartitionSeed) % num_partitions —
/// identical on every platform/stdlib, allocation-free. Declared here,
/// implemented in spill.cc next to the run format it feeds.
uint32_t ShufflePartition(const Value& key, uint32_t num_partitions);

/// One partition's byte range inside a run file.
struct SpillSegment {
  uint64_t offset = 0;    // first byte of the segment in the file
  uint64_t bytes = 0;     // stored length (framing + stored blocks)
  uint64_t records = 0;   // KV records in the segment
  /// Tagged-encoding bytes of the segment's keys+values (excluding the
  /// record length prefixes and block framing): the unit map_output_bytes
  /// and shuffle_bytes are accounted in, so in-memory and external runs
  /// report comparable byte counts.
  uint64_t kv_bytes = 0;
};

/// One sorted, partitioned run on scratch storage.
struct SpillRun {
  std::string path;
  CodecType codec = CodecType::kNone;
  std::vector<SpillSegment> segments;  // indexed by partition

  uint64_t TotalBytes() const {
    uint64_t total = 0;
    for (const SpillSegment& s : segments) total += s.bytes;
    return total;
  }
  uint64_t TotalKvBytes() const {
    uint64_t total = 0;
    for (const SpillSegment& s : segments) total += s.kv_bytes;
    return total;
  }
};

/// Writes one run file. Append() must be called with non-decreasing
/// partition ids and key-sorted records within each partition — the
/// caller (MapOutputBuffer, MergeSpillRuns) owns the sort. Write faults
/// surface through the underlying FileWriter exactly as reduce-output
/// writes do: the writer goes sticky-bad and Close returns the first
/// error, so a faulted spill fails the whole map attempt and the retry
/// machinery re-executes it on a fresh node.
class SpillRunWriter {
 public:
  static Status Open(MiniHdfs* fs, const std::string& path,
                     const WriteContext& context, CodecType codec,
                     int num_partitions,
                     std::unique_ptr<SpillRunWriter>* writer);

  Status Append(int partition, const Value& key, const Value& value);

  /// Flushes the tail block, seals the file, and fills *out.
  Status Close(SpillRun* out);

 private:
  SpillRunWriter(std::string path, std::unique_ptr<FileWriter> file,
                 CodecType codec, int num_partitions);

  Status FlushBlock();

  std::string path_;
  std::unique_ptr<FileWriter> file_;
  const Codec* codec_;
  CodecType codec_type_;
  std::vector<SpillSegment> segments_;
  int current_partition_ = 0;
  uint64_t offset_ = 0;  // file offset of the next byte to be written
  Buffer block_;         // raw bytes of the open block
  Buffer scratch_;       // per-record tagged-encoding scratch
  Buffer stored_;        // compression scratch
};

/// Streams the records of one partition's segment out of a run file,
/// block by block — memory held is one block's raw + stored bytes,
/// never the segment. CRC mismatches and truncation surface as
/// Corruption through status().
class SpillSegmentCursor {
 public:
  static Status Open(MiniHdfs* fs, const SpillRun& run, int partition,
                     const ReadContext& context,
                     std::unique_ptr<SpillSegmentCursor>* cursor);

  /// Advances to the next record; false at segment end or on error
  /// (check status()). key()/value() are valid until the next call.
  bool Next();

  const Value& key() const { return key_; }
  const Value& value() const { return value_; }
  Value* mutable_value() { return &value_; }
  const Status& status() const { return status_; }

 private:
  SpillSegmentCursor(std::unique_ptr<FileReader> reader, const SpillRun& run,
                     const SpillSegment& segment);

  bool FillBlock();  // loads the next block into cursor_

  std::unique_ptr<FileReader> reader_;
  const Codec* codec_;
  uint64_t pos_;  // next unread file offset
  uint64_t end_;  // one past the segment's last byte
  std::string stored_;
  Buffer raw_;
  Slice cursor_;  // unread bytes of the current block
  Value key_;
  Value value_;
  Status status_;
};

/// Heap-based k-way merge over segment cursors. Pop order is
/// (key ascending, sequence ascending, in-cursor position) — with
/// sequence numbers assigned in (map task, spill index) order this is
/// exactly the order a stable sort of the concatenated map output gives,
/// which is what makes external output byte-identical to the in-memory
/// path (DESIGN.md §12 determinism argument).
class SpillMerger {
 public:
  /// Takes ownership. Cursors must not have been advanced yet.
  void Add(std::unique_ptr<SpillSegmentCursor> cursor, uint64_t sequence);

  /// Advances to the next (key, value); false when drained or on error.
  bool Next();

  const Value& key() const { return current_->key(); }
  const Value& value() const { return current_->value(); }
  const Status& status() const { return status_; }

 private:
  struct HeapEntry {
    SpillSegmentCursor* cursor;
    uint64_t sequence;
  };
  /// Min-heap ordering (std::push_heap builds a max-heap, so this is the
  /// inverted comparison).
  static bool HeapAfter(const HeapEntry& a, const HeapEntry& b);

  void Push(SpillSegmentCursor* cursor, uint64_t sequence);

  std::vector<std::unique_ptr<SpillSegmentCursor>> owned_;
  std::vector<std::pair<SpillSegmentCursor*, uint64_t>> pending_;
  std::vector<HeapEntry> heap_;
  SpillSegmentCursor* current_ = nullptr;
  uint64_t current_sequence_ = 0;
  bool primed_ = false;
  Status status_;
};

/// Merges a group of runs (ascending sequence order) into one run at
/// `path`, partition by partition, optionally folding equal-key groups
/// through the combiner (which must preserve the key — the Hadoop
/// combiner contract; its output stays in the group's partition). Sets
/// *segments_merged to the number of non-empty input segments consumed.
Status MergeSpillRuns(MiniHdfs* fs, const std::vector<const SpillRun*>& runs,
                      const std::string& path, const WriteContext& write_ctx,
                      const ReadContext& read_ctx, CodecType codec,
                      int num_partitions, const ReduceFn* combiner,
                      SpillRun* out, uint64_t* segments_merged);

/// The map-side accumulator: an Emitter that buffers (partition, key,
/// value) triples up to `sort_buffer_bytes` of tagged-encoding payload,
/// then sorts, combines, and spills a run. Spill I/O errors latch into
/// status() and make further Emits no-ops, so the map loop can poll and
/// abort the attempt — mirroring FileWriter's sticky-failure contract.
class MapOutputBuffer final : public Emitter {
 public:
  struct Options {
    MiniHdfs* fs = nullptr;
    /// Directory the run files land in (the task attempt's private
    /// scratch: runs are torn down with it on abort/commit).
    std::string scratch_dir;
    WriteContext write_context;
    int num_partitions = 1;
    uint64_t sort_buffer_bytes = 0;
    const ReduceFn* combiner = nullptr;  // may be null
    CodecType codec = CodecType::kNone;
    MetricsRegistry* metrics = nullptr;  // resolved; never null
    TraceCollector* trace = nullptr;     // may be null
  };

  explicit MapOutputBuffer(Options options);

  void Emit(Value key, Value value) override;

  /// Spills whatever the buffer still holds (so every task that emitted
  /// anything owns at least one run). Returns the sticky error, if any.
  Status Finish();

  const Status& status() const { return status_; }
  std::vector<SpillRun> TakeRuns() { return std::move(runs_); }

  uint64_t spills() const { return spills_; }
  /// File bytes written across runs (framing + compression included).
  uint64_t spilled_bytes() const { return spilled_bytes_; }
  /// Post-combine records / tagged KV bytes across runs — the external
  /// path's map-output accounting.
  uint64_t records_spilled() const { return records_spilled_; }
  uint64_t kv_bytes_spilled() const { return kv_bytes_spilled_; }
  /// High-water mark of buffered tagged bytes: the bounded-memory claim.
  /// At most sort_buffer_bytes plus one record.
  uint64_t peak_buffer_bytes() const { return peak_buffer_bytes_; }

 private:
  struct BufferedPair {
    uint32_t partition;
    Value key;
    Value value;
  };

  Status SortAndSpill();

  Options options_;
  std::vector<BufferedPair> entries_;
  uint64_t buffer_bytes_ = 0;
  uint64_t peak_buffer_bytes_ = 0;
  std::vector<SpillRun> runs_;
  uint64_t spills_ = 0;
  uint64_t spilled_bytes_ = 0;
  uint64_t records_spilled_ = 0;
  uint64_t kv_bytes_spilled_ = 0;
  Status status_;
  Counter* m_spill_count_;
  Counter* m_spill_bytes_;
};

}  // namespace colmr

#endif  // COLMR_MAPREDUCE_SPILL_H_
