#include "mapreduce/spill.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/coding.h"
#include "common/crc32.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serde/encoding.h"

namespace colmr {

namespace {

/// Raw bytes a block accumulates before it is framed and flushed. Small
/// enough that a segment reader holds two blocks' worth of memory at
/// most; large enough that varint+crc framing is amortized away. A
/// single record larger than this becomes its own oversized block —
/// blocks frame records, they never split one.
constexpr size_t kSpillBlockBytes = 64 * 1024;

/// Collects combiner output. The combiner contract here matches the
/// in-memory path: outputs are re-emitted as ordinary pairs.
class VectorEmitter final : public Emitter {
 public:
  explicit VectorEmitter(std::vector<std::pair<Value, Value>>* out)
      : out_(out) {}
  void Emit(Value key, Value value) override {
    out_->emplace_back(std::move(key), std::move(value));
  }

 private:
  std::vector<std::pair<Value, Value>>* out_;
};

}  // namespace

uint32_t ShufflePartition(const Value& key, uint32_t num_partitions) {
  assert(num_partitions > 0);
  return static_cast<uint32_t>(HashTaggedValue(key, kShufflePartitionSeed) %
                               num_partitions);
}

// ---- SpillRunWriter ----

SpillRunWriter::SpillRunWriter(std::string path,
                               std::unique_ptr<FileWriter> file,
                               CodecType codec, int num_partitions)
    : path_(std::move(path)),
      file_(std::move(file)),
      codec_(GetCodec(codec)),
      codec_type_(codec),
      segments_(static_cast<size_t>(num_partitions)) {}

Status SpillRunWriter::Open(MiniHdfs* fs, const std::string& path,
                            const WriteContext& context, CodecType codec,
                            int num_partitions,
                            std::unique_ptr<SpillRunWriter>* writer) {
  if (GetCodec(codec) == nullptr) {
    return Status::InvalidArgument("spill: unknown codec");
  }
  if (num_partitions <= 0) {
    return Status::InvalidArgument("spill: num_partitions must be positive");
  }
  std::unique_ptr<FileWriter> file;
  COLMR_RETURN_IF_ERROR(fs->Create(path, context, &file));
  writer->reset(
      new SpillRunWriter(path, std::move(file), codec, num_partitions));
  return Status::OK();
}

Status SpillRunWriter::Append(int partition, const Value& key,
                              const Value& value) {
  if (partition < current_partition_ ||
      partition >= static_cast<int>(segments_.size())) {
    return Status::InvalidArgument("spill: partition out of order");
  }
  if (partition != current_partition_) {
    // Blocks never span segments: seal the open block so the previous
    // partition's byte range ends here.
    COLMR_RETURN_IF_ERROR(FlushBlock());
    current_partition_ = partition;
  }
  SpillSegment& seg = segments_[static_cast<size_t>(partition)];
  if (seg.records == 0 && block_.empty()) seg.offset = offset_;

  scratch_.Clear();
  EncodeTaggedValue(key, &scratch_);
  const size_t key_len = scratch_.size();
  EncodeTaggedValue(value, &scratch_);
  const size_t value_len = scratch_.size() - key_len;

  PutVarint64(&block_, key_len);
  block_.Append(scratch_.AsSlice().Prefix(key_len));
  PutVarint64(&block_, value_len);
  block_.Append(Slice(scratch_.data() + key_len, value_len));
  seg.records += 1;
  seg.kv_bytes += scratch_.size();

  if (block_.size() >= kSpillBlockBytes) {
    COLMR_RETURN_IF_ERROR(FlushBlock());
  }
  return Status::OK();
}

Status SpillRunWriter::FlushBlock() {
  if (block_.empty()) return Status::OK();
  Slice stored = block_.AsSlice();
  if (codec_type_ != CodecType::kNone) {
    stored_.Clear();
    COLMR_RETURN_IF_ERROR(codec_->Compress(block_.AsSlice(), &stored_));
    stored = stored_.AsSlice();
  }
  Buffer header;
  PutVarint64(&header, block_.size());
  PutVarint64(&header, stored.size());
  PutFixed32(&header, Crc32(stored));
  file_->Append(header.AsSlice());
  file_->Append(stored);
  const uint64_t wrote = header.size() + stored.size();
  segments_[static_cast<size_t>(current_partition_)].bytes += wrote;
  offset_ += wrote;
  block_.Clear();
  return file_->status();
}

Status SpillRunWriter::Close(SpillRun* out) {
  COLMR_RETURN_IF_ERROR(FlushBlock());
  COLMR_RETURN_IF_ERROR(file_->Close());
  out->path = path_;
  out->codec = codec_type_;
  out->segments = std::move(segments_);
  return Status::OK();
}

// ---- SpillSegmentCursor ----

SpillSegmentCursor::SpillSegmentCursor(std::unique_ptr<FileReader> reader,
                                       const SpillRun& run,
                                       const SpillSegment& segment)
    : reader_(std::move(reader)),
      codec_(GetCodec(run.codec)),
      pos_(segment.offset),
      end_(segment.offset + segment.bytes) {}

Status SpillSegmentCursor::Open(MiniHdfs* fs, const SpillRun& run,
                                int partition, const ReadContext& context,
                                std::unique_ptr<SpillSegmentCursor>* cursor) {
  if (partition < 0 || partition >= static_cast<int>(run.segments.size())) {
    return Status::InvalidArgument("spill: partition out of range");
  }
  if (GetCodec(run.codec) == nullptr) {
    return Status::Corruption("spill: unknown codec in run");
  }
  std::unique_ptr<FileReader> reader;
  COLMR_RETURN_IF_ERROR(fs->Open(run.path, context, &reader));
  cursor->reset(new SpillSegmentCursor(
      std::move(reader), run, run.segments[static_cast<size_t>(partition)]));
  return Status::OK();
}

bool SpillSegmentCursor::FillBlock() {
  if (pos_ >= end_) return false;  // segment drained
  // Block header: two varints plus a fixed32 CRC — at most 24 bytes.
  std::string header;
  const size_t header_cap =
      static_cast<size_t>(std::min<uint64_t>(24, end_ - pos_));
  status_ = reader_->Read(pos_, header_cap, &header);
  if (!status_.ok()) return false;
  Slice h(header);
  uint64_t raw_len = 0, stored_len = 0;
  uint32_t crc = 0;
  status_ = GetVarint64(&h, &raw_len);
  if (status_.ok()) status_ = GetVarint64(&h, &stored_len);
  if (status_.ok()) status_ = GetFixed32(&h, &crc);
  if (!status_.ok()) {
    status_ = Status::Corruption("spill: truncated block header");
    return false;
  }
  const uint64_t header_len = header.size() - h.size();
  if (pos_ + header_len + stored_len > end_) {
    status_ = Status::Corruption("spill: block overruns segment");
    return false;
  }
  status_ = reader_->Read(pos_ + header_len, stored_len, &stored_);
  if (!status_.ok()) return false;
  if (stored_.size() != stored_len) {
    status_ = Status::Corruption("spill: truncated block");
    return false;
  }
  if (Crc32(Slice(stored_)) != crc) {
    status_ = Status::Corruption("spill: block checksum mismatch");
    return false;
  }
  if (codec_->type() != CodecType::kNone) {
    raw_.Clear();
    status_ = codec_->Decompress(Slice(stored_), &raw_);
    if (!status_.ok()) return false;
    if (raw_.size() != raw_len) {
      status_ = Status::Corruption("spill: block raw-length mismatch");
      return false;
    }
    cursor_ = raw_.AsSlice();
  } else {
    if (stored_.size() != raw_len) {
      status_ = Status::Corruption("spill: block raw-length mismatch");
      return false;
    }
    cursor_ = Slice(stored_);
  }
  pos_ += header_len + stored_len;
  return true;
}

bool SpillSegmentCursor::Next() {
  if (!status_.ok()) return false;
  if (cursor_.empty() && !FillBlock()) return false;

  uint64_t key_len = 0;
  status_ = GetVarint64(&cursor_, &key_len);
  if (status_.ok() && key_len > cursor_.size()) {
    status_ = Status::Corruption("spill: record overruns block");
  }
  if (!status_.ok()) return false;
  Slice key_bytes = cursor_.Prefix(key_len);
  status_ = DecodeTaggedValue(&key_bytes, &key_);
  if (status_.ok() && !key_bytes.empty()) {
    status_ = Status::Corruption("spill: trailing bytes after key");
  }
  if (!status_.ok()) return false;
  cursor_.RemovePrefix(key_len);

  uint64_t value_len = 0;
  status_ = GetVarint64(&cursor_, &value_len);
  if (status_.ok() && value_len > cursor_.size()) {
    status_ = Status::Corruption("spill: record overruns block");
  }
  if (!status_.ok()) return false;
  Slice value_bytes = cursor_.Prefix(value_len);
  status_ = DecodeTaggedValue(&value_bytes, &value_);
  if (status_.ok() && !value_bytes.empty()) {
    status_ = Status::Corruption("spill: trailing bytes after value");
  }
  if (!status_.ok()) return false;
  cursor_.RemovePrefix(value_len);
  return true;
}

// ---- SpillMerger ----

bool SpillMerger::HeapAfter(const HeapEntry& a, const HeapEntry& b) {
  // True when a pops after b. std::push_heap keeps the maximum at the
  // front, so "pops after" == "greater" gives a min-heap.
  const int c = a.cursor->key().Compare(b.cursor->key());
  if (c != 0) return c > 0;
  return a.sequence > b.sequence;
}

void SpillMerger::Add(std::unique_ptr<SpillSegmentCursor> cursor,
                      uint64_t sequence) {
  pending_.emplace_back(cursor.get(), sequence);
  owned_.push_back(std::move(cursor));
}

void SpillMerger::Push(SpillSegmentCursor* cursor, uint64_t sequence) {
  if (cursor->Next()) {
    heap_.push_back(HeapEntry{cursor, sequence});
    std::push_heap(heap_.begin(), heap_.end(), HeapAfter);
  } else if (!cursor->status().ok() && status_.ok()) {
    status_ = cursor->status();
  }
}

bool SpillMerger::Next() {
  if (!status_.ok()) return false;
  if (!primed_) {
    primed_ = true;
    for (const auto& [cursor, sequence] : pending_) Push(cursor, sequence);
    pending_.clear();
  } else if (current_ != nullptr) {
    Push(current_, current_sequence_);
    current_ = nullptr;
  }
  if (!status_.ok() || heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), HeapAfter);
  current_ = heap_.back().cursor;
  current_sequence_ = heap_.back().sequence;
  heap_.pop_back();
  return true;
}

// ---- MergeSpillRuns ----

Status MergeSpillRuns(MiniHdfs* fs, const std::vector<const SpillRun*>& runs,
                      const std::string& path, const WriteContext& write_ctx,
                      const ReadContext& read_ctx, CodecType codec,
                      int num_partitions, const ReduceFn* combiner,
                      SpillRun* out, uint64_t* segments_merged) {
  std::unique_ptr<SpillRunWriter> writer;
  COLMR_RETURN_IF_ERROR(SpillRunWriter::Open(fs, path, write_ctx, codec,
                                             num_partitions, &writer));
  uint64_t merged = 0;
  std::vector<std::pair<Value, Value>> combined;
  VectorEmitter combined_out(&combined);
  for (int p = 0; p < num_partitions; ++p) {
    SpillMerger merger;
    for (size_t i = 0; i < runs.size(); ++i) {
      if (runs[i]->segments[static_cast<size_t>(p)].records == 0) continue;
      std::unique_ptr<SpillSegmentCursor> cursor;
      COLMR_RETURN_IF_ERROR(
          SpillSegmentCursor::Open(fs, *runs[i], p, read_ctx, &cursor));
      merger.Add(std::move(cursor), i);
      ++merged;
    }
    if (combiner == nullptr) {
      while (merger.Next()) {
        COLMR_RETURN_IF_ERROR(writer->Append(p, merger.key(), merger.value()));
      }
      COLMR_RETURN_IF_ERROR(merger.status());
      continue;
    }
    // Combine equal-key groups as they stream off the heap. The combiner
    // must preserve the key (Hadoop's contract), so outputs stay in this
    // partition and remain key-sorted.
    Value group_key;
    std::vector<Value> group_values;
    auto flush_group = [&]() -> Status {
      if (group_values.empty()) return Status::OK();
      combined.clear();
      (*combiner)(group_key, group_values, &combined_out);
      for (auto& [k, v] : combined) {
        COLMR_RETURN_IF_ERROR(writer->Append(p, k, v));
      }
      group_values.clear();
      return Status::OK();
    };
    while (merger.Next()) {
      if (group_values.empty() || merger.key().Compare(group_key) != 0) {
        COLMR_RETURN_IF_ERROR(flush_group());
        group_key = merger.key();
      }
      group_values.push_back(merger.value());
    }
    COLMR_RETURN_IF_ERROR(merger.status());
    COLMR_RETURN_IF_ERROR(flush_group());
  }
  COLMR_RETURN_IF_ERROR(writer->Close(out));
  if (segments_merged != nullptr) *segments_merged = merged;
  return Status::OK();
}

// ---- MapOutputBuffer ----

MapOutputBuffer::MapOutputBuffer(Options options)
    : options_(std::move(options)),
      m_spill_count_(options_.metrics->counter("mr.spill.count")),
      m_spill_bytes_(options_.metrics->counter("mr.spill.bytes")) {}

void MapOutputBuffer::Emit(Value key, Value value) {
  if (!status_.ok()) return;  // sticky: the attempt is already doomed
  const uint32_t partition = ShufflePartition(
      key, static_cast<uint32_t>(options_.num_partitions));
  buffer_bytes_ += TaggedEncodedSize(key) + TaggedEncodedSize(value);
  peak_buffer_bytes_ = std::max(peak_buffer_bytes_, buffer_bytes_);
  entries_.push_back(
      BufferedPair{partition, std::move(key), std::move(value)});
  if (buffer_bytes_ >= options_.sort_buffer_bytes) {
    status_ = SortAndSpill();
  }
}

Status MapOutputBuffer::Finish() {
  if (status_.ok() && !entries_.empty()) status_ = SortAndSpill();
  return status_;
}

Status MapOutputBuffer::SortAndSpill() {
  if (entries_.empty()) return Status::OK();
  ScopedSpan span(options_.trace, "spill", "mr");
  span.AddArg("records_in", static_cast<uint64_t>(entries_.size()));

  // The sort whose stability the whole determinism argument leans on:
  // equal (partition, key) entries keep emission order, so every run is
  // a contiguous slice of the stable sort of this task's output.
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const BufferedPair& a, const BufferedPair& b) {
                     if (a.partition != b.partition) {
                       return a.partition < b.partition;
                     }
                     return a.key.Compare(b.key) < 0;
                   });

  if (options_.combiner != nullptr) {
    // Fold each (partition, key) group through the combiner — Hadoop's
    // spill-time combine. Outputs are re-partitioned by their own key and
    // re-sorted, exactly as the in-memory path treats combiner output.
    std::vector<BufferedPair> folded;
    std::vector<std::pair<Value, Value>> outputs;
    VectorEmitter out(&outputs);
    size_t i = 0;
    std::vector<Value> group_values;
    while (i < entries_.size()) {
      size_t j = i + 1;
      while (j < entries_.size() &&
             entries_[j].partition == entries_[i].partition &&
             entries_[j].key.Compare(entries_[i].key) == 0) {
        ++j;
      }
      group_values.clear();
      for (size_t g = i; g < j; ++g) {
        group_values.push_back(std::move(entries_[g].value));
      }
      outputs.clear();
      (*options_.combiner)(entries_[i].key, group_values, &out);
      for (auto& [k, v] : outputs) {
        const uint32_t partition = ShufflePartition(
            k, static_cast<uint32_t>(options_.num_partitions));
        folded.push_back(BufferedPair{partition, std::move(k), std::move(v)});
      }
      i = j;
    }
    std::stable_sort(folded.begin(), folded.end(),
                     [](const BufferedPair& a, const BufferedPair& b) {
                       if (a.partition != b.partition) {
                         return a.partition < b.partition;
                       }
                       return a.key.Compare(b.key) < 0;
                     });
    entries_ = std::move(folded);
  }

  const std::string path =
      options_.scratch_dir + "/spill-" + std::to_string(spills_);
  std::unique_ptr<SpillRunWriter> writer;
  COLMR_RETURN_IF_ERROR(SpillRunWriter::Open(
      options_.fs, path, options_.write_context, options_.codec,
      options_.num_partitions, &writer));
  for (const BufferedPair& e : entries_) {
    COLMR_RETURN_IF_ERROR(
        writer->Append(static_cast<int>(e.partition), e.key, e.value));
  }
  SpillRun run;
  COLMR_RETURN_IF_ERROR(writer->Close(&run));

  spills_ += 1;
  const uint64_t file_bytes = run.TotalBytes();
  spilled_bytes_ += file_bytes;
  kv_bytes_spilled_ += run.TotalKvBytes();
  records_spilled_ += static_cast<uint64_t>(entries_.size());
  m_spill_count_->Increment();
  m_spill_bytes_->Increment(file_bytes);
  span.AddArg("records_out", static_cast<uint64_t>(entries_.size()));
  span.AddArg("bytes", file_bytes);

  runs_.push_back(std::move(run));
  entries_.clear();
  buffer_bytes_ = 0;
  return Status::OK();
}

}  // namespace colmr
