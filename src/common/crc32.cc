#include "common/crc32.h"

#include <cstring>

namespace colmr {

namespace {

/// Slice-by-8 tables: table[0] is the classic byte-at-a-time table; the
/// other seven let the hot loop fold 8 input bytes per iteration. The
/// polynomial and bit order are unchanged, so every value matches the old
/// single-table implementation — the speedup matters because sealed-block
/// verification now runs a CRC pass over each block the read path serves.
struct CrcTable {
  uint32_t entries[8][256];
  CrcTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = entries[0][i];
      for (int t = 1; t < 8; ++t) {
        c = entries[0][c & 0xff] ^ (c >> 8);
        entries[t][i] = c;
      }
    }
  }
};

const CrcTable& Table() {
  static const CrcTable* table = new CrcTable();
  return *table;
}

}  // namespace

uint32_t Crc32Extend(uint32_t crc, Slice data) {
  const CrcTable& table = Table();
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data.data());
  size_t n = data.size();
  crc = ~crc;
  while (n >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = table.entries[7][lo & 0xff] ^ table.entries[6][(lo >> 8) & 0xff] ^
          table.entries[5][(lo >> 16) & 0xff] ^ table.entries[4][lo >> 24] ^
          table.entries[3][hi & 0xff] ^ table.entries[2][(hi >> 8) & 0xff] ^
          table.entries[1][(hi >> 16) & 0xff] ^ table.entries[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = table.entries[0][(crc ^ *p) & 0xff] ^ (crc >> 8);
    ++p;
    --n;
  }
  return ~crc;
}

uint32_t Crc32(Slice data) { return Crc32Extend(0, data); }

}  // namespace colmr
