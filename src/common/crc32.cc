#include "common/crc32.h"

namespace colmr {

namespace {

struct CrcTable {
  uint32_t entries[256];
  CrcTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

const CrcTable& Table() {
  static const CrcTable* table = new CrcTable();
  return *table;
}

}  // namespace

uint32_t Crc32Extend(uint32_t crc, Slice data) {
  const CrcTable& table = Table();
  crc = ~crc;
  for (size_t i = 0; i < data.size(); ++i) {
    crc = table.entries[(crc ^ static_cast<uint8_t>(data[i])) & 0xff] ^
          (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32(Slice data) { return Crc32Extend(0, data); }

}  // namespace colmr
