#ifndef COLMR_COMMON_SLICE_H_
#define COLMR_COMMON_SLICE_H_

#include <cassert>
#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>

namespace colmr {

/// A non-owning view of a byte range. Like std::string_view, but with the
/// pointer-advancing helpers the decoders in this library rely on. The
/// referenced bytes must outlive the Slice.
class Slice {
 public:
  Slice() : data_(""), size_(0) {}
  Slice(const char* data, size_t size) : data_(data), size_(size) {}
  /// Implicit construction from the common string types is intentional:
  /// Slice is this library's parameter vocabulary type.
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}
  Slice(std::string_view s) : data_(s.data()), size_(s.size()) {}
  Slice(const char* s) : data_(s), size_(strlen(s)) {}

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t i) const {
    assert(i < size_);
    return data_[i];
  }

  /// Drops the first n bytes from the view.
  void RemovePrefix(size_t n) {
    assert(n <= size_);
    data_ += n;
    size_ -= n;
  }

  /// Returns the first n bytes as a sub-slice.
  Slice Prefix(size_t n) const {
    assert(n <= size_);
    return Slice(data_, n);
  }

  /// Returns the sub-slice [offset, offset + n).
  Slice SubSlice(size_t offset, size_t n) const {
    assert(offset + n <= size_);
    return Slice(data_ + offset, n);
  }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view ToStringView() const {
    return std::string_view(data_, size_);
  }

  int Compare(const Slice& other) const {
    const size_t min_len = size_ < other.size_ ? size_ : other.size_;
    int r = memcmp(data_, other.data_, min_len);
    if (r == 0) {
      if (size_ < other.size_) r = -1;
      else if (size_ > other.size_) r = +1;
    }
    return r;
  }

 private:
  const char* data_;
  size_t size_;
};

inline bool operator==(const Slice& a, const Slice& b) {
  return a.size() == b.size() && memcmp(a.data(), b.data(), a.size()) == 0;
}
inline bool operator!=(const Slice& a, const Slice& b) { return !(a == b); }

}  // namespace colmr

#endif  // COLMR_COMMON_SLICE_H_
