#ifndef COLMR_COMMON_CODING_H_
#define COLMR_COMMON_CODING_H_

#include <cstdint>

#include "common/buffer.h"
#include "common/slice.h"
#include "common/status.h"

namespace colmr {

// Binary integer coding used throughout the storage formats. Variable-length
// integers follow the LEB128 layout (7 payload bits per byte, high bit =
// continuation); signed values are zigzag-mapped first, matching Avro's wire
// format. Fixed-width values are little-endian.

/// Maps a signed value onto an unsigned one so small magnitudes stay small:
/// 0 -> 0, -1 -> 1, 1 -> 2, -2 -> 3, ...
inline uint64_t ZigZagEncode64(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode64(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}
inline uint32_t ZigZagEncode32(int32_t v) {
  return (static_cast<uint32_t>(v) << 1) ^ static_cast<uint32_t>(v >> 31);
}
inline int32_t ZigZagDecode32(uint32_t v) {
  return static_cast<int32_t>(v >> 1) ^ -static_cast<int32_t>(v & 1);
}

void PutVarint32(Buffer* dst, uint32_t value);
void PutVarint64(Buffer* dst, uint64_t value);
void PutZigZag32(Buffer* dst, int32_t value);
void PutZigZag64(Buffer* dst, int64_t value);
void PutFixed32(Buffer* dst, uint32_t value);
void PutFixed64(Buffer* dst, uint64_t value);
void PutDouble(Buffer* dst, double value);
/// Writes varint length followed by the bytes.
void PutLengthPrefixed(Buffer* dst, Slice value);

/// Each Get* consumes the decoded bytes from the front of *input.
/// Returns Corruption if the input is truncated or malformed.
///
/// GetVarint64 inlines the 1–2 byte case — the overwhelming majority of
/// varints in real columns (small ids, lengths, zigzagged deltas) — and
/// punts everything else, including truncation and canonicality errors,
/// to the out-of-line slow path.
Status GetVarint64Slow(Slice* input, uint64_t* value);

inline Status GetVarint64(Slice* input, uint64_t* value) {
  const size_t n = input->size();
  if (n >= 1) {
    const uint8_t b0 = static_cast<uint8_t>((*input)[0]);
    if (b0 < 0x80) {
      *value = b0;
      input->RemovePrefix(1);
      return Status::OK();
    }
    if (n >= 2) {
      const uint8_t b1 = static_cast<uint8_t>((*input)[1]);
      if (b1 < 0x80) {
        *value = static_cast<uint64_t>(b0 & 0x7f) |
                 (static_cast<uint64_t>(b1) << 7);
        input->RemovePrefix(2);
        return Status::OK();
      }
    }
  }
  return GetVarint64Slow(input, value);
}

inline Status GetVarint32(Slice* input, uint32_t* value) {
  uint64_t v = 0;
  Status s = GetVarint64(input, &v);
  if (!s.ok()) return s;
  if (v > UINT32_MAX) return Status::Corruption("varint32 overflow");
  *value = static_cast<uint32_t>(v);
  return Status::OK();
}

Status GetZigZag32(Slice* input, int32_t* value);
Status GetZigZag64(Slice* input, int64_t* value);
Status GetFixed32(Slice* input, uint32_t* value);
Status GetFixed64(Slice* input, uint64_t* value);
Status GetDouble(Slice* input, double* value);
Status GetLengthPrefixed(Slice* input, Slice* value);

/// Number of bytes PutVarint64 would emit for value.
int VarintLength(uint64_t value);

// ---- Batch decode kernels (DESIGN.md §10) ----
// Both kernels decode up to n values from the front of *input. On success
// the input cursor advances past all n values and *decoded == n. On
// failure the cursor is restored to the first byte of the value that
// failed, *decoded holds the count of values decoded before it, and the
// returned status carries the same message the scalar decoder would have
// produced for that value.

/// Bulk LEB128 decode. While at least 10 bytes (the maximum encoding)
/// remain, values are decoded without per-byte bounds checks; the tail
/// falls back to the bounds-checked scalar path.
Status DecodeVarint64Batch(Slice* input, size_t n, uint64_t* out,
                           size_t* decoded);

/// Bulk little-endian fixed64 decode: one bounds check for the whole run.
Status DecodeFixed64Batch(Slice* input, size_t n, uint64_t* out,
                          size_t* decoded);

}  // namespace colmr

#endif  // COLMR_COMMON_CODING_H_
