#ifndef COLMR_COMMON_CODING_H_
#define COLMR_COMMON_CODING_H_

#include <cstdint>

#include "common/buffer.h"
#include "common/slice.h"
#include "common/status.h"

namespace colmr {

// Binary integer coding used throughout the storage formats. Variable-length
// integers follow the LEB128 layout (7 payload bits per byte, high bit =
// continuation); signed values are zigzag-mapped first, matching Avro's wire
// format. Fixed-width values are little-endian.

/// Maps a signed value onto an unsigned one so small magnitudes stay small:
/// 0 -> 0, -1 -> 1, 1 -> 2, -2 -> 3, ...
inline uint64_t ZigZagEncode64(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode64(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}
inline uint32_t ZigZagEncode32(int32_t v) {
  return (static_cast<uint32_t>(v) << 1) ^ static_cast<uint32_t>(v >> 31);
}
inline int32_t ZigZagDecode32(uint32_t v) {
  return static_cast<int32_t>(v >> 1) ^ -static_cast<int32_t>(v & 1);
}

void PutVarint32(Buffer* dst, uint32_t value);
void PutVarint64(Buffer* dst, uint64_t value);
void PutZigZag32(Buffer* dst, int32_t value);
void PutZigZag64(Buffer* dst, int64_t value);
void PutFixed32(Buffer* dst, uint32_t value);
void PutFixed64(Buffer* dst, uint64_t value);
void PutDouble(Buffer* dst, double value);
/// Writes varint length followed by the bytes.
void PutLengthPrefixed(Buffer* dst, Slice value);

/// Each Get* consumes the decoded bytes from the front of *input.
/// Returns Corruption if the input is truncated or malformed.
Status GetVarint32(Slice* input, uint32_t* value);
Status GetVarint64(Slice* input, uint64_t* value);
Status GetZigZag32(Slice* input, int32_t* value);
Status GetZigZag64(Slice* input, int64_t* value);
Status GetFixed32(Slice* input, uint32_t* value);
Status GetFixed64(Slice* input, uint64_t* value);
Status GetDouble(Slice* input, double* value);
Status GetLengthPrefixed(Slice* input, Slice* value);

/// Number of bytes PutVarint64 would emit for value.
int VarintLength(uint64_t value);

}  // namespace colmr

#endif  // COLMR_COMMON_CODING_H_
