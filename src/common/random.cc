#include "common/random.h"

#include <cmath>

namespace colmr {

Random::Random(uint64_t seed) {
  // SplitMix64 expansion of the seed so nearby seeds give unrelated streams.
  uint64_t z = seed + 0x9E3779B97f4A7C15ull;
  auto mix = [](uint64_t v) {
    v = (v ^ (v >> 30)) * 0xBF58476D1CE4E5B9ull;
    v = (v ^ (v >> 27)) * 0x94D049BB133111EBull;
    return v ^ (v >> 31);
  };
  s0_ = mix(z);
  z += 0x9E3779B97f4A7C15ull;
  s1_ = mix(z);
  if (s0_ == 0 && s1_ == 0) s0_ = 1;
}

uint64_t Random::Next() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

uint64_t Random::Uniform(uint64_t n) { return Next() % n; }

int64_t Random::UniformRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
}

double Random::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

std::string Random::NextString(size_t min_len, size_t max_len) {
  size_t len = min_len + Uniform(max_len - min_len + 1);
  std::string s(len, '\0');
  for (size_t i = 0; i < len; ++i) {
    s[i] = static_cast<char>(' ' + 1 + Uniform(94));  // printable, no space
  }
  return s;
}

std::string Random::NextWord(size_t len) {
  std::string s(len, '\0');
  for (size_t i = 0; i < len; ++i) {
    s[i] = static_cast<char>('a' + Uniform(26));
  }
  return s;
}

namespace {
double Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(double(i), theta);
  return sum;
}
}  // namespace

Zipf::Zipf(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  zetan_ = Zeta(n_, theta_);
  const double zeta2 = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / double(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

uint64_t Zipf::Next() {
  const double u = rng_.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  uint64_t v = static_cast<uint64_t>(
      double(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

}  // namespace colmr
