#ifndef COLMR_COMMON_CRC32_H_
#define COLMR_COMMON_CRC32_H_

#include <cstdint>

#include "common/slice.h"

namespace colmr {

/// CRC-32 (IEEE 802.3 polynomial, reflected). Used by the storage formats
/// to checksum sync markers and compressed blocks.
uint32_t Crc32(Slice data);

/// Incremental form: extends the checksum `crc` with `data`.
/// Crc32(ab) == Crc32Extend(Crc32(a), b).
uint32_t Crc32Extend(uint32_t crc, Slice data);

}  // namespace colmr

#endif  // COLMR_COMMON_CRC32_H_
