#ifndef COLMR_COMMON_HASH_H_
#define COLMR_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>

#include "common/slice.h"

namespace colmr {

// Specified, platform-stable hashing (DESIGN.md §12). Everything that
// feeds a persisted or cross-run-comparable decision — shuffle partition
// assignment, SEQ/RCFile sync markers — must hash through these functions
// rather than std::hash, whose result is implementation-defined: the same
// key hashed with libstdc++ and libc++ lands in different reduce
// partitions, so the same job writes different part-r-NNNNN files on
// different platforms. The algorithms below are fixed by this header; any
// change to them is a deliberate on-disk/output format break.

/// splitmix64 finalizer (Steele et al.): a bijective 64-bit mix with full
/// avalanche. Used standalone to diffuse small structured inputs (seeds,
/// counters) and as the finalizer of Fnv1a64.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

inline constexpr uint64_t kFnv64OffsetBasis = 0xcbf29ce484222325ull;
inline constexpr uint64_t kFnv64Prime = 0x100000001b3ull;

/// Streaming FNV-1a (64-bit) with a splitmix64 finalizer. Byte-order
/// independent by construction (it consumes bytes, not words), so the
/// digest of a given byte sequence is identical on every platform.
/// The seed is diffused into the offset basis, giving cheaply
/// independent hash families from one stream of bytes.
class Fnv1a64 {
 public:
  explicit Fnv1a64(uint64_t seed = 0)
      : state_(kFnv64OffsetBasis ^ SplitMix64(seed)) {}

  void Update(uint8_t byte) { state_ = (state_ ^ byte) * kFnv64Prime; }

  void Update(const void* data, size_t n) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    for (size_t i = 0; i < n; ++i) state_ = (state_ ^ p[i]) * kFnv64Prime;
  }

  void Update(Slice s) { Update(s.data(), s.size()); }

  /// Digest of the bytes consumed so far; does not disturb the stream.
  uint64_t Digest() const { return SplitMix64(state_); }

 private:
  uint64_t state_;
};

/// One-shot convenience: Fnv1a64(seed) over `data`, finalized.
inline uint64_t HashBytes(Slice data, uint64_t seed = 0) {
  Fnv1a64 h(seed);
  h.Update(data);
  return h.Digest();
}

}  // namespace colmr

#endif  // COLMR_COMMON_HASH_H_
