#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace colmr {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_idle_.notify_all();
    }
  }
}

int ThreadPool::DefaultThreads(int total_slots) {
  const unsigned hw = std::thread::hardware_concurrency();
  int threads = hw == 0 ? 1 : static_cast<int>(hw);
  if (total_slots > 0) threads = std::min(threads, total_slots);
  return std::max(1, threads);
}

}  // namespace colmr
