#ifndef COLMR_COMMON_BUFFER_H_
#define COLMR_COMMON_BUFFER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"

namespace colmr {

/// A growable, owned byte buffer used as the output sink of the encoders
/// and codecs. Thin wrapper over std::string so appends are amortized O(1)
/// and the contents can be handed to file writers without copying.
class Buffer {
 public:
  Buffer() = default;

  void Clear() { data_.clear(); }
  bool empty() const { return data_.empty(); }
  size_t size() const { return data_.size(); }
  const char* data() const { return data_.data(); }
  char* mutable_data() { return data_.data(); }

  void Reserve(size_t n) { data_.reserve(n); }
  void Resize(size_t n) { data_.resize(n); }

  void Append(const char* data, size_t n) { data_.append(data, n); }
  void Append(Slice s) { data_.append(s.data(), s.size()); }
  void PushBack(char c) { data_.push_back(c); }

  Slice AsSlice() const { return Slice(data_.data(), data_.size()); }

  /// Moves the contents out, leaving the buffer empty.
  std::string TakeString() { return std::move(data_); }
  const std::string& str() const { return data_; }

 private:
  std::string data_;
};

}  // namespace colmr

#endif  // COLMR_COMMON_BUFFER_H_
