#ifndef COLMR_COMMON_STOPWATCH_H_
#define COLMR_COMMON_STOPWATCH_H_

#include <chrono>

namespace colmr {

/// Monotonic wall-clock timer used to measure the CPU-bound portions of
/// tasks. (Tasks run single-threaded, so wall time == CPU time up to noise;
/// the I/O side is accounted separately through hdfs::IoStats.)
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace colmr

#endif  // COLMR_COMMON_STOPWATCH_H_
