#ifndef COLMR_COMMON_STOPWATCH_H_
#define COLMR_COMMON_STOPWATCH_H_

#include <chrono>
#include <ctime>

namespace colmr {

/// Monotonic wall-clock timer. With the parallel engine, map tasks share
/// the machine's cores, so wall time over a task no longer approximates
/// its CPU time — per-task CPU is measured with ThreadCpuStopwatch below,
/// and the I/O side is accounted separately through hdfs::IoStats.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// CPU seconds consumed by the *calling thread* so far
  /// (CLOCK_THREAD_CPUTIME_ID). Unlike wall time this stays meaningful
  /// when many tasks contend for fewer cores: a descheduled thread's
  /// clock does not advance.
  static double ThreadCpuSeconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts;
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
      return static_cast<double>(ts.tv_sec) + ts.tv_nsec * 1e-9;
    }
#endif
    // Fallback (non-POSIX): process CPU time — correct only when
    // single-threaded, which is also the only case that reaches here.
    return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Per-thread CPU timer for task accounting: measures only cycles the
/// calling thread actually executed, so `cpu_seconds` in task reports is
/// comparable between the serial and parallel engines.
class ThreadCpuStopwatch {
 public:
  ThreadCpuStopwatch() : start_(Stopwatch::ThreadCpuSeconds()) {}

  void Reset() { start_ = Stopwatch::ThreadCpuSeconds(); }

  /// Must be called from the same thread that constructed the stopwatch.
  double ElapsedSeconds() const {
    return Stopwatch::ThreadCpuSeconds() - start_;
  }

 private:
  double start_;
};

}  // namespace colmr

#endif  // COLMR_COMMON_STOPWATCH_H_
