#ifndef COLMR_COMMON_STATUS_H_
#define COLMR_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace colmr {

/// Result of a fallible operation. The library does not use exceptions;
/// every operation that can fail returns a Status (RocksDB convention).
/// Outputs are passed through pointer parameters.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kAlreadyExists,
    kCorruption,
    kIoError,
    kNotSupported,
    kOutOfRange,
    kDataLoss,
  };

  /// Default-constructed Status is success.
  Status() : code_(Code::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status NotFound(std::string_view msg) {
    return Status(Code::kNotFound, msg);
  }
  static Status AlreadyExists(std::string_view msg) {
    return Status(Code::kAlreadyExists, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(Code::kCorruption, msg);
  }
  static Status IoError(std::string_view msg) {
    return Status(Code::kIoError, msg);
  }
  static Status NotSupported(std::string_view msg) {
    return Status(Code::kNotSupported, msg);
  }
  static Status OutOfRange(std::string_view msg) {
    return Status(Code::kOutOfRange, msg);
  }
  /// Every replica of some block is gone (dead or marked bad): the bytes
  /// are unrecoverable, as opposed to kIoError's retryable failures.
  static Status DataLoss(std::string_view msg) {
    return Status(Code::kDataLoss, msg);
  }
  /// Rebuilds a status from an inspected code, for callers that wrap an
  /// underlying failure with more context.
  static Status FromCode(Code code, std::string_view msg) {
    return code == Code::kOk ? OK() : Status(code, msg);
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsIoError() const { return code_ == Code::kIoError; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsOutOfRange() const { return code_ == Code::kOutOfRange; }
  bool IsDataLoss() const { return code_ == Code::kDataLoss; }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>", for logging and test failure output.
  std::string ToString() const;

 private:
  Status(Code code, std::string_view msg) : code_(code), message_(msg) {}

  Code code_;
  std::string message_;
};

/// Propagates a non-OK Status to the caller. Usable only in functions
/// returning Status.
#define COLMR_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::colmr::Status _s = (expr);                     \
    if (!_s.ok()) return _s;                         \
  } while (0)

}  // namespace colmr

#endif  // COLMR_COMMON_STATUS_H_
