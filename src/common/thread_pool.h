#ifndef COLMR_COMMON_THREAD_POOL_H_
#define COLMR_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace colmr {

/// Fixed-size work-queue thread pool: N worker threads drain a FIFO of
/// std::function jobs. Submit() never blocks (the queue is unbounded);
/// Wait() blocks the caller until every submitted job has finished, so a
/// producer can dispatch a batch and join it without destroying the pool.
/// The destructor drains outstanding work before joining the workers.
///
/// This is the execution substrate of the parallel JobRunner: one pool per
/// job run, sized to min(hardware_concurrency, cluster map slots), with
/// per-node slot admission layered on top by the engine.
class ThreadPool {
 public:
  /// Spawns max(1, num_threads) workers.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one job. Safe to call from any thread, including from a
  /// running job (jobs must not Wait() on their own pool, though — that
  /// can deadlock once every worker is blocked in Wait).
  void Submit(std::function<void()> fn);

  /// Blocks until the queue is empty and no job is executing.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Pool size the engine uses by default: the hardware's concurrency
  /// clamped to the simulated cluster's total map slots (running more
  /// threads than slots cannot make the slot-gated schedule any faster),
  /// never less than 1.
  static int DefaultThreads(int total_slots);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // jobs popped but not yet finished
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace colmr

#endif  // COLMR_COMMON_THREAD_POOL_H_
