#ifndef COLMR_COMMON_RANDOM_H_
#define COLMR_COMMON_RANDOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace colmr {

/// Deterministic pseudo-random generator (xorshift128+). All workload
/// generators seed from this so datasets are reproducible across runs,
/// which the tests and benchmark comparisons rely on.
class Random {
 public:
  explicit Random(uint64_t seed);

  uint64_t Next();
  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);
  /// Uniform in [lo, hi].
  int64_t UniformRange(int64_t lo, int64_t hi);
  double NextDouble();  // Uniform in [0, 1).
  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

  /// Random printable-ASCII string with length uniform in [min_len, max_len].
  std::string NextString(size_t min_len, size_t max_len);
  /// Random lowercase-alpha string of exactly len characters.
  std::string NextWord(size_t len);

 private:
  uint64_t s0_;
  uint64_t s1_;
};

/// Zipf-distributed integers over [0, n). Used to give workload columns the
/// skewed value frequencies (common keys, hot URLs) that make dictionary
/// compression effective, as in the paper's crawl data.
class Zipf {
 public:
  /// theta in (0, 1): higher is more skewed.
  Zipf(uint64_t n, double theta, uint64_t seed);

  uint64_t Next();

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  Random rng_;
};

}  // namespace colmr

#endif  // COLMR_COMMON_RANDOM_H_
