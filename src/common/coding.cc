#include "common/coding.h"

#include <cstring>

namespace colmr {

void PutVarint32(Buffer* dst, uint32_t value) {
  PutVarint64(dst, value);
}

void PutVarint64(Buffer* dst, uint64_t value) {
  char buf[10];
  int n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<char>(value | 0x80);
    value >>= 7;
  }
  buf[n++] = static_cast<char>(value);
  dst->Append(buf, n);
}

void PutZigZag32(Buffer* dst, int32_t value) {
  PutVarint64(dst, ZigZagEncode32(value));
}

void PutZigZag64(Buffer* dst, int64_t value) {
  PutVarint64(dst, ZigZagEncode64(value));
}

void PutFixed32(Buffer* dst, uint32_t value) {
  char buf[4];
  memcpy(buf, &value, 4);  // Little-endian host assumed (x86/ARM).
  dst->Append(buf, 4);
}

void PutFixed64(Buffer* dst, uint64_t value) {
  char buf[8];
  memcpy(buf, &value, 8);
  dst->Append(buf, 8);
}

void PutDouble(Buffer* dst, double value) {
  uint64_t bits;
  memcpy(&bits, &value, 8);
  PutFixed64(dst, bits);
}

void PutLengthPrefixed(Buffer* dst, Slice value) {
  PutVarint64(dst, value.size());
  dst->Append(value);
}

Status GetVarint64(Slice* input, uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63; shift += 7) {
    if (input->empty()) return Status::Corruption("truncated varint");
    uint8_t byte = static_cast<uint8_t>((*input)[0]);
    input->RemovePrefix(1);
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return Status::OK();
    }
  }
  return Status::Corruption("varint too long");
}

Status GetVarint32(Slice* input, uint32_t* value) {
  uint64_t v;
  COLMR_RETURN_IF_ERROR(GetVarint64(input, &v));
  if (v > UINT32_MAX) return Status::Corruption("varint32 overflow");
  *value = static_cast<uint32_t>(v);
  return Status::OK();
}

Status GetZigZag32(Slice* input, int32_t* value) {
  uint32_t v;
  COLMR_RETURN_IF_ERROR(GetVarint32(input, &v));
  *value = ZigZagDecode32(v);
  return Status::OK();
}

Status GetZigZag64(Slice* input, int64_t* value) {
  uint64_t v;
  COLMR_RETURN_IF_ERROR(GetVarint64(input, &v));
  *value = ZigZagDecode64(v);
  return Status::OK();
}

Status GetFixed32(Slice* input, uint32_t* value) {
  if (input->size() < 4) return Status::Corruption("truncated fixed32");
  memcpy(value, input->data(), 4);
  input->RemovePrefix(4);
  return Status::OK();
}

Status GetFixed64(Slice* input, uint64_t* value) {
  if (input->size() < 8) return Status::Corruption("truncated fixed64");
  memcpy(value, input->data(), 8);
  input->RemovePrefix(8);
  return Status::OK();
}

Status GetDouble(Slice* input, double* value) {
  uint64_t bits;
  COLMR_RETURN_IF_ERROR(GetFixed64(input, &bits));
  memcpy(value, &bits, 8);
  return Status::OK();
}

Status GetLengthPrefixed(Slice* input, Slice* value) {
  uint64_t len;
  COLMR_RETURN_IF_ERROR(GetVarint64(input, &len));
  if (input->size() < len) {
    return Status::Corruption("truncated length-prefixed bytes");
  }
  *value = input->Prefix(len);
  input->RemovePrefix(len);
  return Status::OK();
}

int VarintLength(uint64_t value) {
  int len = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++len;
  }
  return len;
}

}  // namespace colmr
