#include "common/coding.h"

#include <cstring>

namespace colmr {

void PutVarint32(Buffer* dst, uint32_t value) {
  PutVarint64(dst, value);
}

void PutVarint64(Buffer* dst, uint64_t value) {
  char buf[10];
  int n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<char>(value | 0x80);
    value >>= 7;
  }
  buf[n++] = static_cast<char>(value);
  dst->Append(buf, n);
}

void PutZigZag32(Buffer* dst, int32_t value) {
  PutVarint64(dst, ZigZagEncode32(value));
}

void PutZigZag64(Buffer* dst, int64_t value) {
  PutVarint64(dst, ZigZagEncode64(value));
}

void PutFixed32(Buffer* dst, uint32_t value) {
  // Explicit little-endian byte assembly: the on-disk CIF/COF/RCFile
  // images must mean the same bytes on any host.
  char buf[4];
  buf[0] = static_cast<char>(value & 0xff);
  buf[1] = static_cast<char>((value >> 8) & 0xff);
  buf[2] = static_cast<char>((value >> 16) & 0xff);
  buf[3] = static_cast<char>((value >> 24) & 0xff);
  dst->Append(buf, 4);
}

void PutFixed64(Buffer* dst, uint64_t value) {
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
  dst->Append(buf, 8);
}

void PutDouble(Buffer* dst, double value) {
  uint64_t bits = 0;
  memcpy(&bits, &value, 8);
  PutFixed64(dst, bits);
}

void PutLengthPrefixed(Buffer* dst, Slice value) {
  PutVarint64(dst, value.size());
  dst->Append(value);
}

Status GetVarint64Slow(Slice* input, uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63; shift += 7) {
    if (input->empty()) return Status::Corruption("truncated varint");
    uint8_t byte = static_cast<uint8_t>((*input)[0]);
    input->RemovePrefix(1);
    // The 10th byte (shift 63) has room for exactly one payload bit; any
    // higher bit would be shifted past bit 63 and silently dropped, making
    // distinct byte strings decode to the same value.
    if (shift == 63 && (byte & 0x7e) != 0) {
      return Status::Corruption("varint overflow");
    }
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return Status::OK();
    }
  }
  return Status::Corruption("varint too long");
}

Status GetZigZag32(Slice* input, int32_t* value) {
  uint32_t v = 0;
  COLMR_RETURN_IF_ERROR(GetVarint32(input, &v));
  *value = ZigZagDecode32(v);
  return Status::OK();
}

Status GetZigZag64(Slice* input, int64_t* value) {
  uint64_t v = 0;
  COLMR_RETURN_IF_ERROR(GetVarint64(input, &v));
  *value = ZigZagDecode64(v);
  return Status::OK();
}

Status GetFixed32(Slice* input, uint32_t* value) {
  if (input->size() < 4) return Status::Corruption("truncated fixed32");
  const uint8_t* p = reinterpret_cast<const uint8_t*>(input->data());
  *value = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
  input->RemovePrefix(4);
  return Status::OK();
}

Status GetFixed64(Slice* input, uint64_t* value) {
  if (input->size() < 8) return Status::Corruption("truncated fixed64");
  const uint8_t* p = reinterpret_cast<const uint8_t*>(input->data());
  uint64_t result = 0;
  for (int i = 0; i < 8; ++i) {
    result |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  *value = result;
  input->RemovePrefix(8);
  return Status::OK();
}

Status GetDouble(Slice* input, double* value) {
  uint64_t bits = 0;
  COLMR_RETURN_IF_ERROR(GetFixed64(input, &bits));
  memcpy(value, &bits, 8);
  return Status::OK();
}

Status GetLengthPrefixed(Slice* input, Slice* value) {
  uint64_t len = 0;
  COLMR_RETURN_IF_ERROR(GetVarint64(input, &len));
  if (input->size() < len) {
    return Status::Corruption("truncated length-prefixed bytes");
  }
  *value = input->Prefix(len);
  input->RemovePrefix(len);
  return Status::OK();
}

Status DecodeVarint64Batch(Slice* input, size_t n, uint64_t* out,
                           size_t* decoded) {
  const char* const base = input->data();
  const char* p = base;
  const char* const limit = base + input->size();
  size_t i = 0;
  // Fast loop: with full 10-byte headroom no per-byte bounds check is
  // needed — a malformed value is caught by the same canonicality rules
  // as the scalar path before p can pass limit.
  while (i < n && limit - p >= 10) {
    const char* const value_start = p;
    uint64_t byte = static_cast<uint8_t>(*p++);
    if (byte < 0x80) {
      out[i++] = byte;
      continue;
    }
    uint64_t result = byte & 0x7f;
    int shift = 7;
    for (;;) {
      byte = static_cast<uint8_t>(*p++);
      if (shift == 63 && (byte & 0x7e) != 0) {
        input->RemovePrefix(value_start - base);
        *decoded = i;
        return Status::Corruption("varint overflow");
      }
      result |= (byte & 0x7f) << shift;
      if (byte < 0x80) break;
      shift += 7;
      if (shift > 63) {
        input->RemovePrefix(value_start - base);
        *decoded = i;
        return Status::Corruption("varint too long");
      }
    }
    out[i++] = result;
  }
  input->RemovePrefix(p - base);
  // Tail: bounds-checked scalar decode for the last few values.
  while (i < n) {
    const Slice save = *input;
    uint64_t v = 0;
    Status s = GetVarint64(input, &v);
    if (!s.ok()) {
      *input = save;
      *decoded = i;
      return s;
    }
    out[i++] = v;
  }
  *decoded = n;
  return Status::OK();
}

Status DecodeFixed64Batch(Slice* input, size_t n, uint64_t* out,
                          size_t* decoded) {
  const size_t avail = input->size() / 8;
  const size_t take = n < avail ? n : avail;
  const uint8_t* p = reinterpret_cast<const uint8_t*>(input->data());
  for (size_t i = 0; i < take; ++i) {
    uint64_t result = 0;
    for (int j = 0; j < 8; ++j) {
      result |= static_cast<uint64_t>(p[8 * i + j]) << (8 * j);
    }
    out[i] = result;
  }
  input->RemovePrefix(take * 8);
  *decoded = take;
  return take == n ? Status::OK() : Status::Corruption("truncated fixed64");
}

int VarintLength(uint64_t value) {
  int len = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++len;
  }
  return len;
}

}  // namespace colmr
