#ifndef COLMR_OBS_TRACE_H_
#define COLMR_OBS_TRACE_H_

// Trace spans in Chrome trace_event JSON.
//
// A TraceCollector accumulates "complete" events (ph:"X", with ts/dur
// in microseconds) and instant events (ph:"i"); ToJson() renders the
// {"traceEvents":[...]} document that https://ui.perfetto.dev and
// chrome://tracing load directly.  ScopedSpan is the RAII producer: it
// records the start time at construction and appends the event at
// destruction, so per-thread spans nest naturally (a child span object
// lives inside its parent's scope on the same thread, giving the
// nested job -> phase -> task -> hdfs.read timeline).
//
// A null collector disables everything: ScopedSpan(nullptr, ...) and
// instant events on a null collector are no-ops, so instrumented code
// pays nothing when tracing is off.  Thread ids are remapped to small
// integers in first-seen order, which keeps traces byte-deterministic
// at parallelism=1.

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"

namespace colmr {

class TraceCollector {
 public:
  // One argument on an event: key plus a pre-rendered JSON value (the
  // ScopedSpan/instant helpers render scalars; callers never build
  // these by hand).
  using Arg = std::pair<std::string, std::string>;

  TraceCollector();

  // Microseconds since this collector was created.
  uint64_t NowMicros() const;

  // Appends a complete event (ph:"X").  Thread-safe.
  void AddComplete(std::string_view name, std::string_view category,
                   uint64_t ts_us, uint64_t dur_us, std::vector<Arg> args);
  // Appends a thread-scoped instant event (ph:"i").  Thread-safe.
  void AddInstant(std::string_view name, std::string_view category,
                  std::vector<Arg> args);

  size_t event_count() const;

  // Renders {"traceEvents":[...]}.
  std::string ToJson() const;
  Status WriteFile(const std::string& path) const;

  // Renders one scalar as a JSON value, for building Args.
  static std::string JsonValue(std::string_view v);
  static std::string JsonValue(const char* v) {
    return JsonValue(std::string_view(v));
  }
  static std::string JsonValue(uint64_t v) { return std::to_string(v); }
  static std::string JsonValue(int64_t v) { return std::to_string(v); }
  static std::string JsonValue(int v) { return std::to_string(v); }
  static std::string JsonValue(bool v) { return v ? "true" : "false"; }
  static std::string JsonValue(double v);

 private:
  struct Event {
    std::string name;
    std::string category;
    char phase;  // 'X' or 'i'
    uint64_t ts_us;
    uint64_t dur_us;
    int tid;
    std::vector<Arg> args;
  };

  int TidLocked(std::thread::id id);

  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::map<std::thread::id, int> tids_;
};

// RAII span.  Records start at construction, emits the complete event
// at destruction (or at End()).  All methods are no-ops when the
// collector is null.
class ScopedSpan {
 public:
  ScopedSpan(TraceCollector* collector, std::string_view name,
             std::string_view category = "app");
  ~ScopedSpan() { End(); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return collector_ != nullptr; }

  template <typename T>
  void AddArg(std::string_view key, T value) {
    if (collector_ == nullptr) return;
    args_.emplace_back(std::string(key), TraceCollector::JsonValue(value));
  }

  // Emits the event now; the destructor becomes a no-op.
  void End();

 private:
  TraceCollector* collector_;
  std::string name_;
  std::string category_;
  uint64_t start_us_ = 0;
  std::vector<TraceCollector::Arg> args_;
};

// Convenience for one-shot markers (retries, blacklistings, ...).
inline void TraceInstant(TraceCollector* collector, std::string_view name,
                         std::string_view category,
                         std::vector<TraceCollector::Arg> args = {}) {
  if (collector == nullptr) return;
  collector->AddInstant(name, category, std::move(args));
}

}  // namespace colmr

#endif  // COLMR_OBS_TRACE_H_
