#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "obs/json.h"

namespace colmr {

uint64_t Histogram::count() const {
  uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

uint64_t MetricsSnapshot::HistogramData::count() const {
  uint64_t total = 0;
  for (uint64_t b : buckets) total += b;
  return total;
}

double MetricsSnapshot::HistogramData::Quantile(double q) const {
  uint64_t total = count();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested sample, 0-based.
  double rank = q * static_cast<double>(total - 1);
  uint64_t seen = 0;
  for (int b = 0; b < Histogram::kNumBuckets; ++b) {
    if (buckets[b] == 0) continue;
    uint64_t in_bucket = buckets[b];
    if (rank < static_cast<double>(seen + in_bucket)) {
      double frac = (rank - static_cast<double>(seen)) /
                    static_cast<double>(in_bucket);
      double lo = static_cast<double>(Histogram::BucketLower(b));
      double hi = static_cast<double>(Histogram::BucketUpper(b));
      return lo + frac * (hi - lo);
    }
    seen += in_bucket;
  }
  return static_cast<double>(Histogram::BucketUpper(Histogram::kNumBuckets - 1));
}

MetricsSnapshot MetricsSnapshot::Diff(const MetricsSnapshot& before) const {
  MetricsSnapshot out;
  for (const auto& [name, value] : counters) {
    auto it = before.counters.find(name);
    uint64_t prev = it == before.counters.end() ? 0 : it->second;
    out.counters[name] = value >= prev ? value - prev : value;
  }
  // Gauges are levels, not totals: keep the current reading.
  out.gauges = gauges;
  for (const auto& [name, hist] : histograms) {
    auto it = before.histograms.find(name);
    HistogramData d = hist;
    if (it != before.histograms.end()) {
      const HistogramData& prev = it->second;
      for (int b = 0; b < Histogram::kNumBuckets; ++b) {
        d.buckets[b] =
            d.buckets[b] >= prev.buckets[b] ? d.buckets[b] - prev.buckets[b]
                                            : d.buckets[b];
      }
      d.sum = d.sum >= prev.sum ? d.sum - prev.sum : d.sum;
    }
    out.histograms[name] = d;
  }
  return out;
}

MetricsSnapshot MetricsSnapshot::NonZero() const {
  MetricsSnapshot out;
  for (const auto& [name, value] : counters) {
    if (value != 0) out.counters[name] = value;
  }
  for (const auto& [name, g] : gauges) {
    if (g.value != 0 || g.max != 0) out.gauges[name] = g;
  }
  for (const auto& [name, h] : histograms) {
    if (h.count() != 0) out.histograms[name] = h;
  }
  return out;
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    out += name;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  }
  for (const auto& [name, g] : gauges) {
    out += name;
    out += ' ';
    out += std::to_string(g.value);
    out += " (max ";
    out += std::to_string(g.max);
    out += ")\n";
  }
  for (const auto& [name, h] : histograms) {
    out += name;
    out += " count=";
    out += std::to_string(h.count());
    out += " sum=";
    out += std::to_string(h.sum);
    out += " p50=";
    out += std::to_string(static_cast<uint64_t>(h.Quantile(0.5)));
    out += " p99=";
    out += std::to_string(static_cast<uint64_t>(h.Quantile(0.99)));
    out += '\n';
  }
  return out;
}

void MetricsSnapshot::WriteJson(JsonWriter* writer) const {
  writer->BeginObject("counters");
  for (const auto& [name, value] : counters) writer->Field(name, value);
  writer->EndObject();
  writer->BeginObject("gauges");
  for (const auto& [name, g] : gauges) {
    writer->BeginObject(name);
    writer->Field("value", g.value);
    writer->Field("max", g.max);
    writer->EndObject();
  }
  writer->EndObject();
  writer->BeginObject("histograms");
  for (const auto& [name, h] : histograms) {
    writer->BeginObject(name);
    writer->Field("count", h.count());
    writer->Field("sum", h.sum);
    writer->Field("p50", h.Quantile(0.5));
    writer->Field("p95", h.Quantile(0.95));
    writer->Field("p99", h.Quantile(0.99));
    // Sparse bucket list: [[bucket_index, count], ...].
    writer->BeginArray("buckets");
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      writer->BeginArray();
      writer->Element(static_cast<uint64_t>(b));
      writer->Element(h.buckets[b]);
      writer->EndArray();
    }
    writer->EndArray();
    writer->EndObject();
  }
  writer->EndObject();
}

std::string MetricsSnapshot::ToJson() const {
  JsonWriter writer;
  writer.BeginObject();
  WriteJson(&writer);
  writer.EndObject();
  return writer.Take();
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) {
    snap.gauges[name] = {g->value(), g->max_value()};
  }
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramData d;
    for (int b = 0; b < Histogram::kNumBuckets; ++b) d.buckets[b] = h->bucket(b);
    d.sum = h->sum();
    snap.histograms[name] = d;
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace colmr
