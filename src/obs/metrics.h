#ifndef COLMR_OBS_METRICS_H_
#define COLMR_OBS_METRICS_H_

// Cross-layer metrics: named counters, gauges, and log-bucketed
// histograms behind a thread-safe registry.
//
// Design constraints (see DESIGN.md §8):
//  * The hot path is a single relaxed atomic RMW.  Callers resolve a
//    metric once (registry lookup under a mutex) and cache the pointer;
//    metric objects are heap-allocated and never move or die for the
//    registry's lifetime, so cached pointers stay valid.
//  * Snapshot() is wait-free with respect to writers: it reads the
//    atomics with relaxed loads, so a snapshot taken mid-job is a
//    consistent-enough view for reporting, not a linearizable cut.
//  * Snapshots subtract (Diff) so benches and `colmr stats` can report
//    the delta attributable to one job even on the shared default
//    registry.
//
// Naming scheme: `<layer>.<subject>.<aspect>` with layers
// hdfs / cif / serde / mr, e.g. "hdfs.read.remote_bytes",
// "cif.scan.rowgroups_skipped", "mr.task.retries".

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace colmr {

// Monotonic event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Instantaneous level (e.g. occupied map slots).  Tracks the maximum
// level ever set so peaks survive into snapshots.
class Gauge {
 public:
  void Set(int64_t v) {
    value_.store(v, std::memory_order_relaxed);
    BumpMax(v);
  }
  // Returns the post-add value.
  int64_t Add(int64_t delta) {
    int64_t now = value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    BumpMax(now);
    return now;
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  int64_t max_value() const { return max_.load(std::memory_order_relaxed); }
  void Reset() {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  void BumpMax(int64_t v) {
    int64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> max_{0};
};

// Log-bucketed histogram of uint64 samples.  Bucket b counts samples
// whose bit width is b (bucket 0 counts zeros), i.e. bucket b covers
// [2^(b-1), 2^b).  65 buckets cover the full uint64 range; quantiles
// are exact to bucket bounds and linearly interpolated inside a bucket.
class Histogram {
 public:
  static constexpr int kNumBuckets = 65;

  static int BucketOf(uint64_t v) {
    int width = 0;
    while (v != 0) {
      v >>= 1;
      ++width;
    }
    return width;
  }
  // Inclusive lower / exclusive upper value bound of bucket b.
  static uint64_t BucketLower(int b) {
    return b == 0 ? 0 : (b == 1 ? 1 : uint64_t{1} << (b - 1));
  }
  static uint64_t BucketUpper(int b) {
    return b == 0 ? 1 : (b >= 64 ? ~uint64_t{0} : uint64_t{1} << b);
  }

  void Observe(uint64_t v) {
    buckets_[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }
  uint64_t count() const;
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  void Reset();

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> sum_{0};
};

// Point-in-time copy of every metric in a registry, detached from the
// live atomics.  Supports subtraction, text rendering, and JSON export.
struct MetricsSnapshot {
  struct HistogramData {
    std::array<uint64_t, Histogram::kNumBuckets> buckets{};
    uint64_t sum = 0;
    uint64_t count() const;
    // Quantile q in [0,1]; interpolated within the containing bucket.
    double Quantile(double q) const;
  };
  struct GaugeData {
    int64_t value = 0;
    int64_t max = 0;
  };

  std::map<std::string, uint64_t> counters;
  std::map<std::string, GaugeData> gauges;
  std::map<std::string, HistogramData> histograms;

  // this - before: counters and histogram buckets subtract (clamped at
  // zero if the registry was reset in between); gauges keep the current
  // level from `this` since levels are not cumulative.
  MetricsSnapshot Diff(const MetricsSnapshot& before) const;

  // Drops zero-valued counters and empty histograms (gauges at 0 with
  // max 0 are dropped too).  Makes diffed reports readable.
  MetricsSnapshot NonZero() const;

  // "name value" lines, one metric per line, sorted by name.
  std::string ToText() const;
  // {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string ToJson() const;
  // Streams the same object into an open writer (for embedding into a
  // larger document, e.g. BENCH_*.json).
  void WriteJson(class JsonWriter* writer) const;
};

// Thread-safe name -> metric registry.  Metrics are created on first
// lookup and live until the registry dies; lookups of the same name
// return the same object.  Counter/gauge/histogram namespaces are
// separate (the same name may exist in each, though the naming scheme
// avoids that).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Process-wide registry.  Layers fall back to this when no registry
  // is supplied via ReadContext / JobConfig.
  static MetricsRegistry& Default();

  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  MetricsSnapshot Snapshot() const;
  // Zeroes every registered metric (objects stay valid).
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace colmr

#endif  // COLMR_OBS_METRICS_H_
