#ifndef COLMR_OBS_JSON_H_
#define COLMR_OBS_JSON_H_

// Minimal JSON emission and validation used by the observability layer.
//
// JsonWriter is a streaming writer: the caller opens/closes objects and
// arrays and the writer inserts commas and escapes strings.  It never
// buffers the document, so metric snapshots and traces of any size stream
// straight into a std::string.  ValidateJson is a strict recursive-descent
// checker used by tests (and the CI bench-smoke job via `colmr`) to reject
// malformed BENCH_*.json / trace output without a third-party parser.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace colmr {

class JsonWriter {
 public:
  JsonWriter() = default;

  // Structural tokens.  BeginObject/BeginArray may be given a key when
  // nested directly inside an object.
  void BeginObject();
  void BeginObject(std::string_view key);
  void EndObject();
  void BeginArray();
  void BeginArray(std::string_view key);
  void EndArray();

  // Key/value members (only valid inside an object).
  void Field(std::string_view key, std::string_view value);
  void Field(std::string_view key, const char* value);
  void Field(std::string_view key, uint64_t value);
  void Field(std::string_view key, int64_t value);
  void Field(std::string_view key, int value);
  void Field(std::string_view key, double value);
  void Field(std::string_view key, bool value);
  // Emits an already-rendered JSON value verbatim under `key`; the caller
  // guarantees `raw` is itself well-formed JSON (bench::Report stores its
  // heterogeneous cell values pre-rendered, like TraceCollector args).
  void FieldRaw(std::string_view key, std::string_view raw);

  // Bare array elements (only valid inside an array).
  void Element(std::string_view value);
  void Element(uint64_t value);
  void Element(double value);

  // The document built so far.  Valid once every Begin* has been closed.
  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

  // Escapes `s` per RFC 8259 (quotes, backslash, control chars).
  static std::string Escape(std::string_view s);

 private:
  void Comma();
  void Key(std::string_view key);
  void Scalar(std::string_view raw);
  static std::string Number(double value);

  std::string out_;
  // One entry per open scope: true once the scope has emitted a member
  // (so the next member needs a leading comma).
  std::vector<bool> needs_comma_;
};

// Returns true iff `text` is a single well-formed JSON value (with
// optional surrounding whitespace).  Strict: rejects trailing commas,
// unquoted keys, duplicate structural tokens, bad escapes, and trailing
// garbage.  On failure, *error (if non-null) describes the first problem
// and the byte offset where it occurred.
bool ValidateJson(std::string_view text, std::string* error = nullptr);

}  // namespace colmr

#endif  // COLMR_OBS_JSON_H_
