#include "obs/trace.h"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "obs/json.h"

namespace colmr {

TraceCollector::TraceCollector() : epoch_(std::chrono::steady_clock::now()) {}

uint64_t TraceCollector::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

int TraceCollector::TidLocked(std::thread::id id) {
  auto it = tids_.find(id);
  if (it == tids_.end()) {
    it = tids_.emplace(id, static_cast<int>(tids_.size()) + 1).first;
  }
  return it->second;
}

void TraceCollector::AddComplete(std::string_view name,
                                 std::string_view category, uint64_t ts_us,
                                 uint64_t dur_us, std::vector<Arg> args) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{std::string(name), std::string(category), 'X', ts_us,
                          dur_us, TidLocked(std::this_thread::get_id()),
                          std::move(args)});
}

void TraceCollector::AddInstant(std::string_view name,
                                std::string_view category,
                                std::vector<Arg> args) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{std::string(name), std::string(category), 'i',
                          NowMicros(), 0,
                          TidLocked(std::this_thread::get_id()),
                          std::move(args)});
}

size_t TraceCollector::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string TraceCollector::JsonValue(std::string_view v) {
  std::string out;
  out.reserve(v.size() + 2);
  out.push_back('"');
  out += JsonWriter::Escape(v);
  out.push_back('"');
  return out;
}

std::string TraceCollector::JsonValue(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string TraceCollector::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const Event& e : events_) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":\"";
    out += JsonWriter::Escape(e.name);
    out += "\",\"cat\":\"";
    out += JsonWriter::Escape(e.category);
    out += "\",\"ph\":\"";
    out.push_back(e.phase);
    out += "\",\"ts\":";
    out += std::to_string(e.ts_us);
    if (e.phase == 'X') {
      out += ",\"dur\":";
      out += std::to_string(e.dur_us);
    } else {
      // Thread-scoped instant so Perfetto draws it on the emitting track.
      out += ",\"s\":\"t\"";
    }
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(e.tid);
    if (!e.args.empty()) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (const Arg& arg : e.args) {
        if (!first_arg) out.push_back(',');
        first_arg = false;
        out.push_back('"');
        out += JsonWriter::Escape(arg.first);
        out += "\":";
        out += arg.second;  // already-rendered JSON value
      }
      out.push_back('}');
    }
    out.push_back('}');
  }
  out += "]}";
  return out;
}

Status TraceCollector::WriteFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open trace file " + path);
  out << ToJson();
  out.close();
  if (!out) return Status::IoError("failed writing trace file " + path);
  return Status::OK();
}

ScopedSpan::ScopedSpan(TraceCollector* collector, std::string_view name,
                       std::string_view category)
    : collector_(collector) {
  if (collector_ == nullptr) return;
  name_ = name;
  category_ = category;
  start_us_ = collector_->NowMicros();
}

void ScopedSpan::End() {
  if (collector_ == nullptr) return;
  uint64_t end_us = collector_->NowMicros();
  // Perfetto renders zero-duration slices invisibly; clamp to 1us.
  uint64_t dur = end_us > start_us_ ? end_us - start_us_ : 1;
  collector_->AddComplete(name_, category_, start_us_, dur, std::move(args_));
  collector_ = nullptr;
}

}  // namespace colmr
