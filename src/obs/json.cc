#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace colmr {

void JsonWriter::Comma() {
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_.push_back(',');
    needs_comma_.back() = true;
  }
}

void JsonWriter::Key(std::string_view key) {
  Comma();
  out_.push_back('"');
  out_ += Escape(key);
  out_ += "\":";
}

void JsonWriter::Scalar(std::string_view raw) { out_ += raw; }

std::string JsonWriter::Number(double value) {
  // JSON has no NaN/Inf; emit null so the document stays parseable.
  if (!std::isfinite(value)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

void JsonWriter::BeginObject() {
  Comma();
  out_.push_back('{');
  needs_comma_.push_back(false);
}

void JsonWriter::BeginObject(std::string_view key) {
  Key(key);
  out_.push_back('{');
  needs_comma_.push_back(false);
}

void JsonWriter::EndObject() {
  out_.push_back('}');
  needs_comma_.pop_back();
}

void JsonWriter::BeginArray() {
  Comma();
  out_.push_back('[');
  needs_comma_.push_back(false);
}

void JsonWriter::BeginArray(std::string_view key) {
  Key(key);
  out_.push_back('[');
  needs_comma_.push_back(false);
}

void JsonWriter::EndArray() {
  out_.push_back(']');
  needs_comma_.pop_back();
}

void JsonWriter::Field(std::string_view key, std::string_view value) {
  Key(key);
  out_.push_back('"');
  out_ += Escape(value);
  out_.push_back('"');
}

void JsonWriter::Field(std::string_view key, const char* value) {
  Field(key, std::string_view(value));
}

void JsonWriter::Field(std::string_view key, uint64_t value) {
  Key(key);
  Scalar(std::to_string(value));
}

void JsonWriter::Field(std::string_view key, int64_t value) {
  Key(key);
  Scalar(std::to_string(value));
}

void JsonWriter::Field(std::string_view key, int value) {
  Field(key, static_cast<int64_t>(value));
}

void JsonWriter::Field(std::string_view key, double value) {
  Key(key);
  Scalar(Number(value));
}

void JsonWriter::Field(std::string_view key, bool value) {
  Key(key);
  Scalar(value ? "true" : "false");
}

void JsonWriter::FieldRaw(std::string_view key, std::string_view raw) {
  Key(key);
  Scalar(raw);
}

void JsonWriter::Element(std::string_view value) {
  Comma();
  out_.push_back('"');
  out_ += Escape(value);
  out_.push_back('"');
}

void JsonWriter::Element(uint64_t value) {
  Comma();
  Scalar(std::to_string(value));
}

void JsonWriter::Element(double value) {
  Comma();
  Scalar(Number(value));
}

std::string JsonWriter::Escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

namespace {

// Recursive-descent JSON validator.
class Validator {
 public:
  explicit Validator(std::string_view text) : text_(text) {}

  bool Run(std::string* error) {
    SkipWs();
    if (!Value()) {
      if (error != nullptr) {
        *error = error_ + " at offset " + std::to_string(pos_);
      }
      return false;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = "trailing garbage at offset " + std::to_string(pos_);
      }
      return false;
    }
    return true;
  }

 private:
  bool Fail(const char* what) {
    if (error_.empty()) error_ = what;
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Peek(char* c) {
    if (pos_ >= text_.size()) return false;
    *c = text_[pos_];
    return true;
  }

  bool Literal(const char* lit) {
    size_t n = std::strlen(lit);
    if (text_.substr(pos_, n) != lit) return Fail("bad literal");
    pos_ += n;
    return true;
  }

  bool String() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return Fail("expected string");
    ++pos_;
    while (pos_ < text_.size()) {
      unsigned char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return Fail("unescaped control character in string");
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Fail("truncated escape");
        char e = text_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return Fail("bad \\u escape");
            }
          }
          pos_ += 4;
        } else if (std::strchr("\"\\/bfnrt", e) == nullptr) {
          return Fail("bad escape character");
        }
      }
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool Digits() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return pos_ > start || Fail("expected digits");
  }

  bool NumberTok() {
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size()) return Fail("truncated number");
    if (text_[pos_] == '0') {
      ++pos_;
    } else if (std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      if (!Digits()) return false;
    } else {
      return Fail("bad number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!Digits()) return false;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (!Digits()) return false;
    }
    return true;
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    char c;
    if (Peek(&c) && c == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return Fail("expected ':'");
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (!Peek(&c)) return Fail("unterminated object");
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    char c;
    if (Peek(&c) && c == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (!Peek(&c)) return Fail("unterminated array");
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool Value() {
    if (++depth_ > kMaxDepth) return Fail("nesting too deep");
    bool ok = ValueInner();
    --depth_;
    return ok;
  }

  bool ValueInner() {
    char c;
    if (!Peek(&c)) return Fail("expected value");
    switch (c) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default:
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
          return NumberTok();
        }
        return Fail("unexpected character");
    }
  }

  static constexpr int kMaxDepth = 256;

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

}  // namespace

bool ValidateJson(std::string_view text, std::string* error) {
  return Validator(text).Run(error);
}

}  // namespace colmr
