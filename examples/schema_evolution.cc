// Schema evolution (paper Section 4.3): with one file per column, adding a
// derived column to an existing dataset writes one new file per
// split-directory and leaves every existing byte untouched — the
// operation that forces a full dataset rewrite under RCFile. This example
// augments a weblog store with a derived `is_error` column and then
// queries it.
//
//   build/examples/schema_evolution

#include <cstdio>
#include <memory>

#include "cif/cif.h"
#include "cif/cof.h"
#include "hdfs/mini_hdfs.h"
#include "mapreduce/engine.h"
#include "workload/weblog.h"

using namespace colmr;

int main() {
  auto fs = std::make_unique<MiniHdfs>(
      ClusterConfig{}, std::make_unique<ColumnPlacementPolicy>());

  Schema::Ptr schema = WeblogSchema();
  CofOptions options;
  options.split_target_bytes = 2 << 20;
  std::unique_ptr<CofWriter> writer;
  if (!CofWriter::Open(fs.get(), "/logs", schema, options, &writer).ok()) {
    return 1;
  }
  WeblogGenerator gen(7);
  for (int i = 0; i < 60000; ++i) {
    writer->WriteRecord(gen.Next());
  }
  writer->Close();

  const uint64_t before = fs->TotalStoredBytes();
  std::printf("dataset: %d split-directories, %.1f MB\n",
              writer->split_count(), before / 1e6);

  // Derive is_error from the status column. Only new `<split>/is_error.col`
  // files are written; the namenode's existing blocks are untouched.
  Status s = AddColumn(
      fs.get(), "/logs", "is_error", Schema::Bool(), ColumnOptions{},
      [](const Value& record) {
        return Value::Bool(record.elements()[4].int32_value() >= 500);
      });
  if (!s.ok()) {
    std::fprintf(stderr, "AddColumn: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("added derived column is_error: +%.2f MB (%.2f%% growth), "
              "no existing file rewritten\n",
              (fs->TotalStoredBytes() - before) / 1e6,
              100.0 * (fs->TotalStoredBytes() - before) / before);

  // Query the new column like any other — here with projection pushdown,
  // reading only 2 of the (now 10) columns.
  Job job;
  job.config.input_paths = {"/logs"};
  job.config.projection = {"app", "is_error"};
  job.input_format = std::make_shared<ColumnInputFormat>();
  job.mapper = [](Record& record, Emitter* out) {
    if (record.GetOrDie("is_error").bool_value()) {
      out->Emit(record.GetOrDie("app"), Value::Int32(1));
    }
  };
  job.reducer = [](const Value& key, const std::vector<Value>& values,
                   Emitter* out) {
    out->Emit(key, Value::Int64(static_cast<int64_t>(values.size())));
  };
  JobRunner runner(fs.get());
  JobReport report;
  if (!runner.Run(job, &report).ok()) return 1;

  std::printf("\nserver errors per application (via the derived column):\n");
  for (const auto& [key, value] : report.output) {
    std::printf("  %-6s %6lld\n", key.string_value().c_str(),
                static_cast<long long>(value.int64_value()));
  }
  std::printf("  [read %.1f MB]\n", report.BytesRead() / 1e6);
  return 0;
}
