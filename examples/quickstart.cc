// Quickstart: write a column-oriented dataset with ColumnOutputFormat,
// then run a MapReduce job over it with ColumnInputFormat, projection
// pushdown, and lazy record construction.
//
//   build/examples/quickstart

#include <cstdio>
#include <memory>

#include "cif/cif.h"
#include "cif/cof.h"
#include "hdfs/mini_hdfs.h"
#include "mapreduce/engine.h"

using namespace colmr;

int main() {
  // 1. An in-process HDFS with the paper's ColumnPlacementPolicy, so the
  //    column files of each split-directory are co-located across
  //    replicas (Section 4.2).
  ClusterConfig cluster;
  cluster.num_nodes = 8;
  cluster.block_size = 1 << 20;
  auto fs = std::make_unique<MiniHdfs>(
      cluster, std::make_unique<ColumnPlacementPolicy>());

  // 2. Declare a schema. Complex types (arrays, maps, nested records) are
  //    first-class, as in the paper's Fig. 2.
  Schema::Ptr schema;
  Status s = Schema::Parse(
      "record Order { id: long, customer: string, amount: double, "
      "tags: array<string>, attrs: map<string> }",
      &schema);
  if (!s.ok()) {
    std::fprintf(stderr, "schema: %s\n", s.ToString().c_str());
    return 1;
  }

  // 3. Load data through the ColumnOutputFormat: one file per column per
  //    split-directory, with skip lists on the map column so lazy readers
  //    can jump over it.
  CofOptions options;
  options.split_target_bytes = 1 << 20;
  options.column_overrides["attrs"] = {ColumnLayout::kDictSkipList,
                                       CodecType::kNone, 0};
  std::unique_ptr<CofWriter> writer;
  s = CofWriter::Open(fs.get(), "/orders", schema, options, &writer);
  if (!s.ok()) {
    std::fprintf(stderr, "cof: %s\n", s.ToString().c_str());
    return 1;
  }
  for (int i = 0; i < 50000; ++i) {
    Value record = Value::Record({
        Value::Int64(i),
        Value::String("customer-" + std::to_string(i % 997)),
        Value::Double((i % 500) * 1.25),
        Value::Array({Value::String(i % 3 == 0 ? "priority" : "standard")}),
        Value::Map({{"region", Value::String(i % 2 ? "emea" : "apac")},
                    {"channel", Value::String(i % 5 ? "web" : "store")}}),
    });
    writer->WriteRecord(record);
  }
  writer->Close();
  std::printf("loaded %llu records into %d split-directories\n",
              static_cast<unsigned long long>(writer->record_count()),
              writer->split_count());

  // 4. A MapReduce job: total revenue per region. Only the two columns
  //    the job touches are configured in the projection; the other three
  //    column files are never opened.
  Job job;
  job.config.input_paths = {"/orders"};
  job.config.projection = {"amount", "attrs"};
  job.config.lazy_records = true;
  job.input_format = std::make_shared<ColumnInputFormat>();
  job.mapper = [](Record& record, Emitter* out) {
    const Value* region = record.GetOrDie("attrs").FindMapEntry("region");
    out->Emit(Value::String(region->string_value()),
              Value::Double(record.GetOrDie("amount").double_value()));
  };
  job.reducer = [](const Value& key, const std::vector<Value>& values,
                   Emitter* out) {
    double total = 0;
    for (const Value& v : values) total += v.double_value();
    out->Emit(key, Value::Double(total));
  };

  JobRunner runner(fs.get());
  JobReport report;
  s = runner.Run(job, &report);
  if (!s.ok()) {
    std::fprintf(stderr, "job: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("revenue by region:\n");
  for (const auto& [key, value] : report.output) {
    std::printf("  %-6s %12.2f\n", key.string_value().c_str(),
                value.double_value());
  }
  std::printf(
      "job stats: %llu records mapped, %.2f MB read (%d/%d tasks "
      "data-local), simulated map time %.3fs\n",
      static_cast<unsigned long long>(report.map_input_records),
      report.BytesRead() / 1e6, report.data_local_tasks,
      static_cast<int>(report.map_tasks.size()), report.map_phase_seconds);
  return 0;
}
