// The consumer-bank scenario from the paper's introduction: web
// application logs accumulate for a 90-day retention window, and nightly
// reports stop fitting in their batch window. This example builds a
// column-oriented log store and runs two of the reports: error rate per
// application, and top URLs by traffic — each touching only 2-3 of the
// 9 log columns.
//
//   build/examples/weblog_report

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "cif/cif.h"
#include "cif/cof.h"
#include "hdfs/mini_hdfs.h"
#include "mapreduce/engine.h"
#include "workload/weblog.h"

using namespace colmr;

int main() {
  auto fs = std::make_unique<MiniHdfs>(
      ClusterConfig{}, std::make_unique<ColumnPlacementPolicy>());

  // Ingest a (scaled-down) day of logs from four web applications.
  Schema::Ptr schema = WeblogSchema();
  CofOptions options;
  options.split_target_bytes = 4 << 20;
  options.default_column.layout = ColumnLayout::kSkipList;
  std::unique_ptr<CofWriter> writer;
  if (!CofWriter::Open(fs.get(), "/logs/day1", schema, options, &writer)
           .ok()) {
    return 1;
  }
  WeblogGenerator gen(90210);
  const int kEntries = 150000;
  for (int i = 0; i < kEntries; ++i) {
    writer->WriteRecord(gen.Next());
  }
  writer->Close();
  std::printf("ingested %d log entries into %d split-directories\n\n",
              kEntries, writer->split_count());

  JobRunner runner(fs.get());

  // Report 1: HTTP error rate per application (reads app + status only).
  {
    Job job;
    job.config.input_paths = {"/logs/day1"};
    job.config.projection = {"app", "status"};
    job.input_format = std::make_shared<ColumnInputFormat>();
    job.mapper = [](Record& record, Emitter* out) {
      const bool is_error = record.GetOrDie("status").int32_value() >= 500;
      out->Emit(record.GetOrDie("app"), Value::Int32(is_error ? 1 : 0));
    };
    job.reducer = [](const Value& key, const std::vector<Value>& values,
                     Emitter* out) {
      int64_t errors = 0;
      for (const Value& v : values) errors += v.int32_value();
      out->Emit(key,
                Value::Double(1000.0 * errors / values.size()));
    };
    JobReport report;
    if (!runner.Run(job, &report).ok()) return 1;
    std::printf("error rate per application (per 1000 requests):\n");
    for (const auto& [key, value] : report.output) {
      std::printf("  %-6s %6.1f\n", key.string_value().c_str(),
                  value.double_value());
    }
    std::printf("  [read %.1f MB of the log]\n\n", report.BytesRead() / 1e6);
  }

  // Report 2: top 5 URLs by bytes served (reads url + bytes only).
  {
    Job job;
    job.config.input_paths = {"/logs/day1"};
    job.config.projection = {"url", "bytes"};
    job.input_format = std::make_shared<ColumnInputFormat>();
    job.mapper = [](Record& record, Emitter* out) {
      out->Emit(record.GetOrDie("url"),
                Value::Int64(record.GetOrDie("bytes").int32_value()));
    };
    job.reducer = [](const Value& key, const std::vector<Value>& values,
                     Emitter* out) {
      int64_t total = 0;
      for (const Value& v : values) total += v.int64_value();
      out->Emit(key, Value::Int64(total));
    };
    JobReport report;
    if (!runner.Run(job, &report).ok()) return 1;
    std::sort(report.output.begin(), report.output.end(),
              [](const auto& a, const auto& b) {
                return b.second.int64_value() < a.second.int64_value();
              });
    std::printf("top 5 urls by bytes served:\n");
    for (size_t i = 0; i < 5 && i < report.output.size(); ++i) {
      std::printf("  %-24s %8.1f MB\n",
                  report.output[i].first.string_value().c_str(),
                  report.output[i].second.int64_value() / 1e6);
    }
    std::printf("  [read %.1f MB of the log]\n", report.BytesRead() / 1e6);
  }
  return 0;
}
