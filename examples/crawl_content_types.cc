// The paper's flagship workload (Fig. 1 / Section 6.3): over a crawl of
// URLInfo records, find every distinct content-type reported by pages
// whose URL contains "ibm.com/jp". Runs the identical job against a
// row-oriented SequenceFile and against CIF with DCSL metadata + lazy
// records, and prints the side-by-side cost.
//
//   build/examples/crawl_content_types

#include <cstdio>
#include <memory>

#include "cif/cif.h"
#include "cif/cof.h"
#include "formats/seq/seq_format.h"
#include "hdfs/mini_hdfs.h"
#include "mapreduce/engine.h"
#include "workload/crawl.h"

using namespace colmr;

namespace {

Status RunJob(MiniHdfs* fs, std::shared_ptr<InputFormat> format,
              const std::string& path, bool project_and_lazy,
              JobReport* report) {
  Job job;
  job.config.input_paths = {path};
  if (project_and_lazy) {
    job.config.projection = {"url", "metadata"};
    job.config.lazy_records = true;
  }
  job.input_format = std::move(format);
  // The map function from the paper's Fig. 1, against the generic Record
  // interface: identical whether records are eager or lazy.
  job.mapper = [](Record& record, Emitter* out) {
    const std::string& url = record.GetOrDie("url").string_value();
    if (url.find(kCrawlFilterPattern) != std::string::npos) {
      const Value* content_type =
          record.GetOrDie("metadata").FindMapEntry(kContentTypeKey);
      if (content_type != nullptr) {
        out->Emit(Value::String(content_type->string_value()), Value::Null());
      }
    }
  };
  // The reduce function: distinct keys.
  job.reducer = [](const Value& key, const std::vector<Value>&, Emitter* out) {
    out->Emit(key, Value::Null());
  };
  JobRunner runner(fs);
  return runner.Run(job, report);
}

}  // namespace

int main() {
  auto fs = std::make_unique<MiniHdfs>(
      ClusterConfig{}, std::make_unique<ColumnPlacementPolicy>());

  // Generate one day of crawl data and load it in both formats.
  Schema::Ptr schema = CrawlSchema();
  std::unique_ptr<SeqWriter> seq;
  Status s =
      SeqWriter::Open(fs.get(), "/data/2011-01-01.seq", schema,
                      SeqWriterOptions{}, &seq);
  if (!s.ok()) return 1;
  CofOptions cof_options;
  cof_options.column_overrides["metadata"] = {ColumnLayout::kDictSkipList,
                                              CodecType::kNone, 0};
  cof_options.default_column.layout = ColumnLayout::kSkipList;
  std::unique_ptr<CofWriter> cof;
  s = CofWriter::Open(fs.get(), "/data/2011-01-01", schema, cof_options,
                      &cof);
  if (!s.ok()) return 1;

  CrawlGenerator gen(20110101, CrawlGeneratorOptions{});
  const int kRecords = 20000;
  for (int i = 0; i < kRecords; ++i) {
    const Value record = gen.Next();
    seq->WriteRecord(record);
    cof->WriteRecord(record);
  }
  seq->Close();
  cof->Close();
  auto dataset_mb = [&](const std::string& path) {
    std::vector<std::string> files;
    if (!ExpandInputPaths(fs.get(), {path}, &files).ok()) return 0.0;
    uint64_t total = 0;
    for (const std::string& file : files) {
      uint64_t size = 0;
      fs->GetFileSize(file, &size);
      total += size;
    }
    return total / 1e6;
  };
  std::printf("crawled %d pages (%.1f MB as SEQ, %.1f MB as CIF)\n\n",
              kRecords, dataset_mb("/data/2011-01-01.seq"),
              dataset_mb("/data/2011-01-01"));

  JobReport seq_report, cif_report;
  s = RunJob(fs.get(), std::make_shared<SeqInputFormat>(),
             "/data/2011-01-01.seq", false, &seq_report);
  if (!s.ok()) {
    std::fprintf(stderr, "seq job: %s\n", s.ToString().c_str());
    return 1;
  }
  s = RunJob(fs.get(), std::make_shared<ColumnInputFormat>(),
             "/data/2011-01-01", true, &cif_report);
  if (!s.ok()) {
    std::fprintf(stderr, "cif job: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("distinct content-types on ibm.com/jp pages:\n");
  for (const auto& [key, value] : cif_report.output) {
    std::printf("  %s\n", key.string_value().c_str());
  }

  std::printf("\n%-28s %12s %12s\n", "", "SEQ", "CIF(lazy)");
  std::printf("%-28s %10.1fMB %10.1fMB\n", "bytes read from HDFS",
              seq_report.BytesRead() / 1e6, cif_report.BytesRead() / 1e6);
  std::printf("%-28s %11.3fs %11.3fs\n", "simulated map time",
              seq_report.map_phase_seconds, cif_report.map_phase_seconds);
  std::printf("%-28s %11.3fs %11.3fs\n", "simulated total time",
              seq_report.total_seconds, cif_report.total_seconds);
  std::printf("\ncolumn-oriented speedup on bytes: %.1fx\n",
              static_cast<double>(seq_report.BytesRead()) /
                  static_cast<double>(cif_report.BytesRead()));
  return 0;
}
