# Empty compiler generated dependencies file for crawl_content_types.
# This may be replaced when dependencies are built.
