file(REMOVE_RECURSE
  "CMakeFiles/crawl_content_types.dir/crawl_content_types.cc.o"
  "CMakeFiles/crawl_content_types.dir/crawl_content_types.cc.o.d"
  "crawl_content_types"
  "crawl_content_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crawl_content_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
