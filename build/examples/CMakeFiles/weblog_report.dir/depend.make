# Empty dependencies file for weblog_report.
# This may be replaced when dependencies are built.
