file(REMOVE_RECURSE
  "CMakeFiles/weblog_report.dir/weblog_report.cc.o"
  "CMakeFiles/weblog_report.dir/weblog_report.cc.o.d"
  "weblog_report"
  "weblog_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weblog_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
