# Empty dependencies file for bench_fig9_rowgroup.
# This may be replaced when dependencies are built.
