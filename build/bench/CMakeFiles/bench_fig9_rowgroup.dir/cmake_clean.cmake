file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_rowgroup.dir/bench_fig9_rowgroup.cc.o"
  "CMakeFiles/bench_fig9_rowgroup.dir/bench_fig9_rowgroup.cc.o.d"
  "bench_fig9_rowgroup"
  "bench_fig9_rowgroup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_rowgroup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
