file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_selectivity.dir/bench_fig10_selectivity.cc.o"
  "CMakeFiles/bench_fig10_selectivity.dir/bench_fig10_selectivity.cc.o.d"
  "bench_fig10_selectivity"
  "bench_fig10_selectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_selectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
