# Empty compiler generated dependencies file for bench_fig10_selectivity.
# This may be replaced when dependencies are built.
