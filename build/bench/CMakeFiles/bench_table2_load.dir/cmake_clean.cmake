file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_load.dir/bench_table2_load.cc.o"
  "CMakeFiles/bench_table2_load.dir/bench_table2_load.cc.o.d"
  "bench_table2_load"
  "bench_table2_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
