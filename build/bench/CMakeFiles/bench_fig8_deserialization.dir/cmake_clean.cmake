file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_deserialization.dir/bench_fig8_deserialization.cc.o"
  "CMakeFiles/bench_fig8_deserialization.dir/bench_fig8_deserialization.cc.o.d"
  "bench_fig8_deserialization"
  "bench_fig8_deserialization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_deserialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
