# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(codec_test "/root/repo/build/tests/codec_test")
set_tests_properties(codec_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(serde_test "/root/repo/build/tests/serde_test")
set_tests_properties(serde_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(hdfs_test "/root/repo/build/tests/hdfs_test")
set_tests_properties(hdfs_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(text_format_test "/root/repo/build/tests/text_format_test")
set_tests_properties(text_format_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(seq_test "/root/repo/build/tests/seq_test")
set_tests_properties(seq_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(rcfile_test "/root/repo/build/tests/rcfile_test")
set_tests_properties(rcfile_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cif_test "/root/repo/build/tests/cif_test")
set_tests_properties(cif_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(mapreduce_test "/root/repo/build/tests/mapreduce_test")
set_tests_properties(mapreduce_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(recovery_test "/root/repo/build/tests/recovery_test")
set_tests_properties(recovery_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(robustness_test "/root/repo/build/tests/robustness_test")
set_tests_properties(robustness_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;0;")
