# Empty compiler generated dependencies file for rcfile_test.
# This may be replaced when dependencies are built.
