# Empty compiler generated dependencies file for cif_test.
# This may be replaced when dependencies are built.
