file(REMOVE_RECURSE
  "CMakeFiles/cif_test.dir/cif_test.cc.o"
  "CMakeFiles/cif_test.dir/cif_test.cc.o.d"
  "cif_test"
  "cif_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cif_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
