file(REMOVE_RECURSE
  "libcolmr.a"
)
