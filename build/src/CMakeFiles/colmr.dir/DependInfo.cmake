
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cif/cif.cc" "src/CMakeFiles/colmr.dir/cif/cif.cc.o" "gcc" "src/CMakeFiles/colmr.dir/cif/cif.cc.o.d"
  "/root/repo/src/cif/cof.cc" "src/CMakeFiles/colmr.dir/cif/cof.cc.o" "gcc" "src/CMakeFiles/colmr.dir/cif/cof.cc.o.d"
  "/root/repo/src/cif/column_reader.cc" "src/CMakeFiles/colmr.dir/cif/column_reader.cc.o" "gcc" "src/CMakeFiles/colmr.dir/cif/column_reader.cc.o.d"
  "/root/repo/src/cif/column_writer.cc" "src/CMakeFiles/colmr.dir/cif/column_writer.cc.o" "gcc" "src/CMakeFiles/colmr.dir/cif/column_writer.cc.o.d"
  "/root/repo/src/cif/lazy_record.cc" "src/CMakeFiles/colmr.dir/cif/lazy_record.cc.o" "gcc" "src/CMakeFiles/colmr.dir/cif/lazy_record.cc.o.d"
  "/root/repo/src/cif/loader.cc" "src/CMakeFiles/colmr.dir/cif/loader.cc.o" "gcc" "src/CMakeFiles/colmr.dir/cif/loader.cc.o.d"
  "/root/repo/src/common/coding.cc" "src/CMakeFiles/colmr.dir/common/coding.cc.o" "gcc" "src/CMakeFiles/colmr.dir/common/coding.cc.o.d"
  "/root/repo/src/common/crc32.cc" "src/CMakeFiles/colmr.dir/common/crc32.cc.o" "gcc" "src/CMakeFiles/colmr.dir/common/crc32.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/colmr.dir/common/random.cc.o" "gcc" "src/CMakeFiles/colmr.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/colmr.dir/common/status.cc.o" "gcc" "src/CMakeFiles/colmr.dir/common/status.cc.o.d"
  "/root/repo/src/compress/codec.cc" "src/CMakeFiles/colmr.dir/compress/codec.cc.o" "gcc" "src/CMakeFiles/colmr.dir/compress/codec.cc.o.d"
  "/root/repo/src/compress/dictionary.cc" "src/CMakeFiles/colmr.dir/compress/dictionary.cc.o" "gcc" "src/CMakeFiles/colmr.dir/compress/dictionary.cc.o.d"
  "/root/repo/src/compress/lzf.cc" "src/CMakeFiles/colmr.dir/compress/lzf.cc.o" "gcc" "src/CMakeFiles/colmr.dir/compress/lzf.cc.o.d"
  "/root/repo/src/compress/zlite.cc" "src/CMakeFiles/colmr.dir/compress/zlite.cc.o" "gcc" "src/CMakeFiles/colmr.dir/compress/zlite.cc.o.d"
  "/root/repo/src/formats/detect.cc" "src/CMakeFiles/colmr.dir/formats/detect.cc.o" "gcc" "src/CMakeFiles/colmr.dir/formats/detect.cc.o.d"
  "/root/repo/src/formats/rcfile/rcfile.cc" "src/CMakeFiles/colmr.dir/formats/rcfile/rcfile.cc.o" "gcc" "src/CMakeFiles/colmr.dir/formats/rcfile/rcfile.cc.o.d"
  "/root/repo/src/formats/rcfile/rcfile_format.cc" "src/CMakeFiles/colmr.dir/formats/rcfile/rcfile_format.cc.o" "gcc" "src/CMakeFiles/colmr.dir/formats/rcfile/rcfile_format.cc.o.d"
  "/root/repo/src/formats/seq/seq_file.cc" "src/CMakeFiles/colmr.dir/formats/seq/seq_file.cc.o" "gcc" "src/CMakeFiles/colmr.dir/formats/seq/seq_file.cc.o.d"
  "/root/repo/src/formats/seq/seq_format.cc" "src/CMakeFiles/colmr.dir/formats/seq/seq_format.cc.o" "gcc" "src/CMakeFiles/colmr.dir/formats/seq/seq_format.cc.o.d"
  "/root/repo/src/formats/text/text_format.cc" "src/CMakeFiles/colmr.dir/formats/text/text_format.cc.o" "gcc" "src/CMakeFiles/colmr.dir/formats/text/text_format.cc.o.d"
  "/root/repo/src/hdfs/cost_model.cc" "src/CMakeFiles/colmr.dir/hdfs/cost_model.cc.o" "gcc" "src/CMakeFiles/colmr.dir/hdfs/cost_model.cc.o.d"
  "/root/repo/src/hdfs/mini_hdfs.cc" "src/CMakeFiles/colmr.dir/hdfs/mini_hdfs.cc.o" "gcc" "src/CMakeFiles/colmr.dir/hdfs/mini_hdfs.cc.o.d"
  "/root/repo/src/hdfs/placement.cc" "src/CMakeFiles/colmr.dir/hdfs/placement.cc.o" "gcc" "src/CMakeFiles/colmr.dir/hdfs/placement.cc.o.d"
  "/root/repo/src/hdfs/reader.cc" "src/CMakeFiles/colmr.dir/hdfs/reader.cc.o" "gcc" "src/CMakeFiles/colmr.dir/hdfs/reader.cc.o.d"
  "/root/repo/src/mapreduce/engine.cc" "src/CMakeFiles/colmr.dir/mapreduce/engine.cc.o" "gcc" "src/CMakeFiles/colmr.dir/mapreduce/engine.cc.o.d"
  "/root/repo/src/mapreduce/input_format.cc" "src/CMakeFiles/colmr.dir/mapreduce/input_format.cc.o" "gcc" "src/CMakeFiles/colmr.dir/mapreduce/input_format.cc.o.d"
  "/root/repo/src/serde/boxed.cc" "src/CMakeFiles/colmr.dir/serde/boxed.cc.o" "gcc" "src/CMakeFiles/colmr.dir/serde/boxed.cc.o.d"
  "/root/repo/src/serde/encoding.cc" "src/CMakeFiles/colmr.dir/serde/encoding.cc.o" "gcc" "src/CMakeFiles/colmr.dir/serde/encoding.cc.o.d"
  "/root/repo/src/serde/record.cc" "src/CMakeFiles/colmr.dir/serde/record.cc.o" "gcc" "src/CMakeFiles/colmr.dir/serde/record.cc.o.d"
  "/root/repo/src/serde/schema.cc" "src/CMakeFiles/colmr.dir/serde/schema.cc.o" "gcc" "src/CMakeFiles/colmr.dir/serde/schema.cc.o.d"
  "/root/repo/src/serde/value.cc" "src/CMakeFiles/colmr.dir/serde/value.cc.o" "gcc" "src/CMakeFiles/colmr.dir/serde/value.cc.o.d"
  "/root/repo/src/workload/crawl.cc" "src/CMakeFiles/colmr.dir/workload/crawl.cc.o" "gcc" "src/CMakeFiles/colmr.dir/workload/crawl.cc.o.d"
  "/root/repo/src/workload/synthetic.cc" "src/CMakeFiles/colmr.dir/workload/synthetic.cc.o" "gcc" "src/CMakeFiles/colmr.dir/workload/synthetic.cc.o.d"
  "/root/repo/src/workload/weblog.cc" "src/CMakeFiles/colmr.dir/workload/weblog.cc.o" "gcc" "src/CMakeFiles/colmr.dir/workload/weblog.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
