# Empty dependencies file for colmr.
# This may be replaced when dependencies are built.
