file(REMOVE_RECURSE
  "CMakeFiles/colmr_cli.dir/colmr_cli.cc.o"
  "CMakeFiles/colmr_cli.dir/colmr_cli.cc.o.d"
  "colmr"
  "colmr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colmr_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
