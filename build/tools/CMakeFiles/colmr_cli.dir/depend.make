# Empty dependencies file for colmr_cli.
# This may be replaced when dependencies are built.
