// Ablation for the Section 5.2 design choice: how much do skip lists,
// compressed blocks, and DCSL save when the reader touches 1-in-N rows of
// a map column? Sweeps the access stride across every column layout and
// reports bytes fetched and scan time — the data behind choosing skip
// blocks at 10/100/1000 records.

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/datasets.h"
#include "cif/column_reader.h"
#include "cif/column_writer.h"
#include "common/stopwatch.h"
#include "workload/crawl.h"

namespace colmr {
namespace {

using bench::Die;

constexpr uint64_t kBaseRows = 60000;

struct Result {
  double seconds;
  uint64_t bytes;
};

Result Sweep(MiniHdfs* fs, const std::string& path, uint64_t rows,
             uint64_t stride) {
  IoStats stats;
  std::unique_ptr<ColumnFileReader> reader;
  Die(ColumnFileReader::Open(fs, path, ReadContext{kAnyNode, &stats},
                             &reader),
      "open");
  uint64_t sink = 0;
  Stopwatch watch;
  uint64_t row = 0;
  while (row + stride <= rows) {
    Die(reader->SkipRows(stride - 1), "skip");
    Value v;
    Die(reader->ReadValue(&v), "read");
    sink += v.map_entries().size();
    row += stride;
  }
  const double cpu = watch.ElapsedSeconds();
  (void)sink;
  CostModel model(fs->config());
  return {model.TaskSeconds({cpu, stats}), stats.TotalBytes()};
}

}  // namespace
}  // namespace colmr

int main() {
  using namespace colmr;
  const uint64_t rows = bench::ScaledCount(kBaseRows);
  auto fs = std::make_unique<MiniHdfs>(
      bench::PaperCluster(), std::make_unique<ColumnPlacementPolicy>(13));
  Schema::Ptr type = Schema::Map(Schema::String());

  // One heavy map column (~HTTP headers) per layout.
  const std::vector<std::pair<std::string, ColumnOptions>> layouts = {
      {"plain", {ColumnLayout::kPlain, CodecType::kNone, 0}},
      {"skiplist", {ColumnLayout::kSkipList, CodecType::kNone, 0}},
      {"blocks-lzf", {ColumnLayout::kCompressedBlocks, CodecType::kLzf,
                      64 * 1024}},
      {"blocks-zlite", {ColumnLayout::kCompressedBlocks, CodecType::kZlite,
                        64 * 1024}},
      {"dcsl", {ColumnLayout::kDictSkipList, CodecType::kNone, 0}},
  };

  std::fprintf(stderr, "skiplist ablation: %llu rows x %zu layouts...\n",
               static_cast<unsigned long long>(rows), layouts.size());
  for (const auto& [name, options] : layouts) {
    std::unique_ptr<ColumnFileWriter> writer;
    Die(ColumnFileWriter::Create(fs.get(), "/" + name, type, options,
                                 &writer),
        "create");
    // Wide-map profile: heavy map values (~1.2 KB/row) so 1000-row skips
    // jump ~1 MB — big enough that a seek beats reading through, as in
    // the paper's datasets.
    CrawlGenerator gen =
        bench::MakeCrawlGenerator(bench::CrawlProfile::kWideMap);
    for (uint64_t i = 0; i < rows; ++i) {
      // Reuse the crawl metadata map as the column value.
      Die(writer->Append(gen.Next().elements()[4]), "append");
    }
    Die(writer->Close(), "close");
  }

  bench::Report report("skiplist");
  report.Config("rows", rows);
  report.Config("workload", "crawl/wide-map");

  std::printf("=== Skip-list ablation: read 1-in-N rows of a map column ===\n");
  std::printf("%-14s", "Layout");
  const std::vector<uint64_t> strides = {1, 10, 100, 1000, 10000};
  for (uint64_t stride : strides) std::printf("     1-in-%-6llu",
                                              (unsigned long long)stride);
  std::printf("\n");
  for (const auto& [name, options] : layouts) {
    std::printf("%-14s", name.c_str());
    for (uint64_t stride : strides) {
      Result r = Sweep(fs.get(), "/" + name, rows, stride);
      std::printf(" %6.3fs(%4sMB)", r.seconds, bench::Mb(r.bytes).c_str());
      report.AddRow()
          .Set("layout", name)
          .Set("stride", stride)
          .Set("seconds", r.seconds)
          .Set("bytes_read", r.bytes);
    }
    std::printf("\n");
  }
  report.Write();
  std::printf(
      "\nexpected: plain pays full decode cost at every stride; skiplist "
      "and dcsl fetch\nless as the stride grows; compressed blocks help "
      "only once whole blocks are\nskipped (stride >> rows-per-block).\n");
  return 0;
}
