// Reproduces Table 1: the full crawl job — find distinct content-types of
// pages whose URL contains "ibm.com/jp" (Fig. 1) — across eleven storage
// layouts: SEQ {uncompressed, record, block, custom}, RCFile {plain,
// compressed}, and CIF {plain, ZLIB, LZO, skip lists, DCSL}. For each
// layout we report bytes read from HDFS, simulated map time, simulated
// total job time, and speedups relative to SEQ-custom, exactly as the
// paper's table does.
//
// Paper shape: SEQ variants are slowest (they read the multi-KB content
// column); RCFile-comp ~3.7x over SEQ-custom; CIF ~60x (map time) from
// whole-column I/O elimination; CIF-SL adds lazy-record savings; CIF-DCSL
// is best (~108x map time, ~12.8x total).

#include <cstdio>
#include <functional>
#include <memory>
#include <set>

#include "bench/bench_util.h"
#include "bench/datasets.h"
#include "cif/cif.h"
#include "cif/cof.h"
#include "compress/codec.h"
#include "formats/rcfile/rcfile_format.h"
#include "formats/seq/seq_format.h"
#include "mapreduce/engine.h"
#include "workload/crawl.h"

namespace colmr {
namespace {

using bench::Die;

constexpr uint64_t kBaseRecords = 30000;  // ~100 MB (paper: 6.4 TB)
constexpr uint64_t kSeed = bench::kDatasetSeed;

enum class LayoutKind { kSeq, kRcFile, kCif };

struct LayoutSpec {
  const char* name;
  LayoutKind kind;
  // SEQ:
  SeqCompression seq_compression = SeqCompression::kNone;
  CodecType seq_codec = CodecType::kLzf;
  bool custom_content = false;  // SEQ-custom: app-compressed content column
  // RCFile:
  CodecType rc_codec = CodecType::kNone;
  // CIF: metadata column layout (other columns stay plain, as the paper
  // varies only the metadata layout in this experiment).
  ColumnOptions metadata_column;
  bool lazy = false;
};

/// Writes the crawl dataset in the given layout and runs the job.
struct RowResult {
  uint64_t bytes_read = 0;
  double map_seconds = 0;
  double total_seconds = 0;
};

RowResult RunLayout(const LayoutSpec& spec, uint64_t records) {
  // Fresh filesystem per layout keeps memory bounded; CPP placement is
  // used throughout (Section 6.4 evaluates placement separately).
  ClusterConfig cluster = bench::PaperCluster();
  // Scaled with the dataset so tasks fill several waves; "map time" is the
  // paper's per-slot average, so the slot count only scales all rows.
  cluster.num_nodes = 2;
  auto fs = std::make_unique<MiniHdfs>(
      cluster, std::make_unique<ColumnPlacementPolicy>(kSeed));

  Schema::Ptr schema = CrawlSchema();
  std::unique_ptr<DatasetWriter> writer;
  if (spec.kind == LayoutKind::kSeq) {
    SeqWriterOptions options;
    options.compression = spec.seq_compression;
    options.codec = spec.seq_codec;
    std::unique_ptr<SeqWriter> seq;
    Die(SeqWriter::Open(fs.get(), "/data", schema, options, &seq), "seq");
    writer = std::move(seq);
  } else if (spec.kind == LayoutKind::kRcFile) {
    RcFileWriterOptions options;
    options.codec = spec.rc_codec;
    std::unique_ptr<RcFileWriter> rc;
    Die(RcFileWriter::Open(fs.get(), "/data", schema, options, &rc), "rc");
    writer = std::move(rc);
  } else {
    CofOptions options;
    options.split_target_bytes = 32ull << 20;
    options.column_overrides["metadata"] = spec.metadata_column;
    std::unique_ptr<CofWriter> cof;
    Die(CofWriter::Open(fs.get(), "/data", schema, options, &cof), "cof");
    writer = std::move(cof);
  }

  // Heavy-content profile: the paper's content column holds "several KB
  // of data for each record" and dominates the row — what makes every SEQ
  // variant slow, while the HTTP-header-style metadata maps cost real CPU
  // to deserialize eagerly (the CIF-SL/DCSL savings).
  CrawlGenerator gen =
      bench::MakeCrawlGenerator(bench::CrawlProfile::kHeavyContent);
  const Codec* lzf = GetCodec(CodecType::kLzf);
  for (uint64_t i = 0; i < records; ++i) {
    Value record = gen.Next();
    if (spec.custom_content) {
      // SEQ-custom: the application compresses the content column itself
      // before handing records to the writer (paper Section 6.3).
      Buffer compressed;
      Die(lzf->Compress(record.elements()[6].bytes_value(), &compressed),
          "content compress");
      record.mutable_elements()->at(6) = Value::Bytes(compressed.TakeString());
    }
    Die(writer->WriteRecord(record), "write");
  }
  Die(writer->Close(), "close");

  Job job;
  job.config.input_paths = {"/data"};
  if (spec.kind != LayoutKind::kSeq) {
    job.config.projection = {"url", "metadata"};
  }
  job.config.lazy_records = spec.lazy;
  switch (spec.kind) {
    case LayoutKind::kSeq:
      job.input_format = std::make_shared<SeqInputFormat>();
      break;
    case LayoutKind::kRcFile:
      job.input_format = std::make_shared<RcFileInputFormat>();
      break;
    case LayoutKind::kCif:
      job.input_format = std::make_shared<ColumnInputFormat>();
      break;
  }
  job.mapper = [](Record& record, Emitter* out) {
    const std::string& url = record.GetOrDie("url").string_value();
    if (url.find(kCrawlFilterPattern) != std::string::npos) {
      const Value* ct =
          record.GetOrDie("metadata").FindMapEntry(kContentTypeKey);
      if (ct != nullptr) {
        out->Emit(Value::String(ct->string_value()), Value::Null());
      }
    }
  };
  job.reducer = [](const Value& key, const std::vector<Value>&, Emitter* out) {
    out->Emit(key, Value::Null());
  };

  JobRunner runner(fs.get());
  JobReport report;
  Die(runner.Run(job, &report), "run");
  // Total time under the paper's map-time metric: per-slot map load plus
  // the (format-independent) shuffle and reduce phases.
  const double total = report.map_slot_seconds + report.shuffle_seconds +
                       report.reduce_phase_seconds;
  return {report.BytesRead(), report.map_slot_seconds, total};
}

}  // namespace
}  // namespace colmr

int main() {
  using namespace colmr;
  const uint64_t records = bench::ScaledCount(kBaseRecords);
  std::fprintf(stderr, "table1: %llu crawl records per layout...\n",
               static_cast<unsigned long long>(records));
  bench::Report report("table1_formats");
  report.Config("records", records);
  report.Config("seed", kSeed);
  report.Config("workload", "crawl/heavy-content");

  ColumnOptions plain;
  ColumnOptions zlib_blocks{ColumnLayout::kCompressedBlocks,
                            CodecType::kZlite, 64 * 1024};
  ColumnOptions lzo_blocks{ColumnLayout::kCompressedBlocks, CodecType::kLzf,
                           64 * 1024};
  ColumnOptions skip_list{ColumnLayout::kSkipList, CodecType::kNone, 0};
  ColumnOptions dcsl{ColumnLayout::kDictSkipList, CodecType::kNone, 0};

  std::vector<LayoutSpec> specs;
  specs.push_back({"SEQ-uncomp", LayoutKind::kSeq, SeqCompression::kNone,
                   CodecType::kNone, false, CodecType::kNone, plain, false});
  specs.push_back({"SEQ-record", LayoutKind::kSeq, SeqCompression::kRecord,
                   CodecType::kLzf, false, CodecType::kNone, plain, false});
  specs.push_back({"SEQ-block", LayoutKind::kSeq, SeqCompression::kBlock,
                   CodecType::kLzf, false, CodecType::kNone, plain, false});
  specs.push_back({"SEQ-custom", LayoutKind::kSeq, SeqCompression::kNone,
                   CodecType::kNone, true, CodecType::kNone, plain, false});
  specs.push_back({"RCFile", LayoutKind::kRcFile, SeqCompression::kNone,
                   CodecType::kNone, false, CodecType::kNone, plain, false});
  specs.push_back({"RCFile-comp", LayoutKind::kRcFile, SeqCompression::kNone,
                   CodecType::kNone, false, CodecType::kZlite, plain, false});
  // The compressed-block variants use lazy records too: unaccessed blocks
  // are then skipped without decompression (Section 5.3, "lazy
  // decompression").
  specs.push_back({"CIF-ZLIB", LayoutKind::kCif, SeqCompression::kNone,
                   CodecType::kNone, false, CodecType::kNone, zlib_blocks,
                   true});
  specs.push_back({"CIF", LayoutKind::kCif, SeqCompression::kNone,
                   CodecType::kNone, false, CodecType::kNone, plain, false});
  specs.push_back({"CIF-LZO", LayoutKind::kCif, SeqCompression::kNone,
                   CodecType::kNone, false, CodecType::kNone, lzo_blocks,
                   true});
  specs.push_back({"CIF-SL", LayoutKind::kCif, SeqCompression::kNone,
                   CodecType::kNone, false, CodecType::kNone, skip_list,
                   true});
  specs.push_back({"CIF-DCSL", LayoutKind::kCif, SeqCompression::kNone,
                   CodecType::kNone, false, CodecType::kNone, dcsl, true});

  std::printf("=== Table 1: storage format comparison on the crawl job ===\n");
  std::printf("%-12s %10s %10s %9s %10s %9s\n", "Layout", "Read(MB)",
              "Map(s)", "MapRatio", "Total(s)", "TotRatio");

  double base_map = 0, base_total = 0;
  std::vector<std::pair<std::string, RowResult>> results;
  for (const LayoutSpec& spec : specs) {
    RowResult row = RunLayout(spec, records);
    if (std::string(spec.name) == "SEQ-custom") {
      base_map = row.map_seconds;
      base_total = row.total_seconds;
    }
    results.emplace_back(spec.name, row);
    std::fprintf(stderr, "  %s done\n", spec.name);
  }
  for (const auto& [name, row] : results) {
    std::printf("%-12s %10s %10.2f %8.1fx %10.2f %8.1fx\n", name.c_str(),
                bench::Mb(row.bytes_read).c_str(), row.map_seconds,
                base_map / row.map_seconds, row.total_seconds,
                base_total / row.total_seconds);
    report.AddRow()
        .Set("layout", name)
        .Set("bytes_read", row.bytes_read)
        .Set("map_seconds", row.map_seconds)
        .Set("map_ratio", base_map / row.map_seconds)
        .Set("total_seconds", row.total_seconds)
        .Set("total_ratio", base_total / row.total_seconds);
  }
  report.Write();
  std::printf(
      "\npaper shape: SEQ variants slowest; RCFile-comp ~3.7x map-time over "
      "SEQ-custom;\nCIF ~61x; CIF-SL ~82x; CIF-DCSL best ~108x map / ~12.8x "
      "total.\n");
  return 0;
}
