// Fault injection and recovery on the Table 1 scan workload: the crawl
// job (distinct content-types of `ibm.com/jp` pages) over CIF with a
// {url, metadata} projection, run fault-free and under injected faults —
// transient per-replica read errors at p ∈ {0.01, 0.05}, and p = 0.05
// combined with a permanently corrupted replica of a column file the
// projection reads.
//
// What to look for: the job completes under every configuration, its
// output is byte-identical to the fault-free run (every completed read is
// checksum-verified, so the serving replica never matters), and the
// failure columns show the recovery machinery working — failovers for
// per-replica errors, checksum failures + a namenode bad-replica mark for
// the corruption, task retries where a whole attempt exhausted every
// replica of some block.
//
// The io buffer is shrunk below the paper's 128 KB for the fault rows so
// the scan issues enough replica reads for p = 0.05 to produce visible
// failure events at this dataset scale; COLMR_FAULT_SEED overrides the
// fault schedule seed.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/datasets.h"
#include "cif/cif.h"
#include "cif/cof.h"
#include "mapreduce/engine.h"
#include "workload/crawl.h"

namespace colmr {
namespace {

using bench::Die;

constexpr uint64_t kBaseRecords = 8000;
constexpr uint64_t kSeed = 7211;

uint64_t FaultSeed() {
  const char* env = std::getenv("COLMR_FAULT_SEED");
  return env == nullptr ? 17 : std::strtoull(env, nullptr, 10);
}

std::unique_ptr<MiniHdfs> BuildDataset(uint64_t records,
                                       uint64_t io_buffer_size) {
  ClusterConfig cluster = bench::PaperCluster();
  cluster.num_nodes = 8;
  cluster.io_buffer_size = io_buffer_size;
  auto fs = std::make_unique<MiniHdfs>(
      cluster, std::make_unique<ColumnPlacementPolicy>(kSeed));

  CofOptions options;
  options.split_target_bytes = 512 * 1024;
  std::unique_ptr<CofWriter> writer;
  Die(CofWriter::Open(fs.get(), "/data", CrawlSchema(), options, &writer),
      "cof");
  CrawlGenerator gen =
      bench::MakeCrawlGenerator(bench::CrawlProfile::kCompactContent);
  bench::FillWriters(gen, records, {writer.get()});
  return fs;
}

Job ScanJob() {
  Job job;
  job.config.input_paths = {"/data"};
  job.config.projection = {"url", "metadata"};
  job.input_format = std::make_shared<ColumnInputFormat>();
  job.mapper = [](Record& record, Emitter* out) {
    const std::string& url = record.GetOrDie("url").string_value();
    if (url.find(kCrawlFilterPattern) != std::string::npos) {
      const Value* ct =
          record.GetOrDie("metadata").FindMapEntry(kContentTypeKey);
      if (ct != nullptr) {
        out->Emit(Value::String(ct->string_value()), Value::Null());
      }
    }
  };
  job.reducer = [](const Value& key, const std::vector<Value>&, Emitter* out) {
    out->Emit(key, Value::Null());
  };
  return job;
}

/// Corrupts the replica of /data's first url.col that will serve the scan:
/// the task node of the split that reads it (a fault-free dry run reveals
/// the deterministic schedule), or the lowest-id replica for remote tasks.
void CorruptServingReplica(MiniHdfs* fs) {
  Job probe = ScanJob();
  std::vector<InputSplit> splits;
  Die(probe.input_format->GetSplits(fs, probe.config, &splits), "splits");
  std::string victim;
  size_t victim_split = 0;
  for (size_t i = 0; i < splits.size() && victim.empty(); ++i) {
    for (const std::string& path : splits[i].paths) {
      if (path.size() >= 8 &&
          path.compare(path.size() - 8, 8, "/url.col") == 0) {
        victim = path;
        victim_split = i;
        break;
      }
    }
  }
  if (victim.empty()) Die(Status::NotFound("url.col"), "victim");
  JobRunner runner(fs);
  JobReport dry;
  Die(runner.Run(probe, &dry), "dry run");
  const NodeId task_node = dry.map_tasks[victim_split].node;

  std::vector<BlockInfo> blocks;
  Die(fs->GetBlockLocations(victim, &blocks), "locations");
  std::vector<NodeId> sorted = blocks[0].replicas;
  std::sort(sorted.begin(), sorted.end());
  NodeId serving = sorted[0];
  for (NodeId node : sorted) {
    if (node == task_node) serving = task_node;
  }
  size_t ordinal = 0;
  while (blocks[0].replicas[ordinal] != serving) ++ordinal;
  Die(fs->CorruptReplica(victim, 0, ordinal, nullptr), "corrupt");
}

std::string SerializeOutput(const JobReport& report) {
  std::string out;
  for (const auto& [key, value] : report.output) {
    out += key.ToString() + "\t" + value.ToString() + "\n";
  }
  return out;
}

}  // namespace
}  // namespace colmr

int main() {
  using namespace colmr;
  const uint64_t records = bench::ScaledCount(kBaseRecords);
  const uint64_t fault_seed = FaultSeed();

  struct Row {
    const char* label;
    double p;
    bool corrupt;
    uint64_t io_buffer;
  };
  // Fault-free row keeps the paper's 128 KB buffer (comparable to
  // bench_table1_formats); fault rows shrink it to 4 KB so the scan makes
  // enough replica reads for p to bite (see header comment).
  const Row rows[] = {
      {"p=0", 0, false, 128 * 1024},
      {"p=0 (4K buf)", 0, false, 4 * 1024},
      {"p=0.01", 0.01, false, 4 * 1024},
      {"p=0.05", 0.05, false, 4 * 1024},
      {"p=0.05+corrupt", 0.05, true, 4 * 1024},
  };

  bench::Report bench_report("fault_recovery");
  bench_report.Config("records", records);
  bench_report.Config("workload", "crawl/compact-content");
  bench_report.Config("fault_seed", fault_seed);

  std::printf("=== Fault injection: Table 1 scan workload ===\n");
  std::printf("(%llu crawl records, fault seed %llu)\n\n",
              static_cast<unsigned long long>(records),
              static_cast<unsigned long long>(fault_seed));
  std::printf("%-16s %8s %10s %8s %9s %9s %7s %12s\n", "faults", "tasks",
              "wall(s)", "retries", "failover", "crc-fail", "marks",
              "output=base");

  std::string baseline;
  for (const Row& row : rows) {
    auto fs = BuildDataset(records, row.io_buffer);
    if (row.corrupt) CorruptServingReplica(fs.get());
    if (row.p > 0) {
      FaultConfig faults;
      faults.seed = fault_seed;
      faults.read_error_p = row.p;
      fs->SetFaultConfig(faults);
    }

    JobRunner runner(fs.get());
    Job job = ScanJob();
    // Best-of-3 wall time; counts and output come from the last run and
    // are identical across runs up to bad-replica caching (a corrupt
    // replica is only discovered once per filesystem).
    double wall = 0;
    JobReport report;
    for (int run = 0; run < 3; ++run) {
      JobReport attempt;
      Die(runner.Run(job, &attempt), "run");
      if (run == 0 || attempt.wall_seconds < wall) wall = attempt.wall_seconds;
      if (run == 0) report = std::move(attempt);
    }

    const std::string output = SerializeOutput(report);
    if (baseline.empty()) baseline = output;
    std::printf("%-16s %8zu %10.3f %8llu %9llu %9llu %7llu %12s\n", row.label,
                report.map_tasks.size(), wall,
                static_cast<unsigned long long>(report.task_retries),
                static_cast<unsigned long long>(report.failover_reads),
                static_cast<unsigned long long>(report.checksum_failures),
                static_cast<unsigned long long>(fs->bad_replica_marks()),
                output == baseline ? "yes" : "NO");
    bench_report.AddRow()
        .Set("faults", row.label)
        .Set("read_error_p", row.p)
        .Set("corrupt_replica", row.corrupt)
        .Set("io_buffer_bytes", row.io_buffer)
        .Set("tasks", static_cast<uint64_t>(report.map_tasks.size()))
        .Set("wall_seconds", wall)
        .Set("task_retries", report.task_retries)
        .Set("failover_reads", report.failover_reads)
        .Set("checksum_failures", report.checksum_failures)
        .Set("bad_replica_marks", fs->bad_replica_marks())
        .Set("output_matches_baseline", output == baseline);
  }
  // === Straggler defense (DESIGN.md §11): one slow datanode, with and
  // without speculative execution. The victim node's tasks stall for real
  // on every read it serves; without speculation the job's wall clock eats
  // the whole injected latency, with speculation a backup attempt on a
  // fast replica holder wins and bounds the wall well below it.
  {
    auto fs = BuildDataset(records, 4 * 1024);
    Job probe = ScanJob();
    probe.config.parallelism = 1;
    JobRunner prober(fs.get());
    JobReport dry;
    Die(prober.Run(probe, &dry), "straggler probe");
    const NodeId victim = dry.map_tasks.empty() ? 0 : dry.map_tasks[0].node;
    const std::string base_output = SerializeOutput(dry);

    std::printf("\n=== Straggler defense: slow node %d, 25 ms/read ===\n",
                victim);
    std::printf("%-24s %10s %10s %8s %8s %6s %12s\n", "mode", "wall(s)",
                "stall(s)", "specd", "won", "lost", "output=base");

    double wall_nospec = 0;
    for (const bool speculative : {false, true}) {
      FaultConfig faults;
      faults.seed = fault_seed;
      faults.slow_nodes = {victim};
      faults.slow_read_latency_ms = 25;
      fs->SetFaultConfig(faults);

      Job job = ScanJob();
      job.config.parallelism = 4;
      job.config.speculative_execution = speculative;
      JobRunner runner(fs.get());
      double wall = 0;
      JobReport report;
      for (int run = 0; run < 3; ++run) {
        JobReport attempt;
        Die(runner.Run(job, &attempt), "straggler run");
        if (run == 0 || attempt.wall_seconds < wall) {
          wall = attempt.wall_seconds;
          report = std::move(attempt);
        }
      }
      // Injected latency the recorded attempts actually ate: with
      // speculation the straggler is superseded early, so this shrinks
      // along with the wall.
      double stall = 0;
      for (const TaskReport& task : report.map_tasks) {
        stall += task.io.stall_seconds;
      }
      if (!speculative) wall_nospec = wall;
      const std::string output = SerializeOutput(report);
      std::printf("%-24s %10.3f %10.3f %8llu %8llu %6llu %12s\n",
                  speculative ? "speculative" : "no speculation", wall, stall,
                  static_cast<unsigned long long>(report.speculative_launched),
                  static_cast<unsigned long long>(report.speculative_won),
                  static_cast<unsigned long long>(report.speculative_lost),
                  output == base_output ? "yes" : "NO");
      bench_report.AddRow()
          .Set("faults", speculative ? "slow-node+speculation"
                                     : "slow-node")
          .Set("slow_node", static_cast<uint64_t>(victim))
          .Set("slow_read_latency_ms", 25.0)
          .Set("wall_seconds", wall)
          .Set("stall_seconds", stall)
          .Set("speculative_launched", report.speculative_launched)
          .Set("speculative_won", report.speculative_won)
          .Set("speculative_lost", report.speculative_lost)
          .Set("output_matches_baseline", output == base_output)
          .Set("wall_bounded_below_nospec",
               speculative ? wall < wall_nospec : true);
    }
  }

  // === Crash-safe output commit under write faults: the same scan, now
  // writing its result through the OutputCommitter while block seals and
  // task commits fail probabilistically. Retried attempts absorb every
  // fault; the committed directory always ends complete with _SUCCESS.
  {
    auto fs = BuildDataset(records, 4 * 1024);
    FaultConfig faults;
    faults.seed = fault_seed;
    faults.write_error_p = 0.1;
    faults.task_commit_error_p = 0.3;
    fs->SetFaultConfig(faults);

    Job job = ScanJob();
    job.config.output_path = "/bench-out";
    job.config.parallelism = 4;
    job.config.max_task_attempts = 8;
    JobRunner runner(fs.get());
    double wall = 0;
    JobReport report;
    for (int run = 0; run < 3; ++run) {
      Die(fs->DeleteRecursive("/bench-out"), "clear output");
      JobReport attempt;
      Die(runner.Run(job, &attempt), "commit run");
      if (run == 0 || attempt.wall_seconds < wall) wall = attempt.wall_seconds;
      if (run == 0) report = std::move(attempt);
    }
    const bool success_marker = fs->Exists("/bench-out/_SUCCESS");
    std::printf(
        "\n=== Output commit under write faults (seal p=0.1, commit "
        "p=0.3) ===\n"
        "committed %llu tasks, %llu write faults, %llu write retries, "
        "%llu aborts; _SUCCESS %s\n",
        static_cast<unsigned long long>(report.tasks_committed),
        static_cast<unsigned long long>(report.write_faults),
        static_cast<unsigned long long>(report.write_retries),
        static_cast<unsigned long long>(report.commit_aborts),
        success_marker ? "present" : "ABSENT");
    bench_report.AddRow()
        .Set("faults", "write+commit")
        .Set("write_error_p", 0.1)
        .Set("task_commit_error_p", 0.3)
        .Set("wall_seconds", wall)
        .Set("tasks_committed", report.tasks_committed)
        .Set("write_faults", report.write_faults)
        .Set("write_retries", report.write_retries)
        .Set("commit_aborts", report.commit_aborts)
        .Set("success_marker", success_marker);
  }

  bench_report.Write();
  std::printf(
      "\nevery row completes with byte-identical output: completed reads\n"
      "are checksum-verified, so injected faults cost failovers and\n"
      "retries, never correctness. The corrupt row also leaves a namenode\n"
      "bad-replica mark for ReReplicate to repair. Speculation bounds the\n"
      "wall clock of a slow-node run below the injected straggler\n"
      "latency, and the commit protocol turns write faults into retries,\n"
      "never torn output.\n");
  return 0;
}
