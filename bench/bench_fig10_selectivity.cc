// Reproduces Figure 10 (Appendix B.4): benefits of lazy materialization
// and skip lists as the map-function predicate's selectivity varies. The
// job aggregates a value from the map-typed column for records whose
// string column matches a prefix; selectivity is swept from ~0% to 100%.
//
// Paper shape: at low selectivity CIF-SL clearly beats CIF (it never
// deserializes the map column for non-matching records); the two converge
// as selectivity approaches 100%, where CIF-SL's overhead over CIF is
// minor.

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/datasets.h"
#include "cif/cif.h"
#include "cif/cof.h"
#include "workload/synthetic.h"

namespace colmr {
namespace {

using bench::Die;

constexpr uint64_t kBaseRecords = 150000;

/// One pushdown-sweep arm over the zoned dataset: aggregates int0 for
/// rows with seq < cutoff, either by pushing `seq < cutoff` into the
/// format (zone-map pruning + selection vectors) or by checking it inside
/// the map function over a full scan. Returns sim-seconds; *sum and
/// *matches receive the aggregate for the outputs_match check.
double RunZonedScan(MiniHdfs* fs, const std::string& path, int64_t cutoff,
                    bool pushdown, uint64_t* sum, uint64_t* matches) {
  ColumnInputFormat format;
  JobConfig config;
  config.input_paths = {path};
  config.projection = {"seq", "int0"};
  if (pushdown) {
    Predicate predicate;
    Die(ParsePredicate("seq < " + std::to_string(cutoff), &predicate),
        "parse");
    config.predicate = std::make_shared<const Predicate>(std::move(predicate));
    config.predicate_pushdown = true;
  }
  *sum = 0;
  *matches = 0;
  bench::ScanResult result =
      bench::ScanDataset(fs, &format, config, [&](Record& record) {
        if (!pushdown &&
            record.GetOrDie("seq").int64_value() >= cutoff) {
          return;
        }
        *sum += static_cast<uint64_t>(record.GetOrDie("int0").int32_value());
        ++*matches;
      });
  return result.sim_seconds;
}

double RunScan(MiniHdfs* fs, const std::string& path, bool lazy) {
  ColumnInputFormat format;
  JobConfig config;
  config.input_paths = {path};
  config.projection = {"str0", "map0"};
  config.lazy_records = lazy;
  uint64_t sum = 0;
  uint64_t matches = 0;
  bench::ScanResult result =
      bench::ScanDataset(fs, &format, config, [&](Record& record) {
        const std::string& s = record.GetOrDie("str0").string_value();
        if (s.rfind(kMicrobenchMatchPrefix, 0) == 0) {
          // Aggregate the map values of matching records (the paper's
          // aggregation under a given key).
          for (const auto& [key, value] : record.GetOrDie("map0").map_entries()) {
            sum += static_cast<uint64_t>(value.int32_value());
          }
          ++matches;
        }
      });
  (void)sum;
  (void)matches;
  return result.sim_seconds;
}

}  // namespace
}  // namespace colmr

int main() {
  using namespace colmr;
  const uint64_t records = bench::ScaledCount(kBaseRecords);
  bench::Report report("fig10_selectivity");
  report.Config("records", records);
  report.Config("workload", "microbench");
  std::printf("=== Figure 10: lazy materialization vs selectivity ===\n");
  std::printf("%12s %12s %12s %10s\n", "Selectivity", "CIF(s)", "CIF-SL(s)",
              "speedup");

  for (double selectivity : {0.001, 0.01, 0.05, 0.2, 0.5, 0.8, 1.0}) {
    // Fresh dataset per point so the hit fraction is exact.
    auto fs = std::make_unique<MiniHdfs>(
        bench::PaperCluster(), std::make_unique<ColumnPlacementPolicy>(10));
    Schema::Ptr schema = MicrobenchSchema();
    CofOptions plain_options;
    plain_options.split_target_bytes = 8ull << 20;
    CofOptions sl_options = plain_options;
    sl_options.default_column.layout = ColumnLayout::kSkipList;
    sl_options.column_overrides["str0"] = ColumnOptions{};  // always read

    std::unique_ptr<CofWriter> plain, sl;
    Die(CofWriter::Open(fs.get(), "/plain", schema, plain_options, &plain),
        "plain");
    Die(CofWriter::Open(fs.get(), "/sl", schema, sl_options, &sl), "sl");
    MicrobenchGenerator gen = bench::MakeMicrobenchGenerator(selectivity);
    bench::FillWriters(gen, records, {plain.get(), sl.get()});

    const double cif_seconds = RunScan(fs.get(), "/plain", false);
    const double sl_seconds = RunScan(fs.get(), "/sl", true);
    std::printf("%11.1f%% %12.3f %12.3f %9.2fx\n", selectivity * 100,
                cif_seconds, sl_seconds, cif_seconds / sl_seconds);
    report.AddRow()
        .Set("selectivity", selectivity)
        .Set("cif_seconds", cif_seconds)
        .Set("cif_sl_seconds", sl_seconds)
        .Set("speedup", cif_seconds / sl_seconds);
  }
  // ---- Predicate-pushdown arm (DESIGN.md §13) ----
  // Zoned dataset: monotone seq, so zone maps on seq prune ~(1 - s) of
  // the rowgroups for `seq < cutoff`. The comparison arm runs the same
  // filter inside the map function over a full scan.
  std::printf("\n=== Pushdown: seq < cutoff vs filter-in-map ===\n");
  std::printf("%12s %15s %12s %10s %10s\n", "Selectivity", "filter-map(s)",
              "pushdown(s)", "speedup", "pruned_rg");
  auto zfs = std::make_unique<MiniHdfs>(
      bench::PaperCluster(), std::make_unique<ColumnPlacementPolicy>(10));
  {
    CofOptions zoned_options;
    zoned_options.split_target_bytes = 8ull << 20;
    zoned_options.default_column.layout = ColumnLayout::kSkipList;
    std::unique_ptr<CofWriter> zoned;
    Die(CofWriter::Open(zfs.get(), "/zoned", ZonedSchema(), zoned_options,
                        &zoned),
        "zoned");
    ZonedGenerator gen = bench::MakeZonedGenerator();
    bench::FillWriters(gen, records, {zoned.get()});
  }
  Counter* pruned_rowgroups =
      MetricsRegistry::Default().counter("cif.prune.rowgroups");
  for (double selectivity : {0.001, 0.01, 0.05, 0.2, 0.5, 1.0}) {
    const int64_t cutoff =
        static_cast<int64_t>(selectivity * static_cast<double>(records));
    uint64_t map_sum = 0, map_matches = 0;
    const double filter_map_seconds = RunZonedScan(
        zfs.get(), "/zoned", cutoff, false, &map_sum, &map_matches);
    const uint64_t pruned_before = pruned_rowgroups->value();
    uint64_t push_sum = 0, push_matches = 0;
    const double pushdown_seconds = RunZonedScan(
        zfs.get(), "/zoned", cutoff, true, &push_sum, &push_matches);
    const uint64_t pruned = pruned_rowgroups->value() - pruned_before;
    const bool outputs_match =
        map_sum == push_sum && map_matches == push_matches;
    std::printf("%11.1f%% %15.3f %12.3f %9.2fx %10llu%s\n",
                selectivity * 100, filter_map_seconds, pushdown_seconds,
                filter_map_seconds / pushdown_seconds,
                static_cast<unsigned long long>(pruned),
                outputs_match ? "" : "  OUTPUT MISMATCH");
    report.AddRow()
        .Set("arm", "pushdown")
        .Set("selectivity", selectivity)
        .Set("filter_in_map_seconds", filter_map_seconds)
        .Set("pushdown_seconds", pushdown_seconds)
        .Set("speedup", filter_map_seconds / pushdown_seconds)
        .Set("pruned_rowgroups", pruned)
        .Set("matches", push_matches)
        .Set("outputs_match", outputs_match);
  }

  report.Write();
  std::printf(
      "\npaper shape: CIF-SL wins at high selectivity (few matches) and "
      "converges to CIF\nnear 100%% with only minor overhead.\n");
  return 0;
}
