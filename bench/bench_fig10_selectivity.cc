// Reproduces Figure 10 (Appendix B.4): benefits of lazy materialization
// and skip lists as the map-function predicate's selectivity varies. The
// job aggregates a value from the map-typed column for records whose
// string column matches a prefix; selectivity is swept from ~0% to 100%.
//
// Paper shape: at low selectivity CIF-SL clearly beats CIF (it never
// deserializes the map column for non-matching records); the two converge
// as selectivity approaches 100%, where CIF-SL's overhead over CIF is
// minor.

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/datasets.h"
#include "cif/cif.h"
#include "cif/cof.h"
#include "workload/synthetic.h"

namespace colmr {
namespace {

using bench::Die;

constexpr uint64_t kBaseRecords = 150000;

double RunScan(MiniHdfs* fs, const std::string& path, bool lazy) {
  ColumnInputFormat format;
  JobConfig config;
  config.input_paths = {path};
  config.projection = {"str0", "map0"};
  config.lazy_records = lazy;
  uint64_t sum = 0;
  uint64_t matches = 0;
  bench::ScanResult result =
      bench::ScanDataset(fs, &format, config, [&](Record& record) {
        const std::string& s = record.GetOrDie("str0").string_value();
        if (s.rfind(kMicrobenchMatchPrefix, 0) == 0) {
          // Aggregate the map values of matching records (the paper's
          // aggregation under a given key).
          for (const auto& [key, value] : record.GetOrDie("map0").map_entries()) {
            sum += static_cast<uint64_t>(value.int32_value());
          }
          ++matches;
        }
      });
  (void)sum;
  (void)matches;
  return result.sim_seconds;
}

}  // namespace
}  // namespace colmr

int main() {
  using namespace colmr;
  const uint64_t records = bench::ScaledCount(kBaseRecords);
  bench::Report report("fig10_selectivity");
  report.Config("records", records);
  report.Config("workload", "microbench");
  std::printf("=== Figure 10: lazy materialization vs selectivity ===\n");
  std::printf("%12s %12s %12s %10s\n", "Selectivity", "CIF(s)", "CIF-SL(s)",
              "speedup");

  for (double selectivity : {0.001, 0.01, 0.05, 0.2, 0.5, 0.8, 1.0}) {
    // Fresh dataset per point so the hit fraction is exact.
    auto fs = std::make_unique<MiniHdfs>(
        bench::PaperCluster(), std::make_unique<ColumnPlacementPolicy>(10));
    Schema::Ptr schema = MicrobenchSchema();
    CofOptions plain_options;
    plain_options.split_target_bytes = 8ull << 20;
    CofOptions sl_options = plain_options;
    sl_options.default_column.layout = ColumnLayout::kSkipList;
    sl_options.column_overrides["str0"] = ColumnOptions{};  // always read

    std::unique_ptr<CofWriter> plain, sl;
    Die(CofWriter::Open(fs.get(), "/plain", schema, plain_options, &plain),
        "plain");
    Die(CofWriter::Open(fs.get(), "/sl", schema, sl_options, &sl), "sl");
    MicrobenchGenerator gen = bench::MakeMicrobenchGenerator(selectivity);
    bench::FillWriters(gen, records, {plain.get(), sl.get()});

    const double cif_seconds = RunScan(fs.get(), "/plain", false);
    const double sl_seconds = RunScan(fs.get(), "/sl", true);
    std::printf("%11.1f%% %12.3f %12.3f %9.2fx\n", selectivity * 100,
                cif_seconds, sl_seconds, cif_seconds / sl_seconds);
    report.AddRow()
        .Set("selectivity", selectivity)
        .Set("cif_seconds", cif_seconds)
        .Set("cif_sl_seconds", sl_seconds)
        .Set("speedup", cif_seconds / sl_seconds);
  }
  report.Write();
  std::printf(
      "\npaper shape: CIF-SL wins at high selectivity (few matches) and "
      "converges to CIF\nnear 100%% with only minor overhead.\n");
  return 0;
}
