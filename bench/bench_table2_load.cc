// Reproduces Table 2 (Appendix B.3): time to convert the Fig. 7 synthetic
// dataset from SEQ into CIF, CIF with skip lists, and RCFile.
//
// Paper shape: all three loads take roughly the same time (89/93/89 min);
// adding skip lists costs only a few percent, the double-buffering needed
// because HDFS files are append-only.

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/datasets.h"
#include "cif/cof.h"
#include "cif/loader.h"
#include "common/stopwatch.h"
#include "formats/rcfile/rcfile.h"
#include "formats/seq/seq_format.h"
#include "workload/synthetic.h"

namespace colmr {
namespace {

using bench::Die;

constexpr uint64_t kBaseRecords = 150000;

}  // namespace
}  // namespace colmr

int main() {
  using namespace colmr;
  const uint64_t records = bench::ScaledCount(kBaseRecords);
  auto fs = std::make_unique<MiniHdfs>(
      bench::PaperCluster(), std::make_unique<ColumnPlacementPolicy>(12));
  Schema::Ptr schema = MicrobenchSchema();

  std::fprintf(stderr, "table2: writing %llu-record SEQ source...\n",
               static_cast<unsigned long long>(records));
  {
    std::unique_ptr<SeqWriter> seq;
    Die(SeqWriter::Open(fs.get(), "/seq", schema, SeqWriterOptions{}, &seq),
        "seq");
    MicrobenchGenerator gen = bench::MakeMicrobenchGenerator();
    bench::FillWriters(gen, records, {seq.get()});
  }

  bench::Report report("table2_load");
  report.Config("records", records);
  report.Config("workload", "microbench");
  report.Config("source_bytes", bench::DatasetBytes(fs.get(), "/seq"));

  std::printf("=== Table 2: load times, SEQ -> target format ===\n");
  std::printf("%-10s %10s %12s\n", "Layout", "Time(s)", "Output(MB)");

  SeqInputFormat seq_format;
  struct Target {
    const char* name;
    std::function<Status(const std::string&, std::unique_ptr<DatasetWriter>*)>
        open;
  };

  CofOptions cif_options;
  cif_options.split_target_bytes = 8ull << 20;
  CofOptions sl_options = cif_options;
  sl_options.default_column.layout = ColumnLayout::kSkipList;
  RcFileWriterOptions rc_options;  // 4 MB row-groups, as recommended

  const std::vector<Target> targets = {
      {"CIF",
       [&](const std::string& path, std::unique_ptr<DatasetWriter>* out) {
         std::unique_ptr<CofWriter> w;
         COLMR_RETURN_IF_ERROR(
             CofWriter::Open(fs.get(), path, schema, cif_options, &w));
         *out = std::move(w);
         return Status::OK();
       }},
      {"CIF-SL",
       [&](const std::string& path, std::unique_ptr<DatasetWriter>* out) {
         std::unique_ptr<CofWriter> w;
         COLMR_RETURN_IF_ERROR(
             CofWriter::Open(fs.get(), path, schema, sl_options, &w));
         *out = std::move(w);
         return Status::OK();
       }},
      {"RCFile",
       [&](const std::string& path, std::unique_ptr<DatasetWriter>* out) {
         std::unique_ptr<RcFileWriter> w;
         COLMR_RETURN_IF_ERROR(
             RcFileWriter::Open(fs.get(), path, schema, rc_options, &w));
         *out = std::move(w);
         return Status::OK();
       }},
  };

  int index = 0;
  for (const Target& target : targets) {
    const std::string path = "/load" + std::to_string(index++);
    std::unique_ptr<DatasetWriter> writer;
    Die(target.open(path, &writer), "open target");
    Stopwatch watch;
    Die(CopyDataset(fs.get(), &seq_format, {"/seq"}, writer.get()), "copy");
    Die(writer->Close(), "close");
    const double seconds = watch.ElapsedSeconds();
    const uint64_t output_bytes = bench::DatasetBytes(fs.get(), path);
    std::printf("%-10s %10.2f %12s\n", target.name, seconds,
                bench::Mb(output_bytes).c_str());
    report.AddRow()
        .Set("layout", target.name)
        .Set("seconds", seconds)
        .Set("output_bytes", output_bytes);
  }
  report.Write();
  std::printf(
      "\npaper shape: CIF, CIF-SL and RCFile loads cost about the same "
      "(89/93/89 min);\nthe skip-list double-buffering overhead is minor.\n");
  return 0;
}
