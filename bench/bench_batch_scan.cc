// Vectorized columnar scan: arena-backed batch decode (NextBatch /
// FillBatch) versus the scalar one-value-at-a-time path, on a Fig.-8-style
// projected scan of the Section 6.2 microbenchmark dataset stored as CIF.
//
// The batched path amortizes the per-value BufferedReader bookkeeping
// (window peeks, cursor commits, virtual dispatch) over whole column
// segments and serves strings zero-copy out of the pinned block-cache
// window; the scalar path pays all of it per value. Each projection is
// scanned both ways over identical bytes; `speedup` is scalar seconds /
// batched seconds. The projected-scan rows are the headline: expect >= 2x.
//
// CI gate: .github/workflows/ci.yml runs this bench and fails if any
// projection's speedup drops below 1.0 (batching must never be a
// pessimization).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/datasets.h"
#include "cif/cif.h"
#include "cif/cof.h"
#include "workload/synthetic.h"

namespace colmr {
namespace {

constexpr uint64_t kBaseRecords = 60000;
constexpr uint64_t kBatchRows = 1024;

struct ProjectionCase {
  const char* name;
  std::vector<std::string> projection;  // empty = full record
  // Touches the projected fields so decoded values cannot be elided.
  uint64_t (*consume)(Record&);
};

uint64_t ConsumeInt(Record& record) {
  return static_cast<uint64_t>(record.GetOrDie("int0").int32_value());
}

uint64_t ConsumeStrInt(Record& record) {
  return record.GetOrDie("str0").string_value().size() +
         static_cast<uint64_t>(record.GetOrDie("int0").int32_value());
}

uint64_t ConsumeWide(Record& record) {
  uint64_t sum = 0;
  for (int i = 0; i < 6; ++i) {
    sum += record.GetOrDie("str" + std::to_string(i)).string_value().size();
    sum += static_cast<uint64_t>(
        record.GetOrDie("int" + std::to_string(i)).int32_value());
  }
  sum += record.GetOrDie("map0").map_entries().size();
  return sum;
}

}  // namespace
}  // namespace colmr

int main() {
  using namespace colmr;
  const uint64_t records = bench::ScaledCount(kBaseRecords);

  ClusterConfig cluster = bench::PaperCluster();
  cluster.num_nodes = 4;
  auto fs = std::make_unique<MiniHdfs>(
      cluster, std::make_unique<ColumnPlacementPolicy>(bench::kDatasetSeed));

  // Table-1-style layouts: skip lists everywhere, DCSL for the map.
  CofOptions options;
  options.split_target_bytes = 4ull << 20;
  options.default_column.layout = ColumnLayout::kSkipList;
  options.column_overrides["map0"] = {ColumnLayout::kDictSkipList};
  std::unique_ptr<CofWriter> writer;
  bench::Die(CofWriter::Open(fs.get(), "/micro", MicrobenchSchema(), options,
                             &writer),
             "cof");
  MicrobenchGenerator gen(bench::kDatasetSeed + 3);
  for (uint64_t i = 0; i < records; ++i) {
    bench::Die(writer->WriteRecord(gen.Next()), "write");
  }
  bench::Die(writer->Close(), "close");
  std::fprintf(stderr, "batch_scan: %llu micro records, %s MB on HDFS\n",
               static_cast<unsigned long long>(records),
               bench::Mb(fs->TotalStoredBytes()).c_str());

  const ProjectionCase cases[] = {
      {"int0", {"str0", "int0"}, ConsumeStrInt},
      {"int-only", {"int0"}, ConsumeInt},
      {"full", {}, ConsumeWide},
  };

  bench::Report report("batch_scan");
  report.Config("records", records);
  report.Config("batch_rows", kBatchRows);
  report.Config("stored_bytes", fs->TotalStoredBytes());

  std::printf("=== Vectorized batch scan vs scalar (CIF, eager) ===\n");
  std::printf("%-12s %12s %12s %9s %14s\n", "projection", "scalar(s)",
              "batched(s)", "speedup", "records=equal");

  ColumnInputFormat format;
  uint64_t sink = 0;
  for (const ProjectionCase& projection : cases) {
    JobConfig config;
    config.input_paths = {"/micro"};
    config.projection = projection.projection;

    // Best-of-3 per path: a scheduler hiccup must not read as a decode
    // regression.
    double scalar_seconds = 0;
    double batched_seconds = 0;
    uint64_t scalar_records = 0;
    uint64_t batched_records = 0;
    for (int run = 0; run < 3; ++run) {
      config.batch_rows = 1;
      bench::ScanResult scalar = bench::ScanDataset(
          fs.get(), &format, config,
          [&](Record& record) { sink += projection.consume(record); });
      if (run == 0 || scalar.cpu_seconds < scalar_seconds) {
        scalar_seconds = scalar.cpu_seconds;
      }
      scalar_records = scalar.records;

      config.batch_rows = kBatchRows;
      bench::ScanResult batched = bench::ScanDataset(
          fs.get(), &format, config,
          [&](Record& record) { sink += projection.consume(record); });
      if (run == 0 || batched.cpu_seconds < batched_seconds) {
        batched_seconds = batched.cpu_seconds;
      }
      batched_records = batched.records;
    }

    const double speedup = scalar_seconds / batched_seconds;
    const bool records_equal =
        scalar_records == records && batched_records == records;
    std::printf("%-12s %12.4f %12.4f %8.2fx %14s\n", projection.name,
                scalar_seconds, batched_seconds, speedup,
                records_equal ? "yes" : "NO");
    report.AddRow()
        .Set("projection", projection.name)
        .Set("scalar_seconds", scalar_seconds)
        .Set("batched_seconds", batched_seconds)
        .Set("speedup", speedup)
        .Set("records_equal", records_equal);
  }
  report.Write();
  std::printf(
      "\nspeedup = scalar / batched wall time over identical bytes; the\n"
      "projected rows are the Fig. 8 analogue (target >= 2x). (sink=%llu)\n",
      static_cast<unsigned long long>(sink & 0xff));
  return 0;
}
