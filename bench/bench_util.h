#ifndef COLMR_BENCH_BENCH_UTIL_H_
#define COLMR_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "hdfs/cost_model.h"
#include "hdfs/mini_hdfs.h"
#include "mapreduce/input_format.h"
#include "mapreduce/job.h"

namespace colmr {
namespace bench {

/// Paper-faithful cluster parameters (Section 6.1), with the HDFS block
/// size scaled down 16x so laptop-scale datasets still span many blocks
/// while keeping the paper's block : row-group : io-buffer geometry.
inline ClusterConfig PaperCluster() {
  ClusterConfig config;
  config.num_nodes = 40;
  config.map_slots_per_node = 6;
  config.reduce_slots_per_node = 1;
  config.replication = 3;
  config.block_size = 4ull << 20;
  config.io_buffer_size = 128 * 1024;  // the io.file.buffer.size they set
  return config;
}

/// Multiplies default record counts; set COLMR_BENCH_SCALE to run bigger
/// or smaller experiments (e.g. 0.1 for a smoke run, 10 for a long one).
inline double Scale() {
  const char* env = std::getenv("COLMR_BENCH_SCALE");
  return env == nullptr ? 1.0 : std::atof(env);
}

inline uint64_t ScaledCount(uint64_t base) {
  const double scaled = static_cast<double>(base) * Scale();
  return scaled < 1 ? 1 : static_cast<uint64_t>(scaled);
}

/// Result of scanning one dataset single-threaded (the Section 6.2
/// single-node microbenchmark setting).
struct ScanResult {
  double cpu_seconds = 0;
  IoStats io;
  uint64_t records = 0;
  /// CPU + modelled single-disk I/O — the scan-time analogue.
  double sim_seconds = 0;
};

/// Scans an entire dataset through an InputFormat, feeding every record to
/// `consume`. All I/O is counted; time is measured around the scan loop.
inline ScanResult ScanDataset(MiniHdfs* fs, InputFormat* format,
                              JobConfig config,
                              const std::function<void(Record&)>& consume) {
  ScanResult result;
  std::vector<InputSplit> splits;
  Status s = format->GetSplits(fs, config, &splits);
  if (!s.ok()) {
    std::fprintf(stderr, "GetSplits: %s\n", s.ToString().c_str());
    std::abort();
  }
  Stopwatch watch;
  for (const InputSplit& split : splits) {
    std::unique_ptr<RecordReader> reader;
    s = format->CreateRecordReader(fs, config, split,
                                   ReadContext{kAnyNode, &result.io},
                                   &reader);
    if (!s.ok()) {
      std::fprintf(stderr, "CreateRecordReader: %s\n", s.ToString().c_str());
      std::abort();
    }
    while (reader->Next()) {
      consume(reader->record());
      ++result.records;
    }
    if (!reader->status().ok()) {
      std::fprintf(stderr, "scan: %s\n", reader->status().ToString().c_str());
      std::abort();
    }
  }
  result.cpu_seconds = watch.ElapsedSeconds();
  CostModel model(fs->config());
  result.sim_seconds = model.TaskSeconds({result.cpu_seconds, result.io});
  return result;
}

/// Total size of all files under a dataset directory.
inline uint64_t DatasetBytes(MiniHdfs* fs, const std::string& path) {
  std::vector<std::string> files;
  Status s = ExpandInputPaths(fs, {path}, &files);
  if (!s.ok()) return 0;
  uint64_t total = 0;
  for (const std::string& file : files) {
    uint64_t size = 0;
    fs->GetFileSize(file, &size);
    total += size;
  }
  return total;
}

inline void Die(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, s.ToString().c_str());
    std::abort();
  }
}

inline std::string Mb(uint64_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", bytes / 1e6);
  return buf;
}

}  // namespace bench
}  // namespace colmr

#endif  // COLMR_BENCH_BENCH_UTIL_H_
