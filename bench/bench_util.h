#ifndef COLMR_BENCH_BENCH_UTIL_H_
#define COLMR_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "hdfs/cost_model.h"
#include "hdfs/mini_hdfs.h"
#include "mapreduce/input_format.h"
#include "mapreduce/job.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "serde/predicate.h"

namespace colmr {
namespace bench {

/// Paper-faithful cluster parameters (Section 6.1), with the HDFS block
/// size scaled down 16x so laptop-scale datasets still span many blocks
/// while keeping the paper's block : row-group : io-buffer geometry.
inline ClusterConfig PaperCluster() {
  ClusterConfig config;
  config.num_nodes = 40;
  config.map_slots_per_node = 6;
  config.reduce_slots_per_node = 1;
  config.replication = 3;
  config.block_size = 4ull << 20;
  config.io_buffer_size = 128 * 1024;  // the io.file.buffer.size they set
  return config;
}

/// Multiplies default record counts; set COLMR_BENCH_SCALE to run bigger
/// or smaller experiments (e.g. 0.1 for a smoke run, 10 for a long one).
inline double Scale() {
  const char* env = std::getenv("COLMR_BENCH_SCALE");
  return env == nullptr ? 1.0 : std::atof(env);
}

inline uint64_t ScaledCount(uint64_t base) {
  const double scaled = static_cast<double>(base) * Scale();
  return scaled < 1 ? 1 : static_cast<uint64_t>(scaled);
}

/// Result of scanning one dataset single-threaded (the Section 6.2
/// single-node microbenchmark setting).
struct ScanResult {
  double cpu_seconds = 0;
  IoStats io;
  uint64_t records = 0;
  /// CPU + modelled single-disk I/O — the scan-time analogue.
  double sim_seconds = 0;
};

inline void Die(const Status& s, const char* what);

/// Scans an entire dataset through an InputFormat, feeding every record to
/// `consume`. All I/O is counted; time is measured around the scan loop.
inline ScanResult ScanDataset(MiniHdfs* fs, InputFormat* format,
                              JobConfig config,
                              const std::function<void(Record&)>& consume) {
  ScanResult result;
  std::vector<InputSplit> splits;
  Status s = format->GetSplits(fs, config, &splits);
  if (!s.ok()) {
    std::fprintf(stderr, "GetSplits: %s\n", s.ToString().c_str());
    std::abort();
  }
  Stopwatch watch;
  for (const InputSplit& split : splits) {
    std::unique_ptr<RecordReader> reader;
    s = format->CreateRecordReader(fs, config, split,
                                   ReadContext{kAnyNode, &result.io},
                                   &reader);
    if (!s.ok()) {
      std::fprintf(stderr, "CreateRecordReader: %s\n", s.ToString().c_str());
      std::abort();
    }
    // Same filter contract as the engine's map loop: a job predicate is
    // either pre-evaluated by the reader (selection()) or applied
    // row-wise here, so ScanDataset measures the identical record stream.
    const Predicate* predicate = config.predicate.get();
    if (config.batch_rows <= 1) {
      while (reader->Next()) {
        if (predicate != nullptr) {
          Status eval;
          const Tri pass =
              EvalPredicateRow(*predicate, reader->record(), &eval);
          Die(eval, "predicate");
          if (pass != Tri::kTrue) continue;
        }
        consume(reader->record());
        ++result.records;
      }
    } else {
      uint64_t filled;
      while ((filled = reader->FillBatch(config.batch_rows)) > 0) {
        const std::vector<uint32_t>* selection = reader->selection();
        if (selection != nullptr) {
          for (const uint32_t r : *selection) {
            consume(reader->RecordAt(r));
          }
          result.records += selection->size();
        } else if (predicate != nullptr) {
          for (uint64_t r = 0; r < filled; ++r) {
            Record& record = reader->RecordAt(r);
            Status eval;
            const Tri pass = EvalPredicateRow(*predicate, record, &eval);
            Die(eval, "predicate");
            if (pass != Tri::kTrue) continue;
            consume(record);
            ++result.records;
          }
        } else {
          for (uint64_t r = 0; r < filled; ++r) {
            consume(reader->RecordAt(r));
          }
          result.records += filled;
        }
      }
    }
    if (!reader->status().ok()) {
      std::fprintf(stderr, "scan: %s\n", reader->status().ToString().c_str());
      std::abort();
    }
  }
  result.cpu_seconds = watch.ElapsedSeconds();
  CostModel model(fs->config());
  result.sim_seconds = model.TaskSeconds({result.cpu_seconds, result.io});
  return result;
}

/// Total size of all files under a dataset directory.
inline uint64_t DatasetBytes(MiniHdfs* fs, const std::string& path) {
  std::vector<std::string> files;
  Status s = ExpandInputPaths(fs, {path}, &files);
  if (!s.ok()) return 0;
  uint64_t total = 0;
  for (const std::string& file : files) {
    uint64_t size = 0;
    fs->GetFileSize(file, &size);
    total += size;
  }
  return total;
}

inline void Die(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, s.ToString().c_str());
    std::abort();
  }
}

inline std::string Mb(uint64_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", bytes / 1e6);
  return buf;
}

/// Machine-readable bench output (DESIGN.md §8). Every bench binary
/// builds one Report alongside its human-readable table and Write()s it
/// as `BENCH_<name>.json` into ${COLMR_BENCH_OUT:-.}. The document
/// carries the bench config, one row per printed table line, the wall
/// time, and the process-wide metrics delta accumulated over the
/// Report's lifetime — so a run's raw numbers can be diffed, plotted, or
/// gated in CI without scraping stdout.
///
/// Document shape:
///   { "bench": "<name>", "schema_version": 1, "scale": <float>,
///     "config": {...}, "rows": [{...}, ...], "wall_seconds": <float>,
///     "metrics": {"counters": {...}, "gauges": {...},
///                 "histograms": {...}} }
class Report {
 public:
  explicit Report(std::string name)
      : name_(std::move(name)),
        start_metrics_(MetricsRegistry::Default().Snapshot()) {}

  /// One flat object of run parameters (record counts, seeds, sizes).
  void Config(std::string key, std::string_view v) {
    config_.emplace_back(std::move(key), Render(v));
  }
  void Config(std::string key, const char* v) {
    Config(std::move(key), std::string_view(v));
  }
  void Config(std::string key, uint64_t v) {
    config_.emplace_back(std::move(key), std::to_string(v));
  }
  void Config(std::string key, int v) {
    config_.emplace_back(std::move(key), std::to_string(v));
  }
  void Config(std::string key, double v) {
    config_.emplace_back(std::move(key), Render(v));
  }
  void Config(std::string key, bool v) {
    config_.emplace_back(std::move(key), v ? "true" : "false");
  }

  /// One table line. Values are rendered at Set() time; Set returns the
  /// row so cells chain.
  class Row {
   public:
    Row& Set(std::string key, std::string_view v) {
      fields_.emplace_back(std::move(key), Render(v));
      return *this;
    }
    Row& Set(std::string key, const char* v) {
      return Set(std::move(key), std::string_view(v));
    }
    Row& Set(std::string key, uint64_t v) {
      fields_.emplace_back(std::move(key), std::to_string(v));
      return *this;
    }
    Row& Set(std::string key, int v) {
      fields_.emplace_back(std::move(key), std::to_string(v));
      return *this;
    }
    Row& Set(std::string key, double v) {
      fields_.emplace_back(std::move(key), Render(v));
      return *this;
    }
    Row& Set(std::string key, bool v) {
      fields_.emplace_back(std::move(key), v ? "true" : "false");
      return *this;
    }

   private:
    friend class Report;
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  // deque: callers hold Row& across later AddRow() calls.
  Row& AddRow() { return rows_.emplace_back(); }

  std::string ToJson() const {
    JsonWriter w;
    w.BeginObject();
    w.Field("bench", name_);
    w.Field("schema_version", uint64_t{1});
    w.Field("scale", Scale());
    w.BeginObject("config");
    for (const auto& [key, value] : config_) w.FieldRaw(key, value);
    w.EndObject();
    w.BeginArray("rows");
    for (const Row& row : rows_) {
      w.BeginObject();
      for (const auto& [key, value] : row.fields_) w.FieldRaw(key, value);
      w.EndObject();
    }
    w.EndArray();
    w.Field("wall_seconds", watch_.ElapsedSeconds());
    w.BeginObject("metrics");
    MetricsRegistry::Default()
        .Snapshot()
        .Diff(start_metrics_)
        .NonZero()
        .WriteJson(&w);
    w.EndObject();
    w.EndObject();
    return w.Take();
  }

  /// Writes BENCH_<name>.json into ${COLMR_BENCH_OUT:-.} after
  /// re-validating the rendered document. Returns the path written, or
  /// "" on failure (diagnostic on stderr) — benches report but do not
  /// abort, so a read-only CWD cannot fail a perf run.
  std::string Write() const {
    const std::string document = ToJson();
    std::string error;
    if (!ValidateJson(document, &error)) {
      std::fprintf(stderr, "BENCH_%s.json: invalid JSON produced: %s\n",
                   name_.c_str(), error.c_str());
      return "";
    }
    const char* dir = std::getenv("COLMR_BENCH_OUT");
    std::string path = (dir == nullptr || dir[0] == '\0') ? "." : dir;
    path += "/BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "BENCH_%s.json: cannot open %s\n", name_.c_str(),
                   path.c_str());
      return "";
    }
    const size_t written = std::fwrite(document.data(), 1, document.size(), f);
    const bool ok = written == document.size() && std::fclose(f) == 0;
    if (!ok) {
      std::fprintf(stderr, "BENCH_%s.json: short write to %s\n", name_.c_str(),
                   path.c_str());
      return "";
    }
    std::fprintf(stderr, "bench report: %s\n", path.c_str());
    return path;
  }

 private:
  static std::string Render(std::string_view v) {
    std::string out;
    out.reserve(v.size() + 2);
    out.push_back('"');
    out += JsonWriter::Escape(v);
    out.push_back('"');
    return out;
  }
  static std::string Render(double v) {
    if (!std::isfinite(v)) return "null";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
  }

  Stopwatch watch_;
  std::string name_;
  MetricsSnapshot start_metrics_;
  std::vector<std::pair<std::string, std::string>> config_;
  std::deque<Row> rows_;
};

}  // namespace bench
}  // namespace colmr

#endif  // COLMR_BENCH_BENCH_UTIL_H_
