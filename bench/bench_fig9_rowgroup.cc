// Reproduces Figure 9 (Appendix B.2): tuning the RCFile row-group size.
// The Fig. 7 microbenchmark projections are scanned against RCFiles with
// 1 MB, 4 MB, and 16 MB row-groups and against CIF.
//
// Paper shape: larger row-groups eliminate more I/O (for one projected
// integer, RCFile read 16.5/8.5/4.5 GB at 1/4/16 MB; CIF read 415 MB —
// 10-40x less), yet even 16 MB row-groups stay well behind CIF; RCFile
// degrades 2-3x on other single-column scans.

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/datasets.h"
#include "cif/cif.h"
#include "cif/cof.h"
#include "formats/rcfile/rcfile_format.h"
#include "workload/synthetic.h"

namespace colmr {
namespace {

using bench::Die;

constexpr uint64_t kBaseRecords = 120000;

struct Cell {
  double seconds;
  uint64_t bytes;
};

Cell Scan(MiniHdfs* fs, InputFormat* format, const std::string& path,
          const std::vector<std::string>& projection) {
  JobConfig config;
  config.input_paths = {path};
  config.projection = projection;
  std::vector<std::string> touch = projection;
  if (touch.empty()) {
    Schema::Ptr schema = MicrobenchSchema();
    for (const auto& field : schema->fields()) {
      touch.push_back(field.name);
    }
  }
  uint64_t sink = 0;
  bench::ScanResult result =
      bench::ScanDataset(fs, format, config, [&](Record& record) {
        for (const std::string& column : touch) {
          sink += static_cast<int>(record.GetOrDie(column).kind());
        }
      });
  (void)sink;
  return {result.sim_seconds, result.io.TotalBytes()};
}

}  // namespace
}  // namespace colmr

int main() {
  using namespace colmr;
  const uint64_t records = bench::ScaledCount(kBaseRecords);
  auto fs = std::make_unique<MiniHdfs>(
      bench::PaperCluster(), std::make_unique<ColumnPlacementPolicy>(9));
  Schema::Ptr schema = MicrobenchSchema();

  std::fprintf(stderr, "fig9: generating %llu records in 4 layouts...\n",
               static_cast<unsigned long long>(records));
  // The paper's 1/4/16 MB row-groups against 64 MB HDFS blocks, scaled by
  // the same 16x factor as this harness's 4 MB blocks: the row-group :
  // block ratio (1/64, 1/16, 1/4) is what drives the effect.
  const std::vector<std::pair<std::string, uint64_t>> group_sizes = {
      {"/rc1m", 64ull << 10}, {"/rc4m", 256ull << 10}, {"/rc16m", 1ull << 20}};
  {
    std::vector<std::unique_ptr<DatasetWriter>> writers;
    for (const auto& [path, group_size] : group_sizes) {
      RcFileWriterOptions options;
      options.row_group_size = group_size;
      std::unique_ptr<RcFileWriter> rc;
      Die(RcFileWriter::Open(fs.get(), path, schema, options, &rc), "rc");
      writers.push_back(std::move(rc));
    }
    CofOptions cof_options;
    cof_options.split_target_bytes = 8ull << 20;
    std::unique_ptr<CofWriter> cof;
    Die(CofWriter::Open(fs.get(), "/cif", schema, cof_options, &cof), "cof");
    writers.push_back(std::move(cof));

    MicrobenchGenerator gen = bench::MakeMicrobenchGenerator();
    bench::FillWriters(gen, records,
                       {writers[0].get(), writers[1].get(), writers[2].get(),
                        writers[3].get()});
  }

  const std::vector<std::pair<std::string, std::vector<std::string>>>
      projections = {
          {"AllColumns", {}},
          {"1 Integer", {"int0"}},
          {"1 String", {"str0"}},
          {"1 Map", {"map0"}},
          {"1 String+1 Map", {"str0", "map0"}},
      };

  RcFileInputFormat rc;
  ColumnInputFormat cif;
  struct Row {
    const char* name;
    InputFormat* format;
    std::string path;
  };
  const std::vector<Row> rows = {
      {"CIF", &cif, "/cif"},
      {"16M* RCFile", &rc, "/rc16m"},
      {"4M* RCFile", &rc, "/rc4m"},
      {"1M* RCFile", &rc, "/rc1m"},
  };

  bench::Report report("fig9_rowgroup");
  report.Config("records", records);
  report.Config("workload", "microbench");

  std::printf("=== Figure 9: RCFile row-group size tuning ===\n");
  std::printf("%-12s %18s %18s %18s %18s %18s\n", "Layout", "AllColumns",
              "1 Integer", "1 String", "1 Map", "1 Str+1 Map");
  for (const auto& row : rows) {
    std::printf("%-12s", row.name);
    for (const auto& [label, projection] : projections) {
      Cell cell = Scan(fs.get(), row.format, row.path, projection);
      std::printf("  %7.2fs(%6sMB)", cell.seconds,
                  bench::Mb(cell.bytes).c_str());
      report.AddRow()
          .Set("layout", row.name)
          .Set("projection", label)
          .Set("seconds", cell.seconds)
          .Set("bytes_read", cell.bytes);
    }
    std::printf("\n");
  }
  report.Write();
  std::printf(
      "\npaper shape: bigger row-groups eliminate more I/O (16.5/8.5/4.5 GB "
      "at 1/4/16 MB\nfor one integer; CIF 415 MB) but RCFile never reaches "
      "CIF.\n");
  return 0;
}
