// Reproduces Section 6.4: impact of co-location. The same CIF crawl job
// is run twice — once on a filesystem whose blocks were placed by the
// ColumnPlacementPolicy (CPP), once with the HDFS default policy. Without
// CPP the column files of a split-directory rarely share a node, so map
// tasks read most column bytes over the network.
//
// Paper shape: map time with CPP was 5.1x better than without.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "bench/datasets.h"
#include "cif/cif.h"
#include "cif/cof.h"
#include "mapreduce/engine.h"
#include "workload/crawl.h"

namespace colmr {
namespace {

using bench::Die;

// The experiment is I/O bound (the paper stores 160 GB per node), so use
// many records with the unread content column kept small: what matters is
// the volume of the columns the job actually reads.
constexpr uint64_t kBaseRecords = 150000;

struct Result {
  double map_seconds;
  uint64_t local_bytes;
  uint64_t remote_bytes;
  int local_tasks;
  int remote_tasks;
};

Result RunWithPolicy(bool use_cpp, uint64_t records) {
  // The full 40-node cluster: with that many nodes, two independently
  // placed column files almost never share a replica node, which is the
  // whole point of CPP (Fig. 3).
  ClusterConfig cluster = bench::PaperCluster();
  std::unique_ptr<BlockPlacementPolicy> policy;
  if (use_cpp) {
    policy = std::make_unique<ColumnPlacementPolicy>(99);
  } else {
    policy = std::make_unique<DefaultPlacementPolicy>(99);
  }
  auto fs = std::make_unique<MiniHdfs>(cluster, std::move(policy));

  CofOptions options;
  options.split_target_bytes = 2ull << 20;  // many splits -> stable stats
  options.default_column.layout = ColumnLayout::kSkipList;
  std::unique_ptr<CofWriter> cof;
  Die(CofWriter::Open(fs.get(), "/data", CrawlSchema(), options, &cof),
      "cof");
  CrawlGenerator gen =
      bench::MakeCrawlGenerator(bench::CrawlProfile::kLightContent);
  bench::FillWriters(gen, records, {cof.get()});

  Job job;
  job.config.input_paths = {"/data"};
  job.config.projection = {"url", "metadata"};
  job.config.lazy_records = true;
  job.input_format = std::make_shared<ColumnInputFormat>();
  job.mapper = [](Record& record, Emitter* out) {
    const std::string& url = record.GetOrDie("url").string_value();
    if (url.find(kCrawlFilterPattern) != std::string::npos) {
      const Value* ct =
          record.GetOrDie("metadata").FindMapEntry(kContentTypeKey);
      if (ct != nullptr) {
        out->Emit(Value::String(ct->string_value()), Value::Null());
      }
    }
  };
  job.reducer = [](const Value& key, const std::vector<Value>&, Emitter* out) {
    out->Emit(key, Value::Null());
  };

  JobRunner runner(fs.get());
  JobReport report;
  Die(runner.Run(job, &report), "run");
  return {report.map_slot_seconds, report.bytes_read_local,
          report.bytes_read_remote, report.data_local_tasks,
          report.remote_tasks};
}

}  // namespace
}  // namespace colmr

int main() {
  using namespace colmr;
  const uint64_t records = bench::ScaledCount(kBaseRecords);
  std::fprintf(stderr, "colocation: %llu crawl records x2 policies...\n",
               static_cast<unsigned long long>(records));

  bench::Report report("colocation");
  report.Config("records", records);
  report.Config("workload", "crawl/light-content");

  Result with_cpp = RunWithPolicy(true, records);
  Result without = RunWithPolicy(false, records);

  for (const auto& [label, r] :
       {std::pair<const char*, const Result&>{"cpp", with_cpp},
        std::pair<const char*, const Result&>{"default", without}}) {
    report.AddRow()
        .Set("placement", label)
        .Set("map_seconds", r.map_seconds)
        .Set("local_bytes", r.local_bytes)
        .Set("remote_bytes", r.remote_bytes)
        .Set("local_tasks", r.local_tasks)
        .Set("remote_tasks", r.remote_tasks);
  }
  report.AddRow()
      .Set("placement", "speedup")
      .Set("map_time_speedup", without.map_seconds / with_cpp.map_seconds);
  report.Write();

  std::printf("=== Section 6.4: impact of co-location (CIF job) ===\n");
  std::printf("%-22s %10s %12s %12s %8s %8s\n", "Placement", "Map(s)",
              "Local(MB)", "Remote(MB)", "LocTask", "RemTask");
  std::printf("%-22s %10.3f %12s %12s %8d %8d\n", "CPP (co-located)",
              with_cpp.map_seconds, bench::Mb(with_cpp.local_bytes).c_str(),
              bench::Mb(with_cpp.remote_bytes).c_str(), with_cpp.local_tasks,
              with_cpp.remote_tasks);
  std::printf("%-22s %10.3f %12s %12s %8d %8d\n", "HDFS default",
              without.map_seconds, bench::Mb(without.local_bytes).c_str(),
              bench::Mb(without.remote_bytes).c_str(), without.local_tasks,
              without.remote_tasks);
  std::printf("\nmap time speedup from CPP: %.1fx (paper: 5.1x)\n",
              without.map_seconds / with_cpp.map_seconds);
  return 0;
}
