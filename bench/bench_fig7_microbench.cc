// Reproduces Figure 7: microbenchmark comparing scan times of TXT, SEQ,
// CIF, and RCFile (compressed / uncompressed) on the synthetic dataset of
// Section 6.2 (6 strings, 6 integers, 1 map per record), for projections
// {all columns, 1 integer, 1 string, 1 map, 1 string + 1 map}.
//
// Paper shape: TXT ~3x slower than SEQ; CIF 2.5x-95x faster than SEQ on
// narrow projections; CIF ~38x faster than uncompressed RCFile on the
// single-integer scan; all formats converge when scanning every column
// (SEQ slightly fastest).

#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "bench/datasets.h"
#include "cif/cif.h"
#include "cif/cof.h"
#include "formats/rcfile/rcfile_format.h"
#include "formats/seq/seq_format.h"
#include "formats/text/text_format.h"
#include "workload/synthetic.h"

namespace colmr {
namespace {

using bench::Die;

constexpr uint64_t kBaseRecords = 120000;  // ~40 MB binary (paper: 57 GB)

void WriteAll(MiniHdfs* fs, uint64_t records) {
  Schema::Ptr schema = MicrobenchSchema();

  std::unique_ptr<TextWriter> txt;
  Die(TextWriter::Open(fs, "/txt", schema, &txt), "txt open");
  std::unique_ptr<SeqWriter> seq;
  Die(SeqWriter::Open(fs, "/seq", schema, SeqWriterOptions{}, &seq),
      "seq open");
  RcFileWriterOptions rc_uncomp;
  rc_uncomp.row_group_size = 4ull << 20;  // the paper's recommended 4 MB
  std::unique_ptr<RcFileWriter> rc;
  Die(RcFileWriter::Open(fs, "/rc", schema, rc_uncomp, &rc), "rc open");
  RcFileWriterOptions rc_compressed = rc_uncomp;
  rc_compressed.codec = CodecType::kZlite;  // the ZLIB-compressed RCFile
  std::unique_ptr<RcFileWriter> rcc;
  Die(RcFileWriter::Open(fs, "/rcc", schema, rc_compressed, &rcc),
      "rcc open");
  CofOptions cof_options;
  cof_options.split_target_bytes = 8ull << 20;
  std::unique_ptr<CofWriter> cof;
  Die(CofWriter::Open(fs, "/cif", schema, cof_options, &cof), "cof open");

  MicrobenchGenerator gen = bench::MakeMicrobenchGenerator();
  bench::FillWriters(gen, records,
                     {txt.get(), seq.get(), rc.get(), rcc.get(), cof.get()});
}

struct Cell {
  double seconds = 0;
  uint64_t bytes = 0;
};

Cell RunScan(MiniHdfs* fs, InputFormat* format, const std::string& path,
             const std::vector<std::string>& projection) {
  JobConfig config;
  config.input_paths = {path};
  config.projection = projection;
  // Touch every projected column (or all columns when unprojected), as the
  // paper's hand-coded map functions would.
  std::vector<std::string> touch = projection;
  if (touch.empty()) {
    Schema::Ptr schema = MicrobenchSchema();
    for (const auto& field : schema->fields()) touch.push_back(field.name);
  }
  uint64_t sink = 0;
  bench::ScanResult result =
      bench::ScanDataset(fs, format, config, [&](Record& record) {
        for (const std::string& column : touch) {
          const Value& v = record.GetOrDie(column);
          if (v.kind() == TypeKind::kString) {
            sink += v.string_value().size();
          } else if (v.kind() == TypeKind::kMap) {
            sink += v.map_entries().size();
          } else if (v.kind() == TypeKind::kInt32) {
            sink += static_cast<uint64_t>(v.int32_value());
          }
        }
      });
  if (sink == 0 && result.records > 0) std::fprintf(stderr, "(sink empty)\n");
  return {result.sim_seconds, result.io.TotalBytes()};
}

}  // namespace
}  // namespace colmr

int main() {
  using namespace colmr;
  const uint64_t records = bench::ScaledCount(kBaseRecords);
  auto fs = std::make_unique<MiniHdfs>(
      bench::PaperCluster(), std::make_unique<ColumnPlacementPolicy>(42));
  std::fprintf(stderr, "fig7: generating %llu records in 5 formats...\n",
               static_cast<unsigned long long>(records));
  WriteAll(fs.get(), records);

  const std::vector<std::pair<std::string, std::vector<std::string>>>
      projections = {
          {"AllColumns", {}},
          {"1 Integer", {"int0"}},
          {"1 String", {"str0"}},
          {"1 Map", {"map0"}},
          {"1 String+1 Map", {"str0", "map0"}},
      };

  TextInputFormat txt;
  SeqInputFormat seq;
  RcFileInputFormat rc;
  ColumnInputFormat cif;
  struct Row {
    const char* name;
    InputFormat* format;
    std::string path;
    bool projectable;
  };
  const std::vector<Row> rows = {
      {"TextFile", &txt, "/txt", false},
      {"SEQ", &seq, "/seq", false},
      {"CIF", &cif, "/cif", true},
      {"Compressed RCFile", &rc, "/rcc", true},
      {"Uncompressed RCFile", &rc, "/rc", true},
  };

  bench::Report report("fig7_microbench");
  report.Config("records", records);
  report.Config("workload", "microbench");
  for (const char* path : {"/txt", "/seq", "/cif", "/rc", "/rcc"}) {
    report.Config(std::string("bytes") + path,
                  bench::DatasetBytes(fs.get(), path));
  }

  std::printf("=== Figure 7: microbenchmark scan times (seconds) ===\n");
  std::printf("dataset sizes: txt=%sMB seq=%sMB cif=%sMB rc=%sMB rcc=%sMB\n",
              bench::Mb(bench::DatasetBytes(fs.get(), "/txt")).c_str(),
              bench::Mb(bench::DatasetBytes(fs.get(), "/seq")).c_str(),
              bench::Mb(bench::DatasetBytes(fs.get(), "/cif")).c_str(),
              bench::Mb(bench::DatasetBytes(fs.get(), "/rc")).c_str(),
              bench::Mb(bench::DatasetBytes(fs.get(), "/rcc")).c_str());
  std::printf("%-20s %14s %14s %14s %14s %16s\n", "Format", "AllColumns",
              "1 Integer", "1 String", "1 Map", "1 Str+1 Map");

  for (const auto& row : rows) {
    std::printf("%-20s", row.name);
    for (const auto& [label, projection] : projections) {
      if (!row.projectable && !projection.empty()) {
        // TXT and SEQ read and parse everything regardless of projection;
        // the paper reports one bar for them.
        std::printf(" %13s ", "=all");
        continue;
      }
      colmr::Cell cell =
          colmr::RunScan(fs.get(), row.format, row.path, projection);
      std::printf(" %9.2fs(%4sMB)", cell.seconds,
                  bench::Mb(cell.bytes).c_str());
      report.AddRow()
          .Set("format", row.name)
          .Set("projection", label)
          .Set("seconds", cell.seconds)
          .Set("bytes_read", cell.bytes);
    }
    std::printf("\n");
  }
  report.Write();
  std::printf(
      "\npaper shape: SEQ ~3x faster than TXT; CIF 2.5x-95x faster than SEQ "
      "on projections;\nCIF ~38x faster than uncompressed RCFile on 1 "
      "integer; all converge on AllColumns.\n");
  return 0;
}
