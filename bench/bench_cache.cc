// Block cache and readahead benchmark (DESIGN.md §9): the Table-1-style
// projected CIF scan — find content-types of pages whose URL matches —
// run repeatedly over the same dataset, cache off vs on. The first cached
// run pays the verifying read path and warms the cache; subsequent runs
// serve every block from memory (zero-copy pinned views, no replica
// selection, no CRC re-verification), which is the re-scan speedup a real
// Hadoop cluster gets from the OS page cache on hot data.
//
// Expected shape: warm-cache wall time >= 1.5x faster than the uncached
// scan, with hdfs.cache.hits nonzero and bytes_read collapsing to ~0.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "bench/datasets.h"
#include "cif/cif.h"
#include "cif/cof.h"
#include "mapreduce/engine.h"
#include "workload/crawl.h"

namespace colmr {
namespace {

using bench::Die;

constexpr uint64_t kBaseRecords = 30000;  // ~100 MB heavy-content crawl
constexpr uint64_t kSeed = bench::kDatasetSeed;
constexpr int kReps = 3;

Job ScanJob() {
  Job job;
  job.config.input_paths = {"/data"};
  job.config.projection = {"url", "metadata"};
  job.config.lazy_records = true;
  job.config.parallelism = 1;  // isolate per-byte read cost from threading
  job.input_format = std::make_shared<ColumnInputFormat>();
  job.mapper = [](Record& record, Emitter* out) {
    const std::string& url = record.GetOrDie("url").string_value();
    if (url.find(kCrawlFilterPattern) != std::string::npos) {
      const Value* ct =
          record.GetOrDie("metadata").FindMapEntry(kContentTypeKey);
      if (ct != nullptr) {
        out->Emit(Value::String(ct->string_value()), Value::Null());
      }
    }
  };
  job.reducer = [](const Value& key, const std::vector<Value>&, Emitter* out) {
    out->Emit(key, Value::Null());
  };
  return job;
}

struct RunRow {
  double wall_seconds = 0;
  uint64_t bytes_read = 0;
  uint64_t output_records = 0;
};

RunRow RunOnce(JobRunner* runner, const Job& job) {
  JobReport report;
  Die(runner->Run(job, &report), "run");
  return {report.wall_seconds, report.BytesRead(),
          report.reduce_output_records};
}

}  // namespace
}  // namespace colmr

int main() {
  using namespace colmr;
  const uint64_t records = bench::ScaledCount(kBaseRecords);
  std::fprintf(stderr, "cache: %llu crawl records...\n",
               static_cast<unsigned long long>(records));
  bench::Report report("cache");
  report.Config("records", records);
  report.Config("seed", kSeed);
  report.Config("workload", "crawl/heavy-content");
  report.Config("reps", kReps);

  ClusterConfig cluster = bench::PaperCluster();
  cluster.num_nodes = 2;
  // Block size scaled below PaperCluster's 4 MB so the projected column
  // files (url ~1.5 MB, metadata ~3 MB at scale 1) span several HDFS
  // blocks — otherwise the prefetcher has no upcoming blocks to warm.
  cluster.block_size = 512 * 1024;
  auto fs = std::make_unique<MiniHdfs>(
      cluster, std::make_unique<ColumnPlacementPolicy>(kSeed));

  CofOptions options;
  options.split_target_bytes = 32ull << 20;
  options.default_column.layout = ColumnLayout::kSkipList;
  options.column_overrides["metadata"] = {ColumnLayout::kDictSkipList};
  std::unique_ptr<CofWriter> cof;
  Die(CofWriter::Open(fs.get(), "/data", CrawlSchema(), options, &cof),
      "cof");
  CrawlGenerator gen =
      bench::MakeCrawlGenerator(bench::CrawlProfile::kHeavyContent);
  for (uint64_t i = 0; i < records; ++i) Die(cof->WriteRecord(gen.Next()), "w");
  Die(cof->Close(), "close");

  JobRunner runner(fs.get());

  // Cache off: every rep pays the full verifying read path.
  Job off_job = ScanJob();
  double off_wall = 0;
  RunRow off_row;
  for (int rep = 0; rep < kReps; ++rep) {
    off_row = RunOnce(&runner, off_job);
    off_wall += off_row.wall_seconds;
  }
  off_wall /= kReps;

  // Cache on: one cold run warms it, then the measured warm re-scans.
  Job on_job = ScanJob();
  on_job.config.cache_bytes = 512ull << 20;
  on_job.config.readahead_bytes = 512 * 1024;
  on_job.config.prefetch_depth = 4;
  const RunRow cold_row = RunOnce(&runner, on_job);
  double warm_wall = 0;
  RunRow warm_row;
  for (int rep = 0; rep < kReps; ++rep) {
    warm_row = RunOnce(&runner, on_job);
    warm_wall += warm_row.wall_seconds;
  }
  warm_wall /= kReps;

  const double speedup = off_wall / warm_wall;
  const MetricsSnapshot metrics = MetricsRegistry::Default().Snapshot();
  const auto counter = [&metrics](const char* name) -> uint64_t {
    auto it = metrics.counters.find(name);
    return it == metrics.counters.end() ? 0 : it->second;
  };

  std::printf("=== Block cache: repeated projected CIF scan ===\n");
  std::printf("%-10s %12s %12s\n", "Mode", "Wall(ms)", "Read(MB)");
  std::printf("%-10s %12.2f %12s\n", "off", off_wall * 1e3,
              bench::Mb(off_row.bytes_read).c_str());
  std::printf("%-10s %12.2f %12s\n", "cold", cold_row.wall_seconds * 1e3,
              bench::Mb(cold_row.bytes_read).c_str());
  std::printf("%-10s %12.2f %12s\n", "warm", warm_wall * 1e3,
              bench::Mb(warm_row.bytes_read).c_str());
  std::printf("warm speedup: %.2fx (cache hits %llu, prefetch issued %llu)\n",
              speedup,
              static_cast<unsigned long long>(counter("hdfs.cache.hits")),
              static_cast<unsigned long long>(counter("cif.prefetch.issued")));

  report.AddRow()
      .Set("mode", "off")
      .Set("wall_seconds", off_wall)
      .Set("bytes_read", off_row.bytes_read)
      .Set("output_records", off_row.output_records);
  report.AddRow()
      .Set("mode", "cold")
      .Set("wall_seconds", cold_row.wall_seconds)
      .Set("bytes_read", cold_row.bytes_read)
      .Set("output_records", cold_row.output_records);
  report.AddRow()
      .Set("mode", "warm")
      .Set("wall_seconds", warm_wall)
      .Set("bytes_read", warm_row.bytes_read)
      .Set("output_records", warm_row.output_records);
  report.Config("warm_speedup", speedup);
  report.Write();

  if (off_row.output_records != warm_row.output_records ||
      off_row.output_records != cold_row.output_records) {
    std::fprintf(stderr, "FAIL: output diverged across cache modes\n");
    return 1;
  }
  return 0;
}
