// External sort-merge shuffle (DESIGN.md §12): a word-count job whose map
// output is several times the sort buffer, run in-memory (the baseline)
// and through the spill/merge path at a few buffer sizes and codecs. The
// claims gated in CI:
//
//   * every external arm spills (spill_count > 0) and, at the 4x+ arms,
//     spills at least twice per map task;
//   * buffer occupancy stays bounded — peak is never more than one record
//     past sort_buffer_bytes, no matter how big the map output is;
//   * output is byte-identical to the in-memory baseline in every arm.
//
// The interesting row is wall time vs. peak memory: the external path
// pays merge I/O for a map-side footprint that no longer grows with the
// input.

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/datasets.h"
#include "formats/text/text_format.h"
#include "mapreduce/engine.h"

namespace colmr {
namespace {

using bench::Die;

constexpr uint64_t kBaseSentences = 60000;
constexpr int kFiles = 4;
// One record past the cap is legal (the record that tips the buffer over
// is buffered before the spill); word-count records are ~20 tagged bytes.
constexpr uint64_t kRecordSlack = 64;

void WriteWords(MiniHdfs* fs, const std::string& dir, uint64_t sentences) {
  Schema::Ptr schema;
  Die(Schema::Parse("record S { text: string }", &schema), "schema");
  uint64_t next = 0;
  for (int f = 0; f < kFiles; ++f) {
    std::unique_ptr<TextWriter> writer;
    Die(TextWriter::Open(fs, dir + "/f" + std::to_string(f), schema,
                         &writer),
        "open");
    for (uint64_t w = 0; w < sentences / kFiles; ++w) {
      std::string sentence =
          "word" + std::to_string(next % 2039) + " common tail" +
          std::to_string(next % 17);
      ++next;
      Die(writer->WriteRecord(Value::Record({Value::String(sentence)})),
          "write");
    }
    Die(writer->Close(), "close");
  }
}

Job WordCountJob() {
  Job job;
  job.config.input_paths = {"/in"};
  job.input_format = std::make_shared<TextInputFormat>();
  job.mapper = [](Record& record, Emitter* emit) {
    std::istringstream words(record.GetOrDie("text").string_value());
    std::string word;
    while (words >> word) emit->Emit(Value::String(word), Value::Int32(1));
  };
  job.reducer = [](const Value& key, const std::vector<Value>& values,
                   Emitter* emit) {
    int64_t sum = 0;
    for (const Value& v : values) {
      sum += v.kind() == TypeKind::kInt32 ? v.int32_value()
                                          : v.int64_value();
    }
    emit->Emit(key, Value::Int64(sum));
  };
  return job;
}

bool SameOutput(const std::vector<std::pair<Value, Value>>& a,
                const std::vector<std::pair<Value, Value>>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].first.Compare(b[i].first) != 0 ||
        a[i].second.Compare(b[i].second) != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace
}  // namespace colmr

int main() {
  using namespace colmr;
  const uint64_t sentences = bench::ScaledCount(kBaseSentences);

  ClusterConfig cluster = bench::PaperCluster();
  cluster.num_nodes = 4;
  auto fs = std::make_unique<MiniHdfs>(
      cluster, std::make_unique<ColumnPlacementPolicy>(bench::kDatasetSeed));
  WriteWords(fs.get(), "/in", sentences);
  std::fprintf(stderr, "shuffle: %llu sentences, %s MB on HDFS\n",
               static_cast<unsigned long long>(sentences),
               bench::Mb(fs->TotalStoredBytes()).c_str());

  JobRunner runner(fs.get());
  Job job = WordCountJob();

  // Baseline: the in-memory shuffle everything must byte-match.
  JobReport baseline;
  Die(runner.Run(job, &baseline), "baseline");
  const size_t tasks = baseline.map_tasks.size();
  const uint64_t per_task = baseline.map_output_bytes / (tasks ? tasks : 1);

  bench::Report bench_report("shuffle");
  bench_report.Config("sentences", sentences);
  bench_report.Config("map_tasks", static_cast<uint64_t>(tasks));
  bench_report.Config("map_output_bytes", baseline.map_output_bytes);
  bench_report.Config("per_task_output_bytes", per_task);

  struct Arm {
    const char* label;
    uint64_t sort_buffer;  // 0 = in-memory
    CodecType codec;
    int merge_factor;
  };
  const Arm arms[] = {
      {"in-memory", 0, CodecType::kNone, 10},
      // Per-task output is >= 4x the buffer: the acceptance scenario.
      {"external-4x", per_task / 4, CodecType::kNone, 10},
      // >= 16x plus a small merge factor to force intermediate passes.
      {"external-16x-mf4", per_task / 16, CodecType::kNone, 4},
      {"external-4x-lzf", per_task / 4, CodecType::kLzf, 10},
  };

  std::printf("=== External sort-merge shuffle: word count, %zu tasks ===\n",
              tasks);
  std::printf("%-18s %12s %8s %12s %8s %10s %12s %8s\n", "arm", "buffer(B)",
              "spills", "spill MB", "merges", "wall(s)", "peak buf(B)",
              "output");

  for (const Arm& arm : arms) {
    job.config.sort_buffer_bytes = arm.sort_buffer;
    job.config.spill_codec = arm.codec;
    job.config.merge_factor = arm.merge_factor;
    JobReport report;
    Die(runner.Run(job, &report), arm.label);

    const bool identical = SameOutput(report.output, baseline.output);
    const bool bounded =
        arm.sort_buffer == 0 ||
        report.peak_spill_buffer_bytes <= arm.sort_buffer + kRecordSlack;
    const bool spilled_enough =
        arm.sort_buffer == 0 || report.spill_count >= 2 * tasks;
    std::printf("%-18s %12llu %8llu %12s %8llu %10.3f %12llu %8s%s%s\n",
                arm.label,
                static_cast<unsigned long long>(arm.sort_buffer),
                static_cast<unsigned long long>(report.spill_count),
                bench::Mb(report.spill_bytes).c_str(),
                static_cast<unsigned long long>(report.merge_passes),
                report.wall_seconds,
                static_cast<unsigned long long>(
                    report.peak_spill_buffer_bytes),
                identical ? "same" : "DIFFERS",
                bounded ? "" : "  <-- BUFFER NOT BOUNDED",
                spilled_enough ? "" : "  <-- TOO FEW SPILLS");
    bench_report.AddRow()
        .Set("arm", arm.label)
        .Set("sort_buffer_bytes", arm.sort_buffer)
        .Set("spill_count", report.spill_count)
        .Set("spill_bytes", report.spill_bytes)
        .Set("merge_passes", report.merge_passes)
        .Set("merge_segments", report.merge_segments)
        .Set("shuffle_bytes", report.shuffle_bytes)
        .Set("peak_spill_buffer_bytes", report.peak_spill_buffer_bytes)
        .Set("wall_seconds", report.wall_seconds)
        .Set("output_matches_baseline", identical)
        .Set("buffer_bounded", bounded)
        .Set("spilled_twice_per_task", spilled_enough);
  }
  bench_report.Write();
  std::printf(
      "\nbounded = peak buffer never exceeds sort_buffer_bytes + one\n"
      "record; external output is byte-identical to in-memory by the\n"
      "merge's (key, sequence) tie-break (DESIGN.md §12).\n");
  return 0;
}
