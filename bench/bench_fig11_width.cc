// Reproduces Figure 11 (Appendix B.5): CIF vs RCFile vs SEQ as the number
// of columns per record grows (20/40/80 string columns, ~constant total
// dataset size), scanning {1 column, 10% of columns, all columns}.
//
// Paper shape: CIF beats RCFile whenever few columns are projected; the
// single-column read bandwidth of RCFile *falls* as records get wider
// (fixed row-group overheads amortize over fewer bytes per column) while
// CIF stays flat; scanning all columns, SEQ leads and CIF's gap grows
// with column count.

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/datasets.h"
#include "cif/cif.h"
#include "cif/cof.h"
#include "formats/rcfile/rcfile_format.h"
#include "formats/seq/seq_format.h"
#include "workload/synthetic.h"

namespace colmr {
namespace {

using bench::Die;

constexpr uint64_t kBaseBytes = 60ull << 20;  // ~60 MB per width (paper: 60 GB)

double Bandwidth(MiniHdfs* fs, InputFormat* format, const std::string& path,
                 const std::vector<std::string>& projection,
                 uint64_t raw_bytes) {
  JobConfig config;
  config.input_paths = {path};
  config.projection = projection;
  std::vector<std::string> touch = projection;
  uint64_t sink = 0;
  bench::ScanResult result =
      bench::ScanDataset(fs, format, config, [&](Record& record) {
        if (touch.empty()) return;
        for (const std::string& column : touch) {
          sink += record.GetOrDie(column).string_value().size();
        }
      });
  (void)sink;
  // Read bandwidth as the paper plots it: logical dataset size over scan
  // time.
  return raw_bytes / 1e6 / result.sim_seconds;
}

}  // namespace
}  // namespace colmr

int main() {
  using namespace colmr;
  bench::Report report("fig11_width");
  report.Config("workload", "wide");
  std::printf("=== Figure 11: effect of record width (read MB/s) ===\n");
  std::printf("%8s %14s %10s %10s %10s\n", "Columns", "Scan", "SEQ", "CIF",
              "RCFile16M");

  for (int num_columns : {20, 40, 80}) {
    auto fs = std::make_unique<MiniHdfs>(
        bench::PaperCluster(), std::make_unique<ColumnPlacementPolicy>(11));
    Schema::Ptr schema = WideSchema(num_columns);
    // ~31 bytes of string per column per record.
    const uint64_t records = bench::ScaledCount(
        kBaseBytes / (static_cast<uint64_t>(num_columns) * 31));

    std::unique_ptr<SeqWriter> seq;
    Die(SeqWriter::Open(fs.get(), "/seq", schema, SeqWriterOptions{}, &seq),
        "seq");
    RcFileWriterOptions rc_options;
    rc_options.row_group_size = 16ull << 20;  // the paper's Fig. 11 setting
    std::unique_ptr<RcFileWriter> rc;
    Die(RcFileWriter::Open(fs.get(), "/rc", schema, rc_options, &rc), "rc");
    CofOptions cof_options;
    cof_options.split_target_bytes = 16ull << 20;
    std::unique_ptr<CofWriter> cof;
    Die(CofWriter::Open(fs.get(), "/cif", schema, cof_options, &cof), "cof");

    WideGenerator gen = bench::MakeWideGenerator(num_columns);
    bench::FillWriters(gen, records, {seq.get(), rc.get(), cof.get()});
    const uint64_t raw_bytes = bench::DatasetBytes(fs.get(), "/seq");

    SeqInputFormat seq_format;
    RcFileInputFormat rc_format;
    ColumnInputFormat cif_format;

    std::vector<std::pair<std::string, std::vector<std::string>>> scans;
    scans.emplace_back("1 column", std::vector<std::string>{"c0"});
    std::vector<std::string> tenth;
    for (int c = 0; c < num_columns / 10; ++c) {
      tenth.push_back("c" + std::to_string(c));
    }
    scans.emplace_back("10% columns", tenth);
    std::vector<std::string> all;
    for (int c = 0; c < num_columns; ++c) {
      all.push_back("c" + std::to_string(c));
    }
    scans.emplace_back("all columns", all);

    for (const auto& [label, projection] : scans) {
      const double seq_bw =
          Bandwidth(fs.get(), &seq_format, "/seq", all, raw_bytes);
      const double cif_bw =
          Bandwidth(fs.get(), &cif_format, "/cif", projection, raw_bytes);
      const double rc_bw =
          Bandwidth(fs.get(), &rc_format, "/rc", projection, raw_bytes);
      std::printf("%8d %14s %10.0f %10.0f %10.0f\n", num_columns,
                  label.c_str(), seq_bw, cif_bw, rc_bw);
      report.AddRow()
          .Set("columns", num_columns)
          .Set("scan", label)
          .Set("seq_mb_per_s", seq_bw)
          .Set("cif_mb_per_s", cif_bw)
          .Set("rcfile_mb_per_s", rc_bw);
    }
  }
  report.Write();
  std::printf(
      "\npaper shape: CIF >> RCFile on narrow projections; RCFile's "
      "1-column bandwidth\ndecays with width while CIF stays flat; SEQ "
      "fastest for all-column scans, with\nCIF's overhead growing with "
      "column count.\n");
  return 0;
}
