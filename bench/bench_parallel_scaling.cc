// Wall-clock scaling of the parallel execution engine on the Table 1 scan
// workload: the crawl job (distinct content-types of `ibm.com/jp` pages)
// over a CIF dataset with a {url, metadata} projection, run at
// parallelism 1/2/4/8. Simulated cluster time (map/total seconds) is
// invariant to the local thread count by construction — what the thread
// pool shrinks is JobReport::wall_seconds, reported here as speedup over
// the serial engine.
//
// Speedup is bounded by the machine's cores (this process does real CPU
// work per task); on an N-core box expect ~min(threads, N)x until task
// granularity or the slot gate dominates.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <thread>

#include "bench/bench_util.h"
#include "bench/datasets.h"
#include "cif/cif.h"
#include "cif/cof.h"
#include "mapreduce/engine.h"
#include "workload/crawl.h"

namespace colmr {
namespace {

using bench::Die;

// Sized so one map task does ~1-2 ms of real decode + filter work: small
// tasks drown in thread-pool handoff and the bench reads as a scaling
// cliff (speedup < 1) that the engine does not have. 8000 records across
// 256 KB splits produced 87 tasks of ~0.2 ms each and 4-thread "speedup"
// of 0.6x; 24000 records across 1 MB splits keep >20 tasks while giving
// each one enough work to dominate the handoff.
constexpr uint64_t kBaseRecords = 24000;
constexpr uint64_t kSeed = bench::kDatasetSeed;

// Sanity bounds, recorded in the JSON so a regression (or an under-sized
// COLMR_BENCH_SCALE) is visible without eyeballing the table. The bound
// is relative to the machine: with >1 cores, every thread count up to
// kSaneThreads must beat the serial run; on a single-core box the best
// possible wall-clock speedup is 1.0x, so the bound degrades to "the
// thread pool must not cost more than a quarter over serial" (single-core
// timer noise at these wall times is ~10%, so the floor leaves headroom).
constexpr int kSaneThreads = 4;
constexpr double kSaneSpeedupFloor = 1.0;
constexpr double kSingleCoreOverheadFloor = 0.75;

}  // namespace
}  // namespace colmr

int main() {
  using namespace colmr;
  const uint64_t records = bench::ScaledCount(kBaseRecords);

  ClusterConfig cluster = bench::PaperCluster();
  cluster.num_nodes = 4;  // keeps split scheduling realistic but small
  auto fs = std::make_unique<MiniHdfs>(
      cluster, std::make_unique<ColumnPlacementPolicy>(kSeed));

  Schema::Ptr schema = CrawlSchema();
  CofOptions options;
  options.split_target_bytes = 1024 * 1024;  // many splits → many map tasks
  std::unique_ptr<CofWriter> writer;
  Die(CofWriter::Open(fs.get(), "/data", schema, options, &writer), "cof");

  CrawlGenerator gen =
      bench::MakeCrawlGenerator(bench::CrawlProfile::kCompactContent);
  bench::FillWriters(gen, records, {writer.get()});
  std::fprintf(stderr, "scaling: %llu crawl records, %s MB on HDFS\n",
               static_cast<unsigned long long>(records),
               bench::Mb(fs->TotalStoredBytes()).c_str());

  Job job;
  job.config.input_paths = {"/data"};
  job.config.projection = {"url", "metadata"};
  job.input_format = std::make_shared<ColumnInputFormat>();
  job.mapper = [](Record& record, Emitter* out) {
    const std::string& url = record.GetOrDie("url").string_value();
    if (url.find(kCrawlFilterPattern) != std::string::npos) {
      const Value* ct =
          record.GetOrDie("metadata").FindMapEntry(kContentTypeKey);
      if (ct != nullptr) {
        out->Emit(Value::String(ct->string_value()), Value::Null());
      }
    }
  };
  job.reducer = [](const Value& key, const std::vector<Value>&, Emitter* out) {
    out->Emit(key, Value::Null());
  };

  bench::Report bench_report("parallel_scaling");
  bench_report.Config("records", records);
  bench_report.Config("workload", "crawl/compact-content");
  bench_report.Config("stored_bytes", fs->TotalStoredBytes());
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  const double floor =
      cores > 1 ? kSaneSpeedupFloor : kSingleCoreOverheadFloor;
  bench_report.Config("cores", static_cast<uint64_t>(cores));
  bench_report.Config("sane_threads", kSaneThreads);
  bench_report.Config("sane_speedup_floor", floor);

  std::printf("=== Parallel engine scaling: Table 1 scan workload ===\n");
  std::printf("%-10s %8s %10s %10s %12s\n", "threads", "tasks", "wall(s)",
              "speedup", "output=serial");

  JobRunner runner(fs.get());
  double serial_wall = 0;
  std::vector<std::pair<Value, Value>> serial_output;
  for (int threads : {1, 2, 4, 8}) {
    job.config.parallelism = threads;
    // Best-of-3 wall time: a scheduler hiccup should not masquerade as a
    // scaling cliff.
    double wall = 0;
    JobReport report;
    for (int run = 0; run < 3; ++run) {
      JobReport attempt;
      Die(runner.Run(job, &attempt), "run");
      if (run == 0 || attempt.wall_seconds < wall) wall = attempt.wall_seconds;
      report = std::move(attempt);
    }
    bool identical = true;
    if (threads == 1) {
      serial_wall = wall;
      serial_output = std::move(report.output);
    } else {
      identical = report.output.size() == serial_output.size();
      for (size_t i = 0; identical && i < serial_output.size(); ++i) {
        identical = report.output[i].first.Compare(serial_output[i].first) == 0 &&
                    report.output[i].second.Compare(serial_output[i].second) == 0;
      }
    }
    const double speedup = serial_wall / wall;
    const bool sane =
        threads == 1 || threads > kSaneThreads || speedup > floor;
    std::printf("%-10d %8zu %10.3f %9.2fx %12s%s\n", report.worker_threads,
                report.map_tasks.size(), wall, speedup,
                identical ? "yes" : "NO",
                sane ? "" : "  <-- BELOW SANITY FLOOR");
    bench_report.AddRow()
        .Set("threads", report.worker_threads)
        .Set("tasks", static_cast<uint64_t>(report.map_tasks.size()))
        .Set("wall_seconds", wall)
        .Set("speedup", speedup)
        .Set("output_matches_serial", identical)
        .Set("sane", sane);
  }
  bench_report.Write();
  std::printf(
      "\nspeedup ceiling = min(threads, cores, slots); simulated map/total\n"
      "times are thread-count-invariant (see DESIGN.md execution model).\n");
  return 0;
}
