// Codec ablation for the Section 5.3 trade-off: the LZO stand-in (Lzf)
// versus the ZLIB stand-in (Zlite) on page-like text, map-key material,
// and incompressible binary. Shows the ratio-vs-decompression-CPU
// trade-off the paper exploits: Zlite compresses tighter, Lzf decompresses
// several times faster — and dictionary coding of map keys beats both on
// access cost.

#include <benchmark/benchmark.h>

#include <string>

#include "bench/bench_util.h"
#include "bench/datasets.h"
#include "common/buffer.h"
#include "common/random.h"
#include "compress/codec.h"
#include "compress/dictionary.h"

namespace colmr {
namespace {

std::string MakePayload(int kind, size_t size) {
  Random rng(bench::kDatasetSeed + kind * 101 + 7);
  std::string data;
  data.reserve(size);
  if (kind == 0) {  // page-like text
    std::vector<std::string> vocab;
    for (int i = 0; i < 512; ++i) vocab.push_back(rng.NextWord(3 + i % 9));
    Zipf zipf(vocab.size(), 0.8, 17);
    while (data.size() < size) {
      data += "<p>" + vocab[zipf.Next()] + " " + vocab[zipf.Next()] + "</p>";
    }
  } else if (kind == 1) {  // serialized map keys (small universe)
    const char* const keys[] = {"content-type", "server", "charset",
                                "language", "encoding", "etag"};
    while (data.size() < size) {
      data += keys[rng.Uniform(6)];
      data += '\0';
    }
  } else {  // incompressible binary
    while (data.size() < size) {
      data.push_back(static_cast<char>(rng.Next() & 0xff));
    }
  }
  data.resize(size);
  return data;
}

const char* PayloadName(int kind) {
  return kind == 0 ? "text" : kind == 1 ? "mapkeys" : "binary";
}

void BM_Compress(benchmark::State& state) {
  const CodecType type = static_cast<CodecType>(state.range(0));
  const int kind = static_cast<int>(state.range(1));
  const std::string payload = MakePayload(kind, 256 * 1024);
  const Codec* codec = GetCodec(type);
  Buffer out;
  for (auto _ : state) {
    out.Clear();
    Status s = codec->Compress(payload, &out);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
  state.SetBytesProcessed(state.iterations() * payload.size());
  state.counters["ratio"] =
      static_cast<double>(payload.size()) / static_cast<double>(out.size());
  state.SetLabel(std::string(codec->name()) + "/" + PayloadName(kind));
}

void BM_Decompress(benchmark::State& state) {
  const CodecType type = static_cast<CodecType>(state.range(0));
  const int kind = static_cast<int>(state.range(1));
  const std::string payload = MakePayload(kind, 256 * 1024);
  const Codec* codec = GetCodec(type);
  Buffer compressed;
  Status s = codec->Compress(payload, &compressed);
  if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  Buffer out;
  for (auto _ : state) {
    out.Clear();
    s = codec->Decompress(compressed.AsSlice(), &out);
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
  state.SetBytesProcessed(state.iterations() * payload.size());
  state.SetLabel(std::string(codec->name()) + "/" + PayloadName(kind));
}

void CodecArgs(benchmark::internal::Benchmark* bench) {
  for (int codec : {static_cast<int>(CodecType::kLzf),
                    static_cast<int>(CodecType::kZlite)}) {
    for (int kind : {0, 1, 2}) {
      bench->Args({codec, kind});
    }
  }
}

BENCHMARK(BM_Compress)->Apply(CodecArgs);
BENCHMARK(BM_Decompress)->Apply(CodecArgs);

// Dictionary access cost: decoding one map value by dictionary lookup,
// the DCSL fast path (no block decompression at all).
void BM_DictionaryLookup(benchmark::State& state) {
  StringDictionary dict;
  Random rng(3);
  std::vector<uint32_t> ids;
  for (int i = 0; i < 64; ++i) {
    ids.push_back(dict.Intern(rng.NextWord(10)));
  }
  uint64_t sum = 0;
  for (auto _ : state) {
    for (uint32_t id : ids) {
      benchmark::DoNotOptimize(sum += dict.Lookup(id).size());
    }
  }
  state.SetItemsProcessed(state.iterations() * ids.size());
}

BENCHMARK(BM_DictionaryLookup);

// Forwards to the console output while mirroring every run into the
// BENCH_codecs.json report (google-benchmark's own JSON reporter can't
// append our config/metrics sections).
class ReportingConsoleReporter : public benchmark::ConsoleReporter {
 public:
  explicit ReportingConsoleReporter(bench::Report* report)
      : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      bench::Report::Row& row = report_->AddRow();
      row.Set("name", run.benchmark_name())
          .Set("label", run.report_label)
          .Set("iterations", static_cast<uint64_t>(run.iterations))
          .Set("real_seconds", run.real_accumulated_time)
          .Set("cpu_seconds", run.cpu_accumulated_time);
      for (const auto& [name, counter] : run.counters) {
        row.Set(name, static_cast<double>(counter));
      }
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

 private:
  bench::Report* report_;
};

}  // namespace
}  // namespace colmr

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  colmr::bench::Report report("codecs");
  report.Config("payload_bytes", static_cast<uint64_t>(256 * 1024));
  colmr::ReportingConsoleReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  report.Write();
  return 0;
}
