#ifndef COLMR_BENCH_DATASETS_H_
#define COLMR_BENCH_DATASETS_H_

// Shared, seeded dataset generation for the bench suite. Every bench
// draws its input records through these factories so (a) two benches
// asking for the same profile see byte-identical data, (b) re-runs are
// reproducible without each binary re-stating generator knobs, and
// (c) BENCH_*.json files produced on different days stay comparable.
//
// All randomness descends from kDatasetSeed; a bench that needs several
// independent streams perturbs it with an explicit small `salt`, never an
// ad-hoc constant.

#include <cstdint>
#include <initializer_list>

#include "bench/bench_util.h"
#include "mapreduce/output_format.h"
#include "workload/crawl.h"
#include "workload/synthetic.h"

namespace colmr {
namespace bench {

/// Root seed for every bench dataset.
inline constexpr uint64_t kDatasetSeed = 7011;

/// Crawl dataset profiles used across the suite. The content column is
/// the knob: it is what row-oriented formats are forced to read, so its
/// size decides whether an experiment is dominated by the unread column
/// (Table 1) or by the columns the job touches (co-location).
enum class CrawlProfile {
  /// Table 1 / fault rows: pages of "several KB" as in the paper, so the
  /// content column dominates every SEQ variant's scan.
  kHeavyContent,
  /// Parallel-scaling rows: 1-3 KB pages — enough per-task work to
  /// measure, small enough for many splits at laptop scale.
  kCompactContent,
  /// Co-location rows: tiny content so I/O volume comes from the columns
  /// the job actually reads (the paper stores 160 GB per node).
  kLightContent,
  /// Skip-list ablation: heavy metadata maps (~1.2 KB/row) so a 1000-row
  /// skip jumps ~1 MB and seeking beats reading through.
  kWideMap,
};

inline CrawlGeneratorOptions CrawlOptions(CrawlProfile profile) {
  CrawlGeneratorOptions options;
  // HTTP-response-style headers: multi-token values cost real CPU to
  // deserialize eagerly (the CIF-SL / DCSL savings).
  options.metadata_entries = 12;
  options.metadata_value_words = 5;
  switch (profile) {
    case CrawlProfile::kHeavyContent:
      options.min_content_bytes = 6000;
      options.max_content_bytes = 12000;
      break;
    case CrawlProfile::kCompactContent:
      options.min_content_bytes = 1000;
      options.max_content_bytes = 3000;
      break;
    case CrawlProfile::kLightContent:
      options.min_content_bytes = 50;
      options.max_content_bytes = 150;
      break;
    case CrawlProfile::kWideMap:
      options.metadata_entries = 16;
      options.metadata_value_words = 12;
      break;
  }
  return options;
}

inline CrawlGenerator MakeCrawlGenerator(CrawlProfile profile,
                                         uint64_t salt = 0) {
  return CrawlGenerator(kDatasetSeed + salt, CrawlOptions(profile));
}

/// The Section 6.2 microbenchmark stream (6 strings, 6 ints, 1 map).
inline MicrobenchGenerator MakeMicrobenchGenerator(double hit_fraction = 0.0,
                                                   uint64_t salt = 0) {
  return MicrobenchGenerator(kDatasetSeed + salt, hit_fraction);
}

/// The Fig. 11 record-width stream (num_columns 30-char strings).
inline WideGenerator MakeWideGenerator(int num_columns, uint64_t salt = 0) {
  return WideGenerator(kDatasetSeed + salt, num_columns);
}

/// The pushdown sweep's zone-friendly stream (monotone `seq` + payload).
inline ZonedGenerator MakeZonedGenerator(uint64_t salt = 0) {
  return ZonedGenerator(kDatasetSeed + salt);
}

/// Streams `records` generated records into every writer (the multi-layout
/// experiments write one record to N formats), then closes them all.
template <typename Generator>
void FillWriters(Generator& gen, uint64_t records,
                 std::initializer_list<DatasetWriter*> writers) {
  for (uint64_t i = 0; i < records; ++i) {
    const Value record = gen.Next();
    for (DatasetWriter* writer : writers) {
      Die(writer->WriteRecord(record), "write");
    }
  }
  for (DatasetWriter* writer : writers) {
    Die(writer->Close(), "close");
  }
}

}  // namespace bench
}  // namespace colmr

#endif  // COLMR_BENCH_DATASETS_H_
