// Reproduces Figure 8 (Appendix B.1): the cost of deserialization and
// object creation. Records are 1000 bytes; a fraction f is filled with
// typed data (integers, doubles, or 4-entry maps) and the rest with an
// opaque byte array. Each configuration is scanned two ways:
//
//   native ("C++ in the paper")  — integers/doubles are summed by casting
//       the buffer; maps go into stack-reused std::map nodes.
//   boxed  ("Java in the paper") — every value becomes a separately
//       heap-allocated polymorphic object (BoxedInt/BoxedDouble/BoxedMap),
//       mimicking Java's per-value object creation.
//
// Paper shape: bandwidth falls as f grows for every type; the boxed paths
// fall much faster; boxed maps drop below typical SATA disk bandwidth
// (~100 MB/s) once f exceeds ~60%.

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/datasets.h"
#include "common/coding.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "serde/boxed.h"

namespace colmr {
namespace {

constexpr size_t kRecordBytes = 1000;
constexpr uint64_t kBaseRecords = 30000;  // 30 MB per cell (paper: 1 GB)

enum class Typed { kInt, kDouble, kMap };

const char* TypedName(Typed t) {
  switch (t) {
    case Typed::kInt:
      return "Integers";
    case Typed::kDouble:
      return "Doubles";
    case Typed::kMap:
      return "Maps";
  }
  return "?";
}

// One encoded record: [typed region][filler]. Typed values are
// fixed-width (castable) for ints/doubles; maps are
// varint count + (len-prefixed 8-char key + fixed32 value) entries.
struct Dataset {
  std::string buffer;
  size_t typed_bytes_per_record = 0;
  size_t map_entries_per_map = 4;
};

Dataset Generate(Typed typed, double fraction, uint64_t records) {
  Dataset data;
  Random rng(bench::kDatasetSeed + records * 31 +
             static_cast<int>(typed) * 7 + static_cast<int>(fraction * 100));
  const size_t typed_bytes = static_cast<size_t>(kRecordBytes * fraction);
  data.typed_bytes_per_record = typed_bytes;
  data.buffer.reserve(records * kRecordBytes);

  Buffer record;
  for (uint64_t r = 0; r < records; ++r) {
    record.Clear();
    switch (typed) {
      case Typed::kInt:
        while (record.size() + 4 <= typed_bytes) {
          PutFixed32(&record, static_cast<uint32_t>(rng.Next()));
        }
        break;
      case Typed::kDouble:
        while (record.size() + 8 <= typed_bytes) {
          PutFixed64(&record, rng.Next());
        }
        break;
      case Typed::kMap: {
        // Each map: 4 entries of 8-char mutable-string keys + int values
        // (the paper's map microbenchmark layout), ~57 bytes encoded.
        for (;;) {
          Buffer one_map;
          PutVarint64(&one_map, data.map_entries_per_map);
          for (size_t e = 0; e < data.map_entries_per_map; ++e) {
            PutLengthPrefixed(&one_map, rng.NextWord(8));
            PutFixed32(&one_map, static_cast<uint32_t>(rng.Next()));
          }
          if (record.size() + one_map.size() > typed_bytes) break;
          record.Append(one_map.AsSlice());
        }
        break;
      }
    }
    // Filler byte array up to the full record size.
    const size_t filler = kRecordBytes - record.size();
    for (size_t i = 0; i < filler; ++i) {
      record.PushBack(static_cast<char>('a' + (i & 15)));
    }
    data.buffer.append(record.data(), record.size());
  }
  return data;
}

// Decodes the typed region the "native C++" way. Returns a checksum so
// the work cannot be optimized out.
uint64_t ScanNative(const Dataset& data, Typed typed) {
  uint64_t sum = 0;
  const char* p = data.buffer.data();
  const char* end = p + data.buffer.size();
  while (p < end) {
    const char* typed_end = p + data.typed_bytes_per_record;
    switch (typed) {
      case Typed::kInt: {
        // The paper's C++ trick: cast the buffer and sum in a tight loop.
        const uint32_t* values = reinterpret_cast<const uint32_t*>(p);
        const size_t n = data.typed_bytes_per_record / 4;
        for (size_t i = 0; i < n; ++i) sum += values[i];
        break;
      }
      case Typed::kDouble: {
        const uint64_t* values = reinterpret_cast<const uint64_t*>(p);
        const size_t n = data.typed_bytes_per_record / 8;
        for (size_t i = 0; i < n; ++i) sum += values[i] >> 32;
        break;
      }
      case Typed::kMap: {
        // std::map construction per value, as in the paper's C++ run.
        Slice cursor(p, data.typed_bytes_per_record);
        while (!cursor.empty()) {
          uint64_t count;
          if (!GetVarint64(&cursor, &count).ok()) break;
          std::map<std::string, uint32_t> m;
          for (uint64_t e = 0; e < count; ++e) {
            Slice key;
            uint32_t value;
            if (!GetLengthPrefixed(&cursor, &key).ok()) break;
            if (!GetFixed32(&cursor, &value).ok()) break;
            m.emplace(std::string(key.data(), key.size()), value);
          }
          sum += m.size();
        }
        break;
      }
    }
    // The byte array needs no deserialization: note its first byte.
    if (typed_end < p + kRecordBytes) sum += static_cast<uint8_t>(*typed_end);
    p += kRecordBytes;
  }
  return sum;
}

// Decodes the typed region the "Java" way: one heap object per value.
uint64_t ScanBoxed(const Dataset& data, Typed typed) {
  uint64_t sum = 0;
  const char* p = data.buffer.data();
  const char* end = p + data.buffer.size();
  std::vector<std::unique_ptr<BoxedValue>> objects;
  while (p < end) {
    objects.clear();
    Slice cursor(p, data.typed_bytes_per_record);
    switch (typed) {
      case Typed::kInt:
        while (cursor.size() >= 4) {
          auto boxed = std::make_unique<BoxedInt>();
          uint32_t v;
          GetFixed32(&cursor, &v);
          boxed->value = static_cast<int32_t>(v);
          objects.push_back(std::move(boxed));
        }
        break;
      case Typed::kDouble:
        while (cursor.size() >= 8) {
          auto boxed = std::make_unique<BoxedDouble>();
          uint64_t bits;
          GetFixed64(&cursor, &bits);
          memcpy(&boxed->value, &bits, 8);
          objects.push_back(std::move(boxed));
        }
        break;
      case Typed::kMap:
        while (!cursor.empty()) {
          uint64_t count;
          if (!GetVarint64(&cursor, &count).ok()) break;
          auto boxed = std::make_unique<BoxedMap>();
          for (uint64_t e = 0; e < count; ++e) {
            Slice key;
            uint32_t value;
            if (!GetLengthPrefixed(&cursor, &key).ok()) break;
            if (!GetFixed32(&cursor, &value).ok()) break;
            auto entry = std::make_unique<BoxedInt>();
            entry->value = static_cast<int32_t>(value);
            boxed->entries.emplace(std::string(key.data(), key.size()),
                                   std::move(entry));
          }
          objects.push_back(std::move(boxed));
        }
        break;
    }
    // The byte array becomes an object too (Java: byte[] copy).
    auto filler = std::make_unique<BoxedString>();
    filler->value.assign(p + data.typed_bytes_per_record,
                         kRecordBytes - data.typed_bytes_per_record);
    objects.push_back(std::move(filler));
    for (const auto& object : objects) sum += object->Checksum();
    p += kRecordBytes;
  }
  return sum;
}

}  // namespace
}  // namespace colmr

int main() {
  using namespace colmr;
  const uint64_t records = bench::ScaledCount(kBaseRecords);
  std::printf(
      "=== Figure 8: deserialization overhead — read bandwidth (MB/s) ===\n");
  std::printf("(%llu records x 1000 B per cell)\n\n",
              static_cast<unsigned long long>(records));
  std::printf("%-10s %-8s", "Type", "Path");
  for (int f = 0; f <= 100; f += 20) std::printf(" %7d%%", f);
  std::printf("\n");

  bench::Report report("fig8_deserialization");
  report.Config("records", records);
  report.Config("record_bytes", static_cast<uint64_t>(kRecordBytes));

  uint64_t sink = 0;
  for (Typed typed : {Typed::kInt, Typed::kDouble, Typed::kMap}) {
    for (bool boxed : {false, true}) {
      std::printf("%-10s %-8s", TypedName(typed), boxed ? "boxed" : "native");
      for (int f = 0; f <= 100; f += 20) {
        Dataset data = Generate(typed, f / 100.0, records);
        Stopwatch watch;
        sink += boxed ? ScanBoxed(data, typed) : ScanNative(data, typed);
        const double seconds = watch.ElapsedSeconds();
        const double mb_per_s = data.buffer.size() / 1e6 / seconds;
        std::printf(" %8.0f", mb_per_s);
        report.AddRow()
            .Set("type", TypedName(typed))
            .Set("path", boxed ? "boxed" : "native")
            .Set("typed_fraction", f / 100.0)
            .Set("mb_per_s", mb_per_s);
      }
      std::printf("\n");
    }
  }
  report.Write();
  std::printf(
      "\npaper shape: bandwidth falls with %% typed data; boxed (Java-style) "
      "paths fall\nfaster; boxed maps sink below SATA disk bandwidth "
      "(~100 MB/s) past ~60%%. (sink=%llu)\n",
      static_cast<unsigned long long>(sink & 0xff));
  return 0;
}
