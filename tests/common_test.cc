#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <set>

#include "common/buffer.h"
#include "common/coding.h"
#include "common/crc32.h"
#include "common/random.h"
#include "common/slice.h"
#include "common/status.h"

namespace colmr {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CodesAndMessages) {
  Status s = Status::Corruption("bad block");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_FALSE(s.IsIoError());
  EXPECT_EQ(s.message(), "bad block");
  EXPECT_EQ(s.ToString(), "Corruption: bad block");

  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  auto inner = []() { return Status::IoError("disk gone"); };
  auto outer = [&]() -> Status {
    COLMR_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_TRUE(outer().IsIoError());
}

TEST(SliceTest, BasicViews) {
  std::string data = "hello world";
  Slice s(data);
  EXPECT_EQ(s.size(), 11u);
  EXPECT_EQ(s[0], 'h');
  EXPECT_EQ(s.Prefix(5).ToString(), "hello");
  EXPECT_EQ(s.SubSlice(6, 5).ToString(), "world");
  s.RemovePrefix(6);
  EXPECT_EQ(s.ToString(), "world");
}

TEST(SliceTest, Compare) {
  EXPECT_EQ(Slice("abc").Compare(Slice("abc")), 0);
  EXPECT_LT(Slice("abc").Compare(Slice("abd")), 0);
  EXPECT_LT(Slice("ab").Compare(Slice("abc")), 0);
  EXPECT_GT(Slice("b").Compare(Slice("abc")), 0);
  EXPECT_TRUE(Slice("x") == Slice("x"));
  EXPECT_TRUE(Slice("x") != Slice("y"));
}

TEST(BufferTest, AppendAndTake) {
  Buffer b;
  EXPECT_TRUE(b.empty());
  b.Append("abc", 3);
  b.PushBack('d');
  b.Append(Slice("ef"));
  EXPECT_EQ(b.size(), 6u);
  EXPECT_EQ(b.AsSlice().ToString(), "abcdef");
  std::string taken = b.TakeString();
  EXPECT_EQ(taken, "abcdef");
  EXPECT_TRUE(b.empty());
}

TEST(CodingTest, ZigZagMapsSmallMagnitudes) {
  EXPECT_EQ(ZigZagEncode64(0), 0u);
  EXPECT_EQ(ZigZagEncode64(-1), 1u);
  EXPECT_EQ(ZigZagEncode64(1), 2u);
  EXPECT_EQ(ZigZagEncode64(-2), 3u);
  EXPECT_EQ(ZigZagDecode64(ZigZagEncode64(-123456789)), -123456789);
  EXPECT_EQ(ZigZagDecode32(ZigZagEncode32(std::numeric_limits<int32_t>::min())),
            std::numeric_limits<int32_t>::min());
}

TEST(CodingTest, VarintBoundaries) {
  const uint64_t cases[] = {0,
                            127,
                            128,
                            16383,
                            16384,
                            (1ull << 32) - 1,
                            1ull << 32,
                            std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : cases) {
    Buffer b;
    PutVarint64(&b, v);
    EXPECT_EQ(static_cast<int>(b.size()), VarintLength(v));
    Slice s = b.AsSlice();
    uint64_t decoded;
    ASSERT_TRUE(GetVarint64(&s, &decoded).ok());
    EXPECT_EQ(decoded, v);
    EXPECT_TRUE(s.empty());
  }
}

TEST(CodingTest, TruncatedVarintIsCorruption) {
  Buffer b;
  PutVarint64(&b, 1ull << 40);
  Slice s = b.AsSlice().Prefix(2);
  uint64_t v;
  EXPECT_TRUE(GetVarint64(&s, &v).IsCorruption());
}

TEST(CodingTest, OverlongVarintIsCorruption) {
  std::string bad(11, '\x80');
  Slice s(bad);
  uint64_t v;
  EXPECT_TRUE(GetVarint64(&s, &v).IsCorruption());
}

TEST(CodingTest, TenByteVarintBoundary) {
  // UINT64_MAX is the largest canonical 10-byte varint: nine 0xff
  // continuation bytes carrying bits 0..62, then 0x01 for bit 63.
  const std::string max_encoding(9, '\xff');
  {
    std::string bytes = max_encoding + '\x01';
    Slice s(bytes);
    uint64_t v = 0;
    ASSERT_TRUE(GetVarint64(&s, &v).ok());
    EXPECT_EQ(v, std::numeric_limits<uint64_t>::max());
    EXPECT_TRUE(s.empty());
  }
  // A 10th byte with any payload bit above bit 63 encodes a value that
  // cannot fit in 64 bits; the pre-fix decoder shifted those bits away and
  // decoded this as 0 (aliasing distinct byte strings). Must be rejected.
  {
    std::string bytes = max_encoding + '\x02';
    Slice s(bytes);
    uint64_t v = 0;
    Status status = GetVarint64(&s, &v);
    EXPECT_TRUE(status.IsCorruption()) << status.ToString();
    EXPECT_NE(status.ToString().find("varint overflow"), std::string::npos)
        << status.ToString();
  }
  // Mixed payload-and-continuation in the 10th byte is also overflow, even
  // though an 11th byte follows.
  {
    std::string bytes = max_encoding + '\x83' + '\x00';
    Slice s(bytes);
    uint64_t v = 0;
    EXPECT_TRUE(GetVarint64(&s, &v).IsCorruption());
  }
  // 11-byte input (10 continuation bytes) stays corruption.
  {
    std::string bytes(10, '\x81');
    bytes += '\x00';
    Slice s(bytes);
    uint64_t v = 0;
    EXPECT_TRUE(GetVarint64(&s, &v).IsCorruption());
  }
}

TEST(CodingTest, Varint32Overflow) {
  Buffer b;
  PutVarint64(&b, 1ull << 33);
  Slice s = b.AsSlice();
  uint32_t v;
  EXPECT_TRUE(GetVarint32(&s, &v).IsCorruption());
}

TEST(CodingTest, FixedAndDouble) {
  Buffer b;
  PutFixed32(&b, 0xDEADBEEF);
  PutFixed64(&b, 0x0123456789ABCDEFull);
  PutDouble(&b, 3.14159);
  Slice s = b.AsSlice();
  uint32_t v32;
  uint64_t v64;
  double d;
  ASSERT_TRUE(GetFixed32(&s, &v32).ok());
  ASSERT_TRUE(GetFixed64(&s, &v64).ok());
  ASSERT_TRUE(GetDouble(&s, &d).ok());
  EXPECT_EQ(v32, 0xDEADBEEF);
  EXPECT_EQ(v64, 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(d, 3.14159);
  EXPECT_TRUE(s.empty());
}

TEST(CodingTest, FixedWidthGoldenBytes) {
  // Pins the wire layout: fixed-width integers are little-endian byte
  // sequences regardless of host endianness. A big-endian host memcpy
  // would reverse these and silently break on-disk image portability.
  Buffer b;
  PutFixed32(&b, 0x01020304u);
  PutFixed64(&b, 0x1122334455667788ull);
  const unsigned char expected[] = {0x04, 0x03, 0x02, 0x01,                  //
                                    0x88, 0x77, 0x66, 0x55,                  //
                                    0x44, 0x33, 0x22, 0x11};
  ASSERT_EQ(b.size(), sizeof(expected));
  for (size_t i = 0; i < sizeof(expected); ++i) {
    EXPECT_EQ(static_cast<unsigned char>(b.AsSlice()[i]), expected[i])
        << "byte " << i;
  }
  Slice s = b.AsSlice();
  uint32_t v32;
  uint64_t v64;
  ASSERT_TRUE(GetFixed32(&s, &v32).ok());
  ASSERT_TRUE(GetFixed64(&s, &v64).ok());
  EXPECT_EQ(v32, 0x01020304u);
  EXPECT_EQ(v64, 0x1122334455667788ull);
}

TEST(CodingTest, VarintGoldenBytes) {
  Buffer b;
  PutVarint64(&b, 300);  // 0xAC 0x02: LEB128 low-7-bits-first
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(static_cast<unsigned char>(b.AsSlice()[0]), 0xACu);
  EXPECT_EQ(static_cast<unsigned char>(b.AsSlice()[1]), 0x02u);
}

TEST(CodingTest, LengthPrefixed) {
  Buffer b;
  PutLengthPrefixed(&b, Slice("payload"));
  PutLengthPrefixed(&b, Slice(""));
  Slice s = b.AsSlice();
  Slice a, c;
  ASSERT_TRUE(GetLengthPrefixed(&s, &a).ok());
  ASSERT_TRUE(GetLengthPrefixed(&s, &c).ok());
  EXPECT_EQ(a.ToString(), "payload");
  EXPECT_TRUE(c.empty());
}

TEST(CodingTest, TruncatedLengthPrefixedIsCorruption) {
  Buffer b;
  PutLengthPrefixed(&b, Slice("payload"));
  Slice s = b.AsSlice().Prefix(4);
  Slice out;
  EXPECT_TRUE(GetLengthPrefixed(&s, &out).IsCorruption());
}

// Property sweep: varint encode/decode roundtrips for random values drawn
// from different magnitude bands.
class VarintRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(VarintRoundTripTest, RandomRoundTrips) {
  const int shift = GetParam();
  Random rng(shift * 7919 + 1);
  Buffer b;
  std::vector<uint64_t> values;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.Next() >> shift;
    values.push_back(v);
    PutVarint64(&b, v);
    // Subtract as uint64 (wrapping): the difference of two random 64-bit
    // values overflows int64, which is UB in signed arithmetic.
    PutZigZag64(&b, static_cast<int64_t>(v - rng.Next()));
  }
  Slice s = b.AsSlice();
  Random rng2(shift * 7919 + 1);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v;
    int64_t z;
    ASSERT_TRUE(GetVarint64(&s, &v).ok());
    ASSERT_TRUE(GetZigZag64(&s, &z).ok());
    EXPECT_EQ(v, values[i]);
  }
  EXPECT_TRUE(s.empty());
}

INSTANTIATE_TEST_SUITE_P(MagnitudeBands, VarintRoundTripTest,
                         ::testing::Values(0, 8, 16, 24, 32, 40, 48, 56, 63));

TEST(Crc32Test, KnownVector) {
  // CRC-32 of "123456789" is the classic check value 0xCBF43926.
  EXPECT_EQ(Crc32(Slice("123456789")), 0xCBF43926u);
  EXPECT_EQ(Crc32(Slice("")), 0u);
}

TEST(Crc32Test, ExtendMatchesWhole) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (size_t cut = 0; cut <= data.size(); cut += 7) {
    const uint32_t whole = Crc32(Slice(data));
    const uint32_t split = Crc32Extend(Crc32(Slice(data.data(), cut)),
                                       Slice(data.data() + cut,
                                             data.size() - cut));
    EXPECT_EQ(whole, split);
  }
}

TEST(Crc32Test, DetectsBitFlip) {
  std::string data = "some block of data";
  const uint32_t before = Crc32(Slice(data));
  data[5] ^= 0x01;
  EXPECT_NE(before, Crc32(Slice(data)));
}

TEST(RandomTest, Deterministic) {
  Random a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  bool any_diff = false;
  Random a2(42);
  for (int i = 0; i < 100; ++i) {
    if (a2.Next() != c.Next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RandomTest, UniformInRange) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RandomTest, StringsRespectLengthAndCharset) {
  Random rng(9);
  for (int i = 0; i < 200; ++i) {
    const std::string s = rng.NextString(20, 40);
    EXPECT_GE(s.size(), 20u);
    EXPECT_LE(s.size(), 40u);
    for (char c : s) {
      EXPECT_GE(c, '!');
      EXPECT_LE(c, '~');
    }
    const std::string w = rng.NextWord(4);
    EXPECT_EQ(w.size(), 4u);
    for (char c : w) {
      EXPECT_GE(c, 'a');
      EXPECT_LE(c, 'z');
    }
  }
}

TEST(ZipfTest, SkewsTowardLowRanks) {
  Zipf zipf(1000, 0.9, 11);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t v = zipf.Next();
    ASSERT_LT(v, 1000u);
    counts[v]++;
  }
  // Rank 0 should be sampled far more often than a uniform draw would
  // (20000/1000 = 20 expected under uniform).
  EXPECT_GT(counts[0], 200);
}

}  // namespace
}  // namespace colmr
