// Crash-safe output commit, write-path fault injection, and speculative
// execution (DESIGN.md §11). The invariant under test everywhere: whatever
// fault fires at whatever point — block seal, task commit, job commit,
// node death mid-write, stragglers, duplicate speculative attempts — the
// output directory ends either complete (every part present, _SUCCESS
// marker written) or with no visible output at all, and successful runs
// are byte-identical to a fault-free serial run.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "formats/text/text_format.h"
#include "hdfs/fault_injector.h"
#include "mapreduce/committer.h"
#include "mapreduce/engine.h"

namespace colmr {
namespace {

// CI sweeps the fault schedule seed (COLMR_FAULT_SEED) so probabilistic
// tests hold for every schedule, not one lucky draw.
uint64_t FaultSeed() {
  const char* env = std::getenv("COLMR_FAULT_SEED");
  return env == nullptr ? 17 : std::strtoull(env, nullptr, 10);
}

ClusterConfig TestCluster() {
  ClusterConfig config;
  config.num_nodes = 8;
  config.map_slots_per_node = 2;
  config.block_size = 1024;
  config.io_buffer_size = 256;
  return config;
}

std::unique_ptr<MiniHdfs> MakeFs() {
  return std::make_unique<MiniHdfs>(
      TestCluster(), std::make_unique<ColumnPlacementPolicy>(17));
}

// A text dataset of several files, each a run of synthetic "words". Many
// distinct keys make every reduce partition non-empty and multi-block, so
// write faults have seals to bite on.
void WriteWords(MiniHdfs* fs, const std::string& dir, int files,
                int words_per_file) {
  Schema::Ptr schema;
  ASSERT_TRUE(Schema::Parse("record S { text: string }", &schema).ok());
  int next = 0;
  for (int f = 0; f < files; ++f) {
    std::unique_ptr<TextWriter> writer;
    ASSERT_TRUE(TextWriter::Open(fs, dir + "/f" + std::to_string(f), schema,
                                 &writer)
                    .ok());
    for (int w = 0; w < words_per_file; ++w) {
      std::string sentence = "word" + std::to_string(next % 509) + " common";
      ++next;
      ASSERT_TRUE(
          writer->WriteRecord(Value::Record({Value::String(sentence)})).ok());
    }
    ASSERT_TRUE(writer->Close().ok());
  }
}

Job WordCountJob(const std::string& out) {
  Job job;
  job.config.input_paths = {"/in"};
  job.config.output_path = out;
  job.input_format = std::make_shared<TextInputFormat>();
  job.mapper = [](Record& record, Emitter* emit) {
    std::istringstream words(record.GetOrDie("text").string_value());
    std::string word;
    while (words >> word) emit->Emit(Value::String(word), Value::Int32(1));
  };
  job.reducer = [](const Value& key, const std::vector<Value>& values,
                   Emitter* emit) {
    int64_t sum = 0;
    for (const Value& v : values) sum += v.int32_value();
    emit->Emit(key, Value::Int64(sum));
  };
  return job;
}

std::string ReadFile(MiniHdfs* fs, const std::string& path) {
  std::unique_ptr<FileReader> reader;
  EXPECT_TRUE(fs->Open(path, ReadContext{}, &reader).ok());
  std::string data;
  EXPECT_TRUE(reader->Read(0, reader->size(), &data).ok());
  return data;
}

// Every visible output file (name -> bytes), asserting the committed
// layout: a _SUCCESS marker, part files, and no _temporary residue.
std::map<std::string, std::string> CommittedOutput(MiniHdfs* fs,
                                                   const std::string& out) {
  std::map<std::string, std::string> files;
  std::vector<std::string> children;
  EXPECT_TRUE(fs->ListDir(out, &children).ok());
  bool success = false;
  for (const std::string& child : children) {
    EXPECT_NE(child, OutputCommitter::kTemporaryDir)
        << "_temporary leaked into committed output";
    if (child == OutputCommitter::kSuccessMarker) {
      success = true;
      continue;
    }
    files[child] = ReadFile(fs, out + "/" + child);
  }
  EXPECT_TRUE(success) << "no _SUCCESS marker in " << out;
  return files;
}

void ExpectNoVisibleOutput(MiniHdfs* fs, const std::string& out) {
  EXPECT_FALSE(fs->Exists(out));
  std::vector<std::string> children;
  EXPECT_FALSE(fs->ListDir(out, &children).ok())
      << "failed job left files under " << out;
}

// The fault-free serial reference all fault/speculation runs must match.
std::map<std::string, std::string> BaselineOutput() {
  auto fs = MakeFs();
  WriteWords(fs.get(), "/in", 3, 400);
  Job job = WordCountJob("/out");
  job.config.parallelism = 1;
  JobRunner runner(fs.get());
  JobReport report;
  EXPECT_TRUE(runner.Run(job, &report).ok());
  EXPECT_GT(report.tasks_committed, 0u);
  return CommittedOutput(fs.get(), "/out");
}

TEST(OutputGuardTest, ExistingFileOrDirectoryIsRefusedUpFront) {
  auto fs = MakeFs();
  WriteWords(fs.get(), "/in", 1, 50);

  // A plain file at the output path.
  {
    std::unique_ptr<FileWriter> writer;
    ASSERT_TRUE(fs->Create("/taken", &writer).ok());
    ASSERT_TRUE(writer->Close().ok());
  }
  JobRunner runner(fs.get());
  JobReport report;
  Status s = runner.Run(WordCountJob("/taken"), &report);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  // The guard fires before any task runs.
  EXPECT_EQ(report.map_tasks.size(), 0u);

  // A non-empty directory under the output path.
  {
    std::unique_ptr<FileWriter> writer;
    ASSERT_TRUE(fs->Create("/dir/child", &writer).ok());
    ASSERT_TRUE(writer->Close().ok());
  }
  s = runner.Run(WordCountJob("/dir"), &report);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();

  // Including output a previous successful job committed.
  ASSERT_TRUE(runner.Run(WordCountJob("/out"), &report).ok());
  s = runner.Run(WordCountJob("/out"), &report);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

// Enumerates the crash points of the write/commit path — block seal,
// task commit, job commit, node death mid-write — at probability 1.0:
// the job must fail and leave NO visible output, not a torn directory.
TEST(CrashSafetyTest, EveryFaultPointLeavesNoVisibleOutput) {
  struct Point {
    const char* label;
    void (*arm)(FaultConfig*);
  };
  const Point points[] = {
      {"block seal", [](FaultConfig* f) { f->write_error_p = 1.0; }},
      {"task commit", [](FaultConfig* f) { f->task_commit_error_p = 1.0; }},
      {"job commit", [](FaultConfig* f) { f->job_commit_error_p = 1.0; }},
      {"node death mid-write",
       [](FaultConfig* f) {
         for (NodeId n = 0; n < 8; ++n) f->write_death_nodes.insert(n);
       }},
  };
  for (const Point& point : points) {
    SCOPED_TRACE(point.label);
    auto fs = MakeFs();
    WriteWords(fs.get(), "/in", 3, 400);
    FaultConfig faults;
    faults.seed = FaultSeed();
    point.arm(&faults);
    fs->SetFaultConfig(faults);

    JobRunner runner(fs.get());
    JobReport report;
    const Status s = runner.Run(WordCountJob("/out"), &report);
    EXPECT_FALSE(s.ok()) << point.label;
    ExpectNoVisibleOutput(fs.get(), "/out");
    EXPECT_GT(report.commit_aborts, 0u);
  }
}

// A deterministic mid-write node death: the node hosting partition 0's
// first write attempt dies at its first block seal; the retry lands on a
// fresh node and the job commits output byte-identical to the baseline.
TEST(CrashSafetyTest, WriteDeathFailsOverAndCommitsIdenticalOutput) {
  const auto baseline = BaselineOutput();
  auto fs = MakeFs();
  WriteWords(fs.get(), "/in", 3, 400);
  FaultConfig faults;
  faults.seed = FaultSeed();
  // Output attempts round-robin from the partition index, so partition
  // 0's first attempt writes from node 0.
  faults.write_death_nodes.insert(0);
  fs->SetFaultConfig(faults);

  JobRunner runner(fs.get());
  JobReport report;
  Job job = WordCountJob("/out");
  job.config.parallelism = 1;
  ASSERT_TRUE(runner.Run(job, &report).ok());
  EXPECT_TRUE(fs->IsNodeDead(0));
  EXPECT_GE(report.write_faults, 1u);
  EXPECT_GE(report.write_retries, 1u);
  EXPECT_GE(report.commit_aborts, 1u);  // the torn attempt was aborted
  EXPECT_EQ(CommittedOutput(fs.get(), "/out"), baseline);
}

// Sub-certain write and commit fault probabilities: retries absorb the
// faults and the committed output stays byte-identical to fault-free.
TEST(CrashSafetyTest, PartialFaultsRetryToIdenticalOutput) {
  const auto baseline = BaselineOutput();
  for (int parallelism : {1, 4}) {
    SCOPED_TRACE("parallelism=" + std::to_string(parallelism));
    auto fs = MakeFs();
    WriteWords(fs.get(), "/in", 3, 400);
    FaultConfig faults;
    faults.seed = FaultSeed();
    faults.write_error_p = 0.01;
    faults.task_commit_error_p = 0.1;
    fs->SetFaultConfig(faults);

    JobRunner runner(fs.get());
    Job job = WordCountJob("/out");
    job.config.parallelism = parallelism;
    job.config.max_task_attempts = 8;  // plenty of retry headroom
    JobReport report;
    ASSERT_TRUE(runner.Run(job, &report).ok());
    EXPECT_EQ(CommittedOutput(fs.get(), "/out"), baseline);
  }
}

// The probe run tells us which node executes split 0 (scheduling is
// deterministic), so a fault config can target exactly that node.
NodeId ProbeNodeOfSplit0() {
  auto fs = MakeFs();
  WriteWords(fs.get(), "/in", 3, 400);
  Job job = WordCountJob("/probe");
  job.config.parallelism = 1;
  JobRunner runner(fs.get());
  JobReport report;
  EXPECT_TRUE(runner.Run(job, &report).ok());
  EXPECT_FALSE(report.map_tasks.empty());
  return report.map_tasks[0].node;
}

// An attempt stuck on a slow node exceeds task_timeout_ms, fails back
// into the retry machinery, re-runs on a fresh node, and the job output
// is unchanged.
TEST(StragglerTest, TimeoutFailsOverToFreshNode) {
  const auto baseline = BaselineOutput();
  const NodeId victim = ProbeNodeOfSplit0();

  auto fs = MakeFs();
  WriteWords(fs.get(), "/in", 3, 400);
  FaultConfig faults;
  faults.seed = FaultSeed();
  faults.slow_nodes.insert(victim);
  faults.slow_read_latency_ms = 150;
  fs->SetFaultConfig(faults);

  JobRunner runner(fs.get());
  Job job = WordCountJob("/out");
  job.config.parallelism = 1;
  job.config.task_timeout_ms = 50;
  JobReport report;
  ASSERT_TRUE(runner.Run(job, &report).ok());
  EXPECT_GE(report.task_retries, 1u);
  EXPECT_EQ(CommittedOutput(fs.get(), "/out"), baseline);
  // The stall the straggling attempt ate is real time, visible in the
  // job's wall clock.
  EXPECT_GE(report.wall_seconds, 0.15);
}

// Speculative execution: a slow node makes its tasks lag the completed-
// task median; the monitor launches backup attempts; whoever finishes
// first wins — and the output is byte-identical to the serial baseline.
TEST(StragglerTest, SpeculationIsByteIdenticalUnderSlowNode) {
  const auto baseline = BaselineOutput();
  const NodeId victim = ProbeNodeOfSplit0();

  auto fs = MakeFs();
  WriteWords(fs.get(), "/in", 3, 400);
  FaultConfig faults;
  faults.seed = FaultSeed();
  faults.slow_nodes.insert(victim);
  faults.slow_read_latency_ms = 40;
  fs->SetFaultConfig(faults);

  JobRunner runner(fs.get());
  Job job = WordCountJob("/out");
  job.config.parallelism = 4;
  job.config.speculative_execution = true;
  JobReport report;
  ASSERT_TRUE(runner.Run(job, &report).ok());
  EXPECT_GE(report.speculative_launched, 1u);
  EXPECT_EQ(report.speculative_won + report.speculative_lost,
            report.speculative_launched);
  EXPECT_EQ(CommittedOutput(fs.get(), "/out"), baseline);
}

// Speculation with no stragglers must be a no-op: nothing launched, output
// identical, across thread counts.
TEST(StragglerTest, SpeculationIsNoOpWithoutStragglers) {
  const auto baseline = BaselineOutput();
  auto fs = MakeFs();
  WriteWords(fs.get(), "/in", 3, 400);
  JobRunner runner(fs.get());
  Job job = WordCountJob("/out");
  job.config.parallelism = 4;
  job.config.speculative_execution = true;
  JobReport report;
  ASSERT_TRUE(runner.Run(job, &report).ok());
  EXPECT_EQ(CommittedOutput(fs.get(), "/out"), baseline);
}

// The committer's rename-or-lose race, driven directly: two attempts of
// one task both commit; exactly one wins, the loser aborts cleanly, and
// job commit publishes the winner's bytes.
TEST(CommitterTest, DuplicateAttemptsRaceToOneWinner) {
  auto fs = MakeFs();
  OutputCommitter committer(fs.get(), "/out", nullptr, nullptr);
  ASSERT_TRUE(committer.SetupJob().ok());

  auto write_attempt = [&](int attempt, const std::string& body) {
    std::unique_ptr<FileWriter> writer;
    ASSERT_TRUE(fs->Create(committer.TaskAttemptDir("t_00000", attempt) +
                               "/part-r-00000",
                           &writer)
                    .ok());
    writer->Append(body);
    ASSERT_TRUE(writer->Close().ok());
  };
  write_attempt(0, "from attempt 0\n");
  write_attempt(1, "from attempt 1\n");

  bool won = false;
  ASSERT_TRUE(committer.CommitTask("t_00000", /*attempt=*/1, 1, &won).ok());
  EXPECT_TRUE(won);
  // The slower duplicate loses with OK status and must abort its scratch.
  ASSERT_TRUE(committer.CommitTask("t_00000", /*attempt=*/0, 0, &won).ok());
  EXPECT_FALSE(won);
  ASSERT_TRUE(committer.AbortTask("t_00000", 0).ok());

  ASSERT_TRUE(committer.CommitJob(0).ok());
  const auto files = CommittedOutput(fs.get(), "/out");
  ASSERT_EQ(files.size(), 1u);
  EXPECT_EQ(files.at("part-r-00000"), "from attempt 1\n");
}

// AbortJob rolls the namespace back to nothing, whatever state the
// protocol was in.
TEST(CommitterTest, AbortJobErasesEverything) {
  auto fs = MakeFs();
  OutputCommitter committer(fs.get(), "/out", nullptr, nullptr);
  ASSERT_TRUE(committer.SetupJob().ok());
  std::unique_ptr<FileWriter> writer;
  ASSERT_TRUE(
      fs->Create(committer.TaskAttemptDir("t_00000", 0) + "/part", &writer)
          .ok());
  writer->Append("torn");
  ASSERT_TRUE(writer->Close().ok());
  bool won = false;
  ASSERT_TRUE(committer.CommitTask("t_00000", 0, 0, &won).ok());
  ASSERT_TRUE(committer.AbortJob().ok());
  ExpectNoVisibleOutput(fs.get(), "/out");
  // Idempotent.
  ASSERT_TRUE(committer.AbortJob().ok());
}

}  // namespace
}  // namespace colmr
