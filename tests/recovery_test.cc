#include <gtest/gtest.h>

#include <cstdio>

#include "cif/cif.h"
#include "cif/cof.h"
#include "formats/detect.h"
#include "formats/rcfile/rcfile.h"
#include "formats/seq/seq_file.h"
#include "formats/text/text_format.h"
#include "hdfs/mini_hdfs.h"
#include "mapreduce/engine.h"
#include "workload/weblog.h"

namespace colmr {
namespace {

ClusterConfig TestCluster() {
  ClusterConfig config;
  config.num_nodes = 10;
  config.block_size = 32 * 1024;
  config.io_buffer_size = 4 * 1024;
  return config;
}

void WriteCifDataset(MiniHdfs* fs, const std::string& path, int records) {
  CofOptions options;
  options.split_target_bytes = 64 * 1024;
  std::unique_ptr<CofWriter> writer;
  ASSERT_TRUE(
      CofWriter::Open(fs, path, WeblogSchema(), options, &writer).ok());
  WeblogGenerator gen(3);
  for (int i = 0; i < records; ++i) {
    ASSERT_TRUE(writer->WriteRecord(gen.Next()).ok());
  }
  ASSERT_TRUE(writer->Close().ok());
}

TEST(NodeFailureTest, KillRemovesReplicas) {
  auto fs = std::make_unique<MiniHdfs>(
      TestCluster(), std::make_unique<ColumnPlacementPolicy>(1));
  WriteCifDataset(fs.get(), "/logs", 2000);

  EXPECT_EQ(fs->UnderReplicatedBlockCount(), 0u);
  ASSERT_TRUE(fs->KillNode(4).ok());
  EXPECT_TRUE(fs->IsNodeDead(4));
  EXPECT_TRUE(fs->KillNode(4).IsAlreadyExists());
  EXPECT_TRUE(fs->KillNode(99).IsInvalidArgument());
  // Some blocks lived on node 4 (10 nodes, 3 replicas -> ~30% of blocks).
  EXPECT_GT(fs->UnderReplicatedBlockCount(), 0u);

  // Data is still readable from surviving replicas.
  std::vector<std::string> files;
  ASSERT_TRUE(ExpandInputPaths(fs.get(), {"/logs"}, &files).ok());
  for (const std::string& file : files) {
    std::vector<BlockInfo> blocks;
    ASSERT_TRUE(fs->GetBlockLocations(file, &blocks).ok());
    for (const BlockInfo& block : blocks) {
      EXPECT_GE(block.replicas.size(), 2u);
      for (NodeId node : block.replicas) EXPECT_NE(node, 4);
    }
  }
}

TEST(NodeFailureTest, ReReplicationUnderCppPreservesCoLocation) {
  auto fs = std::make_unique<MiniHdfs>(
      TestCluster(), std::make_unique<ColumnPlacementPolicy>(2));
  WriteCifDataset(fs.get(), "/logs", 2000);

  ColumnInputFormat format;
  JobConfig config;
  config.input_paths = {"/logs"};
  std::vector<InputSplit> splits;
  ASSERT_TRUE(format.GetSplits(fs.get(), config, &splits).ok());
  ASSERT_GT(splits.size(), 1u);
  for (const InputSplit& split : splits) {
    ASSERT_EQ(split.locations.size(), 3u);
  }
  // Kill one of the first split's replica nodes.
  const NodeId victim = splits[0].locations[0];
  ASSERT_TRUE(fs->KillNode(victim).ok());
  ASSERT_GT(fs->UnderReplicatedBlockCount(), 0u);

  ASSERT_TRUE(fs->ReReplicate().ok());
  EXPECT_EQ(fs->UnderReplicatedBlockCount(), 0u);

  // Every split is again co-located on 3 common nodes: CPP repaired each
  // split-directory as a unit.
  ASSERT_TRUE(format.GetSplits(fs.get(), config, &splits).ok());
  for (const InputSplit& split : splits) {
    EXPECT_EQ(split.locations.size(), 3u);
    for (NodeId node : split.locations) EXPECT_NE(node, victim);
  }

  // And the dataset still reads back in full.
  uint64_t records = 0;
  for (const InputSplit& split : splits) {
    std::unique_ptr<RecordReader> reader;
    ASSERT_TRUE(format
                    .CreateRecordReader(fs.get(), config, split, ReadContext{},
                                        &reader)
                    .ok());
    while (reader->Next()) ++records;
    ASSERT_TRUE(reader->status().ok());
  }
  EXPECT_EQ(records, 2000u);
}

TEST(NodeFailureTest, SchedulerAvoidsDeadNodes) {
  auto fs = std::make_unique<MiniHdfs>(
      TestCluster(), std::make_unique<ColumnPlacementPolicy>(3));
  WriteCifDataset(fs.get(), "/logs", 1500);
  ASSERT_TRUE(fs->KillNode(0).ok());
  ASSERT_TRUE(fs->KillNode(1).ok());

  Job job;
  job.config.input_paths = {"/logs"};
  job.config.projection = {"status"};
  job.input_format = std::make_shared<ColumnInputFormat>();
  job.mapper = [](Record& record, Emitter* out) {
    out->Emit(record.GetOrDie("status"), Value::Int32(1));
  };
  JobRunner runner(fs.get());
  JobReport report;
  ASSERT_TRUE(runner.Run(job, &report).ok());
  for (const TaskReport& task : report.map_tasks) {
    EXPECT_NE(task.node, 0);
    EXPECT_NE(task.node, 1);
  }
}

TEST(ImageTest, SaveLoadRoundTrips) {
  const std::string image = ::testing::TempDir() + "/colmr_fs_image.bin";
  {
    auto fs = std::make_unique<MiniHdfs>(
        TestCluster(), std::make_unique<ColumnPlacementPolicy>(4));
    WriteCifDataset(fs.get(), "/logs", 500);
    ASSERT_TRUE(fs->KillNode(7).ok());
    ASSERT_TRUE(fs->SaveImage(image).ok());
  }
  auto fs = std::make_unique<MiniHdfs>(
      ClusterConfig{}, std::make_unique<ColumnPlacementPolicy>(4));
  ASSERT_TRUE(fs->LoadImage(image).ok());
  EXPECT_EQ(fs->config().num_nodes, 10);
  EXPECT_TRUE(fs->IsNodeDead(7));

  // Full dataset read-back after the round trip.
  ColumnInputFormat format;
  JobConfig config;
  config.input_paths = {"/logs"};
  std::vector<InputSplit> splits;
  ASSERT_TRUE(format.GetSplits(fs.get(), config, &splits).ok());
  uint64_t records = 0;
  for (const InputSplit& split : splits) {
    std::unique_ptr<RecordReader> reader;
    ASSERT_TRUE(format
                    .CreateRecordReader(fs.get(), config, split, ReadContext{},
                                        &reader)
                    .ok());
    while (reader->Next()) ++records;
    ASSERT_TRUE(reader->status().ok());
  }
  EXPECT_EQ(records, 500u);

  // Writes after a load get fresh, non-colliding block ids.
  std::unique_ptr<FileWriter> writer;
  ASSERT_TRUE(fs->Create("/extra", &writer).ok());
  writer->Append(Slice("hello"));
  ASSERT_TRUE(writer->Close().ok());
  uint64_t size;
  ASSERT_TRUE(fs->GetFileSize("/extra", &size).ok());
  EXPECT_EQ(size, 5u);
  std::remove(image.c_str());
}

TEST(ImageTest, RejectsGarbage) {
  const std::string image = ::testing::TempDir() + "/colmr_bad_image.bin";
  {
    FILE* f = std::fopen(image.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not an image", f);
    std::fclose(f);
  }
  auto fs = MiniHdfs::CreateDefault();
  EXPECT_TRUE(fs->LoadImage(image).IsCorruption());
  EXPECT_TRUE(fs->LoadImage("/no/such/file").IsIoError());
  std::remove(image.c_str());
}

TEST(DetectTest, IdentifiesEveryFormat) {
  auto fs = std::make_unique<MiniHdfs>(
      TestCluster(), std::make_unique<ColumnPlacementPolicy>(5));
  Schema::Ptr schema = WeblogSchema();
  WeblogGenerator gen(6);
  const Value record = gen.Next();

  std::unique_ptr<TextWriter> txt;
  ASSERT_TRUE(TextWriter::Open(fs.get(), "/t", schema, &txt).ok());
  ASSERT_TRUE(txt->WriteRecord(record).ok());
  ASSERT_TRUE(txt->Close().ok());
  std::unique_ptr<SeqWriter> seq;
  ASSERT_TRUE(
      SeqWriter::Open(fs.get(), "/s", schema, SeqWriterOptions{}, &seq).ok());
  ASSERT_TRUE(seq->WriteRecord(record).ok());
  ASSERT_TRUE(seq->Close().ok());
  std::unique_ptr<RcFileWriter> rc;
  ASSERT_TRUE(
      RcFileWriter::Open(fs.get(), "/r", schema, RcFileWriterOptions{}, &rc)
          .ok());
  ASSERT_TRUE(rc->WriteRecord(record).ok());
  ASSERT_TRUE(rc->Close().ok());
  std::unique_ptr<CofWriter> cof;
  ASSERT_TRUE(
      CofWriter::Open(fs.get(), "/c", schema, CofOptions{}, &cof).ok());
  ASSERT_TRUE(cof->WriteRecord(record).ok());
  ASSERT_TRUE(cof->Close().ok());

  const std::pair<const char*, const char*> expectations[] = {
      {"/t", "txt"}, {"/s", "seq"}, {"/r", "rcfile"}, {"/c", "cif"}};
  for (const auto& [path, expected] : expectations) {
    std::shared_ptr<InputFormat> format;
    std::string name;
    ASSERT_TRUE(DetectInputFormat(fs.get(), path, &format, &name).ok())
        << path;
    EXPECT_EQ(name, expected) << path;
    EXPECT_EQ(format->name(), expected);
  }
  std::shared_ptr<InputFormat> format;
  EXPECT_FALSE(DetectInputFormat(fs.get(), "/missing", &format, nullptr).ok());
}

TEST(CombinerTest, ReducesShuffleBytesWithSameResult) {
  auto fs = std::make_unique<MiniHdfs>(
      TestCluster(), std::make_unique<ColumnPlacementPolicy>(8));
  WriteCifDataset(fs.get(), "/logs", 3000);

  auto make_job = [&](bool with_combiner) {
    Job job;
    job.config.input_paths = {"/logs"};
    job.config.projection = {"status"};
    job.input_format = std::make_shared<ColumnInputFormat>();
    job.mapper = [](Record& record, Emitter* out) {
      out->Emit(record.GetOrDie("status"), Value::Int64(1));
    };
    ReduceFn sum = [](const Value& key, const std::vector<Value>& values,
                      Emitter* out) {
      int64_t total = 0;
      for (const Value& v : values) total += v.int64_value();
      out->Emit(key, Value::Int64(total));
    };
    job.reducer = sum;
    if (with_combiner) job.combiner = sum;
    return job;
  };

  JobRunner runner(fs.get());
  JobReport without, with;
  ASSERT_TRUE(runner.Run(make_job(false), &without).ok());
  ASSERT_TRUE(runner.Run(make_job(true), &with).ok());

  // Same aggregate answer...
  auto to_map = [](const JobReport& report) {
    std::map<int32_t, int64_t> result;
    for (const auto& [key, value] : report.output) {
      result[key.int32_value()] = value.int64_value();
    }
    return result;
  };
  EXPECT_EQ(to_map(without), to_map(with));
  int64_t total = 0;
  for (const auto& [status, count] : to_map(with)) total += count;
  EXPECT_EQ(total, 3000);

  // ...with far fewer shuffled records and bytes (4 distinct statuses per
  // task instead of one pair per input record).
  EXPECT_LT(with.map_output_records, without.map_output_records / 10);
  EXPECT_LT(with.map_output_bytes, without.map_output_bytes / 10);
}

}  // namespace
}  // namespace colmr
