#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <mutex>

#include "cif/cif.h"
#include "cif/cof.h"
#include "formats/detect.h"
#include "formats/rcfile/rcfile.h"
#include "formats/seq/seq_file.h"
#include "formats/text/text_format.h"
#include "hdfs/mini_hdfs.h"
#include "mapreduce/engine.h"
#include "workload/weblog.h"

namespace colmr {
namespace {

ClusterConfig TestCluster() {
  ClusterConfig config;
  config.num_nodes = 10;
  config.block_size = 32 * 1024;
  config.io_buffer_size = 4 * 1024;
  return config;
}

void WriteCifDataset(MiniHdfs* fs, const std::string& path, int records) {
  CofOptions options;
  options.split_target_bytes = 64 * 1024;
  std::unique_ptr<CofWriter> writer;
  ASSERT_TRUE(
      CofWriter::Open(fs, path, WeblogSchema(), options, &writer).ok());
  WeblogGenerator gen(3);
  for (int i = 0; i < records; ++i) {
    ASSERT_TRUE(writer->WriteRecord(gen.Next()).ok());
  }
  ASSERT_TRUE(writer->Close().ok());
}

TEST(NodeFailureTest, KillRemovesReplicas) {
  auto fs = std::make_unique<MiniHdfs>(
      TestCluster(), std::make_unique<ColumnPlacementPolicy>(1));
  WriteCifDataset(fs.get(), "/logs", 2000);

  EXPECT_EQ(fs->UnderReplicatedBlockCount(), 0u);
  ASSERT_TRUE(fs->KillNode(4).ok());
  EXPECT_TRUE(fs->IsNodeDead(4));
  EXPECT_TRUE(fs->KillNode(4).IsAlreadyExists());
  EXPECT_TRUE(fs->KillNode(99).IsInvalidArgument());
  // Some blocks lived on node 4 (10 nodes, 3 replicas -> ~30% of blocks).
  EXPECT_GT(fs->UnderReplicatedBlockCount(), 0u);

  // Data is still readable from surviving replicas.
  std::vector<std::string> files;
  ASSERT_TRUE(ExpandInputPaths(fs.get(), {"/logs"}, &files).ok());
  for (const std::string& file : files) {
    std::vector<BlockInfo> blocks;
    ASSERT_TRUE(fs->GetBlockLocations(file, &blocks).ok());
    for (const BlockInfo& block : blocks) {
      EXPECT_GE(block.replicas.size(), 2u);
      for (NodeId node : block.replicas) EXPECT_NE(node, 4);
    }
  }
}

TEST(NodeFailureTest, ReReplicationUnderCppPreservesCoLocation) {
  auto fs = std::make_unique<MiniHdfs>(
      TestCluster(), std::make_unique<ColumnPlacementPolicy>(2));
  WriteCifDataset(fs.get(), "/logs", 2000);

  ColumnInputFormat format;
  JobConfig config;
  config.input_paths = {"/logs"};
  std::vector<InputSplit> splits;
  ASSERT_TRUE(format.GetSplits(fs.get(), config, &splits).ok());
  ASSERT_GT(splits.size(), 1u);
  for (const InputSplit& split : splits) {
    ASSERT_EQ(split.locations.size(), 3u);
  }
  // Kill one of the first split's replica nodes.
  const NodeId victim = splits[0].locations[0];
  ASSERT_TRUE(fs->KillNode(victim).ok());
  ASSERT_GT(fs->UnderReplicatedBlockCount(), 0u);

  ASSERT_TRUE(fs->ReReplicate().ok());
  EXPECT_EQ(fs->UnderReplicatedBlockCount(), 0u);

  // Every split is again co-located on 3 common nodes: CPP repaired each
  // split-directory as a unit.
  ASSERT_TRUE(format.GetSplits(fs.get(), config, &splits).ok());
  for (const InputSplit& split : splits) {
    EXPECT_EQ(split.locations.size(), 3u);
    for (NodeId node : split.locations) EXPECT_NE(node, victim);
  }

  // And the dataset still reads back in full.
  uint64_t records = 0;
  for (const InputSplit& split : splits) {
    std::unique_ptr<RecordReader> reader;
    ASSERT_TRUE(format
                    .CreateRecordReader(fs.get(), config, split, ReadContext{},
                                        &reader)
                    .ok());
    while (reader->Next()) ++records;
    ASSERT_TRUE(reader->status().ok());
  }
  EXPECT_EQ(records, 2000u);
}

TEST(NodeFailureTest, SchedulerAvoidsDeadNodes) {
  auto fs = std::make_unique<MiniHdfs>(
      TestCluster(), std::make_unique<ColumnPlacementPolicy>(3));
  WriteCifDataset(fs.get(), "/logs", 1500);
  ASSERT_TRUE(fs->KillNode(0).ok());
  ASSERT_TRUE(fs->KillNode(1).ok());

  Job job;
  job.config.input_paths = {"/logs"};
  job.config.projection = {"status"};
  job.input_format = std::make_shared<ColumnInputFormat>();
  job.mapper = [](Record& record, Emitter* out) {
    out->Emit(record.GetOrDie("status"), Value::Int32(1));
  };
  JobRunner runner(fs.get());
  JobReport report;
  ASSERT_TRUE(runner.Run(job, &report).ok());
  for (const TaskReport& task : report.map_tasks) {
    EXPECT_NE(task.node, 0);
    EXPECT_NE(task.node, 1);
  }
}

// Status-count scan over /logs — the job used by the fault-recovery
// tests below. Returns the reduce output serialized to one string, so
// runs can be compared byte for byte.
Job StatusCountJob(int parallelism) {
  Job job;
  job.config.input_paths = {"/logs"};
  job.config.projection = {"status"};
  job.config.parallelism = parallelism;
  job.input_format = std::make_shared<ColumnInputFormat>();
  job.mapper = [](Record& record, Emitter* out) {
    out->Emit(record.GetOrDie("status"), Value::Int64(1));
  };
  job.reducer = [](const Value& key, const std::vector<Value>& values,
                   Emitter* out) {
    int64_t total = 0;
    for (const Value& v : values) total += v.int64_value();
    out->Emit(key, Value::Int64(total));
  };
  return job;
}

std::string SerializeOutput(const JobReport& report) {
  std::string out;
  for (const auto& [key, value] : report.output) {
    out += key.ToString() + "\t" + value.ToString() + "\n";
  }
  return out;
}

TEST(TaskRetryTest, CorruptedCifReplicaScanIsByteIdentical) {
  // Fault-free baseline on an identically-built filesystem.
  std::string baseline;
  {
    auto fs = std::make_unique<MiniHdfs>(
        TestCluster(), std::make_unique<ColumnPlacementPolicy>(21));
    WriteCifDataset(fs.get(), "/logs", 2000);
    JobRunner runner(fs.get());
    JobReport report;
    ASSERT_TRUE(runner.Run(StatusCountJob(1), &report).ok());
    baseline = SerializeOutput(report);
    ASSERT_FALSE(baseline.empty());
  }

  for (int parallelism : {1, 4}) {
    auto fs = std::make_unique<MiniHdfs>(
        TestCluster(), std::make_unique<ColumnPlacementPolicy>(21));
    WriteCifDataset(fs.get(), "/logs", 2000);
    // Corrupt one replica of a column file the projection reads — the
    // replica that will actually serve, which (scheduling being
    // deterministic) a fault-free dry run reveals: the task's own node
    // when it holds one, else the lowest-id replica.
    std::vector<std::string> files;
    ASSERT_TRUE(ExpandInputPaths(fs.get(), {"/logs"}, &files).ok());
    std::string victim;
    for (const std::string& file : files) {
      if (file.size() >= 11 &&
          file.compare(file.size() - 11, 11, "/status.col") == 0) {
        victim = file;
        break;
      }
    }
    ASSERT_FALSE(victim.empty());

    Job probe = StatusCountJob(1);
    std::vector<InputSplit> splits;
    ASSERT_TRUE(
        probe.input_format->GetSplits(fs.get(), probe.config, &splits).ok());
    size_t victim_split = splits.size();
    for (size_t i = 0; i < splits.size(); ++i) {
      for (const std::string& path : splits[i].paths) {
        if (path == victim) victim_split = i;
      }
    }
    ASSERT_LT(victim_split, splits.size());
    JobReport dry;
    ASSERT_TRUE(JobRunner(fs.get()).Run(probe, &dry).ok());
    const NodeId task_node = dry.map_tasks[victim_split].node;
    std::vector<BlockInfo> blocks;
    ASSERT_TRUE(fs->GetBlockLocations(victim, &blocks).ok());
    std::vector<NodeId> replicas = blocks[0].replicas;
    std::sort(replicas.begin(), replicas.end());
    const NodeId serving =
        std::find(replicas.begin(), replicas.end(), task_node) !=
                replicas.end()
            ? task_node
            : replicas[0];
    size_t ordinal = 0;
    while (blocks[0].replicas[ordinal] != serving) ++ordinal;
    NodeId corrupted = kAnyNode;
    ASSERT_TRUE(fs->CorruptReplica(victim, 0, ordinal, &corrupted).ok());
    ASSERT_EQ(corrupted, serving);

    JobRunner runner(fs.get());
    JobReport report;
    ASSERT_TRUE(runner.Run(StatusCountJob(parallelism), &report).ok());
    // The checksum caught the corrupt replica, the read failed over, and
    // the output is byte-identical to the fault-free run.
    EXPECT_GE(report.checksum_failures, 1u) << "parallelism " << parallelism;
    EXPECT_GE(report.failover_reads, 1u);
    EXPECT_EQ(SerializeOutput(report), baseline);
    EXPECT_EQ(fs->bad_replica_marks(), 1u);
    // Recovery: re-replication repairs the reported replica.
    ASSERT_TRUE(fs->ReReplicate().ok());
    EXPECT_EQ(fs->UnderReplicatedBlockCount(), 0u);
  }
}

TEST(TaskRetryTest, BrokenNodeIsRetriedAwayFromAndBlacklisted) {
  // Fault-free baseline.
  std::string baseline;
  {
    auto fs = std::make_unique<MiniHdfs>(
        TestCluster(), std::make_unique<ColumnPlacementPolicy>(22));
    WriteCifDataset(fs.get(), "/logs", 2000);
    JobRunner runner(fs.get());
    JobReport report;
    ASSERT_TRUE(runner.Run(StatusCountJob(1), &report).ok());
    baseline = SerializeOutput(report);
  }

  for (int parallelism : {1, 4}) {
    auto fs = std::make_unique<MiniHdfs>(
        TestCluster(), std::make_unique<ColumnPlacementPolicy>(22));
    WriteCifDataset(fs.get(), "/logs", 2000);

    // Find a node some split is scheduled on and break it: every read a
    // task issues there fails, so its first attempt dies and the retry
    // lands elsewhere — Hadoop's bad-tracker scenario.
    ColumnInputFormat format;
    JobConfig config;
    config.input_paths = {"/logs"};
    std::vector<InputSplit> splits;
    ASSERT_TRUE(format.GetSplits(fs.get(), config, &splits).ok());
    ASSERT_FALSE(splits.empty());
    const NodeId broken = splits[0].locations[0];
    FaultConfig faults;
    faults.broken_nodes = {broken};
    fs->SetFaultConfig(faults);

    Job job = StatusCountJob(parallelism);
    job.config.node_blacklist_failures = 1;  // first failure blacklists
    JobRunner runner(fs.get());
    JobReport report;
    ASSERT_TRUE(runner.Run(job, &report).ok());

    EXPECT_GE(report.task_retries, 1u);
    ASSERT_EQ(report.blacklisted_nodes.size(), 1u);
    EXPECT_EQ(report.blacklisted_nodes[0], broken);
    // No completed attempt ran on the broken node.
    for (const TaskReport& task : report.map_tasks) {
      EXPECT_NE(task.node, broken);
    }
    EXPECT_EQ(SerializeOutput(report), baseline);
  }
}

TEST(TaskRetryTest, TransientFaultScanCompletesByteIdentical) {
  std::string baseline;
  {
    auto fs = std::make_unique<MiniHdfs>(
        TestCluster(), std::make_unique<ColumnPlacementPolicy>(23));
    WriteCifDataset(fs.get(), "/logs", 2000);
    JobRunner runner(fs.get());
    JobReport report;
    ASSERT_TRUE(runner.Run(StatusCountJob(1), &report).ok());
    baseline = SerializeOutput(report);
  }

  for (int parallelism : {1, 4}) {
    auto fs = std::make_unique<MiniHdfs>(
        TestCluster(), std::make_unique<ColumnPlacementPolicy>(23));
    WriteCifDataset(fs.get(), "/logs", 2000);
    // The projected status column is narrow (the point of CIF), so the
    // scan issues few replica reads; p is raised so the deterministic
    // schedule contains failovers despite the small draw count.
    FaultConfig faults;
    faults.seed = 5;
    faults.read_error_p = 0.2;
    fs->SetFaultConfig(faults);

    JobRunner runner(fs.get());
    JobReport report;
    ASSERT_TRUE(runner.Run(StatusCountJob(parallelism), &report).ok());
    // Failovers happened (some replica attempts drew errors), yet the
    // output matches the fault-free run byte for byte.
    EXPECT_GE(report.failover_reads, 1u);
    EXPECT_EQ(SerializeOutput(report), baseline);
  }
}

TEST(TaskRetryTest, MidJobNodeKillDoesNotChangeOutput) {
  std::string baseline;
  {
    auto fs = std::make_unique<MiniHdfs>(
        TestCluster(), std::make_unique<ColumnPlacementPolicy>(24));
    WriteCifDataset(fs.get(), "/logs", 2000);
    JobRunner runner(fs.get());
    JobReport report;
    ASSERT_TRUE(runner.Run(StatusCountJob(1), &report).ok());
    baseline = SerializeOutput(report);
  }

  for (int parallelism : {1, 4}) {
    auto fs = std::make_unique<MiniHdfs>(
        TestCluster(), std::make_unique<ColumnPlacementPolicy>(24));
    WriteCifDataset(fs.get(), "/logs", 2000);

    ColumnInputFormat format;
    JobConfig config;
    config.input_paths = {"/logs"};
    std::vector<InputSplit> splits;
    ASSERT_TRUE(format.GetSplits(fs.get(), config, &splits).ok());
    const NodeId victim = splits.back().locations[0];

    // Kill a replica-holding node from inside the first map invocation:
    // after scheduling, while tasks are executing. In-flight readers keep
    // serving their snapshots; later block reads fail over to surviving
    // replicas. Output must not change.
    Job job = StatusCountJob(parallelism);
    auto once = std::make_shared<std::once_flag>();
    MiniHdfs* raw_fs = fs.get();
    MapFn inner = job.mapper;
    job.mapper = [once, raw_fs, victim, inner](Record& record, Emitter* out) {
      std::call_once(*once, [&] { ASSERT_TRUE(raw_fs->KillNode(victim).ok()); });
      inner(record, out);
    };
    JobRunner runner(fs.get());
    JobReport report;
    ASSERT_TRUE(runner.Run(job, &report).ok());
    EXPECT_EQ(SerializeOutput(report), baseline);
    EXPECT_TRUE(fs->IsNodeDead(victim));
    EXPECT_GT(fs->UnderReplicatedBlockCount(), 0u);
    ASSERT_TRUE(fs->ReReplicate().ok());
    EXPECT_EQ(fs->UnderReplicatedBlockCount(), 0u);
  }
}

TEST(ImageTest, SaveLoadRoundTrips) {
  const std::string image = ::testing::TempDir() + "/colmr_fs_image.bin";
  {
    auto fs = std::make_unique<MiniHdfs>(
        TestCluster(), std::make_unique<ColumnPlacementPolicy>(4));
    WriteCifDataset(fs.get(), "/logs", 500);
    ASSERT_TRUE(fs->KillNode(7).ok());
    ASSERT_TRUE(fs->SaveImage(image).ok());
  }
  auto fs = std::make_unique<MiniHdfs>(
      ClusterConfig{}, std::make_unique<ColumnPlacementPolicy>(4));
  ASSERT_TRUE(fs->LoadImage(image).ok());
  EXPECT_EQ(fs->config().num_nodes, 10);
  EXPECT_TRUE(fs->IsNodeDead(7));

  // Full dataset read-back after the round trip.
  ColumnInputFormat format;
  JobConfig config;
  config.input_paths = {"/logs"};
  std::vector<InputSplit> splits;
  ASSERT_TRUE(format.GetSplits(fs.get(), config, &splits).ok());
  uint64_t records = 0;
  for (const InputSplit& split : splits) {
    std::unique_ptr<RecordReader> reader;
    ASSERT_TRUE(format
                    .CreateRecordReader(fs.get(), config, split, ReadContext{},
                                        &reader)
                    .ok());
    while (reader->Next()) ++records;
    ASSERT_TRUE(reader->status().ok());
  }
  EXPECT_EQ(records, 500u);

  // Writes after a load get fresh, non-colliding block ids.
  std::unique_ptr<FileWriter> writer;
  ASSERT_TRUE(fs->Create("/extra", &writer).ok());
  writer->Append(Slice("hello"));
  ASSERT_TRUE(writer->Close().ok());
  uint64_t size;
  ASSERT_TRUE(fs->GetFileSize("/extra", &size).ok());
  EXPECT_EQ(size, 5u);
  std::remove(image.c_str());
}

TEST(ImageTest, RejectsGarbage) {
  const std::string image = ::testing::TempDir() + "/colmr_bad_image.bin";
  {
    FILE* f = std::fopen(image.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not an image", f);
    std::fclose(f);
  }
  auto fs = MiniHdfs::CreateDefault();
  EXPECT_TRUE(fs->LoadImage(image).IsCorruption());
  EXPECT_TRUE(fs->LoadImage("/no/such/file").IsIoError());
  std::remove(image.c_str());
}

TEST(DetectTest, IdentifiesEveryFormat) {
  auto fs = std::make_unique<MiniHdfs>(
      TestCluster(), std::make_unique<ColumnPlacementPolicy>(5));
  Schema::Ptr schema = WeblogSchema();
  WeblogGenerator gen(6);
  const Value record = gen.Next();

  std::unique_ptr<TextWriter> txt;
  ASSERT_TRUE(TextWriter::Open(fs.get(), "/t", schema, &txt).ok());
  ASSERT_TRUE(txt->WriteRecord(record).ok());
  ASSERT_TRUE(txt->Close().ok());
  std::unique_ptr<SeqWriter> seq;
  ASSERT_TRUE(
      SeqWriter::Open(fs.get(), "/s", schema, SeqWriterOptions{}, &seq).ok());
  ASSERT_TRUE(seq->WriteRecord(record).ok());
  ASSERT_TRUE(seq->Close().ok());
  std::unique_ptr<RcFileWriter> rc;
  ASSERT_TRUE(
      RcFileWriter::Open(fs.get(), "/r", schema, RcFileWriterOptions{}, &rc)
          .ok());
  ASSERT_TRUE(rc->WriteRecord(record).ok());
  ASSERT_TRUE(rc->Close().ok());
  std::unique_ptr<CofWriter> cof;
  ASSERT_TRUE(
      CofWriter::Open(fs.get(), "/c", schema, CofOptions{}, &cof).ok());
  ASSERT_TRUE(cof->WriteRecord(record).ok());
  ASSERT_TRUE(cof->Close().ok());

  const std::pair<const char*, const char*> expectations[] = {
      {"/t", "txt"}, {"/s", "seq"}, {"/r", "rcfile"}, {"/c", "cif"}};
  for (const auto& [path, expected] : expectations) {
    std::shared_ptr<InputFormat> format;
    std::string name;
    ASSERT_TRUE(DetectInputFormat(fs.get(), path, &format, &name).ok())
        << path;
    EXPECT_EQ(name, expected) << path;
    EXPECT_EQ(format->name(), expected);
  }
  std::shared_ptr<InputFormat> format;
  EXPECT_FALSE(DetectInputFormat(fs.get(), "/missing", &format, nullptr).ok());
}

TEST(CombinerTest, ReducesShuffleBytesWithSameResult) {
  auto fs = std::make_unique<MiniHdfs>(
      TestCluster(), std::make_unique<ColumnPlacementPolicy>(8));
  WriteCifDataset(fs.get(), "/logs", 3000);

  auto make_job = [&](bool with_combiner) {
    Job job;
    job.config.input_paths = {"/logs"};
    job.config.projection = {"status"};
    job.input_format = std::make_shared<ColumnInputFormat>();
    job.mapper = [](Record& record, Emitter* out) {
      out->Emit(record.GetOrDie("status"), Value::Int64(1));
    };
    ReduceFn sum = [](const Value& key, const std::vector<Value>& values,
                      Emitter* out) {
      int64_t total = 0;
      for (const Value& v : values) total += v.int64_value();
      out->Emit(key, Value::Int64(total));
    };
    job.reducer = sum;
    if (with_combiner) job.combiner = sum;
    return job;
  };

  JobRunner runner(fs.get());
  JobReport without, with;
  ASSERT_TRUE(runner.Run(make_job(false), &without).ok());
  ASSERT_TRUE(runner.Run(make_job(true), &with).ok());

  // Same aggregate answer...
  auto to_map = [](const JobReport& report) {
    std::map<int32_t, int64_t> result;
    for (const auto& [key, value] : report.output) {
      result[key.int32_value()] = value.int64_value();
    }
    return result;
  };
  EXPECT_EQ(to_map(without), to_map(with));
  int64_t total = 0;
  for (const auto& [status, count] : to_map(with)) total += count;
  EXPECT_EQ(total, 3000);

  // ...with far fewer shuffled records and bytes (4 distinct statuses per
  // task instead of one pair per input record).
  EXPECT_LT(with.map_output_records, without.map_output_records / 10);
  EXPECT_LT(with.map_output_bytes, without.map_output_bytes / 10);
}

}  // namespace
}  // namespace colmr
