// External sort-merge shuffle (DESIGN.md §12). The load-bearing invariant:
// a job's output is byte-for-byte identical whether the shuffle runs
// in-memory (sort_buffer_bytes == 0) or through the bounded-memory
// spill/merge path — across parallelism, combiner on/off, spill codecs,
// merge factors, and injected write faults. On top of that, the spill
// accounting (spill_count, merge_passes, peak_spill_buffer_bytes) must
// demonstrate that memory actually stayed bounded.
//
// Also home of the pinned-vector tests for the stable shuffle hash: the
// partitioner is a specified function (common/hash.h FNV-1a + splitmix64),
// not std::hash, so its exact outputs are part of the contract.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/hash.h"
#include "formats/text/text_format.h"
#include "hdfs/fault_injector.h"
#include "mapreduce/committer.h"
#include "mapreduce/engine.h"
#include "mapreduce/spill.h"
#include "obs/metrics.h"
#include "serde/encoding.h"

namespace colmr {
namespace {

// CI sweeps the fault schedule seed (COLMR_FAULT_SEED) so probabilistic
// tests hold for every schedule, not one lucky draw.
uint64_t FaultSeed() {
  const char* env = std::getenv("COLMR_FAULT_SEED");
  return env == nullptr ? 17 : std::strtoull(env, nullptr, 10);
}

ClusterConfig TestCluster() {
  ClusterConfig config;
  config.num_nodes = 8;
  config.map_slots_per_node = 2;
  config.block_size = 1024;
  config.io_buffer_size = 256;
  return config;
}

std::unique_ptr<MiniHdfs> MakeFs() {
  return std::make_unique<MiniHdfs>(
      TestCluster(), std::make_unique<ColumnPlacementPolicy>(17));
}

// A text dataset of several files of synthetic "words": many distinct keys
// so every reduce partition is non-empty, plus a heavily repeated key so
// the combiner has something to fold.
void WriteWords(MiniHdfs* fs, const std::string& dir, int files,
                int words_per_file) {
  Schema::Ptr schema;
  ASSERT_TRUE(Schema::Parse("record S { text: string }", &schema).ok());
  int next = 0;
  for (int f = 0; f < files; ++f) {
    std::unique_ptr<TextWriter> writer;
    ASSERT_TRUE(
        TextWriter::Open(fs, dir + "/f" + std::to_string(f), schema, &writer)
            .ok());
    for (int w = 0; w < words_per_file; ++w) {
      std::string sentence = "word" + std::to_string(next % 509) + " common";
      ++next;
      ASSERT_TRUE(
          writer->WriteRecord(Value::Record({Value::String(sentence)})).ok());
    }
    ASSERT_TRUE(writer->Close().ok());
  }
}

Job WordCountJob(const std::string& out, bool with_combiner) {
  Job job;
  job.config.input_paths = {"/in"};
  job.config.output_path = out;
  job.input_format = std::make_shared<TextInputFormat>();
  job.mapper = [](Record& record, Emitter* emit) {
    std::istringstream words(record.GetOrDie("text").string_value());
    std::string word;
    while (words >> word) emit->Emit(Value::String(word), Value::Int32(1));
  };
  ReduceFn sum = [](const Value& key, const std::vector<Value>& values,
                    Emitter* emit) {
    int64_t total = 0;
    for (const Value& v : values) {
      total +=
          v.kind() == TypeKind::kInt32 ? v.int32_value() : v.int64_value();
    }
    emit->Emit(key, Value::Int64(total));
  };
  job.reducer = sum;
  if (with_combiner) job.combiner = sum;
  return job;
}

std::string ReadFile(MiniHdfs* fs, const std::string& path) {
  std::unique_ptr<FileReader> reader;
  EXPECT_TRUE(fs->Open(path, ReadContext{}, &reader).ok());
  std::string data;
  EXPECT_TRUE(reader->Read(0, reader->size(), &data).ok());
  return data;
}

// Every visible output file (name -> bytes), asserting the committed
// layout: a _SUCCESS marker, part files, and no _temporary residue.
std::map<std::string, std::string> CommittedOutput(MiniHdfs* fs,
                                                   const std::string& out) {
  std::map<std::string, std::string> files;
  std::vector<std::string> children;
  EXPECT_TRUE(fs->ListDir(out, &children).ok());
  bool success = false;
  for (const std::string& child : children) {
    EXPECT_NE(child, std::string(OutputCommitter::kTemporaryDir));
    if (child == OutputCommitter::kSuccessMarker) {
      success = true;
      continue;
    }
    files[child] = ReadFile(fs, out + "/" + child);
  }
  EXPECT_TRUE(success) << "no _SUCCESS marker in " << out;
  return files;
}

// report.output rendered to one comparable string.
std::string OutputToString(const JobReport& report) {
  std::string s;
  for (const auto& [key, value] : report.output) {
    s += key.ToString();
    s += '\t';
    s += value.ToString();
    s += '\n';
  }
  return s;
}

// ---------------------------------------------------------------------
// Pinned vectors: the specified hash and the partitioner built on it.
// These exact values are the cross-platform contract — std::hash gave a
// different partition assignment per stdlib, which is the bug this PR
// fixes. If one of these fails, the hash function changed and every
// existing partition assignment and sync marker silently moved.
// ---------------------------------------------------------------------

TEST(StableHashTest, HashBytesVectorsArePinned) {
  EXPECT_EQ(HashBytes(Slice("", 0), 0), 0x5b21f68ffa77f14cull);
  EXPECT_EQ(HashBytes(Slice("hello"), 0), 0x231ca7b6003c0723ull);
  EXPECT_EQ(HashBytes(Slice("hello"), 1), 0x1a322cf0c41ba363ull);
}

TEST(StableHashTest, TaggedValueHashVectorsArePinned) {
  const uint64_t seed = kShufflePartitionSeed;
  EXPECT_EQ(HashTaggedValue(Value::String("the"), seed),
            0x2b16a336a4f586d9ull);
  EXPECT_EQ(HashTaggedValue(Value::Int32(42), seed), 0x838a6579c0a87f56ull);
  EXPECT_EQ(HashTaggedValue(Value::Int64(-7), seed), 0x9d31333e481930a1ull);
  EXPECT_EQ(HashTaggedValue(Value::Double(2.5), seed),
            0xc57597ef7fd96534ull);
  EXPECT_EQ(HashTaggedValue(Value::Null(), seed), 0xd22612d33348f049ull);
}

// The streaming hash must agree with hashing the materialized encoding —
// that equivalence is what lets the partitioner skip the per-pair
// ToString()/Encode allocation the old code paid.
TEST(StableHashTest, StreamingHashMatchesMaterializedEncoding) {
  std::vector<Value> values = {
      Value::Null(),        Value::Bool(true),     Value::Int32(-123456),
      Value::Int64(1ll << 40), Value::Double(3.25), Value::String("shuffle"),
      Value::Record({Value::Int32(7), Value::String("x")}),
  };
  for (const Value& v : values) {
    Buffer encoded;
    EncodeTaggedValue(v, &encoded);
    EXPECT_EQ(HashTaggedValue(v, 99), HashBytes(encoded.AsSlice(), 99))
        << v.ToString();
  }
}

TEST(StableHashTest, ShufflePartitionVectorsArePinned) {
  struct Case {
    const char* word;
    uint32_t part4;
    uint32_t part7;
  };
  const Case cases[] = {
      {"the", 1, 1},  {"quick", 0, 6}, {"brown", 1, 2}, {"fox", 2, 3},
      {"lazy", 1, 5}, {"dog", 0, 0},   {"again", 1, 5},
  };
  for (const Case& c : cases) {
    EXPECT_EQ(ShufflePartition(Value::String(c.word), 4), c.part4) << c.word;
    EXPECT_EQ(ShufflePartition(Value::String(c.word), 7), c.part7) << c.word;
  }
}

// ---------------------------------------------------------------------
// Differential matrix: external output must be byte-identical to the
// in-memory path across buffer sizes, parallelism, combiner, codec, and
// write faults.
// ---------------------------------------------------------------------

struct MatrixReference {
  std::string output;                          // report.output, stringified
  std::map<std::string, std::string> files;    // committed part bytes
};

MatrixReference Baseline() {
  auto fs = MakeFs();
  WriteWords(fs.get(), "/in", 3, 400);
  Job job = WordCountJob("/out", /*with_combiner=*/false);
  job.config.parallelism = 1;
  JobRunner runner(fs.get());
  JobReport report;
  EXPECT_TRUE(runner.Run(job, &report).ok());
  return {OutputToString(report), CommittedOutput(fs.get(), "/out")};
}

TEST(ShuffleSpillTest, ExternalOutputIsByteIdenticalToInMemory) {
  const MatrixReference reference = Baseline();
  ASSERT_FALSE(reference.output.empty());

  // sort_buffer_bytes: tiny (many spills per task), large enough that the
  // only spill is the Finish() flush (exactly one run per task), and 0
  // (the in-memory control arm re-run through the same matrix).
  const uint64_t buffers[] = {64, 1 << 20, 0};
  const int parallelisms[] = {1, 4};
  const bool combiners[] = {false, true};
  // A tiny buffer means dozens of spill files per attempt, i.e. dozens of
  // block seals the injector can bite on — the probability is kept low
  // and the attempt budget high so every seed schedule converges.
  const double fault_ps[] = {0.0, 0.01};

  for (uint64_t sort_buffer : buffers) {
    for (int parallelism : parallelisms) {
      for (bool with_combiner : combiners) {
        for (double fault_p : fault_ps) {
          SCOPED_TRACE("sort_buffer=" + std::to_string(sort_buffer) +
                       " parallelism=" + std::to_string(parallelism) +
                       " combiner=" + std::to_string(with_combiner) +
                       " fault_p=" + std::to_string(fault_p));
          auto fs = MakeFs();
          WriteWords(fs.get(), "/in", 3, 400);
          if (fault_p > 0) {
            FaultConfig faults;
            faults.seed = FaultSeed();
            faults.write_error_p = fault_p;
            fs->SetFaultConfig(faults);
          }
          Job job = WordCountJob("/out", with_combiner);
          job.config.sort_buffer_bytes = sort_buffer;
          job.config.parallelism = parallelism;
          job.config.max_task_attempts = 10;
          job.config.node_blacklist_failures = 1000;
          JobRunner runner(fs.get());
          JobReport report;
          ASSERT_TRUE(runner.Run(job, &report).ok());

          EXPECT_EQ(OutputToString(report), reference.output);
          EXPECT_EQ(CommittedOutput(fs.get(), "/out"), reference.files);
          EXPECT_LE(report.shuffle_bytes, report.map_output_bytes);
          if (sort_buffer == 0) {
            EXPECT_EQ(report.spill_count, 0u);
            EXPECT_EQ(report.spill_bytes, 0u);
          } else {
            EXPECT_GT(report.spill_count, 0u);
            EXPECT_GT(report.spill_bytes, 0u);
            // Bounded memory: the buffer never grew past the cap by more
            // than the single record that tipped it over.
            EXPECT_LE(report.peak_spill_buffer_bytes, sort_buffer + 64);
          }
        }
      }
    }
  }
}

TEST(ShuffleSpillTest, SpillCodecsPreserveOutput) {
  const MatrixReference reference = Baseline();
  for (CodecType codec : {CodecType::kLzf, CodecType::kZlite}) {
    SCOPED_TRACE(static_cast<int>(codec));
    auto fs = MakeFs();
    WriteWords(fs.get(), "/in", 3, 400);
    Job job = WordCountJob("/out", /*with_combiner=*/false);
    job.config.sort_buffer_bytes = 256;
    job.config.parallelism = 4;
    job.config.spill_codec = codec;
    JobRunner runner(fs.get());
    JobReport report;
    ASSERT_TRUE(runner.Run(job, &report).ok());
    EXPECT_EQ(OutputToString(report), reference.output);
    EXPECT_EQ(CommittedOutput(fs.get(), "/out"), reference.files);
    EXPECT_GT(report.spill_count, 0u);
  }
}

TEST(ShuffleSpillTest, SpeculationAndBatchRowsPreserveOutput) {
  const MatrixReference reference = Baseline();
  for (uint64_t batch_rows : {uint64_t{1}, uint64_t{1024}}) {
    SCOPED_TRACE(batch_rows);
    auto fs = MakeFs();
    WriteWords(fs.get(), "/in", 3, 400);
    Job job = WordCountJob("/out", /*with_combiner=*/true);
    job.config.sort_buffer_bytes = 128;
    job.config.parallelism = 4;
    job.config.batch_rows = batch_rows;
    job.config.speculative_execution = true;
    JobRunner runner(fs.get());
    JobReport report;
    ASSERT_TRUE(runner.Run(job, &report).ok());
    EXPECT_EQ(OutputToString(report), reference.output);
    EXPECT_EQ(CommittedOutput(fs.get(), "/out"), reference.files);
  }
}

// ---------------------------------------------------------------------
// Spill accounting invariants.
// ---------------------------------------------------------------------

TEST(ShuffleSpillTest, SpillsAtLeastTwicePerTaskWhenOutputExceedsBuffer) {
  // First pass in-memory to learn the job's true map output volume. The
  // tail split of each input file is smaller than the rest, so size the
  // buffer off the smallest substantial task, not the average: every
  // eligible task's output must exceed 4x the buffer.
  uint64_t min_task_records = 0;
  size_t eligible_tasks = 0;
  uint64_t avg_record_bytes = 0;
  {
    auto fs = MakeFs();
    WriteWords(fs.get(), "/in", 3, 400);
    Job job = WordCountJob("/out", /*with_combiner=*/false);
    JobRunner runner(fs.get());
    JobReport report;
    ASSERT_TRUE(runner.Run(job, &report).ok());
    ASSERT_GT(report.map_output_records, 0u);
    avg_record_bytes = report.map_output_bytes / report.map_output_records;
    for (const TaskReport& task : report.map_tasks) {
      if (task.output_records < 10) continue;  // runt tail split
      ++eligible_tasks;
      if (min_task_records == 0 || task.output_records < min_task_records) {
        min_task_records = task.output_records;
      }
    }
  }
  ASSERT_GT(eligible_tasks, 0u);
  ASSERT_GT(avg_record_bytes, 0u);

  // >= 5x the smallest eligible task's output, so even that task spills
  // at least four times before the Finish() flush.
  const uint64_t sort_buffer = min_task_records * avg_record_bytes / 5;
  ASSERT_GT(sort_buffer, 0u);

  auto fs = MakeFs();
  WriteWords(fs.get(), "/in", 3, 400);
  MetricsRegistry registry;
  Job job = WordCountJob("/out", /*with_combiner=*/false);
  job.config.sort_buffer_bytes = sort_buffer;
  job.config.merge_factor = 2;  // force intermediate merge passes
  job.config.metrics = &registry;
  JobRunner runner(fs.get());
  JobReport report;
  ASSERT_TRUE(runner.Run(job, &report).ok());

  // >= 2 spills per eligible map task: output exceeded the buffer several
  // times over, so no such task fit in a single Finish() flush.
  EXPECT_GE(report.spill_count, 2 * eligible_tasks);
  EXPECT_GT(report.spill_bytes, 0u);
  // merge_factor 2 with >= 2 runs/task forces intermediate passes, and
  // the final reduce-side merge consumes segments too.
  EXPECT_GT(report.merge_passes, 0u);
  EXPECT_GT(report.merge_segments, 0u);
  EXPECT_LE(report.peak_spill_buffer_bytes, sort_buffer + 64);
  EXPECT_LE(report.shuffle_bytes, report.map_output_bytes);

  // The metrics registry saw the same story the report tells.
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("mr.spill.count"), report.spill_count);
  EXPECT_EQ(snapshot.counters.at("mr.spill.bytes"), report.spill_bytes);
  EXPECT_EQ(snapshot.counters.at("mr.spill.merge_passes"),
            report.merge_passes);
  EXPECT_EQ(snapshot.counters.at("mr.spill.merge_segments"),
            report.merge_segments);
}

// A certain write fault on every block seal must fail the job cleanly —
// spill I/O reaches the same sticky-failure path as output writes — and
// leave no visible output.
TEST(ShuffleSpillTest, CertainSpillFaultFailsJobCleanly) {
  auto fs = MakeFs();
  WriteWords(fs.get(), "/in", 2, 200);
  FaultConfig faults;
  faults.seed = FaultSeed();
  faults.write_error_p = 1.0;
  fs->SetFaultConfig(faults);

  Job job = WordCountJob("/out", /*with_combiner=*/false);
  job.config.sort_buffer_bytes = 128;
  JobRunner runner(fs.get());
  JobReport report;
  Status s = runner.Run(job, &report);
  EXPECT_FALSE(s.ok());
  EXPECT_GT(report.write_faults, 0u);
  EXPECT_FALSE(fs->Exists("/out"));
}

// Jobs without an output path (report-only) also take the external path;
// their scratch lives under /_shuffle and is torn down with the run.
TEST(ShuffleSpillTest, ReportOnlyJobCleansScratch) {
  const MatrixReference reference = Baseline();
  auto fs = MakeFs();
  WriteWords(fs.get(), "/in", 3, 400);
  Job job = WordCountJob(/*out=*/"", /*with_combiner=*/false);
  job.config.sort_buffer_bytes = 128;
  job.config.parallelism = 4;
  JobRunner runner(fs.get());
  JobReport report;
  ASSERT_TRUE(runner.Run(job, &report).ok());
  EXPECT_EQ(OutputToString(report), reference.output);
  EXPECT_GT(report.spill_count, 0u);
  EXPECT_FALSE(fs->Exists("/_shuffle"));
}

}  // namespace
}  // namespace colmr
