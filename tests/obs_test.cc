// Observability layer (DESIGN.md §8): metrics registry semantics and
// thread-safety, JSON emission/validation, trace span collection, the
// engine's span tree, reduce-side JobReport counters, and the Figure 10
// acceptance check that CIF-SL skip counters track predicate selectivity.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "cif/cif.h"
#include "cif/cof.h"
#include "hdfs/mini_hdfs.h"
#include "mapreduce/engine.h"
#include "mapreduce/job.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/synthetic.h"

namespace colmr {
namespace {

ClusterConfig TestCluster() {
  ClusterConfig config;
  config.num_nodes = 4;
  config.block_size = 64 * 1024;
  config.io_buffer_size = 4 * 1024;
  return config;
}

std::unique_ptr<MiniHdfs> MakeFs() {
  return std::make_unique<MiniHdfs>(
      TestCluster(), std::make_unique<ColumnPlacementPolicy>(5));
}

// ---- Metric primitives ----

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), uint64_t{kThreads} * kPerThread);
}

TEST(GaugeTest, TracksValueAndMax) {
  Gauge gauge;
  gauge.Set(3);
  EXPECT_EQ(gauge.Add(4), 7);
  EXPECT_EQ(gauge.Add(-5), 2);
  EXPECT_EQ(gauge.value(), 2);
  EXPECT_EQ(gauge.max_value(), 7);
  gauge.Reset();
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_EQ(gauge.max_value(), 0);
}

TEST(GaugeTest, ConcurrentAddsBalanceOut) {
  Gauge gauge;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < 10000; ++i) {
        gauge.Add(1);
        gauge.Add(-1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_GE(gauge.max_value(), 1);
  EXPECT_LE(gauge.max_value(), kThreads);
}

TEST(HistogramTest, BucketBoundsAndCounts) {
  EXPECT_EQ(Histogram::BucketOf(0), 0);
  EXPECT_EQ(Histogram::BucketOf(1), 1);
  EXPECT_EQ(Histogram::BucketOf(2), 2);
  EXPECT_EQ(Histogram::BucketOf(3), 2);
  EXPECT_EQ(Histogram::BucketOf(1024), 11);
  EXPECT_EQ(Histogram::BucketOf(~uint64_t{0}), 64);
  for (int b = 0; b < Histogram::kNumBuckets; ++b) {
    EXPECT_LT(Histogram::BucketLower(b), Histogram::BucketUpper(b)) << b;
  }

  Histogram histogram;
  histogram.Observe(0);
  histogram.Observe(5);
  histogram.Observe(5);
  histogram.Observe(300);
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_EQ(histogram.sum(), 310u);
  EXPECT_EQ(histogram.bucket(0), 1u);
  EXPECT_EQ(histogram.bucket(3), 2u);  // 5 in [4, 8)
  EXPECT_EQ(histogram.bucket(9), 1u);  // 300 in [256, 512)
}

TEST(HistogramTest, QuantileLandsInContainingBucket) {
  MetricsRegistry registry;
  Histogram* histogram = registry.histogram("h");
  // 1..1000 uniformly: the true median 500 lives in bucket [256, 512).
  for (uint64_t v = 1; v <= 1000; ++v) histogram->Observe(v);
  MetricsSnapshot snapshot = registry.Snapshot();
  const auto& data = snapshot.histograms.at("h");
  const double p50 = data.Quantile(0.5);
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 512.0);
  const double p99 = data.Quantile(0.99);
  EXPECT_GE(p99, 512.0);
  EXPECT_LE(p99, 1024.0);
  // Quantiles are monotone in q.
  EXPECT_LE(data.Quantile(0.1), data.Quantile(0.9));
}

TEST(MetricsRegistryTest, LookupReturnsSameObject) {
  MetricsRegistry registry;
  Counter* a = registry.counter("x.y.z");
  Counter* b = registry.counter("x.y.z");
  EXPECT_EQ(a, b);
  // Separate namespaces per metric kind.
  EXPECT_NE(static_cast<void*>(registry.gauge("x.y.z")),
            static_cast<void*>(a));
}

TEST(MetricsRegistryTest, ConcurrentLookupAndIncrement) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 5000; ++i) {
        registry.counter("shared")->Increment();
        registry.histogram("lat")->Observe(static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("shared"), uint64_t{kThreads} * 5000);
  EXPECT_EQ(snapshot.histograms.at("lat").count(), uint64_t{kThreads} * 5000);
}

TEST(MetricsSnapshotTest, DiffSubtractsAndSurvivesReset) {
  MetricsRegistry registry;
  registry.counter("c")->Increment(10);
  registry.gauge("g")->Set(5);
  registry.histogram("h")->Observe(100);
  MetricsSnapshot before = registry.Snapshot();

  registry.counter("c")->Increment(7);
  registry.gauge("g")->Set(2);
  registry.histogram("h")->Observe(100);
  registry.histogram("h")->Observe(200);
  MetricsSnapshot diff = registry.Snapshot().Diff(before);
  EXPECT_EQ(diff.counters.at("c"), 7u);
  // Gauges are levels, not accumulations: diff keeps the current value.
  EXPECT_EQ(diff.gauges.at("g").value, 2);
  EXPECT_EQ(diff.histograms.at("h").count(), 2u);

  // A reset between snapshots must not produce underflowed garbage.
  registry.Reset();
  registry.counter("c")->Increment(3);
  MetricsSnapshot after_reset = registry.Snapshot().Diff(before);
  EXPECT_EQ(after_reset.counters.at("c"), 3u);
}

TEST(MetricsSnapshotTest, NonZeroDropsIdleMetrics) {
  MetricsRegistry registry;
  registry.counter("live")->Increment();
  registry.counter("idle");
  registry.histogram("empty");
  MetricsSnapshot snapshot = registry.Snapshot().NonZero();
  EXPECT_EQ(snapshot.counters.count("live"), 1u);
  EXPECT_EQ(snapshot.counters.count("idle"), 0u);
  EXPECT_EQ(snapshot.histograms.count("empty"), 0u);
}

TEST(MetricsSnapshotTest, TextAndJsonRender) {
  MetricsRegistry registry;
  registry.counter("hdfs.read.ops")->Increment(3);
  registry.gauge("mr.slots.active")->Set(2);
  registry.histogram("hdfs.read.bytes")->Observe(4096);
  MetricsSnapshot snapshot = registry.Snapshot();

  const std::string text = snapshot.ToText();
  EXPECT_NE(text.find("hdfs.read.ops 3"), std::string::npos);

  const std::string json = snapshot.ToJson();
  std::string error;
  EXPECT_TRUE(ValidateJson(json, &error)) << error;
  EXPECT_NE(json.find("\"hdfs.read.ops\":3"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

// ---- JSON writer and validator ----

TEST(JsonWriterTest, EscapesAndNests) {
  JsonWriter w;
  w.BeginObject();
  w.Field("quote\"back\\slash", "tab\there\nnewline");
  w.Field("control", std::string_view("\x01\x1f", 2));
  w.BeginArray("values");
  w.Element(uint64_t{42});
  w.Element("plain");
  w.Element(1.5);
  w.EndArray();
  w.BeginObject("nested");
  w.Field("flag", true);
  w.FieldRaw("raw", "[1,2,3]");
  w.EndObject();
  w.EndObject();

  std::string error;
  EXPECT_TRUE(ValidateJson(w.str(), &error)) << error << "\n" << w.str();
  EXPECT_NE(w.str().find("\\u0001"), std::string::npos);
  EXPECT_NE(w.str().find("\\\""), std::string::npos);
  EXPECT_NE(w.str().find("\"raw\":[1,2,3]"), std::string::npos);
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginObject();
  w.Field("nan", std::nan(""));
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"nan\":null}");
}

TEST(ValidateJsonTest, AcceptsWellFormedDocuments) {
  EXPECT_TRUE(ValidateJson("{}"));
  EXPECT_TRUE(ValidateJson("  [1, 2.5, -3e8, \"x\", null, true] "));
  EXPECT_TRUE(ValidateJson("{\"a\":{\"b\":[{\"c\":\"\\u0041\\n\"}]}}"));
}

TEST(ValidateJsonTest, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",            // empty
      "{",           // unbalanced
      "{\"a\":1,}",  // trailing comma
      "{a: 1}",      // unquoted key
      "[1 2]",       // missing comma
      "\"\\x41\"",   // bad escape
      "NaN",         // not a JSON literal
      "{} trailing", // garbage after the value
      "[01]",        // leading zero
  };
  for (const char* doc : bad) {
    std::string error;
    EXPECT_FALSE(ValidateJson(doc, &error)) << doc;
    EXPECT_FALSE(error.empty()) << doc;
  }
}

// ---- Trace collection ----

struct ParsedEvent {
  std::string name;
  std::string cat;
  char phase = '?';
  uint64_t ts = 0;
  uint64_t dur = 0;
  int tid = 0;

  uint64_t end() const { return ts + dur; }
  bool Contains(const ParsedEvent& other) const {
    return ts <= other.ts && other.end() <= end();
  }
};

// Extracts events from the known trace_event layout; enough structure for
// assertions without a DOM parser (ValidateJson covers well-formedness).
std::vector<ParsedEvent> ParseTrace(const std::string& json) {
  std::vector<ParsedEvent> events;
  const std::string marker = "{\"name\":\"";
  size_t pos = json.find(marker);
  while (pos != std::string::npos) {
    const size_t next = json.find(marker, pos + 1);
    const std::string event = json.substr(
        pos, (next == std::string::npos ? json.size() : next) - pos);
    ParsedEvent parsed;
    auto string_field = [&event](const std::string& key) -> std::string {
      const std::string prefix = "\"" + key + "\":\"";
      const size_t at = event.find(prefix);
      if (at == std::string::npos) return "";
      const size_t start = at + prefix.size();
      return event.substr(start, event.find('"', start) - start);
    };
    auto number_field = [&event](const std::string& key) -> uint64_t {
      const std::string prefix = "\"" + key + "\":";
      const size_t at = event.find(prefix);
      if (at == std::string::npos) return 0;
      return std::strtoull(event.c_str() + at + prefix.size(), nullptr, 10);
    };
    parsed.name = string_field("name");
    parsed.cat = string_field("cat");
    const std::string phase = string_field("ph");
    parsed.phase = phase.empty() ? '?' : phase[0];
    parsed.ts = number_field("ts");
    parsed.dur = number_field("dur");
    parsed.tid = static_cast<int>(number_field("tid"));
    events.push_back(std::move(parsed));
    pos = next;
  }
  return events;
}

TEST(TraceCollectorTest, EmitsValidChromeTraceJson) {
  TraceCollector collector;
  {
    ScopedSpan outer(&collector, "outer", "test");
    outer.AddArg("path", "/a \"quoted\" path");
    outer.AddArg("bytes", uint64_t{123});
    { ScopedSpan inner(&collector, "inner", "test"); }
    TraceInstant(&collector, "marker", "test",
                 {{"why", TraceCollector::JsonValue("because")}});
  }
  EXPECT_EQ(collector.event_count(), 3u);

  const std::string json = collector.ToJson();
  std::string error;
  ASSERT_TRUE(ValidateJson(json, &error)) << error;
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);

  std::vector<ParsedEvent> events = ParseTrace(json);
  ASSERT_EQ(events.size(), 3u);
  // Spans emit at close: inner, marker (instant), then outer.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "marker");
  EXPECT_EQ(events[1].phase, 'i');
  EXPECT_EQ(events[2].name, "outer");
  EXPECT_EQ(events[2].phase, 'X');
  EXPECT_TRUE(events[2].Contains(events[0]));
  EXPECT_GE(events[2].dur, 1u);  // zero-length spans clamp to 1us
}

TEST(TraceCollectorTest, NullCollectorIsNoop) {
  ScopedSpan span(nullptr, "ghost");
  EXPECT_FALSE(span.active());
  span.AddArg("ignored", 1);
  TraceInstant(nullptr, "ghost", "test");
}

TEST(TraceCollectorTest, WriteFileRoundTrips) {
  TraceCollector collector;
  { ScopedSpan span(&collector, "span", "test"); }

  std::string path = ::testing::TempDir() + "/colmr_trace_test.json";
  ASSERT_TRUE(collector.WriteFile(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents(1 << 16, '\0');
  contents.resize(std::fread(contents.data(), 1, contents.size(), f));
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_TRUE(ValidateJson(contents));
  EXPECT_NE(contents.find("\"span\""), std::string::npos);

  EXPECT_FALSE(collector.WriteFile("/nonexistent-dir/trace.json").ok());
}

// ---- Engine integration ----

// A small CIF dataset plus the standard filter-and-count job over it.
std::unique_ptr<MiniHdfs> WriteMicroDataset(uint64_t records,
                                            double hit_fraction,
                                            bool skip_lists) {
  auto fs = MakeFs();
  CofOptions options;
  options.split_target_bytes = 256 * 1024;
  if (skip_lists) {
    options.default_column.layout = ColumnLayout::kSkipList;
    options.column_overrides["str0"] = ColumnOptions{};  // always read
  }
  std::unique_ptr<CofWriter> writer;
  EXPECT_TRUE(CofWriter::Open(fs.get(), "/data", MicrobenchSchema(), options,
                              &writer)
                  .ok());
  MicrobenchGenerator gen(77, hit_fraction);
  for (uint64_t i = 0; i < records; ++i) {
    EXPECT_TRUE(writer->WriteRecord(gen.Next()).ok());
  }
  EXPECT_TRUE(writer->Close().ok());
  return fs;
}

Job MicroScanJob() {
  Job job;
  job.config.input_paths = {"/data"};
  job.config.projection = {"str0", "int0"};
  job.config.parallelism = 1;
  job.input_format = std::make_shared<ColumnInputFormat>();
  job.mapper = [](Record& record, Emitter* out) {
    const int32_t key = record.GetOrDie("int0").int32_value() % 4;
    out->Emit(Value::Int32(key), Value::Int32(1));
  };
  job.reducer = [](const Value& key, const std::vector<Value>& values,
                   Emitter* out) {
    out->Emit(key, Value::Int32(static_cast<int32_t>(values.size())));
  };
  return job;
}

TEST(EngineObservabilityTest, ReduceSideReportCounters) {
  auto fs = WriteMicroDataset(1200, 0.0, false);
  MetricsRegistry registry;
  Job job = MicroScanJob();
  job.config.metrics = &registry;
  JobRunner runner(fs.get());
  JobReport report;
  ASSERT_TRUE(runner.Run(job, &report).ok());

  EXPECT_GT(report.map_output_bytes, 0u);
  EXPECT_EQ(report.shuffle_bytes, report.map_output_bytes);
  uint64_t reduce_inputs = 0;
  for (uint64_t n : report.reduce_input_records) reduce_inputs += n;
  EXPECT_EQ(reduce_inputs, report.map_output_records);

  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("mr.reduce.input_records"), reduce_inputs);
  EXPECT_EQ(snapshot.counters.at("mr.shuffle.bytes"), report.shuffle_bytes);
  EXPECT_EQ(snapshot.counters.at("mr.map.input_records"),
            report.map_input_records);
}

TEST(EngineObservabilityTest, PrivateRegistryIsolatesJobCounters) {
  auto fs = WriteMicroDataset(600, 0.0, false);
  MetricsSnapshot default_before = MetricsRegistry::Default().Snapshot();

  MetricsRegistry registry;
  Job job = MicroScanJob();
  job.config.metrics = &registry;
  JobRunner runner(fs.get());
  JobReport report;
  ASSERT_TRUE(runner.Run(job, &report).ok());

  EXPECT_EQ(registry.Snapshot().counters.at("mr.job.runs"), 1u);
  EXPECT_GT(registry.Snapshot().counters.at("hdfs.read.ops"), 0u);
  // The job-scoped layers (mr/hdfs/cif) must not leak into the default
  // registry. (serde + placement counters stay process-global by design.)
  MetricsSnapshot default_diff =
      MetricsRegistry::Default().Snapshot().Diff(default_before);
  EXPECT_EQ(default_diff.counters["mr.job.runs"], 0u);
  EXPECT_EQ(default_diff.counters["hdfs.read.ops"], 0u);
}

std::string RunTracedJob(MiniHdfs* fs, const std::string& output_path,
                         std::vector<ParsedEvent>* events) {
  TraceCollector collector;
  Job job = MicroScanJob();
  job.config.output_path = output_path;  // exercises the output.write span
  job.config.trace = &collector;
  JobRunner runner(fs);
  JobReport report;
  EXPECT_TRUE(runner.Run(job, &report).ok());
  const std::string json = collector.ToJson();
  *events = ParseTrace(json);
  return json;
}

TEST(EngineObservabilityTest, SpansNestAndAreDeterministicAtParallelism1) {
  auto fs = WriteMicroDataset(1200, 0.0, false);

  std::vector<ParsedEvent> first, second;
  const std::string json = RunTracedJob(fs.get(), "/out1", &first);
  RunTracedJob(fs.get(), "/out2", &second);

  std::string error;
  ASSERT_TRUE(ValidateJson(json, &error)) << error;

  // Determinism: identical span-name sequences across identical runs.
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].name, second[i].name) << "event " << i;
    EXPECT_EQ(first[i].tid, second[i].tid) << "event " << i;
  }
  // Serial execution stays on one track.
  for (const ParsedEvent& event : first) EXPECT_EQ(event.tid, 1);

  auto find = [&first](const std::string& name) -> const ParsedEvent* {
    for (const ParsedEvent& event : first) {
      if (event.name == name) return &event;
    }
    return nullptr;
  };
  const ParsedEvent* job_span = find("job");
  const ParsedEvent* plan = find("plan.splits");
  const ParsedEvent* map_phase = find("map_phase");
  const ParsedEvent* map_task = find("map_task");
  const ParsedEvent* hdfs_read = find("hdfs.read");
  const ParsedEvent* shuffle = find("shuffle");
  const ParsedEvent* reduce_phase = find("reduce_phase");
  const ParsedEvent* reduce_task = find("reduce_task");
  const ParsedEvent* output_write = find("output.write");
  ASSERT_NE(job_span, nullptr);
  ASSERT_NE(plan, nullptr);
  ASSERT_NE(map_phase, nullptr);
  ASSERT_NE(map_task, nullptr);
  ASSERT_NE(hdfs_read, nullptr);
  ASSERT_NE(shuffle, nullptr);
  ASSERT_NE(reduce_phase, nullptr);
  ASSERT_NE(reduce_task, nullptr);
  ASSERT_NE(output_write, nullptr);

  // The span tree: job ⊇ {plan.splits, map_phase ⊇ map_task, shuffle,
  // reduce_phase ⊇ reduce_task, output.write}.
  EXPECT_TRUE(job_span->Contains(*plan));
  EXPECT_TRUE(job_span->Contains(*map_phase));
  EXPECT_TRUE(map_phase->Contains(*map_task));
  EXPECT_TRUE(job_span->Contains(*shuffle));
  EXPECT_TRUE(job_span->Contains(*reduce_phase));
  EXPECT_TRUE(reduce_phase->Contains(*reduce_task));
  EXPECT_TRUE(job_span->Contains(*output_write));
  EXPECT_EQ(hdfs_read->cat, "hdfs");
  // Some hdfs.read lands inside a map task (the column scan itself).
  bool read_in_task = false;
  for (const ParsedEvent& event : first) {
    if (event.name != "hdfs.read") continue;
    for (const ParsedEvent& task : first) {
      if (task.name == "map_task" && task.Contains(event)) {
        read_in_task = true;
      }
    }
  }
  EXPECT_TRUE(read_in_task);
}

TEST(EngineObservabilityTest, TracePathWritesLoadableFile) {
  auto fs = WriteMicroDataset(600, 0.0, false);
  const std::string path = ::testing::TempDir() + "/colmr_job_trace.json";
  Job job = MicroScanJob();
  job.config.trace_path = path;
  JobRunner runner(fs.get());
  JobReport report;
  ASSERT_TRUE(runner.Run(job, &report).ok());

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents(1 << 20, '\0');
  contents.resize(std::fread(contents.data(), 1, contents.size(), f));
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_TRUE(ValidateJson(contents));
  EXPECT_NE(contents.find("\"job\""), std::string::npos);
  EXPECT_NE(contents.find("\"map_task\""), std::string::npos);
}

// ---- Figure 10 acceptance: skip counters track selectivity ----

struct SkipCounters {
  uint64_t rowgroups_skipped = 0;
  uint64_t skipped_bytes = 0;
  uint64_t records = 0;
};

// Scans a CIF-SL dataset with lazy records, touching the map column only
// for matching records — the Fig. 10 access pattern — against a private
// registry so runs stay isolated.
SkipCounters ScanSelective(MiniHdfs* fs) {
  MetricsRegistry registry;
  ColumnInputFormat format;
  JobConfig config;
  config.input_paths = {"/data"};
  config.projection = {"str0", "map0"};
  config.lazy_records = true;
  std::vector<InputSplit> splits;
  EXPECT_TRUE(format.GetSplits(fs, config, &splits).ok());
  SkipCounters result;
  IoStats io;
  for (const InputSplit& split : splits) {
    std::unique_ptr<RecordReader> reader;
    EXPECT_TRUE(format
                    .CreateRecordReader(fs, config, split,
                                        ReadContext{kAnyNode, &io, 0,
                                                    &registry, nullptr},
                                        &reader)
                    .ok());
    while (reader->Next()) {
      Record& record = reader->record();
      const std::string& s = record.GetOrDie("str0").string_value();
      if (s.rfind(kMicrobenchMatchPrefix, 0) == 0) {
        result.records += record.GetOrDie("map0").map_entries().size();
      }
    }
    EXPECT_TRUE(reader->status().ok());
  }
  MetricsSnapshot snapshot = registry.Snapshot();
  result.rowgroups_skipped = snapshot.counters["cif.scan.rowgroups_skipped"];
  result.skipped_bytes = snapshot.counters["cif.scan.skipped_bytes"];
  return result;
}

TEST(Fig10CountersTest, SkipCountersFallMonotonicallyWithSelectivity) {
  // As the match fraction rises, fewer rows of the map column can be
  // skipped, so both Figure 10 counters must fall monotonically.
  const double selectivities[] = {0.01, 0.2, 0.9};
  SkipCounters results[3];
  for (int i = 0; i < 3; ++i) {
    auto fs = WriteMicroDataset(6000, selectivities[i], true);
    results[i] = ScanSelective(fs.get());
  }

  EXPECT_GT(results[0].rowgroups_skipped, 0u);
  EXPECT_GT(results[0].skipped_bytes, 0u);
  EXPECT_GE(results[0].rowgroups_skipped, results[1].rowgroups_skipped);
  EXPECT_GE(results[1].rowgroups_skipped, results[2].rowgroups_skipped);
  EXPECT_GT(results[0].rowgroups_skipped, results[2].rowgroups_skipped);
  EXPECT_GE(results[0].skipped_bytes, results[1].skipped_bytes);
  EXPECT_GE(results[1].skipped_bytes, results[2].skipped_bytes);
  EXPECT_GT(results[0].skipped_bytes, results[2].skipped_bytes);
}

}  // namespace
}  // namespace colmr
