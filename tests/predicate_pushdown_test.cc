#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "cif/cif.h"
#include "cif/cof.h"
#include "cif/column_format.h"
#include "cif/column_reader.h"
#include "cif/column_stats.h"
#include "cif/column_writer.h"
#include "mapreduce/engine.h"
#include "obs/metrics.h"
#include "serde/predicate.h"
#include "serde/record.h"
#include "workload/synthetic.h"

namespace colmr {
namespace {

ClusterConfig TestCluster() {
  ClusterConfig config;
  config.num_nodes = 6;
  config.block_size = 64 * 1024;
  config.io_buffer_size = 4 * 1024;
  return config;
}

std::unique_ptr<MiniHdfs> MakeFs() {
  return std::make_unique<MiniHdfs>(
      TestCluster(), std::make_unique<ColumnPlacementPolicy>(5));
}

// ---- Grammar: parse, validate, round trip ----

TEST(PredicateParseTest, RoundTripsThroughToString) {
  for (const char* text : {
           "a < 5",
           "a <= 5 AND b >= 'x'",
           "(a = 1 OR b != 2.5) AND c IS NOT NULL",
           "a IS NULL OR b > -3",
           "flag = true AND other = false",
       }) {
    Predicate p;
    ASSERT_TRUE(ParsePredicate(text, &p).ok()) << text;
    Predicate again;
    ASSERT_TRUE(ParsePredicate(p.ToString(), &again).ok()) << p.ToString();
    EXPECT_EQ(p.ToString(), again.ToString()) << text;
  }
}

TEST(PredicateParseTest, AcceptsOperatorSpellingsAndEscapes) {
  Predicate p;
  ASSERT_TRUE(ParsePredicate("a == 1 and b <> 'it\\'s' or c = \"q\"", &p).ok());
  EXPECT_EQ(p.op, Predicate::Op::kOr);
  ASSERT_TRUE(ParsePredicate("a < 1e3", &p).ok());
  EXPECT_EQ(p.literal.kind(), TypeKind::kDouble);
  ASSERT_TRUE(ParsePredicate("a < 12", &p).ok());
  EXPECT_EQ(p.literal.kind(), TypeKind::kInt64);
}

TEST(PredicateParseTest, RejectsMalformedInput) {
  Predicate p;
  EXPECT_FALSE(ParsePredicate("", &p).ok());
  EXPECT_FALSE(ParsePredicate("a <", &p).ok());
  EXPECT_FALSE(ParsePredicate("a = 'unterminated", &p).ok());
  EXPECT_FALSE(ParsePredicate("(a = 1", &p).ok());
  EXPECT_FALSE(ParsePredicate("a = 1 extra", &p).ok());
  EXPECT_FALSE(ParsePredicate("AND a = 1", &p).ok());
}

TEST(PredicateValidateTest, ChecksColumnsAndLiteralKinds) {
  Schema::Ptr schema = Schema::Record(
      "T", {{"s", Schema::String()},
            {"i", Schema::Int32()},
            {"m", Schema::Map(Schema::Int32())}});
  Predicate p;
  ASSERT_TRUE(ParsePredicate("s = 'x' AND i < 5", &p).ok());
  EXPECT_TRUE(ValidatePredicate(p, *schema, false).ok());

  ASSERT_TRUE(ParsePredicate("nosuch = 1", &p).ok());
  EXPECT_FALSE(ValidatePredicate(p, *schema, false).ok());
  EXPECT_TRUE(ValidatePredicate(p, *schema, true).ok());

  ASSERT_TRUE(ParsePredicate("m = 1", &p).ok());  // non-primitive column
  EXPECT_FALSE(ValidatePredicate(p, *schema, false).ok());

  ASSERT_TRUE(ParsePredicate("i = 'str'", &p).ok());  // kind mismatch
  EXPECT_FALSE(ValidatePredicate(p, *schema, false).ok());

  ASSERT_TRUE(ParsePredicate("m IS NOT NULL", &p).ok());  // null test is fine
  EXPECT_TRUE(ValidatePredicate(p, *schema, false).ok());
}

TEST(PredicateRowTest, KleeneNullSemantics) {
  Schema::Ptr schema =
      Schema::Record("T", {{"i", Schema::Int64()}, {"n", Schema::Null()}});
  EagerRecord record(schema,
                     Value::Record({Value::Int64(7), Value::Null()}));
  Status status;
  Predicate p;
  ASSERT_TRUE(ParsePredicate("i > 5", &p).ok());
  EXPECT_EQ(EvalPredicateRow(p, record, &status), Tri::kTrue);
  ASSERT_TRUE(ParsePredicate("n > 5", &p).ok());
  EXPECT_EQ(EvalPredicateRow(p, record, &status), Tri::kNull);
  ASSERT_TRUE(ParsePredicate("n > 5 OR i > 5", &p).ok());
  EXPECT_EQ(EvalPredicateRow(p, record, &status), Tri::kTrue);
  ASSERT_TRUE(ParsePredicate("n > 5 AND i > 5", &p).ok());
  EXPECT_EQ(EvalPredicateRow(p, record, &status), Tri::kNull);
  ASSERT_TRUE(ParsePredicate("n IS NULL", &p).ok());
  EXPECT_EQ(EvalPredicateRow(p, record, &status), Tri::kTrue);
  ASSERT_TRUE(ParsePredicate("i IS NULL", &p).ok());
  EXPECT_EQ(EvalPredicateRow(p, record, &status), Tri::kFalse);
  EXPECT_TRUE(status.ok());
}

// ---- Stats footer: write-time accumulation, read-back, edge cases ----

Status WriteInt64Column(MiniHdfs* fs, const std::string& path,
                        const std::vector<int64_t>& values,
                        ColumnLayout layout = ColumnLayout::kPlain) {
  ColumnOptions options;
  options.layout = layout;
  std::unique_ptr<ColumnFileWriter> writer;
  COLMR_RETURN_IF_ERROR(
      ColumnFileWriter::Create(fs, path, Schema::Int64(), options, &writer));
  for (int64_t v : values) {
    COLMR_RETURN_IF_ERROR(writer->Append(Value::Int64(v)));
  }
  return writer->Close();
}

TEST(ColumnStatsTest, FooterRoundTripAcrossRowgroups) {
  auto fs = MakeFs();
  std::vector<int64_t> values;
  for (int64_t i = 0; i < 2500; ++i) values.push_back(i * 3);
  for (ColumnLayout layout :
       {ColumnLayout::kPlain, ColumnLayout::kSkipList,
        ColumnLayout::kCompressedBlocks}) {
    const std::string path =
        "/c" + std::to_string(static_cast<int>(layout)) + ".col";
    ASSERT_TRUE(WriteInt64Column(fs.get(), path, values, layout).ok());

    ColumnFileStats stats;
    bool present = false;
    ASSERT_TRUE(
        ReadColumnStats(fs.get(), path, ReadContext{}, &stats, &present).ok());
    ASSERT_TRUE(present);
    EXPECT_EQ(stats.rows_per_group, kCifStatsRowGroup);
    ASSERT_EQ(stats.groups.size(), 3u);
    EXPECT_EQ(stats.groups[0].min.int64_value(), 0);
    EXPECT_EQ(stats.groups[0].max.int64_value(), 999 * 3);
    EXPECT_EQ(stats.groups[2].min.int64_value(), 2000 * 3);
    EXPECT_EQ(stats.groups[2].max.int64_value(), 2499 * 3);
    EXPECT_EQ(stats.groups[2].values, 500u);
    EXPECT_EQ(stats.file.values, 2500u);
    EXPECT_EQ(stats.file.nulls, 0u);
    ASSERT_TRUE(stats.file.has_min && stats.file.has_max);
    EXPECT_EQ(stats.file.min.int64_value(), 0);
    EXPECT_EQ(stats.file.max.int64_value(), 2499 * 3);

    // The footer must not disturb the scan: every row reads back.
    std::unique_ptr<ColumnFileReader> reader;
    ASSERT_TRUE(
        ColumnFileReader::Open(fs.get(), path, ReadContext{}, &reader).ok());
    ASSERT_EQ(reader->row_count(), 2500u);
    Value v;
    for (int64_t i = 0; i < 2500; ++i) {
      ASSERT_TRUE(reader->ReadValue(&v).ok()) << "row " << i;
      ASSERT_EQ(v.int64_value(), i * 3);
    }
  }
}

TEST(ColumnStatsTest, EmptyColumnHasEmptyFooter) {
  auto fs = MakeFs();
  ASSERT_TRUE(WriteInt64Column(fs.get(), "/empty.col", {}).ok());
  ColumnFileStats stats;
  bool present = false;
  ASSERT_TRUE(ReadColumnStats(fs.get(), "/empty.col", ReadContext{}, &stats,
                              &present)
                  .ok());
  ASSERT_TRUE(present);
  EXPECT_EQ(stats.groups.size(), 0u);
  EXPECT_EQ(stats.file.values, 0u);
  EXPECT_FALSE(stats.file.has_min);
}

TEST(ColumnStatsTest, AllNullColumnCountsButNeverBounds) {
  auto fs = MakeFs();
  std::unique_ptr<ColumnFileWriter> writer;
  ASSERT_TRUE(ColumnFileWriter::Create(fs.get(), "/null.col", Schema::Null(),
                                       ColumnOptions{}, &writer)
                  .ok());
  for (int i = 0; i < 1500; ++i) {
    ASSERT_TRUE(writer->Append(Value::Null()).ok());
  }
  ASSERT_TRUE(writer->Close().ok());
  ColumnFileStats stats;
  bool present = false;
  ASSERT_TRUE(ReadColumnStats(fs.get(), "/null.col", ReadContext{}, &stats,
                              &present)
                  .ok());
  ASSERT_TRUE(present);
  ASSERT_EQ(stats.groups.size(), 2u);
  EXPECT_EQ(stats.groups[0].values, 1000u);
  EXPECT_EQ(stats.groups[0].nulls, 1000u);
  EXPECT_FALSE(stats.groups[0].has_min);
  EXPECT_EQ(stats.file.nulls, 1500u);
  // IS NULL can still match; any comparison is refuted.
  Predicate is_null = Predicate::IsNull("c");
  Predicate cmp = Predicate::Cmp(Predicate::Op::kEq, "c", Value::Int64(1));
  const auto lookup = [&](const std::string&) { return &stats.file; };
  EXPECT_TRUE(PredicateCanMatch(is_null, lookup));
  EXPECT_FALSE(PredicateCanMatch(cmp, lookup));
}

TEST(ColumnStatsTest, NaNDropsGroupBoundsButNotOtherGroups) {
  auto fs = MakeFs();
  std::unique_ptr<ColumnFileWriter> writer;
  ASSERT_TRUE(ColumnFileWriter::Create(fs.get(), "/d.col", Schema::Double(),
                                       ColumnOptions{}, &writer)
                  .ok());
  for (int i = 0; i < 2000; ++i) {
    const double v = (i == 500) ? std::nan("") : static_cast<double>(i);
    ASSERT_TRUE(writer->Append(Value::Double(v)).ok());
  }
  ASSERT_TRUE(writer->Close().ok());
  ColumnFileStats stats;
  bool present = false;
  ASSERT_TRUE(
      ReadColumnStats(fs.get(), "/d.col", ReadContext{}, &stats, &present)
          .ok());
  ASSERT_TRUE(present);
  ASSERT_EQ(stats.groups.size(), 2u);
  EXPECT_FALSE(stats.groups[0].has_min);  // NaN poisoned group 0
  EXPECT_FALSE(stats.groups[0].has_max);
  ASSERT_TRUE(stats.groups[1].has_min);
  EXPECT_EQ(stats.groups[1].min.double_value(), 1000.0);
  // A NaN-poisoned group makes the file-level bounds unknown too.
  EXPECT_FALSE(stats.file.has_min);
  EXPECT_FALSE(stats.file.has_max);
}

TEST(ColumnStatsTest, LongStringBoundsStayConservative) {
  auto fs = MakeFs();
  const std::string lo(100, 'b');
  const std::string hi(100, 'y');
  std::unique_ptr<ColumnFileWriter> writer;
  ASSERT_TRUE(ColumnFileWriter::Create(fs.get(), "/s.col", Schema::String(),
                                       ColumnOptions{}, &writer)
                  .ok());
  ASSERT_TRUE(writer->Append(Value::String(lo)).ok());
  ASSERT_TRUE(writer->Append(Value::String(hi)).ok());
  ASSERT_TRUE(writer->Close().ok());
  ColumnFileStats stats;
  bool present = false;
  ASSERT_TRUE(
      ReadColumnStats(fs.get(), "/s.col", ReadContext{}, &stats, &present)
          .ok());
  ASSERT_TRUE(present);
  ASSERT_EQ(stats.groups.size(), 1u);
  const ColumnStats& g = stats.groups[0];
  ASSERT_TRUE(g.has_min && g.has_max);
  EXPECT_LE(g.min.string_value().size(), kCifStatsStringPrefix);
  EXPECT_LE(g.max.string_value().size(), kCifStatsStringPrefix);
  // min <= every value, max >= every value, per unsigned byte order.
  EXPECT_TRUE(PrimitiveLess(g.min, Value::String(lo)) ||
              g.min.string_value() == lo);
  EXPECT_TRUE(PrimitiveLess(Value::String(hi), g.max));
}

TEST(ColumnStatsTest, AllFFPrefixDropsMaxOnly) {
  auto fs = MakeFs();
  const std::string ff(80, '\xFF');
  std::unique_ptr<ColumnFileWriter> writer;
  ASSERT_TRUE(ColumnFileWriter::Create(fs.get(), "/ff.col", Schema::String(),
                                       ColumnOptions{}, &writer)
                  .ok());
  ASSERT_TRUE(writer->Append(Value::String("aaa")).ok());
  ASSERT_TRUE(writer->Append(Value::String(ff)).ok());
  ASSERT_TRUE(writer->Close().ok());
  ColumnFileStats stats;
  bool present = false;
  ASSERT_TRUE(
      ReadColumnStats(fs.get(), "/ff.col", ReadContext{}, &stats, &present)
          .ok());
  ASSERT_TRUE(present);
  ASSERT_EQ(stats.groups.size(), 1u);
  EXPECT_TRUE(stats.groups[0].has_min);
  EXPECT_FALSE(stats.groups[0].has_max);  // no byte of the prefix can bump
}

TEST(ColumnStatsTest, PreStatsFileReadsFineAndReportsNoStats) {
  auto fs = MakeFs();
  std::vector<int64_t> values;
  for (int64_t i = 0; i < 1200; ++i) values.push_back(i);
  ASSERT_TRUE(WriteInt64Column(fs.get(), "/new.col", values,
                               ColumnLayout::kSkipList)
                  .ok());
  // Reconstruct the file as a pre-stats writer would have produced it:
  // identical bytes minus the trailing footer.
  std::unique_ptr<FileReader> in;
  ASSERT_TRUE(fs->Open("/new.col", ReadContext{}, &in).ok());
  std::string trailer;
  ASSERT_TRUE(in->Read(in->size() - 8, 8, &trailer).ok());
  Slice len_slice(trailer.data(), 4);
  uint32_t payload_len = 0;
  ASSERT_TRUE(GetFixed32(&len_slice, &payload_len).ok());
  const uint64_t old_size = in->size() - 8 - payload_len;
  std::string body;
  ASSERT_TRUE(in->Read(0, old_size, &body).ok());
  std::unique_ptr<FileWriter> out;
  ASSERT_TRUE(fs->Create("/old.col", &out).ok());
  out->Append(body);
  ASSERT_TRUE(out->Close().ok());

  ColumnFileStats stats;
  bool present = true;
  ASSERT_TRUE(
      ReadColumnStats(fs.get(), "/old.col", ReadContext{}, &stats, &present)
          .ok());
  EXPECT_FALSE(present);

  // The old file scans and skips exactly like the new one.
  std::unique_ptr<ColumnFileReader> reader;
  ASSERT_TRUE(
      ColumnFileReader::Open(fs.get(), "/old.col", ReadContext{}, &reader)
          .ok());
  ASSERT_EQ(reader->row_count(), 1200u);
  ASSERT_TRUE(reader->SkipRows(1000).ok());
  Value v;
  ASSERT_TRUE(reader->ReadValue(&v).ok());
  EXPECT_EQ(v.int64_value(), 1000);
}

// ---- End-to-end: pruning, selection vectors, differential matrix ----

Schema::Ptr MatrixSchema() {
  return Schema::Record("Zx", {{"seq", Schema::Int64()},
                               {"str0", Schema::String()},
                               {"int0", Schema::Int32()},
                               {"map0", Schema::Map(Schema::Int32())}});
}

class PushdownJobTest : public ::testing::Test {
 protected:
  static constexpr int kRecords = 2500;

  void SetUp() override {
    fs_ = MakeFs();
    Random rng(4242);
    Schema::Ptr schema = MatrixSchema();

    CofOptions plain, sl, comp, dcsl;
    plain.split_target_bytes = 1ull << 30;  // one split-directory
    sl = comp = dcsl = plain;
    sl.default_column.layout = ColumnLayout::kSkipList;
    comp.default_column.layout = ColumnLayout::kCompressedBlocks;
    comp.default_column.block_size = 4096;
    dcsl.default_column.layout = ColumnLayout::kSkipList;
    dcsl.column_overrides["map0"] = ColumnOptions{ColumnLayout::kDictSkipList};

    std::unique_ptr<CofWriter> w_plain, w_sl, w_comp, w_dcsl;
    ASSERT_TRUE(
        CofWriter::Open(fs_.get(), "/plain", schema, plain, &w_plain).ok());
    ASSERT_TRUE(CofWriter::Open(fs_.get(), "/sl", schema, sl, &w_sl).ok());
    ASSERT_TRUE(
        CofWriter::Open(fs_.get(), "/comp", schema, comp, &w_comp).ok());
    ASSERT_TRUE(
        CofWriter::Open(fs_.get(), "/dcsl", schema, dcsl, &w_dcsl).ok());
    for (int i = 0; i < kRecords; ++i) {
      Value::MapEntries entries;
      entries.emplace_back("k" + std::to_string(i % 3),
                           Value::Int32(i % 100));
      const Value record = Value::Record(
          {Value::Int64(i), Value::String(rng.NextString(8, 20)),
           Value::Int32(static_cast<int32_t>(rng.UniformRange(1, 10000))),
           Value::Map(std::move(entries))});
      ASSERT_TRUE(w_plain->WriteRecord(record).ok());
      ASSERT_TRUE(w_sl->WriteRecord(record).ok());
      ASSERT_TRUE(w_comp->WriteRecord(record).ok());
      ASSERT_TRUE(w_dcsl->WriteRecord(record).ok());
    }
    ASSERT_TRUE(w_plain->Close().ok());
    ASSERT_TRUE(w_sl->Close().ok());
    ASSERT_TRUE(w_comp->Close().ok());
    ASSERT_TRUE(w_dcsl->Close().ok());
  }

  // Clustered + disjunctive: rowgroup 1 (rows 1000-1999) is fully refuted,
  // groups 0 and 2 partially match.
  static constexpr char kWhere[] = "seq < 600 OR seq >= 2200";
  static bool Matches(int64_t seq) { return seq < 600 || seq >= 2200; }

  /// Runs the job over `path`. With `predicate` set the engine/format
  /// filters; without, the mapper applies the same cut itself (the
  /// baseline arm). Returns the reduce output.
  std::vector<std::pair<Value, Value>> Run(const std::string& path,
                                           bool with_predicate, bool pushdown,
                                           uint64_t batch_rows, bool lazy,
                                           int parallelism,
                                           MetricsRegistry* metrics,
                                           JobReport* report) {
    Job job;
    job.config.input_paths = {path};
    job.config.projection = {"seq", "int0"};
    job.config.batch_rows = batch_rows;
    job.config.lazy_records = lazy;
    job.config.parallelism = parallelism;
    job.config.metrics = metrics;
    if (with_predicate) {
      Predicate p;
      EXPECT_TRUE(ParsePredicate(kWhere, &p).ok());
      job.config.predicate = std::make_shared<const Predicate>(std::move(p));
      job.config.predicate_pushdown = pushdown;
    }
    job.input_format = std::make_shared<ColumnInputFormat>();
    job.mapper = [with_predicate](Record& record, Emitter* out) {
      const int64_t seq = record.GetOrDie("seq").int64_value();
      if (!with_predicate && !Matches(seq)) return;
      out->Emit(Value::Int64(seq % 7),
                Value::Int64(record.GetOrDie("int0").int32_value()));
    };
    job.reducer = [](const Value& key, const std::vector<Value>& values,
                     Emitter* out) {
      int64_t sum = 0;
      for (const Value& v : values) sum += v.int64_value();
      out->Emit(key, Value::Int64(sum));
    };
    JobRunner runner(fs_.get());
    Status s = runner.Run(job, report);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return report->output;
  }

  static void ExpectSameOutput(
      const std::vector<std::pair<Value, Value>>& a,
      const std::vector<std::pair<Value, Value>>& b, const std::string& what) {
    ASSERT_EQ(a.size(), b.size()) << what;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].first.Compare(b[i].first), 0) << what << " key " << i;
      EXPECT_EQ(a[i].second.Compare(b[i].second), 0) << what << " val " << i;
    }
  }

  std::unique_ptr<MiniHdfs> fs_;
};

TEST_F(PushdownJobTest, MatrixMatchesFilterInMapByteForByte) {
  MetricsRegistry baseline_metrics;
  JobReport baseline_report;
  const auto expected = Run("/sl", false, false, 1024, false, 1,
                            &baseline_metrics, &baseline_report);
  ASSERT_FALSE(expected.empty());

  for (const std::string layout : {"/plain", "/sl", "/comp", "/dcsl"}) {
    for (const bool pushdown : {false, true}) {
      for (const uint64_t batch_rows : {uint64_t{1}, uint64_t{64},
                                        uint64_t{1024}}) {
        for (const bool lazy : {false, true}) {
          MetricsRegistry metrics;
          JobReport report;
          const std::string what =
              layout + (pushdown ? " push" : " nopush") + " batch=" +
              std::to_string(batch_rows) + (lazy ? " lazy" : " eager");
          const auto got = Run(layout, true, pushdown, batch_rows, lazy, 1,
                               &metrics, &report);
          ExpectSameOutput(expected, got, what);
          const uint64_t pruned =
              metrics.counter("cif.prune.rowgroups")->value();
          if (pushdown) {
            EXPECT_GT(pruned, 0u) << what;  // group 1 is always refutable
          } else {
            EXPECT_EQ(pruned, 0u) << what;
          }
          // Only matching rows reach the mapper in every mode. (The
          // baseline arm has no predicate, so all kRecords reach its
          // mapper and it filters inside.)
          uint64_t match_count = 0;
          for (int i = 0; i < kRecords; ++i) match_count += Matches(i);
          EXPECT_EQ(report.map_input_records, match_count) << what;
        }
      }
    }
  }
}

TEST_F(PushdownJobTest, ParallelEngineMatchesSerial) {
  MetricsRegistry m0;
  JobReport r0;
  const auto expected = Run("/sl", false, false, 1024, false, 1, &m0, &r0);
  for (const int parallelism : {1, 4}) {
    for (const bool pushdown : {false, true}) {
      MetricsRegistry metrics;
      JobReport report;
      const auto got = Run("/sl", true, pushdown, 1024, false, parallelism,
                           &metrics, &report);
      ExpectSameOutput(expected, got,
                       "parallelism=" + std::to_string(parallelism));
    }
  }
}

TEST_F(PushdownJobTest, SurvivesInjectedReadFaults) {
  FaultConfig faults;
  faults.read_error_p = 0.02;
  fs_->SetFaultConfig(faults);
  MetricsRegistry m0;
  JobReport r0;
  const auto expected = Run("/sl", false, false, 1024, false, 1, &m0, &r0);
  for (const bool pushdown : {false, true}) {
    MetricsRegistry metrics;
    JobReport report;
    const auto got =
        Run("/sl", true, pushdown, 1024, false, 4, &metrics, &report);
    ExpectSameOutput(expected, got, pushdown ? "faults push" : "faults nopush");
  }
  fs_->SetFaultConfig(FaultConfig{});
}

TEST_F(PushdownJobTest, SplitPruningDropsRefutedDirectories) {
  // Re-load the same rows into many small split-directories so file-level
  // stats can drop whole splits at plan time.
  Schema::Ptr schema = MatrixSchema();
  CofOptions options;
  options.split_target_bytes = 16 * 1024;
  options.default_column.layout = ColumnLayout::kSkipList;
  std::unique_ptr<CofWriter> writer;
  ASSERT_TRUE(
      CofWriter::Open(fs_.get(), "/many", schema, options, &writer).ok());
  Random rng(4242);
  for (int i = 0; i < kRecords; ++i) {
    Value::MapEntries entries;
    entries.emplace_back("k", Value::Int32(i % 100));
    ASSERT_TRUE(writer
                    ->WriteRecord(Value::Record(
                        {Value::Int64(i), Value::String(rng.NextString(8, 20)),
                         Value::Int32(static_cast<int32_t>(
                             rng.UniformRange(1, 10000))),
                         Value::Map(std::move(entries))}))
                    .ok());
  }
  ASSERT_TRUE(writer->Close().ok());
  ASSERT_GT(writer->split_count(), 2);

  MetricsRegistry metrics;
  JobReport report;
  Job job;
  job.config.input_paths = {"/many"};
  job.config.projection = {"seq"};
  job.config.metrics = &metrics;
  Predicate p;
  ASSERT_TRUE(ParsePredicate("seq < 100", &p).ok());
  job.config.predicate = std::make_shared<const Predicate>(std::move(p));
  job.input_format = std::make_shared<ColumnInputFormat>();
  uint64_t seen = 0;
  // Serial map-only run; count via combiner-less mapper side effects is
  // unsafe under retries, so count matched rows through the report.
  job.mapper = [](Record& record, Emitter* out) {
    out->Emit(Value::Int64(record.GetOrDie("seq").int64_value()),
              Value::Null());
  };
  JobRunner runner(fs_.get());
  ASSERT_TRUE(runner.Run(job, &report).ok());
  (void)seen;
  EXPECT_EQ(report.map_input_records, 100u);
  EXPECT_GT(metrics.counter("cif.prune.splits")->value(), 0u);

  // A predicate no row satisfies still runs (one split is kept so the
  // engine has input) and yields zero rows.
  MetricsRegistry metrics2;
  JobReport report2;
  Predicate none;
  ASSERT_TRUE(ParsePredicate("seq < 0", &none).ok());
  job.config.predicate = std::make_shared<const Predicate>(std::move(none));
  job.config.metrics = &metrics2;
  ASSERT_TRUE(runner.Run(job, &report2).ok());
  EXPECT_EQ(report2.map_input_records, 0u);
}

TEST_F(PushdownJobTest, MissingPredicateColumnEvaluatesAsNull) {
  Job job;
  job.config.input_paths = {"/sl"};
  job.config.projection = {"seq"};
  Predicate p;
  ASSERT_TRUE(ParsePredicate("nosuch IS NULL", &p).ok());
  job.config.predicate = std::make_shared<const Predicate>(std::move(p));
  job.input_format = std::make_shared<ColumnInputFormat>();
  job.mapper = [](Record&, Emitter* out) {
    out->Emit(Value::Int64(0), Value::Null());
  };
  JobRunner runner(fs_.get());
  JobReport report;
  // Without tolerance the job fails validation.
  EXPECT_FALSE(runner.Run(job, &report).ok());
  // With tolerance the missing column is NULL, so IS NULL selects all.
  job.config.null_for_missing_columns = true;
  JobReport report2;
  ASSERT_TRUE(runner.Run(job, &report2).ok());
  EXPECT_EQ(report2.map_input_records, static_cast<uint64_t>(kRecords));
}

}  // namespace
}  // namespace colmr
