#include <gtest/gtest.h>

#include <tuple>

#include "common/coding.h"
#include "formats/seq/seq_format.h"
#include "hdfs/mini_hdfs.h"
#include "mapreduce/job.h"
#include "workload/synthetic.h"

namespace colmr {
namespace {

ClusterConfig TestCluster() {
  ClusterConfig config;
  config.num_nodes = 4;
  config.block_size = 32 * 1024;
  config.io_buffer_size = 4 * 1024;
  return config;
}

std::unique_ptr<MiniHdfs> MakeFs() {
  return std::make_unique<MiniHdfs>(
      TestCluster(), std::make_unique<DefaultPlacementPolicy>(5));
}

Schema::Ptr IdSchema() {
  Schema::Ptr schema;
  Status s = Schema::Parse("record R { id: int, s: string, m: map<int> }",
                           &schema);
  EXPECT_TRUE(s.ok());
  return schema;
}

Value IdRecord(int id, Random* rng) {
  Value::MapEntries m;
  for (int i = 0; i < 3; ++i) {
    m.emplace_back(rng->NextWord(4), Value::Int32(id * 10 + i));
  }
  return Value::Record({Value::Int32(id),
                        Value::String(rng->NextString(10, 80)),
                        Value::Map(std::move(m))});
}

// (compression mode, codec, split size)
using SeqCase = std::tuple<SeqCompression, CodecType, uint64_t>;

class SeqRoundTripTest : public ::testing::TestWithParam<SeqCase> {};

TEST_P(SeqRoundTripTest, AllRecordsExactlyOnce) {
  const auto& [compression, codec, split_size] = GetParam();
  auto fs = MakeFs();
  Schema::Ptr schema = IdSchema();

  SeqWriterOptions options;
  options.compression = compression;
  options.codec = codec;
  options.block_size = 2048;
  options.sync_interval = 1024;
  std::unique_ptr<SeqWriter> writer;
  ASSERT_TRUE(SeqWriter::Open(fs.get(), "/seq", schema, options, &writer).ok());

  Random rng(42);
  const int kRecords = 2000;
  std::vector<Value> originals;
  for (int i = 0; i < kRecords; ++i) {
    originals.push_back(IdRecord(i, &rng));
    ASSERT_TRUE(writer->WriteRecord(originals.back()).ok());
  }
  ASSERT_TRUE(writer->Close().ok());

  SeqInputFormat format;
  JobConfig config;
  config.input_paths = {"/seq"};
  config.split_size = split_size;
  std::vector<InputSplit> splits;
  ASSERT_TRUE(format.GetSplits(fs.get(), config, &splits).ok());

  std::vector<bool> seen(kRecords, false);
  for (const InputSplit& split : splits) {
    std::unique_ptr<RecordReader> reader;
    ASSERT_TRUE(format
                    .CreateRecordReader(fs.get(), config, split, ReadContext{},
                                        &reader)
                    .ok());
    while (reader->Next()) {
      Record& record = reader->record();
      const int id = record.GetOrDie("id").int32_value();
      ASSERT_GE(id, 0);
      ASSERT_LT(id, kRecords);
      EXPECT_FALSE(seen[id]);
      seen[id] = true;
      // Spot-check full record equality.
      EXPECT_EQ(record.GetOrDie("s").string_value(),
                originals[id].elements()[1].string_value());
    }
    ASSERT_TRUE(reader->status().ok()) << reader->status().ToString();
  }
  for (int i = 0; i < kRecords; ++i) {
    EXPECT_TRUE(seen[i]) << "record " << i << " lost";
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndSplits, SeqRoundTripTest,
    ::testing::Values(
        SeqCase{SeqCompression::kNone, CodecType::kNone, 0},
        SeqCase{SeqCompression::kNone, CodecType::kNone, 3000},
        SeqCase{SeqCompression::kNone, CodecType::kNone, 10000},
        SeqCase{SeqCompression::kRecord, CodecType::kLzf, 0},
        SeqCase{SeqCompression::kRecord, CodecType::kLzf, 5000},
        SeqCase{SeqCompression::kRecord, CodecType::kZlite, 8000},
        SeqCase{SeqCompression::kBlock, CodecType::kLzf, 0},
        SeqCase{SeqCompression::kBlock, CodecType::kLzf, 4000},
        SeqCase{SeqCompression::kBlock, CodecType::kZlite, 12345}));

TEST(SeqTest, BlockCompressionShrinksDataset) {
  auto fs = MakeFs();
  Schema::Ptr schema = IdSchema();
  Random rng(1);
  // Compressible strings: a small vocabulary repeated (like page text).
  std::vector<std::string> vocab;
  for (int i = 0; i < 32; ++i) vocab.push_back(rng.NextWord(6));
  std::vector<Value> records;
  for (int i = 0; i < 1000; ++i) {
    std::string s;
    for (int w = 0; w < 12; ++w) {
      s += vocab[rng.Uniform(vocab.size())];
      s += ' ';
    }
    Value::MapEntries m;
    m.emplace_back("k", Value::Int32(i));
    records.push_back(Value::Record(
        {Value::Int32(i), Value::String(std::move(s)), Value::Map(m)}));
  }

  uint64_t sizes[2] = {0, 0};
  int idx = 0;
  for (SeqCompression mode :
       {SeqCompression::kNone, SeqCompression::kBlock}) {
    const std::string path = "/seq" + std::to_string(idx);
    SeqWriterOptions options;
    options.compression = mode;
    std::unique_ptr<SeqWriter> writer;
    ASSERT_TRUE(SeqWriter::Open(fs.get(), path, schema, options, &writer).ok());
    for (const Value& r : records) ASSERT_TRUE(writer->WriteRecord(r).ok());
    ASSERT_TRUE(writer->Close().ok());
    ASSERT_TRUE(fs->GetFileSize(path + "/part-00000", &sizes[idx]).ok());
    ++idx;
  }
  EXPECT_LT(sizes[1], sizes[0]);
}

TEST(SeqTest, CorruptSyncMarkerDetected) {
  auto fs = MakeFs();
  Schema::Ptr schema = IdSchema();
  SeqWriterOptions options;
  options.sync_interval = 256;
  std::unique_ptr<SeqWriter> writer;
  ASSERT_TRUE(SeqWriter::Open(fs.get(), "/seq", schema, options, &writer).ok());
  Random rng(9);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(writer->WriteRecord(IdRecord(i, &rng)).ok());
  }
  ASSERT_TRUE(writer->Close().ok());

  // Rewrite the file with a flipped byte inside the first sync escape.
  std::unique_ptr<FileReader> reader;
  ASSERT_TRUE(fs->Open("/seq/part-00000", ReadContext{}, &reader).ok());
  std::string contents;
  ASSERT_TRUE(reader->Read(0, reader->size(), &contents).ok());
  const size_t escape = contents.find("\xff\xff\xff\xff");
  ASSERT_NE(escape, std::string::npos);
  contents[escape + 6] ^= 0x5a;  // corrupt the marker body
  ASSERT_TRUE(fs->Delete("/seq/part-00000").ok());
  std::unique_ptr<FileWriter> rewriter;
  ASSERT_TRUE(fs->Create("/seq/part-00000", &rewriter).ok());
  rewriter->Append(contents);
  ASSERT_TRUE(rewriter->Close().ok());

  std::unique_ptr<SeqScanner> scanner;
  ASSERT_TRUE(SeqScanner::Open(fs.get(), "/seq/part-00000", ReadContext{}, 0,
                               contents.size(), &scanner)
                  .ok());
  while (scanner->Next()) {
  }
  EXPECT_TRUE(scanner->status().IsCorruption());
}

TEST(SeqTest, EmptyDataset) {
  auto fs = MakeFs();
  Schema::Ptr schema = IdSchema();
  std::unique_ptr<SeqWriter> writer;
  ASSERT_TRUE(
      SeqWriter::Open(fs.get(), "/seq", schema, SeqWriterOptions{}, &writer)
          .ok());
  ASSERT_TRUE(writer->Close().ok());
  uint64_t size;
  ASSERT_TRUE(fs->GetFileSize("/seq/part-00000", &size).ok());
  std::unique_ptr<SeqScanner> scanner;
  ASSERT_TRUE(SeqScanner::Open(fs.get(), "/seq/part-00000", ReadContext{}, 0,
                               size, &scanner)
                  .ok());
  EXPECT_FALSE(scanner->Next());
  EXPECT_TRUE(scanner->status().ok());
}

// Golden-byte regression: the sync marker is a specified function of the
// dataset path (FNV-1a/splitmix64 seeded with kSeqSyncSeed), so the exact
// bytes must never drift across platforms, stdlibs, or refactors. If this
// fails, the on-disk format changed: old files' markers will no longer
// match a fresh writer's and split realignment breaks.
TEST(SeqTest, SyncMarkerBytesArePinned) {
  auto fs = MakeFs();
  Schema::Ptr schema = IdSchema();
  std::unique_ptr<SeqWriter> writer;
  ASSERT_TRUE(SeqWriter::Open(fs.get(), "/golden-seq", schema,
                              SeqWriterOptions{}, &writer)
                  .ok());
  ASSERT_TRUE(writer->Close().ok());

  std::unique_ptr<FileReader> reader;
  ASSERT_TRUE(fs->Open("/golden-seq/part-00000", ReadContext{}, &reader).ok());
  std::string header;
  ASSERT_TRUE(reader->Read(0, reader->size(), &header).ok());

  // Header layout: magic(4) | length-prefixed schema | compression byte |
  // codec byte | sync(16).
  Slice cursor(header);
  ASSERT_GE(cursor.size(), 4u);
  cursor.RemovePrefix(4);
  Slice schema_text;
  ASSERT_TRUE(GetLengthPrefixed(&cursor, &schema_text).ok());
  ASSERT_GE(cursor.size(), 2u + 16u);
  cursor.RemovePrefix(2);

  const unsigned char kGolden[16] = {0x7c, 0x08, 0x95, 0x84, 0xb5, 0x44,
                                     0x78, 0x99, 0x78, 0xbc, 0x63, 0x28,
                                     0xb3, 0xa4, 0x1f, 0xdd};
  for (size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(static_cast<unsigned char>(cursor[i]), kGolden[i])
        << "sync marker byte " << i << " drifted";
  }
}

TEST(SeqTest, SchemaTravelsInHeader) {
  auto fs = MakeFs();
  Schema::Ptr schema = MicrobenchSchema();
  std::unique_ptr<SeqWriter> writer;
  ASSERT_TRUE(
      SeqWriter::Open(fs.get(), "/seq", schema, SeqWriterOptions{}, &writer)
          .ok());
  MicrobenchGenerator gen(3);
  ASSERT_TRUE(writer->WriteRecord(gen.Next()).ok());
  ASSERT_TRUE(writer->Close().ok());

  uint64_t size;
  ASSERT_TRUE(fs->GetFileSize("/seq/part-00000", &size).ok());
  std::unique_ptr<SeqScanner> scanner;
  ASSERT_TRUE(SeqScanner::Open(fs.get(), "/seq/part-00000", ReadContext{}, 0,
                               size, &scanner)
                  .ok());
  ASSERT_TRUE(scanner->Next());
  EXPECT_TRUE(scanner->schema()->Equals(*schema));
}

}  // namespace
}  // namespace colmr
