#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "cif/cif.h"
#include "cif/cof.h"
#include "formats/seq/seq_format.h"
#include "formats/text/text_format.h"
#include "mapreduce/engine.h"
#include "workload/weblog.h"

namespace colmr {
namespace {

ClusterConfig TestCluster() {
  ClusterConfig config;
  config.num_nodes = 4;
  config.map_slots_per_node = 2;
  config.block_size = 16 * 1024;
  config.io_buffer_size = 4 * 1024;
  return config;
}

std::unique_ptr<MiniHdfs> MakeFs() {
  return std::make_unique<MiniHdfs>(
      TestCluster(), std::make_unique<ColumnPlacementPolicy>(17));
}

// Writes a tiny TXT dataset of sentences for word counting.
void WriteSentences(MiniHdfs* fs, const std::string& path,
                    const std::vector<std::string>& sentences) {
  Schema::Ptr schema;
  ASSERT_TRUE(Schema::Parse("record S { text: string }", &schema).ok());
  std::unique_ptr<TextWriter> writer;
  ASSERT_TRUE(TextWriter::Open(fs, path, schema, &writer).ok());
  for (const std::string& s : sentences) {
    ASSERT_TRUE(writer->WriteRecord(Value::Record({Value::String(s)})).ok());
  }
  ASSERT_TRUE(writer->Close().ok());
}

TEST(JobRunnerTest, WordCountEndToEnd) {
  auto fs = MakeFs();
  WriteSentences(fs.get(), "/in",
                 {"the quick brown fox", "the lazy dog", "the fox again"});

  Job job;
  job.config.input_paths = {"/in"};
  job.config.output_path = "/out";
  job.input_format = std::make_shared<TextInputFormat>();
  job.mapper = [](Record& record, Emitter* out) {
    std::istringstream words(record.GetOrDie("text").string_value());
    std::string word;
    while (words >> word) {
      out->Emit(Value::String(word), Value::Int32(1));
    }
  };
  job.reducer = [](const Value& key, const std::vector<Value>& values,
                   Emitter* out) {
    int64_t sum = 0;
    for (const Value& v : values) sum += v.int32_value();
    out->Emit(key, Value::Int64(sum));
  };

  JobRunner runner(fs.get());
  JobReport report;
  ASSERT_TRUE(runner.Run(job, &report).ok());

  std::map<std::string, int64_t> counts;
  for (const auto& [key, value] : report.output) {
    counts[key.string_value()] = value.int64_value();
  }
  EXPECT_EQ(counts["the"], 3);
  EXPECT_EQ(counts["fox"], 2);
  EXPECT_EQ(counts["dog"], 1);
  EXPECT_EQ(counts.size(), 7u);

  EXPECT_EQ(report.map_input_records, 3u);
  EXPECT_EQ(report.map_output_records, 10u);
  EXPECT_EQ(report.reduce_output_records, 7u);
  EXPECT_GT(report.map_output_bytes, 0u);
  EXPECT_GT(report.total_seconds, 0.0);
  EXPECT_GE(report.total_seconds, report.map_phase_seconds);

  // Output part file was materialized.
  EXPECT_TRUE(fs->Exists("/out/part-r-00000"));
}

// shuffle_bytes is the post-combine tagged size of what actually crosses
// the shuffle, so a combiner can only shrink it relative to
// map_output_bytes — never grow it. Without a combiner the in-memory path
// measures both at the same point, so they are equal.
TEST(JobRunnerTest, CombinerShuffleAccounting) {
  std::vector<std::string> sentences;
  for (int i = 0; i < 50; ++i) {
    sentences.push_back("alpha beta alpha gamma alpha beta");
  }

  auto run = [&](bool with_combiner, uint64_t sort_buffer_bytes) {
    auto fs = MakeFs();
    WriteSentences(fs.get(), "/in", sentences);
    Job job;
    job.config.input_paths = {"/in"};
    job.config.sort_buffer_bytes = sort_buffer_bytes;
    job.input_format = std::make_shared<TextInputFormat>();
    job.mapper = [](Record& record, Emitter* out) {
      std::istringstream words(record.GetOrDie("text").string_value());
      std::string word;
      while (words >> word) out->Emit(Value::String(word), Value::Int32(1));
    };
    ReduceFn sum = [](const Value& key, const std::vector<Value>& values,
                      Emitter* out) {
      int64_t total = 0;
      for (const Value& v : values) {
        total += v.kind() == TypeKind::kInt32 ? v.int32_value()
                                              : v.int64_value();
      }
      out->Emit(key, Value::Int64(total));
    };
    job.reducer = sum;
    if (with_combiner) job.combiner = sum;
    JobRunner runner(fs.get());
    JobReport report;
    EXPECT_TRUE(runner.Run(job, &report).ok());
    return report;
  };

  const JobReport plain = run(false, 0);
  EXPECT_EQ(plain.shuffle_bytes, plain.map_output_bytes);

  for (uint64_t sort_buffer : {uint64_t{0}, uint64_t{256}}) {
    SCOPED_TRACE(sort_buffer);
    const JobReport combined = run(true, sort_buffer);
    EXPECT_GT(combined.shuffle_bytes, 0u);
    EXPECT_LE(combined.shuffle_bytes, combined.map_output_bytes);
    EXPECT_LT(combined.map_output_bytes, plain.map_output_bytes);
    EXPECT_EQ(combined.reduce_output_records, 3u);
  }
}

TEST(JobRunnerTest, MapOnlyJobCollectsMapOutput) {
  auto fs = MakeFs();
  WriteSentences(fs.get(), "/in", {"a b", "c"});
  Job job;
  job.config.input_paths = {"/in"};
  job.input_format = std::make_shared<TextInputFormat>();
  job.mapper = [](Record& record, Emitter* out) {
    out->Emit(Value::Null(), record.GetOrDie("text"));
  };
  JobRunner runner(fs.get());
  JobReport report;
  ASSERT_TRUE(runner.Run(job, &report).ok());
  EXPECT_EQ(report.output.size(), 2u);
  EXPECT_EQ(report.reduce_phase_seconds, 0.0);
  EXPECT_EQ(report.shuffle_seconds, 0.0);
}

TEST(JobRunnerTest, MissingPiecesRejected) {
  auto fs = MakeFs();
  JobRunner runner(fs.get());
  JobReport report;
  Job no_format;
  no_format.mapper = [](Record&, Emitter*) {};
  EXPECT_TRUE(runner.Run(no_format, &report).IsInvalidArgument());
  Job no_mapper;
  no_mapper.input_format = std::make_shared<TextInputFormat>();
  EXPECT_TRUE(runner.Run(no_mapper, &report).IsInvalidArgument());
  Job empty_input;
  empty_input.input_format = std::make_shared<TextInputFormat>();
  empty_input.mapper = [](Record&, Emitter*) {};
  empty_input.config.input_paths = {"/nope"};
  EXPECT_FALSE(runner.Run(empty_input, &report).ok());
}

TEST(JobRunnerTest, CifJobIsDataLocalUnderCpp) {
  // Section 6.4's good case: with CPP placement every split has common
  // replica nodes, so the scheduler achieves (mostly) local tasks.
  auto fs = MakeFs();
  Schema::Ptr schema = WeblogSchema();
  CofOptions cof;
  cof.split_target_bytes = 32 * 1024;
  std::unique_ptr<CofWriter> writer;
  ASSERT_TRUE(CofWriter::Open(fs.get(), "/logs", schema, cof, &writer).ok());
  WeblogGenerator gen(5);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(writer->WriteRecord(gen.Next()).ok());
  }
  ASSERT_TRUE(writer->Close().ok());

  Job job;
  job.config.input_paths = {"/logs"};
  job.config.projection = {"status"};
  job.input_format = std::make_shared<ColumnInputFormat>();
  job.mapper = [](Record& record, Emitter* out) {
    out->Emit(Value::Int32(record.GetOrDie("status").int32_value()),
              Value::Int32(1));
  };
  job.reducer = [](const Value& key, const std::vector<Value>& values,
                   Emitter* out) {
    out->Emit(key, Value::Int64(static_cast<int64_t>(values.size())));
  };

  JobRunner runner(fs.get());
  JobReport report;
  ASSERT_TRUE(runner.Run(job, &report).ok());
  EXPECT_EQ(report.map_input_records, 2000u);
  // All tasks find a co-located node (there are few tasks and 3 replicas).
  EXPECT_GT(report.data_local_tasks, 0);
  EXPECT_EQ(report.bytes_read_remote, 0u);

  int64_t total = 0;
  for (const auto& [key, value] : report.output) total += value.int64_value();
  EXPECT_EQ(total, 2000);
}

TEST(JobRunnerTest, DefaultPlacementForcesRemoteReads) {
  // Section 6.4's bad case: same job, default placement — column files
  // scatter, and map tasks must read some columns remotely.
  auto fs = std::make_unique<MiniHdfs>(
      TestCluster(), std::make_unique<DefaultPlacementPolicy>(17));
  Schema::Ptr schema = WeblogSchema();
  CofOptions cof;
  cof.split_target_bytes = 32 * 1024;
  std::unique_ptr<CofWriter> writer;
  ASSERT_TRUE(CofWriter::Open(fs.get(), "/logs", schema, cof, &writer).ok());
  WeblogGenerator gen(5);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(writer->WriteRecord(gen.Next()).ok());
  }
  ASSERT_TRUE(writer->Close().ok());

  Job job;
  job.config.input_paths = {"/logs"};
  job.config.projection = {"status", "bytes", "url"};
  job.input_format = std::make_shared<ColumnInputFormat>();
  job.mapper = [](Record& record, Emitter* out) {
    out->Emit(Value::Int32(record.GetOrDie("status").int32_value()),
              Value::Int32(record.GetOrDie("bytes").int32_value()));
  };

  JobRunner runner(fs.get());
  JobReport report;
  ASSERT_TRUE(runner.Run(job, &report).ok());
  EXPECT_GT(report.bytes_read_remote, 0u);
}

TEST(JobRunnerTest, ReportAccountsBytesAndTasks) {
  auto fs = MakeFs();
  WriteSentences(fs.get(), "/in", std::vector<std::string>(100, "x y z"));
  Job job;
  job.config.input_paths = {"/in"};
  job.input_format = std::make_shared<TextInputFormat>();
  job.mapper = [](Record&, Emitter*) {};
  JobRunner runner(fs.get());
  JobReport report;
  ASSERT_TRUE(runner.Run(job, &report).ok());
  EXPECT_EQ(report.map_input_records, 100u);
  EXPECT_EQ(report.map_output_records, 0u);
  EXPECT_EQ(static_cast<int>(report.map_tasks.size()),
            report.data_local_tasks + report.remote_tasks);
  uint64_t sum_local = 0;
  for (const TaskReport& task : report.map_tasks) {
    sum_local += task.io.local_bytes;
    EXPECT_GE(task.sim_seconds, 0.0);
  }
  EXPECT_EQ(sum_local, report.bytes_read_local);
}

}  // namespace
}  // namespace colmr
