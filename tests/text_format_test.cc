#include <gtest/gtest.h>

#include "formats/text/text_format.h"
#include "hdfs/mini_hdfs.h"
#include "mapreduce/job.h"
#include "workload/synthetic.h"

namespace colmr {
namespace {

ClusterConfig TestCluster() {
  ClusterConfig config;
  config.num_nodes = 4;
  config.block_size = 16 * 1024;
  config.io_buffer_size = 4 * 1024;
  return config;
}

std::unique_ptr<MiniHdfs> MakeFs() {
  return std::make_unique<MiniHdfs>(
      TestCluster(), std::make_unique<DefaultPlacementPolicy>(3));
}

TEST(TextRecordTest, FormatParseRoundTrip) {
  Schema::Ptr schema = MicrobenchSchema();
  MicrobenchGenerator gen(1);
  for (int i = 0; i < 100; ++i) {
    const Value record = gen.Next();
    const std::string line = FormatTextRecord(*schema, record);
    EXPECT_EQ(line.find('\n'), std::string::npos);
    Value parsed;
    ASSERT_TRUE(ParseTextRecord(*schema, line, &parsed).ok());
    EXPECT_EQ(record.Compare(parsed), 0);
  }
}

TEST(TextRecordTest, EscapedDelimitersSurvive) {
  Schema::Ptr schema;
  ASSERT_TRUE(Schema::Parse("record R { a: string, b: string }", &schema).ok());
  const Value record = Value::Record(
      {Value::String("tab\there\nand newline"), Value::String("quote\"back\\")});
  const std::string line = FormatTextRecord(*schema, record);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  Value parsed;
  ASSERT_TRUE(ParseTextRecord(*schema, line, &parsed).ok());
  EXPECT_EQ(record.Compare(parsed), 0);
}

TEST(TextRecordTest, MalformedLinesRejected) {
  Schema::Ptr schema;
  ASSERT_TRUE(Schema::Parse("record R { a: int, b: string }", &schema).ok());
  Value parsed;
  EXPECT_FALSE(ParseTextRecord(*schema, "12", &parsed).ok());          // missing b
  EXPECT_FALSE(ParseTextRecord(*schema, "x\t\"y\"", &parsed).ok());    // bad int
  EXPECT_FALSE(ParseTextRecord(*schema, "1\t\"y\"\textra", &parsed).ok());
  EXPECT_FALSE(ParseTextRecord(*schema, "1\t\"unterminated", &parsed).ok());
}

TEST(TextDatasetTest, WriteThenScanAll) {
  auto fs = MakeFs();
  Schema::Ptr schema = MicrobenchSchema();
  MicrobenchGenerator gen(2);
  std::vector<Value> records;
  std::unique_ptr<TextWriter> writer;
  ASSERT_TRUE(TextWriter::Open(fs.get(), "/txt", schema, &writer).ok());
  for (int i = 0; i < 500; ++i) {
    records.push_back(gen.Next());
    ASSERT_TRUE(writer->WriteRecord(records.back()).ok());
  }
  ASSERT_TRUE(writer->Close().ok());
  EXPECT_EQ(writer->record_count(), 500u);

  TextInputFormat format;
  JobConfig config;
  config.input_paths = {"/txt"};
  std::vector<InputSplit> splits;
  ASSERT_TRUE(format.GetSplits(fs.get(), config, &splits).ok());
  EXPECT_GT(splits.size(), 1u);  // block-sized ranges

  size_t total = 0;
  for (const InputSplit& split : splits) {
    std::unique_ptr<RecordReader> reader;
    ASSERT_TRUE(format
                    .CreateRecordReader(fs.get(), config, split, ReadContext{},
                                        &reader)
                    .ok());
    while (reader->Next()) {
      const Value& url = reader->record().GetOrDie("str0");
      EXPECT_FALSE(url.string_value().empty());
      ++total;
    }
    ASSERT_TRUE(reader->status().ok()) << reader->status().ToString();
  }
  EXPECT_EQ(total, 500u);
}

// Property: whatever the split size, every record is read exactly once.
class TextSplitBoundaryTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TextSplitBoundaryTest, NoLossNoDuplication) {
  auto fs = MakeFs();
  Schema::Ptr schema;
  ASSERT_TRUE(Schema::Parse("record R { id: int, s: string }", &schema).ok());
  std::unique_ptr<TextWriter> writer;
  ASSERT_TRUE(TextWriter::Open(fs.get(), "/t", schema, &writer).ok());
  Random rng(4);
  const int kRecords = 1000;
  for (int i = 0; i < kRecords; ++i) {
    ASSERT_TRUE(writer
                    ->WriteRecord(Value::Record(
                        {Value::Int32(i),
                         Value::String(rng.NextString(5, 60))}))
                    .ok());
  }
  ASSERT_TRUE(writer->Close().ok());

  TextInputFormat format;
  JobConfig config;
  config.input_paths = {"/t"};
  config.split_size = GetParam();
  std::vector<InputSplit> splits;
  ASSERT_TRUE(format.GetSplits(fs.get(), config, &splits).ok());

  std::vector<bool> seen(kRecords, false);
  for (const InputSplit& split : splits) {
    std::unique_ptr<RecordReader> reader;
    ASSERT_TRUE(format
                    .CreateRecordReader(fs.get(), config, split, ReadContext{},
                                        &reader)
                    .ok());
    while (reader->Next()) {
      const int id = reader->record().GetOrDie("id").int32_value();
      ASSERT_GE(id, 0);
      ASSERT_LT(id, kRecords);
      EXPECT_FALSE(seen[id]) << "record " << id << " read twice";
      seen[id] = true;
    }
    ASSERT_TRUE(reader->status().ok()) << reader->status().ToString();
  }
  for (int i = 0; i < kRecords; ++i) {
    EXPECT_TRUE(seen[i]) << "record " << i << " lost";
  }
}

INSTANTIATE_TEST_SUITE_P(SplitSizes, TextSplitBoundaryTest,
                         ::testing::Values(512, 1000, 4096, 7777, 65536,
                                           1 << 20));

TEST(TextDatasetTest, SchemaFileRoundTrip) {
  auto fs = MakeFs();
  Schema::Ptr schema = MicrobenchSchema();
  ASSERT_TRUE(WriteDatasetSchema(fs.get(), "/d", *schema).ok());
  Schema::Ptr read;
  ASSERT_TRUE(ReadDatasetSchema(fs.get(), "/d", &read).ok());
  EXPECT_TRUE(schema->Equals(*read));
  Schema::Ptr missing;
  EXPECT_FALSE(ReadDatasetSchema(fs.get(), "/nope", &missing).ok());
}

}  // namespace
}  // namespace colmr
