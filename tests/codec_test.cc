#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "common/random.h"
#include "compress/codec.h"
#include "compress/dictionary.h"

namespace colmr {
namespace {

std::string MakeInput(const std::string& kind, size_t size, uint64_t seed) {
  Random rng(seed);
  std::string data;
  data.reserve(size);
  if (kind == "zeros") {
    data.assign(size, '\0');
  } else if (kind == "random") {
    while (data.size() < size) {
      data.push_back(static_cast<char>(rng.Next() & 0xff));
    }
  } else if (kind == "text") {
    // Page-like text: a small vocabulary repeated with separators.
    std::vector<std::string> vocab;
    for (int i = 0; i < 64; ++i) vocab.push_back(rng.NextWord(3 + i % 8));
    while (data.size() < size) {
      data += vocab[rng.Uniform(vocab.size())];
      data += ' ';
    }
  } else if (kind == "runs") {
    while (data.size() < size) {
      data.append(1 + rng.Uniform(64), static_cast<char>(rng.Uniform(4)));
    }
  }
  data.resize(size);
  return data;
}

// (codec, data kind, size)
using CodecCase = std::tuple<CodecType, std::string, size_t>;

class CodecRoundTripTest : public ::testing::TestWithParam<CodecCase> {};

TEST_P(CodecRoundTripTest, RoundTrips) {
  const auto& [type, kind, size] = GetParam();
  const Codec* codec = GetCodec(type);
  ASSERT_NE(codec, nullptr);
  const std::string input = MakeInput(kind, size, size * 31 + 7);
  Buffer compressed;
  ASSERT_TRUE(codec->Compress(input, &compressed).ok());
  Buffer output;
  ASSERT_TRUE(codec->Decompress(compressed.AsSlice(), &output).ok());
  EXPECT_EQ(output.AsSlice().ToString(), input);
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecsAllShapes, CodecRoundTripTest,
    ::testing::Combine(
        ::testing::Values(CodecType::kNone, CodecType::kLzf, CodecType::kZlite),
        ::testing::Values("zeros", "random", "text", "runs"),
        ::testing::Values(size_t{0}, size_t{1}, size_t{17}, size_t{1000},
                          size_t{65536}, size_t{1 << 20})));

TEST(CodecTest, CompressibleDataShrinks) {
  const std::string input = MakeInput("text", 256 * 1024, 3);
  for (CodecType type : {CodecType::kLzf, CodecType::kZlite}) {
    Buffer compressed;
    ASSERT_TRUE(GetCodec(type)->Compress(input, &compressed).ok());
    EXPECT_LT(compressed.size(), input.size() / 2)
        << GetCodec(type)->name();
  }
}

TEST(CodecTest, ZliteBeatsLzfRatioOnText) {
  // The design premise of the pair (paper Section 5.3): the ZLIB stand-in
  // compresses tighter than the LZO stand-in.
  const std::string input = MakeInput("text", 512 * 1024, 5);
  Buffer lzf, zlite;
  ASSERT_TRUE(GetCodec(CodecType::kLzf)->Compress(input, &lzf).ok());
  ASSERT_TRUE(GetCodec(CodecType::kZlite)->Compress(input, &zlite).ok());
  EXPECT_LT(zlite.size(), lzf.size());
}

TEST(CodecTest, DecompressAppendsToExistingOutput) {
  const Codec* codec = GetCodec(CodecType::kLzf);
  Buffer compressed;
  ASSERT_TRUE(codec->Compress(Slice("world"), &compressed).ok());
  Buffer out;
  out.Append(Slice("hello "));
  ASSERT_TRUE(codec->Decompress(compressed.AsSlice(), &out).ok());
  EXPECT_EQ(out.AsSlice().ToString(), "hello world");
}

TEST(CodecTest, TruncatedInputIsCorruption) {
  const std::string input = MakeInput("text", 10000, 11);
  for (CodecType type : {CodecType::kLzf, CodecType::kZlite}) {
    const Codec* codec = GetCodec(type);
    Buffer compressed;
    ASSERT_TRUE(codec->Compress(input, &compressed).ok());
    Buffer out;
    Slice truncated = compressed.AsSlice().Prefix(compressed.size() / 2);
    EXPECT_TRUE(codec->Decompress(truncated, &out).IsCorruption())
        << codec->name();
  }
}

TEST(CodecTest, NoneCodecSizeMismatchIsCorruption) {
  const Codec* codec = GetCodec(CodecType::kNone);
  Buffer compressed;
  ASSERT_TRUE(codec->Compress(Slice("abcdef"), &compressed).ok());
  Buffer out;
  Slice bad = compressed.AsSlice().Prefix(compressed.size() - 1);
  EXPECT_TRUE(codec->Decompress(bad, &out).IsCorruption());
}

TEST(CodecTest, NamesResolve) {
  CodecType type;
  ASSERT_TRUE(CodecTypeFromName("lzf", &type).ok());
  EXPECT_EQ(type, CodecType::kLzf);
  ASSERT_TRUE(CodecTypeFromName("lzo", &type).ok());  // alias
  EXPECT_EQ(type, CodecType::kLzf);
  ASSERT_TRUE(CodecTypeFromName("zlib", &type).ok());  // alias
  EXPECT_EQ(type, CodecType::kZlite);
  ASSERT_TRUE(CodecTypeFromName("none", &type).ok());
  EXPECT_TRUE(CodecTypeFromName("gzip9000", &type).IsInvalidArgument());
}

TEST(DictionaryTest, InternAssignsDenseIds) {
  StringDictionary dict;
  EXPECT_EQ(dict.Intern(Slice("content-type")), 0u);
  EXPECT_EQ(dict.Intern(Slice("server")), 1u);
  EXPECT_EQ(dict.Intern(Slice("content-type")), 0u);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.Lookup(1), "server");
  EXPECT_EQ(dict.Find(Slice("server")), 1);
  EXPECT_EQ(dict.Find(Slice("missing")), -1);
}

TEST(DictionaryTest, SerializeRoundTrips) {
  StringDictionary dict;
  Random rng(17);
  std::vector<std::string> keys;
  for (int i = 0; i < 200; ++i) {
    keys.push_back(rng.NextWord(1 + rng.Uniform(12)));
    dict.Intern(keys.back());
  }
  Buffer serialized;
  dict.Serialize(&serialized);
  EXPECT_EQ(serialized.size(), dict.SerializedSize());

  StringDictionary decoded;
  Slice cursor = serialized.AsSlice();
  ASSERT_TRUE(decoded.Deserialize(&cursor).ok());
  EXPECT_TRUE(cursor.empty());
  EXPECT_EQ(decoded.size(), dict.size());
  for (const std::string& key : keys) {
    EXPECT_EQ(decoded.Find(key), dict.Find(key));
  }
}

TEST(DictionaryTest, EmptyDictionary) {
  StringDictionary dict;
  Buffer serialized;
  dict.Serialize(&serialized);
  StringDictionary decoded;
  Slice cursor = serialized.AsSlice();
  ASSERT_TRUE(decoded.Deserialize(&cursor).ok());
  EXPECT_EQ(decoded.size(), 0u);
}

}  // namespace
}  // namespace colmr
