#include <gtest/gtest.h>

#include "common/random.h"
#include "serde/boxed.h"
#include "serde/encoding.h"
#include "serde/record.h"
#include "serde/schema.h"
#include "serde/value.h"

namespace colmr {
namespace {

TEST(SchemaTest, PrimitivesParse) {
  for (const char* name :
       {"null", "bool", "int", "long", "double", "string", "bytes"}) {
    Schema::Ptr schema;
    ASSERT_TRUE(Schema::Parse(name, &schema).ok()) << name;
    EXPECT_TRUE(schema->is_primitive());
  }
}

TEST(SchemaTest, ParseToStringRoundTrip) {
  const std::string text =
      "record URLInfo { url: string, srcUrl: string, fetchTime: long, "
      "inlink: array<string>, metadata: map<string>, "
      "annotations: map<string>, content: bytes }";
  Schema::Ptr schema;
  ASSERT_TRUE(Schema::Parse(text, &schema).ok());
  EXPECT_EQ(schema->kind(), TypeKind::kRecord);
  EXPECT_EQ(schema->record_name(), "URLInfo");
  EXPECT_EQ(schema->fields().size(), 7u);
  EXPECT_EQ(schema->FieldIndex("metadata"), 4);
  EXPECT_EQ(schema->FieldIndex("nope"), -1);

  Schema::Ptr reparsed;
  ASSERT_TRUE(Schema::Parse(schema->ToString(), &reparsed).ok());
  EXPECT_TRUE(schema->Equals(*reparsed));
}

TEST(SchemaTest, NestedRecordsAndTwoArgMaps) {
  Schema::Ptr schema;
  ASSERT_TRUE(Schema::Parse(
                  "record Outer { inner: record Inner { xs: array<int> }, "
                  "meta: map<string,string> }",
                  &schema)
                  .ok());
  EXPECT_EQ(schema->fields()[0].type->kind(), TypeKind::kRecord);
  EXPECT_EQ(schema->fields()[1].type->kind(), TypeKind::kMap);
  EXPECT_EQ(schema->fields()[1].type->element()->kind(), TypeKind::kString);
}

TEST(SchemaTest, ParseErrors) {
  Schema::Ptr schema;
  EXPECT_TRUE(Schema::Parse("flavor", &schema).IsInvalidArgument());
  EXPECT_TRUE(Schema::Parse("array<int", &schema).IsInvalidArgument());
  EXPECT_TRUE(Schema::Parse("record R { a: int a2 }", &schema)
                  .IsInvalidArgument());
  EXPECT_TRUE(Schema::Parse("record R { a: int, a: int }", &schema)
                  .IsInvalidArgument());
  EXPECT_TRUE(Schema::Parse("int extra", &schema).IsInvalidArgument());
}

TEST(SchemaTest, WithFieldAppends) {
  Schema::Ptr base;
  ASSERT_TRUE(Schema::Parse("record R { a: int }", &base).ok());
  Schema::Ptr widened = Schema::WithField(base, {"b", Schema::String()});
  EXPECT_EQ(widened->fields().size(), 2u);
  EXPECT_EQ(widened->FieldIndex("b"), 1);
  EXPECT_FALSE(base->Equals(*widened));
}

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Bool(true).bool_value(), true);
  EXPECT_EQ(Value::Int32(-7).int32_value(), -7);
  EXPECT_EQ(Value::Int64(1ll << 40).int64_value(), 1ll << 40);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).double_value(), 2.5);
  EXPECT_EQ(Value::String("abc").string_value(), "abc");
  EXPECT_EQ(Value::Bytes("\x01\x02").bytes_value(), "\x01\x02");
  Value arr = Value::Array({Value::Int32(1), Value::Int32(2)});
  EXPECT_EQ(arr.elements().size(), 2u);
}

TEST(ValueTest, MapLookup) {
  Value m = Value::Map({{"content-type", Value::String("text/html")},
                        {"server", Value::String("apache")}});
  ASSERT_NE(m.FindMapEntry("server"), nullptr);
  EXPECT_EQ(m.FindMapEntry("server")->string_value(), "apache");
  EXPECT_EQ(m.FindMapEntry("missing"), nullptr);
}

TEST(ValueTest, CompareTotalOrder) {
  EXPECT_EQ(Value::Int32(3).Compare(Value::Int32(3)), 0);
  EXPECT_LT(Value::Int32(2).Compare(Value::Int32(3)), 0);
  EXPECT_GT(Value::String("b").Compare(Value::String("a")), 0);
  EXPECT_LT(Value::Array({Value::Int32(1)})
                .Compare(Value::Array({Value::Int32(1), Value::Int32(2)})),
            0);
  // Mixed kinds order by kind tag, giving a stable shuffle sort.
  EXPECT_NE(Value::Int32(1).Compare(Value::String("1")), 0);
  EXPECT_TRUE(Value::String("a") < Value::String("b"));
}

TEST(ValueTest, ToStringEscapes) {
  EXPECT_EQ(Value::String("a\tb\"c\\d\ne").ToString(),
            "\"a\\tb\\\"c\\\\d\\ne\"");
  EXPECT_EQ(Value::Array({Value::Int32(1), Value::Null()}).ToString(),
            "[1,null]");
  EXPECT_EQ(Value::Map({{"k", Value::Int32(5)}}).ToString(), "{\"k\":5}");
}

Schema::Ptr ComplexSchema() {
  Schema::Ptr schema;
  Status s = Schema::Parse(
      "record T { b: bool, i: int, l: long, d: double, s: string, "
      "raw: bytes, xs: array<int>, m: map<string>, "
      "nested: record N { a: array<map<int>> } }",
      &schema);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return schema;
}

Value MakeComplexValue(Random* rng) {
  std::vector<Value> xs;
  for (uint64_t i = rng->Uniform(5); i > 0; --i) {
    xs.push_back(Value::Int32(static_cast<int32_t>(rng->Next())));
  }
  Value::MapEntries m;
  for (uint64_t i = rng->Uniform(4); i > 0; --i) {
    m.emplace_back(rng->NextWord(4), Value::String(rng->NextString(0, 20)));
  }
  Value::MapEntries inner_map;
  inner_map.emplace_back("k", Value::Int32(7));
  return Value::Record({
      Value::Bool(rng->OneIn(2)),
      Value::Int32(static_cast<int32_t>(rng->Next())),
      Value::Int64(static_cast<int64_t>(rng->Next())),
      Value::Double(rng->NextDouble() * 1e9),
      Value::String(rng->NextString(0, 40)),
      Value::Bytes(rng->NextString(0, 40)),
      Value::Array(std::move(xs)),
      Value::Map(std::move(m)),
      Value::Record({Value::Array({Value::Map(inner_map)})}),
  });
}

class EncodingRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(EncodingRoundTripTest, ComplexValuesRoundTrip) {
  Random rng(GetParam());
  Schema::Ptr schema = ComplexSchema();
  for (int i = 0; i < 50; ++i) {
    Value value = MakeComplexValue(&rng);
    Buffer encoded;
    ASSERT_TRUE(EncodeValue(*schema, value, &encoded).ok());
    EXPECT_EQ(encoded.size(), EncodedSize(*schema, value));
    Slice cursor = encoded.AsSlice();
    Value decoded;
    ASSERT_TRUE(DecodeValue(*schema, &cursor, &decoded).ok());
    EXPECT_TRUE(cursor.empty());
    EXPECT_EQ(value.Compare(decoded), 0);

    // SkipValue must consume exactly the same bytes as DecodeValue.
    Slice skip_cursor = encoded.AsSlice();
    ASSERT_TRUE(SkipValue(*schema, &skip_cursor).ok());
    EXPECT_TRUE(skip_cursor.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodingRoundTripTest,
                         ::testing::Range(1, 9));

TEST(EncodingTest, KindMismatchRejected) {
  Buffer b;
  EXPECT_TRUE(
      EncodeValue(*Schema::String(), Value::Int32(1), &b).IsInvalidArgument());
}

TEST(EncodingTest, Int32WidensToInt64Column) {
  Buffer b;
  ASSERT_TRUE(EncodeValue(*Schema::Int64(), Value::Int32(42), &b).ok());
  Slice cursor = b.AsSlice();
  Value v;
  ASSERT_TRUE(DecodeValue(*Schema::Int64(), &cursor, &v).ok());
  EXPECT_EQ(v.int64_value(), 42);
}

TEST(EncodingTest, TruncatedDecodeIsCorruption) {
  Schema::Ptr schema = ComplexSchema();
  Random rng(99);
  Value value = MakeComplexValue(&rng);
  Buffer encoded;
  ASSERT_TRUE(EncodeValue(*schema, value, &encoded).ok());
  for (size_t cut : {size_t{0}, size_t{1}, encoded.size() / 2,
                     encoded.size() - 1}) {
    Slice cursor = encoded.AsSlice().Prefix(cut);
    Value decoded;
    EXPECT_TRUE(DecodeValue(*schema, &cursor, &decoded).IsCorruption());
  }
}

TEST(EncodingTest, TaggedRoundTrip) {
  Random rng(5);
  for (int i = 0; i < 50; ++i) {
    Value value = MakeComplexValue(&rng);
    Buffer encoded;
    EncodeTaggedValue(value, &encoded);
    EXPECT_EQ(encoded.size(), TaggedEncodedSize(value));
    Slice cursor = encoded.AsSlice();
    Value decoded;
    ASSERT_TRUE(DecodeTaggedValue(&cursor, &decoded).ok());
    EXPECT_TRUE(cursor.empty());
    EXPECT_EQ(value.Compare(decoded), 0);
  }
}

TEST(RecordTest, EagerRecordGet) {
  Schema::Ptr schema;
  ASSERT_TRUE(Schema::Parse("record R { a: int, b: string }", &schema).ok());
  EagerRecord record(schema,
                     Value::Record({Value::Int32(1), Value::String("x")}));
  const Value* v = nullptr;
  ASSERT_TRUE(record.Get("b", &v).ok());
  EXPECT_EQ(v->string_value(), "x");
  EXPECT_TRUE(record.Get("c", &v).IsNotFound());
  EXPECT_EQ(record.GetOrDie("a").int32_value(), 1);
}

TEST(BoxedTest, MatchesNativeDecode) {
  Schema::Ptr schema = ComplexSchema();
  Random rng(31);
  for (int i = 0; i < 20; ++i) {
    Value value = MakeComplexValue(&rng);
    Buffer encoded;
    ASSERT_TRUE(EncodeValue(*schema, value, &encoded).ok());

    Slice cursor = encoded.AsSlice();
    std::unique_ptr<BoxedValue> boxed;
    ASSERT_TRUE(DecodeBoxed(*schema, &cursor, &boxed).ok());
    EXPECT_TRUE(cursor.empty());
    // The boxed tree visits every decoded value; a stable checksum across
    // runs of the same input proves full materialization.
    const uint64_t c1 = boxed->Checksum();
    Slice cursor2 = encoded.AsSlice();
    std::unique_ptr<BoxedValue> boxed2;
    ASSERT_TRUE(DecodeBoxed(*schema, &cursor2, &boxed2).ok());
    EXPECT_EQ(c1, boxed2->Checksum());
  }
}

TEST(BoxedTest, BoxedMapHoldsEntries) {
  Schema::Ptr schema = Schema::Map(Schema::Int32());
  Value m = Value::Map({{"a", Value::Int32(1)}, {"b", Value::Int32(2)}});
  Buffer encoded;
  ASSERT_TRUE(EncodeValue(*schema, m, &encoded).ok());
  Slice cursor = encoded.AsSlice();
  std::unique_ptr<BoxedValue> boxed;
  ASSERT_TRUE(DecodeBoxed(*schema, &cursor, &boxed).ok());
  auto* map = dynamic_cast<BoxedMap*>(boxed.get());
  ASSERT_NE(map, nullptr);
  EXPECT_EQ(map->entries.size(), 2u);
  EXPECT_EQ(dynamic_cast<BoxedInt*>(map->entries.at("b").get())->value, 2);
}

}  // namespace
}  // namespace colmr
