#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/coding.h"
#include "hdfs/cost_model.h"
#include "hdfs/mini_hdfs.h"
#include "hdfs/placement.h"
#include "hdfs/reader.h"

namespace colmr {
namespace {

ClusterConfig SmallCluster() {
  ClusterConfig config;
  config.num_nodes = 8;
  config.replication = 3;
  config.block_size = 1024;  // tiny blocks so tests span many
  config.io_buffer_size = 256;
  return config;
}

std::unique_ptr<MiniHdfs> MakeFs() {
  return std::make_unique<MiniHdfs>(
      SmallCluster(), std::make_unique<DefaultPlacementPolicy>(1));
}

std::string Pattern(size_t n) {
  std::string s(n, '\0');
  for (size_t i = 0; i < n; ++i) s[i] = static_cast<char>('a' + i % 26);
  return s;
}

TEST(MiniHdfsTest, CreateWriteRead) {
  auto fs = MakeFs();
  std::unique_ptr<FileWriter> writer;
  ASSERT_TRUE(fs->Create("/data/file", &writer).ok());
  const std::string payload = Pattern(5000);
  writer->Append(payload);
  ASSERT_TRUE(writer->Close().ok());

  uint64_t size = 0;
  ASSERT_TRUE(fs->GetFileSize("/data/file", &size).ok());
  EXPECT_EQ(size, payload.size());

  std::unique_ptr<FileReader> reader;
  ASSERT_TRUE(fs->Open("/data/file", ReadContext{}, &reader).ok());
  std::string read_back;
  ASSERT_TRUE(reader->Read(0, payload.size(), &read_back).ok());
  EXPECT_EQ(read_back, payload);

  // Positioned read across a block boundary.
  ASSERT_TRUE(reader->Read(1000, 100, &read_back).ok());
  EXPECT_EQ(read_back, payload.substr(1000, 100));
  // Read past EOF is short, not an error.
  ASSERT_TRUE(reader->Read(4990, 100, &read_back).ok());
  EXPECT_EQ(read_back, payload.substr(4990));
}

TEST(MiniHdfsTest, PathValidationAndDuplicates) {
  auto fs = MakeFs();
  std::unique_ptr<FileWriter> writer;
  EXPECT_TRUE(fs->Create("relative/path", &writer).IsInvalidArgument());
  ASSERT_TRUE(fs->Create("/x", &writer).ok());
  writer->Close();
  std::unique_ptr<FileWriter> dup;
  EXPECT_TRUE(fs->Create("/x", &dup).IsAlreadyExists());
  std::unique_ptr<FileReader> reader;
  EXPECT_TRUE(fs->Open("/missing", ReadContext{}, &reader).IsNotFound());
}

TEST(MiniHdfsTest, BlocksAreReplicated) {
  auto fs = MakeFs();
  std::unique_ptr<FileWriter> writer;
  ASSERT_TRUE(fs->Create("/f", &writer).ok());
  writer->Append(Pattern(3000));  // 3 blocks at block_size 1024
  ASSERT_TRUE(writer->Close().ok());

  std::vector<BlockInfo> blocks;
  ASSERT_TRUE(fs->GetBlockLocations("/f", &blocks).ok());
  ASSERT_EQ(blocks.size(), 3u);
  uint64_t total = 0;
  for (const BlockInfo& b : blocks) {
    EXPECT_EQ(b.replicas.size(), 3u);
    std::set<NodeId> distinct(b.replicas.begin(), b.replicas.end());
    EXPECT_EQ(distinct.size(), 3u);
    total += b.size;
  }
  EXPECT_EQ(total, 3000u);
}

TEST(MiniHdfsTest, ListDirAndDelete) {
  auto fs = MakeFs();
  for (const char* path : {"/d/s0/a.col", "/d/s0/b.col", "/d/s1/a.col"}) {
    std::unique_ptr<FileWriter> writer;
    ASSERT_TRUE(fs->Create(path, &writer).ok());
    writer->Append(Slice("x"));
    writer->Close();
  }
  std::vector<std::string> children;
  ASSERT_TRUE(fs->ListDir("/d", &children).ok());
  EXPECT_EQ(children, (std::vector<std::string>{"s0", "s1"}));
  ASSERT_TRUE(fs->ListDir("/d/s0", &children).ok());
  EXPECT_EQ(children, (std::vector<std::string>{"a.col", "b.col"}));

  ASSERT_TRUE(fs->Delete("/d/s0/a.col").ok());
  EXPECT_FALSE(fs->Exists("/d/s0/a.col"));
  EXPECT_TRUE(fs->Delete("/d/s0/a.col").IsNotFound());
}

TEST(MiniHdfsTest, RenameMovesFileAtomically) {
  auto fs = MakeFs();
  const std::string payload = Pattern(2500);
  std::unique_ptr<FileWriter> writer;
  ASSERT_TRUE(fs->Create("/a/f", &writer).ok());
  writer->Append(payload);
  ASSERT_TRUE(writer->Close().ok());

  ASSERT_TRUE(fs->Rename("/a/f", "/b/f").ok());
  EXPECT_FALSE(fs->Exists("/a/f"));
  ASSERT_TRUE(fs->Exists("/b/f"));
  // Metadata-only move: the bytes (and their checksums) read back intact
  // at the new name.
  std::unique_ptr<FileReader> reader;
  ASSERT_TRUE(fs->Open("/b/f", ReadContext{}, &reader).ok());
  std::string got;
  ASSERT_TRUE(reader->Read(0, payload.size(), &got).ok());
  EXPECT_EQ(got, payload);

  EXPECT_TRUE(fs->Rename("/missing", "/x").IsNotFound());
  EXPECT_TRUE(fs->Rename("relative", "/x").IsInvalidArgument());
  EXPECT_TRUE(fs->Rename("/b/f", "relative").IsInvalidArgument());
}

TEST(MiniHdfsTest, RenameMovesDirectoriesAndRefusesCollisions) {
  auto fs = MakeFs();
  for (const char* path : {"/d/x", "/d/sub/y", "/e/x"}) {
    std::unique_ptr<FileWriter> writer;
    ASSERT_TRUE(fs->Create(path, &writer).ok());
    writer->Append(Slice(path));
    ASSERT_TRUE(writer->Close().ok());
  }
  // Directory rename moves every file under the prefix.
  ASSERT_TRUE(fs->Rename("/d", "/moved").ok());
  EXPECT_FALSE(fs->Exists("/d/x"));
  EXPECT_TRUE(fs->Exists("/moved/x"));
  EXPECT_TRUE(fs->Exists("/moved/sub/y"));

  // A destination collision fails the WHOLE rename before moving
  // anything — the atomicity CommitTask's rename-or-lose race rests on.
  ASSERT_TRUE(fs->Rename("/moved", "/e").IsAlreadyExists());
  EXPECT_TRUE(fs->Exists("/moved/x"));
  EXPECT_TRUE(fs->Exists("/moved/sub/y"));
  EXPECT_TRUE(fs->Exists("/e/x"));

  // Renaming a directory into itself is rejected, not an infinite loop.
  EXPECT_TRUE(fs->Rename("/moved", "/moved/inner").IsInvalidArgument());
}

TEST(MiniHdfsTest, DeleteRecursiveRemovesTreeAndIsIdempotent) {
  auto fs = MakeFs();
  for (const char* path : {"/t/a", "/t/sub/b", "/t/sub/deep/c", "/keep"}) {
    std::unique_ptr<FileWriter> writer;
    ASSERT_TRUE(fs->Create(path, &writer).ok());
    writer->Append(Slice("x"));
    ASSERT_TRUE(writer->Close().ok());
  }
  ASSERT_TRUE(fs->DeleteRecursive("/t").ok());
  EXPECT_FALSE(fs->Exists("/t/a"));
  EXPECT_FALSE(fs->Exists("/t/sub/b"));
  EXPECT_FALSE(fs->Exists("/t/sub/deep/c"));
  EXPECT_TRUE(fs->Exists("/keep"));
  std::vector<std::string> children;
  EXPECT_FALSE(fs->ListDir("/t", &children).ok());
  // Idempotent: deleting what is already gone is OK, not NotFound.
  EXPECT_TRUE(fs->DeleteRecursive("/t").ok());
  // Exact-file form works too.
  EXPECT_TRUE(fs->DeleteRecursive("/keep").ok());
  EXPECT_FALSE(fs->Exists("/keep"));
}

TEST(PlacementTest, SplitDirectoryNaming) {
  EXPECT_EQ(SplitDirectoryOf("/data/x/s0/url.col"), "/data/x/s0");
  EXPECT_EQ(SplitDirectoryOf("/data/x/s123/url.col"), "/data/x/s123");
  EXPECT_EQ(SplitDirectoryOf("/data/x/sx/url.col"), "");
  EXPECT_EQ(SplitDirectoryOf("/data/x/url.col"), "");
  EXPECT_EQ(SplitDirectoryOf("/s0"), "");
  EXPECT_EQ(SplitDirectoryOf("/data/split9/f"), "");
}

TEST(PlacementTest, DefaultPolicyScattersColumnFiles) {
  // Fig. 3a: under the default policy, sibling column files usually have
  // no common replica node.
  auto fs = std::make_unique<MiniHdfs>(
      SmallCluster(), std::make_unique<DefaultPlacementPolicy>(7));
  std::vector<std::string> paths;
  for (const char* name : {"c1", "c2", "c3", "c4"}) {
    const std::string path = std::string("/ds/s0/") + name + ".col";
    paths.push_back(path);
    std::unique_ptr<FileWriter> writer;
    ASSERT_TRUE(fs->Create(path, &writer).ok());
    writer->Append(Pattern(2500));
    writer->Close();
  }
  // With 4 files x 3 blocks each on 8 nodes, a common node for all blocks
  // is vanishingly unlikely.
  EXPECT_TRUE(fs->CommonReplicaNodes(paths).empty());
}

TEST(PlacementTest, ColumnPlacementPolicyCoLocates) {
  // Fig. 3b: under CPP every file of a split-directory shares one replica
  // set, so all three replicas can read any column locally.
  auto fs = std::make_unique<MiniHdfs>(
      SmallCluster(), std::make_unique<ColumnPlacementPolicy>(7));
  std::vector<std::string> paths;
  for (const char* name : {"c1", "c2", "c3", "c4"}) {
    const std::string path = std::string("/ds/s0/") + name + ".col";
    paths.push_back(path);
    std::unique_ptr<FileWriter> writer;
    ASSERT_TRUE(fs->Create(path, &writer).ok());
    writer->Append(Pattern(2500));
    writer->Close();
  }
  EXPECT_EQ(fs->CommonReplicaNodes(paths).size(), 3u);

  // A different split-directory gets its own (load-balanced) replica set.
  std::unique_ptr<FileWriter> writer;
  ASSERT_TRUE(fs->Create("/ds/s1/c1.col", &writer).ok());
  writer->Append(Pattern(100));
  writer->Close();
  // Non-convention paths fall back to the default policy (still valid).
  ASSERT_TRUE(fs->Create("/plain/file", &writer).ok());
  writer->Append(Pattern(100));
  writer->Close();
  std::vector<BlockInfo> blocks;
  ASSERT_TRUE(fs->GetBlockLocations("/plain/file", &blocks).ok());
  EXPECT_EQ(blocks[0].replicas.size(), 3u);
}

TEST(ReadAccountingTest, LocalVsRemoteBytes) {
  auto fs = std::make_unique<MiniHdfs>(
      SmallCluster(), std::make_unique<ColumnPlacementPolicy>(7));
  std::unique_ptr<FileWriter> writer;
  ASSERT_TRUE(fs->Create("/ds/s0/c.col", &writer).ok());
  writer->Append(Pattern(2048));
  writer->Close();
  std::vector<BlockInfo> blocks;
  ASSERT_TRUE(fs->GetBlockLocations("/ds/s0/c.col", &blocks).ok());
  const NodeId holder = blocks[0].replicas[0];
  NodeId stranger = 0;
  while (std::find(blocks[0].replicas.begin(), blocks[0].replicas.end(),
                   stranger) != blocks[0].replicas.end()) {
    ++stranger;
  }

  IoStats local_stats;
  std::unique_ptr<FileReader> reader;
  ASSERT_TRUE(
      fs->Open("/ds/s0/c.col", ReadContext{holder, &local_stats}, &reader)
          .ok());
  std::string out;
  ASSERT_TRUE(reader->Read(0, 2048, &out).ok());
  EXPECT_EQ(local_stats.local_bytes, 2048u);
  EXPECT_EQ(local_stats.remote_bytes, 0u);

  IoStats remote_stats;
  ASSERT_TRUE(
      fs->Open("/ds/s0/c.col", ReadContext{stranger, &remote_stats}, &reader)
          .ok());
  ASSERT_TRUE(reader->Read(0, 2048, &out).ok());
  EXPECT_EQ(remote_stats.local_bytes, 0u);
  EXPECT_EQ(remote_stats.remote_bytes, 2048u);
}

TEST(BufferedReaderTest, SequentialPeekConsume) {
  auto fs = MakeFs();
  std::unique_ptr<FileWriter> writer;
  ASSERT_TRUE(fs->Create("/f", &writer).ok());
  const std::string payload = Pattern(5000);
  writer->Append(payload);
  writer->Close();

  IoStats stats;
  std::unique_ptr<FileReader> raw;
  ASSERT_TRUE(fs->Open("/f", ReadContext{kAnyNode, &stats}, &raw).ok());
  BufferedReader reader(std::move(raw), 256);
  std::string got;
  while (!reader.AtEnd()) {
    Slice view;
    ASSERT_TRUE(reader.Peek(1, &view).ok());
    got.append(view.data(), view.size());
    reader.Consume(view.size());
  }
  EXPECT_EQ(got, payload);
  // Sequential scan: exactly one seek (the initial positioning).
  EXPECT_EQ(stats.seeks, 1u);
  EXPECT_EQ(stats.local_bytes, payload.size());
}

TEST(BufferedReaderTest, SeekOutsideWindowCountsSeekAndChargesPrefetch) {
  auto fs = MakeFs();
  std::unique_ptr<FileWriter> writer;
  ASSERT_TRUE(fs->Create("/f", &writer).ok());
  writer->Append(Pattern(10000));
  writer->Close();

  IoStats stats;
  std::unique_ptr<FileReader> raw;
  ASSERT_TRUE(fs->Open("/f", ReadContext{kAnyNode, &stats}, &raw).ok());
  BufferedReader reader(std::move(raw), 256);
  Slice view;
  ASSERT_TRUE(reader.Peek(10, &view).ok());  // fetches a 256-byte buffer
  reader.Consume(10);
  ASSERT_TRUE(reader.Seek(5000).ok());  // far outside the window
  ASSERT_TRUE(reader.Peek(10, &view).ok());
  EXPECT_EQ(view[0], Pattern(5001)[5000]);
  EXPECT_EQ(stats.seeks, 2u);
  // Both buffer fills were charged even though only 20 bytes were used:
  // read amplification at io.file.buffer.size granularity.
  EXPECT_EQ(stats.local_bytes, 512u);
}

TEST(BufferedReaderTest, SkipWithinBufferIsFree) {
  auto fs = MakeFs();
  std::unique_ptr<FileWriter> writer;
  ASSERT_TRUE(fs->Create("/f", &writer).ok());
  writer->Append(Pattern(1000));
  writer->Close();

  IoStats stats;
  std::unique_ptr<FileReader> raw;
  ASSERT_TRUE(fs->Open("/f", ReadContext{kAnyNode, &stats}, &raw).ok());
  BufferedReader reader(std::move(raw), 512);
  Slice view;
  ASSERT_TRUE(reader.Peek(1, &view).ok());
  ASSERT_TRUE(reader.Skip(100).ok());  // buffered: no extra seek
  EXPECT_EQ(stats.seeks, 1u);
  EXPECT_EQ(reader.position(), 100u);
}

TEST(BufferedReaderTest, PeekGrowsAcrossBufferBoundaries) {
  auto fs = MakeFs();
  std::unique_ptr<FileWriter> writer;
  ASSERT_TRUE(fs->Create("/f", &writer).ok());
  const std::string payload = Pattern(3000);
  writer->Append(payload);
  writer->Close();

  std::unique_ptr<FileReader> raw;
  ASSERT_TRUE(fs->Open("/f", ReadContext{}, &raw).ok());
  BufferedReader reader(std::move(raw), 256);
  Slice view;
  ASSERT_TRUE(reader.Peek(2000, &view).ok());  // far larger than the buffer
  ASSERT_GE(view.size(), 2000u);
  EXPECT_EQ(Slice(view.data(), 2000).ToString(), payload.substr(0, 2000));
}

TEST(BufferedReaderTest, VarintAndBytesHelpers) {
  auto fs = MakeFs();
  std::unique_ptr<FileWriter> writer;
  ASSERT_TRUE(fs->Create("/f", &writer).ok());
  Buffer b;
  PutVarint64(&b, 300);
  PutFixed32(&b, 77);
  b.Append(Slice("tail"));
  writer->Append(b.AsSlice());
  writer->Close();

  std::unique_ptr<FileReader> raw;
  ASSERT_TRUE(fs->Open("/f", ReadContext{}, &raw).ok());
  BufferedReader reader(std::move(raw), 0);
  uint64_t v;
  uint32_t f;
  std::string tail;
  ASSERT_TRUE(reader.ReadVarint64(&v).ok());
  ASSERT_TRUE(reader.ReadFixed32(&f).ok());
  ASSERT_TRUE(reader.ReadBytes(4, &tail).ok());
  EXPECT_EQ(v, 300u);
  EXPECT_EQ(f, 77u);
  EXPECT_EQ(tail, "tail");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BufferedReaderTest, ReadBytesPastEndIsCorruption) {
  auto fs = MakeFs();
  std::unique_ptr<FileWriter> writer;
  ASSERT_TRUE(fs->Create("/f", &writer).ok());
  writer->Append(Slice("0123456789"));
  writer->Close();

  std::unique_ptr<FileReader> raw;
  ASSERT_TRUE(fs->Open("/f", ReadContext{}, &raw).ok());
  BufferedReader reader(std::move(raw), 0);
  std::string head;
  ASSERT_TRUE(reader.ReadBytes(6, &head).ok());
  EXPECT_EQ(head, "012345");
  // A length decoded from a (truncated) header that runs past EOF must
  // surface as Corruption, not a silently short success.
  std::string tail;
  Status s = reader.ReadBytes(10, &tail);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  // The cursor did not move: the remaining bytes are still readable.
  ASSERT_TRUE(reader.ReadBytes(4, &tail).ok());
  EXPECT_EQ(tail, "6789");
}

TEST(CostModelTest, TaskSecondsComposesTerms) {
  ClusterConfig config;
  config.disk_bandwidth_mbps = 100;
  config.network_bandwidth_mbps = 10;
  config.seek_latency_ms = 10;
  CostModel model(config);
  TaskCost cost;
  cost.cpu_seconds = 1.0;
  cost.io.local_bytes = 100 * 1000 * 1000;  // 1s at 100 MB/s
  cost.io.remote_bytes = 10 * 1000 * 1000;  // 1s at 10 MB/s
  cost.io.seeks = 100;                      // 1s at 10 ms
  EXPECT_NEAR(model.TaskSeconds(cost), 4.0, 1e-9);
}

TEST(CostModelTest, MapPhasePacksOntoSlots) {
  ClusterConfig config;
  config.num_nodes = 2;
  config.map_slots_per_node = 2;  // 4 slots
  CostModel model(config);
  // 8 unit tasks on 4 slots: 2 waves.
  std::vector<double> tasks(8, 1.0);
  EXPECT_NEAR(model.MapPhaseSeconds(tasks), 2.0, 1e-9);
  // One long task dominates.
  tasks.push_back(10.0);
  EXPECT_NEAR(model.MapPhaseSeconds(tasks), 10.0, 1e-9);
  EXPECT_NEAR(model.MapPhaseSeconds({}), 0.0, 1e-9);
}

}  // namespace
}  // namespace colmr

namespace colmr {
namespace {

TEST(BufferedReaderTest, ShortForwardSkipReadsThroughWithoutSeek) {
  auto fs = MakeFs();
  std::unique_ptr<FileWriter> writer;
  ASSERT_TRUE(fs->Create("/f", &writer).ok());
  const std::string payload = Pattern(4000);
  writer->Append(payload);
  writer->Close();

  IoStats stats;
  std::unique_ptr<FileReader> raw;
  ASSERT_TRUE(fs->Open("/f", ReadContext{kAnyNode, &stats}, &raw).ok());
  BufferedReader reader(std::move(raw), 256);
  Slice view;
  ASSERT_TRUE(reader.Peek(1, &view).ok());
  reader.Consume(1);
  // Skip 400 bytes: past the 256-byte buffer but within the 2x-buffer
  // read-through window -> bytes are fetched, no extra seek.
  ASSERT_TRUE(reader.Skip(400).ok());
  EXPECT_EQ(reader.position(), 401u);
  EXPECT_EQ(stats.seeks, 1u);
  ASSERT_TRUE(reader.Peek(1, &view).ok());
  EXPECT_EQ(view[0], payload[401]);
  // Intervening bytes were charged (read through).
  EXPECT_GE(stats.local_bytes, 401u);
}

TEST(BufferedReaderTest, LongForwardSkipSeeksAndSavesBytes) {
  auto fs = MakeFs();
  std::unique_ptr<FileWriter> writer;
  ASSERT_TRUE(fs->Create("/f", &writer).ok());
  const std::string payload = Pattern(20000);
  writer->Append(payload);
  writer->Close();

  IoStats stats;
  std::unique_ptr<FileReader> raw;
  ASSERT_TRUE(fs->Open("/f", ReadContext{kAnyNode, &stats}, &raw).ok());
  BufferedReader reader(std::move(raw), 256);
  Slice view;
  ASSERT_TRUE(reader.Peek(1, &view).ok());
  reader.Consume(1);
  ASSERT_TRUE(reader.Skip(15000).ok());  // way past the read-through window
  EXPECT_EQ(reader.position(), 15001u);
  EXPECT_EQ(stats.seeks, 2u);  // initial + the jump
  ASSERT_TRUE(reader.Peek(1, &view).ok());
  EXPECT_EQ(view[0], payload[15001]);
  // The skipped middle was never fetched.
  EXPECT_LT(stats.local_bytes, 2000u);
}

TEST(SchedulerModelTest, OverloadedLocalNodesFallBackToRemote) {
  // Many splits all local to the same replica set: the fair-share rule
  // pushes the excess onto other nodes (the paper's "Node 1 is busy").
  ClusterConfig config = SmallCluster();
  CostModel model(config);
  std::vector<int> load(config.num_nodes, 0);
  // Simulated by construction: fair share for 16 splits on 8 nodes is 2,
  // so a replica set of {0,1,2} can absorb at most 6 local tasks.
  // (Exercised end-to-end in mapreduce_test; here we pin the arithmetic.)
  const int fair_share = (16 + config.num_nodes - 1) / config.num_nodes;
  EXPECT_EQ(fair_share, 2);
}

}  // namespace
}  // namespace colmr
