// Tests for the parallel execution engine: serial/parallel output
// equivalence, MiniHdfs thread-safety under concurrent readers (races are
// caught when the suite runs under ThreadSanitizer — see tools/check.sh),
// and slot-faithful admission (no node ever exceeds map_slots_per_node
// concurrently executing tasks).

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cif/cif.h"
#include "cif/cof.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "formats/text/text_format.h"
#include "mapreduce/engine.h"
#include "workload/weblog.h"

namespace colmr {
namespace {

ClusterConfig SmallCluster() {
  ClusterConfig config;
  config.num_nodes = 4;
  config.map_slots_per_node = 2;
  config.block_size = 16 * 1024;
  config.io_buffer_size = 4 * 1024;
  return config;
}

std::unique_ptr<MiniHdfs> MakeFs(ClusterConfig config) {
  return std::make_unique<MiniHdfs>(
      config, std::make_unique<ColumnPlacementPolicy>(17));
}

void WriteSentences(MiniHdfs* fs, const std::string& path, int count) {
  Schema::Ptr schema;
  ASSERT_TRUE(Schema::Parse("record S { text: string }", &schema).ok());
  std::unique_ptr<TextWriter> writer;
  ASSERT_TRUE(TextWriter::Open(fs, path, schema, &writer).ok());
  const char* lines[] = {"the quick brown fox jumps", "over the lazy dog",
                         "pack my box with five dozen", "liquor jugs the fox"};
  for (int i = 0; i < count; ++i) {
    ASSERT_TRUE(
        writer->WriteRecord(Value::Record({Value::String(lines[i % 4])})).ok());
  }
  ASSERT_TRUE(writer->Close().ok());
}

Job WordCountJob(bool with_combiner) {
  Job job;
  job.config.input_paths = {"/in"};
  job.input_format = std::make_shared<TextInputFormat>();
  job.mapper = [](Record& record, Emitter* out) {
    std::istringstream words(record.GetOrDie("text").string_value());
    std::string word;
    while (words >> word) {
      out->Emit(Value::String(word), Value::Int64(1));
    }
  };
  job.reducer = [](const Value& key, const std::vector<Value>& values,
                   Emitter* out) {
    int64_t sum = 0;
    for (const Value& v : values) sum += v.int64_value();
    out->Emit(key, Value::Int64(sum));
  };
  if (with_combiner) job.combiner = job.reducer;
  return job;
}

void ExpectIdenticalModuloTiming(const JobReport& a, const JobReport& b) {
  ASSERT_EQ(a.output.size(), b.output.size());
  for (size_t i = 0; i < a.output.size(); ++i) {
    EXPECT_EQ(a.output[i].first.Compare(b.output[i].first), 0) << "key " << i;
    EXPECT_EQ(a.output[i].second.Compare(b.output[i].second), 0)
        << "value " << i;
  }
  EXPECT_EQ(a.map_input_records, b.map_input_records);
  EXPECT_EQ(a.map_output_records, b.map_output_records);
  EXPECT_EQ(a.map_output_bytes, b.map_output_bytes);
  EXPECT_EQ(a.reduce_output_records, b.reduce_output_records);
  EXPECT_EQ(a.bytes_read_local, b.bytes_read_local);
  EXPECT_EQ(a.bytes_read_remote, b.bytes_read_remote);
  EXPECT_EQ(a.data_local_tasks, b.data_local_tasks);
  EXPECT_EQ(a.remote_tasks, b.remote_tasks);
  ASSERT_EQ(a.map_tasks.size(), b.map_tasks.size());
  for (size_t i = 0; i < a.map_tasks.size(); ++i) {
    EXPECT_EQ(a.map_tasks[i].split_index, b.map_tasks[i].split_index);
    EXPECT_EQ(a.map_tasks[i].node, b.map_tasks[i].node);
    EXPECT_EQ(a.map_tasks[i].data_local, b.map_tasks[i].data_local);
    EXPECT_EQ(a.map_tasks[i].input_records, b.map_tasks[i].input_records);
    EXPECT_EQ(a.map_tasks[i].output_records, b.map_tasks[i].output_records);
    EXPECT_EQ(a.map_tasks[i].io.local_bytes, b.map_tasks[i].io.local_bytes);
    EXPECT_EQ(a.map_tasks[i].io.remote_bytes, b.map_tasks[i].io.remote_bytes);
  }
}

TEST(ParallelEngineTest, ParallelMatchesSerialWordCount) {
  auto fs = MakeFs(SmallCluster());
  WriteSentences(fs.get(), "/in", 3000);  // several 16 KB blocks → many splits

  Job job = WordCountJob(/*with_combiner=*/true);
  JobRunner runner(fs.get());

  JobReport serial;
  job.config.parallelism = 1;
  ASSERT_TRUE(runner.Run(job, &serial).ok());
  EXPECT_EQ(serial.worker_threads, 1);
  ASSERT_GT(serial.map_tasks.size(), 1u);

  JobReport parallel;
  job.config.parallelism = 4;
  ASSERT_TRUE(runner.Run(job, &parallel).ok());
  EXPECT_EQ(parallel.worker_threads, 4);

  ExpectIdenticalModuloTiming(serial, parallel);
  EXPECT_GT(parallel.wall_seconds, 0.0);
}

TEST(ParallelEngineTest, ParallelMatchesSerialMapOnly) {
  auto fs = MakeFs(SmallCluster());
  WriteSentences(fs.get(), "/in", 300);

  Job job = WordCountJob(false);
  job.reducer = nullptr;  // map-only: output is the raw map output
  JobRunner runner(fs.get());

  JobReport serial, parallel;
  job.config.parallelism = 1;
  ASSERT_TRUE(runner.Run(job, &serial).ok());
  job.config.parallelism = 8;
  ASSERT_TRUE(runner.Run(job, &parallel).ok());
  ExpectIdenticalModuloTiming(serial, parallel);
}

TEST(ParallelEngineTest, ParallelMatchesSerialCifProjection) {
  auto fs = MakeFs(SmallCluster());
  Schema::Ptr schema = WeblogSchema();
  CofOptions cof;
  cof.split_target_bytes = 32 * 1024;
  std::unique_ptr<CofWriter> writer;
  ASSERT_TRUE(CofWriter::Open(fs.get(), "/logs", schema, cof, &writer).ok());
  WeblogGenerator gen(5);
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(writer->WriteRecord(gen.Next()).ok());
  }
  ASSERT_TRUE(writer->Close().ok());

  Job job;
  job.config.input_paths = {"/logs"};
  job.config.projection = {"status", "bytes"};
  job.input_format = std::make_shared<ColumnInputFormat>();
  job.mapper = [](Record& record, Emitter* out) {
    out->Emit(Value::Int32(record.GetOrDie("status").int32_value()),
              Value::Int64(record.GetOrDie("bytes").int32_value()));
  };
  job.reducer = [](const Value& key, const std::vector<Value>& values,
                   Emitter* out) {
    int64_t sum = 0;
    for (const Value& v : values) sum += v.int64_value();
    out->Emit(key, Value::Int64(sum));
  };

  JobRunner runner(fs.get());
  JobReport serial, parallel;
  job.config.parallelism = 1;
  ASSERT_TRUE(runner.Run(job, &serial).ok());
  job.config.parallelism = 4;
  ASSERT_TRUE(runner.Run(job, &parallel).ok());
  ExpectIdenticalModuloTiming(serial, parallel);
}

TEST(ParallelEngineTest, AutoParallelismRunsAndMatches) {
  auto fs = MakeFs(SmallCluster());
  WriteSentences(fs.get(), "/in", 200);
  Job job = WordCountJob(true);
  JobRunner runner(fs.get());

  JobReport serial, auto_report;
  job.config.parallelism = 1;
  ASSERT_TRUE(runner.Run(job, &serial).ok());
  job.config.parallelism = 0;  // default: min(hardware, slots)
  ASSERT_TRUE(runner.Run(job, &auto_report).ok());
  EXPECT_GE(auto_report.worker_threads, 1);
  EXPECT_LE(auto_report.worker_threads, SmallCluster().TotalMapSlots());
  ExpectIdenticalModuloTiming(serial, auto_report);
}

TEST(ParallelEngineTest, SlotCountsNeverExceedConfiguredSlots) {
  // 2 nodes × 2 slots = 4 cluster slots; ask for 8 threads. The gate must
  // cap the pool at the slot count and per-node occupancy at 2.
  ClusterConfig config = SmallCluster();
  config.num_nodes = 2;
  config.map_slots_per_node = 2;
  auto fs = MakeFs(config);
  WriteSentences(fs.get(), "/in", 600);

  Job job = WordCountJob(true);
  job.config.parallelism = 8;
  JobRunner runner(fs.get());
  JobReport report;
  ASSERT_TRUE(runner.Run(job, &report).ok());

  EXPECT_LE(report.worker_threads, config.TotalMapSlots());
  ASSERT_EQ(report.peak_node_slots.size(),
            static_cast<size_t>(config.num_nodes));
  int total_peak = 0;
  for (int peak : report.peak_node_slots) {
    EXPECT_LE(peak, config.map_slots_per_node);
    total_peak += peak;
  }
  // The run did execute tasks on at least one node.
  EXPECT_GT(total_peak, 0);
}

TEST(ParallelEngineTest, ConcurrentReadersSeeConsistentData) {
  // Many threads hammer one sealed file plus the namenode metadata APIs.
  // Correctness is asserted here; freedom from data races is asserted by
  // the TSan build of this same test.
  auto fs = MakeFs(SmallCluster());
  std::string payload;
  payload.reserve(100 * 1024);
  for (int i = 0; i < 100 * 1024; ++i) {
    payload.push_back(static_cast<char>('a' + (i * 131) % 26));
  }
  std::unique_ptr<FileWriter> writer;
  ASSERT_TRUE(fs->Create("/shared", &writer).ok());
  writer->Append(payload);
  ASSERT_TRUE(writer->Close().ok());

  std::atomic<int> failures{0};
  auto reader_thread = [&](int seed) {
    IoStats stats;
    std::unique_ptr<FileReader> reader;
    if (!fs->Open("/shared", ReadContext{seed % 4, &stats}, &reader).ok()) {
      ++failures;
      return;
    }
    for (int iter = 0; iter < 50; ++iter) {
      const uint64_t offset =
          static_cast<uint64_t>((seed * 7919 + iter * 104729) %
                                static_cast<int>(payload.size()));
      const size_t n = 1 + (seed + iter) % 8192;
      std::string got;
      if (!reader->Read(offset, n, &got).ok() ||
          got != payload.substr(offset, n)) {
        ++failures;
        return;
      }
      // Exercise the metadata read paths concurrently too.
      std::vector<BlockInfo> blocks;
      if (!fs->GetBlockLocations("/shared", &blocks).ok() || blocks.empty()) {
        ++failures;
        return;
      }
      // May be empty for a multi-block file (Fig. 3a); exercised for the
      // lock path, not its result.
      fs->CommonReplicaNodes({"/shared"});
      uint64_t size = 0;
      if (!fs->GetFileSize("/shared", &size).ok() || size != payload.size()) {
        ++failures;
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) threads.emplace_back(reader_thread, t);
  // A concurrent writer creating *other* files while readers run: sealing
  // blocks mutates the shared block map, which is exactly the interleaving
  // the shared_mutex must serialize.
  threads.emplace_back([&] {
    for (int i = 0; i < 20; ++i) {
      std::unique_ptr<FileWriter> w;
      if (!fs->Create("/scratch-" + std::to_string(i), &w).ok()) {
        ++failures;
        return;
      }
      w->Append(std::string(40 * 1024, 'x'));
      if (!w->Close().ok()) ++failures;
    }
  });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ThreadPoolTest, RunsAllSubmittedJobsAndWaits) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&counter] { ++counter; });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 1000);
  // The pool is reusable after Wait.
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { ++counter; });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 1100);
}

TEST(ThreadPoolTest, DefaultThreadsRespectsSlotCap) {
  EXPECT_GE(ThreadPool::DefaultThreads(240), 1);
  EXPECT_EQ(ThreadPool::DefaultThreads(1), 1);
  EXPECT_GE(ThreadPool::DefaultThreads(0), 1);
}

TEST(StopwatchTest, ThreadCpuClockAdvancesWithWork) {
  const double before = Stopwatch::ThreadCpuSeconds();
  // Busy-spin long enough for CLOCK_THREAD_CPUTIME_ID to tick.
  volatile uint64_t sink = 0;
  for (uint64_t i = 0; i < 20 * 1000 * 1000; ++i) sink = sink + i;
  const double after = Stopwatch::ThreadCpuSeconds();
  EXPECT_GT(after, before);

  // A sleeping thread's CPU clock must (essentially) not advance.
  ThreadCpuStopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_LT(watch.ElapsedSeconds(), 0.045);
}

}  // namespace
}  // namespace colmr
