// Differential tests for the vectorized batch decode path: for seeded
// random values of every column type, across every on-disk layout, the
// batched reader (ColumnFileReader::NextBatch / RecordReader::FillBatch)
// must be element-for-element identical to the scalar path — including
// mid-batch SkipRows interleavings, truncated-input error parity, and
// byte-identical job output across formats, parallelism, and faults.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cif/cif.h"
#include "cif/cof.h"
#include "cif/column_reader.h"
#include "cif/column_writer.h"
#include "common/random.h"
#include "compress/codec.h"
#include "formats/rcfile/rcfile.h"
#include "formats/rcfile/rcfile_format.h"
#include "formats/seq/seq_file.h"
#include "formats/seq/seq_format.h"
#include "hdfs/mini_hdfs.h"
#include "mapreduce/engine.h"
#include "serde/batch.h"
#include "serde/encoding.h"
#include "workload/synthetic.h"

namespace colmr {
namespace {

ClusterConfig TestCluster() {
  ClusterConfig config;
  config.num_nodes = 4;
  config.block_size = 64 * 1024;
  config.io_buffer_size = 4 * 1024;
  return config;
}

std::unique_ptr<MiniHdfs> MakeFs(int placement_seed) {
  return std::make_unique<MiniHdfs>(
      TestCluster(), std::make_unique<ColumnPlacementPolicy>(placement_seed));
}

// Values are compared through their encoded bytes: exact for doubles and
// binary strings, and precisely the identity the batch kernels promise.
std::string Encoded(const Schema& type, const Value& value) {
  Buffer buffer;
  Status s = EncodeValue(type, value, &buffer);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return buffer.str();
}

struct ColumnCase {
  const char* name;
  Schema::Ptr type;
  std::function<Value(Random&)> gen;
};

// One case per TypeKind the column stores can hold, with generators that
// hit encoding edge cases (zero, sign extremes, empty strings, empty
// containers) alongside the bulk random values.
std::vector<ColumnCase> TypeCases() {
  std::vector<ColumnCase> cases;
  cases.push_back({"bool", Schema::Bool(), [](Random& rng) {
                     return Value::Bool(rng.Uniform(2) == 0);
                   }});
  cases.push_back({"int32", Schema::Int32(), [](Random& rng) {
                     switch (rng.Uniform(8)) {
                       case 0:
                         return Value::Int32(0);
                       case 1:
                         return Value::Int32(INT32_MIN);
                       case 2:
                         return Value::Int32(INT32_MAX);
                       default:
                         return Value::Int32(static_cast<int32_t>(
                             rng.UniformRange(INT32_MIN, INT32_MAX)));
                     }
                   }});
  cases.push_back({"int64", Schema::Int64(), [](Random& rng) {
                     switch (rng.Uniform(8)) {
                       case 0:
                         return Value::Int64(0);
                       case 1:
                         return Value::Int64(INT64_MIN);
                       case 2:
                         return Value::Int64(INT64_MAX);
                       default:
                         return Value::Int64(
                             static_cast<int64_t>(rng.Next()));
                     }
                   }});
  cases.push_back({"double", Schema::Double(), [](Random& rng) {
                     switch (rng.Uniform(8)) {
                       case 0:
                         return Value::Double(0.0);
                       case 1:
                         return Value::Double(-1.5e300);
                       default:
                         return Value::Double(rng.NextDouble() * 2e9 - 1e9);
                     }
                   }});
  cases.push_back({"string", Schema::String(), [](Random& rng) {
                     if (rng.OneIn(16)) return Value::String("");
                     return Value::String(rng.NextString(1, 60));
                   }});
  cases.push_back({"bytes", Schema::Bytes(), [](Random& rng) {
                     std::string raw;
                     const size_t len = rng.Uniform(40);
                     for (size_t i = 0; i < len; ++i) {
                       raw.push_back(static_cast<char>(rng.Next() & 0xff));
                     }
                     return Value::Bytes(std::move(raw));
                   }});
  cases.push_back({"array", Schema::Array(Schema::Int64()), [](Random& rng) {
                     std::vector<Value> elems;
                     const size_t len = rng.Uniform(6);
                     for (size_t i = 0; i < len; ++i) {
                       elems.push_back(Value::Int64(
                           static_cast<int64_t>(rng.Next())));
                     }
                     return Value::Array(std::move(elems));
                   }});
  cases.push_back(
      {"record",
       Schema::Record("N", {{"x", Schema::Double()}, {"y", Schema::String()}}),
       [](Random& rng) {
         std::vector<Value> fields;
         fields.push_back(Value::Double(rng.NextDouble()));
         fields.push_back(Value::String(rng.NextWord(7)));
         return Value::Record(std::move(fields));
       }});
  return cases;
}

Value RandomMap(Random& rng) {
  Value::MapEntries entries;
  const size_t len = rng.Uniform(6);
  entries.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    // Small key vocabulary so the DCSL dictionary actually dedups.
    entries.emplace_back("k" + std::to_string(rng.Uniform(20)),
                         Value::Int32(static_cast<int32_t>(rng.Uniform(100))));
  }
  return Value::Map(std::move(entries));
}

// (layout, codec) pairs every non-map column is exercised under.
struct LayoutCase {
  const char* name;
  ColumnOptions options;
};

std::vector<LayoutCase> LayoutCases() {
  std::vector<LayoutCase> cases;
  cases.push_back({"plain", {ColumnLayout::kPlain}});
  cases.push_back({"skiplist", {ColumnLayout::kSkipList}});
  ColumnOptions lzf;
  lzf.layout = ColumnLayout::kCompressedBlocks;
  lzf.codec = CodecType::kLzf;
  lzf.block_size = 4 * 1024;  // small blocks: batches span block edges
  cases.push_back({"lzf", lzf});
  ColumnOptions zlite = lzf;
  zlite.codec = CodecType::kZlite;
  cases.push_back({"zlite", zlite});
  return cases;
}

// Writes `n` generated values into a fresh column file and returns them.
std::vector<Value> WriteColumn(MiniHdfs* fs, const std::string& path,
                               const Schema::Ptr& type,
                               const ColumnOptions& options,
                               const std::function<Value(Random&)>& gen,
                               uint64_t seed, uint64_t n) {
  std::unique_ptr<ColumnFileWriter> writer;
  Status s = ColumnFileWriter::Create(fs, path, type, options, &writer);
  EXPECT_TRUE(s.ok()) << path << ": " << s.ToString();
  Random rng(seed);
  std::vector<Value> values;
  values.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    values.push_back(gen(rng));
    EXPECT_TRUE(writer->Append(values.back()).ok());
  }
  EXPECT_TRUE(writer->Close().ok());
  return values;
}

Status OpenColumn(MiniHdfs* fs, const std::string& path, IoStats* io,
                  std::unique_ptr<ColumnFileReader>* reader) {
  ReadContext context;
  context.stats = io;
  return ColumnFileReader::Open(fs, path, context, reader);
}

// Scans `path` twice — once scalar, once with NextBatch(batch_size) — and
// asserts both produce `expected` element for element.
void DifferentialScan(MiniHdfs* fs, const std::string& path,
                      const Schema& type, const std::vector<Value>& expected,
                      uint64_t batch_size) {
  SCOPED_TRACE(path + " batch_size=" + std::to_string(batch_size));
  IoStats io;
  std::unique_ptr<ColumnFileReader> scalar;
  std::unique_ptr<ColumnFileReader> batched;
  ASSERT_TRUE(OpenColumn(fs, path, &io, &scalar).ok());
  ASSERT_TRUE(OpenColumn(fs, path, &io, &batched).ok());
  ASSERT_EQ(scalar->row_count(), expected.size());

  ColumnBatch batch;
  Value scalar_value;
  Value materialized;
  uint64_t row = 0;
  while (row < expected.size()) {
    Status s = batched->NextBatch(batch_size, &batch);
    ASSERT_TRUE(s.ok()) << s.ToString();
    ASSERT_GT(batch.size(), 0u) << "NextBatch returned empty before EOF";
    ASSERT_LE(batch.size(), batch_size);
    for (size_t i = 0; i < batch.size(); ++i, ++row) {
      ASSERT_TRUE(scalar->ReadValue(&scalar_value).ok());
      const Value* got;
      if (batch.is_boxed()) {
        got = batch.BoxedAt(i);
      } else {
        batch.MaterializeInto(i, &materialized);
        got = &materialized;
      }
      ASSERT_EQ(Encoded(type, *got), Encoded(type, scalar_value))
          << "row " << row << ": batch=" << got->ToString()
          << " scalar=" << scalar_value.ToString();
      ASSERT_EQ(Encoded(type, *got), Encoded(type, expected[row]))
          << "row " << row << " diverges from written value";
    }
  }
  // At EOF both paths report clean end-of-column.
  Status s = batched->NextBatch(batch_size, &batch);
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(batch.size(), 0u);
}

// All primitive + composite types, across every layout, with batch sizes
// chosen to land on, straddle, and span the 10/100/1000-row skip-list
// boundaries (and the compressed-block edges).
TEST(BatchDecodeTest, AllTypesAllLayoutsMatchScalar) {
  const uint64_t kRows = 2500;
  auto fs = MakeFs(31);
  uint64_t seed = 1;
  for (const LayoutCase& layout : LayoutCases()) {
    for (const ColumnCase& type : TypeCases()) {
      const std::string path =
          std::string("/col_") + layout.name + "_" + type.name;
      std::vector<Value> expected = WriteColumn(
          fs.get(), path, type.type, layout.options, type.gen, ++seed, kRows);
      for (uint64_t batch_size : {uint64_t{1}, uint64_t{7}, uint64_t{100},
                                  uint64_t{997}, uint64_t{1024},
                                  uint64_t{4096}}) {
        DifferentialScan(fs.get(), path, *type.type, expected, batch_size);
      }
    }
  }
}

// Map columns under DCSL: dictionary-coded keys decode through the bulk
// LookupBulk path; batch sizes straddle the 1000-row dictionary groups.
TEST(BatchDecodeTest, DictSkipListMapsMatchScalar) {
  const uint64_t kRows = 2500;
  auto fs = MakeFs(32);
  Schema::Ptr type = Schema::Map(Schema::Int32());
  ColumnOptions options;
  options.layout = ColumnLayout::kDictSkipList;
  std::vector<Value> expected =
      WriteColumn(fs.get(), "/dcsl", type, options, RandomMap, 99, kRows);
  for (uint64_t batch_size :
       {uint64_t{1}, uint64_t{500}, uint64_t{997}, uint64_t{1000},
        uint64_t{1500}, uint64_t{2600}}) {
    DifferentialScan(fs.get(), "/dcsl", *type, expected, batch_size);
  }
}

// A column whose type is null encodes zero bytes per value; the batch
// path must still count rows and serve nulls.
TEST(BatchDecodeTest, NullColumnsMatchScalar) {
  auto fs = MakeFs(33);
  for (const LayoutCase& layout : LayoutCases()) {
    const std::string path = std::string("/nulls_") + layout.name;
    std::vector<Value> expected =
        WriteColumn(fs.get(), path, Schema::Null(), layout.options,
                    [](Random&) { return Value::Null(); }, 7, 300);
    IoStats io;
    std::unique_ptr<ColumnFileReader> reader;
    ASSERT_TRUE(OpenColumn(fs.get(), path, &io, &reader).ok());
    ColumnBatch batch;
    uint64_t rows = 0;
    while (true) {
      ASSERT_TRUE(reader->NextBatch(64, &batch).ok());
      if (batch.size() == 0) break;
      for (size_t i = 0; i < batch.size(); ++i) {
        EXPECT_TRUE(batch.IsNull(i));
      }
      rows += batch.size();
    }
    EXPECT_EQ(rows, expected.size()) << path;
  }
}

// Interleaves NextBatch and SkipRows in a seeded random walk and checks
// the surviving values against a scalar reader driven identically.
TEST(BatchDecodeTest, MidBatchSkipRowsMatchesScalar) {
  const uint64_t kRows = 2500;
  auto fs = MakeFs(34);
  Schema::Ptr type = Schema::String();
  auto gen = [](Random& rng) { return Value::String(rng.NextString(1, 50)); };
  for (const LayoutCase& layout : LayoutCases()) {
    const std::string path = std::string("/skipwalk_") + layout.name;
    WriteColumn(fs.get(), path, type, layout.options, gen, 11, kRows);
    for (uint64_t walk_seed : {uint64_t{1}, uint64_t{2}, uint64_t{3}}) {
      SCOPED_TRACE(path + " walk_seed=" + std::to_string(walk_seed));
      IoStats io;
      std::unique_ptr<ColumnFileReader> scalar;
      std::unique_ptr<ColumnFileReader> batched;
      ASSERT_TRUE(OpenColumn(fs.get(), path, &io, &scalar).ok());
      ASSERT_TRUE(OpenColumn(fs.get(), path, &io, &batched).ok());
      Random rng(walk_seed * 1000 + 7);
      ColumnBatch batch;
      Value scalar_value;
      Value materialized;
      uint64_t pos = 0;
      while (pos < kRows) {
        if (rng.OneIn(3)) {
          // Skips sized to cross the 10/100/1000-row boundaries.
          const uint64_t skip =
              std::min<uint64_t>(rng.Uniform(1300) + 1, kRows - pos);
          ASSERT_TRUE(batched->SkipRows(skip).ok());
          ASSERT_TRUE(scalar->SkipRows(skip).ok());
          pos += skip;
          continue;
        }
        const uint64_t want = rng.Uniform(600) + 1;
        Status s = batched->NextBatch(want, &batch);
        ASSERT_TRUE(s.ok()) << s.ToString();
        ASSERT_EQ(batch.size(), std::min(want, kRows - pos));
        for (size_t i = 0; i < batch.size(); ++i, ++pos) {
          ASSERT_TRUE(scalar->ReadValue(&scalar_value).ok());
          batch.MaterializeInto(i, &materialized);
          ASSERT_EQ(Encoded(*type, materialized),
                    Encoded(*type, scalar_value))
              << "row " << pos;
        }
        ASSERT_EQ(batched->current_row(), scalar->current_row());
      }
    }
  }
}

// Truncated column files: the batch path must deliver exactly the same
// prefix of values as the scalar path and then fail with the same status.
TEST(BatchDecodeTest, TruncatedInputErrorParity) {
  auto fs = MakeFs(35);
  struct TruncCase {
    std::string path;
    Schema::Ptr type;
  };
  std::vector<TruncCase> datasets;
  for (const LayoutCase& layout : LayoutCases()) {
    const std::string path = std::string("/trunc_") + layout.name;
    WriteColumn(fs.get(), path, Schema::String(), layout.options,
                [](Random& rng) { return Value::String(rng.NextString(5, 40)); },
                21, 800);
    datasets.push_back({path, Schema::String()});
  }
  {
    ColumnOptions options;
    options.layout = ColumnLayout::kDictSkipList;
    WriteColumn(fs.get(), "/trunc_dcsl", Schema::Map(Schema::Int32()), options,
                RandomMap, 22, 800);
    datasets.push_back({"/trunc_dcsl", Schema::Map(Schema::Int32())});
  }

  for (const TruncCase& dataset : datasets) {
    std::unique_ptr<FileReader> file;
    ASSERT_TRUE(fs->Open(dataset.path, ReadContext{}, &file).ok());
    std::string full;
    ASSERT_TRUE(file->Read(0, file->size(), &full).ok());
    for (size_t cut : {full.size() / 4, full.size() / 2, full.size() - 3,
                       full.size() - 1}) {
      SCOPED_TRACE(dataset.path + " cut=" + std::to_string(cut) + "/" +
                   std::to_string(full.size()));
      const std::string tpath = dataset.path + "_t" + std::to_string(cut);
      std::unique_ptr<FileWriter> writer;
      ASSERT_TRUE(fs->Create(tpath, &writer).ok());
      writer->Append(Slice(full.data(), cut));
      ASSERT_TRUE(writer->Close().ok());

      IoStats io;
      std::unique_ptr<ColumnFileReader> scalar;
      Status open_scalar = OpenColumn(fs.get(), tpath, &io, &scalar);
      std::unique_ptr<ColumnFileReader> batched;
      Status open_batched = OpenColumn(fs.get(), tpath, &io, &batched);
      ASSERT_EQ(open_scalar.ok(), open_batched.ok());
      ASSERT_EQ(open_scalar.ToString(), open_batched.ToString());
      if (!open_scalar.ok()) continue;  // header truncated: parity shown

      std::vector<std::string> scalar_values;
      Status scalar_status;
      Value value;
      for (uint64_t i = 0; i < scalar->row_count(); ++i) {
        scalar_status = scalar->ReadValue(&value);
        if (!scalar_status.ok()) break;
        scalar_values.push_back(Encoded(*dataset.type, value));
      }

      std::vector<std::string> batch_values;
      Status batch_status;
      ColumnBatch batch;
      Value materialized;
      while (batch_values.size() < scalar->row_count()) {
        batch_status = batched->NextBatch(177, &batch);
        for (size_t i = 0; i < batch.size(); ++i) {
          if (batch.is_boxed()) {
            batch_values.push_back(Encoded(*dataset.type, *batch.BoxedAt(i)));
          } else {
            batch.MaterializeInto(i, &materialized);
            batch_values.push_back(Encoded(*dataset.type, materialized));
          }
        }
        if (!batch_status.ok() || batch.size() == 0) break;
      }

      EXPECT_EQ(batch_values.size(), scalar_values.size());
      const size_t common = std::min(batch_values.size(), scalar_values.size());
      for (size_t i = 0; i < common; ++i) {
        ASSERT_EQ(batch_values[i], scalar_values[i]) << "row " << i;
      }
      EXPECT_EQ(batch_status.ok(), scalar_status.ok());
      EXPECT_EQ(batch_status.ToString(), scalar_status.ToString());
    }
  }
}

// ---------------------------------------------------------------------
// Job-level equivalence: batched and scalar map loops must produce
// byte-identical reduce output across formats, parallelism, lazy
// materialization, and fault injection.
// ---------------------------------------------------------------------

std::string SerializeOutput(const JobReport& report) {
  std::string out;
  for (const auto& [key, value] : report.output) {
    out += key.ToString() + "\t" + value.ToString() + "\n";
  }
  return out;
}

// A mapper that touches a string, an int, and the map column, so every
// lane of the batch (slices, ints, boxed values) feeds the output.
std::string RunMicroJob(MiniHdfs* fs, std::shared_ptr<InputFormat> format,
                        const std::string& path, bool project, bool lazy,
                        int parallelism, uint64_t batch_rows) {
  Job job;
  job.config.input_paths = {path};
  if (project) job.config.projection = {"str0", "int0", "map0"};
  job.config.lazy_records = lazy;
  job.config.parallelism = parallelism;
  job.config.batch_rows = batch_rows;
  job.input_format = std::move(format);
  job.mapper = [](Record& record, Emitter* out) {
    const int32_t i = record.GetOrDie("int0").int32_value();
    const std::string& s = record.GetOrDie("str0").string_value();
    const Value& m = record.GetOrDie("map0");
    out->Emit(Value::Int64(i % 10),
              Value::Int64(static_cast<int64_t>(s.size()) +
                           static_cast<int64_t>(m.ToString().size())));
  };
  job.reducer = [](const Value& key, const std::vector<Value>& values,
                   Emitter* out) {
    int64_t total = 0;
    for (const Value& v : values) total += v.int64_value();
    out->Emit(key, Value::Int64(total));
  };
  JobRunner runner(fs);
  JobReport report;
  Status s = runner.Run(job, &report);
  EXPECT_TRUE(s.ok()) << path << ": " << s.ToString();
  EXPECT_EQ(report.map_input_records, 3000u) << path;
  return SerializeOutput(report);
}

void WriteMicroDatasets(MiniHdfs* fs) {
  Schema::Ptr schema = MicrobenchSchema();
  CofOptions cof_options;
  cof_options.split_target_bytes = 256 * 1024;
  cof_options.default_column.layout = ColumnLayout::kSkipList;
  ColumnOptions compressed;
  compressed.layout = ColumnLayout::kCompressedBlocks;
  compressed.block_size = 8 * 1024;
  cof_options.column_overrides["str0"] = compressed;
  cof_options.column_overrides["int0"] = {ColumnLayout::kPlain};
  cof_options.column_overrides["map0"] = {ColumnLayout::kDictSkipList};
  std::unique_ptr<CofWriter> cof;
  ASSERT_TRUE(CofWriter::Open(fs, "/cif", schema, cof_options, &cof).ok());
  std::unique_ptr<RcFileWriter> rc;
  RcFileWriterOptions rc_options;
  rc_options.row_group_size = 64 * 1024;
  ASSERT_TRUE(RcFileWriter::Open(fs, "/rc", schema, rc_options, &rc).ok());
  std::unique_ptr<SeqWriter> seq;
  ASSERT_TRUE(SeqWriter::Open(fs, "/seq", schema, SeqWriterOptions{}, &seq)
                  .ok());
  MicrobenchGenerator gen(41);
  for (int i = 0; i < 3000; ++i) {
    const Value record = gen.Next();
    ASSERT_TRUE(cof->WriteRecord(record).ok());
    ASSERT_TRUE(rc->WriteRecord(record).ok());
    ASSERT_TRUE(seq->WriteRecord(record).ok());
  }
  ASSERT_TRUE(cof->Close().ok());
  ASSERT_TRUE(rc->Close().ok());
  ASSERT_TRUE(seq->Close().ok());
}

TEST(BatchJobTest, ByteIdenticalAcrossFormatsParallelismAndFaults) {
  auto fs = MakeFs(36);
  WriteMicroDatasets(fs.get());

  struct FormatCase {
    const char* name;
    std::function<std::shared_ptr<InputFormat>()> make;
    std::string path;
    bool project;
    bool lazy;
  };
  std::vector<FormatCase> formats = {
      {"cif-eager", [] { return std::make_shared<ColumnInputFormat>(); },
       "/cif", true, false},
      {"cif-lazy", [] { return std::make_shared<ColumnInputFormat>(); },
       "/cif", true, true},
      {"rcfile", [] { return std::make_shared<RcFileInputFormat>(); }, "/rc",
       true, false},
      {"seq", [] { return std::make_shared<SeqInputFormat>(); }, "/seq",
       false, false},
  };

  for (const FormatCase& format : formats) {
    SCOPED_TRACE(format.name);
    const std::string baseline =
        RunMicroJob(fs.get(), format.make(), format.path, format.project,
                    format.lazy, /*parallelism=*/1, /*batch_rows=*/1);
    ASSERT_FALSE(baseline.empty());
    for (int parallelism : {1, 4}) {
      for (bool faults : {false, true}) {
        FaultConfig config;
        if (faults) {
          config.seed = 5;
          config.read_error_p = 0.2;
        }
        fs->SetFaultConfig(config);
        for (uint64_t batch_rows : {uint64_t{1}, uint64_t{64},
                                    uint64_t{1024}}) {
          SCOPED_TRACE("parallelism=" + std::to_string(parallelism) +
                       " faults=" + std::to_string(faults) +
                       " batch_rows=" + std::to_string(batch_rows));
          EXPECT_EQ(RunMicroJob(fs.get(), format.make(), format.path,
                                format.project, format.lazy, parallelism,
                                batch_rows),
                    baseline);
        }
        fs->SetFaultConfig(FaultConfig{});
      }
    }
  }
}

}  // namespace
}  // namespace colmr
